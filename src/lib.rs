//! # mfdfp — umbrella crate for the MF-DFP reproduction
//!
//! Re-exports every subsystem of the Rust reproduction of
//! *"Hardware-Software Codesign of Accurate, Multiplier-free Deep Neural
//! Networks"* (Tann, Hashemi, Bahar, Reda — DAC 2017) under one roof:
//!
//! * [`tensor`] — dense `f32` tensors, GEMM, convolution, pooling.
//! * [`dfp`] — dynamic fixed-point + power-of-two numerics and shift
//!   arithmetic.
//! * [`nn`] — the float DNN training framework (layers, backprop, SGD,
//!   distillation loss).
//! * [`data`] — deterministic synthetic stand-ins for CIFAR-10 / ImageNet.
//! * [`accel`] — the multiplier-free accelerator model (cycles, area,
//!   power, energy) and its FP32 baseline.
//! * [`core`] — the paper's pipeline: quantization, Phase 1–3 fine-tuning,
//!   ensembles, integer-only inference.
//! * [`serve`] — dynamic-batching serving runtime: model registry, bounded
//!   request queue with backpressure, micro-batcher worker pool, metrics.
//! * [`rt`] — the persistent work-sharing thread-pool runtime the tensor
//!   kernels and the serving dispatch share (lazy global pool, scoped
//!   fork-join, pool stats).
//! * [`obs`] — flight-recorder observability: per-thread span rings,
//!   datapath op counters and a Chrome/Perfetto trace exporter; compiles
//!   to a no-op unless the `obs` feature is enabled.
//!
//! See `README.md` for the quickstart, `ARCHITECTURE.md` for the crate
//! map, and `PAPER_MAP.md` for the paper-section → code mapping.

pub use mfdfp_accel as accel;
pub use mfdfp_core as core;
pub use mfdfp_data as data;
pub use mfdfp_dfp as dfp;
pub use mfdfp_nn as nn;
pub use mfdfp_obs as obs;
pub use mfdfp_rt as rt;
pub use mfdfp_serve as serve;
pub use mfdfp_tensor as tensor;
