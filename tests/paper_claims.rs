//! The paper's headline claims, as executable assertions. Each test names
//! the claim and the artifact it comes from.

use mfdfp::accel::{
    design_metrics, schedule_network, AcceleratorConfig, ComponentLibrary, DmaModel, RunReport,
};
use mfdfp::core::memory_report;
use mfdfp::dfp::{DfpFormat, Pow2Weight};
use mfdfp::nn::zoo;
use mfdfp::tensor::TensorRng;

/// Table 1: "our accelerator can achieve significant benefits in both
/// design area and power consumption" — 87.97% area / 89.79% power for the
/// single design, 76.00% / 80.15% for the ensemble.
#[test]
fn table1_savings_within_one_percent_of_paper() {
    let lib = ComponentLibrary::calibrated_65nm();
    let fp = design_metrics(&AcceleratorConfig::paper_fp32(), &lib).unwrap();
    let mf = design_metrics(&AcceleratorConfig::paper_mf_dfp(), &lib).unwrap();
    let ens = design_metrics(&AcceleratorConfig::paper_ensemble(), &lib).unwrap();
    assert!((mf.area_saving_vs(&fp) - 87.97).abs() < 1.0);
    assert!((mf.power_saving_vs(&fp) - 89.79).abs() < 1.0);
    assert!((ens.area_saving_vs(&fp) - 76.00).abs() < 1.0);
    assert!((ens.power_saving_vs(&fp) - 80.15).abs() < 1.0);
}

/// Table 2 (time columns): FP32 and MF-DFP run in near-identical time at
/// the fixed 250 MHz clock (246.52 vs 246.27 µs — a 0.1% gap).
#[test]
fn table2_times_nearly_identical_across_precisions() {
    let mut rng = TensorRng::seed_from(0);
    for net in
        [zoo::cifar10_full(10, &mut rng).unwrap(), zoo::alexnet(1000, false, &mut rng).unwrap()]
    {
        let fp =
            schedule_network(&net, &AcceleratorConfig::paper_fp32(), DmaModel::Overlapped).unwrap();
        let mf = schedule_network(&net, &AcceleratorConfig::paper_mf_dfp(), DmaModel::Overlapped)
            .unwrap();
        let gap = (fp.time_us - mf.time_us).abs() / fp.time_us;
        assert!(gap < 0.005, "time gap {gap} too large for {}", net.name());
        assert!(fp.time_us >= mf.time_us, "FP32 pipeline is deeper, must not be faster");
    }
}

/// Table 2 (energy columns): ~89.8% energy saving single, ~80.15%
/// ensemble, for BOTH benchmarks — because energy = power × (equal) time.
#[test]
fn table2_energy_savings_shape() {
    let lib = ComponentLibrary::calibrated_65nm();
    let mut rng = TensorRng::seed_from(0);
    for net in
        [zoo::cifar10_full(10, &mut rng).unwrap(), zoo::alexnet(1000, false, &mut rng).unwrap()]
    {
        let fp_cfg = AcceleratorConfig::paper_fp32();
        let mf_cfg = AcceleratorConfig::paper_mf_dfp();
        let ens_cfg = AcceleratorConfig::paper_ensemble();
        let fp = RunReport::from_schedule(
            &schedule_network(&net, &fp_cfg, DmaModel::Overlapped).unwrap(),
            &design_metrics(&fp_cfg, &lib).unwrap(),
        );
        let mf = RunReport::from_schedule(
            &schedule_network(&net, &mf_cfg, DmaModel::Overlapped).unwrap(),
            &design_metrics(&mf_cfg, &lib).unwrap(),
        );
        let ens = RunReport::from_schedule(
            &schedule_network(&net, &mf_cfg, DmaModel::Overlapped).unwrap(),
            &design_metrics(&ens_cfg, &lib).unwrap(),
        );
        assert!((mf.energy_saving_vs(&fp) - 89.8).abs() < 1.5, "{}", net.name());
        assert!((ens.energy_saving_vs(&fp) - 80.15).abs() < 1.5, "{}", net.name());
    }
}

/// Table 2 (ImageNet row sanity): the AlexNet inference latency lands in
/// the same order of magnitude as the paper's 15,666 µs.
#[test]
fn table2_alexnet_latency_order_of_magnitude() {
    let mut rng = TensorRng::seed_from(0);
    let net = zoo::alexnet(1000, false, &mut rng).unwrap();
    let s =
        schedule_network(&net, &AcceleratorConfig::paper_mf_dfp(), DmaModel::Overlapped).unwrap();
    assert!((5_000.0..50_000.0).contains(&s.time_us), "{} µs", s.time_us);
}

/// Table 3: "requires 8× less memory compared to a floating-point
/// implementation" — exact figures 0.3417/0.0428 MiB and 237.95/29.75 MiB.
#[test]
fn table3_exact_memory_figures() {
    let mut rng = TensorRng::seed_from(0);
    let cifar = memory_report(&zoo::cifar10_full(10, &mut rng).unwrap());
    assert!((cifar.fp32_mib() - 0.3417).abs() < 0.001);
    assert!((cifar.mfdfp_mib() - 0.0428).abs() < 0.001);
    let alex = memory_report(&zoo::alexnet(1000, false, &mut rng).unwrap());
    assert!((alex.fp32_mib() - 237.95).abs() < 0.1);
    assert!((alex.mfdfp_mib() - 29.75).abs() < 0.05);
}

/// Section 5: "the weights can be encoded into 4-bit representation" —
/// every representable weight round-trips the 4-bit codec, and the
/// exponent range is exactly {0, …, −7}.
#[test]
fn four_bit_weight_encoding_claim() {
    for code in 0..16u8 {
        let w = Pow2Weight::decode4(code).unwrap();
        assert!((-7..=0).contains(&w.exp()));
        assert_eq!(w.encode4(), code);
    }
    // Quantizing any |w| < 1 lands inside the codec's range.
    for i in 1..=1000 {
        let w = Pow2Weight::from_f32(i as f32 / 1000.0);
        assert!((-7..=0).contains(&w.exp()));
    }
}

/// Section 4: 8-bit dynamic fixed point — formats at different `f` cover
/// disjoint ranges, which is why a single static format cannot serve a
/// whole network ("even with 16-bit fixed-point, significant accuracy
/// drop is observed" for static formats).
#[test]
fn dynamic_format_range_claim() {
    let fine = DfpFormat::q8(7); // ±0.99, step 1/128
    let coarse = DfpFormat::q8(0); // ±127, step 1
    assert!(fine.max_value() < 1.0);
    assert!(coarse.max_value() > 100.0);
    // A value representable finely saturates nowhere in the coarse format
    // but loses precision; and vice versa.
    assert_eq!(coarse.quantize(0.4), 0); // wiped out
    assert!(fine.round_trip(0.4) != 0.0);
    assert_eq!(fine.quantize(100.0), fine.max_code()); // saturated
}

/// Section 5 / Figure 2(a): the datapath performs a *fixed* amount of
/// shift-add work per image — the premise of the paper's energy model
/// (energy = per-op energy × op count). The batch-fused forward (one
/// im2col + one qgemm per layer per batch) must therefore count exactly
/// the sum of its per-image runs: fusion reshapes the schedule, never
/// the work. With `obs` off all counters are compile-time zeros and the
/// equality holds trivially; the `obs` assertion below keeps the test
/// honest by requiring real counted work on instrumented builds.
#[test]
fn fused_batch_op_count_equals_sum_of_per_image_counts() {
    use mfdfp::core::{calibrate, QuantizedNet};
    use mfdfp::obs::ops;

    let mut rng = TensorRng::seed_from(17);
    let mut net = zoo::quick_custom(3, 16, [4, 4, 8], 16, 10, &mut rng).unwrap();
    let calib = rng.gaussian([4, 3, 16, 16], 0.0, 0.7);
    let plan = calibrate(&mut net, &[(calib, vec![0, 1, 2, 3])], 8).unwrap();
    let q = QuantizedNet::from_network(&net, &plan).unwrap();
    let batch = rng.gaussian([5, 3, 16, 16], 0.0, 0.7);

    let before = ops::counters();
    let fused = q.logits_batch(&batch).unwrap();
    let fused_ops = ops::counters().since(&before);

    let mut per_image_macs = 0u64;
    let mut per_image_bytes = 0u64;
    for b in 0..5 {
        let img = batch.index_axis0(b);
        let before = ops::counters();
        let direct = q.logits(&img).unwrap();
        let delta = ops::counters().since(&before);
        per_image_macs += delta.shift_macs;
        per_image_bytes += delta.im2col_bytes;
        // The fused logits are also bit-identical to the per-image path.
        for (f, d) in fused.index_axis0(b).as_slice().iter().zip(direct.as_slice()) {
            assert_eq!(f.to_bits(), d.to_bits(), "image {b}");
        }
    }
    assert_eq!(fused_ops.shift_macs, per_image_macs, "fusion must not change the MAC count");
    assert_eq!(
        fused_ops.im2col_bytes, per_image_bytes,
        "fusion must stage exactly the per-image gather bytes"
    );
    #[cfg(feature = "obs")]
    {
        assert!(fused_ops.shift_macs > 0, "instrumented builds must observe real MAC work");
        assert!(fused_ops.im2col_bytes > 0, "conv layers must stage counted bytes");
    }
}

/// Section 5 / Figure 2(a): intermediate wires grow 16→20 bits so that no
/// intermediate value is ever lost.
#[test]
fn no_intermediate_loss_claim() {
    use mfdfp::dfp::AdderTree;
    let tree = AdderTree::new(16).unwrap();
    // The extreme case: all products at the register limits.
    let max = vec![(1i32 << 15) - 1; 16];
    assert_eq!(tree.sum(&max).unwrap(), 16 * ((1i64 << 15) - 1));
    let min = vec![-(1i32 << 15); 16];
    assert_eq!(tree.sum(&min).unwrap(), -16 * (1i64 << 15));
}
