//! Cross-crate integration tests: the full codesign loop from synthetic
//! data through float training, quantization, fine-tuning, integer
//! inference and the hardware model — everything a user of the umbrella
//! crate touches.

use mfdfp::accel::{
    design_metrics, schedule_network, AcceleratorConfig, ComponentLibrary, DmaModel, RunReport,
};
use mfdfp::core::{calibrate, memory_report, run_pipeline, Ensemble, PipelineConfig, QuantizedNet};
use mfdfp::data::{Batcher, Split, SynthSpec};
use mfdfp::nn::{evaluate, train_epoch, zoo, Network, Phase, Sgd, SgdConfig};
use mfdfp::tensor::TensorRng;

fn small_split() -> Split {
    let spec = SynthSpec {
        classes: 4,
        channels: 3,
        size: 16,
        per_class: 24,
        noise: 0.35,
        max_shift: 1,
        seed: 42,
    };
    Split::generate(&spec, 8)
}

fn trained_float(split: &Split, seed: u64) -> Network {
    let mut rng = TensorRng::seed_from(seed);
    let mut net = zoo::quick_custom(3, 16, [6, 6, 12], 24, 4, &mut rng).expect("topology");
    let mut sgd = Sgd::new(SgdConfig { learning_rate: 0.02, momentum: 0.9, weight_decay: 1e-4 })
        .expect("sgd");
    for epoch in 0..8 {
        let batches: Vec<_> = Batcher::new(&split.train, 16).shuffled(seed ^ epoch).collect();
        train_epoch(&mut net, &mut sgd, batches).expect("epoch");
    }
    net
}

#[test]
fn float_training_then_quantization_then_integer_inference() {
    let split = small_split();
    let mut net = trained_float(&split, 1);

    // Float accuracy is meaningfully above chance (4 classes → 25%).
    let test: Vec<_> = Batcher::new(&split.test, 16).iter().collect();
    let float_acc = evaluate(&mut net, test, 1).expect("eval").top1();
    assert!(float_acc > 0.5, "float accuracy {float_acc}");

    // Quantize with calibration and run integer-only inference.
    let calib: Vec<_> = Batcher::new(&split.train, 16).iter().take(3).collect();
    let plan = calibrate(&mut net, &calib, 8).expect("calibration");
    let qnet = QuantizedNet::from_network(&net, &plan).expect("quantize");
    let test: Vec<_> = Batcher::new(&split.test, 16).iter().collect();
    let mut acc = mfdfp::nn::Accuracy::new(1);
    for (x, labels) in test {
        let logits = qnet.logits_batch(&x).expect("integer inference");
        acc.update(&logits, &labels).expect("metric");
    }
    // Post-quantization (before fine-tuning) should stay within a broad
    // band of float accuracy — the starting point of Algorithm 1.
    assert!(acc.top1() > float_acc - 0.3, "quantized {} vs float {float_acc}", acc.top1());
}

#[test]
fn pipeline_recovers_quantization_loss_and_ensemble_helps() {
    let split = small_split();
    let net1 = trained_float(&split, 1);
    let net2 = trained_float(&split, 2);
    let test: Vec<_> = Batcher::new(&split.test, 16).iter().collect();
    let float_acc = evaluate(&mut net1.clone(), test, 1).expect("eval").top1();

    let cfg = PipelineConfig {
        phase1_epochs: 4,
        phase2_epochs: 2,
        learning_rate: 4e-3,
        batch_size: 16,
        eval_k: 1,
        ..PipelineConfig::paper_defaults()
    };
    let out1 = run_pipeline(net1, &split.train, &split.test, &cfg).expect("pipeline 1");
    let mut cfg2 = cfg;
    cfg2.seed ^= 77;
    let out2 = run_pipeline(net2, &split.train, &split.test, &cfg2).expect("pipeline 2");

    // Fine-tuned quantized accuracy within a few points of float.
    assert!(
        out1.final_top1 >= float_acc - 0.15,
        "single MF-DFP {} vs float {float_acc}",
        out1.final_top1
    );

    // Ensemble at least matches the best single member (on this test set).
    let ens = Ensemble::new(vec![out1.qnet.clone(), out2.qnet.clone()]).expect("ensemble");
    let test: Vec<_> = Batcher::new(&split.test, 16).iter().collect();
    let ens_acc = ens.evaluate(test, 1).expect("eval").top1();
    let best_single = out1.final_top1.max(out2.final_top1);
    assert!(
        ens_acc >= best_single - 0.08,
        "ensemble {ens_acc} far below best single {best_single}"
    );
}

#[test]
fn hardware_model_composes_with_any_supported_topology() {
    let split = small_split();
    let net = trained_float(&split, 3);
    let lib = ComponentLibrary::calibrated_65nm();
    for cfg in [
        AcceleratorConfig::paper_fp32(),
        AcceleratorConfig::paper_mf_dfp(),
        AcceleratorConfig::paper_ensemble(),
    ] {
        let design = design_metrics(&cfg, &lib).expect("design");
        let schedule = schedule_network(&net, &cfg, DmaModel::Overlapped).expect("schedule");
        let run = RunReport::from_schedule(&schedule, &design);
        assert!(run.cycles > 0);
        assert!(run.time_us > 0.0);
        assert!(run.energy_uj > 0.0);
        // Energy = power × time, exactly.
        let expect = design.power_mw * run.time_us / 1000.0;
        assert!((run.energy_uj - expect).abs() < 1e-9);
    }
}

#[test]
fn quantized_network_memory_matches_report() {
    let split = small_split();
    let mut net = trained_float(&split, 4);
    let calib: Vec<_> = Batcher::new(&split.train, 16).iter().take(2).collect();
    let plan = calibrate(&mut net, &calib, 8).expect("calibration");
    let qnet = QuantizedNet::from_network(&net, &plan).expect("quantize");
    let report = memory_report(&net);
    assert_eq!(qnet.memory_bytes(), report.mfdfp_bytes);
    assert!(report.compression() > 7.5);
}

#[test]
fn determinism_same_seed_same_everything() {
    let split = small_split();
    let cfg = PipelineConfig {
        phase1_epochs: 2,
        phase2_epochs: 1,
        learning_rate: 4e-3,
        batch_size: 16,
        eval_k: 1,
        ..PipelineConfig::paper_defaults()
    };
    let out_a = run_pipeline(trained_float(&split, 9), &split.train, &split.test, &cfg).expect("a");
    let out_b = run_pipeline(trained_float(&split, 9), &split.train, &split.test, &cfg).expect("b");
    assert_eq!(out_a.final_top1, out_b.final_top1);
    assert_eq!(out_a.history.len(), out_b.history.len());
    for (a, b) in out_a.history.iter().zip(&out_b.history) {
        assert_eq!(a.train_loss, b.train_loss);
        assert_eq!(a.test_error, b.test_error);
    }
    // And the deployed artifacts produce identical codes.
    let (x, _) = Batcher::new(&split.test, 4).iter().next().expect("batch");
    let img = x.index_axis0(0);
    assert_eq!(
        out_a.qnet.forward_codes(&img).expect("codes"),
        out_b.qnet.forward_codes(&img).expect("codes")
    );
}

#[test]
fn working_net_and_integer_engine_agree_within_one_lsb() {
    // The codesign contract across crate boundaries: training view
    // (fake-quant float) == deployment view (integer shifts), bit-for-bit
    // up to float-summation slack.
    let split = small_split();
    let mut net = trained_float(&split, 5);
    let calib: Vec<_> = Batcher::new(&split.train, 16).iter().take(2).collect();
    let plan = calibrate(&mut net, &calib, 8).expect("calibration");
    let mut working = mfdfp::core::build_working_net(&net, &plan);
    mfdfp::core::sync_quantized_params(&net, &mut working, &plan);
    let qnet = QuantizedNet::from_network(&net, &plan).expect("quantize");

    let (x, _) = Batcher::new(&split.test, 8).iter().next().expect("batch");
    let fq = working.forward(&x, Phase::Eval).expect("fake-quant forward");
    let hw = qnet.logits_batch(&x).expect("integer forward");
    let step = qnet.output_format().step();
    for (a, b) in fq.as_slice().iter().zip(hw.as_slice()) {
        assert!(
            ((a - b) / step).abs() <= 1.0 + 1e-3,
            "training view {a} vs deployed view {b} (> 1 LSB apart)"
        );
    }
}
