//! Grouped convolutions through the whole codesign stack: float training,
//! quantization, integer inference, deployment round-trip and scheduling —
//! exercising the AlexNet dual-GPU layer structure end to end.

use mfdfp::accel::{schedule_network, AcceleratorConfig, DmaModel};
use mfdfp::core::{calibrate, from_bytes, to_bytes, QuantizedNet};
use mfdfp::data::{Batcher, Split, SynthSpec};
use mfdfp::nn::layers::{Conv2d, Flatten, Linear, Pool, Relu};
use mfdfp::nn::{evaluate, train_epoch, Layer, Network, Phase, Sgd, SgdConfig};
use mfdfp::tensor::{ConvGeometry, PoolGeometry, PoolKind, TensorRng};

/// A small network with a grouped middle convolution (AlexNet pattern).
fn grouped_net(classes: usize, rng: &mut TensorRng) -> Network {
    let mut net = Network::new("grouped-mini");
    net.push(Layer::Conv(Conv2d::new(
        "conv1",
        ConvGeometry::new(2, 12, 12, 8, 3, 1, 1).unwrap(),
        rng,
    )));
    net.push(Layer::Relu(Relu::new()));
    net.push(Layer::Pool(Pool::new(
        "pool1",
        PoolKind::Max,
        PoolGeometry::new(8, 12, 12, 2, 2).unwrap(),
    )));
    net.push(Layer::Conv(Conv2d::new(
        "conv2",
        ConvGeometry::new(8, 6, 6, 8, 3, 1, 1).unwrap().with_groups(2).unwrap(),
        rng,
    )));
    net.push(Layer::Relu(Relu::new()));
    net.push(Layer::Flatten(Flatten::new()));
    net.push(Layer::Linear(Linear::new("fc", 8 * 6 * 6, classes, rng)));
    net
}

#[test]
fn grouped_net_trains_quantizes_and_deploys() {
    let spec = SynthSpec {
        classes: 3,
        channels: 2,
        size: 12,
        per_class: 20,
        noise: 0.3,
        max_shift: 1,
        seed: 55,
    };
    let split = Split::generate(&spec, 8);
    let mut rng = TensorRng::seed_from(5);
    let mut net = grouped_net(3, &mut rng);

    // Train.
    let mut sgd =
        Sgd::new(SgdConfig { learning_rate: 0.02, momentum: 0.9, weight_decay: 1e-4 }).unwrap();
    for epoch in 0..8 {
        let batches: Vec<_> = Batcher::new(&split.train, 12).shuffled(epoch).collect();
        train_epoch(&mut net, &mut sgd, batches).unwrap();
    }
    let test: Vec<_> = Batcher::new(&split.test, 12).iter().collect();
    let float_acc = evaluate(&mut net, test, 1).unwrap().top1();
    assert!(float_acc > 0.5, "grouped float net failed to train: {float_acc}");

    // Quantize and run the integer engine.
    let calib: Vec<_> = Batcher::new(&split.train, 12).iter().take(2).collect();
    let plan = calibrate(&mut net, &calib, 8).unwrap();
    let qnet = QuantizedNet::from_network(&net, &plan).unwrap();
    let (x, labels) = Batcher::new(&split.test, 12).iter().next().unwrap();
    let logits = qnet.logits_batch(&x).unwrap();
    assert_eq!(logits.shape().dims(), &[12, 3]);

    // Quantized predictions correlate with float predictions.
    let fl = net.forward(&x, Phase::Eval).unwrap();
    let fl_pred = mfdfp::tensor::argmax_rows(&fl).unwrap();
    let hw_pred = mfdfp::tensor::argmax_rows(&logits).unwrap();
    let agree = fl_pred.iter().zip(&hw_pred).filter(|(a, b)| a == b).count();
    assert!(agree >= 8, "only {agree}/12 predictions agree");
    let _ = labels;

    // Deployment image round-trips bit-exactly.
    let bytes = to_bytes(&qnet);
    let back = from_bytes(&bytes).unwrap();
    let img = x.index_axis0(0);
    assert_eq!(qnet.forward_codes(&img).unwrap(), back.forward_codes(&img).unwrap());

    // The scheduler handles grouped layers (fewer MACs than dense).
    let sched =
        schedule_network(&net, &AcceleratorConfig::paper_mf_dfp(), DmaModel::Overlapped).unwrap();
    assert!(sched.total_cycles > 0);
}

#[test]
fn grouping_halves_conv_cycles() {
    let mut rng = TensorRng::seed_from(1);
    let mut dense = Network::new("dense");
    dense.push(Layer::Conv(Conv2d::new(
        "c",
        ConvGeometry::new(8, 8, 8, 8, 3, 1, 1).unwrap(),
        &mut rng,
    )));
    let mut grouped = Network::new("grouped");
    grouped.push(Layer::Conv(Conv2d::new(
        "c",
        ConvGeometry::new(8, 8, 8, 8, 3, 1, 1).unwrap().with_groups(2).unwrap(),
        &mut rng,
    )));
    let cfg = AcceleratorConfig::paper_mf_dfp();
    let sd = schedule_network(&dense, &cfg, DmaModel::Overlapped).unwrap();
    let sg = schedule_network(&grouped, &cfg, DmaModel::Overlapped).unwrap();
    // Half the synapses per neuron → strictly fewer compute cycles, but
    // never better than exactly half (synapse chunks round up to the
    // 16-lane tile: 72 synapses → 5 chunks, 36 → 3, not 2.5).
    assert!(sg.layers[0].compute < sd.layers[0].compute);
    assert!(sg.layers[0].compute >= sd.layers[0].compute / 2);
}
