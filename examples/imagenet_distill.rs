//! Phase-2 deep dive: what student–teacher distillation adds on the
//! ImageNet stand-in (the paper's Figure 3 story), including a small
//! τ/β sensitivity sweep.
//!
//! ```text
//! cargo run --example imagenet_distill --release
//! ```

use mfdfp::core::{calibrate, run_pipeline, PipelineConfig, ShadowTrainer};
use mfdfp::data::{Batcher, Split, SynthSpec};
use mfdfp::nn::{evaluate, train_epoch, zoo, DistillConfig, DistillMode, Sgd, SgdConfig};
use mfdfp::tensor::TensorRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let split = Split::generate(&SynthSpec::imagenet(30, 5), 10);
    println!(
        "ImageNet stand-in: {} classes, {} train / {} test",
        split.train.classes(),
        split.train.len(),
        split.test.len()
    );

    // Pretrain the float teacher.
    let mut rng = TensorRng::seed_from(3);
    let mut float_net = zoo::alexnet_like_small(20, &mut rng)?;
    let mut sgd = Sgd::new(SgdConfig { learning_rate: 0.02, momentum: 0.9, weight_decay: 1e-4 })?;
    for epoch in 0..8 {
        let batches: Vec<_> = Batcher::new(&split.train, 32).shuffled(epoch).collect();
        train_epoch(&mut float_net, &mut sgd, batches)?;
    }
    let test: Vec<_> = Batcher::new(&split.test, 32).iter().collect();
    let acc = evaluate(&mut float_net, test, 5)?;
    println!("float teacher: top-1 {:.2}%  top-5 {:.2}%", acc.top1() * 100.0, acc.topk() * 100.0);

    // Label-only vs distilled fine-tuning (paper's comparison).
    let base = PipelineConfig {
        phase1_epochs: 8,
        phase2_epochs: 0,
        learning_rate: 2e-3,
        batch_size: 32,
        eval_k: 5,
        ..PipelineConfig::paper_defaults()
    };
    let labels_only = run_pipeline(float_net.clone(), &split.train, &split.test, &base)?;
    println!(
        "\nlabels only (Phase 1): top-1 {:.2}%  top-5 {:.2}%",
        labels_only.final_top1 * 100.0,
        labels_only.final_topk * 100.0
    );

    let with_distill = PipelineConfig { phase1_epochs: 8, phase2_epochs: 5, ..base };
    let distilled = run_pipeline(float_net.clone(), &split.train, &split.test, &with_distill)?;
    println!(
        "with student-teacher (Phase 1→2, τ=20 β=0.2): top-1 {:.2}%  top-5 {:.2}%",
        distilled.final_top1 * 100.0,
        distilled.final_topk * 100.0
    );

    // τ/β sensitivity: a mini-sweep of three epochs of pure Phase-2 from
    // the same starting point.
    println!("\nτ/β sensitivity (3 distillation epochs from the same checkpoint):");
    let calib: Vec<_> = Batcher::new(&split.train, 32).iter().take(4).collect();
    let mut probe = float_net.clone();
    let plan = calibrate(&mut probe, &calib, 8)?;
    for (tau, beta) in [(20.0f32, 0.2f32), (5.0, 0.2), (20.0, 1.0), (1.0, 0.2)] {
        let sgd = SgdConfig { learning_rate: 2e-3, momentum: 0.9, weight_decay: 1e-4 };
        let mut trainer = ShadowTrainer::new(float_net.clone(), plan.clone(), sgd)?;
        trainer.enable_distillation(
            float_net.clone(),
            DistillConfig { temperature: tau, beta, mode: DistillMode::Exact },
        )?;
        for epoch in 0..3 {
            let batches: Vec<_> = Batcher::new(&split.train, 32).shuffled(900 + epoch).collect();
            trainer.train_epoch(batches)?;
        }
        let test: Vec<_> = Batcher::new(&split.test, 32).iter().collect();
        let acc = trainer.evaluate_quantized(test, 5)?;
        println!(
            "  τ = {tau:>4}, β = {beta:>3}: top-1 {:.2}%  top-5 {:.2}%",
            acc.top1() * 100.0,
            acc.topk() * 100.0
        );
    }
    println!("\n(paper setting τ=20, β=0.2; the sweep shows the choice is not knife-edge)");
    Ok(())
}
