//! CIFAR-10 codesign walkthrough: the paper's benchmark flow at reduced
//! scale — float training on the synthetic CIFAR stand-in, Algorithm 1,
//! the two-member ensemble, and the full hardware report for the *exact*
//! cifar10-full topology.
//!
//! ```text
//! cargo run --example cifar10_codesign --release
//! ```

use mfdfp::accel::{
    design_metrics, schedule_network, AcceleratorConfig, ComponentLibrary, DmaModel, RunReport,
};
use mfdfp::core::{memory_report, run_pipeline, Ensemble, PipelineConfig};
use mfdfp::data::{Batcher, Split, SynthSpec};
use mfdfp::nn::{evaluate, train_epoch, zoo, Network, Sgd, SgdConfig};
use mfdfp::tensor::TensorRng;

fn train_float(seed: u64, split: &Split) -> Result<Network, Box<dyn std::error::Error>> {
    let mut rng = TensorRng::seed_from(seed);
    let mut net = zoo::quick_custom(3, 32, [8, 8, 16], 32, 10, &mut rng)?;
    let mut sgd = Sgd::new(SgdConfig { learning_rate: 0.02, momentum: 0.9, weight_decay: 1e-4 })?;
    for epoch in 0..6 {
        let batches: Vec<_> = Batcher::new(&split.train, 32).shuffled(seed ^ epoch).collect();
        train_epoch(&mut net, &mut sgd, batches)?;
    }
    Ok(net)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== CIFAR-10 codesign (synthetic stand-in, reduced width) ==\n");
    let split = Split::generate(&SynthSpec::cifar(50, 77), 15);

    // Float reference.
    let mut float_net = train_float(1, &split)?;
    let test: Vec<_> = Batcher::new(&split.test, 32).iter().collect();
    let float_acc = evaluate(&mut float_net, test, 1)?.top1();
    println!("float top-1: {:.2}%", float_acc * 100.0);

    // Algorithm 1 on two independently trained starting points (Phase 3
    // needs "different input FLnet" per member).
    let cfg = PipelineConfig {
        phase1_epochs: 5,
        phase2_epochs: 3,
        learning_rate: 4e-3,
        batch_size: 32,
        eval_k: 1,
        ..PipelineConfig::paper_defaults()
    };
    let out1 = run_pipeline(float_net, &split.train, &split.test, &cfg)?;
    println!("member 1 (MF-DFP) top-1: {:.2}%", out1.final_top1 * 100.0);

    let float2 = train_float(2, &split)?;
    let mut cfg2 = cfg;
    cfg2.seed ^= 0xABCD;
    let out2 = run_pipeline(float2, &split.train, &split.test, &cfg2)?;
    println!("member 2 (MF-DFP) top-1: {:.2}%", out2.final_top1 * 100.0);

    let ensemble = Ensemble::new(vec![out1.qnet.clone(), out2.qnet])?;
    let test: Vec<_> = Batcher::new(&split.test, 32).iter().collect();
    let ens_acc = ensemble.evaluate(test, 1)?.top1();
    println!("ensemble (M=2)  top-1: {:.2}%", ens_acc * 100.0);
    println!("\nshape check: MF-DFP within ~1-2% of float; ensemble ≥ single member.");

    // Hardware report for the exact paper topology.
    println!("\n== hardware: exact cifar10-full topology ==");
    let mut rng = TensorRng::seed_from(0);
    let exact = zoo::cifar10_full(10, &mut rng)?;
    let lib = ComponentLibrary::calibrated_65nm();
    for (name, accel_cfg) in [
        ("Floating-point(32,32)", AcceleratorConfig::paper_fp32()),
        ("MF-DFP(8,4)", AcceleratorConfig::paper_mf_dfp()),
        ("Ensemble 2xMF-DFP", AcceleratorConfig::paper_ensemble()),
    ] {
        // Ensemble members run in parallel: schedule one member.
        let sched_cfg =
            if accel_cfg.num_pus > 1 { AcceleratorConfig::paper_mf_dfp() } else { accel_cfg };
        let run = RunReport::from_schedule(
            &schedule_network(&exact, &sched_cfg, DmaModel::Overlapped)?,
            &design_metrics(&accel_cfg, &lib)?,
        );
        println!(
            "  {:<24} {:>9} cycles  {:>8.2} us  {:>8.2} uJ",
            name, run.cycles, run.time_us, run.energy_uj
        );
    }

    let mem = memory_report(&exact);
    println!(
        "\nparameter memory: float {:.4} MiB → MF-DFP {:.4} MiB ({:.1}x)",
        mem.fp32_mib(),
        mem.mfdfp_mib(),
        mem.compression()
    );
    Ok(())
}
