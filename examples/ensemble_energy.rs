//! Phase-3 trade-off curve: accuracy vs energy for ensembles of
//! M = 1, 2, 3 MF-DFP networks against the float baseline — the paper's
//! argument that "the designer may implement an ensemble of MF-DFP
//! networks in parallel and still save significantly in energy".
//!
//! ```text
//! cargo run --example ensemble_energy --release
//! ```

use mfdfp::accel::{
    design_metrics, schedule_network, AcceleratorConfig, ComponentLibrary, DmaModel, Precision,
    RunReport,
};
use mfdfp::core::{run_pipeline, Ensemble, PipelineConfig};
use mfdfp::data::{Batcher, Split, SynthSpec};
use mfdfp::nn::{evaluate, train_epoch, zoo, Sgd, SgdConfig};
use mfdfp::tensor::TensorRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let split = Split::generate(&SynthSpec::cifar(40, 99), 15);

    // Float reference accuracy.
    let mut rng = TensorRng::seed_from(10);
    let mut float_net = zoo::quick_custom(3, 32, [8, 8, 16], 32, 10, &mut rng)?;
    let mut sgd = Sgd::new(SgdConfig { learning_rate: 0.02, momentum: 0.9, weight_decay: 1e-4 })?;
    for epoch in 0..6 {
        let batches: Vec<_> = Batcher::new(&split.train, 32).shuffled(epoch).collect();
        train_epoch(&mut float_net, &mut sgd, batches)?;
    }
    let test: Vec<_> = Batcher::new(&split.test, 32).iter().collect();
    let float_acc = evaluate(&mut float_net, test, 1)?.top1();

    // Train three MF-DFP members from different starting points.
    let cfg = PipelineConfig {
        phase1_epochs: 4,
        phase2_epochs: 2,
        learning_rate: 4e-3,
        batch_size: 32,
        eval_k: 1,
        ..PipelineConfig::paper_defaults()
    };
    let mut members = Vec::new();
    for seed in 0..3u64 {
        let mut rng = TensorRng::seed_from(20 + seed);
        let mut net = zoo::quick_custom(3, 32, [8, 8, 16], 32, 10, &mut rng)?;
        let mut sgd =
            Sgd::new(SgdConfig { learning_rate: 0.02, momentum: 0.9, weight_decay: 1e-4 })?;
        for epoch in 0..6 {
            let batches: Vec<_> =
                Batcher::new(&split.train, 32).shuffled(seed * 31 + epoch).collect();
            train_epoch(&mut net, &mut sgd, batches)?;
        }
        let mut c = cfg;
        c.seed ^= seed.wrapping_mul(0x9E37_79B9);
        members.push(run_pipeline(net, &split.train, &split.test, &c)?.qnet);
    }

    // Hardware numbers on the exact cifar10-full topology.
    let mut rng = TensorRng::seed_from(0);
    let exact = zoo::cifar10_full(10, &mut rng)?;
    let lib = ComponentLibrary::calibrated_65nm();
    let fp_cfg = AcceleratorConfig::paper_fp32();
    let fp_run = RunReport::from_schedule(
        &schedule_network(&exact, &fp_cfg, DmaModel::Overlapped)?,
        &design_metrics(&fp_cfg, &lib)?,
    );
    println!(
        "float baseline: top-1 {:.2}%  {:>8.2} uJ / inference\n",
        float_acc * 100.0,
        fp_run.energy_uj
    );

    println!(
        "{:<6} {:>10} {:>12} {:>14} {:>12}",
        "M", "top-1 (%)", "energy (uJ)", "saving vs FP", "Δacc vs FP"
    );
    mfdfp_bench_rule(60);
    for m in 1..=members.len() {
        let ens = Ensemble::new(members[..m].to_vec())?;
        let test: Vec<_> = Batcher::new(&split.test, 32).iter().collect();
        let acc = ens.evaluate(test, 1)?.top1();
        // An M-member design: M processing units, shared control.
        let mut accel_cfg = AcceleratorConfig::paper_mf_dfp();
        accel_cfg.num_pus = m;
        accel_cfg.precision = Precision::MfDfp;
        let run = RunReport::from_schedule(
            &schedule_network(&exact, &AcceleratorConfig::paper_mf_dfp(), DmaModel::Overlapped)?,
            &design_metrics(&accel_cfg, &lib)?,
        );
        println!(
            "{:<6} {:>10.2} {:>12.2} {:>13.2}% {:>+11.2}%",
            m,
            acc * 100.0,
            run.energy_uj,
            run.energy_saving_vs(&fp_run),
            (acc - float_acc) * 100.0
        );
    }
    println!(
        "\nshape: even M=2 keeps ~80% energy saving while matching or beating float accuracy."
    );
    Ok(())
}

fn mfdfp_bench_rule(n: usize) {
    println!("{}", "-".repeat(n));
}
