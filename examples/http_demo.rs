//! HTTP serving quickstart: quantize a network, register it, bind the
//! std-only HTTP/1.1 front-end, and serve real sockets.
//!
//! ```text
//! cargo run --example http_demo --release
//! ```
//!
//! The demo prints ready-to-paste `curl` lines, self-checks one inference
//! over loopback TCP against direct integer inference (bit-exact), then
//! keeps serving for `MFDFP_HTTP_DEMO_SECS` seconds (default 5; CI's
//! smoke test sets it higher and drives the endpoints with `curl`).
//!
//! Environment:
//!
//! * `MFDFP_HTTP_ADDR` — listen address (default `127.0.0.1:8077`)
//! * `MFDFP_HTTP_DEMO_SECS` — how long to keep serving before exiting

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use mfdfp::core::{calibrate, QuantizedNet};
use mfdfp::nn::zoo;
use mfdfp::serve::http::{encode_request, format_f32_array};
use mfdfp::serve::{HttpConfig, HttpServer, ModelRegistry, ServeConfig, Server};
use mfdfp::tensor::{Tensor, TensorRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ── 1. Build and quantize a small network ──────────────────────────
    let mut rng = TensorRng::seed_from(7);
    let mut float_net = zoo::quick_custom(3, 16, [4, 4, 8], 16, 10, &mut rng)?;
    let calib = rng.gaussian([4, 3, 16, 16], 0.0, 0.7);
    let plan = calibrate(&mut float_net, &[(calib, vec![0, 1, 2, 3])], 8)?;
    let qnet = QuantizedNet::from_network(&float_net, &plan)?;

    // ── 2. Register it and bind the HTTP front-end ─────────────────────
    let registry = Arc::new(ModelRegistry::new());
    registry.register("demo", qnet.clone());
    let server = Arc::new(Server::start(
        Arc::clone(&registry),
        ServeConfig {
            shards: 2,
            workers: 1,
            queue_capacity: 256,
            max_batch: 8,
            max_wait: Duration::from_millis(1),
            ..Default::default()
        },
    )?);
    let addr = std::env::var("MFDFP_HTTP_ADDR").unwrap_or_else(|_| "127.0.0.1:8077".into());
    let http = HttpServer::bind(Arc::clone(&server), &addr, HttpConfig::default())?;
    let addr = http.local_addr();
    println!("serving \"demo\" ({} f32 inputs, 10 classes) on http://{addr}", 3 * 16 * 16);
    println!("  curl http://{addr}/v1/models");
    println!("  curl http://{addr}/v1/metrics");
    println!("  curl -d '[0.5,0.5,...×768]' http://{addr}/v1/infer/demo");
    println!("  (headers: x-mfdfp-deadline-us: 2000 — shed if older; x-mfdfp-priority: high)");

    // ── 3. The deterministic probe: a constant 0.5 image ───────────────
    // CI's smoke test regenerates this exact body with awk, POSTs it with
    // curl, and greps the response for the logits printed here — the
    // wire format is bit-exact, so the match is literal.
    let probe = Tensor::from_slice(&vec![0.5f32; 3 * 16 * 16]);
    let expected = qnet.logits(&probe)?;
    println!("probe logits: \"logits\":{}", format_f32_array(expected.as_slice()));

    // ── 4. Self-check over real loopback TCP ───────────────────────────
    let body = format_f32_array(probe.as_slice());
    let request = encode_request("POST", "/v1/infer/demo", &[], body.as_bytes());
    let mut stream = TcpStream::connect(addr)?;
    stream.write_all(&request)?;
    stream.shutdown(std::net::Shutdown::Write)?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let wire = format!("\"logits\":{}", format_f32_array(expected.as_slice()));
    assert!(response.starts_with("HTTP/1.1 200"), "self-check status: {response}");
    assert!(response.contains(&wire), "self-check logits not bit-exact: {response}");
    println!("self-check over TCP: 200, logits bit-exact with direct inference");

    // ── 5. Keep serving, then tear down cleanly ────────────────────────
    let secs: u64 =
        std::env::var("MFDFP_HTTP_DEMO_SECS").ok().and_then(|v| v.parse().ok()).unwrap_or(5);
    std::thread::sleep(Duration::from_secs(secs));
    http.shutdown();
    println!("final metrics: {}", server.metrics().to_json());
    drop(server);
    Ok(())
}
