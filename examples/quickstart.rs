//! Quickstart: float train → quantize → compare, in under a minute.
//!
//! ```text
//! cargo run --example quickstart --release
//! ```
//!
//! Walks the whole MF-DFP story on a small synthetic problem:
//! 1. train a float CNN,
//! 2. calibrate per-layer dynamic fixed-point formats,
//! 3. run Algorithm 1 (shadow-weight fine-tuning + distillation),
//! 4. deploy the integer-only network and check accuracy,
//! 5. report the accelerator-level energy win.

use mfdfp::accel::{
    design_metrics, schedule_network, AcceleratorConfig, ComponentLibrary, DmaModel, RunReport,
};
use mfdfp::core::{run_pipeline, PipelineConfig};
use mfdfp::data::{Batcher, Split, SynthSpec};
use mfdfp::nn::{evaluate, train_epoch, zoo, Sgd, SgdConfig};
use mfdfp::tensor::TensorRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ── 1. A small synthetic classification problem ────────────────────
    let spec = SynthSpec {
        classes: 6,
        channels: 3,
        size: 16,
        per_class: 40,
        noise: 0.4,
        max_shift: 2,
        seed: 2024,
    };
    let split = Split::generate(&spec, 12);
    println!(
        "dataset: {} train / {} test samples, {} classes",
        split.train.len(),
        split.test.len(),
        spec.classes
    );

    // ── 2. Train the floating-point network ────────────────────────────
    let mut rng = TensorRng::seed_from(1);
    let mut float_net = zoo::quick_custom(3, 16, [8, 8, 16], 32, 6, &mut rng)?;
    println!("\n{}", float_net.summary());
    let mut sgd = Sgd::new(SgdConfig { learning_rate: 0.02, momentum: 0.9, weight_decay: 1e-4 })?;
    for epoch in 0..8 {
        let batches: Vec<_> = Batcher::new(&split.train, 32).shuffled(epoch).collect();
        let stats = train_epoch(&mut float_net, &mut sgd, batches)?;
        println!(
            "float epoch {epoch}: loss {:.3} acc {:.1}%",
            stats.mean_loss,
            stats.accuracy * 100.0
        );
    }
    let test: Vec<_> = Batcher::new(&split.test, 32).iter().collect();
    let float_acc = evaluate(&mut float_net, test, 1)?.top1();
    println!("float test accuracy: {:.2}%", float_acc * 100.0);

    // ── 3+4. Algorithm 1: quantize + fine-tune + deploy ────────────────
    let cfg = PipelineConfig {
        phase1_epochs: 5,
        phase2_epochs: 3,
        learning_rate: 4e-3,
        batch_size: 32,
        eval_k: 1,
        ..PipelineConfig::paper_defaults()
    };
    let outcome = run_pipeline(float_net, &split.train, &split.test, &cfg)?;
    println!("\nfine-tuning trajectory (top-1 error on test):");
    for p in &outcome.history {
        println!(
            "  {:?} epoch {:>2}: loss {:.3}  err {:.3}  lr {:.1e}",
            p.phase, p.epoch, p.train_loss, p.test_error, p.learning_rate
        );
    }
    println!(
        "\ndeployed MF-DFP accuracy (integer-only inference): {:.2}% (float was {:.2}%)",
        outcome.final_top1 * 100.0,
        float_acc * 100.0
    );
    println!(
        "deployed model size: {} bytes (float: {} bytes) — {:.1}x smaller",
        outcome.qnet.memory_bytes(),
        outcome.master.param_count() * 4,
        (outcome.master.param_count() * 4) as f64 / outcome.qnet.memory_bytes() as f64
    );

    // ── 5. Hardware story ───────────────────────────────────────────────
    let lib = ComponentLibrary::calibrated_65nm();
    let fp_cfg = AcceleratorConfig::paper_fp32();
    let mf_cfg = AcceleratorConfig::paper_mf_dfp();
    let fp = RunReport::from_schedule(
        &schedule_network(&outcome.master, &fp_cfg, DmaModel::Overlapped)?,
        &design_metrics(&fp_cfg, &lib)?,
    );
    let mf = RunReport::from_schedule(
        &schedule_network(&outcome.master, &mf_cfg, DmaModel::Overlapped)?,
        &design_metrics(&mf_cfg, &lib)?,
    );
    println!("\naccelerator (this topology, one inference):");
    println!("  FP32:   {:>8.2} us  {:>8.2} uJ", fp.time_us, fp.energy_uj);
    println!(
        "  MF-DFP: {:>8.2} us  {:>8.2} uJ  → {:.1}% energy saving",
        mf.time_us,
        mf.energy_uj,
        mf.energy_saving_vs(&fp)
    );
    Ok(())
}
