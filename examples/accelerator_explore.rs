//! Accelerator design-space walk: how area, power and latency move as the
//! processing-unit organisation changes — the exploration the paper
//! declares out of scope ("an architectural design space exploration …
//! is out of the scope of this work") but that the model supports.
//!
//! ```text
//! cargo run --example accelerator_explore --release
//! ```

use mfdfp::accel::{
    design_metrics, schedule_network, AcceleratorConfig, ComponentLibrary, DmaModel, Precision,
    RunReport,
};
use mfdfp::nn::zoo;
use mfdfp::tensor::TensorRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = TensorRng::seed_from(0);
    let net = zoo::cifar10_full(10, &mut rng)?;
    let lib = ComponentLibrary::calibrated_65nm();

    println!("design space: synapses × neurons per PU (MF-DFP, cifar10-full)\n");
    println!(
        "{:<18} {:>10} {:>11} {:>11} {:>12} {:>14}",
        "organisation", "lanes", "area (mm2)", "power (mW)", "time (us)", "energy (uJ)"
    );
    println!("{}", "-".repeat(80));
    for (neurons, synapses) in [(8, 8), (8, 16), (16, 16), (16, 32), (32, 32)] {
        let cfg = AcceleratorConfig { neurons, synapses, ..AcceleratorConfig::paper_mf_dfp() };
        let design = design_metrics(&cfg, &lib)?;
        let run =
            RunReport::from_schedule(&schedule_network(&net, &cfg, DmaModel::Overlapped)?, &design);
        let marker = if neurons == 16 && synapses == 16 { "  <- paper" } else { "" };
        println!(
            "{:<18} {:>10} {:>11.2} {:>11.2} {:>12.2} {:>14.2}{marker}",
            format!("{neurons}n × {synapses}s"),
            cfg.lanes_per_pu(),
            design.area_mm2,
            design.power_mw,
            run.time_us,
            run.energy_uj
        );
    }

    println!("\nmemory-bandwidth sensitivity (the effect the paper excludes):\n");
    println!("{:<26} {:>14} {:>14}", "DMA model", "FP32 time (us)", "MF-DFP time (us)");
    println!("{}", "-".repeat(58));
    let fp_cfg = AcceleratorConfig::paper_fp32();
    let mf_cfg = AcceleratorConfig::paper_mf_dfp();
    for (name, dma) in [
        ("overlapped (paper)", DmaModel::Overlapped),
        ("128 B/cycle", DmaModel::Limited { bytes_per_cycle: 128.0 }),
        ("32 B/cycle", DmaModel::Limited { bytes_per_cycle: 32.0 }),
        ("8 B/cycle", DmaModel::Limited { bytes_per_cycle: 8.0 }),
    ] {
        let fp = schedule_network(&net, &fp_cfg, dma)?;
        let mf = schedule_network(&net, &mf_cfg, dma)?;
        println!("{:<26} {:>14.2} {:>14.2}", name, fp.time_us, mf.time_us);
    }
    println!("\n4-bit weights keep the MF-DFP design compute-bound far longer than 32-bit ones.");

    println!("\nprecision sweep at the paper organisation (area/power only):\n");
    for precision in [Precision::Fp32, Precision::MfDfp] {
        let cfg = AcceleratorConfig { precision, ..AcceleratorConfig::paper_mf_dfp() };
        let d = design_metrics(&cfg, &lib)?;
        println!("  {:?}: {:.2} mm2, {:.2} mW", precision, d.area_mm2, d.power_mw);
    }
    Ok(())
}
