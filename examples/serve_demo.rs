//! Serving quickstart: quantize a network, register it, and serve
//! concurrent traffic through the dynamic-batching runtime.
//!
//! ```text
//! cargo run --example serve_demo --release
//! ```
//!
//! Four closed-loop clients fire requests at a one-worker server; the
//! micro-batcher coalesces them into multi-image batches for the integer
//! datapath, and the final metrics snapshot (JSON) shows the batch-size
//! histogram, throughput and latency percentiles.

use std::sync::Arc;
use std::time::Duration;

use mfdfp::core::{calibrate, QuantizedNet};
use mfdfp::nn::zoo;
use mfdfp::serve::{ModelRegistry, ServeConfig, ServeError, Server};
use mfdfp::tensor::TensorRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ── 1. Build and quantize a small network (see examples/quickstart.rs
    //       for the full float-train → fine-tune pipeline) ───────────────
    let mut rng = TensorRng::seed_from(7);
    let mut float_net = zoo::quick_custom(3, 16, [4, 4, 8], 16, 10, &mut rng)?;
    let calib = rng.gaussian([4, 3, 16, 16], 0.0, 0.7);
    let plan = calibrate(&mut float_net, &[(calib, vec![0, 1, 2, 3])], 8)?;
    let qnet = QuantizedNet::from_network(&float_net, &plan)?;
    println!(
        "serving {:?}: {} classes, {} B parameters",
        qnet.name(),
        qnet.classes(),
        qnet.memory_bytes()
    );

    // ── 2. Register it and start the server ────────────────────────────
    let registry = Arc::new(ModelRegistry::new());
    registry.register("demo", qnet.clone());
    let server = Arc::new(Server::start(
        Arc::clone(&registry),
        ServeConfig {
            workers: 1,
            queue_capacity: 64,
            max_batch: 8,
            max_wait: Duration::from_millis(2),
            ..Default::default()
        },
    )?);

    // ── 3. Four concurrent closed-loop clients ─────────────────────────
    let clients: Vec<_> = (0..4)
        .map(|c| {
            let server = Arc::clone(&server);
            let qnet = qnet.clone();
            std::thread::spawn(move || {
                let mut rng = TensorRng::seed_from(100 + c);
                for i in 0..25 {
                    let img = rng.gaussian([3, 16, 16], 0.0, 0.7);
                    let ticket = loop {
                        match server.submit("demo", img.clone()) {
                            Ok(t) => break t,
                            Err(ServeError::QueueFull { .. }) => {
                                std::thread::sleep(Duration::from_micros(200));
                            }
                            Err(e) => panic!("submit: {e}"),
                        }
                    };
                    let response = ticket.wait().expect("response");
                    // Serving never changes the answer: responses are
                    // byte-identical to direct integer inference.
                    let direct = qnet.logits(&img).expect("direct");
                    assert_eq!(response.logits.as_slice(), direct.as_slice());
                    if c == 0 && i == 0 {
                        println!(
                            "first response: class {} (batch of {}, {:?})",
                            response.class, response.batch_size, response.latency
                        );
                    }
                }
            })
        })
        .collect();
    for client in clients {
        client.join().expect("client thread");
    }

    // ── 4. Inspect the metrics snapshot ────────────────────────────────
    let snap = server.metrics();
    println!(
        "served {} requests at {:.0} req/s, largest batch {}, p95 ≤ {} µs",
        snap.completed,
        snap.throughput_rps,
        snap.max_batch_observed(),
        snap.p95_latency_us
    );
    println!("metrics JSON: {}", snap.to_json());

    Arc::try_unwrap(server).ok().expect("clients joined").shutdown();
    Ok(())
}
