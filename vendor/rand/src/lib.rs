//! Offline stand-in for `rand` 0.8.
//!
//! Implements exactly the API surface this workspace uses — `StdRng`,
//! [`SeedableRng::seed_from_u64`], `Uniform` over the integer/float types
//! that appear in the code, and `SliceRandom::shuffle` — on top of a
//! SplitMix64 generator. All randomness in the workspace flows through
//! explicit 64-bit seeds, so statistical quality requirements are modest
//! (the test suites check first/second moments at ~1e4 samples, which
//! SplitMix64 passes comfortably).
//!
//! The stream is *stable*: values produced for a given seed are part of
//! the workspace's reproducibility contract, like `StdRng`'s stream in
//! real `rand 0.8`.

/// Core random-number-generator interface (subset of `rand::RngCore`).
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Convenience alias trait mirroring `rand::Rng`.
pub trait Rng: RngCore {}
impl<T: RngCore> Rng for T {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit generator (SplitMix64).
    ///
    /// Not cryptographic — a fast, well-distributed stream for seeded
    /// experiments, standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut rng = StdRng { state: seed };
            // Discard one output so nearby seeds decorrelate immediately.
            let _ = rng.next_u64();
            rng
        }
    }
}

pub mod distributions {
    //! Sampling distributions (subset of `rand::distributions`).

    use super::RngCore;

    /// Types that can be sampled from a generator.
    pub trait Distribution<T> {
        /// Draws one sample.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Uniform distribution over a half-open (`new`) or closed
    /// (`new_inclusive`) interval.
    #[derive(Debug, Clone, Copy)]
    pub struct Uniform<T> {
        lo: T,
        hi: T,
        inclusive: bool,
    }

    impl<T: SampleUniform + Copy + PartialOrd> Uniform<T> {
        /// Uniform over `[lo, hi)`. Panics if `lo >= hi`.
        pub fn new(lo: T, hi: T) -> Self {
            assert!(lo < hi, "Uniform::new requires lo < hi");
            Uniform { lo, hi, inclusive: false }
        }

        /// Uniform over `[lo, hi]`. Panics if `lo > hi`.
        pub fn new_inclusive(lo: T, hi: T) -> Self {
            assert!(lo <= hi, "Uniform::new_inclusive requires lo <= hi");
            Uniform { lo, hi, inclusive: true }
        }
    }

    impl<T: SampleUniform + Copy + PartialOrd> Distribution<T> for Uniform<T> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
            T::sample_uniform(self.lo, self.hi, self.inclusive, rng)
        }
    }

    /// Implementation hook for [`Uniform`].
    pub trait SampleUniform: Sized {
        /// Draws uniformly from `[lo, hi)` (or `[lo, hi]` when `inclusive`).
        fn sample_uniform<R: RngCore + ?Sized>(
            lo: Self,
            hi: Self,
            inclusive: bool,
            rng: &mut R,
        ) -> Self;
    }

    macro_rules! impl_sample_uniform_int {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample_uniform<R: RngCore + ?Sized>(
                    lo: Self,
                    hi: Self,
                    inclusive: bool,
                    rng: &mut R,
                ) -> Self {
                    let span = (hi as i128 - lo as i128) as u128 + if inclusive { 1 } else { 0 };
                    // Multiply-shift rejection-free mapping; the modulo bias
                    // at 64-bit state vs <=64-bit span is < 2^-64 per draw.
                    let v = (rng.next_u64() as u128) % span;
                    (lo as i128 + v as i128) as $t
                }
            }
        )*};
    }

    impl_sample_uniform_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    impl SampleUniform for f32 {
        fn sample_uniform<R: RngCore + ?Sized>(
            lo: Self,
            hi: Self,
            inclusive: bool,
            rng: &mut R,
        ) -> Self {
            // 24 uniform mantissa bits in [0, 1).
            let unit = (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32);
            let v = lo + (hi - lo) * unit;
            // Guard against rounding up to the open bound.
            if !inclusive && v >= hi {
                lo
            } else {
                v
            }
        }
    }

    impl SampleUniform for f64 {
        fn sample_uniform<R: RngCore + ?Sized>(
            lo: Self,
            hi: Self,
            inclusive: bool,
            rng: &mut R,
        ) -> Self {
            let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            let v = lo + (hi - lo) * unit;
            if !inclusive && v >= hi {
                lo
            } else {
                v
            }
        }
    }
}

pub mod seq {
    //! Slice utilities (subset of `rand::seq`).

    use super::distributions::{Distribution, Uniform};
    use super::RngCore;

    /// Shuffling for slices (subset of `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = Uniform::new_inclusive(0usize, i).sample(rng);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, Uniform};
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::SeedableRng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let u = Uniform::new(0.0f32, 1.0);
        for _ in 0..100 {
            assert_eq!(u.sample(&mut a), u.sample(&mut b));
        }
    }

    #[test]
    fn float_bounds_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        let u = Uniform::new(-0.25f32, 0.25);
        for _ in 0..10_000 {
            let v = u.sample(&mut rng);
            assert!((-0.25..0.25).contains(&v));
        }
    }

    #[test]
    fn integer_bounds_respected() {
        let mut rng = StdRng::seed_from_u64(3);
        let u = Uniform::new_inclusive(-5i32, 5);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..10_000 {
            let v = u.sample(&mut rng);
            assert!((-5..=5).contains(&v));
            seen_lo |= v == -5;
            seen_hi |= v == 5;
        }
        assert!(seen_lo && seen_hi, "inclusive bounds must be reachable");
    }

    #[test]
    fn mean_is_plausible() {
        let mut rng = StdRng::seed_from_u64(11);
        let u = Uniform::new(0.0f64, 1.0);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| u.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut xs: Vec<u32> = (0..50).collect();
        xs.shuffle(&mut rng);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(xs, (0..50).collect::<Vec<_>>());
    }
}
