//! Offline stand-in for `serde`.
//!
//! The build container has no network access to crates.io, so this shim
//! provides exactly the names the workspace imports: the `Serialize` /
//! `Deserialize` marker traits and same-named derive macros (which expand
//! to nothing). No code in the workspace serializes through serde — the
//! derives only annotate types for future wire formats — so empty
//! expansions are sufficient. Swap this path dependency for the real
//! `serde = { version = "1", features = ["derive"] }` once the registry
//! is reachable; no source changes are needed.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`.
pub trait Deserialize<'de> {}
