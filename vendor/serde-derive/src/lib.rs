//! No-op derive macros backing the offline `serde` shim.
//!
//! Nothing in the workspace consumes serde impls, so the derives expand to
//! an empty token stream. This keeps `#[derive(Serialize, Deserialize)]`
//! annotations compiling without crates.io access.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
