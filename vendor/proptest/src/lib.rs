//! Offline stand-in for `proptest`.
//!
//! The build container has no crates.io access, so this crate implements
//! the subset of proptest the workspace's property suites use:
//!
//! * the [`proptest!`] macro (with optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header),
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`,
//! * range strategies (`-1.0f32..1.0`, `0u8..16`, `-128i32..=127`, …),
//! * tuple strategies and `Strategy::prop_map`,
//! * `collection::vec` with a fixed size or a size range,
//! * `num::f32::{ANY, NORMAL}`, `num::<int>::ANY`, `bool::ANY`.
//!
//! Unlike real proptest there is no shrinking: a failing case panics with
//! the generated inputs left in the assertion message. Generation is
//! deterministic per test (seeded from the test name), so failures
//! reproduce exactly under `cargo test`.

pub mod test_runner {
    //! Execution configuration and the deterministic test RNG.

    /// Subset of `proptest::test_runner::ProptestConfig`.
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Deterministic generator used to drive strategies (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator from the test's name so every property has
        /// its own reproducible stream.
        pub fn deterministic(test_name: &str) -> Self {
            // FNV-1a over the name.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        /// Next 64 uniformly random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform f64 in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform usize in `[0, bound)`.
        pub fn below(&mut self, bound: usize) -> usize {
            assert!(bound > 0);
            (self.next_u64() % bound as u64) as usize
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;

    /// A recipe for generating values (subset of `proptest::strategy::Strategy`).
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;

        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    (self.start as i128 + v as i128) as $t
                }
            }

            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let v = (rng.next_u64() as u128) % span;
                    (lo as i128 + v as i128) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    macro_rules! impl_float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let unit = rng.unit_f64() as $t;
                    let v = self.start + (self.end - self.start) * unit;
                    if v >= self.end { self.start } else { v }
                }
            }

            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    let unit = rng.unit_f64() as $t;
                    lo + (hi - lo) * unit
                }
            }
        )*};
    }

    impl_float_range_strategy!(f32, f64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);
}

pub mod num {
    //! Numeric "any value" strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    macro_rules! int_any_module {
        ($($m:ident / $t:ty),*) => {$(
            pub mod $m {
                //! Whole-domain strategy for this integer type.

                use super::*;

                /// Strategy generating any value of the type (uniform bits).
                #[derive(Debug, Clone, Copy)]
                pub struct Any;

                /// Any value of the type.
                pub const ANY: Any = Any;

                impl Strategy for Any {
                    type Value = $t;

                    fn generate(&self, rng: &mut TestRng) -> $t {
                        rng.next_u64() as $t
                    }
                }
            }
        )*};
    }

    int_any_module!(
        i8 / i8,
        i16 / i16,
        i32 / i32,
        i64 / i64,
        isize / isize,
        u8 / u8,
        u16 / u16,
        u32 / u32,
        u64 / u64,
        usize / usize
    );

    macro_rules! float_any_module {
        ($($m:ident, $t:ty, $bits:ty, $frombits:path);*) => {$(
            pub mod $m {
                //! Whole-domain strategies for this float type.

                use super::*;

                /// Any bit pattern: normals, subnormals, zeros, infinities, NaN.
                #[derive(Debug, Clone, Copy)]
                pub struct Any;

                /// Any representable value, including non-finite ones.
                pub const ANY: Any = Any;

                impl Strategy for Any {
                    type Value = $t;

                    fn generate(&self, rng: &mut TestRng) -> $t {
                        $frombits(rng.next_u64() as $bits)
                    }
                }

                /// Normal (finite, non-subnormal, non-zero) values only.
                #[derive(Debug, Clone, Copy)]
                pub struct Normal;

                /// Any normal value.
                pub const NORMAL: Normal = Normal;

                impl Strategy for Normal {
                    type Value = $t;

                    fn generate(&self, rng: &mut TestRng) -> $t {
                        loop {
                            let v = $frombits(rng.next_u64() as $bits);
                            if v.is_normal() {
                                return v;
                            }
                        }
                    }
                }
            }
        )*};
    }

    float_any_module!(f32, f32, u32, f32::from_bits; f64, f64, u64, f64::from_bits);
}

pub mod bool {
    //! Boolean strategy.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Fair coin strategy.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Either boolean with equal probability.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Length specification for [`vec()`]: an exact `usize` or a half-open /
    /// inclusive range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi_inclusive: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi_inclusive: r.end - 1 }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi_inclusive: *r.end() }
        }
    }

    /// Strategy generating `Vec`s of values from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy with the given element strategy and length spec.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.hi_inclusive - self.size.lo + 1;
            let len = self.size.lo + if span > 1 { rng.below(span) } else { 0 };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude`.

    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines property tests: each `fn name(x in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@expand ($cfg) $($rest)*);
    };
    (@expand ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                    module_path!(),
                    "::",
                    stringify!($name)
                ));
                for _case in 0..config.cases {
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    // Mirror real proptest: the body may `return Ok(())` early
                    // (hence the immediately-invoked closure).
                    #[allow(clippy::redundant_closure_call)]
                    let case: ::core::result::Result<(), ::std::string::String> = (|| {
                        $body
                        #[allow(unreachable_code)]
                        ::core::result::Result::Ok(())
                    })();
                    if let ::core::result::Result::Err(e) = case {
                        panic!("property case failed: {e}");
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@expand ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Property assertion; panics (no shrinking) with the formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Equality property assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($l:expr, $r:expr) => { assert_eq!($l, $r) };
    ($l:expr, $r:expr, $($fmt:tt)*) => { assert_eq!($l, $r, $($fmt)*) };
}

/// Inequality property assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($l:expr, $r:expr) => { assert_ne!($l, $r) };
    ($l:expr, $r:expr, $($fmt:tt)*) => { assert_ne!($l, $r, $($fmt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Range strategies stay in bounds.
        #[test]
        fn int_range_in_bounds(x in -50i32..50, y in 0u8..16, z in -128i32..=127) {
            prop_assert!((-50..50).contains(&x));
            prop_assert!(y < 16);
            prop_assert!((-128..=127).contains(&z));
        }

        /// Float ranges stay in bounds.
        #[test]
        fn float_range_in_bounds(x in -2.0f32..2.0) {
            prop_assert!((-2.0..2.0).contains(&x));
        }

        /// Vec strategies respect their size specs.
        #[test]
        fn vec_sizes(xs in crate::collection::vec(0.0f32..1.0, 0..8),
                     ys in crate::collection::vec(0i32..5, 3)) {
            prop_assert!(xs.len() < 8);
            prop_assert_eq!(ys.len(), 3);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let strat = (0.0f64..1.0, 0i64..100);
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        for _ in 0..32 {
            assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
        }
    }

    #[test]
    fn normal_floats_are_normal() {
        let mut rng = TestRng::deterministic("normal");
        for _ in 0..256 {
            assert!(crate::num::f32::NORMAL.generate(&mut rng).is_normal());
        }
    }

    #[test]
    fn prop_map_applies() {
        let doubled = (1u32..10).prop_map(|v| v * 2);
        let mut rng = TestRng::deterministic("map");
        for _ in 0..32 {
            let v = doubled.generate(&mut rng);
            assert!(v % 2 == 0 && (2..20).contains(&v));
        }
    }
}
