//! Offline stand-in for `criterion`.
//!
//! Implements the subset of the criterion API the workspace's benches use
//! (`criterion_group!` / `criterion_main!`, `Criterion::bench_function`,
//! benchmark groups with throughput annotations, `black_box`) on a simple
//! calibrated-loop timer:
//!
//! 1. warm up for ~`WARMUP_MS`,
//! 2. pick an iteration count targeting `CRITERION_SHIM_TIME_MS`
//!    (default 300 ms) of measurement,
//! 3. report the mean wall-clock time per iteration (plus throughput when
//!    annotated).
//!
//! Results are printed to stdout and appended as JSON to
//! `$CRITERION_SHIM_OUT` (when set) so CI and the repo's `BENCH_*.json`
//! baselines can be produced without the real crate.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

const WARMUP_MS: u64 = 60;
const DEFAULT_MEASURE_MS: u64 = 300;

/// Work-per-iteration annotation for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// One finished measurement.
#[derive(Debug, Clone)]
struct Record {
    group: Option<String>,
    name: String,
    ns_per_iter: f64,
    iters: u64,
    throughput: Option<Throughput>,
}

/// The benchmark driver (subset of `criterion::Criterion`).
#[derive(Debug, Default)]
pub struct Criterion {
    records: Vec<Record>,
}

/// Per-iteration timing context handed to `Bencher::iter` closures.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn measure<F: FnMut(&mut Bencher)>(mut f: F) -> (f64, u64) {
    let measure_ms: u64 = std::env::var("CRITERION_SHIM_TIME_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_MEASURE_MS);

    // Warm-up / calibration: grow the iteration count until the batch takes
    // a measurable slice of time.
    let mut iters: u64 = 1;
    let mut per_iter_ns;
    loop {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        let ns = b.elapsed.as_nanos().max(1) as f64;
        per_iter_ns = ns / iters as f64;
        if b.elapsed >= Duration::from_millis(WARMUP_MS) || iters >= u64::MAX / 2 {
            break;
        }
        // Aim the next batch at the warm-up budget.
        let target_ns = (WARMUP_MS as f64) * 1e6;
        iters =
            ((target_ns / per_iter_ns).ceil() as u64).clamp(iters * 2, iters.saturating_mul(100));
    }

    // Measurement: a batch sized for the measurement budget.
    let target_ns = (measure_ms as f64) * 1e6;
    let iters = ((target_ns / per_iter_ns).ceil() as u64).max(1);
    let mut b = Bencher { iters, elapsed: Duration::ZERO };
    f(&mut b);
    (b.elapsed.as_nanos().max(1) as f64 / iters as f64, iters)
}

fn human_time(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.2} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

impl Criterion {
    fn run_one<F: FnMut(&mut Bencher)>(
        &mut self,
        group: Option<&str>,
        name: &str,
        throughput: Option<Throughput>,
        f: F,
    ) {
        let (ns_per_iter, iters) = measure(f);
        let full = match group {
            Some(g) => format!("{g}/{name}"),
            None => name.to_string(),
        };
        let thrpt = match throughput {
            Some(Throughput::Elements(n)) => {
                format!("  thrpt: {:.1} Melem/s", n as f64 / ns_per_iter * 1e3)
            }
            Some(Throughput::Bytes(n)) => {
                format!("  thrpt: {:.1} MiB/s", n as f64 / ns_per_iter * 1e9 / (1 << 20) as f64)
            }
            None => String::new(),
        };
        println!("{full:<48} time: {:>12}/iter{thrpt}", human_time(ns_per_iter));
        self.records.push(Record {
            group: group.map(str::to_string),
            name: name.to_string(),
            ns_per_iter,
            iters,
            throughput,
        });
    }

    /// Measures a single benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        self.run_one(None, name, None, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.to_string(), throughput: None }
    }

    /// Writes collected results as JSON (called by `criterion_main!`).
    pub fn final_summary(&self) {
        let Ok(path) = std::env::var("CRITERION_SHIM_OUT") else {
            return;
        };
        let mut out = String::from("[\n");
        for (i, r) in self.records.iter().enumerate() {
            let group = match &r.group {
                Some(g) => format!("\"{g}\""),
                None => "null".to_string(),
            };
            let thrpt = match r.throughput {
                Some(Throughput::Elements(n)) => format!("{{\"elements\": {n}}}"),
                Some(Throughput::Bytes(n)) => format!("{{\"bytes\": {n}}}"),
                None => "null".to_string(),
            };
            out.push_str(&format!(
                "  {{\"group\": {group}, \"name\": \"{}\", \"ns_per_iter\": {:.2}, \
                 \"iters\": {}, \"throughput\": {thrpt}}}{}\n",
                r.name,
                r.ns_per_iter,
                r.iters,
                if i + 1 < self.records.len() { "," } else { "" }
            ));
        }
        out.push_str("]\n");
        if let Err(e) = std::fs::write(&path, out) {
            eprintln!("criterion shim: failed to write {path}: {e}");
        }
    }
}

/// A group of related benchmarks sharing a throughput annotation.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Measures one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let (group, throughput) = (self.name.clone(), self.throughput);
        self.criterion.run_one(Some(&group), name, throughput, f);
        self
    }

    /// Ends the group (kept for API parity; groups need no teardown here).
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Generates `main` running the given groups and emitting the summary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default();
            $($group(&mut criterion);)+
            criterion.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_sane() {
        std::env::set_var("CRITERION_SHIM_TIME_MS", "20");
        let mut c = Criterion::default();
        c.bench_function("sum_1k", |b| b.iter(|| (0..1000u64).sum::<u64>()));
        assert_eq!(c.records.len(), 1);
        assert!(c.records[0].ns_per_iter > 0.0);
    }

    #[test]
    fn group_records_prefix_and_throughput() {
        std::env::set_var("CRITERION_SHIM_TIME_MS", "20");
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("g");
            g.throughput(Throughput::Elements(100));
            g.bench_function("inner", |b| b.iter(|| black_box(3u32).pow(2)));
            g.finish();
        }
        assert_eq!(c.records[0].group.as_deref(), Some("g"));
        assert!(matches!(c.records[0].throughput, Some(Throughput::Elements(100))));
    }
}
