//! Property-based tests for the fixed-point numerics: the invariants the
//! rest of the workspace (quantizer, integer inference engine, accelerator
//! datapath) silently relies on.

use mfdfp_dfp::{
    fits_in_bits, pack_nibbles, realign, saturate, shift_round, unpack_nibbles, Accumulator,
    AdderTree, DfpFormat, Pow2Weight, RangeStats, EXP_MAX, EXP_MIN, PRODUCT_BITS,
};
use proptest::prelude::*;

proptest! {
    /// Quantize→dequantize lands within half an LSB for in-range values,
    /// and exactly on the saturation bound outside.
    #[test]
    fn dfp_round_trip_error_bound(x in -1000.0f32..1000.0, frac in -2i8..10) {
        let fmt = DfpFormat::q8(frac);
        let y = fmt.round_trip(x);
        if x.abs() <= fmt.max_value() {
            prop_assert!((y - x).abs() <= fmt.step() / 2.0 + fmt.step() * 1e-4,
                "x={x} y={y} step={}", fmt.step());
        } else {
            prop_assert!(y == fmt.max_value() || y == fmt.min_value());
        }
    }

    /// Quantization is monotone: x ≤ y ⇒ q(x) ≤ q(y).
    #[test]
    fn dfp_quantize_monotone(a in -300.0f32..300.0, b in -300.0f32..300.0, frac in 0i8..8) {
        let fmt = DfpFormat::q8(frac);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(fmt.quantize(lo) <= fmt.quantize(hi));
    }

    /// Codes produced by quantize always lie inside the representable range.
    #[test]
    fn dfp_codes_in_range(x in proptest::num::f32::ANY, frac in -8i8..12) {
        let fmt = DfpFormat::q8(frac);
        let c = fmt.quantize(x);
        prop_assert!(c >= fmt.min_code() && c <= fmt.max_code());
    }

    /// Power-of-two quantization keeps the sign and bounds the log-domain
    /// error by half an octave (for magnitudes within the exponent range).
    #[test]
    fn pow2_log_domain_error(w in 0.008f32..1.0) {
        let q = Pow2Weight::from_f32(w);
        let err = (w.log2() - q.to_f32().abs().log2()).abs();
        prop_assert!(err <= 0.5 + 1e-4, "w={w} q={} err={err}", q.to_f32());
    }

    /// Negation of the input negates the quantized weight.
    #[test]
    fn pow2_odd_symmetry(w in 0.001f32..2.0) {
        let p = Pow2Weight::from_f32(w);
        let n = Pow2Weight::from_f32(-w);
        prop_assert_eq!(p.exp(), n.exp());
        prop_assert_eq!(p.to_f32(), -n.to_f32());
    }

    /// The 4-bit codec is a bijection on valid weights.
    #[test]
    fn pow2_codec_round_trip(w in proptest::num::f32::NORMAL) {
        let q = Pow2Weight::from_f32(w);
        prop_assert_eq!(Pow2Weight::decode4(q.encode4()).unwrap(), q);
    }

    /// Shift-multiply exactly equals multiplication by the weight value,
    /// scaled by 2^7 — for every valid activation code and weight code.
    #[test]
    fn mul_shift_exact(x in -128i32..=127, code in 0u8..16) {
        let w = Pow2Weight::decode4(code).unwrap();
        let p = w.mul_shift(x);
        let expect = (x as f64) * (w.to_f32() as f64) * 128.0;
        prop_assert_eq!(p as f64, expect);
        prop_assert!(fits_in_bits(p as i64, PRODUCT_BITS));
    }

    /// Nibble packing round-trips arbitrary weight vectors.
    #[test]
    fn nibble_pack_round_trip(ws in proptest::collection::vec(-1.0f32..1.0, 0..64)) {
        let qs: Vec<Pow2Weight> = ws.iter().map(|&w| Pow2Weight::from_f32(w)).collect();
        let packed = pack_nibbles(&qs);
        prop_assert_eq!(packed.len(), qs.len().div_ceil(2));
        let back = unpack_nibbles(&packed, qs.len()).unwrap();
        prop_assert_eq!(back, qs);
    }

    /// Odd-count nibble packing: the final byte's high nibble is the zero
    /// pad, the round trip is exact, and boundary exponents (±2^0, ±2^−7 —
    /// the extreme 4-bit codes) survive packing at every position,
    /// including the odd tail.
    #[test]
    fn nibble_pack_odd_counts_and_boundary_exponents(
        halves in proptest::collection::vec(0usize..4, 0..32),
        tail in 0usize..4,
    ) {
        // Draw weights only from the boundary corners of the code space:
        // sign × {EXP_MAX, EXP_MIN}.
        let corner = |i: usize| {
            let sign = if i & 1 == 0 { mfdfp_dfp::Sign::Plus } else { mfdfp_dfp::Sign::Minus };
            let exp = if i & 2 == 0 { EXP_MAX } else { EXP_MIN };
            Pow2Weight::new(sign, exp).unwrap()
        };
        let mut qs: Vec<Pow2Weight> = halves.iter().map(|&i| corner(i)).collect();
        if qs.len().is_multiple_of(2) {
            qs.push(corner(tail)); // force an odd count
        }
        prop_assert_eq!(qs.len() % 2, 1);
        let packed = pack_nibbles(&qs);
        prop_assert_eq!(packed.len(), qs.len() / 2 + 1);
        // The pad nibble must be zero so deployment images are
        // deterministic byte-for-byte.
        prop_assert_eq!(packed[packed.len() - 1] >> 4, 0);
        let back = unpack_nibbles(&packed, qs.len()).unwrap();
        prop_assert_eq!(back, qs);
        // Asking for one more weight than was packed reads the pad nibble
        // (code 0 ⇒ +2^0), never out of bounds; one past capacity errors.
        let over = unpack_nibbles(&packed, qs.len() + 1).unwrap();
        prop_assert_eq!(over[qs.len()], Pow2Weight::new(mfdfp_dfp::Sign::Plus, 0).unwrap());
        prop_assert!(unpack_nibbles(&packed, packed.len() * 2 + 1).is_err());
    }

    /// The adder tree computes the exact integer sum for any products that
    /// fit the 16-bit product register.
    #[test]
    fn adder_tree_is_exact_sum(products in proptest::collection::vec(-(1i32<<15)..(1i32<<15), 16)) {
        let tree = AdderTree::new(16).unwrap();
        let expect: i64 = products.iter().map(|&p| p as i64).sum();
        prop_assert_eq!(tree.sum(&products).unwrap(), expect);
    }

    /// shift_round approximates real division by a power of two to within
    /// half a unit, and is odd-symmetric.
    #[test]
    fn shift_round_properties(v in -1_000_000i64..1_000_000, s in 1i32..20) {
        let r = shift_round(v, -s);
        let exact = v as f64 / 2f64.powi(s);
        prop_assert!((r as f64 - exact).abs() <= 0.5 + 1e-9);
        prop_assert_eq!(shift_round(-v, -s), -r);
    }

    /// Realign is lossless when widening and bounded-error when narrowing.
    #[test]
    fn realign_error_bound(v in -100_000i64..100_000, from in 0i32..16, to in 0i32..16) {
        let out = realign(v, from, to);
        let vin = v as f64 * 2f64.powi(-from);
        let vout = out as f64 * 2f64.powi(-to);
        // Error at most half an output LSB.
        prop_assert!((vin - vout).abs() <= 2f64.powi(-to) / 2.0 + 1e-12);
    }

    /// Saturation is idempotent and order-preserving.
    #[test]
    fn saturate_properties(a in proptest::num::i64::ANY, b in proptest::num::i64::ANY, bits in 2u8..32) {
        let sa = saturate(a, bits);
        prop_assert_eq!(saturate(sa, bits), sa);
        if a <= b {
            prop_assert!(sa <= saturate(b, bits));
        }
        prop_assert!(fits_in_bits(sa, bits));
    }

    /// Range analysis always yields a format that covers what it saw.
    #[test]
    fn range_stats_cover(xs in proptest::collection::vec(-500.0f32..500.0, 1..100)) {
        let mut stats = RangeStats::new();
        stats.observe_slice(&xs);
        let fmt = stats.choose_format(8);
        let m = stats.max_abs();
        prop_assert!(fmt.max_value() >= m * 0.999, "fmt {fmt} max_abs {m}");
    }

    /// Merging stats is equivalent to observing the concatenation.
    #[test]
    fn range_stats_merge_equiv(
        a in proptest::collection::vec(-10.0f32..10.0, 0..40),
        b in proptest::collection::vec(-10.0f32..10.0, 0..40),
    ) {
        let mut s1 = RangeStats::new();
        s1.observe_slice(&a);
        let mut s2 = RangeStats::new();
        s2.observe_slice(&b);
        s1.merge(&s2);
        let mut joint = RangeStats::new();
        joint.observe_slice(&a);
        joint.observe_slice(&b);
        prop_assert_eq!(s1.max_abs(), joint.max_abs());
        prop_assert_eq!(s1.count(), joint.count());
    }

    /// A full MAC lane (quantize → shift-mul → tree → accumulate → route)
    /// approximates the float dot product within the error budget of the
    /// two quantization steps combined.
    #[test]
    fn mac_lane_end_to_end(
        xs in proptest::collection::vec(-0.9f32..0.9, 16),
        ws in proptest::collection::vec(-0.9f32..0.9, 16),
    ) {
        let in_fmt = DfpFormat::q8(7);
        let m = 7i32;
        let codes: Vec<i32> = xs.iter().map(|&x| in_fmt.quantize(x)).collect();
        let qw: Vec<Pow2Weight> = ws.iter().map(|&w| Pow2Weight::from_f32(w)).collect();
        let products: Vec<i32> = codes.iter().zip(&qw).map(|(&c, w)| w.mul_shift(c)).collect();
        let tree = AdderTree::new(16).unwrap();
        let mut acc = Accumulator::new();
        acc.add(tree.sum(&products).unwrap()).unwrap();
        // Wide result, fractional length m+7; compare against the float dot
        // product computed with the *quantized* operand values (the lane
        // must be exact w.r.t. its own quantized inputs).
        let got = acc.value() as f64 * 2f64.powi(-(m + 7));
        let expect: f64 = codes
            .iter()
            .zip(&qw)
            .map(|(&c, w)| (c as f64 * 2f64.powi(-m)) * w.to_f32() as f64)
            .sum();
        prop_assert!((got - expect).abs() < 1e-9, "lane must be exact: {got} vs {expect}");
    }
}

#[test]
fn exponent_constants_match_paper() {
    assert_eq!(EXP_MIN, -7);
    assert_eq!(EXP_MAX, 0);
}
