//! Integer power-of-two weights `⟨s, e⟩` and their 4-bit hardware codec.
//!
//! The paper quantizes every weight `w` to `s · 2^e` with
//! `e = max(round(log2 |w|), −7)`; because trained weight magnitudes are
//! below 1, the exponents land in `{0, −1, …, −7}`, so a weight packs into
//! **4 bits** (1 sign + 3 exponent). Multiplication by such a weight is an
//! arithmetic shift — the whole point of the multiplier-free accelerator.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::{DfpError, Result};

/// Most negative representable exponent (paper: bounded by 8-bit inputs).
pub const EXP_MIN: i8 = -7;
/// Largest representable exponent (weight magnitudes are below 1).
pub const EXP_MAX: i8 = 0;

/// The sign of a power-of-two weight.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Sign {
    /// Weight is `+2^e`.
    Plus,
    /// Weight is `−2^e`.
    Minus,
}

impl Sign {
    /// `+1` or `−1` as an `i32` factor.
    pub fn factor(self) -> i32 {
        match self {
            Sign::Plus => 1,
            Sign::Minus => -1,
        }
    }

    /// Sign of a real number (`Plus` for non-negative, including ±0).
    pub fn of(x: f32) -> Self {
        if x.is_sign_negative() && x != 0.0 {
            Sign::Minus
        } else {
            Sign::Plus
        }
    }
}

/// A weight quantized to an integer power of two: `s · 2^e`, `e ∈ [−7, 0]`.
///
/// # Examples
///
/// ```
/// use mfdfp_dfp::Pow2Weight;
///
/// let w = Pow2Weight::from_f32(-0.30);
/// assert_eq!(w.to_f32(), -0.25);            // nearest power of two in log domain
/// let code = w.encode4();
/// assert_eq!(Pow2Weight::decode4(code)?, w); // 4-bit round trip
/// # Ok::<(), mfdfp_dfp::DfpError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Pow2Weight {
    sign: Sign,
    exp: i8,
}

impl Pow2Weight {
    /// Builds a weight from sign and exponent.
    ///
    /// # Errors
    ///
    /// Returns [`DfpError::BadWeightCode`] if `exp` is outside `[−7, 0]`.
    pub fn new(sign: Sign, exp: i8) -> Result<Self> {
        if !(EXP_MIN..=EXP_MAX).contains(&exp) {
            return Err(DfpError::BadWeightCode(exp as u8));
        }
        Ok(Pow2Weight { sign, exp })
    }

    /// Quantizes a real weight to the nearest power of two in the log
    /// domain (`e = round(log2 |w|)`), clamping `e` to `[−7, 0]`.
    ///
    /// Zero (and sub-`2^−7.5` magnitudes) map to the smallest magnitude
    /// `±2^−7`; the 4-bit code has no exact zero, per the paper.
    pub fn from_f32(w: f32) -> Self {
        let sign = Sign::of(w);
        let mag = w.abs();
        let exp = if mag == 0.0 || mag.is_nan() {
            EXP_MIN
        } else if mag == f32::INFINITY {
            EXP_MAX
        } else {
            let e = mag.log2().round();
            e.clamp(EXP_MIN as f32, EXP_MAX as f32) as i8
        };
        Pow2Weight { sign, exp }
    }

    /// The represented real value `s · 2^e`.
    pub fn to_f32(self) -> f32 {
        self.sign.factor() as f32 * (self.exp as f32).exp2()
    }

    /// The weight's sign.
    pub fn sign(self) -> Sign {
        self.sign
    }

    /// The weight's exponent `e ∈ [−7, 0]`.
    pub fn exp(self) -> i8 {
        self.exp
    }

    /// Packs into the 4-bit hardware code: bit 3 = sign (1 ⇒ negative),
    /// bits 2..0 = `−e`.
    pub fn encode4(self) -> u8 {
        let sign_bit = match self.sign {
            Sign::Plus => 0u8,
            Sign::Minus => 1u8,
        };
        (sign_bit << 3) | ((-self.exp) as u8 & 0x7)
    }

    /// Unpacks a 4-bit hardware code.
    ///
    /// # Errors
    ///
    /// Returns [`DfpError::BadWeightCode`] if `code > 15`.
    pub fn decode4(code: u8) -> Result<Self> {
        if code > 0xF {
            return Err(DfpError::BadWeightCode(code));
        }
        let sign = if code & 0x8 != 0 { Sign::Minus } else { Sign::Plus };
        let exp = -((code & 0x7) as i8);
        Ok(Pow2Weight { sign, exp })
    }

    /// Multiplies an integer activation code by this weight **exactly**, in
    /// a widened register, using only negate-and-shift — the hardware
    /// operation `(s · x) ≪ e`.
    ///
    /// The input `x` is an activation code in some format `⟨b, m⟩`; the
    /// returned product is an integer in format `⟨b+7, m+7⟩`:
    /// `x·2^(−m) · s·2^e  =  (s·x · 2^(e+7)) · 2^(−m−7)` with
    /// `e + 7 ∈ [0, 7]`, so the left shift is always non-negative and no
    /// precision is lost (the paper's "no loss in intermediate values").
    ///
    /// # Examples
    ///
    /// ```
    /// use mfdfp_dfp::Pow2Weight;
    ///
    /// // w = −0.25 = −2^−2; an activation code x stands for x·2^−m.
    /// let w = Pow2Weight::from_f32(-0.25);
    /// // The product carries 7 extra fractional bits: −0.25·80 = −20,
    /// // returned as −20·2^7 = −2560 in format ⟨·, m+7⟩.
    /// assert_eq!(w.mul_shift(80), -2560);
    /// // Exactly sign · (x << (e + 7)) — a negate and a shift, no multiplier.
    /// assert_eq!(w.mul_shift(80), -(80 << 5));
    /// ```
    pub fn mul_shift(self, x: i32) -> i32 {
        (self.sign.factor() * x) << (self.exp - EXP_MIN)
    }

    /// Stochastically quantizes `w`, choosing between the two neighbouring
    /// exponents with probability proportional to log-domain proximity.
    ///
    /// `u` must be a uniform sample in `[0, 1)`. The paper evaluated both
    /// and chose deterministic quantization ([`Pow2Weight::from_f32`]);
    /// this variant exists for the ablation bench.
    pub fn from_f32_stochastic(w: f32, u: f32) -> Self {
        let sign = Sign::of(w);
        let mag = w.abs();
        if mag == 0.0 || !mag.is_finite() {
            return Pow2Weight { sign, exp: EXP_MIN };
        }
        let l = mag.log2();
        let lo = l.floor();
        let frac = l - lo;
        let e = if u < frac { lo + 1.0 } else { lo };
        let exp = e.clamp(EXP_MIN as f32, EXP_MAX as f32) as i8;
        Pow2Weight { sign, exp }
    }
}

impl fmt::Display for Pow2Weight {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self.sign {
            Sign::Plus => '+',
            Sign::Minus => '-',
        };
        write!(f, "{s}2^{}", self.exp)
    }
}

/// Quantizes a slice of real weights to powers of two (deterministic).
pub fn quantize_weights(ws: &[f32]) -> Vec<Pow2Weight> {
    ws.iter().map(|&w| Pow2Weight::from_f32(w)).collect()
}

/// Packs a slice of weights into 4-bit codes, two per byte (low nibble
/// first). The final byte of an odd-length slice has a zero high nibble.
pub fn pack_nibbles(ws: &[Pow2Weight]) -> Vec<u8> {
    let mut out = Vec::with_capacity(ws.len().div_ceil(2));
    for pair in ws.chunks(2) {
        let lo = pair[0].encode4();
        let hi = if pair.len() == 2 { pair[1].encode4() } else { 0 };
        out.push((hi << 4) | lo);
    }
    out
}

/// Unpacks `count` weights from nibble-packed bytes (inverse of
/// [`pack_nibbles`]).
///
/// # Errors
///
/// Returns [`DfpError::LengthMismatch`] only if `count` exceeds the packed
/// capacity.
pub fn unpack_nibbles(bytes: &[u8], count: usize) -> Result<Vec<Pow2Weight>> {
    if count > bytes.len() * 2 {
        return Err(DfpError::LengthMismatch { expected: count, actual: bytes.len() * 2 });
    }
    let mut out = Vec::with_capacity(count);
    for i in 0..count {
        let byte = bytes[i / 2];
        let nibble = if i % 2 == 0 { byte & 0xF } else { byte >> 4 };
        out.push(Pow2Weight::decode4(nibble)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantizes_to_nearest_log_domain_power() {
        // 0.3 → log2 = -1.74 → rounds to -2 → 0.25
        assert_eq!(Pow2Weight::from_f32(0.3).to_f32(), 0.25);
        // 0.4 → log2 = -1.32 → rounds to -1 → 0.5
        assert_eq!(Pow2Weight::from_f32(0.4).to_f32(), 0.5);
        assert_eq!(Pow2Weight::from_f32(-0.3).to_f32(), -0.25);
        assert_eq!(Pow2Weight::from_f32(1.0).to_f32(), 1.0);
        assert_eq!(Pow2Weight::from_f32(0.125).to_f32(), 0.125);
    }

    #[test]
    fn exponent_clamps_at_minus_seven() {
        let w = Pow2Weight::from_f32(1e-9);
        assert_eq!(w.exp(), -7);
        assert_eq!(Pow2Weight::from_f32(0.0).exp(), -7);
    }

    #[test]
    fn exponent_clamps_at_zero() {
        let w = Pow2Weight::from_f32(100.0);
        assert_eq!(w.exp(), 0);
        assert_eq!(w.to_f32(), 1.0);
    }

    #[test]
    fn four_bit_round_trip_all_codes() {
        for code in 0..16u8 {
            let w = Pow2Weight::decode4(code).unwrap();
            assert_eq!(w.encode4(), code);
        }
        assert!(Pow2Weight::decode4(16).is_err());
    }

    #[test]
    fn all_sixteen_values_distinct() {
        let mut vals: Vec<f32> =
            (0..16u8).map(|c| Pow2Weight::decode4(c).unwrap().to_f32()).collect();
        vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
        vals.dedup();
        assert_eq!(vals.len(), 16, "4-bit codes must map to 16 distinct weights");
    }

    #[test]
    fn mul_shift_equals_float_multiply() {
        for code in 0..16u8 {
            let w = Pow2Weight::decode4(code).unwrap();
            for x in [-128i32, -77, -1, 0, 1, 5, 127] {
                let exact = w.mul_shift(x);
                // mul_shift returns the product scaled by 2^7 relative to x.
                let float = (x as f32) * w.to_f32() * 128.0;
                assert_eq!(exact as f32, float, "w={w} x={x}");
            }
        }
    }

    #[test]
    fn mul_shift_fits_sixteen_bits() {
        // Worst case |x| = 128, e = 0 → |p| = 128·128 = 16384 < 2^15.
        for code in 0..16u8 {
            let w = Pow2Weight::decode4(code).unwrap();
            for x in [-128i32, 127] {
                let p = w.mul_shift(x);
                assert!((-(1 << 15)..(1 << 15)).contains(&p), "product {p} overflows 16 bits");
            }
        }
    }

    #[test]
    fn log_domain_rounding_boundary() {
        // Midpoint in log domain between 2^-1 and 2^-2 is 2^-1.5 ≈ 0.35355.
        let just_above = Pow2Weight::from_f32(0.36);
        assert_eq!(just_above.exp(), -1);
        let just_below = Pow2Weight::from_f32(0.35);
        assert_eq!(just_below.exp(), -2);
    }

    #[test]
    fn relative_error_bounded_by_sqrt2() {
        // Log-domain rounding guarantees w/ŵ ∈ [2^-0.5, 2^0.5].
        for i in 1..1000 {
            let w = i as f32 / 1000.0; // (0, 1]
            let q = Pow2Weight::from_f32(w).to_f32();
            let ratio = w / q;
            if w >= 2.0f32.powi(-7) {
                assert!(
                    (2f32.powf(-0.5) - 1e-3..=2f32.powf(0.5) + 1e-3).contains(&ratio),
                    "w={w} q={q} ratio={ratio}"
                );
            }
        }
    }

    #[test]
    fn stochastic_quantization_brackets_deterministic() {
        let w = 0.3f32; // log2 = -1.737
        let down = Pow2Weight::from_f32_stochastic(w, 0.9); // u > frac(0.263) → floor
        let up = Pow2Weight::from_f32_stochastic(w, 0.1); // u < frac → ceil
        assert_eq!(down.to_f32(), 0.25);
        assert_eq!(up.to_f32(), 0.5);
    }

    #[test]
    fn stochastic_is_unbiased_in_log_domain() {
        let w = 0.3f32;
        let n = 10_000;
        let mut ups = 0;
        for i in 0..n {
            let u = (i as f32 + 0.5) / n as f32;
            if Pow2Weight::from_f32_stochastic(w, u).to_f32() == 0.5 {
                ups += 1;
            }
        }
        let frac = (w.log2() - w.log2().floor()) as f64;
        assert!((ups as f64 / n as f64 - frac).abs() < 0.01);
    }

    #[test]
    fn nibble_packing_round_trip() {
        let ws: Vec<Pow2Weight> = [0.5f32, -0.25, 0.007, 1.0, -1.0, 0.1, 0.9]
            .iter()
            .map(|&w| Pow2Weight::from_f32(w))
            .collect();
        let packed = pack_nibbles(&ws);
        assert_eq!(packed.len(), 4); // ceil(7/2)
        let back = unpack_nibbles(&packed, ws.len()).unwrap();
        assert_eq!(back, ws);
        assert!(unpack_nibbles(&packed, 9).is_err());
    }

    #[test]
    fn new_validates_exponent() {
        assert!(Pow2Weight::new(Sign::Plus, 0).is_ok());
        assert!(Pow2Weight::new(Sign::Plus, -7).is_ok());
        assert!(Pow2Weight::new(Sign::Plus, 1).is_err());
        assert!(Pow2Weight::new(Sign::Minus, -8).is_err());
    }

    #[test]
    fn display_shows_sign_and_exponent() {
        assert_eq!(Pow2Weight::from_f32(0.25).to_string(), "+2^-2");
        assert_eq!(Pow2Weight::from_f32(-1.0).to_string(), "-2^0");
    }

    #[test]
    fn sign_of_handles_negative_zero() {
        assert_eq!(Sign::of(-0.0).factor(), 1);
        assert_eq!(Sign::of(-1.0).factor(), -1);
        assert_eq!(Sign::of(2.0).factor(), 1);
    }
}
