//! # mfdfp-dfp — dynamic fixed-point and power-of-two numerics
//!
//! The number systems of *"Hardware-Software Codesign of Accurate,
//! Multiplier-free Deep Neural Networks"* (Tann et al., DAC 2017):
//!
//! * [`DfpFormat`] — the 8-bit dynamic fixed-point activation format
//!   `⟨b, f⟩`, with per-layer fractional length `f`.
//! * [`Pow2Weight`] — weights quantized to `s · 2^e`, `e ∈ [−7, 0]`, packed
//!   into 4 bits; multiplication becomes an arithmetic shift
//!   ([`Pow2Weight::mul_shift`]).
//! * [`AdderTree`] / [`Accumulator`] — bit-accurate models of the widening
//!   adder tree (17→20 bits) and the radix-realigning accumulator of the
//!   paper's Figure 2(a), with per-level overflow audits.
//! * [`RangeStats`] — Ristretto-style calibration that picks each layer's
//!   fractional length from observed activation ranges.
//! * [`aligned`] — the 64-byte-aligned storage cell ([`AlignedBytes`])
//!   that deployment images and packed weight buffers sit on, modelling
//!   the paper's DMA-able accelerator weight buffer.
//! * [`crc32`] / [`Crc32`] — hand-rolled CRC-32 (IEEE) that deployment
//!   images and zoos carry in their headers, so a torn write or flipped
//!   bit is rejected before any weight byte reaches a kernel.
//!
//! Everything here is pure integer/float math with no dependencies on the
//! tensor or network crates, so the same code backs both the software
//! quantized-inference engine (`mfdfp-core`) and the accelerator functional
//! simulation (`mfdfp-accel`) — which is how the workspace proves the two
//! are bit-identical.
//!
//! # Examples
//!
//! A complete software rendition of one hardware MAC lane:
//!
//! ```
//! use mfdfp_dfp::{Accumulator, AdderTree, DfpFormat, Pow2Weight};
//!
//! let input_fmt = DfpFormat::q8(7);   // m = 7
//! let output_fmt = DfpFormat::q8(5);  // n = 5
//! let xs = [0.5f32, -0.25, 0.125, 0.75];
//! let ws = [0.5f32, 0.5, -1.0, 0.25];
//!
//! // Quantize, shift-multiply, sum through the tree, route to the output.
//! let codes: Vec<i32> = xs.iter().map(|&x| input_fmt.quantize(x)).collect();
//! let weights: Vec<Pow2Weight> = ws.iter().map(|&w| Pow2Weight::from_f32(w)).collect();
//! let products: Vec<i32> =
//!     codes.iter().zip(&weights).map(|(&c, w)| w.mul_shift(c)).collect();
//! let tree = AdderTree::new(4)?;
//! let mut acc = Accumulator::new();
//! acc.add(tree.sum(&products)?)?;
//! // Products carry fractional length m + 7.
//! let y = acc.route(7 + 7, 5, 8);
//! let expect: f32 = xs.iter().zip(&ws).map(|(x, w)| x * w).sum();
//! assert!((y as f32 * output_fmt.step() - expect).abs() < output_fmt.step());
//! # Ok::<(), mfdfp_dfp::DfpError>(())
//! ```

#![deny(missing_docs)]

pub mod aligned;
mod arith;
mod crc;
mod error;
mod format;
mod packed;
mod pow2;
mod range;

pub use aligned::{AlignedBytes, I64Section, Pod, ALIGN};
pub use arith::{
    fits_in_bits, realign, saturate, shift_round, Accumulator, AdderTree, ACCUMULATOR_BITS,
    PRODUCT_BITS, TREE_ROOT_BITS,
};
pub use crc::{crc32, Crc32};
pub use error::{DfpError, Result};
pub use format::DfpFormat;
pub use packed::PackedPow2Matrix;
pub use pow2::{
    pack_nibbles, quantize_weights, unpack_nibbles, Pow2Weight, Sign, EXP_MAX, EXP_MIN,
};
pub use range::RangeStats;
