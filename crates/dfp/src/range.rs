//! Ristretto-style range analysis: choosing per-layer fractional lengths
//! from observed activation statistics.

use serde::{Deserialize, Serialize};

use crate::format::DfpFormat;

/// Running range statistics over a stream of real values.
///
/// During calibration (a forward pass of the float network over a sample of
/// training data) one `RangeStats` per layer records the observed extremes;
/// [`RangeStats::choose_format`] then picks the fractional length that
/// covers the range with 8 bits — the "dynamic" in dynamic fixed point.
///
/// # Examples
///
/// ```
/// use mfdfp_dfp::RangeStats;
///
/// let mut stats = RangeStats::new();
/// stats.observe_slice(&[0.1, -2.4, 1.9]);
/// let fmt = stats.choose_format(8);
/// assert!(fmt.max_value() >= 2.4);          // covers the range
/// assert!(fmt.max_value() < 2.0 * 2.4 + 1.0); // without wasting bits
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RangeStats {
    max_abs: f32,
    count: u64,
    sum_abs: f64,
}

impl RangeStats {
    /// Fresh, empty statistics.
    pub fn new() -> Self {
        RangeStats { max_abs: 0.0, count: 0, sum_abs: 0.0 }
    }

    /// Records one value.
    pub fn observe(&mut self, x: f32) {
        if x.is_finite() {
            self.max_abs = self.max_abs.max(x.abs());
            self.sum_abs += x.abs() as f64;
            self.count += 1;
        }
    }

    /// Records every value in a slice.
    pub fn observe_slice(&mut self, xs: &[f32]) {
        for &x in xs {
            self.observe(x);
        }
    }

    /// Merges statistics gathered elsewhere (e.g. another batch).
    pub fn merge(&mut self, other: &RangeStats) {
        self.max_abs = self.max_abs.max(other.max_abs);
        self.sum_abs += other.sum_abs;
        self.count += other.count;
    }

    /// Largest absolute value observed.
    pub fn max_abs(&self) -> f32 {
        self.max_abs
    }

    /// Number of finite values observed.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean absolute value observed (0 when empty).
    pub fn mean_abs(&self) -> f32 {
        if self.count == 0 {
            0.0
        } else {
            (self.sum_abs / self.count as f64) as f32
        }
    }

    /// Chooses the `bits`-bit dynamic fixed-point format whose range just
    /// covers the observed maximum (Ristretto's rule): integer length
    /// `il = ceil(log2 max_abs)` bits before the radix point, so
    /// `f = bits − 1 − il`.
    ///
    /// With no observations the all-fractional format `⟨bits, bits−1⟩` is
    /// returned.
    pub fn choose_format(&self, bits: u8) -> DfpFormat {
        DfpFormat::new(bits, Self::frac_for_max_abs(self.max_abs, bits))
            .expect("bits validated by caller formats")
    }

    /// The fractional length covering `max_abs` with `bits` total bits.
    ///
    /// Chooses the largest `f` with `max_code · 2^(−f) ≥ max_abs`, i.e.
    /// `f = ⌊log2(max_code / max_abs)⌋` — note the max *code* is
    /// `2^(b−1) − 1`, not `2^(b−1)`, so values in the last-LSB sliver just
    /// below a power of two need one fewer fractional bit than the naive
    /// integer-length rule gives. A final verification step guards the
    /// floating-point edge cases.
    pub fn frac_for_max_abs(max_abs: f32, bits: u8) -> i8 {
        if max_abs <= 0.0 {
            return (bits - 1) as i8;
        }
        let max_code = ((1i64 << (bits - 1)) - 1) as f32;
        let mut f =
            (max_code / max_abs).log2().floor().clamp(i8::MIN as f32, i8::MAX as f32) as i32;
        // Floating-point log2 can land one off at exact-ratio boundaries;
        // verify and adjust (at most one step in practice).
        while f > i8::MIN as i32 && max_code * (-f as f32).exp2() < max_abs {
            f -= 1;
        }
        f as i8
    }
}

impl Default for RangeStats {
    fn default() -> Self {
        RangeStats::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_default_to_all_fractional() {
        let s = RangeStats::new();
        assert_eq!(s.choose_format(8).frac(), 7);
    }

    #[test]
    fn observe_tracks_max_abs() {
        let mut s = RangeStats::new();
        s.observe_slice(&[0.5, -3.0, 2.0]);
        assert_eq!(s.max_abs(), 3.0);
        assert_eq!(s.count(), 3);
        assert!((s.mean_abs() - (0.5 + 3.0 + 2.0) / 3.0).abs() < 1e-6);
    }

    #[test]
    fn non_finite_values_ignored() {
        let mut s = RangeStats::new();
        s.observe(f32::NAN);
        s.observe(f32::INFINITY);
        s.observe(1.0);
        assert_eq!(s.count(), 1);
        assert_eq!(s.max_abs(), 1.0);
    }

    #[test]
    fn chosen_format_covers_range() {
        for max in [0.01f32, 0.3, 0.99, 1.0, 1.5, 3.9, 4.0, 100.0, 200.0] {
            let mut s = RangeStats::new();
            s.observe(max);
            let fmt = s.choose_format(8);
            assert!(
                fmt.max_value() >= max * 0.999,
                "format {fmt} max {} does not cover {max}",
                fmt.max_value()
            );
            // And is tight: half the range would not cover.
            let tighter = DfpFormat::new(8, fmt.frac() + 1).unwrap();
            assert!(tighter.max_value() < max, "format {fmt} wastes a bit for max_abs {max}");
        }
    }

    #[test]
    fn known_fractional_lengths() {
        // max 0.9 → il = 0 → f = 7; range ±0.992.
        assert_eq!(RangeStats::frac_for_max_abs(0.9, 8), 7);
        // max 1.5 → il = 1 → f = 6; range ±1.98.
        assert_eq!(RangeStats::frac_for_max_abs(1.5, 8), 6);
        // max 100 → il = 7 → f = 0; range ±127.
        assert_eq!(RangeStats::frac_for_max_abs(100.0, 8), 0);
        // max 200 → il = 8 → f = −1; range ±254.
        assert_eq!(RangeStats::frac_for_max_abs(200.0, 8), -1);
        // Tiny values gain fractional bits beyond the word: max 0.004 →
        // il = −7 (0.004 < 2^−7) → wait: ceil(log2 0.004) = −7 → f = 14.
        assert_eq!(RangeStats::frac_for_max_abs(0.004, 8), 14);
    }

    #[test]
    fn exact_powers_of_two_still_covered() {
        // 1.0 cannot be represented in ⟨8,7⟩ (max 0.992); rule must pick f=6.
        assert_eq!(RangeStats::frac_for_max_abs(1.0, 8), 6);
        assert_eq!(RangeStats::frac_for_max_abs(4.0, 8), 4);
    }

    #[test]
    fn merge_combines_batches() {
        let mut a = RangeStats::new();
        a.observe_slice(&[1.0, 2.0]);
        let mut b = RangeStats::new();
        b.observe_slice(&[-5.0]);
        a.merge(&b);
        assert_eq!(a.max_abs(), 5.0);
        assert_eq!(a.count(), 3);
    }
}
