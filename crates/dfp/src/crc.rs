//! Hand-rolled CRC-32 (IEEE 802.3) — the end-to-end integrity check
//! stamped into every deployment image and zoo header.
//!
//! The deployment story (PAPER.md Fig. 2) ships packed weight images to
//! an accelerator over links and disks the serve tier does not control;
//! a single flipped bit in a packed pow-2 nibble silently changes every
//! logit downstream. The image format therefore carries a whole-buffer
//! CRC-32 which `mfdfp-core`'s `ImageView`/`ZooView` verify before any
//! weight byte is lent to a kernel.
//!
//! This is the reflected CRC-32 with polynomial `0xEDB8_8320`
//! (zlib/PNG/Ethernet): init `0xFFFF_FFFF`, final XOR `0xFFFF_FFFF`.
//! Pure `std`, table-driven (256-entry table built in a `const` fn), no
//! dependencies — the same bytes hash to the same word on every target.
//!
//! # Examples
//!
//! ```
//! use mfdfp_dfp::{crc32, Crc32};
//!
//! // The classic check vector.
//! assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
//!
//! // Streaming over parts is identical to hashing the concatenation.
//! let mut h = Crc32::new();
//! h.update(b"1234");
//! h.update(b"56789");
//! assert_eq!(h.finish(), crc32(b"123456789"));
//! ```

/// The reflected IEEE 802.3 generator polynomial.
const POLY: u32 = 0xEDB8_8320;

/// 256-entry lookup table: `TABLE[b]` is the CRC of the single byte `b`.
static TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Streaming CRC-32 hasher, for checksumming a buffer in parts (the
/// image verifier hashes around the header's own checksum field without
/// copying the image).
///
/// # Examples
///
/// ```
/// use mfdfp_dfp::Crc32;
///
/// let mut h = Crc32::new();
/// h.update(b"stream");
/// h.update(b"ing");
/// assert_eq!(h.finish(), mfdfp_dfp::crc32(b"streaming"));
/// ```
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// A fresh hasher (state = init value `0xFFFF_FFFF`).
    pub const fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Absorbs `bytes` into the running checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut crc = self.state;
        for &b in bytes {
            crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
        }
        self.state = crc;
    }

    /// Absorbs `n` zero bytes — how the verifier hashes a header whose
    /// checksum field is treated as zeroed, without mutating the buffer.
    pub fn update_zeros(&mut self, n: usize) {
        let mut crc = self.state;
        for _ in 0..n {
            crc = (crc >> 8) ^ TABLE[(crc & 0xFF) as usize];
        }
        self.state = crc;
    }

    /// The final checksum (applies the closing XOR; the hasher may keep
    /// absorbing afterwards since `finish` does not consume it).
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

/// One-shot CRC-32 of `bytes`.
///
/// # Examples
///
/// ```
/// assert_eq!(mfdfp_dfp::crc32(b""), 0);
/// assert_eq!(mfdfp_dfp::crc32(b"123456789"), 0xCBF4_3926);
/// ```
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut h = Crc32::new();
    h.update(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Bit-at-a-time reference implementation, table-free.
    fn crc32_reference(bytes: &[u8]) -> u32 {
        let mut crc = 0xFFFF_FFFFu32;
        for &b in bytes {
            crc ^= b as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            }
        }
        crc ^ 0xFFFF_FFFF
    }

    #[test]
    fn known_vectors() {
        // Standard check values for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn matches_bitwise_reference() {
        let mut bytes = Vec::new();
        let mut x = 0x1234_5678u32;
        for _ in 0..1000 {
            x = x.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
            bytes.push((x >> 24) as u8);
        }
        for n in [0, 1, 2, 63, 64, 65, 999, 1000] {
            assert_eq!(crc32(&bytes[..n]), crc32_reference(&bytes[..n]), "n={n}");
        }
    }

    #[test]
    fn streaming_equals_one_shot_at_every_split() {
        let bytes: Vec<u8> = (0..=255u8).cycle().take(300).collect();
        let expect = crc32(&bytes);
        for split in [0, 1, 7, 64, 150, 299, 300] {
            let mut h = Crc32::new();
            h.update(&bytes[..split]);
            h.update(&bytes[split..]);
            assert_eq!(h.finish(), expect, "split={split}");
        }
    }

    #[test]
    fn update_zeros_matches_real_zero_bytes() {
        let prefix = b"header bytes";
        let suffix = b"payload after the checksum field";
        for zeros in [0usize, 1, 4, 8, 64] {
            let mut with_zeros = prefix.to_vec();
            with_zeros.extend(std::iter::repeat_n(0u8, zeros));
            with_zeros.extend_from_slice(suffix);

            let mut h = Crc32::new();
            h.update(prefix);
            h.update_zeros(zeros);
            h.update(suffix);
            assert_eq!(h.finish(), crc32(&with_zeros), "zeros={zeros}");
        }
    }

    #[test]
    fn single_bit_flips_always_change_the_checksum() {
        let bytes: Vec<u8> = (0..128u8).collect();
        let base = crc32(&bytes);
        for i in 0..bytes.len() {
            for bit in 0..8 {
                let mut flipped = bytes.clone();
                flipped[i] ^= 1 << bit;
                assert_ne!(crc32(&flipped), base, "flip byte {i} bit {bit} undetected");
            }
        }
    }
}
