//! Error type for the fixed-point numerics crate.

use std::error::Error;
use std::fmt;

/// Errors from fixed-point formats and codecs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DfpError {
    /// Bit-width outside the supported 2..=32 range.
    BadFormat {
        /// Requested total bits.
        bits: u8,
        /// Requested fractional length.
        frac: i8,
    },
    /// A 4-bit weight code outside 0..=15.
    BadWeightCode(u8),
    /// An adder-tree input count that is not a power of two.
    BadFanIn(usize),
    /// A value overflowed the stated hardware register width.
    Overflow {
        /// The value that did not fit.
        value: i64,
        /// The register width it had to fit in.
        bits: u8,
    },
    /// A weight buffer's length does not match the declared geometry.
    LengthMismatch {
        /// Element count implied by the geometry.
        expected: usize,
        /// Element count actually provided.
        actual: usize,
    },
    /// A byte offset that violates the alignment a typed view requires.
    Misaligned {
        /// The offending byte offset.
        offset: usize,
        /// The alignment it had to be a multiple of.
        align: usize,
    },
}

impl fmt::Display for DfpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DfpError::BadFormat { bits, frac } => {
                write!(f, "unsupported fixed-point format ⟨{bits},{frac}⟩ (bits must be 2..=32)")
            }
            DfpError::BadWeightCode(c) => {
                write!(f, "invalid 4-bit weight code {c} (must be 0..=15)")
            }
            DfpError::BadFanIn(n) => write!(f, "adder tree fan-in {n} is not a power of two"),
            DfpError::Overflow { value, bits } => {
                write!(f, "value {value} overflows a {bits}-bit register")
            }
            DfpError::LengthMismatch { expected, actual } => {
                write!(f, "weight count {actual} does not match geometry ({expected})")
            }
            DfpError::Misaligned { offset, align } => {
                write!(f, "byte offset {offset} is not {align}-byte aligned")
            }
        }
    }
}

impl Error for DfpError {}

/// Convenience alias for fixed-point results.
pub type Result<T> = std::result::Result<T, DfpError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        assert!(DfpError::BadFormat { bits: 1, frac: 0 }.to_string().contains("⟨1,0⟩"));
        assert!(DfpError::BadWeightCode(99).to_string().contains("99"));
        assert!(DfpError::BadFanIn(3).to_string().contains('3'));
        assert!(DfpError::Overflow { value: 70000, bits: 16 }.to_string().contains("70000"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DfpError>();
    }
}
