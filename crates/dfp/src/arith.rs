//! Bit-accurate integer arithmetic mirroring the accelerator datapath of
//! Figure 2(a): the 16-input widening adder tree, the accumulator-and-
//! routing radix realignment, and saturation helpers.

use crate::error::{DfpError, Result};

/// Register width (bits) of a shifted product entering the adder tree.
pub const PRODUCT_BITS: u8 = 16;
/// Register width of the adder-tree root for a 16-input tree (16 + log2 16).
pub const TREE_ROOT_BITS: u8 = 20;
/// Register width of the multi-cycle accumulator.
pub const ACCUMULATOR_BITS: u8 = 32;

/// Returns `true` if `v` fits in a signed two's-complement register of
/// `bits` bits.
pub fn fits_in_bits(v: i64, bits: u8) -> bool {
    debug_assert!((1..=63).contains(&bits));
    let lo = -(1i64 << (bits - 1));
    let hi = (1i64 << (bits - 1)) - 1;
    (lo..=hi).contains(&v)
}

/// Saturates `v` to a signed register of `bits` bits.
pub fn saturate(v: i64, bits: u8) -> i64 {
    let lo = -(1i64 << (bits - 1));
    let hi = (1i64 << (bits - 1)) - 1;
    v.clamp(lo, hi)
}

/// Arithmetic shift with round-to-nearest (half away from zero) on right
/// shifts — the rounding the "Accumulator & Routing" block applies when
/// moving a wide accumulator value into a narrower output format.
///
/// `shift > 0` shifts left (exact); `shift < 0` shifts right with rounding.
pub fn shift_round(v: i64, shift: i32) -> i64 {
    if shift >= 0 {
        v << shift
    } else {
        let s = (-shift) as u32;
        if s >= 63 {
            return 0;
        }
        let half = 1i64 << (s - 1);
        if v >= 0 {
            (v + half) >> s
        } else {
            -((-v + half) >> s)
        }
    }
}

/// Realigns an integer value from fractional length `from_frac` to
/// `to_frac`, rounding when precision is dropped.
///
/// This is the radix bookkeeping the paper adds control signals for: the
/// accumulator holds format `⟨wide, m+7⟩` and the output activation needs
/// `⟨8, n⟩`, so the result is shifted by `n − (m+7)` with rounding.
pub fn realign(v: i64, from_frac: i32, to_frac: i32) -> i64 {
    shift_round(v, to_frac - from_frac)
}

/// The 16-input widening adder tree of the multiplier-free neuron.
///
/// Sixteen 16-bit shifted products are summed pairwise through four adder
/// levels whose widths grow 17 → 18 → 19 → 20 bits, so intermediate sums
/// can never overflow ("we ensure that there is no loss in intermediate
/// values"). The struct records the number of adders per level for the
/// hardware cost model.
///
/// # Examples
///
/// ```
/// use mfdfp_dfp::AdderTree;
///
/// let tree = AdderTree::new(16)?;
/// let products = [100i32; 16];
/// assert_eq!(tree.sum(&products)?, 1600);
/// # Ok::<(), mfdfp_dfp::DfpError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdderTree {
    fan_in: usize,
    levels: u32,
}

impl AdderTree {
    /// Creates a tree for `fan_in` inputs.
    ///
    /// # Errors
    ///
    /// Returns [`DfpError::BadFanIn`] unless `fan_in` is a power of two
    /// of at least 2.
    pub fn new(fan_in: usize) -> Result<Self> {
        if fan_in < 2 || !fan_in.is_power_of_two() {
            return Err(DfpError::BadFanIn(fan_in));
        }
        Ok(AdderTree { fan_in, levels: fan_in.trailing_zeros() })
    }

    /// Number of inputs.
    pub fn fan_in(&self) -> usize {
        self.fan_in
    }

    /// Number of adder levels (`log2 fan_in`).
    pub fn levels(&self) -> u32 {
        self.levels
    }

    /// Adder count at level `l` (level 0 is nearest the inputs).
    pub fn adders_at_level(&self, l: u32) -> usize {
        self.fan_in >> (l + 1)
    }

    /// Register width in bits at the *output* of level `l`, starting from
    /// [`PRODUCT_BITS`]-bit inputs: 17, 18, 19, 20 for a 16-input tree.
    pub fn width_at_level(&self, l: u32) -> u8 {
        PRODUCT_BITS + l as u8 + 1
    }

    /// Total adder count across all levels (`fan_in − 1`).
    pub fn total_adders(&self) -> usize {
        self.fan_in - 1
    }

    /// Sums `fan_in` products through the tree, verifying at every level
    /// that each partial sum fits its stated register width — a bit-width
    /// audit of the Figure 2(a) datapath, not just a sum.
    ///
    /// # Errors
    ///
    /// Returns [`DfpError::BadFanIn`] if `products.len() != fan_in`, or
    /// [`DfpError::Overflow`] if a partial sum exceeds its level width
    /// (impossible for genuine 16-bit products; reachable if callers feed
    /// wider values).
    pub fn sum(&self, products: &[i32]) -> Result<i64> {
        if products.len() != self.fan_in {
            return Err(DfpError::BadFanIn(products.len()));
        }
        for &p in products {
            if !fits_in_bits(p as i64, PRODUCT_BITS) {
                return Err(DfpError::Overflow { value: p as i64, bits: PRODUCT_BITS });
            }
        }
        let mut level: Vec<i64> = products.iter().map(|&p| p as i64).collect();
        for l in 0..self.levels {
            let width = self.width_at_level(l);
            let mut next = Vec::with_capacity(level.len() / 2);
            for pair in level.chunks(2) {
                let s = pair[0] + pair[1];
                if !fits_in_bits(s, width) {
                    return Err(DfpError::Overflow { value: s, bits: width });
                }
                next.push(s);
            }
            level = next;
        }
        Ok(level[0])
    }
}

/// A multi-cycle accumulator with saturation audit, modelling the
/// "Accumulator & Routing" block.
///
/// Layers wider than the physical fan-in are processed in several cycles;
/// the tree root is accumulated here. The accumulator is
/// [`ACCUMULATOR_BITS`] bits wide, which a bit-growth argument shows is
/// sufficient for every layer in the paper's benchmarks (≤ 2^11 terms of
/// ≤ 2^15 magnitude ⇒ ≤ 2^26).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Accumulator {
    value: i64,
}

impl Accumulator {
    /// A fresh, zeroed accumulator.
    pub fn new() -> Self {
        Accumulator { value: 0 }
    }

    /// Clears the accumulator (start of a new output neuron).
    pub fn reset(&mut self) {
        self.value = 0;
    }

    /// Adds a tree-root partial sum.
    ///
    /// # Errors
    ///
    /// Returns [`DfpError::Overflow`] if the running value leaves the
    /// 32-bit register.
    pub fn add(&mut self, partial: i64) -> Result<()> {
        let v = self.value + partial;
        if !fits_in_bits(v, ACCUMULATOR_BITS) {
            return Err(DfpError::Overflow { value: v, bits: ACCUMULATOR_BITS });
        }
        self.value = v;
        Ok(())
    }

    /// Current accumulated value.
    pub fn value(&self) -> i64 {
        self.value
    }

    /// Routes the accumulated value out: realigns from fractional length
    /// `from_frac` to `to_frac` (the `m`/`n` control signals), then
    /// saturates to a signed `out_bits` activation code.
    pub fn route(&self, from_frac: i32, to_frac: i32, out_bits: u8) -> i64 {
        saturate(realign(self.value, from_frac, to_frac), out_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_in_bits_boundaries() {
        assert!(fits_in_bits(127, 8));
        assert!(fits_in_bits(-128, 8));
        assert!(!fits_in_bits(128, 8));
        assert!(!fits_in_bits(-129, 8));
        assert!(fits_in_bits(32767, 16));
        assert!(!fits_in_bits(32768, 16));
    }

    #[test]
    fn saturate_clamps() {
        assert_eq!(saturate(1000, 8), 127);
        assert_eq!(saturate(-1000, 8), -128);
        assert_eq!(saturate(55, 8), 55);
    }

    #[test]
    fn shift_round_left_is_exact() {
        assert_eq!(shift_round(5, 3), 40);
        assert_eq!(shift_round(-5, 2), -20);
        assert_eq!(shift_round(0, 10), 0);
    }

    #[test]
    fn shift_round_right_rounds_half_away() {
        assert_eq!(shift_round(5, -1), 3); // 2.5 → 3
        assert_eq!(shift_round(-5, -1), -3); // -2.5 → -3
        assert_eq!(shift_round(4, -1), 2);
        assert_eq!(shift_round(6, -2), 2); // 1.5 → 2
        assert_eq!(shift_round(-6, -2), -2);
        assert_eq!(shift_round(7, -3), 1); // 0.875 → 1
        assert_eq!(shift_round(1, -63), 0);
    }

    #[test]
    fn realign_round_trips_when_widening() {
        // Widening (to_frac > from_frac) is exact and reversible.
        for v in [-100i64, -1, 0, 1, 77] {
            let wide = realign(v, 4, 9);
            assert_eq!(realign(wide, 9, 4), v);
        }
    }

    #[test]
    fn realign_matches_float_semantics() {
        // value v·2^-from == realign(v)·2^-to up to rounding.
        let v = 12345i64;
        let out = realign(v, 11, 4);
        let float_in = v as f64 * 2f64.powi(-11);
        let float_out = out as f64 * 2f64.powi(-4);
        assert!((float_in - float_out).abs() <= 2f64.powi(-5)); // half LSB of target
    }

    #[test]
    fn tree_requires_power_of_two_fan_in() {
        assert!(AdderTree::new(16).is_ok());
        assert!(AdderTree::new(2).is_ok());
        assert!(AdderTree::new(1).is_err());
        assert!(AdderTree::new(0).is_err());
        assert!(AdderTree::new(12).is_err());
    }

    #[test]
    fn tree_structure_matches_figure_2a() {
        let t = AdderTree::new(16).unwrap();
        assert_eq!(t.levels(), 4);
        assert_eq!(t.total_adders(), 15);
        assert_eq!(t.adders_at_level(0), 8);
        assert_eq!(t.adders_at_level(3), 1);
        // Widths annotated in Figure 2(a): 17, 18, 19, 20.
        assert_eq!(t.width_at_level(0), 17);
        assert_eq!(t.width_at_level(1), 18);
        assert_eq!(t.width_at_level(2), 19);
        assert_eq!(t.width_at_level(3), 20);
        assert_eq!(TREE_ROOT_BITS, t.width_at_level(3));
    }

    #[test]
    fn tree_sum_equals_naive_sum() {
        let t = AdderTree::new(16).unwrap();
        let products: Vec<i32> = (0..16).map(|i| i * i * 31 - 700).collect();
        let expect: i64 = products.iter().map(|&p| p as i64).sum();
        assert_eq!(t.sum(&products).unwrap(), expect);
    }

    #[test]
    fn tree_extreme_products_never_overflow_level_widths() {
        // All-max and all-min products must pass the per-level audit: the
        // widths in the figure are chosen exactly so this holds.
        let t = AdderTree::new(16).unwrap();
        let max = vec![(1i32 << 15) - 1; 16];
        let min = vec![-(1i32 << 15); 16];
        assert_eq!(t.sum(&max).unwrap(), 16 * ((1i64 << 15) - 1));
        assert_eq!(t.sum(&min).unwrap(), 16 * -(1i64 << 15));
    }

    #[test]
    fn tree_rejects_oversized_inputs() {
        let t = AdderTree::new(16).unwrap();
        let mut products = vec![0i32; 16];
        products[3] = 1 << 15; // too wide for a 16-bit product register
        assert!(matches!(t.sum(&products), Err(DfpError::Overflow { .. })));
    }

    #[test]
    fn tree_rejects_wrong_input_count() {
        let t = AdderTree::new(16).unwrap();
        assert!(t.sum(&[0; 8]).is_err());
    }

    #[test]
    fn accumulator_accumulates_and_routes() {
        let mut acc = Accumulator::new();
        acc.add(1000).unwrap();
        acc.add(-300).unwrap();
        assert_eq!(acc.value(), 700);
        // 700 in frac 11 → frac 4 is 700/128 = 5.47 → 5
        assert_eq!(acc.route(11, 4, 8), 5);
        acc.reset();
        assert_eq!(acc.value(), 0);
    }

    #[test]
    fn accumulator_route_saturates_to_output_bits() {
        let mut acc = Accumulator::new();
        acc.add(1 << 20).unwrap();
        assert_eq!(acc.route(7, 7, 8), 127);
        acc.reset();
        acc.add(-(1 << 20)).unwrap();
        assert_eq!(acc.route(7, 7, 8), -128);
    }

    #[test]
    fn accumulator_overflow_detected() {
        let mut acc = Accumulator::new();
        acc.add((1i64 << 31) - 1).unwrap();
        assert!(matches!(acc.add(1), Err(DfpError::Overflow { .. })));
    }
}
