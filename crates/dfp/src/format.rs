//! Dynamic fixed-point format `⟨b, f⟩` and activation quantization.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::{DfpError, Result};

/// A dynamic fixed-point format `⟨b, f⟩` (Courbariaux et al. notation used
/// by the paper): `b` total bits including sign, fractional length `f`.
///
/// A stored integer code `c` represents the real value `c · 2^(−f)`.
/// "Dynamic" refers to different layers choosing different `f` — the paper's
/// central data representation (`b = 8` everywhere in their experiments).
///
/// `f` may be negative (values larger than the integer range) or exceed
/// `b−1` (values much smaller than 1); both arise in practice.
///
/// # Examples
///
/// ```
/// use mfdfp_dfp::DfpFormat;
///
/// let fmt = DfpFormat::new(8, 5)?; // Q2.5, range ±3.96875
/// let code = fmt.quantize(1.37);
/// assert_eq!(code, 44); // 44 · 2⁻⁵ = 1.375
/// assert!((fmt.dequantize(code) - 1.375).abs() < 1e-6);
/// # Ok::<(), mfdfp_dfp::DfpError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DfpFormat {
    bits: u8,
    frac: i8,
}

impl DfpFormat {
    /// The paper's activation bit-width.
    pub const PAPER_BITS: u8 = 8;

    /// Creates a format with `bits` total bits and fractional length `frac`.
    ///
    /// # Errors
    ///
    /// Returns [`DfpError::BadFormat`] unless `2 ≤ bits ≤ 32`.
    pub fn new(bits: u8, frac: i8) -> Result<Self> {
        if !(2..=32).contains(&bits) {
            return Err(DfpError::BadFormat { bits, frac });
        }
        Ok(DfpFormat { bits, frac })
    }

    /// The paper's 8-bit format with fractional length `frac`.
    pub fn q8(frac: i8) -> Self {
        DfpFormat { bits: 8, frac }
    }

    /// Total bit-width (including sign).
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// Fractional length `f`; the radix point sits `f` bits from the LSB.
    pub fn frac(&self) -> i8 {
        self.frac
    }

    /// Quantization step `2^(−f)` — the value of one LSB.
    pub fn step(&self) -> f32 {
        (-self.frac as f32).exp2()
    }

    /// Largest representable integer code: `2^(b−1) − 1`.
    pub fn max_code(&self) -> i32 {
        (1i32 << (self.bits - 1)) - 1
    }

    /// Smallest representable integer code: `−2^(b−1)`.
    pub fn min_code(&self) -> i32 {
        -(1i32 << (self.bits - 1))
    }

    /// Largest representable real value.
    pub fn max_value(&self) -> f32 {
        self.max_code() as f32 * self.step()
    }

    /// Smallest (most negative) representable real value.
    pub fn min_value(&self) -> f32 {
        self.min_code() as f32 * self.step()
    }

    /// Quantizes a real value to the nearest integer code, saturating at the
    /// format bounds (round half away from zero, the hardware convention).
    pub fn quantize(&self, x: f32) -> i32 {
        if x.is_nan() {
            return 0;
        }
        let scaled = x / self.step();
        let rounded = if scaled >= 0.0 { (scaled + 0.5).floor() } else { (scaled - 0.5).ceil() };
        let clamped = rounded.clamp(self.min_code() as f32, self.max_code() as f32);
        clamped as i32
    }

    /// Real value of an integer code.
    pub fn dequantize(&self, code: i32) -> f32 {
        code as f32 * self.step()
    }

    /// Quantize-dequantize round trip: the representable value nearest `x`.
    pub fn round_trip(&self, x: f32) -> f32 {
        self.dequantize(self.quantize(x))
    }

    /// Quantizes a slice of reals into integer codes.
    pub fn quantize_slice(&self, xs: &[f32]) -> Vec<i32> {
        xs.iter().map(|&x| self.quantize(x)).collect()
    }

    /// Dequantizes a slice of codes into reals.
    pub fn dequantize_slice(&self, codes: &[i32]) -> Vec<f32> {
        codes.iter().map(|&c| self.dequantize(c)).collect()
    }

    /// Worst-case absolute quantization error for in-range values: half an
    /// LSB.
    pub fn max_abs_error(&self) -> f32 {
        self.step() / 2.0
    }
}

impl Default for DfpFormat {
    /// The paper's default: 8 bits, radix point mid-word (Q3.4).
    fn default() -> Self {
        DfpFormat::q8(4)
    }
}

impl fmt::Display for DfpFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨{},{}⟩", self.bits, self.frac)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_bounds() {
        assert!(DfpFormat::new(8, 4).is_ok());
        assert!(DfpFormat::new(1, 0).is_err());
        assert!(DfpFormat::new(33, 0).is_err());
        assert!(DfpFormat::new(2, -8).is_ok());
    }

    #[test]
    fn code_range_is_twos_complement() {
        let f = DfpFormat::q8(0);
        assert_eq!(f.max_code(), 127);
        assert_eq!(f.min_code(), -128);
        let f = DfpFormat::new(4, 0).unwrap();
        assert_eq!(f.max_code(), 7);
        assert_eq!(f.min_code(), -8);
    }

    #[test]
    fn step_and_range_follow_frac() {
        let f = DfpFormat::q8(7);
        assert_eq!(f.step(), 1.0 / 128.0);
        assert!((f.max_value() - 127.0 / 128.0).abs() < 1e-6);
        let f = DfpFormat::q8(0);
        assert_eq!(f.max_value(), 127.0);
        // Negative fractional length scales up.
        let f = DfpFormat::q8(-2);
        assert_eq!(f.step(), 4.0);
        assert_eq!(f.max_value(), 508.0);
    }

    #[test]
    fn quantize_round_half_away_from_zero() {
        let f = DfpFormat::q8(0);
        assert_eq!(f.quantize(2.5), 3);
        assert_eq!(f.quantize(-2.5), -3);
        assert_eq!(f.quantize(2.4), 2);
        assert_eq!(f.quantize(-2.4), -2);
    }

    #[test]
    fn quantize_saturates() {
        let f = DfpFormat::q8(0);
        assert_eq!(f.quantize(1e9), 127);
        assert_eq!(f.quantize(-1e9), -128);
        assert_eq!(f.quantize(f32::INFINITY), 127);
        assert_eq!(f.quantize(f32::NEG_INFINITY), -128);
        assert_eq!(f.quantize(f32::NAN), 0);
    }

    #[test]
    fn round_trip_error_within_half_step() {
        let f = DfpFormat::q8(5);
        for i in -100..100 {
            let x = i as f32 * 0.037;
            if x.abs() <= f.max_value() {
                let err = (f.round_trip(x) - x).abs();
                assert!(err <= f.max_abs_error() + 1e-7, "x={x} err={err}");
            }
        }
    }

    #[test]
    fn known_example_from_docs() {
        let f = DfpFormat::new(8, 5).unwrap();
        assert_eq!(f.quantize(1.37), 44);
        assert!((f.dequantize(44) - 1.375).abs() < 1e-6);
    }

    #[test]
    fn exact_codes_survive() {
        let f = DfpFormat::q8(4);
        for code in [-128, -77, -1, 0, 1, 64, 127] {
            assert_eq!(f.quantize(f.dequantize(code)), code);
        }
    }

    #[test]
    fn slice_helpers() {
        let f = DfpFormat::q8(4);
        let xs = [0.5, -0.25, 3.0];
        let codes = f.quantize_slice(&xs);
        assert_eq!(codes, vec![8, -4, 48]);
        let back = f.dequantize_slice(&codes);
        assert_eq!(back, vec![0.5, -0.25, 3.0]);
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(DfpFormat::q8(4).to_string(), "⟨8,4⟩");
    }

    #[test]
    fn default_is_paper_bits() {
        assert_eq!(DfpFormat::default().bits(), DfpFormat::PAPER_BITS);
    }
}
