//! Row-aligned nibble-packed weight matrices — the storage format the
//! shift-only GEMM kernel ([`mfdfp_tensor::ops::qgemm`] in the tensor
//! crate) consumes directly, with no per-element [`Pow2Weight`] decode.
//!
//! Each weight is the 4-bit hardware code of [`Pow2Weight::encode4`]; two
//! codes share a byte (low nibble first, matching [`pack_nibbles`]).
//! **Every row starts on a byte boundary**: a row of odd length carries one
//! zero pad nibble at its end, which consumers must skip — code `0`
//! decodes to `+2^0 = +1`, not zero, so the pad nibble is *never* part of
//! the arithmetic. Row alignment is what lets a kernel slice out one
//! output neuron's weights as a plain `&[u8]` without bit offsets.

use crate::error::{DfpError, Result};
use crate::pow2::Pow2Weight;

/// A `rows × cols` matrix of power-of-two weights, stored as row-aligned
/// packed 4-bit codes.
///
/// This is the deployed form of a weight matrix: 4 bits per weight plus at
/// most one pad nibble per row, i.e. the same 8× compression as the
/// paper's weight buffer, in a layout a shift-only kernel can stream.
///
/// # Examples
///
/// ```
/// use mfdfp_dfp::{PackedPow2Matrix, Pow2Weight};
///
/// // A 2×3 matrix: each 3-code row occupies 2 bytes (one pad nibble).
/// let ws: Vec<Pow2Weight> =
///     [0.5f32, -0.25, 1.0, -1.0, 0.125, 0.0078125].iter().map(|&w| Pow2Weight::from_f32(w)).collect();
/// let m = PackedPow2Matrix::from_weights(2, 3, &ws)?;
/// assert_eq!(m.row_stride(), 2);
/// assert_eq!(m.get(0, 1), Pow2Weight::from_f32(-0.25));
/// assert_eq!(m.to_weights(), ws); // lossless round trip
/// # Ok::<(), mfdfp_dfp::DfpError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedPow2Matrix {
    rows: usize,
    cols: usize,
    stride: usize,
    data: Vec<u8>,
}

impl PackedPow2Matrix {
    /// Packs `rows × cols` weights (row-major) into nibble codes.
    ///
    /// # Errors
    ///
    /// Returns [`DfpError::LengthMismatch`] if `ws.len() != rows * cols`.
    pub fn from_weights(rows: usize, cols: usize, ws: &[Pow2Weight]) -> Result<Self> {
        if ws.len() != rows * cols {
            return Err(DfpError::LengthMismatch { expected: rows * cols, actual: ws.len() });
        }
        let stride = cols.div_ceil(2);
        let mut data = vec![0u8; rows * stride];
        for r in 0..rows {
            let row = &ws[r * cols..(r + 1) * cols];
            let out = &mut data[r * stride..(r + 1) * stride];
            for (byte, pair) in out.iter_mut().zip(row.chunks(2)) {
                let lo = pair[0].encode4();
                let hi = if pair.len() == 2 { pair[1].encode4() } else { 0 };
                *byte = (hi << 4) | lo;
            }
        }
        Ok(PackedPow2Matrix { rows, cols, stride, data })
    }

    /// Quantizes `rows × cols` float weights (row-major) to powers of two
    /// and packs them — the one-step path from a trained layer to its
    /// deployed weight buffer.
    ///
    /// # Errors
    ///
    /// Returns [`DfpError::LengthMismatch`] if `ws.len() != rows * cols`.
    pub fn from_f32(rows: usize, cols: usize, ws: &[f32]) -> Result<Self> {
        let quantized: Vec<Pow2Weight> = ws.iter().map(|&w| Pow2Weight::from_f32(w)).collect();
        Self::from_weights(rows, cols, &quantized)
    }

    /// Number of weight rows (output neurons).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of weight columns (input synapses per neuron).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total weight count (`rows × cols`), pad nibbles excluded.
    pub fn count(&self) -> usize {
        self.rows * self.cols
    }

    /// Bytes per packed row (`ceil(cols / 2)`).
    pub fn row_stride(&self) -> usize {
        self.stride
    }

    /// The packed bytes of row `r`: `row_stride()` bytes, low nibble
    /// first; for odd `cols` the final high nibble is zero padding.
    pub fn row_bytes(&self, r: usize) -> &[u8] {
        &self.data[r * self.stride..(r + 1) * self.stride]
    }

    /// The whole packed buffer, row-major with per-row byte alignment.
    pub fn as_bytes(&self) -> &[u8] {
        &self.data
    }

    /// Decodes the weight at `(r, c)` — a convenience for tests and
    /// reference paths; the hot kernel never calls this.
    pub fn get(&self, r: usize, c: usize) -> Pow2Weight {
        let byte = self.data[r * self.stride + c / 2];
        let nibble = if c.is_multiple_of(2) { byte & 0xF } else { byte >> 4 };
        Pow2Weight::decode4(nibble).expect("4-bit nibble is always a valid code")
    }

    /// Unpacks every weight back to [`Pow2Weight`] values (row-major, pad
    /// nibbles skipped) — the decode-based reference path and the
    /// deployment serialiser use this; inference does not.
    pub fn to_weights(&self) -> Vec<Pow2Weight> {
        let mut out = Vec::with_capacity(self.count());
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.push(self.get(r, c));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pow2::pack_nibbles;

    fn weights(n: usize) -> Vec<Pow2Weight> {
        (0..n).map(|i| Pow2Weight::decode4((i % 16) as u8).unwrap()).collect()
    }

    #[test]
    fn round_trips_even_and_odd_row_lengths() {
        for cols in [1usize, 2, 3, 7, 8] {
            for rows in [1usize, 2, 5] {
                let ws = weights(rows * cols);
                let m = PackedPow2Matrix::from_weights(rows, cols, &ws).unwrap();
                assert_eq!(m.rows(), rows);
                assert_eq!(m.cols(), cols);
                assert_eq!(m.count(), rows * cols);
                assert_eq!(m.row_stride(), cols.div_ceil(2));
                assert_eq!(m.to_weights(), ws, "rows={rows} cols={cols}");
                for r in 0..rows {
                    for c in 0..cols {
                        assert_eq!(m.get(r, c), ws[r * cols + c]);
                    }
                }
            }
        }
    }

    #[test]
    fn even_rows_match_flat_nibble_packing() {
        // With even cols there are no pad nibbles, so the buffer is exactly
        // the flat pack_nibbles image.
        let ws = weights(4 * 6);
        let m = PackedPow2Matrix::from_weights(4, 6, &ws).unwrap();
        assert_eq!(m.as_bytes(), pack_nibbles(&ws).as_slice());
    }

    #[test]
    fn odd_rows_are_byte_aligned_with_zero_pad() {
        let ws = weights(2 * 3);
        let m = PackedPow2Matrix::from_weights(2, 3, &ws).unwrap();
        assert_eq!(m.as_bytes().len(), 4); // 2 rows × 2 bytes
        assert_eq!(m.row_bytes(0)[1] >> 4, 0, "pad nibble must be zero");
        assert_eq!(m.row_bytes(1)[1] >> 4, 0);
    }

    #[test]
    fn degenerate_shapes() {
        let m = PackedPow2Matrix::from_weights(0, 5, &[]).unwrap();
        assert_eq!(m.count(), 0);
        assert!(m.as_bytes().is_empty());
        let m = PackedPow2Matrix::from_weights(3, 0, &[]).unwrap();
        assert_eq!(m.row_stride(), 0);
        assert_eq!(m.to_weights(), vec![]);
    }

    #[test]
    fn rejects_wrong_count() {
        assert!(PackedPow2Matrix::from_weights(2, 2, &weights(3)).is_err());
        assert!(PackedPow2Matrix::from_f32(2, 2, &[0.5; 5]).is_err());
    }

    #[test]
    fn from_f32_quantizes_like_pow2weight() {
        let vals = [0.3f32, -0.6, 0.01, 1.0];
        let m = PackedPow2Matrix::from_f32(2, 2, &vals).unwrap();
        for (i, &v) in vals.iter().enumerate() {
            assert_eq!(m.get(i / 2, i % 2), Pow2Weight::from_f32(v));
        }
    }
}
