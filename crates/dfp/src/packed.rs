//! Row-aligned nibble-packed weight matrices — the storage format the
//! shift-only GEMM kernel ([`mfdfp_tensor::ops::qgemm`] in the tensor
//! crate) consumes directly, with no per-element [`Pow2Weight`] decode.
//!
//! Each weight is the 4-bit hardware code of [`Pow2Weight::encode4`]; two
//! codes share a byte (low nibble first, matching [`pack_nibbles`]).
//! **Every row starts on a byte boundary**: a row of odd length carries one
//! zero pad nibble at its end, which consumers must skip — code `0`
//! decodes to `+2^0 = +1`, not zero, so the pad nibble is *never* part of
//! the arithmetic. Row alignment is what lets a kernel slice out one
//! output neuron's weights as a plain `&[u8]` without bit offsets.
//!
//! Since PR 6 the backing bytes live in an [`AlignedBytes`] cell — either
//! owned by the matrix or a shared window into a deployment image
//! ([`PackedPow2Matrix::from_shared`]), so loading a model image lends its
//! weight payload to the kernel with zero copies. The row stride may also
//! exceed the minimal `ceil(cols/2)` ([`PackedPow2Matrix::from_weights_aligned`]
//! pads it to 64 bytes), giving every row a cache-line-aligned start.

use std::sync::Arc;

use crate::aligned::AlignedBytes;
use crate::error::{DfpError, Result};
use crate::pow2::Pow2Weight;

/// Row stride that starts every packed row on a 64-byte boundary.
fn aligned_stride(cols: usize) -> usize {
    cols.div_ceil(2).next_multiple_of(crate::aligned::ALIGN)
}

/// The byte region holding the packed nibbles: owned by this matrix or a
/// window into a shared buffer (a deployment image).
#[derive(Debug, Clone)]
enum Storage {
    Owned(AlignedBytes),
    Shared { buf: Arc<AlignedBytes>, offset: usize, len: usize },
}

impl Storage {
    fn bytes(&self) -> &[u8] {
        match self {
            Storage::Owned(b) => b.as_slice(),
            Storage::Shared { buf, offset, len } => &buf.as_slice()[*offset..*offset + *len],
        }
    }
}

/// A `rows × cols` matrix of power-of-two weights, stored as row-aligned
/// packed 4-bit codes.
///
/// This is the deployed form of a weight matrix: 4 bits per weight plus at
/// most one pad nibble per row, i.e. the same 8× compression as the
/// paper's weight buffer, in a layout a shift-only kernel can stream.
/// The backing bytes are 64-byte-[`AlignedBytes`], owned or borrowed
/// zero-copy from a shared deployment image.
///
/// # Examples
///
/// ```
/// use mfdfp_dfp::{PackedPow2Matrix, Pow2Weight};
///
/// // A 2×3 matrix: each 3-code row occupies 2 bytes (one pad nibble).
/// let ws: Vec<Pow2Weight> =
///     [0.5f32, -0.25, 1.0, -1.0, 0.125, 0.0078125].iter().map(|&w| Pow2Weight::from_f32(w)).collect();
/// let m = PackedPow2Matrix::from_weights(2, 3, &ws)?;
/// assert_eq!(m.row_stride(), 2);
/// assert_eq!(m.get(0, 1), Pow2Weight::from_f32(-0.25));
/// assert_eq!(m.to_weights(), ws); // lossless round trip
/// # Ok::<(), mfdfp_dfp::DfpError>(())
/// ```
#[derive(Debug, Clone)]
pub struct PackedPow2Matrix {
    rows: usize,
    cols: usize,
    stride: usize,
    storage: Storage,
}

impl PackedPow2Matrix {
    /// Packs `rows × cols` weights (row-major) into nibble codes with the
    /// minimal row stride `ceil(cols/2)` — the most compact image form.
    ///
    /// # Errors
    ///
    /// Returns [`DfpError::LengthMismatch`] if `ws.len() != rows * cols`.
    pub fn from_weights(rows: usize, cols: usize, ws: &[Pow2Weight]) -> Result<Self> {
        Self::from_weights_with_stride(rows, cols, cols.div_ceil(2), ws)
    }

    /// Packs `rows × cols` weights with every row start padded to a
    /// 64-byte boundary — the layout aligned SIMD loads want. Costs up to
    /// 63 bytes of zero padding per row, so the compact
    /// [`PackedPow2Matrix::from_weights`] stays the deployment default.
    ///
    /// # Errors
    ///
    /// Returns [`DfpError::LengthMismatch`] if `ws.len() != rows * cols`.
    pub fn from_weights_aligned(rows: usize, cols: usize, ws: &[Pow2Weight]) -> Result<Self> {
        Self::from_weights_with_stride(rows, cols, aligned_stride(cols), ws)
    }

    /// Packs `rows × cols` weights with an explicit row stride (bytes).
    ///
    /// # Errors
    ///
    /// Returns [`DfpError::LengthMismatch`] if `ws.len() != rows * cols`
    /// or `stride < ceil(cols/2)`.
    pub fn from_weights_with_stride(
        rows: usize,
        cols: usize,
        stride: usize,
        ws: &[Pow2Weight],
    ) -> Result<Self> {
        if ws.len() != rows * cols {
            return Err(DfpError::LengthMismatch { expected: rows * cols, actual: ws.len() });
        }
        let payload = cols.div_ceil(2);
        if stride < payload {
            return Err(DfpError::LengthMismatch { expected: payload, actual: stride });
        }
        let mut data = AlignedBytes::with_capacity(rows * stride);
        let mut row_buf = vec![0u8; stride];
        for r in 0..rows {
            row_buf.fill(0);
            let row = &ws[r * cols..(r + 1) * cols];
            for (byte, pair) in row_buf.iter_mut().zip(row.chunks(2)) {
                let lo = pair[0].encode4();
                let hi = if pair.len() == 2 { pair[1].encode4() } else { 0 };
                *byte = (hi << 4) | lo;
            }
            data.extend_from_slice(&row_buf);
        }
        Ok(PackedPow2Matrix { rows, cols, stride, storage: Storage::Owned(data) })
    }

    /// Quantizes `rows × cols` float weights (row-major) to powers of two
    /// and packs them — the one-step path from a trained layer to its
    /// deployed weight buffer.
    ///
    /// # Errors
    ///
    /// Returns [`DfpError::LengthMismatch`] if `ws.len() != rows * cols`.
    pub fn from_f32(rows: usize, cols: usize, ws: &[f32]) -> Result<Self> {
        let quantized: Vec<Pow2Weight> = ws.iter().map(|&w| Pow2Weight::from_f32(w)).collect();
        Self::from_weights(rows, cols, &quantized)
    }

    /// A zero-copy matrix over `rows * stride` packed bytes at `offset`
    /// into a shared buffer — the deployment-image read path. No byte is
    /// copied or decoded; the image's nibble payload *is* the kernel's
    /// weight buffer.
    ///
    /// # Errors
    ///
    /// Returns [`DfpError::LengthMismatch`] if `stride < ceil(cols/2)` or
    /// the window runs past `buf`.
    pub fn from_shared(
        rows: usize,
        cols: usize,
        stride: usize,
        buf: Arc<AlignedBytes>,
        offset: usize,
    ) -> Result<Self> {
        let payload = cols.div_ceil(2);
        if stride < payload {
            return Err(DfpError::LengthMismatch { expected: payload, actual: stride });
        }
        let len = rows
            .checked_mul(stride)
            .ok_or(DfpError::LengthMismatch { expected: usize::MAX, actual: buf.len() })?;
        let end = offset
            .checked_add(len)
            .ok_or(DfpError::LengthMismatch { expected: usize::MAX, actual: buf.len() })?;
        if end > buf.len() {
            return Err(DfpError::LengthMismatch { expected: end, actual: buf.len() });
        }
        Ok(PackedPow2Matrix { rows, cols, stride, storage: Storage::Shared { buf, offset, len } })
    }

    /// Number of weight rows (output neurons).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of weight columns (input synapses per neuron).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total weight count (`rows × cols`), pad nibbles excluded.
    pub fn count(&self) -> usize {
        self.rows * self.cols
    }

    /// Bytes between consecutive row starts. At least
    /// `ceil(cols / 2)` (the payload size); more when the matrix was
    /// built with an aligned stride.
    pub fn row_stride(&self) -> usize {
        self.stride
    }

    /// Payload bytes per row: `ceil(cols / 2)`, independent of stride.
    pub fn row_payload_bytes(&self) -> usize {
        self.cols.div_ceil(2)
    }

    /// Whether the backing bytes are a zero-copy window into a shared
    /// buffer (a deployment image) rather than owned by this matrix.
    pub fn is_shared(&self) -> bool {
        matches!(self.storage, Storage::Shared { .. })
    }

    /// The packed payload bytes of row `r`: `ceil(cols / 2)` bytes, low
    /// nibble first; for odd `cols` the final high nibble is zero
    /// padding. Stride padding beyond the payload is never included.
    pub fn row_bytes(&self, r: usize) -> &[u8] {
        let start = r * self.stride;
        &self.storage.bytes()[start..start + self.row_payload_bytes()]
    }

    /// The whole packed backing region, row-major: `rows * row_stride()`
    /// bytes including any inter-row stride padding. With the default
    /// minimal stride this is exactly the per-row-aligned nibble image.
    pub fn as_bytes(&self) -> &[u8] {
        self.storage.bytes()
    }

    /// Decodes the weight at `(r, c)` — a convenience for tests and
    /// reference paths; the hot kernel never calls this.
    pub fn get(&self, r: usize, c: usize) -> Pow2Weight {
        let byte = self.storage.bytes()[r * self.stride + c / 2];
        let nibble = if c.is_multiple_of(2) { byte & 0xF } else { byte >> 4 };
        Pow2Weight::decode4(nibble).expect("4-bit nibble is always a valid code")
    }

    /// Unpacks every weight back to [`Pow2Weight`] values (row-major, pad
    /// nibbles skipped) — the decode-based reference path and the
    /// deployment serialiser use this; inference does not.
    pub fn to_weights(&self) -> Vec<Pow2Weight> {
        let mut out = Vec::with_capacity(self.count());
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.push(self.get(r, c));
            }
        }
        out
    }
}

/// Equality is *logical*: same shape and same weight codes, regardless of
/// row stride or whether the backing is owned or shared. Pad nibbles and
/// stride padding never participate.
impl PartialEq for PackedPow2Matrix {
    fn eq(&self, other: &Self) -> bool {
        if self.rows != other.rows || self.cols != other.cols {
            return false;
        }
        let payload = self.row_payload_bytes();
        let odd = !self.cols.is_multiple_of(2);
        for r in 0..self.rows {
            let (a, b) = (self.row_bytes(r), other.row_bytes(r));
            if payload == 0 {
                continue;
            }
            if a[..payload - 1] != b[..payload - 1] {
                return false;
            }
            // Mask the pad nibble of the last byte for odd row lengths so
            // a shared window with dirty padding still compares by value.
            let mask = if odd { 0x0F } else { 0xFF };
            if a[payload - 1] & mask != b[payload - 1] & mask {
                return false;
            }
        }
        true
    }
}

impl Eq for PackedPow2Matrix {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pow2::pack_nibbles;

    fn weights(n: usize) -> Vec<Pow2Weight> {
        (0..n).map(|i| Pow2Weight::decode4((i % 16) as u8).unwrap()).collect()
    }

    #[test]
    fn round_trips_even_and_odd_row_lengths() {
        for cols in [1usize, 2, 3, 7, 8] {
            for rows in [1usize, 2, 5] {
                let ws = weights(rows * cols);
                let m = PackedPow2Matrix::from_weights(rows, cols, &ws).unwrap();
                assert_eq!(m.rows(), rows);
                assert_eq!(m.cols(), cols);
                assert_eq!(m.count(), rows * cols);
                assert_eq!(m.row_stride(), cols.div_ceil(2));
                assert_eq!(m.to_weights(), ws, "rows={rows} cols={cols}");
                for r in 0..rows {
                    for c in 0..cols {
                        assert_eq!(m.get(r, c), ws[r * cols + c]);
                    }
                }
            }
        }
    }

    #[test]
    fn even_rows_match_flat_nibble_packing() {
        // With even cols there are no pad nibbles, so the buffer is exactly
        // the flat pack_nibbles image.
        let ws = weights(4 * 6);
        let m = PackedPow2Matrix::from_weights(4, 6, &ws).unwrap();
        assert_eq!(m.as_bytes(), pack_nibbles(&ws).as_slice());
    }

    #[test]
    fn odd_rows_are_byte_aligned_with_zero_pad() {
        let ws = weights(2 * 3);
        let m = PackedPow2Matrix::from_weights(2, 3, &ws).unwrap();
        assert_eq!(m.as_bytes().len(), 4); // 2 rows × 2 bytes
        assert_eq!(m.row_bytes(0)[1] >> 4, 0, "pad nibble must be zero");
        assert_eq!(m.row_bytes(1)[1] >> 4, 0);
    }

    #[test]
    fn degenerate_shapes() {
        let m = PackedPow2Matrix::from_weights(0, 5, &[]).unwrap();
        assert_eq!(m.count(), 0);
        assert!(m.as_bytes().is_empty());
        let m = PackedPow2Matrix::from_weights(3, 0, &[]).unwrap();
        assert_eq!(m.row_stride(), 0);
        assert_eq!(m.to_weights(), vec![]);
    }

    #[test]
    fn rejects_wrong_count() {
        assert!(PackedPow2Matrix::from_weights(2, 2, &weights(3)).is_err());
        assert!(PackedPow2Matrix::from_f32(2, 2, &[0.5; 5]).is_err());
    }

    #[test]
    fn from_f32_quantizes_like_pow2weight() {
        let vals = [0.3f32, -0.6, 0.01, 1.0];
        let m = PackedPow2Matrix::from_f32(2, 2, &vals).unwrap();
        for (i, &v) in vals.iter().enumerate() {
            assert_eq!(m.get(i / 2, i % 2), Pow2Weight::from_f32(v));
        }
    }

    #[test]
    fn aligned_stride_is_logically_equal_to_compact() {
        for (rows, cols) in [(1usize, 1usize), (3, 5), (4, 6), (2, 129)] {
            let ws = weights(rows * cols);
            let compact = PackedPow2Matrix::from_weights(rows, cols, &ws).unwrap();
            let aligned = PackedPow2Matrix::from_weights_aligned(rows, cols, &ws).unwrap();
            assert_eq!(aligned.row_stride() % 64, 0);
            assert_eq!(aligned.row_payload_bytes(), compact.row_stride());
            assert_eq!(aligned, compact, "rows={rows} cols={cols}");
            assert_eq!(aligned.to_weights(), ws);
            for r in 0..rows {
                assert_eq!(aligned.row_bytes(r), compact.row_bytes(r));
            }
        }
    }

    #[test]
    fn shared_window_is_zero_copy_and_equal() {
        let ws = weights(3 * 5);
        let owned = PackedPow2Matrix::from_weights(3, 5, &ws).unwrap();
        // Build a buffer with a 64-byte header before the payload, as a
        // deployment image would.
        let mut buf = AlignedBytes::from_slice(&[0xEEu8; 64]);
        buf.extend_from_slice(owned.as_bytes());
        let buf = Arc::new(buf);
        let shared =
            PackedPow2Matrix::from_shared(3, 5, owned.row_stride(), Arc::clone(&buf), 64).unwrap();
        assert!(shared.is_shared());
        assert!(!owned.is_shared());
        assert_eq!(shared, owned);
        assert_eq!(shared.to_weights(), ws);
        assert_eq!(shared.as_bytes().as_ptr(), unsafe { buf.as_ptr().add(64) });
    }

    #[test]
    fn from_shared_rejects_bad_geometry() {
        let buf = Arc::new(AlignedBytes::from_slice(&[0u8; 64]));
        // stride below payload
        assert!(PackedPow2Matrix::from_shared(2, 5, 2, Arc::clone(&buf), 0).is_err());
        // window past end
        assert!(PackedPow2Matrix::from_shared(2, 64, 32, Arc::clone(&buf), 32).is_err());
        // overflowing arithmetic
        assert!(PackedPow2Matrix::from_shared(usize::MAX, 2, 1, Arc::clone(&buf), 0).is_err());
        assert!(PackedPow2Matrix::from_shared(1, 2, 1, buf, usize::MAX).is_err());
    }

    #[test]
    fn equality_masks_dirty_pad_nibbles() {
        let ws = weights(2 * 3);
        let owned = PackedPow2Matrix::from_weights(2, 3, &ws).unwrap();
        // Same payload but with garbage in the pad nibbles.
        let mut dirty = owned.as_bytes().to_vec();
        dirty[1] |= 0xF0;
        dirty[3] |= 0xA0;
        let buf = Arc::new(AlignedBytes::from_slice(&dirty));
        let shared = PackedPow2Matrix::from_shared(2, 3, 2, buf, 0).unwrap();
        assert_eq!(shared, owned);
        assert_eq!(shared.to_weights(), ws);
    }
}
