//! 64-byte-aligned byte storage — the one allocation primitive every
//! deployed weight buffer in the workspace sits on.
//!
//! The paper's deployment model (Fig. 2) is a host DMA-ing a packed
//! weight image into a fixed accelerator buffer: the bytes are laid out
//! once, aligned for the datapath, and never decoded or copied again.
//! [`AlignedBytes`] is the software rendition of that buffer — memory
//! allocated through an explicit [`std::alloc::Layout`] with
//! [`ALIGN`]-byte (cache-line / AVX-512-lane) alignment, plus safe typed
//! views (`&[i8]`, `&[u8]`, `&[i64]`, …) carved out at validated offsets.
//!
//! Two consumers build on it:
//!
//! * [`PackedPow2Matrix`](crate::PackedPow2Matrix) backs its nibble codes
//!   with either an owned [`AlignedBytes`] or a shared window into one
//!   (`Arc`-refcounted), so a deployment image can lend its weight bytes
//!   to the kernel with zero copies.
//! * [`I64Section`] does the same for bias vectors, which the datapath
//!   reads as little-endian `i64` accumulator constants.
//!
//! Alignment contract: the base pointer of every non-empty
//! [`AlignedBytes`] is [`ALIGN`]-byte aligned, so any interior offset that
//! is a multiple of `align_of::<T>()` yields a well-aligned `&[T]`.

use std::alloc::{alloc, dealloc, handle_alloc_error, realloc, Layout};
use std::ptr::NonNull;
use std::sync::Arc;

use crate::error::{DfpError, Result};

/// Alignment (bytes) of every [`AlignedBytes`] allocation: one x86 cache
/// line, which is also the widest vector lane (AVX-512) any planned
/// kernel loads.
pub const ALIGN: usize = 64;

mod sealed {
    pub trait Sealed {}
    impl Sealed for i8 {}
    impl Sealed for u8 {}
    impl Sealed for i32 {}
    impl Sealed for u32 {}
    impl Sealed for i64 {}
    impl Sealed for u64 {}
    impl Sealed for f32 {}
}

/// Plain-old-data element types that may view or populate an
/// [`AlignedBytes`] region: fixed-size numeric types with no padding,
/// no invalid bit patterns and no drop glue.
///
/// Sealed — implemented for `i8`, `u8`, `i32`, `u32`, `i64`, `u64`,
/// `f32`.
pub trait Pod: sealed::Sealed + Copy + Send + Sync + 'static {}
impl Pod for i8 {}
impl Pod for u8 {}
impl Pod for i32 {}
impl Pod for u32 {}
impl Pod for i64 {}
impl Pod for u64 {}
impl Pod for f32 {}

/// An owned, grow-only byte buffer whose base pointer is always
/// [`ALIGN`]-byte aligned.
///
/// This is the storage cell behind deployment images, packed weight
/// matrices and (via `mfdfp-tensor`'s arena) every inference scratch
/// lane. Unlike `Vec<u8>` the alignment is part of the type's contract,
/// so a reader may reinterpret interior ranges as `&[i64]` or stream
/// rows into aligned SIMD loads without runtime checks beyond offset
/// arithmetic.
///
/// # Examples
///
/// ```
/// use mfdfp_dfp::aligned::{AlignedBytes, ALIGN};
///
/// let mut buf = AlignedBytes::new();
/// buf.extend_from_slice(&[1u8, 2, 3]);
/// buf.pad_to(8);
/// assert_eq!(buf.len(), 8);
/// assert_eq!(buf.as_ptr() as usize % ALIGN, 0);
/// let words: &[i64] = buf.view::<i64>(0, 1)?;
/// assert_eq!(words[0], i64::from_le_bytes([1, 2, 3, 0, 0, 0, 0, 0]));
/// # Ok::<(), mfdfp_dfp::DfpError>(())
/// ```
pub struct AlignedBytes {
    ptr: NonNull<u8>,
    len: usize,
    cap: usize,
}

// SAFETY: `AlignedBytes` uniquely owns its heap allocation and exposes
// no interior mutability; moving it between threads or sharing `&self`
// is as safe as for `Vec<u8>`.
unsafe impl Send for AlignedBytes {}
unsafe impl Sync for AlignedBytes {}

impl AlignedBytes {
    /// An empty buffer; allocates nothing until bytes are appended.
    pub const fn new() -> Self {
        // A dangling-but-aligned pointer, same trick as `NonNull::dangling`
        // but for our 64-byte contract: valid for zero-length reads only.
        let ptr = unsafe { NonNull::new_unchecked(ALIGN as *mut u8) };
        AlignedBytes { ptr, len: 0, cap: 0 }
    }

    /// An empty buffer with room for `cap` bytes (rounded up to a
    /// multiple of [`ALIGN`]).
    pub fn with_capacity(cap: usize) -> Self {
        let mut b = Self::new();
        b.reserve(cap);
        b
    }

    /// Copies `bytes` into a fresh aligned buffer.
    pub fn from_slice(bytes: &[u8]) -> Self {
        let mut b = Self::with_capacity(bytes.len());
        b.extend_from_slice(bytes);
        b
    }

    /// Number of initialised bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no bytes have been written.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Base pointer; [`ALIGN`]-byte aligned whenever the buffer is
    /// non-empty (and for the empty buffer it is a dangling aligned
    /// address, never to be dereferenced).
    pub fn as_ptr(&self) -> *const u8 {
        self.ptr.as_ptr()
    }

    /// Base pointer, mutably (see [`AlignedBytes::as_ptr`]).
    pub fn as_mut_ptr(&mut self) -> *mut u8 {
        self.ptr.as_ptr()
    }

    /// The initialised bytes.
    pub fn as_slice(&self) -> &[u8] {
        // SAFETY: `..len` is initialised (zeroed or copied on append) and
        // the allocation outlives `&self`.
        unsafe { std::slice::from_raw_parts(self.ptr.as_ptr(), self.len) }
    }

    /// The initialised bytes, mutably.
    pub fn as_mut_slice(&mut self) -> &mut [u8] {
        // SAFETY: as `as_slice`, plus `&mut self` guarantees uniqueness.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.as_ptr(), self.len) }
    }

    /// Ensures capacity for at least `total` bytes, preserving contents
    /// and alignment. Grow-only; never shrinks.
    pub fn reserve(&mut self, total: usize) {
        if total <= self.cap {
            return;
        }
        // Amortised doubling, rounded to the alignment quantum.
        let new_cap = total.max(self.cap * 2).next_multiple_of(ALIGN);
        let new_layout = Layout::from_size_align(new_cap, ALIGN).expect("valid aligned layout");
        let new_ptr = if self.cap == 0 {
            // SAFETY: `new_cap` is non-zero (total > cap = 0 and rounded up).
            unsafe { alloc(new_layout) }
        } else {
            let old_layout =
                Layout::from_size_align(self.cap, ALIGN).expect("valid aligned layout");
            // SAFETY: `ptr` was allocated with `old_layout`; `realloc`
            // preserves the layout's alignment.
            unsafe { realloc(self.ptr.as_ptr(), old_layout, new_cap) }
        };
        let Some(p) = NonNull::new(new_ptr) else { handle_alloc_error(new_layout) };
        debug_assert_eq!(p.as_ptr() as usize % ALIGN, 0);
        self.ptr = p;
        self.cap = new_cap;
    }

    /// Appends `bytes` at the end of the buffer.
    pub fn extend_from_slice(&mut self, bytes: &[u8]) {
        if bytes.is_empty() {
            return;
        }
        self.reserve(self.len + bytes.len());
        // SAFETY: capacity reserved above; source and destination are
        // distinct allocations.
        unsafe {
            std::ptr::copy_nonoverlapping(
                bytes.as_ptr(),
                self.ptr.as_ptr().add(self.len),
                bytes.len(),
            );
        }
        self.len += bytes.len();
    }

    /// Grows the initialised region to `len` bytes, zero-filling the new
    /// tail. Grow-only: a smaller `len` is a no-op (typed arenas track
    /// their own logical length on top of this).
    pub fn grow_zeroed(&mut self, len: usize) {
        if len <= self.len {
            return;
        }
        self.reserve(len);
        // SAFETY: capacity reserved above.
        unsafe {
            std::ptr::write_bytes(self.ptr.as_ptr().add(self.len), 0, len - self.len);
        }
        self.len = len;
    }

    /// Appends zero bytes until `len()` is a multiple of `align`
    /// (a power of two). Image writers use this to start every section
    /// on an aligned boundary.
    pub fn pad_to(&mut self, align: usize) {
        debug_assert!(align.is_power_of_two());
        let target = self.len.next_multiple_of(align);
        if target == self.len {
            return;
        }
        self.reserve(target);
        // SAFETY: capacity reserved above.
        unsafe {
            std::ptr::write_bytes(self.ptr.as_ptr().add(self.len), 0, target - self.len);
        }
        self.len = target;
    }

    /// A typed view of `count` elements of `T` starting at byte
    /// `offset` — the zero-copy read path of the deployment image.
    ///
    /// # Errors
    ///
    /// [`DfpError::Misaligned`] if `offset` is not a multiple of
    /// `align_of::<T>()`; [`DfpError::LengthMismatch`] if the range runs
    /// past the initialised bytes.
    pub fn view<T: Pod>(&self, offset: usize, count: usize) -> Result<&[T]> {
        let size = std::mem::size_of::<T>();
        if !offset.is_multiple_of(std::mem::align_of::<T>()) {
            return Err(DfpError::Misaligned { offset, align: std::mem::align_of::<T>() });
        }
        let bytes = count.checked_mul(size).and_then(|b| b.checked_add(offset));
        match bytes {
            Some(end) if end <= self.len => {}
            _ => {
                return Err(DfpError::LengthMismatch {
                    expected: offset.saturating_add(count.saturating_mul(size)),
                    actual: self.len,
                })
            }
        }
        if count == 0 {
            return Ok(&[]);
        }
        // SAFETY: bounds and alignment checked above; base pointer is
        // ALIGN-aligned (>= align_of::<T>() for every Pod type) and the
        // bytes are initialised. Every Pod type accepts any bit pattern.
        Ok(unsafe { std::slice::from_raw_parts(self.ptr.as_ptr().add(offset).cast::<T>(), count) })
    }
}

impl Default for AlignedBytes {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for AlignedBytes {
    fn drop(&mut self) {
        if self.cap != 0 {
            // SAFETY: `ptr` was allocated with exactly this layout.
            unsafe {
                dealloc(self.ptr.as_ptr(), Layout::from_size_align_unchecked(self.cap, ALIGN));
            }
        }
    }
}

impl Clone for AlignedBytes {
    fn clone(&self) -> Self {
        Self::from_slice(self.as_slice())
    }
}

impl std::fmt::Debug for AlignedBytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AlignedBytes").field("len", &self.len).field("cap", &self.cap).finish()
    }
}

impl PartialEq for AlignedBytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for AlignedBytes {}

impl std::ops::Deref for AlignedBytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<&[u8]> for AlignedBytes {
    fn from(bytes: &[u8]) -> Self {
        Self::from_slice(bytes)
    }
}

impl From<Vec<u8>> for AlignedBytes {
    fn from(bytes: Vec<u8>) -> Self {
        Self::from_slice(&bytes)
    }
}

/// A bias vector: either owned `i64` values or a zero-copy window into a
/// shared aligned buffer (a deployment image).
///
/// Both variants dereference to `&[i64]`, so the datapath is oblivious
/// to the backing. The shared variant is how `QuantizedNet::from_image`
/// (in `mfdfp-core`) lends image bytes to the accelerator layers without
/// copying them.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use mfdfp_dfp::aligned::{AlignedBytes, I64Section};
///
/// let owned: I64Section = vec![1i64, -2, 3].into();
/// let mut buf = AlignedBytes::new();
/// for v in [1i64, -2, 3] {
///     buf.extend_from_slice(&v.to_le_bytes());
/// }
/// let shared = I64Section::from_shared(Arc::new(buf), 0, 3)?;
/// assert_eq!(&owned[..], &shared[..]);
/// assert_eq!(owned, shared);
/// # Ok::<(), mfdfp_dfp::DfpError>(())
/// ```
#[derive(Debug, Clone)]
pub enum I64Section {
    /// Values held in a plain vector (the training / direct-construction
    /// path).
    Owned(Vec<i64>),
    /// A validated window into a shared aligned buffer (the deployment
    /// image path; zero bytes copied).
    Shared {
        /// The backing buffer, shared with the image and sibling layers.
        buf: Arc<AlignedBytes>,
        /// Byte offset of the first element; always a multiple of 8.
        offset: usize,
        /// Element count.
        len: usize,
    },
}

impl I64Section {
    /// A zero-copy window of `len` little-endian `i64` values at byte
    /// `offset` into `buf`.
    ///
    /// On big-endian targets the values are decoded into an owned vector
    /// instead (correct everywhere, zero-copy where the wire format
    /// matches memory).
    ///
    /// # Errors
    ///
    /// [`DfpError::Misaligned`] if `offset` is not 8-byte aligned;
    /// [`DfpError::LengthMismatch`] if the window runs past `buf`.
    pub fn from_shared(buf: Arc<AlignedBytes>, offset: usize, len: usize) -> Result<Self> {
        // Validate eagerly so `Deref` can be infallible.
        buf.view::<i64>(offset, len)?;
        #[cfg(target_endian = "little")]
        {
            Ok(I64Section::Shared { buf, offset, len })
        }
        #[cfg(not(target_endian = "little"))]
        {
            let bytes = &buf.as_slice()[offset..offset + len * 8];
            let vals = bytes
                .chunks_exact(8)
                .map(|c| i64::from_le_bytes(c.try_into().expect("chunk of 8")))
                .collect();
            Ok(I64Section::Owned(vals))
        }
    }

    /// The values as a slice.
    pub fn as_slice(&self) -> &[i64] {
        match self {
            I64Section::Owned(v) => v,
            I64Section::Shared { buf, offset, len } => {
                buf.view::<i64>(*offset, *len).expect("validated at construction")
            }
        }
    }

    /// Whether this section borrows from a shared buffer (true) or owns
    /// its values (false).
    pub fn is_shared(&self) -> bool {
        matches!(self, I64Section::Shared { .. })
    }
}

impl std::ops::Deref for I64Section {
    type Target = [i64];
    fn deref(&self) -> &[i64] {
        self.as_slice()
    }
}

impl From<Vec<i64>> for I64Section {
    fn from(v: Vec<i64>) -> Self {
        I64Section::Owned(v)
    }
}

impl PartialEq for I64Section {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for I64Section {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_buffer_allocates_nothing() {
        let b = AlignedBytes::new();
        assert!(b.is_empty());
        assert_eq!(b.len(), 0);
        assert!(b.as_slice().is_empty());
        assert_eq!(b.as_ptr() as usize % ALIGN, 0);
    }

    #[test]
    fn base_pointer_is_always_aligned() {
        for n in [1usize, 63, 64, 65, 1000, 4096] {
            let b = AlignedBytes::from_slice(&vec![0xA5u8; n]);
            assert_eq!(b.as_ptr() as usize % ALIGN, 0, "n={n}");
            assert_eq!(b.len(), n);
        }
    }

    #[test]
    fn growth_preserves_contents_and_alignment() {
        let mut b = AlignedBytes::new();
        let mut mirror = Vec::new();
        for i in 0..1000u32 {
            let bytes = i.to_le_bytes();
            b.extend_from_slice(&bytes);
            mirror.extend_from_slice(&bytes);
            assert_eq!(b.as_ptr() as usize % ALIGN, 0);
        }
        assert_eq!(b.as_slice(), mirror.as_slice());
    }

    #[test]
    fn pad_to_zero_fills() {
        let mut b = AlignedBytes::from_slice(&[0xFFu8; 5]);
        b.pad_to(64);
        assert_eq!(b.len(), 64);
        assert!(b.as_slice()[5..].iter().all(|&x| x == 0));
        b.pad_to(64); // already aligned: no-op
        assert_eq!(b.len(), 64);
    }

    #[test]
    fn typed_views_round_trip() {
        let vals: Vec<i64> = (0..9).map(|i| i * 1_000_000_007 - 4).collect();
        let mut b = AlignedBytes::new();
        for v in &vals {
            b.extend_from_slice(&v.to_le_bytes());
        }
        assert_eq!(b.view::<i64>(0, vals.len()).unwrap(), vals.as_slice());
        assert_eq!(b.view::<i64>(8, 2).unwrap(), &vals[1..3]);
        assert_eq!(b.view::<u8>(0, b.len()).unwrap(), b.as_slice());
        let i8s = b.view::<i8>(0, b.len()).unwrap();
        assert_eq!(i8s.len(), b.len());
    }

    #[test]
    fn view_rejects_misalignment_and_overrun() {
        let b = AlignedBytes::from_slice(&[0u8; 32]);
        assert!(matches!(b.view::<i64>(4, 1), Err(DfpError::Misaligned { offset: 4, align: 8 })));
        assert!(matches!(b.view::<i64>(0, 5), Err(DfpError::LengthMismatch { .. })));
        assert!(matches!(b.view::<i64>(32, 1), Err(DfpError::LengthMismatch { .. })));
        // Zero-length views at the end are fine.
        assert_eq!(b.view::<i64>(32, 0).unwrap(), &[] as &[i64]);
        // Overflowing arithmetic must error, not wrap.
        assert!(b.view::<i64>(8, usize::MAX / 4).is_err());
    }

    #[test]
    fn clone_eq_debug() {
        let a = AlignedBytes::from_slice(b"hello world");
        let b = a.clone();
        assert_eq!(a, b);
        assert_ne!(a, AlignedBytes::from_slice(b"hello worlb"));
        assert!(format!("{a:?}").contains("len"));
    }

    #[test]
    fn i64_section_owned_and_shared_agree() {
        let vals = vec![i64::MIN, -1, 0, 1, i64::MAX];
        let owned = I64Section::from(vals.clone());
        assert!(!owned.is_shared());
        let mut buf = AlignedBytes::new();
        for v in &vals {
            buf.extend_from_slice(&v.to_le_bytes());
        }
        let shared = I64Section::from_shared(Arc::new(buf), 0, vals.len()).unwrap();
        assert_eq!(&owned[..], vals.as_slice());
        assert_eq!(&shared[..], vals.as_slice());
        assert_eq!(owned, shared);
    }

    #[test]
    fn i64_section_rejects_bad_windows() {
        let buf = Arc::new(AlignedBytes::from_slice(&[0u8; 24]));
        assert!(I64Section::from_shared(Arc::clone(&buf), 4, 1).is_err());
        assert!(I64Section::from_shared(Arc::clone(&buf), 0, 4).is_err());
        assert!(I64Section::from_shared(Arc::clone(&buf), 24, 1).is_err());
        assert!(I64Section::from_shared(buf, 24, 0).is_ok());
    }

    #[test]
    fn aligned_bytes_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<AlignedBytes>();
        assert_send_sync::<I64Section>();
    }
}
