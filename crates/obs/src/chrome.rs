//! Chrome trace-event JSON export (the `chrome://tracing` / Perfetto
//! "JSON trace" format): one complete (`"ph":"X"`) event per recorded
//! span, timestamps in microseconds with nanosecond fractions.
//!
//! Hand-rolled like `MetricsSnapshot::to_json` — the vendored `serde`
//! shim does not serialize. The output loads directly in
//! <https://ui.perfetto.dev> (or `chrome://tracing`): one track per
//! recorded thread, span labels as slice names, the `u64` argument under
//! `args.arg`.

use crate::TraceEvent;

/// Serializes `events` (as returned by [`crate::dump`]) into a
/// self-contained Chrome trace-event JSON document.
///
/// Layout: a `thread_name` metadata record per distinct ring (so
/// Perfetto names the tracks) followed by one `X` (complete) event per
/// span. All events carry `pid` 1; `tid` is the ring id.
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    let mut threads: Vec<u64> = events.iter().map(|e| e.thread).collect();
    threads.sort_unstable();
    threads.dedup();

    let mut out = String::with_capacity(128 + 24 * threads.len() + 112 * events.len());
    out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
    let mut first = true;
    for tid in &threads {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\
             \"args\":{{\"name\":\"ring-{tid}\"}}}}"
        ));
    }
    for e in events {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\
             \"ts\":{}.{:03},\"dur\":{}.{:03},\"args\":{{\"arg\":{}}}}}",
            escape(e.label),
            e.thread,
            e.start_ns / 1000,
            e.start_ns % 1000,
            e.dur_ns / 1000,
            e.dur_ns % 1000,
            e.arg,
        ));
    }
    out.push_str("]}");
    out
}

/// Minimal JSON string escaping. Span labels are static identifiers the
/// instrumentation sites control, but the exporter stays correct for any
/// `&'static str`.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(label: &'static str, thread: u64, start_ns: u64, dur_ns: u64) -> TraceEvent {
        TraceEvent { label, arg: 7, start_ns, dur_ns, thread }
    }

    #[test]
    fn exports_complete_events_with_us_timestamps() {
        let json = chrome_trace_json(&[ev("qnet.conv", 0, 1_234_567, 890), ev("b", 2, 5, 0)]);
        assert!(json.starts_with("{\"displayTimeUnit\":\"ns\",\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        // 1_234_567 ns = 1234.567 µs; 890 ns = 0.890 µs.
        assert!(json.contains("\"name\":\"qnet.conv\""), "{json}");
        assert!(json.contains("\"ts\":1234.567"), "{json}");
        assert!(json.contains("\"dur\":0.890"), "{json}");
        assert!(json.contains("\"args\":{\"arg\":7}"), "{json}");
        // Track metadata for both rings.
        assert!(json.contains("\"name\":\"ring-0\"") && json.contains("\"name\":\"ring-2\""));
        // Cheap well-formedness: balanced delimiters.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn empty_dump_is_a_valid_trace() {
        assert_eq!(chrome_trace_json(&[]), "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[]}");
    }

    #[test]
    fn escapes_hostile_labels() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\u000ad");
    }
}
