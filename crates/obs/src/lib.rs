//! # mfdfp-obs — flight-recorder tracing and op-count telemetry
//!
//! An always-cheap observability layer for the MF-DFP runtime, in the
//! spirit of JFR-style flight recorders: the hot path writes fixed-size
//! span records into **per-thread lock-free ring buffers** and bumps a
//! handful of **process-wide op counters**; everything heavier (merging,
//! sorting, JSON export) happens only when someone asks for a dump.
//! `std`-only, dependency-free, like the rest of the workspace.
//!
//! ## Feature gate
//!
//! The whole crate sits behind the `enabled` cargo feature (surfaced as
//! `obs` by every downstream crate). Instrumented code calls this API
//! unconditionally; without the feature, [`Span`] is a zero-sized type,
//! [`span!`] never evaluates its argument, the record functions are empty
//! `#[inline]` stubs and [`dump`] returns an empty vector — a true no-op,
//! guarded by an overhead regression test and by the workspace
//! alloc-regression suite.
//!
//! ## The recorder
//!
//! * Each thread lazily owns one fixed-capacity ring
//!   ([`ring_capacity`] events). Recording a span is two monotonic
//!   timestamp reads plus a handful of relaxed atomic stores into the
//!   thread's own ring — no allocation, no locking, no contention.
//! * Labels are `&'static str` (stored as pointer + length), plus one
//!   free-form `u64` argument per event.
//! * When the ring is full the **oldest event is overwritten** — flight
//!   recorders keep recent history, they do not backpressure the
//!   datapath. A per-slot version counter (seqlock protocol) lets
//!   [`dump`] skip events that are mid-overwrite, so a dump never
//!   contains a torn record.
//! * A process-wide registry keeps one handle per ring (threads register
//!   on their first event and stay registered after exit), and [`dump`]
//!   merges every ring into one timestamp-ordered event list.
//!
//! ## Example
//!
//! ```
//! // Scoped span: records [enter, drop] on this thread's ring.
//! {
//!     let _span = mfdfp_obs::span!("example.work", 42);
//!     // ... the traced work ...
//! }
//! // Cross-thread duration (e.g. queue wait measured at dequeue):
//! let t0 = mfdfp_obs::now_ns();
//! mfdfp_obs::record_complete("example.wait", 1, t0, mfdfp_obs::now_ns());
//! // Merge all rings and export for https://ui.perfetto.dev:
//! let trace = mfdfp_obs::chrome_trace_json(&mfdfp_obs::dump());
//! assert!(trace.starts_with("{"));
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_op_in_unsafe_fn)]

mod chrome;
pub mod ops;
mod recorder;

pub use chrome::chrome_trace_json;
pub use ops::OpCounters;
pub use recorder::{dump, now_ns, record_complete, ring_capacity, Span};

/// One completed span pulled out of a ring by [`dump`].
///
/// `start_ns`/`dur_ns` are nanoseconds on the process-wide monotonic
/// clock ([`now_ns`]); `thread` is the recording ring's registration
/// index (stable for the life of the process, dense from 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Static label the span was recorded under (e.g. `"qnet.conv"`).
    pub label: &'static str,
    /// The span's free-form argument (layer index, batch size, MAC
    /// count — whatever the instrumentation site chose).
    pub arg: u64,
    /// Span start, nanoseconds since the recorder's epoch.
    pub start_ns: u64,
    /// Span duration in nanoseconds.
    pub dur_ns: u64,
    /// Ring (≈ thread) id the event was recorded on.
    pub thread: u64,
}

/// Opens a scoped [`Span`]: `span!("label")` or `span!("label", arg)`
/// where `arg` is a `u64`. The span records itself on this thread's ring
/// when the guard drops.
///
/// Without the `enabled` feature this expands to a zero-sized guard and
/// the argument expression is **type-checked but never evaluated** — the
/// macro is a true no-op in disabled builds.
#[cfg(feature = "enabled")]
#[macro_export]
macro_rules! span {
    ($label:expr) => {
        $crate::Span::enter($label, 0)
    };
    ($label:expr, $arg:expr) => {
        $crate::Span::enter($label, $arg)
    };
}

/// Opens a scoped [`Span`] (disabled build: expands to the zero-sized
/// guard without evaluating the argument — see the `enabled`-build docs).
#[cfg(not(feature = "enabled"))]
#[macro_export]
macro_rules! span {
    ($label:expr) => {{
        let _ = $label;
        $crate::Span
    }};
    ($label:expr, $arg:expr) => {{
        // Type-check (and mark used) without evaluating: the closure is
        // never called and compiles away entirely.
        let _ = || {
            let _ = $label;
            let _arg: u64 = $arg;
        };
        $crate::Span
    }};
}

#[cfg(test)]
mod tests {
    #[test]
    fn trace_event_is_plain_data() {
        let e = super::TraceEvent { label: "t", arg: 1, start_ns: 2, dur_ns: 3, thread: 0 };
        assert_eq!(e, e.clone());
    }
}
