//! Process-wide op-count counters for the quantized datapath.
//!
//! The paper's core argument is about *operation energy* — a shift-add
//! MAC costs a fraction of a float multiply-add — so the runtime counts
//! the operations it actually executes. Recording is **amortized**: the
//! qgemm band kernel adds `rows·k·ncols` once per band call, the conv
//! layer adds one gather's bytes per group — one `fetch_add` per kernel
//! entry, never one per MAC. `accel::energy::OpCostModel` converts a
//! [`counters`] snapshot into a live energy estimate, and the serving
//! metrics fold both into every `MetricsSnapshot`.
//!
//! Counters are monotonic since process start (like the `mfdfp-rt` pool
//! counters); diff two snapshots via [`OpCounters::since`] for
//! per-interval rates. Without the `enabled` feature the record calls
//! are empty inline stubs and [`counters`] returns zeros.

/// A point-in-time view of the process-wide op counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCounters {
    /// Shift-add MACs executed by the packed qgemm band kernel
    /// (`rows·k·ncols` per band, counted at dispatch).
    pub shift_macs: u64,
    /// `i8` im2col bytes gathered into conv staging buffers.
    pub im2col_bytes: u64,
    /// Output rows produced through the decode-based reference datapath
    /// (the Figure 2(a) bit-exactness oracle) instead of the packed
    /// kernel.
    pub decode_rows: u64,
    /// Overflow audits that **tripped** (operand outside its 9-bit
    /// register or accumulator outside 32 bits) — each is a rejected
    /// kernel call surfacing as `QuantizedOverflow`.
    pub overflow_audits: u64,
}

impl OpCounters {
    /// The counter deltas accumulated after `earlier` was taken
    /// (saturating, so snapshots from different processes never wrap).
    pub fn since(&self, earlier: &OpCounters) -> OpCounters {
        OpCounters {
            shift_macs: self.shift_macs.saturating_sub(earlier.shift_macs),
            im2col_bytes: self.im2col_bytes.saturating_sub(earlier.im2col_bytes),
            decode_rows: self.decode_rows.saturating_sub(earlier.decode_rows),
            overflow_audits: self.overflow_audits.saturating_sub(earlier.overflow_audits),
        }
    }

    /// Total counted events (useful as an "anything recorded?" probe).
    pub fn total(&self) -> u64 {
        self.shift_macs
            .saturating_add(self.im2col_bytes)
            .saturating_add(self.decode_rows)
            .saturating_add(self.overflow_audits)
    }
}

#[cfg(feature = "enabled")]
mod imp {
    use std::sync::atomic::{AtomicU64, Ordering};

    use super::OpCounters;

    static SHIFT_MACS: AtomicU64 = AtomicU64::new(0);
    static IM2COL_BYTES: AtomicU64 = AtomicU64::new(0);
    static DECODE_ROWS: AtomicU64 = AtomicU64::new(0);
    static OVERFLOW_AUDITS: AtomicU64 = AtomicU64::new(0);

    /// Adds `n` shift-add MACs (one call per qgemm band).
    #[inline]
    pub fn record_shift_macs(n: u64) {
        SHIFT_MACS.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds `n` gathered im2col staging bytes (one call per conv group).
    #[inline]
    pub fn record_im2col_bytes(n: u64) {
        IM2COL_BYTES.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds `n` decode-path output rows (one call per reference layer).
    #[inline]
    pub fn record_decode_rows(n: u64) {
        DECODE_ROWS.fetch_add(n, Ordering::Relaxed);
    }

    /// Counts one tripped overflow audit (error path only).
    #[inline]
    pub fn record_overflow_audit() {
        OVERFLOW_AUDITS.fetch_add(1, Ordering::Relaxed);
    }

    /// Samples all counters (individually relaxed — a monitoring view,
    /// not a barrier).
    pub fn counters() -> OpCounters {
        OpCounters {
            shift_macs: SHIFT_MACS.load(Ordering::Relaxed),
            im2col_bytes: IM2COL_BYTES.load(Ordering::Relaxed),
            decode_rows: DECODE_ROWS.load(Ordering::Relaxed),
            overflow_audits: OVERFLOW_AUDITS.load(Ordering::Relaxed),
        }
    }
}

#[cfg(not(feature = "enabled"))]
mod imp {
    use super::OpCounters;

    /// Adds `n` shift-add MACs (no-op: telemetry off).
    #[inline(always)]
    pub fn record_shift_macs(_n: u64) {}

    /// Adds `n` gathered im2col staging bytes (no-op: telemetry off).
    #[inline(always)]
    pub fn record_im2col_bytes(_n: u64) {}

    /// Adds `n` decode-path output rows (no-op: telemetry off).
    #[inline(always)]
    pub fn record_decode_rows(_n: u64) {}

    /// Counts one tripped overflow audit (no-op: telemetry off).
    #[inline(always)]
    pub fn record_overflow_audit() {}

    /// Samples all counters (always zero: telemetry off).
    pub fn counters() -> OpCounters {
        OpCounters::default()
    }
}

pub use imp::{
    counters, record_decode_rows, record_im2col_bytes, record_overflow_audit, record_shift_macs,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn since_subtracts_saturating() {
        let a = OpCounters { shift_macs: 10, im2col_bytes: 5, decode_rows: 1, overflow_audits: 0 };
        let b = OpCounters { shift_macs: 4, im2col_bytes: 9, decode_rows: 1, overflow_audits: 0 };
        let d = a.since(&b);
        assert_eq!(d.shift_macs, 6);
        assert_eq!(d.im2col_bytes, 0, "saturates instead of wrapping");
        assert_eq!(d.decode_rows, 0);
        assert_eq!(a.total(), 16);
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn counters_accumulate_deltas() {
        let before = counters();
        record_shift_macs(1000);
        record_im2col_bytes(64);
        record_decode_rows(3);
        record_overflow_audit();
        let d = counters().since(&before);
        // Other tests in this binary may record concurrently: >= is the
        // invariant on a process-global counter.
        assert!(d.shift_macs >= 1000);
        assert!(d.im2col_bytes >= 64);
        assert!(d.decode_rows >= 3);
        assert!(d.overflow_audits >= 1);
    }

    #[cfg(not(feature = "enabled"))]
    #[test]
    fn disabled_counters_stay_zero() {
        record_shift_macs(1000);
        record_im2col_bytes(64);
        record_decode_rows(3);
        record_overflow_audit();
        assert_eq!(counters(), OpCounters::default());
        assert_eq!(counters().total(), 0);
    }
}
