//! The flight recorder: per-thread rings, the span guard, and the
//! ordered dump. Split in two by the `enabled` feature — the disabled
//! half is a set of zero-cost stubs with the identical signatures.

#[cfg(feature = "enabled")]
pub use enabled::{dump, now_ns, record_complete, ring_capacity, Span};

#[cfg(not(feature = "enabled"))]
pub use disabled::{dump, now_ns, record_complete, ring_capacity, Span};

#[cfg(feature = "enabled")]
mod enabled {
    use std::cell::OnceCell;
    use std::sync::atomic::{fence, AtomicPtr, AtomicU64, AtomicUsize, Ordering};
    use std::sync::{Arc, Mutex, OnceLock};
    use std::time::Instant;

    use crate::TraceEvent;

    /// Events per thread ring. At serving rates (~10–20k spans/s/thread)
    /// this holds the last few hundred milliseconds of history — flight
    /// recorders keep *recent* history and overwrite the rest.
    const RING_CAPACITY: usize = 4096;

    /// Capacity of each per-thread ring, in events.
    pub fn ring_capacity() -> usize {
        RING_CAPACITY
    }

    /// Nanoseconds on the process-wide monotonic clock (first caller
    /// fixes the epoch, so early timestamps start near zero).
    #[inline]
    pub fn now_ns() -> u64 {
        static EPOCH: OnceLock<Instant> = OnceLock::new();
        EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
    }

    /// One ring slot. All fields are atomics so concurrent dump reads
    /// are race-free by construction; the `version` seqlock decides
    /// whether a read saw one *consistent* event: the writer invalidates
    /// (`0`), writes the fields, then publishes `event_index + 1`. A
    /// reader that observes the expected version both before and after
    /// its field loads holds an untorn record; anything else is skipped.
    struct Slot {
        version: AtomicU64,
        label_ptr: AtomicPtr<u8>,
        label_len: AtomicUsize,
        arg: AtomicU64,
        start_ns: AtomicU64,
        dur_ns: AtomicU64,
    }

    impl Slot {
        fn empty() -> Slot {
            Slot {
                version: AtomicU64::new(0),
                label_ptr: AtomicPtr::new(std::ptr::null_mut()),
                label_len: AtomicUsize::new(0),
                arg: AtomicU64::new(0),
                start_ns: AtomicU64::new(0),
                dur_ns: AtomicU64::new(0),
            }
        }
    }

    /// One thread's ring. Only the owning thread writes; any thread may
    /// read via [`dump`]. Registered process-wide on first use and kept
    /// alive by the registry `Arc` after its thread exits, so a dump
    /// still sees the final events of finished workers.
    struct Ring {
        id: u64,
        head: AtomicU64,
        slots: Vec<Slot>,
    }

    impl Ring {
        fn new(id: u64) -> Ring {
            Ring {
                id,
                head: AtomicU64::new(0),
                slots: (0..RING_CAPACITY).map(|_| Slot::empty()).collect(),
            }
        }

        /// Appends one event, overwriting the oldest when full. Owner
        /// thread only; a handful of relaxed stores plus two release
        /// stores — no CAS, no locking, no allocation.
        fn push(&self, label: &'static str, arg: u64, start_ns: u64, dur_ns: u64) {
            let n = self.head.load(Ordering::Relaxed);
            let slot = &self.slots[n as usize % RING_CAPACITY];
            // Invalidate, write, publish (seqlock write protocol).
            slot.version.store(0, Ordering::Release);
            slot.label_ptr.store(label.as_ptr().cast_mut(), Ordering::Relaxed);
            slot.label_len.store(label.len(), Ordering::Relaxed);
            slot.arg.store(arg, Ordering::Relaxed);
            slot.start_ns.store(start_ns, Ordering::Relaxed);
            slot.dur_ns.store(dur_ns, Ordering::Relaxed);
            slot.version.store(n + 1, Ordering::Release);
            self.head.store(n + 1, Ordering::Release);
        }

        /// Reads the event at ring position `n` if it is still intact.
        fn read(&self, n: u64) -> Option<TraceEvent> {
            let slot = &self.slots[n as usize % RING_CAPACITY];
            if slot.version.load(Ordering::Acquire) != n + 1 {
                return None; // overwritten or mid-write
            }
            let ptr = slot.label_ptr.load(Ordering::Relaxed);
            let len = slot.label_len.load(Ordering::Relaxed);
            let arg = slot.arg.load(Ordering::Relaxed);
            let start_ns = slot.start_ns.load(Ordering::Relaxed);
            let dur_ns = slot.dur_ns.load(Ordering::Relaxed);
            // Re-validate after the field loads; the fence keeps the
            // loads above from sinking past the version re-check.
            fence(Ordering::Acquire);
            if slot.version.load(Ordering::Relaxed) != n + 1 {
                return None;
            }
            // SAFETY: both version checks returned `n + 1`, so `ptr`/
            // `len` are the matched pointer and length of the single
            // `&'static str` the writer stored for event `n` (the
            // writer invalidates the version before touching either
            // field and republishes only after both are written).
            // `'static` string data never moves or deallocates.
            let label =
                unsafe { std::str::from_utf8_unchecked(std::slice::from_raw_parts(ptr, len)) };
            Some(TraceEvent { label, arg, start_ns, dur_ns, thread: self.id })
        }
    }

    /// The process-wide ring registry. Locked only on thread
    /// registration (once per thread, ever) and inside [`dump`].
    static RINGS: Mutex<Vec<Arc<Ring>>> = Mutex::new(Vec::new());

    thread_local! {
        static MY_RING: OnceCell<Arc<Ring>> = const { OnceCell::new() };
    }

    /// Runs `f` on the calling thread's ring, creating and registering
    /// it on first use (the only event-path allocation, once per
    /// thread). Events during TLS teardown are silently dropped.
    #[inline]
    fn with_ring(f: impl FnOnce(&Ring)) {
        let _ = MY_RING.try_with(|cell| {
            f(cell.get_or_init(|| {
                let mut rings = RINGS.lock().unwrap_or_else(|p| p.into_inner());
                let ring = Arc::new(Ring::new(rings.len() as u64));
                rings.push(Arc::clone(&ring));
                ring
            }));
        });
    }

    /// Records an already-measured `[start_ns, end_ns]` interval on the
    /// calling thread's ring — the cross-thread companion to [`Span`]
    /// (e.g. queue wait: stamped at admission, recorded at dequeue).
    #[inline]
    pub fn record_complete(label: &'static str, arg: u64, start_ns: u64, end_ns: u64) {
        with_ring(|ring| ring.push(label, arg, start_ns, end_ns.saturating_sub(start_ns)));
    }

    /// Merges every registered ring into one event list ordered by
    /// `start_ns` (ties broken by ring id). Non-destructive: events stay
    /// in their rings until overwritten. Events being overwritten while
    /// the dump runs are skipped, never torn.
    pub fn dump() -> Vec<TraceEvent> {
        let rings: Vec<Arc<Ring>> =
            RINGS.lock().unwrap_or_else(|p| p.into_inner()).iter().map(Arc::clone).collect();
        let mut events = Vec::new();
        for ring in &rings {
            let head = ring.head.load(Ordering::Acquire);
            let lo = head.saturating_sub(RING_CAPACITY as u64);
            events.extend((lo..head).filter_map(|n| ring.read(n)));
        }
        events.sort_by_key(|e| (e.start_ns, e.thread));
        events
    }

    /// A scoped trace guard: stamps its start on construction and
    /// records one complete event on the owning thread's ring when
    /// dropped. Create via the [`span!`](crate::span) macro.
    #[must_use = "a span records its duration when dropped; binding it to `_` drops immediately"]
    pub struct Span {
        label: &'static str,
        arg: u64,
        start_ns: u64,
    }

    impl Span {
        /// Opens a span; prefer the [`span!`](crate::span) macro.
        #[inline]
        pub fn enter(label: &'static str, arg: u64) -> Span {
            Span { label, arg, start_ns: now_ns() }
        }
    }

    impl Drop for Span {
        #[inline]
        fn drop(&mut self) {
            record_complete(self.label, self.arg, self.start_ns, now_ns());
        }
    }
}

#[cfg(not(feature = "enabled"))]
mod disabled {
    use crate::TraceEvent;

    /// Capacity of each per-thread ring, in events (0: recorder off).
    pub fn ring_capacity() -> usize {
        0
    }

    /// Nanoseconds on the recorder clock (always 0: recorder off).
    #[inline(always)]
    pub fn now_ns() -> u64 {
        0
    }

    /// Records a measured interval (no-op: recorder off).
    #[inline(always)]
    pub fn record_complete(_label: &'static str, _arg: u64, _start_ns: u64, _end_ns: u64) {}

    /// Merges every ring into one ordered list (always empty: recorder
    /// off).
    pub fn dump() -> Vec<TraceEvent> {
        Vec::new()
    }

    /// A scoped trace guard (zero-sized: recorder off). Create via the
    /// [`span!`](crate::span) macro.
    pub struct Span;

    impl Span {
        /// Opens a span (no-op: recorder off).
        #[inline(always)]
        pub fn enter(_label: &'static str, _arg: u64) -> Span {
            Span
        }
    }
}
