//! Flight-recorder behaviour tests (enabled builds): wraparound
//! eviction without torn records, cross-thread dump ordering, span
//! guard semantics, and the span-overhead regression budget.
//!
//! The recorder is process-global and this binary's tests run
//! concurrently, so every test filters the dump by its own label prefix
//! and asserts `>=`-style invariants on anything global.

#![cfg(feature = "enabled")]

use std::time::Instant;

use mfdfp_obs::{dump, now_ns, record_complete, ring_capacity, span, TraceEvent};

fn labelled<'a>(events: &'a [TraceEvent], prefix: &str) -> Vec<&'a TraceEvent> {
    events.iter().filter(|e| e.label.starts_with(prefix)).collect()
}

#[test]
fn wraparound_evicts_oldest_and_never_tears() {
    let cap = ring_capacity();
    let extra = 256;
    // A dedicated thread owns a fresh ring; synthetic timestamps make
    // the assertions exact. Labels alternate by the parity of the
    // argument, so a torn record (fields from two different events)
    // would show up as a label/arg parity mismatch.
    std::thread::spawn(move || {
        for i in 0..(cap + extra) as u64 {
            let label = if i % 2 == 0 { "wrap.even" } else { "wrap.odd" };
            record_complete(label, i, i, i + 1);
        }
    })
    .join()
    .unwrap();

    let events = dump();
    let ours = labelled(&events, "wrap.");
    assert_eq!(ours.len(), cap, "a full ring holds exactly its capacity");
    let args: Vec<u64> = ours.iter().map(|e| e.arg).collect();
    // Oldest `extra` events were evicted; the newest `cap` survive, in
    // timestamp order.
    assert_eq!(args[0], extra as u64, "oldest events must be evicted first");
    assert_eq!(*args.last().unwrap(), (cap + extra - 1) as u64);
    assert!(args.windows(2).all(|w| w[0] < w[1]), "dump is ordered by start_ns");
    for e in &ours {
        let expect = if e.arg % 2 == 0 { "wrap.even" } else { "wrap.odd" };
        assert_eq!(e.label, expect, "torn record: label and arg disagree");
        assert_eq!(e.start_ns, e.arg, "torn record: start and arg disagree");
        assert_eq!(e.dur_ns, 1);
    }
}

#[test]
fn multi_thread_dump_orders_by_timestamp() {
    const THREADS: u64 = 3;
    const PER_THREAD: u64 = 100;
    // Interleaved synthetic timestamps: thread t records starts
    // t, THREADS + t, 2·THREADS + t, … so a correct merge interleaves
    // all three rings rather than concatenating them.
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            std::thread::spawn(move || {
                for j in 0..PER_THREAD {
                    record_complete("order.ev", t, j * THREADS + t, j * THREADS + t + 1);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    let events = dump();
    let ours = labelled(&events, "order.");
    assert_eq!(ours.len(), (THREADS * PER_THREAD) as usize);
    let starts: Vec<u64> = ours.iter().map(|e| e.start_ns).collect();
    assert!(starts.windows(2).all(|w| w[0] < w[1]), "merged dump must be start-ordered");
    let mut rings: Vec<u64> = ours.iter().map(|e| e.thread).collect();
    rings.sort_unstable();
    rings.dedup();
    assert_eq!(rings.len(), THREADS as usize, "each recording thread owns its own ring");
    // The whole dump (other tests' events included) is start-ordered too.
    assert!(events.windows(2).all(|w| w[0].start_ns <= w[1].start_ns));
}

#[test]
fn span_guard_records_label_arg_and_duration() {
    let before = now_ns();
    {
        let _span = span!("guard.scoped", 77);
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    let events = dump();
    let ours = labelled(&events, "guard.scoped");
    let e = ours.last().expect("span must be recorded on drop");
    assert_eq!(e.arg, 77);
    assert!(e.start_ns >= before);
    assert!(e.dur_ns >= 1_000_000, "2 ms sleep must be visible, got {} ns", e.dur_ns);
}

#[test]
fn clock_is_monotonic() {
    let a = now_ns();
    let b = now_ns();
    assert!(b >= a);
}

/// The overhead regression budget: an enabled-but-idle span (create +
/// drop, nobody dumping) must stay within a bounded per-span cost. The
/// measured cost is two monotonic clock reads plus a few relaxed stores
/// — ~100 ns on commodity hardware; the budget is 15–20× that so a
/// loaded CI box never flakes, while a regression to locking or
/// allocation (microseconds) still fails loudly.
#[test]
fn span_overhead_within_budget() {
    const SPANS_PER_TRIAL: u32 = 10_000;
    const BUDGET_NS_PER_SPAN: f64 = 2_000.0;
    // Warm: ensure this thread's ring is already registered.
    drop(span!("overhead.warm"));
    let mut best = f64::INFINITY;
    for _ in 0..5 {
        let t0 = Instant::now();
        for i in 0..SPANS_PER_TRIAL {
            let _span = span!("overhead.spin", i as u64);
        }
        let per_span = t0.elapsed().as_nanos() as f64 / SPANS_PER_TRIAL as f64;
        best = best.min(per_span);
    }
    assert!(
        best <= BUDGET_NS_PER_SPAN,
        "idle span costs {best:.0} ns, budget {BUDGET_NS_PER_SPAN} ns"
    );
}
