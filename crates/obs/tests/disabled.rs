//! The no-op contract of disabled builds: without the `enabled` feature
//! the span guard is zero-sized, the macro never evaluates its argument,
//! the clock reads 0 and the dump stays empty — instrumented crates can
//! call the API unconditionally at zero cost.

#![cfg(not(feature = "enabled"))]

use mfdfp_obs::{dump, now_ns, record_complete, ring_capacity, span, Span};

#[test]
fn span_is_zero_sized_and_dump_stays_empty() {
    assert_eq!(std::mem::size_of::<Span>(), 0, "disabled Span must be a ZST");
    {
        let _span = span!("off.scoped", 9);
        let _also = Span::enter("off.direct", 1);
    }
    record_complete("off.complete", 2, 0, 10);
    assert!(dump().is_empty(), "disabled recorder must never retain events");
    assert_eq!(ring_capacity(), 0);
    assert_eq!(now_ns(), 0);
}

#[test]
fn span_macro_never_evaluates_its_argument() {
    fn side_effect(hits: &mut u64) -> u64 {
        *hits += 1;
        0
    }
    let mut hits = 0u64;
    {
        let _span = span!("off.lazy", side_effect(&mut hits));
    }
    assert_eq!(hits, 0, "disabled span! must not evaluate its argument");
}
