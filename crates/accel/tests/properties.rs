//! Property-based tests of the accelerator model: the functional datapath
//! against exact arithmetic, and structural invariants of the cost model.

use mfdfp_accel::{
    avg_pool_codes, design_metrics, max_pool_codes, relu_codes, schedule_network,
    AcceleratorConfig, ComponentLibrary, DmaModel, Precision, ShiftLinear,
};
use mfdfp_dfp::{AdderTree, PackedPow2Matrix, Pow2Weight};
use mfdfp_nn::zoo;
use mfdfp_tensor::TensorRng;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The shift-linear layer computes the exact fixed-point dot product:
    /// against f64 arithmetic on the dequantized operands, the result is
    /// within half an output LSB (the routing round) for non-saturating
    /// outputs.
    #[test]
    fn shift_linear_is_exact_fixed_point(
        codes in proptest::collection::vec(-128i32..=127, 16),
        wcodes in proptest::collection::vec(0u8..16, 16),
    ) {
        let weights: Vec<Pow2Weight> =
            wcodes.iter().map(|&c| Pow2Weight::decode4(c).unwrap()).collect();
        let layer = ShiftLinear {
            in_features: 16,
            out_features: 1,
            weights: PackedPow2Matrix::from_weights(1, 16, &weights).unwrap(),
            bias: vec![0].into(),
            in_frac: 7,
            out_frac: 3,
        };
        let input: Vec<i8> = codes.iter().map(|&c| c as i8).collect();
        let tree = AdderTree::new(16).unwrap();
        let out = layer.run(&input).unwrap();
        // The packed path and the decode-based datapath must agree exactly.
        prop_assert_eq!(&out, &layer.run_reference(&input, &tree).unwrap());
        // Exact value in f64.
        let exact: f64 = input
            .iter()
            .zip(&weights)
            .map(|(&x, w)| (x as f64) * 2f64.powi(-7) * w.to_f32() as f64)
            .sum();
        let step = 2f64.powi(-3);
        let dequant = out[0] as f64 * step;
        if (-128.0 * step..=127.0 * step).contains(&exact) {
            prop_assert!((dequant - exact).abs() <= step / 2.0 + 1e-12,
                "{dequant} vs {exact}");
        } else {
            // Saturated: must sit at a rail.
            prop_assert!(out[0] == 127 || out[0] == -128);
        }
    }

    /// ReLU on codes is idempotent and non-negative.
    #[test]
    fn relu_codes_properties(mut codes in proptest::collection::vec(-128i8..=127, 32)) {
        relu_codes(&mut codes);
        prop_assert!(codes.iter().all(|&c| c >= 0));
        let copy = codes.clone();
        relu_codes(&mut codes);
        prop_assert_eq!(codes, copy);
    }

    /// Max pooling of codes commutes with ReLU: relu(maxpool(x)) ==
    /// maxpool(relu(x)) for window == input (single window per channel).
    #[test]
    fn max_pool_commutes_with_relu(codes in proptest::collection::vec(-128i8..=127, 16)) {
        let a = {
            let mut pooled = max_pool_codes(&codes, 1, 4, 4, 4, 4).unwrap();
            relu_codes(&mut pooled);
            pooled
        };
        let b = {
            let mut c = codes.clone();
            relu_codes(&mut c);
            max_pool_codes(&c, 1, 4, 4, 4, 4).unwrap()
        };
        prop_assert_eq!(a, b);
    }

    /// Avg pooling of codes stays within the min/max of the window.
    #[test]
    fn avg_pool_codes_bounded(codes in proptest::collection::vec(-128i8..=127, 16)) {
        let out = avg_pool_codes(&codes, 1, 4, 4, 4, 4).unwrap();
        let lo = *codes.iter().min().unwrap();
        let hi = *codes.iter().max().unwrap();
        prop_assert!(out[0] >= lo && out[0] <= hi);
    }

    /// Design metrics scale monotonically with PU count, and the marginal
    /// cost of each extra PU is constant (control amortised).
    #[test]
    fn design_cost_affine_in_pus(pus in 1usize..6) {
        let lib = ComponentLibrary::calibrated_65nm();
        let mut cfg = AcceleratorConfig::paper_mf_dfp();
        cfg.num_pus = pus;
        let m = design_metrics(&cfg, &lib).unwrap();
        cfg.num_pus = pus + 1;
        let m2 = design_metrics(&cfg, &lib).unwrap();
        cfg.num_pus = 1;
        let one = design_metrics(&cfg, &lib).unwrap();
        cfg.num_pus = 2;
        let two = design_metrics(&cfg, &lib).unwrap();
        let marginal = two.area_mm2 - one.area_mm2;
        prop_assert!((m2.area_mm2 - m.area_mm2 - marginal).abs() < 1e-9);
        prop_assert!(m2.power_mw > m.power_mw);
    }

    /// FP32 designs always cost more than MF-DFP at the same organisation.
    #[test]
    fn fp32_always_costs_more(neurons in 1usize..5, log_syn in 1u32..6) {
        let lib = ComponentLibrary::calibrated_65nm();
        let mut cfg = AcceleratorConfig::paper_mf_dfp();
        cfg.neurons = neurons * 8;
        cfg.synapses = 1 << log_syn;
        let mf = design_metrics(&cfg, &lib).unwrap();
        cfg.precision = Precision::Fp32;
        let fp = design_metrics(&cfg, &lib).unwrap();
        prop_assert!(fp.area_mm2 > mf.area_mm2);
        prop_assert!(fp.power_mw > mf.power_mw);
    }

    /// Scheduling is monotone in lane count: more lanes, fewer (or equal)
    /// cycles.
    #[test]
    fn schedule_monotone_in_lanes(log_syn in 2u32..6) {
        let mut rng = TensorRng::seed_from(0);
        let net = zoo::quick_custom(3, 16, [8, 8, 16], 32, 10, &mut rng).unwrap();
        let mut small = AcceleratorConfig::paper_mf_dfp();
        small.synapses = 1 << log_syn;
        let mut big = small;
        big.synapses = 1 << (log_syn + 1);
        let s_small = schedule_network(&net, &small, DmaModel::Overlapped).unwrap();
        let s_big = schedule_network(&net, &big, DmaModel::Overlapped).unwrap();
        prop_assert!(s_big.total_cycles <= s_small.total_cycles);
    }

    /// Limited DMA never makes a schedule faster than overlapped DMA.
    #[test]
    fn limited_dma_never_faster(bw in 1.0f64..256.0) {
        let mut rng = TensorRng::seed_from(0);
        let net = zoo::quick_custom(3, 16, [8, 8, 16], 32, 10, &mut rng).unwrap();
        let cfg = AcceleratorConfig::paper_mf_dfp();
        let free = schedule_network(&net, &cfg, DmaModel::Overlapped).unwrap();
        let limited =
            schedule_network(&net, &cfg, DmaModel::Limited { bytes_per_cycle: bw }).unwrap();
        prop_assert!(limited.total_cycles >= free.total_cycles);
    }
}
