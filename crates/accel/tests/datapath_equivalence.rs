//! The functional-correctness contract of the datapath: for *any*
//! geometry, weights and activations, the integer shift pipeline computes
//! exactly the fixed-point convolution that an infinitely precise
//! reference would, up to the single documented rounding at the routing
//! stage.

use mfdfp_accel::{ShiftConv, ShiftLinear};
use mfdfp_dfp::{AdderTree, DfpFormat, PackedPow2Matrix, Pow2Weight};
use mfdfp_tensor::ConvGeometry;
use proptest::prelude::*;

/// Exact f64 convolution over dequantized operands.
#[allow(clippy::too_many_arguments)]
fn reference_conv(
    input: &[i8],
    weights: &[Pow2Weight],
    bias: &[i64],
    g: &ConvGeometry,
    in_frac: i8,
    out_frac: i8,
) -> Vec<f64> {
    let (oh, ow) = (g.out_h(), g.out_w());
    let k = g.kernel;
    let group_in = g.in_c / g.groups;
    let group_out = g.out_c / g.groups;
    let acc_step = 2f64.powi(-(in_frac as i32 + 7));
    let mut out = Vec::with_capacity(g.out_c * oh * ow);
    for oc in 0..g.out_c {
        let c_lo = (oc / group_out) * group_in;
        for oy in 0..oh {
            for ox in 0..ow {
                let mut acc = bias[oc] as f64 * acc_step;
                for ci in 0..group_in {
                    let c = c_lo + ci;
                    for ky in 0..k {
                        let iy = (oy * g.stride + ky) as isize - g.pad as isize;
                        if iy < 0 || iy >= g.in_h as isize {
                            continue;
                        }
                        for kx in 0..k {
                            let ix = (ox * g.stride + kx) as isize - g.pad as isize;
                            if ix < 0 || ix >= g.in_w as isize {
                                continue;
                            }
                            let x = input[(c * g.in_h + iy as usize) * g.in_w + ix as usize];
                            let w = weights[(oc * group_in + ci) * k * k + ky * k + kx];
                            acc += (x as f64) * 2f64.powi(-(in_frac as i32)) * w.to_f32() as f64;
                        }
                    }
                }
                let _ = out_frac;
                out.push(acc);
            }
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// ShiftConv == exact fixed-point convolution within half an output
    /// LSB, across randomized geometries (incl. stride/pad/groups).
    #[test]
    fn shift_conv_matches_exact_reference(
        seed in 0u64..10_000,
        kernel in 1usize..4,
        stride in 1usize..3,
        pad in 0usize..2,
        grouped in proptest::bool::ANY,
    ) {
        let in_c = if grouped { 4 } else { 3 };
        let out_c = if grouped { 4 } else { 5 };
        let hw = 6usize;
        if hw + 2 * pad < kernel {
            return Ok(());
        }
        let mut g = ConvGeometry::new(in_c, hw, hw, out_c, kernel, stride, pad).unwrap();
        if grouped {
            g = g.with_groups(2).unwrap();
        }
        // Deterministic pseudo-random operands from the seed.
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let input: Vec<i8> =
            (0..in_c * hw * hw).map(|_| (next() % 256) as u8 as i8).collect();
        let weights: Vec<Pow2Weight> = (0..g.weight_count())
            .map(|_| Pow2Weight::decode4((next() % 16) as u8).unwrap())
            .collect();
        let bias: Vec<i64> = (0..out_c).map(|_| (next() % 2048) as i64 - 1024).collect();
        let in_frac = 6i8;
        let out_frac = 2i8; // coarse output to avoid saturation in most cases

        let layer = ShiftConv {
            geom: g,
            weights: PackedPow2Matrix::from_weights(g.out_c, g.col_height(), &weights).unwrap(),
            bias: bias.clone().into(),
            in_frac,
            out_frac,
        };
        let tree = AdderTree::new(16).unwrap();
        let got = layer.run(&input).unwrap();
        prop_assert_eq!(&got, &layer.run_reference(&input, &tree).unwrap());
        let exact = reference_conv(&input, &weights, &bias, &g, in_frac, out_frac);
        let out_fmt = DfpFormat::q8(out_frac);
        let step = out_fmt.step() as f64;
        for (i, (&code, &want)) in got.iter().zip(&exact).enumerate() {
            let dequant = code as f64 * step;
            if want > out_fmt.max_value() as f64 {
                prop_assert_eq!(code, 127, "position {} should saturate high", i);
            } else if want < out_fmt.min_value() as f64 {
                prop_assert_eq!(code, -128, "position {} should saturate low", i);
            } else {
                prop_assert!(
                    (dequant - want).abs() <= step / 2.0 + 1e-9,
                    "position {}: datapath {} vs exact {}",
                    i, dequant, want
                );
            }
        }
    }

    /// The same contract for fully-connected layers with arbitrary widths
    /// (including non-multiples of the 16-lane tree, exercising the
    /// zero-padded final chunk).
    #[test]
    fn shift_linear_matches_exact_reference(
        seed in 0u64..10_000,
        in_features in 1usize..40,
        out_features in 1usize..6,
    ) {
        let mut state = seed.wrapping_mul(0xD1B54A32D192ED03) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let input: Vec<i8> = (0..in_features).map(|_| (next() % 256) as u8 as i8).collect();
        let weights: Vec<Pow2Weight> = (0..in_features * out_features)
            .map(|_| Pow2Weight::decode4((next() % 16) as u8).unwrap())
            .collect();
        let bias: Vec<i64> = (0..out_features).map(|_| (next() % 512) as i64 - 256).collect();
        let (in_frac, out_frac) = (7i8, 1i8);
        let layer = ShiftLinear {
            in_features,
            out_features,
            weights: PackedPow2Matrix::from_weights(out_features, in_features, &weights).unwrap(),
            bias: bias.clone().into(),
            in_frac,
            out_frac,
        };
        let tree = AdderTree::new(16).unwrap();
        let got = layer.run(&input).unwrap();
        prop_assert_eq!(&got, &layer.run_reference(&input, &tree).unwrap());
        let acc_step = 2f64.powi(-(in_frac as i32 + 7));
        let out_fmt = DfpFormat::q8(out_frac);
        let step = out_fmt.step() as f64;
        for o in 0..out_features {
            let mut want = bias[o] as f64 * acc_step;
            for i in 0..in_features {
                want += (input[i] as f64) * 2f64.powi(-(in_frac as i32))
                    * weights[o * in_features + i].to_f32() as f64;
            }
            let dequant = got[o] as f64 * step;
            if want > out_fmt.max_value() as f64 {
                prop_assert_eq!(got[o], 127);
            } else if want < out_fmt.min_value() as f64 {
                prop_assert_eq!(got[o], -128);
            } else {
                prop_assert!(
                    (dequant - want).abs() <= step / 2.0 + 1e-9,
                    "neuron {}: {} vs {}", o, dequant, want
                );
            }
        }
    }
}
