//! The PR-3 contract: the packed shift-only `qgemm` hot path and the
//! decode-based Figure 2(a) datapath are **bit-identical** — for dense and
//! convolutional layers, every geometry quirk (odd synapse counts hitting
//! the per-row pad nibble, grouped channels, padding, stride), and under
//! both the serial and the `parallel`-feature builds (the CI matrix runs
//! this file in both).
//!
//! The decode path (`run_reference`) audits products through the widening
//! adder tree; the packed path never decodes a nibble. Agreement here is
//! what lets `mfdfp-core` serve traffic on the fast kernel while the slow
//! one keeps proving the hardware semantics.

use mfdfp_accel::{ShiftConv, ShiftLinear};
use mfdfp_dfp::{AdderTree, PackedPow2Matrix, Pow2Weight};
use mfdfp_tensor::ConvGeometry;
use proptest::prelude::*;

fn xorshift(seed: u64) -> impl FnMut() -> u64 {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Dense layers: packed `run` == decode-based `run_reference` for
    /// arbitrary widths — odd `in_features` exercises the pad nibble at
    /// every row boundary of the packed matrix.
    #[test]
    fn linear_packed_equals_decode_reference(
        seed in 0u64..100_000,
        in_features in 1usize..48,
        out_features in 1usize..8,
        in_frac in 4i8..8,
        out_frac in 0i8..7,
    ) {
        let mut next = xorshift(seed);
        let input: Vec<i8> = (0..in_features).map(|_| (next() % 256) as u8 as i8).collect();
        let weights: Vec<Pow2Weight> = (0..in_features * out_features)
            .map(|_| Pow2Weight::decode4((next() % 16) as u8).unwrap())
            .collect();
        let bias: Vec<i64> = (0..out_features).map(|_| (next() % 4096) as i64 - 2048).collect();
        let layer = ShiftLinear {
            in_features,
            out_features,
            weights: PackedPow2Matrix::from_weights(out_features, in_features, &weights).unwrap(),
            bias: bias.into(),
            in_frac,
            out_frac,
        };
        let packed = layer.run(&input).unwrap();
        let decoded = layer.run_reference(&input, &AdderTree::new(16).unwrap()).unwrap();
        prop_assert_eq!(packed, decoded);
    }

    /// Convolutions: packed `run` == decode-based `run_reference` across
    /// kernel/stride/pad/group combinations, including odd
    /// `col_height` values (e.g. 1×3×3 → 9 synapses per row).
    #[test]
    fn conv_packed_equals_decode_reference(
        seed in 0u64..100_000,
        kernel in 1usize..4,
        stride in 1usize..3,
        pad in 0usize..2,
        grouped in proptest::bool::ANY,
        in_frac in 4i8..8,
        out_frac in 0i8..7,
    ) {
        let in_c = if grouped { 4 } else { 1 };
        let out_c = if grouped { 6 } else { 3 };
        let hw = 6usize;
        if hw + 2 * pad < kernel {
            return Ok(());
        }
        let mut g = ConvGeometry::new(in_c, hw, hw, out_c, kernel, stride, pad).unwrap();
        if grouped {
            g = g.with_groups(2).unwrap();
        }
        let mut next = xorshift(seed);
        let input: Vec<i8> = (0..in_c * hw * hw).map(|_| (next() % 256) as u8 as i8).collect();
        let weights: Vec<Pow2Weight> = (0..g.weight_count())
            .map(|_| Pow2Weight::decode4((next() % 16) as u8).unwrap())
            .collect();
        let bias: Vec<i64> = (0..out_c).map(|_| (next() % 4096) as i64 - 2048).collect();
        let layer = ShiftConv {
            geom: g,
            weights: PackedPow2Matrix::from_weights(g.out_c, g.col_height(), &weights).unwrap(),
            bias: bias.into(),
            in_frac,
            out_frac,
        };
        let packed = layer.run(&input).unwrap();
        let decoded = layer.run_reference(&input, &AdderTree::new(16).unwrap()).unwrap();
        prop_assert_eq!(packed, decoded);
    }
}

/// Saturation rails and the all-minimum-exponent corner, deterministic:
/// the two paths must agree even when every output pins to ±rail or every
/// product degenerates to ±x.
#[test]
fn extreme_weight_and_saturation_corners_agree() {
    let tree = AdderTree::new(16).unwrap();
    for code in [0u8, 7, 8, 15] {
        // 0 → +1 (max magnitude), 7 → +2^−7 (min), 8/15 their negatives.
        let w = Pow2Weight::decode4(code).unwrap();
        let weights = vec![w; 31]; // odd count: pad nibble in every row
        let layer = ShiftLinear {
            in_features: 31,
            out_features: 1,
            weights: PackedPow2Matrix::from_weights(1, 31, &weights).unwrap(),
            bias: vec![0].into(),
            in_frac: 7,
            out_frac: 7, // upscale route: saturates for the big codes
        };
        for fill in [-128i8, -1, 0, 1, 127] {
            let input = vec![fill; 31];
            let packed = layer.run(&input).unwrap();
            let decoded = layer.run_reference(&input, &tree).unwrap();
            assert_eq!(packed, decoded, "code={code} fill={fill}");
        }
    }
}
