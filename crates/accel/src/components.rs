//! Component-level area/power library (65 nm, 250 MHz, typical corner).
//!
//! The paper synthesises its designs with Synopsys DC and a 65 nm standard
//! cell library; that flow is unavailable offline, so this module supplies
//! per-component area/power constants **calibrated** such that the composed
//! FP32 baseline matches the paper's Table 1 (16.52 mm², 1361.61 mW). The
//! MF-DFP and ensemble designs are then *predicted* from the same constants
//! — the savings percentages are outputs of the model, not inputs
//! (see DESIGN.md §3).

use serde::{Deserialize, Serialize};

/// Area (µm²) and power (mW at 250 MHz) of one hardware component.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct AreaPower {
    /// Silicon area in µm².
    pub area_um2: f64,
    /// Average power in mW at the design clock.
    pub power_mw: f64,
}

impl AreaPower {
    /// Creates a component cost.
    pub fn new(area_um2: f64, power_mw: f64) -> Self {
        AreaPower { area_um2, power_mw }
    }

    /// Scales the cost by an instance count.
    pub fn times(self, n: usize) -> Self {
        AreaPower { area_um2: self.area_um2 * n as f64, power_mw: self.power_mw * n as f64 }
    }

    /// Sums two costs.
    pub fn plus(self, other: AreaPower) -> Self {
        AreaPower {
            area_um2: self.area_um2 + other.area_um2,
            power_mw: self.power_mw + other.power_mw,
        }
    }

    /// Area in mm².
    pub fn area_mm2(self) -> f64 {
        self.area_um2 / 1e6
    }
}

/// The calibrated 65 nm component library.
///
/// All values are per instance unless stated otherwise.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ComponentLibrary {
    /// 32-bit floating-point multiplier (3-stage pipeline).
    pub fp32_multiplier: AreaPower,
    /// 32-bit floating-point adder.
    pub fp32_adder: AreaPower,
    /// Barrel shifter: 8-bit input × 3-bit shift amount → 16-bit product,
    /// with sign handling (the multiplier replacement).
    pub barrel_shifter: AreaPower,
    /// Ripple/carry-select integer adder, **per output bit** — the widening
    /// tree adders (17…20 bit) are priced by their exact widths.
    pub int_adder_per_bit: AreaPower,
    /// Accumulator & Routing unit: 32-bit accumulate + radix realign
    /// shifter + saturator (the `m`/`n` control block of Figure 2(a)).
    pub accumulator_unit: AreaPower,
    /// Non-linearity unit (ReLU comparator + pooling support).
    pub nl_unit: AreaPower,
    /// On-chip SRAM, **per bit** (single-port, including array overheads).
    pub sram_per_bit: AreaPower,
    /// Control circuitry + DMA engines + memory interface (shared across
    /// processing units in the ensemble configuration).
    pub control: AreaPower,
}

impl ComponentLibrary {
    /// The calibrated library (see module docs).
    pub fn calibrated_65nm() -> Self {
        ComponentLibrary {
            fp32_multiplier: AreaPower::new(50_000.0, 4.00),
            fp32_adder: AreaPower::new(13_000.0, 0.95),
            barrel_shifter: AreaPower::new(6_000.0, 0.29),
            int_adder_per_bit: AreaPower::new(55.0, 0.008),
            accumulator_unit: AreaPower::new(6_000.0, 0.35),
            nl_unit: AreaPower::new(4_000.0, 0.40),
            sram_per_bit: AreaPower::new(0.525, 0.000_135),
            control: AreaPower::new(20_000.0, 7.65),
        }
    }

    /// Cost of an integer adder of the given output width.
    pub fn int_adder(&self, bits: u8) -> AreaPower {
        self.int_adder_per_bit.times(bits as usize)
    }

    /// Cost of an SRAM of the given capacity in bits.
    pub fn sram(&self, bits: usize) -> AreaPower {
        self.sram_per_bit.times(bits)
    }
}

impl Default for ComponentLibrary {
    fn default() -> Self {
        ComponentLibrary::calibrated_65nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_helpers() {
        let a = AreaPower::new(100.0, 1.0);
        let b = a.times(3);
        assert_eq!(b.area_um2, 300.0);
        assert_eq!(b.power_mw, 3.0);
        let c = b.plus(AreaPower::new(1.0, 0.5));
        assert_eq!(c.area_um2, 301.0);
        assert_eq!(c.power_mw, 3.5);
        assert!((AreaPower::new(2e6, 0.0).area_mm2() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn multiplier_dwarfs_shifter() {
        // The core claim of the paper's hardware section: a shift unit is an
        // order of magnitude cheaper than an FP32 multiplier.
        let lib = ComponentLibrary::calibrated_65nm();
        assert!(lib.fp32_multiplier.area_um2 / lib.barrel_shifter.area_um2 > 5.0);
        assert!(lib.fp32_multiplier.power_mw / lib.barrel_shifter.power_mw > 10.0);
    }

    #[test]
    fn int_adder_scales_with_width() {
        let lib = ComponentLibrary::calibrated_65nm();
        let a17 = lib.int_adder(17);
        let a20 = lib.int_adder(20);
        assert!(a20.area_um2 > a17.area_um2);
        assert!((a17.area_um2 - 17.0 * 55.0).abs() < 1e-9);
    }

    #[test]
    fn fp32_adder_dwarfs_int_adder() {
        let lib = ComponentLibrary::calibrated_65nm();
        assert!(lib.fp32_adder.area_um2 / lib.int_adder(20).area_um2 > 5.0);
    }

    #[test]
    fn sram_is_per_bit() {
        let lib = ComponentLibrary::calibrated_65nm();
        let one_kb = lib.sram(8 * 1024);
        assert!((one_kb.area_um2 - 8.0 * 1024.0 * 0.525).abs() < 1e-6);
    }
}
