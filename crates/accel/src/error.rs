//! Error type for the accelerator model.

use std::error::Error;
use std::fmt;

use mfdfp_dfp::DfpError;
use mfdfp_tensor::TensorError;

/// Errors from accelerator composition, scheduling and simulation.
#[derive(Debug, Clone, PartialEq)]
pub enum AccelError {
    /// Invalid accelerator configuration.
    BadConfig(String),
    /// A network layer the accelerator cannot execute (e.g. LRN, which the
    /// paper removes precisely because it is not multiplier-free).
    UnsupportedLayer(String),
    /// An underlying fixed-point arithmetic fault (overflow audit failed).
    Dfp(DfpError),
    /// An underlying tensor shape error.
    Tensor(TensorError),
    /// Functional simulation input did not match the layer geometry.
    BadInput {
        /// Expected element count.
        expected: usize,
        /// Provided element count.
        actual: usize,
    },
}

impl fmt::Display for AccelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccelError::BadConfig(msg) => write!(f, "invalid accelerator configuration: {msg}"),
            AccelError::UnsupportedLayer(name) => {
                write!(f, "layer not executable on the accelerator: {name}")
            }
            AccelError::Dfp(e) => write!(f, "fixed-point fault: {e}"),
            AccelError::Tensor(e) => write!(f, "tensor error: {e}"),
            AccelError::BadInput { expected, actual } => {
                write!(f, "simulation input length {actual} does not match geometry ({expected})")
            }
        }
    }
}

impl Error for AccelError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            AccelError::Dfp(e) => Some(e),
            AccelError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DfpError> for AccelError {
    fn from(e: DfpError) -> Self {
        AccelError::Dfp(e)
    }
}

impl From<TensorError> for AccelError {
    fn from(e: TensorError) -> Self {
        AccelError::Tensor(e)
    }
}

/// Convenience alias for accelerator results.
pub type Result<T> = std::result::Result<T, AccelError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = AccelError::from(DfpError::BadFanIn(3));
        assert!(e.to_string().contains("fixed-point"));
        assert!(Error::source(&e).is_some());
        assert!(AccelError::UnsupportedLayer("lrn".into()).to_string().contains("lrn"));
    }
}
