//! Bit-accurate functional model of the multiplier-free datapath.
//!
//! These routines execute quantized layers exactly the way the hardware of
//! Figure 2(a) would — but through two implementations of the same
//! arithmetic:
//!
//! * [`ShiftConv::run`] / [`ShiftLinear::run`] — the **deployed hot
//!   path**: weights stay in their packed 4-bit nibble form
//!   ([`PackedPow2Matrix`]) and flow through the shift-only
//!   [`mfdfp_tensor::qgemm_i8`] kernel (im2col for convolutions), whose
//!   inner loop is pure shift/mask/add — no `Pow2Weight` decode, no
//!   branch, no multiply. Activations stay 8-bit codes end to end: the
//!   im2col gather copies `i8` bytes and the kernel widens in register,
//!   so staging traffic is a quarter of the old `i32` layout and the
//!   9-bit operand audit is structural. With the `parallel` cargo
//!   feature, large layers fan output rows across OS threads.
//!
//!   The scratch-free entries [`ShiftConv::run_into`] /
//!   [`ShiftLinear::run_into`] write into caller buffers and draw their
//!   staging space from a [`Workspace`]; the allocating `run` wrappers
//!   route through the calling thread's persistent workspace, so on a
//!   long-lived thread even they stop allocating scratch after the first
//!   call (only the returned `Vec` remains).
//! * [`ShiftConv::run_reference`] / [`ShiftLinear::run_reference`] — the
//!   **decode-based audit path**: every nibble is unpacked to a
//!   [`Pow2Weight`], products go one [`Pow2Weight::mul_shift`] at a time
//!   through the widening [`AdderTree`] (with per-level overflow audits)
//!   and the 32-bit [`Accumulator`]. This is the original cycle-faithful
//!   rendition of the Figure 2(a) datapath; it is kept as the oracle the
//!   packed path is property-tested against
//!   (`tests/qgemm_equivalence.rs`) and as the decode-overhead baseline
//!   the `qgemm` benches measure.
//!
//! Both paths compute identical activation codes for every valid input —
//! integer products are exact and integer addition is order-independent —
//! so `mfdfp-core` can serve traffic on the packed path while the audit
//! path keeps proving the hardware semantics. (The contract is over
//! successful results: overflow *audits* run at different granularity —
//! per 16-product chunk on the reference path, per final output sum on
//! the packed path — which can only diverge beyond ~2^16 worst-case
//! synapses per neuron, far outside the paper's layer sizes; see the
//! `qgemm` module docs.)

use mfdfp_dfp::{Accumulator, AdderTree, I64Section, PackedPow2Matrix, Pow2Weight};
use mfdfp_tensor::{
    im2col_batched_i8, qgemm_fused_into_i8, qgemm_into_i8, with_thread_workspace, ConvGeometry,
    Workspace,
};

use crate::error::{AccelError, Result};

/// Number of integer bits produced by the shift stage beyond the input
/// format: products carry fractional length `m + 7`.
pub const PRODUCT_FRAC_SHIFT: i32 = 7;

/// A convolution layer in hardware representation.
#[derive(Debug, Clone)]
pub struct ShiftConv {
    /// Convolution geometry (shared with the float framework).
    pub geom: ConvGeometry,
    /// Packed power-of-two weights: `out_c` rows of `col_height()`
    /// synapses each (`OutC×InC/g×k×k` order, nibble-packed per row).
    pub weights: PackedPow2Matrix,
    /// Per-output-channel bias, pre-aligned to the accumulator format
    /// (fractional length `m + 7`). Owned values or a zero-copy window
    /// into a deployment image ([`I64Section`]).
    pub bias: I64Section,
    /// Input activation fractional length `m`.
    pub in_frac: i8,
    /// Output activation fractional length `n`.
    pub out_frac: i8,
}

impl ShiftConv {
    /// Executes the layer on one image of activation codes (`C×H×W`,
    /// row-major), returning output codes (`OutC×OH×OW`) — the packed
    /// shift-only path: `i8` im2col, then [`mfdfp_tensor::qgemm_i8`]
    /// straight over the nibble codes.
    ///
    /// Thin wrapper over [`ShiftConv::run_into`] drawing scratch from the
    /// calling thread's persistent workspace; only the returned `Vec`
    /// allocates once the thread is warm.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::BadInput`] on a length mismatch and
    /// propagates the kernel's overflow audits as [`AccelError::Tensor`].
    pub fn run(&self, input: &[i8]) -> Result<Vec<i8>> {
        let mut out = vec![0i8; self.out_len()];
        with_thread_workspace(|ws| self.run_into(input, ws, &mut out))?;
        Ok(out)
    }

    /// The allocation-free entry: executes the layer into `out`
    /// (`OutC×OH×OW` codes), staging the `i8` im2col columns in `ws`.
    /// With a warmed workspace this performs zero heap allocations —
    /// activation codes stream byte-for-byte from `input` through the
    /// gather into the in-register-widening kernel.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::BadInput`] if `input` or `out` have the
    /// wrong length and propagates the kernel's overflow audits as
    /// [`AccelError::Tensor`].
    pub fn run_into(&self, input: &[i8], ws: &mut Workspace, out: &mut [i8]) -> Result<()> {
        let g = &self.geom;
        self.validate(input.len())?;
        if out.len() != self.out_len() {
            return Err(AccelError::BadInput { expected: self.out_len(), actual: out.len() });
        }
        let npix = g.out_h() * g.out_w();
        let syn = g.col_height();
        let acc_frac = self.in_frac as i32 + PRODUCT_FRAC_SHIFT;
        let group_out = g.out_c / g.groups;
        // `i8` im2col for one group (`syn × npix`): one synapse's
        // activations across all output pixels are contiguous, the layout
        // the packed kernel streams — still 8-bit codes, so the gather is
        // a byte copy and the staging buffer is 4× leaner than the old
        // `i32` layout.
        let xt = ws.im2col_i8(syn * npix);
        for grp in 0..g.groups {
            {
                let _span = mfdfp_obs::span!("conv.im2col", (syn * npix) as u64);
                gather_group_columns(input, g, grp, xt);
            }
            // One fetch_add per group: the gather staged `syn·npix` i8
            // bytes for this group's column matrix.
            mfdfp_obs::ops::record_im2col_bytes((syn * npix) as u64);
            let row0 = grp * group_out;
            qgemm_into_i8(
                &self.weights,
                row0,
                group_out,
                xt,
                npix,
                &self.bias[row0..row0 + group_out],
                acc_frac,
                self.out_frac as i32,
                &mut out[row0 * npix..(row0 + group_out) * npix],
            )
            .map_err(AccelError::Tensor)?;
        }
        Ok(())
    }

    /// The batch-fused entry: executes the layer on `batch` images at
    /// once — **one** im2col gather and **one** packed shift-MAC pass per
    /// channel group for the whole batch, instead of `batch` of each.
    ///
    /// `input` and `out` use the element-interleaved fused layout
    /// ([`mfdfp_tensor::im2col_batched_i8`]): element `e` (usual `C×H×W`
    /// order) of image `b` lives at index `e · batch + b`. The fused
    /// GEMM's output columns come out in exactly that order, so layers
    /// chain with no re-staging, and `batch = 1` is byte-for-byte the
    /// per-image layout.
    ///
    /// Bit-identical to `batch` calls of [`ShiftConv::run_into`] — the
    /// kernel's per-output accumulation order does not depend on the
    /// column count (see [`mfdfp_tensor::qgemm_fused_into_i8`]) — while
    /// the row-banded parallel threshold now sees the whole layer-batch
    /// product, splitting per-layer instead of per-image work. The
    /// workspace must be planned with the batch dimension
    /// (`WorkspacePlan::for_batch`): staging needs
    /// `im2col_len() × batch` `i8` elements.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::BadConfig`] for a zero batch,
    /// [`AccelError::BadInput`] if `input`/`out` are not `batch`
    /// interleaved images/outputs, and propagates the kernel's overflow
    /// audits as [`AccelError::Tensor`].
    pub fn run_batch_into(
        &self,
        input: &[i8],
        batch: usize,
        ws: &mut Workspace,
        out: &mut [i8],
    ) -> Result<()> {
        if batch == 0 {
            return Err(AccelError::BadConfig("conv batch must be positive".into()));
        }
        let g = &self.geom;
        let expect = g.in_c * g.in_h * g.in_w;
        // Weight/bias shape checks are shared with the per-image path.
        self.validate(expect)?;
        if input.len() != expect * batch {
            return Err(AccelError::BadInput { expected: expect * batch, actual: input.len() });
        }
        if out.len() != self.out_len() * batch {
            return Err(AccelError::BadInput {
                expected: self.out_len() * batch,
                actual: out.len(),
            });
        }
        let npix = g.out_h() * g.out_w();
        let syn = g.col_height();
        let acc_frac = self.in_frac as i32 + PRODUCT_FRAC_SHIFT;
        let group_out = g.out_c / g.groups;
        // One fused column matrix per group: `syn × (npix · batch)`.
        let xt = ws.im2col_i8(syn * npix * batch);
        for grp in 0..g.groups {
            {
                let _span = mfdfp_obs::span!("conv.im2col_batched", (syn * npix * batch) as u64);
                im2col_batched_i8(input, g, grp, batch, xt).map_err(AccelError::Tensor)?;
            }
            // Telemetry stays exact under fusion: `syn·npix·batch` bytes
            // staged here equals the sum of the per-image gathers.
            mfdfp_obs::ops::record_im2col_bytes((syn * npix * batch) as u64);
            let row0 = grp * group_out;
            qgemm_fused_into_i8(
                &self.weights,
                row0,
                group_out,
                xt,
                npix,
                batch,
                &self.bias[row0..row0 + group_out],
                acc_frac,
                self.out_frac as i32,
                &mut out[row0 * npix * batch..(row0 + group_out) * npix * batch],
            )
            .map_err(AccelError::Tensor)?;
        }
        Ok(())
    }

    /// Output element count (`OutC×OH×OW`).
    pub fn out_len(&self) -> usize {
        self.geom.out_c * self.geom.out_h() * self.geom.out_w()
    }

    /// Peak im2col staging this layer needs (`col_height × OH·OW` `i8`
    /// elements) — the workspace-planning input.
    pub fn im2col_len(&self) -> usize {
        self.geom.col_height() * self.geom.out_h() * self.geom.out_w()
    }

    /// Executes the layer through the decode-based Figure 2(a) datapath:
    /// per-element [`Pow2Weight::mul_shift`], the widening adder `tree`,
    /// and the audited 32-bit accumulator. Kept as the bit-exactness
    /// oracle and decode-overhead baseline for [`ShiftConv::run`].
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::BadInput`] on a length mismatch and
    /// propagates overflow audits from the adder tree.
    pub fn run_reference(&self, input: &[i8], tree: &AdderTree) -> Result<Vec<i8>> {
        let g = &self.geom;
        self.validate(input.len())?;
        // Telemetry: these output rows take the decode fallback, not the
        // packed kernel (one fetch_add per layer call).
        mfdfp_obs::ops::record_decode_rows(g.out_c as u64);
        let weights = self.weights.to_weights();
        let (oh, ow) = (g.out_h(), g.out_w());
        let k = g.kernel;
        let acc_frac = self.in_frac as i32 + PRODUCT_FRAC_SHIFT;
        let mut out = vec![0i8; g.out_c * oh * ow];
        // Synapse gather buffer reused across outputs.
        let syn_count = g.col_height();
        let mut xs = vec![0i32; syn_count];
        let mut acc = Accumulator::new();
        let mut products = Vec::new();
        let group_in = g.in_c / g.groups;
        let group_out = g.out_c / g.groups;
        for oc in 0..g.out_c {
            let wbase = oc * syn_count;
            // Grouped convolutions see only their group's input channels.
            let c_lo = (oc / group_out) * group_in;
            for oy in 0..oh {
                for ox in 0..ow {
                    // Gather the receptive field (zero for padding).
                    let mut si = 0usize;
                    for c in c_lo..c_lo + group_in {
                        for ky in 0..k {
                            let iy = (oy * g.stride + ky) as isize - g.pad as isize;
                            for kx in 0..k {
                                let ix = (ox * g.stride + kx) as isize - g.pad as isize;
                                xs[si] = if iy < 0
                                    || ix < 0
                                    || iy >= g.in_h as isize
                                    || ix >= g.in_w as isize
                                {
                                    0
                                } else {
                                    input[(c * g.in_h + iy as usize) * g.in_w + ix as usize] as i32
                                };
                                si += 1;
                            }
                        }
                    }
                    let code = mac_reduce(
                        &xs,
                        &weights[wbase..wbase + syn_count],
                        self.bias[oc],
                        acc_frac,
                        self.out_frac as i32,
                        tree,
                        &mut acc,
                        &mut products,
                    )?;
                    out[(oc * oh + oy) * ow + ox] = code;
                }
            }
        }
        Ok(out)
    }

    fn validate(&self, input_len: usize) -> Result<()> {
        let g = &self.geom;
        let expect = g.in_c * g.in_h * g.in_w;
        if input_len != expect {
            return Err(AccelError::BadInput { expected: expect, actual: input_len });
        }
        if self.weights.rows() != g.out_c || self.weights.cols() != g.col_height() {
            return Err(AccelError::BadConfig(format!(
                "packed weight matrix is {}×{}, geometry needs {}×{}",
                self.weights.rows(),
                self.weights.cols(),
                g.out_c,
                g.col_height()
            )));
        }
        if self.bias.len() != g.out_c {
            return Err(AccelError::BadInput { expected: g.out_c, actual: self.bias.len() });
        }
        Ok(())
    }
}

/// Fills `xt` (a `col_height × OH·OW` row-major buffer) with group
/// `grp`'s receptive fields as raw `i8` codes, zero for padding — the
/// standard im2col layout [`mfdfp_tensor::qgemm_i8`] streams (one
/// synapse's activations across all output pixels contiguous). A plain
/// byte copy: no widening anywhere in the gather.
fn gather_group_columns(input: &[i8], g: &ConvGeometry, grp: usize, xt: &mut [i8]) {
    let (oh, ow) = (g.out_h(), g.out_w());
    let npix = oh * ow;
    let k = g.kernel;
    let group_in = g.in_c / g.groups;
    let c_lo = grp * group_in;
    let mut si = 0usize;
    for c in c_lo..c_lo + group_in {
        for ky in 0..k {
            for kx in 0..k {
                let row = &mut xt[si * npix..(si + 1) * npix];
                let mut pix = 0usize;
                for oy in 0..oh {
                    let iy = (oy * g.stride + ky) as isize - g.pad as isize;
                    for ox in 0..ow {
                        let ix = (ox * g.stride + kx) as isize - g.pad as isize;
                        row[pix] =
                            if iy < 0 || ix < 0 || iy >= g.in_h as isize || ix >= g.in_w as isize {
                                0
                            } else {
                                input[(c * g.in_h + iy as usize) * g.in_w + ix as usize]
                            };
                        pix += 1;
                    }
                }
                si += 1;
            }
        }
    }
}

/// A fully-connected layer in hardware representation.
#[derive(Debug, Clone)]
pub struct ShiftLinear {
    /// Input features.
    pub in_features: usize,
    /// Output features.
    pub out_features: usize,
    /// Packed power-of-two weights: `out_features` rows of `in_features`
    /// synapses each, nibble-packed per row.
    pub weights: PackedPow2Matrix,
    /// Per-output bias in accumulator format (fractional length `m + 7`).
    /// Owned values or a zero-copy window into a deployment image
    /// ([`I64Section`]).
    pub bias: I64Section,
    /// Input activation fractional length `m`.
    pub in_frac: i8,
    /// Output activation fractional length `n`.
    pub out_frac: i8,
}

impl ShiftLinear {
    /// Executes the layer on one activation-code vector — the packed
    /// shift-only path ([`mfdfp_tensor::qgemm_i8`] with a single
    /// activation column). Thin wrapper over [`ShiftLinear::run_into`];
    /// only the returned `Vec` allocates.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::BadInput`] on a length mismatch and
    /// propagates the kernel's overflow audits as [`AccelError::Tensor`].
    pub fn run(&self, input: &[i8]) -> Result<Vec<i8>> {
        let mut out = vec![0i8; self.out_features];
        self.run_into(input, &mut out)?;
        Ok(out)
    }

    /// The allocation-free entry: executes the layer into `out`
    /// (`out_features` codes). The input vector **is** the `k × 1` im2col
    /// matrix in the `i8` streaming layout, so this stages nothing at all
    /// — no widening copy, no scratch, zero heap allocations.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::BadInput`] if `input` or `out` have the
    /// wrong length and propagates the kernel's overflow audits as
    /// [`AccelError::Tensor`].
    pub fn run_into(&self, input: &[i8], out: &mut [i8]) -> Result<()> {
        self.validate(input.len())?;
        if out.len() != self.out_features {
            return Err(AccelError::BadInput { expected: self.out_features, actual: out.len() });
        }
        let acc_frac = self.in_frac as i32 + PRODUCT_FRAC_SHIFT;
        qgemm_into_i8(
            &self.weights,
            0,
            self.out_features,
            input,
            1,
            &self.bias,
            acc_frac,
            self.out_frac as i32,
            out,
        )
        .map_err(AccelError::Tensor)
    }

    /// The batch-fused entry: one packed shift-MAC pass over `batch`
    /// activation vectors at once. In the element-interleaved fused
    /// layout the input buffer (`in_features × batch`, feature-major)
    /// **is** the `k × batch` im2col column matrix, so — as with the
    /// per-image path — this stages nothing at all; the whole batch is
    /// one kernel call whose rows are `batch` columns wide. Bit-identical
    /// to `batch` calls of [`ShiftLinear::run_into`] (see
    /// [`mfdfp_tensor::qgemm_fused_into_i8`]).
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::BadConfig`] for a zero batch,
    /// [`AccelError::BadInput`] on length mismatches, and propagates the
    /// kernel's overflow audits as [`AccelError::Tensor`].
    pub fn run_batch_into(&self, input: &[i8], batch: usize, out: &mut [i8]) -> Result<()> {
        if batch == 0 {
            return Err(AccelError::BadConfig("linear batch must be positive".into()));
        }
        // Weight/bias shape checks are shared with the per-image path.
        self.validate(self.in_features)?;
        if input.len() != self.in_features * batch {
            return Err(AccelError::BadInput {
                expected: self.in_features * batch,
                actual: input.len(),
            });
        }
        if out.len() != self.out_features * batch {
            return Err(AccelError::BadInput {
                expected: self.out_features * batch,
                actual: out.len(),
            });
        }
        let acc_frac = self.in_frac as i32 + PRODUCT_FRAC_SHIFT;
        qgemm_fused_into_i8(
            &self.weights,
            0,
            self.out_features,
            input,
            1,
            batch,
            &self.bias,
            acc_frac,
            self.out_frac as i32,
            out,
        )
        .map_err(AccelError::Tensor)
    }

    /// Executes the layer through the decode-based Figure 2(a) datapath
    /// (see [`ShiftConv::run_reference`]).
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::BadInput`] on a length mismatch and
    /// propagates overflow audits from the adder tree.
    pub fn run_reference(&self, input: &[i8], tree: &AdderTree) -> Result<Vec<i8>> {
        self.validate(input.len())?;
        // Telemetry: decode-fallback rows, as in ShiftConv.
        mfdfp_obs::ops::record_decode_rows(self.out_features as u64);
        let weights = self.weights.to_weights();
        let acc_frac = self.in_frac as i32 + PRODUCT_FRAC_SHIFT;
        let xs: Vec<i32> = input.iter().map(|&c| c as i32).collect();
        let mut acc = Accumulator::new();
        let mut products = Vec::new();
        let mut out = vec![0i8; self.out_features];
        for (o, out_code) in out.iter_mut().enumerate() {
            let wbase = o * self.in_features;
            *out_code = mac_reduce(
                &xs,
                &weights[wbase..wbase + self.in_features],
                self.bias[o],
                acc_frac,
                self.out_frac as i32,
                tree,
                &mut acc,
                &mut products,
            )?;
        }
        Ok(out)
    }

    fn validate(&self, input_len: usize) -> Result<()> {
        if input_len != self.in_features {
            return Err(AccelError::BadInput { expected: self.in_features, actual: input_len });
        }
        if self.weights.rows() != self.out_features || self.weights.cols() != self.in_features {
            return Err(AccelError::BadConfig(format!(
                "packed weight matrix is {}×{}, layer needs {}×{}",
                self.weights.rows(),
                self.weights.cols(),
                self.out_features,
                self.in_features
            )));
        }
        if self.bias.len() != self.out_features {
            return Err(AccelError::BadInput {
                expected: self.out_features,
                actual: self.bias.len(),
            });
        }
        Ok(())
    }
}

/// One neuron's multi-cycle MAC reduction: shift-multiply chunks of
/// `tree.fan_in()` synapses, sum each chunk through the widening tree,
/// accumulate, add bias, and route to the 8-bit output format.
///
/// `products` is the caller's product-register buffer, resized (grow-only)
/// to the tree's fan-in — hoisted out of this per-neuron routine so a
/// whole reference-path layer reuses one buffer instead of allocating per
/// output.
#[allow(clippy::too_many_arguments)] // cycle-model internals: full datapath state
fn mac_reduce(
    xs: &[i32],
    ws: &[Pow2Weight],
    bias: i64,
    acc_frac: i32,
    out_frac: i32,
    tree: &AdderTree,
    acc: &mut Accumulator,
    products: &mut Vec<i32>,
) -> Result<i8> {
    debug_assert_eq!(xs.len(), ws.len());
    let fan_in = tree.fan_in();
    acc.reset();
    products.resize(fan_in, 0);
    for (xc, wc) in xs.chunks(fan_in).zip(ws.chunks(fan_in)) {
        for (p, (x, w)) in products.iter_mut().zip(xc.iter().zip(wc)) {
            *p = w.mul_shift(*x);
        }
        // Final partial chunk: unused lanes contribute zero products.
        for p in products.iter_mut().skip(xc.len()) {
            *p = 0;
        }
        acc.add(tree.sum(products)?)?;
    }
    acc.add(bias)?;
    Ok(acc.route(acc_frac, out_frac, 8) as i8)
}

/// ReLU on activation codes (the NL unit): `max(0, code)`.
pub fn relu_codes(codes: &mut [i8]) {
    for c in codes {
        if *c < 0 {
            *c = 0;
        }
    }
}

/// Ceil-mode output dimensions of a pooling window, matching the float
/// framework (and the `oh`/`ow` the `*_pool_codes` routines produce).
/// Workspace planning and the forward loops share this so buffer sizes
/// and outputs can never disagree.
///
/// # Errors
///
/// Returns [`AccelError::BadConfig`] for a zero window or stride — the
/// one configuration with no defined output size.
pub fn pool_out_dims(
    in_h: usize,
    in_w: usize,
    window: usize,
    stride: usize,
) -> Result<(usize, usize)> {
    if window == 0 || stride == 0 {
        return Err(AccelError::BadConfig("pool window/stride must be positive".into()));
    }
    let oh = (in_h - window.min(in_h)).div_ceil(stride) + 1;
    let ow = (in_w - window.min(in_w)).div_ceil(stride) + 1;
    Ok((oh, ow))
}

/// Max pooling on activation codes. Monotone, so pooling codes equals
/// pooling values: no precision concerns.
///
/// # Errors
///
/// Returns [`AccelError::BadInput`] on a length mismatch.
pub fn max_pool_codes(
    input: &[i8],
    channels: usize,
    in_h: usize,
    in_w: usize,
    window: usize,
    stride: usize,
) -> Result<Vec<i8>> {
    pool_codes_alloc(input, channels, in_h, in_w, window, stride, true)
}

/// [`max_pool_codes`] into a caller buffer (`channels × oh × ow`, see
/// [`pool_out_dims`]): the allocation-free pooling entry.
///
/// # Errors
///
/// Returns [`AccelError::BadInput`] on an input or output length
/// mismatch.
pub fn max_pool_codes_into(
    input: &[i8],
    channels: usize,
    in_h: usize,
    in_w: usize,
    window: usize,
    stride: usize,
    out: &mut [i8],
) -> Result<()> {
    pool_codes_into(input, channels, in_h, in_w, window, stride, true, out)
}

/// Average pooling on activation codes with round-half-away integer
/// division.
///
/// Hardware note: window populations here are 1–9; division by a small
/// constant is realised as a shift-add constant multiplier (a few adders),
/// preserving the multiplier-free property. The cycle model charges the
/// pooling unit accordingly.
///
/// # Errors
///
/// Returns [`AccelError::BadInput`] on a length mismatch.
pub fn avg_pool_codes(
    input: &[i8],
    channels: usize,
    in_h: usize,
    in_w: usize,
    window: usize,
    stride: usize,
) -> Result<Vec<i8>> {
    pool_codes_alloc(input, channels, in_h, in_w, window, stride, false)
}

/// [`avg_pool_codes`] into a caller buffer (`channels × oh × ow`, see
/// [`pool_out_dims`]): the allocation-free pooling entry.
///
/// # Errors
///
/// Returns [`AccelError::BadInput`] on an input or output length
/// mismatch.
pub fn avg_pool_codes_into(
    input: &[i8],
    channels: usize,
    in_h: usize,
    in_w: usize,
    window: usize,
    stride: usize,
    out: &mut [i8],
) -> Result<()> {
    pool_codes_into(input, channels, in_h, in_w, window, stride, false, out)
}

/// [`max_pool_codes_into`] over a fused batch in the element-interleaved
/// layout (element `e` of image `b` at `e · batch + b`, as produced by
/// the batched conv path): each window is reduced independently per
/// image, so the result is bit-identical to `batch` per-image pooling
/// calls, de-interleaved.
///
/// # Errors
///
/// Returns [`AccelError::BadConfig`] for a zero batch (or zero
/// window/stride) and [`AccelError::BadInput`] on length mismatches.
#[allow(clippy::too_many_arguments)] // pooling frame + batch dimension
pub fn max_pool_codes_batch_into(
    input: &[i8],
    channels: usize,
    in_h: usize,
    in_w: usize,
    window: usize,
    stride: usize,
    batch: usize,
    out: &mut [i8],
) -> Result<()> {
    pool_codes_batch_into(input, channels, in_h, in_w, window, stride, true, batch, out)
}

/// [`avg_pool_codes_into`] over a fused batch in the element-interleaved
/// layout — see [`max_pool_codes_batch_into`] for the layout and
/// bit-identity contract (the round-half-away division runs per image,
/// exactly as in the per-image path).
///
/// # Errors
///
/// Returns [`AccelError::BadConfig`] for a zero batch (or zero
/// window/stride) and [`AccelError::BadInput`] on length mismatches.
#[allow(clippy::too_many_arguments)] // pooling frame + batch dimension
pub fn avg_pool_codes_batch_into(
    input: &[i8],
    channels: usize,
    in_h: usize,
    in_w: usize,
    window: usize,
    stride: usize,
    batch: usize,
    out: &mut [i8],
) -> Result<()> {
    pool_codes_batch_into(input, channels, in_h, in_w, window, stride, false, batch, out)
}

#[allow(clippy::too_many_arguments)] // private pooling frame + mode flag
fn pool_codes_alloc(
    input: &[i8],
    channels: usize,
    in_h: usize,
    in_w: usize,
    window: usize,
    stride: usize,
    is_max: bool,
) -> Result<Vec<i8>> {
    let (oh, ow) = pool_out_dims(in_h, in_w, window, stride)?;
    let mut out = vec![0i8; channels * oh * ow];
    pool_codes_into(input, channels, in_h, in_w, window, stride, is_max, &mut out)?;
    Ok(out)
}

#[allow(clippy::too_many_arguments)] // private pooling frame + mode flag
fn pool_codes_into(
    input: &[i8],
    channels: usize,
    in_h: usize,
    in_w: usize,
    window: usize,
    stride: usize,
    is_max: bool,
    out: &mut [i8],
) -> Result<()> {
    // `batch = 1` is exactly the per-image layout and loop.
    pool_codes_batch_into(input, channels, in_h, in_w, window, stride, is_max, 1, out)
}

/// The pooling workhorse, generalized over the fused batch dimension:
/// input element `(c, iy, ix)` of image `b` lives at
/// `((c·in_h + iy)·in_w + ix)·batch + b` and the output uses the same
/// interleave. Each image's window reduction runs in the identical
/// per-element order as the single-image loop, so `batch = 1` (every
/// historical caller) is unchanged and larger batches are bit-identical
/// to de-interleaved per-image calls.
#[allow(clippy::too_many_arguments)] // private pooling frame + mode flag + batch
fn pool_codes_batch_into(
    input: &[i8],
    channels: usize,
    in_h: usize,
    in_w: usize,
    window: usize,
    stride: usize,
    is_max: bool,
    batch: usize,
    out: &mut [i8],
) -> Result<()> {
    if batch == 0 {
        return Err(AccelError::BadConfig("pool batch must be positive".into()));
    }
    let expect = channels * in_h * in_w * batch;
    if input.len() != expect {
        return Err(AccelError::BadInput { expected: expect, actual: input.len() });
    }
    // Ceil-mode output size, matching the float framework.
    let (oh, ow) = pool_out_dims(in_h, in_w, window, stride)?;
    if out.len() != channels * oh * ow * batch {
        return Err(AccelError::BadInput {
            expected: channels * oh * ow * batch,
            actual: out.len(),
        });
    }
    for c in 0..channels {
        for oy in 0..oh {
            for ox in 0..ow {
                let y0 = oy * stride;
                let x0 = ox * stride;
                let y1 = (y0 + window).min(in_h);
                let x1 = (x0 + window).min(in_w);
                let obase = ((c * oh + oy) * ow + ox) * batch;
                for b in 0..batch {
                    let v = if is_max {
                        let mut best = i8::MIN;
                        for iy in y0..y1 {
                            for ix in x0..x1 {
                                best = best.max(input[((c * in_h + iy) * in_w + ix) * batch + b]);
                            }
                        }
                        best
                    } else {
                        let mut sum = 0i32;
                        let count = ((y1 - y0) * (x1 - x0)) as i32;
                        for iy in y0..y1 {
                            for ix in x0..x1 {
                                sum += input[((c * in_h + iy) * in_w + ix) * batch + b] as i32;
                            }
                        }
                        // Round half away from zero.
                        let half = count / 2;
                        let q =
                            if sum >= 0 { (sum + half) / count } else { -((-sum + half) / count) };
                        q.clamp(i8::MIN as i32, i8::MAX as i32) as i8
                    };
                    out[obase + b] = v;
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfdfp_dfp::DfpFormat;

    fn tree16() -> AdderTree {
        AdderTree::new(16).unwrap()
    }

    fn pack(rows: usize, cols: usize, ws: &[f32]) -> PackedPow2Matrix {
        PackedPow2Matrix::from_f32(rows, cols, ws).unwrap()
    }

    #[test]
    fn shift_linear_matches_float_reference() {
        // 4 inputs in ⟨8,7⟩, weights exact powers of two: the integer path
        // must agree with exact real arithmetic.
        let in_fmt = DfpFormat::q8(7);
        let xs = [0.5f32, -0.25, 0.75, 0.125];
        let ws = [0.5f32, -0.5, 0.25, 1.0, -1.0, 0.125, 0.5, -0.25];
        let layer = ShiftLinear {
            in_features: 4,
            out_features: 2,
            weights: pack(2, 4, &ws),
            bias: vec![0, 0].into(),
            in_frac: 7,
            out_frac: 5,
        };
        let codes: Vec<i8> = xs.iter().map(|&x| in_fmt.quantize(x) as i8).collect();
        let out = layer.run(&codes).unwrap();
        assert_eq!(out, layer.run_reference(&codes, &tree16()).unwrap());
        let out_fmt = DfpFormat::q8(5);
        for (o, row) in out.iter().enumerate() {
            let expect: f32 = xs.iter().zip(&ws[o * 4..(o + 1) * 4]).map(|(x, w)| x * w).sum();
            let got = out_fmt.dequantize(*row as i32);
            assert!((got - expect).abs() <= out_fmt.step(), "neuron {o}: {got} vs {expect}");
        }
    }

    #[test]
    fn bias_is_added_in_accumulator_format() {
        let layer = ShiftLinear {
            in_features: 1,
            out_features: 1,
            weights: pack(1, 1, &[1.0]),
            bias: vec![1 << 11].into(), // 1.0 at fractional length m+7 = 11
            in_frac: 4,
            out_frac: 4,
        };
        // 0·w + 1.0 → code 16 in ⟨8,4⟩, on both paths.
        assert_eq!(layer.run(&[0]).unwrap(), vec![16]);
        assert_eq!(layer.run_reference(&[0], &tree16()).unwrap(), vec![16]);
    }

    #[test]
    fn routing_saturates_output() {
        let layer = ShiftLinear {
            in_features: 4,
            out_features: 1,
            weights: pack(1, 4, &[1.0; 4]),
            bias: vec![0].into(),
            in_frac: 0,
            out_frac: 7, // huge upscale forces saturation
        };
        assert_eq!(layer.run(&[100, 100, 100, 100]).unwrap(), vec![127]);
        assert_eq!(layer.run_reference(&[100, 100, 100, 100], &tree16()).unwrap(), vec![127]);
    }

    fn dummy_linear(inf: usize, outf: usize) -> ShiftLinear {
        ShiftLinear {
            in_features: inf,
            out_features: outf,
            weights: pack(outf, inf, &vec![0.5f32; inf * outf]),
            bias: vec![0; outf].into(),
            in_frac: 7,
            out_frac: 7,
        }
    }

    #[test]
    fn linear_validates_lengths() {
        let l = dummy_linear(4, 2);
        assert!(l.run(&[0; 3]).is_err());
        assert!(l.run_reference(&[0; 3], &tree16()).is_err());
        let mut bad = dummy_linear(4, 2);
        bad.weights = pack(2, 3, &[0.5; 6]); // wrong column count
        assert!(bad.run(&[0; 4]).is_err());
    }

    #[test]
    fn shift_conv_matches_dequantized_reference() {
        // 1×3×3 input, one 2×2 kernel, exact power-of-two values.
        let geom = ConvGeometry::new(1, 3, 3, 1, 2, 1, 0).unwrap();
        let in_fmt = DfpFormat::q8(6);
        let xvals = [0.5f32, 0.25, -0.5, 1.0, -0.25, 0.125, 0.5, 0.5, -1.0];
        let wvals = [0.5f32, -0.5, 0.25, 1.0];
        let layer = ShiftConv {
            geom,
            weights: pack(1, 4, &wvals),
            bias: vec![0].into(),
            in_frac: 6,
            out_frac: 5,
        };
        let codes: Vec<i8> = xvals.iter().map(|&x| in_fmt.quantize(x) as i8).collect();
        let out = layer.run(&codes).unwrap();
        assert_eq!(out, layer.run_reference(&codes, &tree16()).unwrap());
        assert_eq!(out.len(), 4);
        let out_fmt = DfpFormat::q8(5);
        // Manually compute expected top-left output.
        let expect = 0.5 * 0.5 + 0.25 * (-0.5) + 1.0 * 0.25 + (-0.25) * 1.0;
        let got = out_fmt.dequantize(out[0] as i32);
        assert!((got - expect).abs() <= out_fmt.step(), "{got} vs {expect}");
    }

    #[test]
    fn conv_padding_contributes_zero() {
        let geom = ConvGeometry::new(1, 2, 2, 1, 3, 1, 1).unwrap();
        let layer = ShiftConv {
            geom,
            weights: pack(1, 9, &[1.0; 9]),
            bias: vec![0].into(),
            in_frac: 0,
            out_frac: 0,
        };
        let out = layer.run(&[1, 1, 1, 1]).unwrap();
        // Centre of the 2×2 output: each position sees all four ones.
        assert_eq!(out, vec![4, 4, 4, 4]);
        assert_eq!(layer.run_reference(&[1, 1, 1, 1], &tree16()).unwrap(), out);
    }

    #[test]
    fn grouped_shift_conv_blocks_cross_group_paths() {
        // 2 input channels, 2 output channels, 2 groups, 1×1 kernels of
        // weight 1: output c equals input c exactly — no cross-talk.
        let geom = ConvGeometry::new(2, 2, 2, 2, 1, 1, 0).unwrap().with_groups(2).unwrap();
        let layer = ShiftConv {
            geom,
            weights: pack(2, 1, &[1.0; 2]),
            bias: vec![0, 0].into(),
            in_frac: 0,
            out_frac: 0,
        };
        let input = [1i8, 2, 3, 4, 10, 20, 30, 40];
        let out = layer.run(&input).unwrap();
        assert_eq!(out, input.to_vec());
        assert_eq!(layer.run_reference(&input, &tree16()).unwrap(), input.to_vec());
    }

    #[test]
    fn run_into_matches_run_and_validates_out_len() {
        let geom = ConvGeometry::new(2, 5, 5, 3, 3, 1, 1).unwrap();
        let layer = ShiftConv {
            geom,
            weights: pack(3, 18, &[0.5; 54]),
            bias: vec![0; 3].into(),
            in_frac: 6,
            out_frac: 4,
        };
        let input: Vec<i8> = (0..50).map(|i| (i * 5 % 127) as i8 - 40).collect();
        let expect = layer.run(&input).unwrap();
        let mut ws = Workspace::new();
        let mut out = vec![0i8; layer.out_len()];
        layer.run_into(&input, &mut ws, &mut out).unwrap();
        assert_eq!(out, expect);
        // Reusing the warmed workspace must give the same answer.
        let mut again = vec![0i8; layer.out_len()];
        layer.run_into(&input, &mut ws, &mut again).unwrap();
        assert_eq!(again, expect);
        let mut short = vec![0i8; layer.out_len() - 1];
        assert!(layer.run_into(&input, &mut ws, &mut short).is_err());

        let lin = dummy_linear(4, 2);
        let lexpect = lin.run(&[1, 2, 3, 4]).unwrap();
        let mut lout = vec![0i8; 2];
        lin.run_into(&[1, 2, 3, 4], &mut lout).unwrap();
        assert_eq!(lout, lexpect);
        assert!(lin.run_into(&[1, 2, 3, 4], &mut lout[..1]).is_err());
    }

    /// Interleaves per-image buffers into the fused layout
    /// (`fused[e·B + b] = images[b][e]`).
    fn interleave(images: &[Vec<i8>]) -> Vec<i8> {
        let batch = images.len();
        let per = images[0].len();
        let mut fused = vec![0i8; per * batch];
        for (b, img) in images.iter().enumerate() {
            for (e, &v) in img.iter().enumerate() {
                fused[e * batch + b] = v;
            }
        }
        fused
    }

    /// Splits a fused buffer back into per-image vectors.
    fn deinterleave(fused: &[i8], batch: usize) -> Vec<Vec<i8>> {
        let per = fused.len() / batch;
        (0..batch).map(|b| (0..per).map(|e| fused[e * batch + b]).collect()).collect()
    }

    fn images(per: usize, batch: usize, seed: i32) -> Vec<Vec<i8>> {
        (0..batch)
            .map(|b| {
                (0..per)
                    .map(|e| ((e as i32 * 17 + b as i32 * 41 + seed) % 251 - 120) as i8)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn batched_conv_matches_per_image_runs() {
        let geom = ConvGeometry::new(2, 5, 5, 3, 3, 1, 1).unwrap();
        let layer = ShiftConv {
            geom,
            weights: pack(3, 18, &(0..54).map(|i| [0.5, -0.25, 1.0][i % 3]).collect::<Vec<_>>()),
            bias: vec![0, 1 << 10, -(1 << 10)].into(),
            in_frac: 6,
            out_frac: 4,
        };
        for batch in [1usize, 2, 3, 5] {
            let imgs = images(2 * 5 * 5, batch, 7);
            let mut ws = Workspace::new();
            let mut fused = vec![0i8; layer.out_len() * batch];
            layer.run_batch_into(&interleave(&imgs), batch, &mut ws, &mut fused).unwrap();
            let per: Vec<Vec<i8>> = imgs.iter().map(|img| layer.run(img).unwrap()).collect();
            assert_eq!(deinterleave(&fused, batch), per, "batch={batch}");
        }
    }

    #[test]
    fn batched_grouped_conv_matches_per_image_runs() {
        let geom = ConvGeometry::new(4, 4, 4, 4, 3, 1, 1).unwrap().with_groups(2).unwrap();
        let layer = ShiftConv {
            geom,
            weights: pack(4, 18, &(0..72).map(|i| [1.0, -0.5, 0.25][i % 3]).collect::<Vec<_>>()),
            bias: vec![0; 4].into(),
            in_frac: 5,
            out_frac: 4,
        };
        let batch = 3;
        let imgs = images(4 * 4 * 4, batch, 13);
        let mut ws = Workspace::new();
        let mut fused = vec![0i8; layer.out_len() * batch];
        layer.run_batch_into(&interleave(&imgs), batch, &mut ws, &mut fused).unwrap();
        let per: Vec<Vec<i8>> = imgs.iter().map(|img| layer.run(img).unwrap()).collect();
        assert_eq!(deinterleave(&fused, batch), per);
    }

    #[test]
    fn batched_linear_matches_per_image_runs() {
        let lin = dummy_linear(6, 3);
        for batch in [1usize, 2, 4, 7] {
            let imgs = images(6, batch, 3);
            let mut fused_out = vec![0i8; 3 * batch];
            lin.run_batch_into(&interleave(&imgs), batch, &mut fused_out).unwrap();
            let per: Vec<Vec<i8>> = imgs.iter().map(|img| lin.run(img).unwrap()).collect();
            assert_eq!(deinterleave(&fused_out, batch), per, "batch={batch}");
        }
    }

    #[test]
    fn batched_pools_match_per_image_pools() {
        for batch in [1usize, 2, 3] {
            let imgs = images(2 * 5 * 5, batch, 29);
            let fused = interleave(&imgs);
            for (window, stride) in [(2usize, 2usize), (3, 2)] {
                let (oh, ow) = pool_out_dims(5, 5, window, stride).unwrap();
                let mut out = vec![0i8; 2 * oh * ow * batch];
                max_pool_codes_batch_into(&fused, 2, 5, 5, window, stride, batch, &mut out)
                    .unwrap();
                let per: Vec<Vec<i8>> = imgs
                    .iter()
                    .map(|img| max_pool_codes(img, 2, 5, 5, window, stride).unwrap())
                    .collect();
                assert_eq!(deinterleave(&out, batch), per, "max {window}/{stride} B={batch}");
                avg_pool_codes_batch_into(&fused, 2, 5, 5, window, stride, batch, &mut out)
                    .unwrap();
                let per: Vec<Vec<i8>> = imgs
                    .iter()
                    .map(|img| avg_pool_codes(img, 2, 5, 5, window, stride).unwrap())
                    .collect();
                assert_eq!(deinterleave(&out, batch), per, "avg {window}/{stride} B={batch}");
            }
        }
    }

    #[test]
    fn batched_entries_validate_batch_and_lengths() {
        let geom = ConvGeometry::new(1, 3, 3, 1, 2, 1, 0).unwrap();
        let layer = ShiftConv {
            geom,
            weights: pack(1, 4, &[0.5; 4]),
            bias: vec![0].into(),
            in_frac: 6,
            out_frac: 5,
        };
        let mut ws = Workspace::new();
        let mut out = vec![0i8; layer.out_len() * 2];
        assert!(layer.run_batch_into(&[0; 18], 0, &mut ws, &mut out).is_err());
        assert!(layer.run_batch_into(&[0; 17], 2, &mut ws, &mut out).is_err());
        assert!(layer.run_batch_into(&[0; 18], 2, &mut ws, &mut out[..7]).is_err());
        assert!(layer.run_batch_into(&[0; 18], 2, &mut ws, &mut out).is_ok());

        let lin = dummy_linear(4, 2);
        let mut lout = vec![0i8; 4];
        assert!(lin.run_batch_into(&[0; 8], 0, &mut lout).is_err());
        assert!(lin.run_batch_into(&[0; 7], 2, &mut lout).is_err());
        assert!(lin.run_batch_into(&[0; 8], 2, &mut lout[..3]).is_err());
        assert!(lin.run_batch_into(&[0; 8], 2, &mut lout).is_ok());

        let mut pout = vec![0i8; 8];
        assert!(max_pool_codes_batch_into(&[0; 18], 1, 3, 3, 2, 2, 0, &mut pout).is_err());
        assert!(max_pool_codes_batch_into(&[0; 17], 1, 3, 3, 2, 2, 2, &mut pout).is_err());
        assert!(max_pool_codes_batch_into(&[0; 18], 1, 3, 3, 2, 2, 2, &mut pout).is_ok());
    }

    #[test]
    fn pool_into_matches_allocating_pools() {
        let input: Vec<i8> = (0..2 * 5 * 5).map(|i| (i * 7 % 120) as i8 - 60).collect();
        for (window, stride) in [(2usize, 2usize), (3, 2), (3, 3)] {
            let (oh, ow) = pool_out_dims(5, 5, window, stride).unwrap();
            let mut out = vec![0i8; 2 * oh * ow];
            max_pool_codes_into(&input, 2, 5, 5, window, stride, &mut out).unwrap();
            assert_eq!(out, max_pool_codes(&input, 2, 5, 5, window, stride).unwrap());
            avg_pool_codes_into(&input, 2, 5, 5, window, stride, &mut out).unwrap();
            assert_eq!(out, avg_pool_codes(&input, 2, 5, 5, window, stride).unwrap());
            // Wrong output size is rejected, not silently truncated.
            let mut bad = vec![0i8; 2 * oh * ow + 1];
            assert!(max_pool_codes_into(&input, 2, 5, 5, window, stride, &mut bad).is_err());
        }
    }

    #[test]
    fn relu_codes_clamps() {
        let mut codes = [-5i8, 0, 7, -128, 127];
        relu_codes(&mut codes);
        assert_eq!(codes, [0, 0, 7, 0, 127]);
    }

    #[test]
    fn max_pool_codes_matches_scalar_max() {
        let input = [1i8, 9, 2, 3, 4, 5, 8, 6, 7];
        let out = max_pool_codes(&input, 1, 3, 3, 3, 3).unwrap();
        assert_eq!(out, vec![9]);
    }

    #[test]
    fn avg_pool_codes_rounds_half_away() {
        // Window {1,2,3,4} sums to 10, /4 = 2.5 → 3.
        let out = avg_pool_codes(&[1, 2, 3, 4], 1, 2, 2, 2, 2).unwrap();
        assert_eq!(out, vec![3]);
        // Negative: {-1,-2,-3,-4} → -2.5 → -3.
        let out = avg_pool_codes(&[-1, -2, -3, -4], 1, 2, 2, 2, 2).unwrap();
        assert_eq!(out, vec![-3]);
    }

    #[test]
    fn pool_validates_input_length() {
        assert!(max_pool_codes(&[0; 5], 1, 3, 3, 2, 2).is_err());
    }

    #[test]
    fn pool_out_dims_rejects_zero_window_or_stride() {
        assert!(pool_out_dims(3, 3, 0, 1).is_err());
        assert!(pool_out_dims(3, 3, 2, 0).is_err());
        assert!(max_pool_codes(&[0; 9], 1, 3, 3, 2, 0).is_err());
        assert_eq!(pool_out_dims(3, 3, 2, 2).unwrap(), (2, 2));
    }
}
