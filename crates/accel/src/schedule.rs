//! Cycle-level tile scheduler: maps a network onto the accelerator and
//! counts cycles per layer.
//!
//! The model follows the paper's evaluation methodology: computation is
//! tiled over physical neurons (16) and synapses (16 per neuron); DMA
//! transfers through the three dedicated buffers are double-buffered and
//! assumed fully overlapped with compute (the paper explicitly excludes
//! the main-memory subsystem from its numbers), so per-layer cycles are
//! dominated by `⌈neurons/16⌉ × ⌈synapses/16⌉`. Each layer additionally
//! pays a pipeline fill/drain whose depth differs between the FP32
//! datapath (pipelined FP multiplier) and the shift datapath — which is
//! why Table 2's times differ by a fraction of a microsecond while the
//! MACs are identical.
//!
//! An optional bandwidth-limited DMA model ([`DmaModel::Limited`]) exists
//! for the ablation bench quantifying what the paper's exclusion hides.

use serde::{Deserialize, Serialize};

use mfdfp_nn::{Layer, Network};
use mfdfp_tensor::PoolKind;

use crate::design::{AcceleratorConfig, Precision};
use crate::error::{AccelError, Result};

/// Pipeline fill/drain depth per layer, FP32 datapath (3-stage FP multiply
/// + 4 tree levels + accumulate + route).
pub const PIPELINE_DEPTH_FP32: u64 = 10;
/// Pipeline fill/drain depth per layer, shift datapath (1-stage shift +
/// 4 tree levels + accumulate).
pub const PIPELINE_DEPTH_MFDFP: u64 = 6;

/// Main-memory DMA model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum DmaModel {
    /// Transfers fully overlap with compute (the paper's methodology).
    #[default]
    Overlapped,
    /// Transfers limited to `bytes_per_cycle`; per-layer cycles become
    /// `max(compute, dma)`. Used by the ablation bench only.
    Limited {
        /// Sustained DMA bandwidth in bytes per cycle.
        bytes_per_cycle: f64,
    },
}

/// Cycle accounting for one layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerCycles {
    /// Layer description (from the network).
    pub layer: String,
    /// Compute cycles (tiled MAC or pooling cycles).
    pub compute: u64,
    /// DMA cycles (informational; folded into `total` only for
    /// [`DmaModel::Limited`]).
    pub dma: u64,
    /// Pipeline fill/drain cycles.
    pub overhead: u64,
    /// Cycles charged to this layer.
    pub total: u64,
}

/// Cycle schedule of one network on one accelerator configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkSchedule {
    /// Per-layer accounting.
    pub layers: Vec<LayerCycles>,
    /// Total cycles for one input.
    pub total_cycles: u64,
    /// Inference latency for one input, in microseconds.
    pub time_us: f64,
}

/// Schedules `net` on the accelerator described by `cfg`.
///
/// The network's *topology* is what matters; weights are not consulted.
/// For the ensemble configuration each member network runs on its own PU
/// in parallel, so a single member's schedule is also the ensemble's
/// latency (the paper's Table 2 shows identical times for MF-DFP and the
/// ensemble).
///
/// # Errors
///
/// Returns [`AccelError::UnsupportedLayer`] for LRN layers (the paper
/// removes them because they are not multiplier-free) and
/// [`AccelError::BadConfig`] for invalid configurations.
pub fn schedule_network(
    net: &Network,
    cfg: &AcceleratorConfig,
    dma: DmaModel,
) -> Result<NetworkSchedule> {
    cfg.validate()?;
    let (act_bits, w_bits) = cfg.bits();
    let depth = match cfg.precision {
        Precision::Fp32 => PIPELINE_DEPTH_FP32,
        Precision::MfDfp => PIPELINE_DEPTH_MFDFP,
    };
    let mut layers = Vec::new();
    for layer in net.layers() {
        let (compute, dma_bytes) = match layer {
            Layer::Conv(c) => {
                let g = c.geometry();
                let out_neurons = g.out_c * g.out_h() * g.out_w();
                let groups = div_ceil(out_neurons, cfg.neurons);
                let chunks = div_ceil(g.col_height(), cfg.synapses);
                let weight_bytes = g.weight_count() as f64 * w_bits as f64 / 8.0;
                let io_bytes =
                    (g.in_c * g.in_h * g.in_w + out_neurons) as f64 * act_bits as f64 / 8.0;
                ((groups * chunks) as u64, weight_bytes + io_bytes)
            }
            Layer::Linear(l) => {
                let groups = div_ceil(l.out_features(), cfg.neurons);
                let chunks = div_ceil(l.in_features(), cfg.synapses);
                let weight_bytes =
                    (l.in_features() * l.out_features()) as f64 * w_bits as f64 / 8.0;
                let io_bytes = (l.in_features() + l.out_features()) as f64 * act_bits as f64 / 8.0;
                ((groups * chunks) as u64, weight_bytes + io_bytes)
            }
            Layer::Pool(p) => {
                let g = p.geometry();
                // Dedicated pooling comparators/adders in the NL stage
                // process one window element per lane per cycle.
                let ops = match p.kind() {
                    PoolKind::Max | PoolKind::Avg => g.ops(),
                };
                let io_bytes = (g.channels * g.in_h * g.in_w) as f64 * act_bits as f64 / 8.0;
                (div_ceil(ops, cfg.neurons) as u64, io_bytes)
            }
            // Fused into the NL write-back stage (ReLU), pure bookkeeping
            // (flatten), inference no-ops (dropout), or already realised by
            // the routing stage (fake-quant): no standalone cycles.
            Layer::Relu(_)
            | Layer::Tanh(_)
            | Layer::Sigmoid(_)
            | Layer::Flatten(_)
            | Layer::Dropout(_)
            | Layer::FakeQuant(_) => (0, 0.0),
            Layer::Lrn(_) => {
                return Err(AccelError::UnsupportedLayer(
                    "LRN is not multiplier-free; the paper removes it from the benchmarks".into(),
                ))
            }
        };
        if compute == 0 {
            continue;
        }
        let dma_cycles = match dma {
            DmaModel::Overlapped => {
                // Informational estimate at one buffer word per cycle.
                (dma_bytes / (cfg.synapses as f64 * act_bits as f64 / 8.0)).ceil() as u64
            }
            DmaModel::Limited { bytes_per_cycle } => (dma_bytes / bytes_per_cycle).ceil() as u64,
        };
        let busy = match dma {
            DmaModel::Overlapped => compute,
            DmaModel::Limited { .. } => compute.max(dma_cycles),
        };
        let total = busy + depth;
        layers.push(LayerCycles {
            layer: layer.describe(),
            compute,
            dma: dma_cycles,
            overhead: depth,
            total,
        });
    }
    let total_cycles: u64 = layers.iter().map(|l| l.total).sum();
    let time_us = total_cycles as f64 / cfg.clock_mhz;
    Ok(NetworkSchedule { layers, total_cycles, time_us })
}

fn div_ceil(a: usize, b: usize) -> usize {
    a.div_ceil(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfdfp_nn::zoo;
    use mfdfp_tensor::TensorRng;

    fn cifar_net() -> Network {
        let mut rng = TensorRng::seed_from(0);
        zoo::cifar10_quick(10, &mut rng).unwrap()
    }

    #[test]
    fn cifar_cycle_count_is_in_paper_ballpark() {
        // Paper: 246.52 µs at 250 MHz ⇒ ~61.6K cycles. The pure-compute
        // model lands in the tens of thousands — same order, same story.
        let s = schedule_network(
            &cifar_net(),
            &AcceleratorConfig::paper_mf_dfp(),
            DmaModel::Overlapped,
        )
        .unwrap();
        assert!((30_000..150_000).contains(&s.total_cycles), "cycles {}", s.total_cycles);
        let time = s.time_us;
        assert!((100.0..400.0).contains(&time), "time {time} µs");
    }

    #[test]
    fn fp32_and_mfdfp_times_nearly_equal() {
        // Table 2: 246.52 vs 246.27 µs — the same schedule, differing only
        // in pipeline depth.
        let net = cifar_net();
        let fp =
            schedule_network(&net, &AcceleratorConfig::paper_fp32(), DmaModel::Overlapped).unwrap();
        let mf = schedule_network(&net, &AcceleratorConfig::paper_mf_dfp(), DmaModel::Overlapped)
            .unwrap();
        assert!(fp.total_cycles > mf.total_cycles, "FP pipeline is deeper");
        let rel = (fp.time_us - mf.time_us) / fp.time_us;
        assert!(rel < 0.01, "relative time gap {rel} should be well under 1%");
    }

    #[test]
    fn conv_tiling_matches_hand_count() {
        // conv1 of cifar10-quick: 32×32×32 = 32768 neurons → 2048 groups;
        // 75 synapses → 5 chunks ⇒ 10240 cycles.
        let s = schedule_network(
            &cifar_net(),
            &AcceleratorConfig::paper_mf_dfp(),
            DmaModel::Overlapped,
        )
        .unwrap();
        let conv1 = &s.layers[0];
        assert!(conv1.layer.contains("conv1"));
        assert_eq!(conv1.compute, 2048 * 5);
    }

    #[test]
    fn limited_dma_slows_fp32_more_than_mfdfp() {
        // The ablation: with a 32 B/cycle memory system, 32-bit weights
        // hurt much more than 4-bit weights.
        let net = cifar_net();
        let dma = DmaModel::Limited { bytes_per_cycle: 32.0 };
        let fp = schedule_network(&net, &AcceleratorConfig::paper_fp32(), dma).unwrap();
        let mf = schedule_network(&net, &AcceleratorConfig::paper_mf_dfp(), dma).unwrap();
        let fp_free =
            schedule_network(&net, &AcceleratorConfig::paper_fp32(), DmaModel::Overlapped).unwrap();
        let slowdown_fp = fp.total_cycles as f64 / fp_free.total_cycles as f64;
        assert!(fp.total_cycles > mf.total_cycles);
        assert!(slowdown_fp > 1.0);
    }

    #[test]
    fn lrn_is_rejected() {
        let mut rng = TensorRng::seed_from(0);
        let net = zoo::alexnet(10, true, &mut rng).unwrap();
        let err = schedule_network(&net, &AcceleratorConfig::paper_mf_dfp(), DmaModel::Overlapped)
            .unwrap_err();
        assert!(matches!(err, AccelError::UnsupportedLayer(_)));
    }

    #[test]
    fn alexnet_time_is_in_paper_ballpark() {
        // Paper: 15,666 µs. Ungrouped AlexNet compute-only lands within 2×.
        let mut rng = TensorRng::seed_from(0);
        let net = zoo::alexnet(1000, false, &mut rng).unwrap();
        let s = schedule_network(&net, &AcceleratorConfig::paper_mf_dfp(), DmaModel::Overlapped)
            .unwrap();
        assert!((8_000.0..32_000.0).contains(&s.time_us), "AlexNet time {} µs", s.time_us);
    }

    #[test]
    fn schedule_totals_are_consistent() {
        let s = schedule_network(
            &cifar_net(),
            &AcceleratorConfig::paper_mf_dfp(),
            DmaModel::Overlapped,
        )
        .unwrap();
        let sum: u64 = s.layers.iter().map(|l| l.total).sum();
        assert_eq!(sum, s.total_cycles);
        for l in &s.layers {
            assert_eq!(l.total, l.compute + l.overhead);
        }
    }
}
