//! # mfdfp-accel — the multiplier-free accelerator model
//!
//! A faithful model of the hardware half of *"Hardware-Software Codesign
//! of Accurate, Multiplier-free Deep Neural Networks"* (Tann et al.,
//! DAC 2017), in three independent layers:
//!
//! 1. **Functional** ([`qlayers`]) — bit-accurate execution of quantized
//!    layers through the Figure 2(a) datapath: shift products, widening
//!    adder tree (overflow-audited), 32-bit accumulator, radix-realigning
//!    router, NL unit. `mfdfp-core` builds its integer inference engine on
//!    these primitives.
//! 2. **Timing** ([`schedule_network`]) — a cycle-level tile scheduler for
//!    the DianNao-style organisation (16 neurons × 16 synapses per
//!    processing unit, double-buffered DMA), reproducing Table 2's
//!    near-identical FP32/MF-DFP latencies.
//! 3. **Area/power** ([`design_metrics`] over [`ComponentLibrary`]) — a
//!    65 nm component model calibrated on the FP32 baseline of Table 1 and
//!    used to *predict* the MF-DFP and ensemble designs; energy is
//!    `power × time` ([`RunReport`]).
//!
//! # Examples
//!
//! ```
//! use mfdfp_accel::{design_metrics, schedule_network, AcceleratorConfig,
//!                   ComponentLibrary, DmaModel, RunReport};
//! use mfdfp_nn::zoo;
//! use mfdfp_tensor::TensorRng;
//!
//! let mut rng = TensorRng::seed_from(0);
//! let net = zoo::cifar10_quick(10, &mut rng)?;
//! let lib = ComponentLibrary::calibrated_65nm();
//! let cfg = AcceleratorConfig::paper_mf_dfp();
//! let design = design_metrics(&cfg, &lib)?;
//! let schedule = schedule_network(&net, &cfg, DmaModel::Overlapped)?;
//! let run = RunReport::from_schedule(&schedule, &design);
//! assert!(run.energy_uj < 100.0); // tens of µJ, like the paper's 34.22
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![deny(missing_docs)]

mod components;
mod design;
mod energy;
mod error;
pub mod qlayers;
mod schedule;

pub use components::{AreaPower, ComponentLibrary};
pub use design::{design_metrics, AcceleratorConfig, BreakdownLine, DesignMetrics, Precision};
pub use energy::{OpCostModel, OpEnergyEstimate, RunReport};
pub use error::{AccelError, Result};
pub use qlayers::{
    avg_pool_codes, avg_pool_codes_batch_into, avg_pool_codes_into, max_pool_codes,
    max_pool_codes_batch_into, max_pool_codes_into, pool_out_dims, relu_codes, ShiftConv,
    ShiftLinear, PRODUCT_FRAC_SHIFT,
};
pub use schedule::{
    schedule_network, DmaModel, LayerCycles, NetworkSchedule, PIPELINE_DEPTH_FP32,
    PIPELINE_DEPTH_MFDFP,
};
