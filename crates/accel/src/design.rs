//! Accelerator design composition: datapath precision, processing-unit
//! organisation, memory subsystem — and the resulting area/power.

use serde::{Deserialize, Serialize};

use mfdfp_dfp::AdderTree;

use crate::components::{AreaPower, ComponentLibrary};
use crate::error::{AccelError, Result};

/// Datapath precision of an accelerator design.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Precision {
    /// 32-bit floating point throughout (the paper's baseline): real
    /// multipliers, constant 32-bit datapath.
    Fp32,
    /// The paper's multiplier-free dynamic fixed point: 8-bit activations,
    /// 4-bit power-of-two weights, shift-based products, widening integer
    /// adder tree.
    MfDfp,
}

impl Precision {
    /// The `(input bits, weight bits)` the paper prints next to each
    /// design, e.g. "MF-DFP(8,4)".
    pub fn bits(self) -> (u8, u8) {
        match self {
            Precision::Fp32 => (32, 32),
            Precision::MfDfp => (8, 4),
        }
    }
}

/// Configuration of one accelerator instance.
///
/// The paper's organisation (Section 5): processing units of 16 physical
/// neurons × 16 synapses each (DianNao-style), three dedicated buffers
/// (input / weights / output) with DMA, shared control. The ensemble
/// design instantiates `num_pus = 2` with duplicated datapaths and buffers
/// but shared control.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AcceleratorConfig {
    /// Datapath precision.
    pub precision: Precision,
    /// Number of processing units (1 = single network, 2 = paper ensemble).
    pub num_pus: usize,
    /// Physical neurons per processing unit.
    pub neurons: usize,
    /// Synapses (MAC lanes) per neuron.
    pub synapses: usize,
    /// Entries in the input buffer (each entry feeds all synapse lanes).
    pub nbin_entries: usize,
    /// Entries in the weight buffer.
    pub sb_entries: usize,
    /// Entries in the output buffer.
    pub nbout_entries: usize,
    /// Clock frequency in MHz (paper: constant 250 MHz for all designs).
    pub clock_mhz: f64,
}

impl AcceleratorConfig {
    /// The paper's FP32 baseline: one PU, 32-bit everywhere.
    pub fn paper_fp32() -> Self {
        AcceleratorConfig { precision: Precision::Fp32, num_pus: 1, ..Self::base() }
    }

    /// The paper's proposed MF-DFP(8,4) design: one PU.
    pub fn paper_mf_dfp() -> Self {
        AcceleratorConfig { precision: Precision::MfDfp, num_pus: 1, ..Self::base() }
    }

    /// The paper's ensemble design: two MF-DFP PUs, shared control.
    pub fn paper_ensemble() -> Self {
        AcceleratorConfig { precision: Precision::MfDfp, num_pus: 2, ..Self::base() }
    }

    fn base() -> Self {
        AcceleratorConfig {
            precision: Precision::MfDfp,
            num_pus: 1,
            neurons: 16,
            synapses: 16,
            nbin_entries: 64,
            sb_entries: 64,
            nbout_entries: 64,
            clock_mhz: 250.0,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::BadConfig`] for zero-sized structures or a
    /// synapse count that is not a power of two (the adder tree requires
    /// one).
    pub fn validate(&self) -> Result<()> {
        if self.num_pus == 0 || self.neurons == 0 || self.synapses == 0 {
            return Err(AccelError::BadConfig("PU/neuron/synapse counts must be positive".into()));
        }
        if !self.synapses.is_power_of_two() || self.synapses < 2 {
            return Err(AccelError::BadConfig(format!(
                "synapses per neuron must be a power of two ≥ 2 for the adder tree, got {}",
                self.synapses
            )));
        }
        if self.nbin_entries == 0 || self.sb_entries == 0 || self.nbout_entries == 0 {
            return Err(AccelError::BadConfig("buffer entry counts must be positive".into()));
        }
        if self.clock_mhz <= 0.0 || self.clock_mhz.is_nan() {
            return Err(AccelError::BadConfig(format!(
                "clock must be positive, got {} MHz",
                self.clock_mhz
            )));
        }
        Ok(())
    }

    /// MAC lanes per PU (`neurons × synapses`).
    pub fn lanes_per_pu(&self) -> usize {
        self.neurons * self.synapses
    }

    /// `(activation bits, weight bits)` of the datapath.
    pub fn bits(&self) -> (u8, u8) {
        self.precision.bits()
    }

    /// Total on-chip buffer capacity in bits, per PU.
    pub fn buffer_bits_per_pu(&self) -> usize {
        let (act_bits, w_bits) = self.bits();
        let nbin = self.nbin_entries * self.synapses * act_bits as usize;
        let sb = self.sb_entries * self.lanes_per_pu() * w_bits as usize;
        let nbout = self.nbout_entries * self.neurons * act_bits as usize;
        nbin + sb + nbout
    }

    /// Clock period in nanoseconds.
    pub fn clock_period_ns(&self) -> f64 {
        1e3 / self.clock_mhz
    }
}

impl Default for AcceleratorConfig {
    fn default() -> Self {
        AcceleratorConfig::paper_mf_dfp()
    }
}

/// One line of an area/power breakdown.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BreakdownLine {
    /// Component group name.
    pub component: String,
    /// Instance count.
    pub count: usize,
    /// Aggregate cost of the group.
    pub cost: AreaPower,
}

/// Area/power of a composed accelerator design.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DesignMetrics {
    /// Total silicon area (mm²).
    pub area_mm2: f64,
    /// Total power (mW) at the design clock.
    pub power_mw: f64,
    /// Per-component-group breakdown.
    pub breakdown: Vec<BreakdownLine>,
}

impl DesignMetrics {
    /// Percentage saving of `self` relative to `baseline` in area.
    pub fn area_saving_vs(&self, baseline: &DesignMetrics) -> f64 {
        100.0 * (1.0 - self.area_mm2 / baseline.area_mm2)
    }

    /// Percentage saving of `self` relative to `baseline` in power.
    pub fn power_saving_vs(&self, baseline: &DesignMetrics) -> f64 {
        100.0 * (1.0 - self.power_mw / baseline.power_mw)
    }
}

/// Composes the area/power of a design from the component library.
///
/// # Errors
///
/// Returns [`AccelError::BadConfig`] if the configuration is invalid.
pub fn design_metrics(cfg: &AcceleratorConfig, lib: &ComponentLibrary) -> Result<DesignMetrics> {
    cfg.validate()?;
    let mut breakdown = Vec::new();
    let lanes = cfg.lanes_per_pu() * cfg.num_pus;
    let neurons = cfg.neurons * cfg.num_pus;

    match cfg.precision {
        Precision::Fp32 => {
            // 256 multiplier lanes + a full FP32 adder per tree node and
            // accumulator ("keeps the bitwidth constant at 32-bits").
            breakdown.push(BreakdownLine {
                component: "fp32 multipliers".into(),
                count: lanes,
                cost: lib.fp32_multiplier.times(lanes),
            });
            let tree_adders = (cfg.synapses - 1) * neurons;
            let acc_adders = neurons;
            breakdown.push(BreakdownLine {
                component: "fp32 adders (tree + accumulate)".into(),
                count: tree_adders + acc_adders,
                cost: lib.fp32_adder.times(tree_adders + acc_adders),
            });
        }
        Precision::MfDfp => {
            breakdown.push(BreakdownLine {
                component: "barrel shifters".into(),
                count: lanes,
                cost: lib.barrel_shifter.times(lanes),
            });
            // Widening tree adders priced by exact output widths
            // (17, 18, 19, 20 bits for a 16-input tree).
            let tree = AdderTree::new(cfg.synapses).map_err(AccelError::Dfp)?;
            let mut tree_cost = AreaPower::default();
            let mut tree_count = 0usize;
            for level in 0..tree.levels() {
                let adders = tree.adders_at_level(level) * neurons;
                tree_cost = tree_cost.plus(lib.int_adder(tree.width_at_level(level)).times(adders));
                tree_count += adders;
            }
            breakdown.push(BreakdownLine {
                component: "widening integer adder tree".into(),
                count: tree_count,
                cost: tree_cost,
            });
            breakdown.push(BreakdownLine {
                component: "accumulator & routing".into(),
                count: neurons,
                cost: lib.accumulator_unit.times(neurons),
            });
        }
    }

    breakdown.push(BreakdownLine {
        component: "non-linearity units".into(),
        count: neurons,
        cost: lib.nl_unit.times(neurons),
    });

    let buffer_bits = cfg.buffer_bits_per_pu() * cfg.num_pus;
    breakdown.push(BreakdownLine {
        component: "SRAM buffers (NBin/SB/NBout)".into(),
        count: buffer_bits,
        cost: lib.sram(buffer_bits),
    });

    // Control + DMA + memory interface is shared across PUs.
    breakdown.push(BreakdownLine {
        component: "control & DMA".into(),
        count: 1,
        cost: lib.control,
    });

    let total = breakdown.iter().fold(AreaPower::default(), |acc, line| acc.plus(line.cost));
    Ok(DesignMetrics { area_mm2: total.area_mm2(), power_mw: total.power_mw, breakdown })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib() -> ComponentLibrary {
        ComponentLibrary::calibrated_65nm()
    }

    #[test]
    fn fp32_baseline_matches_paper_table1() {
        let m = design_metrics(&AcceleratorConfig::paper_fp32(), &lib()).unwrap();
        assert!((m.area_mm2 - 16.52).abs() / 16.52 < 0.01, "area {}", m.area_mm2);
        assert!((m.power_mw - 1361.61).abs() / 1361.61 < 0.01, "power {}", m.power_mw);
    }

    #[test]
    fn mf_dfp_matches_paper_table1() {
        let m = design_metrics(&AcceleratorConfig::paper_mf_dfp(), &lib()).unwrap();
        assert!((m.area_mm2 - 1.99).abs() / 1.99 < 0.01, "area {}", m.area_mm2);
        assert!((m.power_mw - 138.96).abs() / 138.96 < 0.01, "power {}", m.power_mw);
    }

    #[test]
    fn ensemble_matches_paper_table1() {
        let m = design_metrics(&AcceleratorConfig::paper_ensemble(), &lib()).unwrap();
        assert!((m.area_mm2 - 3.96).abs() / 3.96 < 0.01, "area {}", m.area_mm2);
        assert!((m.power_mw - 270.27).abs() / 270.27 < 0.01, "power {}", m.power_mw);
    }

    #[test]
    fn savings_match_paper_percentages() {
        let fp = design_metrics(&AcceleratorConfig::paper_fp32(), &lib()).unwrap();
        let mf = design_metrics(&AcceleratorConfig::paper_mf_dfp(), &lib()).unwrap();
        let ens = design_metrics(&AcceleratorConfig::paper_ensemble(), &lib()).unwrap();
        assert!((mf.area_saving_vs(&fp) - 87.97).abs() < 1.0);
        assert!((mf.power_saving_vs(&fp) - 89.79).abs() < 1.0);
        assert!((ens.area_saving_vs(&fp) - 76.00).abs() < 1.0);
        assert!((ens.power_saving_vs(&fp) - 80.15).abs() < 1.0);
    }

    #[test]
    fn ensemble_control_is_shared() {
        // Ensemble < 2 × single because control is not duplicated.
        let mf = design_metrics(&AcceleratorConfig::paper_mf_dfp(), &lib()).unwrap();
        let ens = design_metrics(&AcceleratorConfig::paper_ensemble(), &lib()).unwrap();
        assert!(ens.area_mm2 < 2.0 * mf.area_mm2);
        assert!(ens.power_mw < 2.0 * mf.power_mw);
    }

    #[test]
    fn buffer_bits_shrink_with_precision() {
        let fp = AcceleratorConfig::paper_fp32();
        let mf = AcceleratorConfig::paper_mf_dfp();
        // 32-bit everything vs 8-bit activations + 4-bit weights.
        assert!(fp.buffer_bits_per_pu() > 5 * mf.buffer_bits_per_pu());
    }

    #[test]
    fn config_validation() {
        let mut c = AcceleratorConfig::paper_mf_dfp();
        c.synapses = 12;
        assert!(c.validate().is_err());
        c.synapses = 16;
        c.num_pus = 0;
        assert!(c.validate().is_err());
        c.num_pus = 1;
        c.clock_mhz = 0.0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn breakdown_sums_to_total() {
        let m = design_metrics(&AcceleratorConfig::paper_fp32(), &lib()).unwrap();
        let area: f64 = m.breakdown.iter().map(|l| l.cost.area_mm2()).sum();
        let power: f64 = m.breakdown.iter().map(|l| l.cost.power_mw).sum();
        assert!((area - m.area_mm2).abs() < 1e-9);
        assert!((power - m.power_mw).abs() < 1e-9);
    }

    #[test]
    fn paper_bits_labels() {
        assert_eq!(Precision::Fp32.bits(), (32, 32));
        assert_eq!(Precision::MfDfp.bits(), (8, 4));
    }
}
