//! Energy rollup: design power × scheduled time, and the savings
//! calculators behind Table 2.

use serde::{Deserialize, Serialize};

use crate::design::DesignMetrics;
use crate::schedule::NetworkSchedule;

/// Time/energy of running one inference on one design.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Total cycles for one input.
    pub cycles: u64,
    /// Latency in microseconds.
    pub time_us: f64,
    /// Energy in microjoules (`power · time`).
    pub energy_uj: f64,
}

impl RunReport {
    /// Combines a schedule with a design's power draw.
    ///
    /// Energy is literally `power × time`, which is how the paper's
    /// Table 2 numbers relate to its Table 1 numbers (e.g.
    /// 1361.61 mW × 246.52 µs ≈ 335.68 µJ).
    pub fn from_schedule(schedule: &NetworkSchedule, design: &DesignMetrics) -> Self {
        RunReport {
            cycles: schedule.total_cycles,
            time_us: schedule.time_us,
            energy_uj: design.power_mw * schedule.time_us / 1000.0,
        }
    }

    /// Percentage energy saving relative to a baseline run.
    pub fn energy_saving_vs(&self, baseline: &RunReport) -> f64 {
        100.0 * (1.0 - self.energy_uj / baseline.energy_uj)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::ComponentLibrary;
    use crate::design::{design_metrics, AcceleratorConfig};
    use crate::schedule::{schedule_network, DmaModel};
    use mfdfp_nn::zoo;
    use mfdfp_tensor::TensorRng;

    #[test]
    fn energy_is_power_times_time() {
        let s = NetworkSchedule { layers: vec![], total_cycles: 61_630, time_us: 246.52 };
        let d = DesignMetrics { area_mm2: 16.52, power_mw: 1361.61, breakdown: vec![] };
        let r = RunReport::from_schedule(&s, &d);
        assert!((r.energy_uj - 335.68).abs() < 0.05, "energy {}", r.energy_uj);
    }

    #[test]
    fn savings_reproduce_paper_shape_on_cifar() {
        // End-to-end: schedule cifar10-quick on both designs, combine with
        // composed power, check ~90% energy saving (paper: 89.81%).
        let mut rng = TensorRng::seed_from(0);
        let net = zoo::cifar10_quick(10, &mut rng).unwrap();
        let lib = ComponentLibrary::calibrated_65nm();
        let fp_cfg = AcceleratorConfig::paper_fp32();
        let mf_cfg = AcceleratorConfig::paper_mf_dfp();
        let ens_cfg = AcceleratorConfig::paper_ensemble();
        let fp = RunReport::from_schedule(
            &schedule_network(&net, &fp_cfg, DmaModel::Overlapped).unwrap(),
            &design_metrics(&fp_cfg, &lib).unwrap(),
        );
        let mf = RunReport::from_schedule(
            &schedule_network(&net, &mf_cfg, DmaModel::Overlapped).unwrap(),
            &design_metrics(&mf_cfg, &lib).unwrap(),
        );
        let ens = RunReport::from_schedule(
            &schedule_network(&net, &ens_cfg, DmaModel::Overlapped).unwrap(),
            &design_metrics(&ens_cfg, &lib).unwrap(),
        );
        let saving_mf = mf.energy_saving_vs(&fp);
        let saving_ens = ens.energy_saving_vs(&fp);
        assert!((saving_mf - 89.81).abs() < 1.5, "single saving {saving_mf}%");
        assert!((saving_ens - 80.17).abs() < 1.5, "ensemble saving {saving_ens}%");
        // Times nearly equal, energy wildly different — the paper's story.
        assert!((fp.time_us - mf.time_us).abs() / fp.time_us < 0.01);
        assert!(fp.energy_uj > 8.0 * mf.energy_uj);
    }
}
