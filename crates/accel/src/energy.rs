//! Energy rollup: design power × scheduled time, the savings
//! calculators behind Table 2, and the per-op cost model that turns the
//! runtime's live op counters ([`mfdfp_obs::ops`]) into an energy
//! estimate — the paper's shift-add-vs-multiply argument applied to the
//! operations a deployment *actually executed*.

use mfdfp_obs::OpCounters;
use serde::{Deserialize, Serialize};

use crate::components::{AreaPower, ComponentLibrary};
use crate::design::DesignMetrics;
use crate::schedule::NetworkSchedule;

/// Time/energy of running one inference on one design.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Total cycles for one input.
    pub cycles: u64,
    /// Latency in microseconds.
    pub time_us: f64,
    /// Energy in microjoules (`power · time`).
    pub energy_uj: f64,
}

impl RunReport {
    /// Combines a schedule with a design's power draw.
    ///
    /// Energy is literally `power × time`, which is how the paper's
    /// Table 2 numbers relate to its Table 1 numbers (e.g.
    /// 1361.61 mW × 246.52 µs ≈ 335.68 µJ).
    pub fn from_schedule(schedule: &NetworkSchedule, design: &DesignMetrics) -> Self {
        RunReport {
            cycles: schedule.total_cycles,
            time_us: schedule.time_us,
            energy_uj: design.power_mw * schedule.time_us / 1000.0,
        }
    }

    /// Percentage energy saving relative to a baseline run.
    pub fn energy_saving_vs(&self, baseline: &RunReport) -> f64 {
        100.0 * (1.0 - self.energy_uj / baseline.energy_uj)
    }
}

/// Per-operation energy costs in picojoules, derived from the
/// [`ComponentLibrary`] at a fixed clock: at frequency `f`, a unit that
/// burns `P` while active spends `P / f` per operation (mW / MHz = nJ).
///
/// This is the *op-count* companion to [`RunReport`]'s power×time
/// rollup: instead of scheduling a hypothetical network, it prices the
/// shift-MACs and staging bytes the runtime counted while serving real
/// traffic (`mfdfp_obs::ops::counters()`), which is how the serve
/// metrics' `energy_estimate` sub-object is produced.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OpCostModel {
    /// One multiplier-free MAC: barrel shift + 20-bit integer add (the
    /// widest tree stage — a deliberate upper bound).
    pub shift_mac_pj: f64,
    /// One FP32 MAC on the baseline datapath: fp32 multiply + fp32 add.
    pub fp32_mac_pj: f64,
    /// Moving one staged `i8` im2col byte, priced as 8 bits of SRAM
    /// active for one cycle — a conservative on-chip-movement stand-in
    /// (data movement is deliberately *not* where this model claims its
    /// savings; both datapaths pay it identically).
    pub sram_byte_pj: f64,
}

impl OpCostModel {
    /// Derives per-op costs from a component library at `clock_mhz`.
    pub fn from_library(lib: &ComponentLibrary, clock_mhz: f64) -> Self {
        // mW / MHz = nJ per op; ×1000 → pJ.
        let pj = |c: AreaPower| c.power_mw / clock_mhz * 1000.0;
        OpCostModel {
            shift_mac_pj: pj(lib.barrel_shifter) + pj(lib.int_adder(20)),
            fp32_mac_pj: pj(lib.fp32_multiplier) + pj(lib.fp32_adder),
            sram_byte_pj: pj(lib.sram(8)),
        }
    }

    /// The calibrated 65 nm library at the paper's 250 MHz design clock.
    pub fn calibrated_65nm() -> Self {
        Self::from_library(&ComponentLibrary::calibrated_65nm(), 250.0)
    }

    /// Prices an op-counter snapshot: the multiplier-free energy those
    /// operations cost, and what the same MACs would have cost on the
    /// FP32 baseline datapath (identical data movement).
    pub fn estimate(&self, ops: &OpCounters) -> OpEnergyEstimate {
        let mac_uj = ops.shift_macs as f64 * self.shift_mac_pj * 1e-6;
        let sram_uj = ops.im2col_bytes as f64 * self.sram_byte_pj * 1e-6;
        let total_uj = mac_uj + sram_uj;
        let fp32_baseline_uj = ops.shift_macs as f64 * self.fp32_mac_pj * 1e-6 + sram_uj;
        let saving_pct =
            if fp32_baseline_uj > 0.0 { 100.0 * (1.0 - total_uj / fp32_baseline_uj) } else { 0.0 };
        OpEnergyEstimate { mac_uj, sram_uj, total_uj, fp32_baseline_uj, saving_pct }
    }
}

/// A priced op-counter snapshot (all in microjoules) — see
/// [`OpCostModel::estimate`]. All-zero when nothing was counted (e.g.
/// builds without the `obs` feature), so downstream JSON schemas stay
/// stable across feature sets.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OpEnergyEstimate {
    /// Energy of the counted shift-MACs on the multiplier-free datapath.
    pub mac_uj: f64,
    /// Energy of the counted im2col byte movement.
    pub sram_uj: f64,
    /// `mac_uj + sram_uj`.
    pub total_uj: f64,
    /// The same MACs priced on the FP32 multiply-add datapath (plus the
    /// identical byte movement).
    pub fp32_baseline_uj: f64,
    /// `100 · (1 − total/baseline)`; 0 when nothing was counted.
    pub saving_pct: f64,
}

impl Default for OpEnergyEstimate {
    fn default() -> Self {
        OpCostModel::calibrated_65nm().estimate(&OpCounters::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::ComponentLibrary;
    use crate::design::{design_metrics, AcceleratorConfig};
    use crate::schedule::{schedule_network, DmaModel};
    use mfdfp_nn::zoo;
    use mfdfp_tensor::TensorRng;

    #[test]
    fn energy_is_power_times_time() {
        let s = NetworkSchedule { layers: vec![], total_cycles: 61_630, time_us: 246.52 };
        let d = DesignMetrics { area_mm2: 16.52, power_mw: 1361.61, breakdown: vec![] };
        let r = RunReport::from_schedule(&s, &d);
        assert!((r.energy_uj - 335.68).abs() < 0.05, "energy {}", r.energy_uj);
    }

    #[test]
    fn savings_reproduce_paper_shape_on_cifar() {
        // End-to-end: schedule cifar10-quick on both designs, combine with
        // composed power, check ~90% energy saving (paper: 89.81%).
        let mut rng = TensorRng::seed_from(0);
        let net = zoo::cifar10_quick(10, &mut rng).unwrap();
        let lib = ComponentLibrary::calibrated_65nm();
        let fp_cfg = AcceleratorConfig::paper_fp32();
        let mf_cfg = AcceleratorConfig::paper_mf_dfp();
        let ens_cfg = AcceleratorConfig::paper_ensemble();
        let fp = RunReport::from_schedule(
            &schedule_network(&net, &fp_cfg, DmaModel::Overlapped).unwrap(),
            &design_metrics(&fp_cfg, &lib).unwrap(),
        );
        let mf = RunReport::from_schedule(
            &schedule_network(&net, &mf_cfg, DmaModel::Overlapped).unwrap(),
            &design_metrics(&mf_cfg, &lib).unwrap(),
        );
        let ens = RunReport::from_schedule(
            &schedule_network(&net, &ens_cfg, DmaModel::Overlapped).unwrap(),
            &design_metrics(&ens_cfg, &lib).unwrap(),
        );
        let saving_mf = mf.energy_saving_vs(&fp);
        let saving_ens = ens.energy_saving_vs(&fp);
        assert!((saving_mf - 89.81).abs() < 1.5, "single saving {saving_mf}%");
        assert!((saving_ens - 80.17).abs() < 1.5, "ensemble saving {saving_ens}%");
        // Times nearly equal, energy wildly different — the paper's story.
        assert!((fp.time_us - mf.time_us).abs() / fp.time_us < 0.01);
        assert!(fp.energy_uj > 8.0 * mf.energy_uj);
    }

    #[test]
    fn op_cost_model_prices_shift_macs_far_below_fp32() {
        let m = OpCostModel::calibrated_65nm();
        // Barrel shift + int add vs fp32 mul + add: >5× per-MAC gap is
        // the paper's Table 4 energy argument at op granularity.
        assert!(m.fp32_mac_pj > 5.0 * m.shift_mac_pj, "{m:?}");
        assert!(m.shift_mac_pj > 0.0 && m.sram_byte_pj > 0.0);
        // 250 MHz: barrel 0.29 mW → 1.16 pJ, +20-bit add 0.64 pJ.
        assert!((m.shift_mac_pj - 1.8).abs() < 0.05, "{}", m.shift_mac_pj);
        assert!((m.fp32_mac_pj - 19.8).abs() < 0.2, "{}", m.fp32_mac_pj);
    }

    #[test]
    fn estimate_prices_counters_and_reports_saving() {
        let m = OpCostModel::calibrated_65nm();
        let ops = mfdfp_obs::OpCounters {
            shift_macs: 1_000_000,
            im2col_bytes: 100_000,
            decode_rows: 0,
            overflow_audits: 0,
        };
        let e = m.estimate(&ops);
        assert!((e.mac_uj - 1_000_000.0 * m.shift_mac_pj * 1e-6).abs() < 1e-9);
        assert!((e.total_uj - (e.mac_uj + e.sram_uj)).abs() < 1e-12);
        assert!(e.fp32_baseline_uj > e.total_uj);
        assert!(e.saving_pct > 80.0 && e.saving_pct < 100.0, "{}", e.saving_pct);
    }

    #[test]
    fn empty_counters_estimate_is_all_zero() {
        let e = OpEnergyEstimate::default();
        assert_eq!(
            (e.mac_uj, e.sram_uj, e.total_uj, e.fp32_baseline_uj, e.saving_pct),
            (0.0, 0.0, 0.0, 0.0, 0.0)
        );
    }
}
