//! Stochastic gradient descent with momentum, weight decay and the paper's
//! plateau learning-rate schedule.

use mfdfp_tensor::Tensor;

use crate::error::{NnError, Result};
use crate::net::Network;

/// SGD hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SgdConfig {
    /// Initial learning rate (paper Phase-2 fine-tuning starts at 1e-3).
    pub learning_rate: f32,
    /// Classical momentum coefficient (0 disables).
    pub momentum: f32,
    /// L2 weight decay coefficient (0 disables).
    pub weight_decay: f32,
}

impl SgdConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadConfig`] for non-positive learning rate or
    /// out-of-range momentum.
    pub fn validate(&self) -> Result<()> {
        if self.learning_rate <= 0.0 || self.learning_rate.is_nan() {
            return Err(NnError::BadConfig(format!(
                "learning rate must be positive, got {}",
                self.learning_rate
            )));
        }
        if !(0.0..1.0).contains(&self.momentum) {
            return Err(NnError::BadConfig(format!(
                "momentum must be in [0,1), got {}",
                self.momentum
            )));
        }
        if self.weight_decay < 0.0 {
            return Err(NnError::BadConfig(format!(
                "weight decay must be non-negative, got {}",
                self.weight_decay
            )));
        }
        Ok(())
    }
}

impl Default for SgdConfig {
    /// Caffe cifar10-quick defaults: lr 1e-3, momentum 0.9, decay 4e-3.
    fn default() -> Self {
        SgdConfig { learning_rate: 1e-3, momentum: 0.9, weight_decay: 4e-3 }
    }
}

/// SGD optimizer holding per-parameter velocity buffers.
///
/// Velocities are allocated lazily on the first step and keyed by the
/// network's deterministic parameter visit order; using one optimizer
/// across structurally different networks is a logic error (asserted).
#[derive(Debug)]
pub struct Sgd {
    cfg: SgdConfig,
    lr: f32,
    velocity: Vec<Tensor>,
    steps: u64,
}

impl Sgd {
    /// Creates an optimizer.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadConfig`] if the configuration is invalid.
    pub fn new(cfg: SgdConfig) -> Result<Self> {
        cfg.validate()?;
        Ok(Sgd { lr: cfg.learning_rate, cfg, velocity: Vec::new(), steps: 0 })
    }

    /// Current learning rate.
    pub fn learning_rate(&self) -> f32 {
        self.lr
    }

    /// Overrides the learning rate (used by schedules).
    pub fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }

    /// Number of update steps taken.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Applies one SGD update to every parameter of `net` using the
    /// gradients accumulated since the last [`Network::zero_grads`], then
    /// zeroes them.
    ///
    /// Update rule: `v ← μ·v − lr·(g + wd·w)`, `w ← w + v`.
    pub fn step(&mut self, net: &mut Network) {
        let mut idx = 0usize;
        let velocity = &mut self.velocity;
        let (lr, mu, wd) = (self.lr, self.cfg.momentum, self.cfg.weight_decay);
        net.visit_params(&mut |value, grad| {
            if velocity.len() == idx {
                velocity.push(Tensor::zeros(value.shape().clone()));
            }
            let v = &mut velocity[idx];
            assert_eq!(
                v.shape(),
                value.shape(),
                "optimizer reused across structurally different networks"
            );
            let vd = v.as_mut_slice();
            let wdta = value.as_mut_slice();
            let gd = grad.as_slice();
            for i in 0..vd.len() {
                vd[i] = mu * vd[i] - lr * (gd[i] + wd * wdta[i]);
                wdta[i] += vd[i];
            }
            idx += 1;
        });
        net.zero_grads();
        self.steps += 1;
    }
}

/// Learning-rate schedule used by the paper: start at `initial`, divide by
/// `factor` whenever the monitored loss stops improving for `patience`
/// epochs, stop training when the rate drops below `min_lr`
/// ("we decrease the rate by a factor of 10 when learning levels off and
/// stop the training when the learning rate drops below 1e-07").
#[derive(Debug, Clone)]
pub struct PlateauSchedule {
    factor: f32,
    patience: usize,
    min_lr: f32,
    best: f32,
    since_best: usize,
    lr: f32,
}

impl PlateauSchedule {
    /// Creates the schedule.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadConfig`] for a factor outside (0,1), zero
    /// patience, or a non-positive floor.
    pub fn new(initial: f32, factor: f32, patience: usize, min_lr: f32) -> Result<Self> {
        if initial <= 0.0 || initial.is_nan() || min_lr <= 0.0 || min_lr.is_nan() {
            return Err(NnError::BadConfig("learning rates must be positive".into()));
        }
        if !(0.0..1.0).contains(&factor) || factor == 0.0 {
            return Err(NnError::BadConfig(format!("decay factor must be in (0,1), got {factor}")));
        }
        if patience == 0 {
            return Err(NnError::BadConfig("patience must be at least 1".into()));
        }
        Ok(PlateauSchedule {
            factor,
            patience,
            min_lr,
            best: f32::INFINITY,
            since_best: 0,
            lr: initial,
        })
    }

    /// The paper's protocol: ÷10 on plateau (patience 3), stop below 1e-7.
    pub fn paper(initial: f32) -> Self {
        PlateauSchedule::new(initial, 0.1, 3, 1e-7).expect("constants are valid")
    }

    /// Current learning rate.
    pub fn learning_rate(&self) -> f32 {
        self.lr
    }

    /// Records an end-of-epoch metric (validation loss or error rate —
    /// anything lower-is-better). Returns the possibly-decayed rate.
    pub fn observe(&mut self, metric: f32) -> f32 {
        if metric < self.best - 1e-6 {
            self.best = metric;
            self.since_best = 0;
        } else {
            self.since_best += 1;
            if self.since_best >= self.patience {
                self.lr *= self.factor;
                self.since_best = 0;
            }
        }
        self.lr
    }

    /// Whether training should stop (rate fell through the floor).
    pub fn finished(&self) -> bool {
        self.lr < self.min_lr
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{Layer, Phase};
    use crate::layers::Linear;
    use crate::loss::softmax_cross_entropy;
    use mfdfp_tensor::TensorRng;

    #[test]
    fn config_validation() {
        assert!(SgdConfig::default().validate().is_ok());
        assert!(SgdConfig { learning_rate: 0.0, ..Default::default() }.validate().is_err());
        assert!(SgdConfig { momentum: 1.0, ..Default::default() }.validate().is_err());
        assert!(SgdConfig { weight_decay: -1.0, ..Default::default() }.validate().is_err());
    }

    #[test]
    fn sgd_descends_a_simple_loss() {
        let mut rng = TensorRng::seed_from(11);
        let mut net = Network::new("probe");
        net.push(Layer::Linear(Linear::new("fc", 4, 2, &mut rng)));
        let cfg = SgdConfig { learning_rate: 0.5, momentum: 0.9, weight_decay: 0.0 };
        let mut sgd = Sgd::new(cfg).unwrap();
        let x = rng.gaussian([8, 4], 0.0, 1.0);
        let labels = [0usize, 1, 0, 1, 0, 1, 0, 1];
        let mut losses = Vec::new();
        for _ in 0..30 {
            let logits = net.forward(&x, Phase::Train).unwrap();
            let (loss, grad) = softmax_cross_entropy(&logits, &labels).unwrap();
            losses.push(loss);
            net.backward(&grad).unwrap();
            sgd.step(&mut net);
        }
        assert!(losses[29] < losses[0] * 0.8, "{} vs {}", losses[29], losses[0]);
        assert_eq!(sgd.steps(), 30);
    }

    #[test]
    fn weight_decay_shrinks_weights_without_gradient() {
        let mut rng = TensorRng::seed_from(3);
        let mut net = Network::new("decay");
        net.push(Layer::Linear(Linear::new("fc", 3, 3, &mut rng)));
        let norm_before: f32 = {
            let mut n = 0.0;
            net.visit_params(&mut |v, _| n += v.norm_sq());
            n
        };
        let cfg = SgdConfig { learning_rate: 0.1, momentum: 0.0, weight_decay: 0.5 };
        let mut sgd = Sgd::new(cfg).unwrap();
        // Gradients are zero (no backward) — only decay acts.
        sgd.step(&mut net);
        let mut norm_after = 0.0;
        net.visit_params(&mut |v, _| norm_after += v.norm_sq());
        assert!(norm_after < norm_before);
    }

    #[test]
    fn momentum_accumulates_velocity() {
        let mut rng = TensorRng::seed_from(3);
        let mut net = Network::new("mom");
        net.push(Layer::Linear(Linear::new("fc", 1, 1, &mut rng)));
        // Force deterministic weights/gradients.
        net.visit_params(&mut |v, _| *v = Tensor::zeros(v.shape().clone()));
        let cfg = SgdConfig { learning_rate: 1.0, momentum: 0.5, weight_decay: 0.0 };
        let mut sgd = Sgd::new(cfg).unwrap();
        // Two steps with constant unit gradient: w = -(1) then -(1 + 1.5) = -2.5
        for _ in 0..2 {
            net.visit_params(&mut |_, g| {
                g.map_in_place(|_| 1.0);
            });
            sgd.step(&mut net);
        }
        let mut w = Vec::new();
        net.visit_params(&mut |v, _| w.extend_from_slice(v.as_slice()));
        assert!((w[0] - (-2.5)).abs() < 1e-6, "weight {}", w[0]);
    }

    #[test]
    fn plateau_schedule_decays_and_stops() {
        let mut s = PlateauSchedule::new(1e-3, 0.1, 2, 1e-7).unwrap();
        assert_eq!(s.observe(1.0), 1e-3); // new best
        assert_eq!(s.observe(0.9), 1e-3); // new best
        s.observe(0.95); // stall 1
        let lr = s.observe(0.95); // stall 2 → decay
        assert!((lr - 1e-4).abs() < 1e-10);
        assert!(!s.finished());
        for _ in 0..20 {
            s.observe(1.0);
        }
        assert!(s.finished());
    }

    #[test]
    fn plateau_schedule_validation() {
        assert!(PlateauSchedule::new(0.0, 0.1, 3, 1e-7).is_err());
        assert!(PlateauSchedule::new(1e-3, 1.0, 3, 1e-7).is_err());
        assert!(PlateauSchedule::new(1e-3, 0.1, 0, 1e-7).is_err());
        assert!(PlateauSchedule::paper(1e-3).learning_rate() == 1e-3);
    }
}
