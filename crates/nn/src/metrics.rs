//! Classification metrics: top-1 / top-5 accuracy, error rates.

use mfdfp_tensor::{argmax_rows, topk_rows, Tensor};

use crate::error::{NnError, Result};

/// Accuracy counters accumulated over evaluation batches.
///
/// # Examples
///
/// ```
/// use mfdfp_nn::Accuracy;
/// use mfdfp_tensor::{Shape, Tensor};
///
/// let mut acc = Accuracy::new(5);
/// let logits = Tensor::from_vec(vec![0.1, 0.9, 0.0, 0.0, 0.0], Shape::d2(1, 5))?;
/// acc.update(&logits, &[1])?;
/// assert_eq!(acc.top1(), 1.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct Accuracy {
    k: usize,
    total: usize,
    top1_hits: usize,
    topk_hits: usize,
}

impl Accuracy {
    /// Creates a counter also tracking top-`k` hits (`k = 5` for the
    /// paper's ImageNet numbers; use `k = 1` to track only top-1).
    pub fn new(k: usize) -> Self {
        Accuracy { k: k.max(1), total: 0, top1_hits: 0, topk_hits: 0 }
    }

    /// Ingests one batch of logits and labels.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BatchMismatch`] if sizes disagree.
    pub fn update(&mut self, logits: &Tensor, labels: &[usize]) -> Result<()> {
        let n = logits.shape().dim(0);
        if n != labels.len() {
            return Err(NnError::BatchMismatch { inputs: n, labels: labels.len() });
        }
        let top1 = argmax_rows(logits)?;
        let topk = topk_rows(logits, self.k)?;
        for i in 0..n {
            self.total += 1;
            if top1[i] == labels[i] {
                self.top1_hits += 1;
            }
            if topk[i].contains(&labels[i]) {
                self.topk_hits += 1;
            }
        }
        Ok(())
    }

    /// Samples seen so far.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Top-1 accuracy in `[0, 1]` (0 when empty).
    pub fn top1(&self) -> f32 {
        if self.total == 0 {
            0.0
        } else {
            self.top1_hits as f32 / self.total as f32
        }
    }

    /// Top-k accuracy in `[0, 1]` (0 when empty).
    pub fn topk(&self) -> f32 {
        if self.total == 0 {
            0.0
        } else {
            self.topk_hits as f32 / self.total as f32
        }
    }

    /// Top-1 error rate (`1 − top1`), the quantity plotted in Figure 3.
    pub fn top1_error(&self) -> f32 {
        1.0 - self.top1()
    }

    /// Resets all counters.
    pub fn reset(&mut self) {
        self.total = 0;
        self.top1_hits = 0;
        self.topk_hits = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfdfp_tensor::Shape;

    fn logits(vals: &[f32], n: usize, k: usize) -> Tensor {
        Tensor::from_vec(vals.to_vec(), Shape::d2(n, k)).unwrap()
    }

    #[test]
    fn counts_top1_and_topk() {
        let mut acc = Accuracy::new(2);
        // Sample 0: argmax 1, label 1 → top1 hit.
        // Sample 1: argmax 0, label 2 → miss; top2 is {0,1} → miss.
        // Sample 2: argmax 2, label 1 → miss; top2 {2,1} → top-2 hit.
        let z = logits(&[0.1, 0.9, 0.0, 0.9, 0.1, 0.0, 0.1, 0.3, 0.6], 3, 3);
        acc.update(&z, &[1, 2, 1]).unwrap();
        assert_eq!(acc.total(), 3);
        assert!((acc.top1() - 1.0 / 3.0).abs() < 1e-6);
        assert!((acc.topk() - 2.0 / 3.0).abs() < 1e-6);
        assert!((acc.top1_error() - 2.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn accumulates_across_batches() {
        let mut acc = Accuracy::new(1);
        let z = logits(&[1.0, 0.0], 1, 2);
        acc.update(&z, &[0]).unwrap();
        acc.update(&z, &[1]).unwrap();
        assert_eq!(acc.total(), 2);
        assert!((acc.top1() - 0.5).abs() < 1e-6);
        acc.reset();
        assert_eq!(acc.total(), 0);
        assert_eq!(acc.top1(), 0.0);
    }

    #[test]
    fn rejects_mismatched_batch() {
        let mut acc = Accuracy::new(1);
        let z = logits(&[1.0, 0.0], 1, 2);
        assert!(acc.update(&z, &[0, 1]).is_err());
    }

    #[test]
    fn k_is_clamped_to_at_least_one() {
        let acc = Accuracy::new(0);
        assert_eq!(acc.k, 1);
    }
}

/// A confusion matrix accumulated over evaluation batches: rows are true
/// classes, columns predicted classes.
///
/// # Examples
///
/// ```
/// use mfdfp_nn::ConfusionMatrix;
/// use mfdfp_tensor::{Shape, Tensor};
///
/// let mut cm = ConfusionMatrix::new(3);
/// let logits = Tensor::from_vec(vec![0.0, 1.0, 0.0], Shape::d2(1, 3))?;
/// cm.update(&logits, &[2])?; // true 2, predicted 1
/// assert_eq!(cm.count(2, 1), 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct ConfusionMatrix {
    classes: usize,
    counts: Vec<u64>,
}

impl ConfusionMatrix {
    /// Creates an empty `classes × classes` matrix.
    ///
    /// # Panics
    ///
    /// Panics if `classes` is zero.
    pub fn new(classes: usize) -> Self {
        assert!(classes > 0, "confusion matrix needs at least one class");
        ConfusionMatrix { classes, counts: vec![0; classes * classes] }
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Ingests a batch of logits and true labels.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BatchMismatch`] on size disagreement or
    /// [`NnError::BadLabel`] for out-of-range labels.
    pub fn update(&mut self, logits: &Tensor, labels: &[usize]) -> Result<()> {
        let n = logits.shape().dim(0);
        if n != labels.len() {
            return Err(NnError::BatchMismatch { inputs: n, labels: labels.len() });
        }
        let preds = argmax_rows(logits)?;
        for (&truth, &pred) in labels.iter().zip(&preds) {
            if truth >= self.classes {
                return Err(NnError::BadLabel { label: truth, classes: self.classes });
            }
            // Predictions are argmax over logits columns, so pred < classes
            // whenever logits have the right width; guard anyway.
            if pred >= self.classes {
                return Err(NnError::BadLabel { label: pred, classes: self.classes });
            }
            self.counts[truth * self.classes + pred] += 1;
        }
        Ok(())
    }

    /// Times true class `t` was predicted as class `p`.
    pub fn count(&self, t: usize, p: usize) -> u64 {
        self.counts[t * self.classes + p]
    }

    /// Per-class recall (diagonal over row sum); `None` for unseen classes.
    pub fn recall(&self, class: usize) -> Option<f32> {
        let row: u64 = self.counts[class * self.classes..(class + 1) * self.classes].iter().sum();
        if row == 0 {
            None
        } else {
            Some(self.count(class, class) as f32 / row as f32)
        }
    }

    /// Per-class precision (diagonal over column sum); `None` when the
    /// class was never predicted.
    pub fn precision(&self, class: usize) -> Option<f32> {
        let col: u64 = (0..self.classes).map(|t| self.count(t, class)).sum();
        if col == 0 {
            None
        } else {
            Some(self.count(class, class) as f32 / col as f32)
        }
    }

    /// Overall accuracy (trace over total).
    pub fn accuracy(&self) -> f32 {
        let total: u64 = self.counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let diag: u64 = (0..self.classes).map(|c| self.count(c, c)).sum();
        diag as f32 / total as f32
    }

    /// Total samples ingested.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }
}

#[cfg(test)]
mod confusion_tests {
    use super::*;
    use mfdfp_tensor::Shape;

    fn logits(vals: &[f32], n: usize, k: usize) -> Tensor {
        Tensor::from_vec(vals.to_vec(), Shape::d2(n, k)).unwrap()
    }

    #[test]
    fn counts_land_in_cells() {
        let mut cm = ConfusionMatrix::new(2);
        // pred 1 / true 0; pred 0 / true 0; pred 1 / true 1
        let z = logits(&[0.0, 1.0, 1.0, 0.0, 0.0, 1.0], 3, 2);
        cm.update(&z, &[0, 0, 1]).unwrap();
        assert_eq!(cm.count(0, 1), 1);
        assert_eq!(cm.count(0, 0), 1);
        assert_eq!(cm.count(1, 1), 1);
        assert_eq!(cm.count(1, 0), 0);
        assert_eq!(cm.total(), 3);
        assert!((cm.accuracy() - 2.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn recall_and_precision() {
        let mut cm = ConfusionMatrix::new(2);
        let z = logits(&[1.0, 0.0, 1.0, 0.0, 0.0, 1.0, 1.0, 0.0], 4, 2);
        // preds: 0,0,1,0 — labels: 0,1,1,1
        cm.update(&z, &[0, 1, 1, 1]).unwrap();
        assert_eq!(cm.recall(0), Some(1.0));
        assert!((cm.recall(1).unwrap() - 1.0 / 3.0).abs() < 1e-6);
        assert!((cm.precision(0).unwrap() - 1.0 / 3.0).abs() < 1e-6);
        assert_eq!(cm.precision(1), Some(1.0));
    }

    #[test]
    fn unseen_class_has_no_recall() {
        let cm = ConfusionMatrix::new(3);
        assert_eq!(cm.recall(2), None);
        assert_eq!(cm.precision(2), None);
        assert_eq!(cm.accuracy(), 0.0);
    }

    #[test]
    fn validates_labels() {
        let mut cm = ConfusionMatrix::new(2);
        let z = logits(&[1.0, 0.0], 1, 2);
        assert!(matches!(cm.update(&z, &[5]), Err(NnError::BadLabel { .. })));
        assert!(matches!(cm.update(&z, &[0, 1]), Err(NnError::BatchMismatch { .. })));
    }

    #[test]
    #[should_panic(expected = "at least one class")]
    fn zero_classes_panics() {
        let _ = ConfusionMatrix::new(0);
    }
}
