//! The layer sum type and forward/backward dispatch.

use mfdfp_tensor::Tensor;

use crate::error::Result;
use crate::layers::{Conv2d, Dropout, FakeQuant, Flatten, Linear, Lrn, Pool, Relu, Sigmoid, Tanh};

/// Whether a forward pass is part of training (caches intermediates,
/// enables dropout) or pure inference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Phase {
    /// Training: layers cache what their backward pass needs.
    Train,
    /// Inference: no caching, dropout disabled.
    #[default]
    Eval,
}

/// A network layer.
///
/// Layers are a closed enum rather than trait objects so that the
/// quantizer (`mfdfp-core`) and the accelerator scheduler (`mfdfp-accel`)
/// can pattern-match on concrete layer kinds — mirroring how the paper's
/// toolchain patches specific Caffe layer types.
#[derive(Debug, Clone)]
pub enum Layer {
    /// Trainable convolution.
    Conv(Conv2d),
    /// Trainable fully-connected layer.
    Linear(Linear),
    /// Max/avg pooling.
    Pool(Pool),
    /// Rectified linear unit.
    Relu(Relu),
    /// Flatten to `N×features`.
    Flatten(Flatten),
    /// Inverted dropout.
    Dropout(Dropout),
    /// Local response normalization (removed by the paper; kept for the
    /// ablation study).
    Lrn(Lrn),
    /// Straight-through fake quantization (inserted by the Phase-1/2
    /// quantized working network).
    FakeQuant(FakeQuant),
    /// Hyperbolic tangent non-linearity.
    Tanh(Tanh),
    /// Logistic sigmoid non-linearity.
    Sigmoid(Sigmoid),
}

impl Layer {
    /// Forward pass through this layer.
    ///
    /// # Errors
    ///
    /// Propagates shape/config errors from the concrete layer.
    pub fn forward(&mut self, x: &Tensor, phase: Phase) -> Result<Tensor> {
        match self {
            Layer::Conv(l) => l.forward(x, phase),
            Layer::Linear(l) => l.forward(x, phase),
            Layer::Pool(l) => l.forward(x, phase),
            Layer::Relu(l) => l.forward(x, phase),
            Layer::Flatten(l) => l.forward(x, phase),
            Layer::Dropout(l) => l.forward(x, phase),
            Layer::Lrn(l) => l.forward(x, phase),
            Layer::FakeQuant(l) => l.forward(x, phase),
            Layer::Tanh(l) => l.forward(x, phase),
            Layer::Sigmoid(l) => l.forward(x, phase),
        }
    }

    /// Backward pass through this layer.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the concrete layer.
    ///
    /// # Panics
    ///
    /// Panics if the layer has no cached forward state (backward without a
    /// training-phase forward).
    pub fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        match self {
            Layer::Conv(l) => l.backward(grad_out),
            Layer::Linear(l) => l.backward(grad_out),
            Layer::Pool(l) => l.backward(grad_out),
            Layer::Relu(l) => l.backward(grad_out),
            Layer::Flatten(l) => l.backward(grad_out),
            Layer::Dropout(l) => l.backward(grad_out),
            Layer::Lrn(l) => l.backward(grad_out),
            Layer::FakeQuant(l) => l.backward(grad_out),
            Layer::Tanh(l) => l.backward(grad_out),
            Layer::Sigmoid(l) => l.backward(grad_out),
        }
    }

    /// Visits `(value, grad)` tensor pairs of every trainable parameter.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
        match self {
            Layer::Conv(l) => l.visit_params(f),
            Layer::Linear(l) => l.visit_params(f),
            _ => {}
        }
    }

    /// Zeroes accumulated parameter gradients.
    pub fn zero_grads(&mut self) {
        match self {
            Layer::Conv(l) => l.zero_grads(),
            Layer::Linear(l) => l.zero_grads(),
            _ => {}
        }
    }

    /// Number of trainable parameters in this layer.
    pub fn param_count(&self) -> usize {
        match self {
            Layer::Conv(l) => l.param_count(),
            Layer::Linear(l) => l.param_count(),
            _ => 0,
        }
    }

    /// A short human-readable description.
    pub fn describe(&self) -> String {
        match self {
            Layer::Conv(l) => {
                let g = l.geometry();
                format!(
                    "{}: conv {}×{}×{} → {} (k{} s{} p{})",
                    l.name(),
                    g.in_c,
                    g.in_h,
                    g.in_w,
                    g.out_c,
                    g.kernel,
                    g.stride,
                    g.pad
                )
            }
            Layer::Linear(l) => {
                format!("{}: fc {} → {}", l.name(), l.in_features(), l.out_features())
            }
            Layer::Pool(l) => {
                let g = l.geometry();
                format!("{}: {:?}-pool w{} s{}", l.name(), l.kind(), g.window, g.stride)
            }
            Layer::Relu(_) => "relu".to_string(),
            Layer::Flatten(_) => "flatten".to_string(),
            Layer::Dropout(l) => format!("dropout p={}", l.probability()),
            Layer::Lrn(l) => format!("lrn n={}", l.size()),
            Layer::FakeQuant(l) => format!("fake-quant step={}", l.step()),
            Layer::Tanh(_) => "tanh".to_string(),
            Layer::Sigmoid(_) => "sigmoid".to_string(),
        }
    }

    /// Whether this layer holds weights the paper quantizes (conv or FC).
    pub fn is_weighted(&self) -> bool {
        matches!(self, Layer::Conv(_) | Layer::Linear(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfdfp_tensor::{ConvGeometry, TensorRng};

    #[test]
    fn describe_is_nonempty_for_all_variants() {
        let mut rng = TensorRng::seed_from(1);
        let layers = vec![
            Layer::Conv(Conv2d::new(
                "c",
                ConvGeometry::new(1, 4, 4, 2, 3, 1, 1).unwrap(),
                &mut rng,
            )),
            Layer::Linear(Linear::new("f", 4, 2, &mut rng)),
            Layer::Relu(Relu::new()),
            Layer::Flatten(Flatten::new()),
            Layer::Dropout(Dropout::new(0.5, 1)),
            Layer::Lrn(Lrn::alexnet()),
        ];
        for l in &layers {
            assert!(!l.describe().is_empty());
        }
    }

    #[test]
    fn weighted_classification() {
        let mut rng = TensorRng::seed_from(1);
        assert!(Layer::Linear(Linear::new("f", 4, 2, &mut rng)).is_weighted());
        assert!(!Layer::Relu(Relu::new()).is_weighted());
        assert_eq!(Layer::Relu(Relu::new()).param_count(), 0);
    }
}
