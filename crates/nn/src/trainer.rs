//! Epoch-level training and evaluation loops.

use mfdfp_tensor::Tensor;

use crate::error::Result;
use crate::layer::Phase;
use crate::loss::softmax_cross_entropy;
use crate::metrics::Accuracy;
use crate::net::Network;
use crate::optim::Sgd;

/// Summary of one training epoch.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EpochStats {
    /// Mean cross-entropy loss over all batches.
    pub mean_loss: f32,
    /// Training top-1 accuracy over the epoch.
    pub accuracy: f32,
    /// Number of samples consumed.
    pub samples: usize,
}

/// Trains `net` for one epoch of hard-label cross-entropy over `batches`.
///
/// Each batch is `(inputs, labels)` with inputs shaped `N×…`. Gradients
/// are applied per batch via `sgd`.
///
/// # Errors
///
/// Propagates the first layer or loss error.
pub fn train_epoch<I>(net: &mut Network, sgd: &mut Sgd, batches: I) -> Result<EpochStats>
where
    I: IntoIterator<Item = (Tensor, Vec<usize>)>,
{
    let mut loss_sum = 0.0f64;
    let mut nbatches = 0usize;
    let mut acc = Accuracy::new(1);
    for (x, labels) in batches {
        let logits = net.forward(&x, Phase::Train)?;
        let (loss, grad) = softmax_cross_entropy(&logits, &labels)?;
        acc.update(&logits, &labels)?;
        net.backward(&grad)?;
        sgd.step(net);
        loss_sum += loss as f64;
        nbatches += 1;
    }
    Ok(EpochStats {
        mean_loss: if nbatches == 0 { 0.0 } else { (loss_sum / nbatches as f64) as f32 },
        accuracy: acc.top1(),
        samples: acc.total(),
    })
}

/// Evaluates `net` over `batches`, tracking top-1 and top-`k` accuracy.
///
/// # Errors
///
/// Propagates the first layer error.
pub fn evaluate<I>(net: &mut Network, batches: I, k: usize) -> Result<Accuracy>
where
    I: IntoIterator<Item = (Tensor, Vec<usize>)>,
{
    let mut acc = Accuracy::new(k);
    for (x, labels) in batches {
        let logits = net.forward(&x, Phase::Eval)?;
        acc.update(&logits, &labels)?;
    }
    Ok(acc)
}

/// Runs `net` over `batches` collecting per-sample logits — used to harvest
/// the teacher's logits for Phase-2 distillation ("we then run the networks
/// on their corresponding training set data to obtain the pre-softmax
/// output logits").
///
/// Returns one rank-1 logits tensor per sample, in batch order.
///
/// # Errors
///
/// Propagates the first layer error.
pub fn collect_logits<I>(net: &mut Network, batches: I) -> Result<Vec<Tensor>>
where
    I: IntoIterator<Item = (Tensor, Vec<usize>)>,
{
    let mut out = Vec::new();
    for (x, _) in batches {
        let logits = net.forward(&x, Phase::Eval)?;
        let n = logits.shape().dim(0);
        for s in 0..n {
            out.push(logits.index_axis0(s));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Layer;
    use crate::layers::{Linear, Relu};
    use crate::optim::SgdConfig;
    use mfdfp_tensor::{Shape, TensorRng};

    /// Two well-separated Gaussian blobs: a learnable toy problem.
    fn blob_batches(rng: &mut TensorRng, batches: usize, per: usize) -> Vec<(Tensor, Vec<usize>)> {
        (0..batches)
            .map(|_| {
                let mut xs = Vec::with_capacity(per * 2);
                let mut labels = Vec::with_capacity(per);
                for i in 0..per {
                    let class = i % 2;
                    let centre = if class == 0 { -1.0 } else { 1.0 };
                    xs.push(centre + rng.gaussian([1], 0.0, 0.3).as_slice()[0]);
                    xs.push(-centre + rng.gaussian([1], 0.0, 0.3).as_slice()[0]);
                    labels.push(class);
                }
                (Tensor::from_vec(xs, Shape::d2(per, 2)).unwrap(), labels)
            })
            .collect()
    }

    fn mlp(rng: &mut TensorRng) -> Network {
        let mut net = Network::new("mlp");
        net.push(Layer::Linear(Linear::new("fc1", 2, 8, rng)));
        net.push(Layer::Relu(Relu::new()));
        net.push(Layer::Linear(Linear::new("fc2", 8, 2, rng)));
        net
    }

    #[test]
    fn training_learns_separable_blobs() {
        let mut rng = TensorRng::seed_from(42);
        let mut net = mlp(&mut rng);
        let cfg = SgdConfig { learning_rate: 0.1, momentum: 0.9, weight_decay: 0.0 };
        let mut sgd = Sgd::new(cfg).unwrap();
        let mut last = EpochStats::default();
        for _ in 0..10 {
            let batches = blob_batches(&mut rng, 10, 16);
            last = train_epoch(&mut net, &mut sgd, batches).unwrap();
        }
        assert!(last.accuracy > 0.95, "accuracy {}", last.accuracy);
        assert_eq!(last.samples, 160);

        let test = blob_batches(&mut rng, 5, 16);
        let acc = evaluate(&mut net, test, 1).unwrap();
        assert!(acc.top1() > 0.95, "test accuracy {}", acc.top1());
    }

    #[test]
    fn collect_logits_yields_one_per_sample() {
        let mut rng = TensorRng::seed_from(1);
        let mut net = mlp(&mut rng);
        let batches = blob_batches(&mut rng, 3, 4);
        let logits = collect_logits(&mut net, batches).unwrap();
        assert_eq!(logits.len(), 12);
        assert_eq!(logits[0].shape().dims(), &[2]);
    }

    #[test]
    fn empty_epoch_is_harmless() {
        let mut rng = TensorRng::seed_from(1);
        let mut net = mlp(&mut rng);
        let mut sgd = Sgd::new(SgdConfig::default()).unwrap();
        let stats = train_epoch(&mut net, &mut sgd, Vec::new()).unwrap();
        assert_eq!(stats.samples, 0);
        assert_eq!(stats.mean_loss, 0.0);
    }
}
