//! # mfdfp-nn — a from-scratch CPU deep-learning framework
//!
//! The float-network substrate of the MF-DFP reproduction (Tann et al.,
//! DAC 2017). The paper's Algorithm 1 starts from a *trained
//! floating-point network* and repeatedly runs forward/backward passes
//! while quantizing; this crate supplies everything that requires:
//!
//! * [`Network`] — a sequential stack of [`Layer`]s (conv, FC, pooling,
//!   ReLU, dropout, LRN, flatten) with exact backprop.
//! * [`softmax_cross_entropy`] and [`distillation_loss`] — the hard-label
//!   loss of Phase 1 and the student–teacher loss of Phase 2
//!   (Equations 1–2, including the paper's high-temperature gradient
//!   approximation as [`DistillMode::PaperApprox`]).
//! * [`Sgd`] with momentum/weight decay and the paper's
//!   [`PlateauSchedule`] (÷10 on plateau, stop below 1e-7).
//! * [`Accuracy`] — top-1/top-5 metrics (Table 2's accuracy columns).
//! * [`zoo`] — the paper's benchmark topologies: CIFAR-10 quick and
//!   AlexNet (LRN removed), plus scaled variants for CPU budgets.
//!
//! # Examples
//!
//! ```
//! use mfdfp_nn::{softmax_cross_entropy, train_epoch, Network, Phase, Sgd, SgdConfig};
//! use mfdfp_nn::layer::Layer;
//! use mfdfp_nn::layers::Linear;
//! use mfdfp_tensor::{Tensor, TensorRng};
//!
//! let mut rng = TensorRng::seed_from(7);
//! let mut net = Network::new("demo");
//! net.push(Layer::Linear(Linear::new("fc", 4, 2, &mut rng)));
//! let cfg = SgdConfig { learning_rate: 0.1, momentum: 0.9, weight_decay: 0.0 };
//! let mut sgd = Sgd::new(cfg)?;
//! let batch = (rng.gaussian([8, 4], 0.0, 1.0), vec![0, 1, 0, 1, 0, 1, 0, 1]);
//! let stats = train_epoch(&mut net, &mut sgd, vec![batch])?;
//! assert_eq!(stats.samples, 8);
//! # Ok::<(), mfdfp_nn::NnError>(())
//! ```

#![deny(missing_docs)]

mod error;
pub mod io;
pub mod layer;
pub mod layers;
mod loss;
mod metrics;
mod net;
mod optim;
mod trainer;
pub mod zoo;

pub use error::{NnError, Result};
pub use layer::{Layer, Phase};
pub use loss::{distillation_loss, softmax_cross_entropy, DistillConfig, DistillMode};
pub use metrics::{Accuracy, ConfusionMatrix};
pub use net::Network;
pub use optim::{PlateauSchedule, Sgd, SgdConfig};
pub use trainer::{collect_logits, evaluate, train_epoch, EpochStats};
