//! The sequential network container.

use mfdfp_tensor::Tensor;

use crate::error::Result;
use crate::layer::{Layer, Phase};

/// A feed-forward network: an ordered stack of [`Layer`]s.
///
/// # Examples
///
/// ```
/// use mfdfp_nn::{Layer, Network, Phase};
/// use mfdfp_nn::layers::{Linear, Relu};
/// use mfdfp_tensor::{Tensor, TensorRng};
///
/// let mut rng = TensorRng::seed_from(0);
/// let mut net = Network::new("tiny");
/// net.push(Layer::Linear(Linear::new("fc1", 4, 8, &mut rng)));
/// net.push(Layer::Relu(Relu::new()));
/// net.push(Layer::Linear(Linear::new("fc2", 8, 2, &mut rng)));
///
/// let x = rng.gaussian([3, 4], 0.0, 1.0);
/// let logits = net.forward(&x, Phase::Eval)?;
/// assert_eq!(logits.shape().dims(), &[3, 2]);
/// # Ok::<(), mfdfp_nn::NnError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Network {
    name: String,
    layers: Vec<Layer>,
}

impl Network {
    /// Creates an empty network.
    pub fn new(name: impl Into<String>) -> Self {
        Network { name: name.into(), layers: Vec::new() }
    }

    /// The network's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends a layer.
    pub fn push(&mut self, layer: Layer) {
        self.layers.push(layer);
    }

    /// The layer stack.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Mutable access to the layer stack (used by the quantizer).
    pub fn layers_mut(&mut self) -> &mut [Layer] {
        &mut self.layers
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the network has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Full forward pass producing logits.
    ///
    /// # Errors
    ///
    /// Propagates the first layer error.
    pub fn forward(&mut self, x: &Tensor, phase: Phase) -> Result<Tensor> {
        let mut cur = x.clone();
        for layer in &mut self.layers {
            cur = layer.forward(&cur, phase)?;
        }
        Ok(cur)
    }

    /// Forward pass that also returns every intermediate activation
    /// (`activations[0]` is the input, `activations[i+1]` the output of
    /// layer `i`). Used by the quantization calibrator.
    ///
    /// # Errors
    ///
    /// Propagates the first layer error.
    pub fn forward_trace(&mut self, x: &Tensor, phase: Phase) -> Result<Vec<Tensor>> {
        let mut acts = Vec::with_capacity(self.layers.len() + 1);
        acts.push(x.clone());
        for layer in &mut self.layers {
            let next = layer.forward(acts.last().expect("non-empty"), phase)?;
            acts.push(next);
        }
        Ok(acts)
    }

    /// Full backward pass from a logits gradient; accumulates parameter
    /// gradients and returns the input gradient.
    ///
    /// # Errors
    ///
    /// Propagates the first layer error.
    pub fn backward(&mut self, grad_logits: &Tensor) -> Result<Tensor> {
        let mut grad = grad_logits.clone();
        for layer in self.layers.iter_mut().rev() {
            grad = layer.backward(&grad)?;
        }
        Ok(grad)
    }

    /// Zeroes every parameter gradient.
    pub fn zero_grads(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grads();
        }
    }

    /// Visits every `(value, grad)` parameter pair in deterministic order
    /// (layer order; weights before bias).
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
        for layer in &mut self.layers {
            layer.visit_params(f);
        }
    }

    /// Total number of trainable parameters.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(Layer::param_count).sum()
    }

    /// Copies every parameter *value* out of the network (used for shadow
    /// weights). Order matches [`Network::visit_params`].
    pub fn snapshot_params(&mut self) -> Vec<Tensor> {
        let mut out = Vec::new();
        self.visit_params(&mut |v, _| out.push(v.clone()));
        out
    }

    /// Writes parameter values back (inverse of
    /// [`Network::snapshot_params`]).
    ///
    /// # Panics
    ///
    /// Panics if `params` does not match the network's parameter structure.
    pub fn restore_params(&mut self, params: &[Tensor]) {
        let mut i = 0;
        self.visit_params(&mut |v, _| {
            assert!(i < params.len(), "parameter snapshot too short");
            assert_eq!(v.shape(), params[i].shape(), "parameter shape drift");
            *v = params[i].clone();
            i += 1;
        });
        assert_eq!(i, params.len(), "parameter snapshot too long");
    }

    /// Multi-line human-readable summary.
    pub fn summary(&self) -> String {
        let mut s = format!("network \"{}\" — {} params\n", self.name, self.param_count());
        for layer in &self.layers {
            s.push_str("  ");
            s.push_str(&layer.describe());
            s.push('\n');
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Linear, Relu};
    use mfdfp_tensor::TensorRng;

    fn tiny(rng: &mut TensorRng) -> Network {
        let mut net = Network::new("tiny");
        net.push(Layer::Linear(Linear::new("fc1", 4, 8, rng)));
        net.push(Layer::Relu(Relu::new()));
        net.push(Layer::Linear(Linear::new("fc2", 8, 2, rng)));
        net
    }

    #[test]
    fn forward_shapes_and_trace() {
        let mut rng = TensorRng::seed_from(0);
        let mut net = tiny(&mut rng);
        let x = rng.gaussian([3, 4], 0.0, 1.0);
        let y = net.forward(&x, Phase::Eval).unwrap();
        assert_eq!(y.shape().dims(), &[3, 2]);
        let trace = net.forward_trace(&x, Phase::Eval).unwrap();
        assert_eq!(trace.len(), 4);
        assert_eq!(trace[0].as_slice(), x.as_slice());
        assert_eq!(trace[3].as_slice(), y.as_slice());
    }

    #[test]
    fn param_snapshot_round_trip() {
        let mut rng = TensorRng::seed_from(0);
        let mut net = tiny(&mut rng);
        let snap = net.snapshot_params();
        assert_eq!(snap.len(), 4); // two layers × (weights, bias)
        let x = rng.gaussian([1, 4], 0.0, 1.0);
        let before = net.forward(&x, Phase::Eval).unwrap();
        // Perturb, then restore.
        net.visit_params(&mut |v, _| v.scale(3.0));
        let perturbed = net.forward(&x, Phase::Eval).unwrap();
        assert_ne!(before.as_slice(), perturbed.as_slice());
        net.restore_params(&snap);
        let after = net.forward(&x, Phase::Eval).unwrap();
        assert_eq!(before.as_slice(), after.as_slice());
    }

    #[test]
    fn backward_produces_input_gradient() {
        let mut rng = TensorRng::seed_from(0);
        let mut net = tiny(&mut rng);
        let x = rng.gaussian([3, 4], 0.0, 1.0);
        let y = net.forward(&x, Phase::Train).unwrap();
        let gx = net.backward(&Tensor::ones(y.shape().clone())).unwrap();
        assert_eq!(gx.shape().dims(), &[3, 4]);
    }

    #[test]
    fn zero_grads_resets_accumulation() {
        let mut rng = TensorRng::seed_from(0);
        let mut net = tiny(&mut rng);
        let x = rng.gaussian([3, 4], 0.0, 1.0);
        let y = net.forward(&x, Phase::Train).unwrap();
        net.backward(&Tensor::ones(y.shape().clone())).unwrap();
        let mut nonzero = 0;
        net.visit_params(&mut |_, g| nonzero += g.as_slice().iter().filter(|&&v| v != 0.0).count());
        assert!(nonzero > 0);
        net.zero_grads();
        let mut sum = 0.0;
        net.visit_params(&mut |_, g| sum += g.norm_sq());
        assert_eq!(sum, 0.0);
    }

    #[test]
    fn param_count_sums_layers() {
        let mut rng = TensorRng::seed_from(0);
        let net = tiny(&mut rng);
        assert_eq!(net.param_count(), (4 * 8 + 8) + (8 * 2 + 2));
    }

    #[test]
    fn summary_mentions_every_layer() {
        let mut rng = TensorRng::seed_from(0);
        let net = tiny(&mut rng);
        let s = net.summary();
        assert!(s.contains("fc1"));
        assert!(s.contains("relu"));
        assert!(s.contains("fc2"));
    }
}
