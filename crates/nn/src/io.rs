//! Parameter checkpointing: serialise a network's trainable parameters to
//! a compact binary blob and restore them into a structurally identical
//! network.
//!
//! The *topology* is code (the zoo builders); only parameters ship. This
//! mirrors how the paper's flow moves weights between Caffe checkpoints
//! and the quantization tooling.

use mfdfp_tensor::{Shape, Tensor};

use crate::error::{NnError, Result};
use crate::net::Network;

/// Magic bytes of a parameter checkpoint ("MFNN").
pub const PARAM_MAGIC: [u8; 4] = *b"MFNN";
/// Checkpoint format version.
pub const PARAM_VERSION: u8 = 1;

/// Serialises every trainable parameter of `net`, in visit order.
pub fn save_params(net: &mut Network) -> Vec<u8> {
    let params = net.snapshot_params();
    let mut out = Vec::new();
    out.extend_from_slice(&PARAM_MAGIC);
    out.push(PARAM_VERSION);
    out.extend_from_slice(&(params.len() as u32).to_le_bytes());
    for p in &params {
        out.push(p.shape().rank() as u8);
        for &d in p.shape().dims() {
            out.extend_from_slice(&(d as u32).to_le_bytes());
        }
        for &v in p.as_slice() {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
    out
}

/// Restores parameters saved by [`save_params`] into `net`.
///
/// # Errors
///
/// Returns [`NnError::BadConfig`] if the blob is malformed or its
/// parameter shapes do not match the network's structure.
pub fn load_params(net: &mut Network, bytes: &[u8]) -> Result<()> {
    let mut pos = 0usize;
    let take = |pos: &mut usize, n: usize| -> Result<&[u8]> {
        if *pos + n > bytes.len() {
            return Err(NnError::BadConfig("truncated parameter checkpoint".into()));
        }
        let s = &bytes[*pos..*pos + n];
        *pos += n;
        Ok(s)
    };
    if take(&mut pos, 4)? != PARAM_MAGIC {
        return Err(NnError::BadConfig("bad magic; not a parameter checkpoint".into()));
    }
    let version = take(&mut pos, 1)?[0];
    if version != PARAM_VERSION {
        return Err(NnError::BadConfig(format!("unsupported checkpoint version {version}")));
    }
    let count = u32::from_le_bytes(take(&mut pos, 4)?.try_into().expect("4 bytes")) as usize;
    let mut params = Vec::with_capacity(count);
    for _ in 0..count {
        let rank = take(&mut pos, 1)?[0] as usize;
        if rank == 0 || rank > 8 {
            return Err(NnError::BadConfig(format!("implausible tensor rank {rank}")));
        }
        let mut dims = Vec::with_capacity(rank);
        for _ in 0..rank {
            dims.push(u32::from_le_bytes(take(&mut pos, 4)?.try_into().expect("4 bytes")) as usize);
        }
        let shape = Shape::new(dims);
        let len = shape.len();
        let mut data = Vec::with_capacity(len);
        for _ in 0..len {
            data.push(f32::from_le_bytes(take(&mut pos, 4)?.try_into().expect("4 bytes")));
        }
        params.push(Tensor::from_vec(data, shape).map_err(NnError::Tensor)?);
    }
    // Validate against the network's structure before mutating anything.
    let current = net.snapshot_params();
    if current.len() != params.len() {
        return Err(NnError::BadConfig(format!(
            "checkpoint has {} parameter tensors, network has {}",
            params.len(),
            current.len()
        )));
    }
    for (a, b) in current.iter().zip(&params) {
        if a.shape() != b.shape() {
            return Err(NnError::BadConfig(format!(
                "checkpoint shape {} does not match network shape {}",
                b.shape(),
                a.shape()
            )));
        }
    }
    net.restore_params(&params);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{Layer, Phase};
    use crate::layers::{Linear, Relu};
    use mfdfp_tensor::TensorRng;

    fn mlp(seed: u64) -> Network {
        let mut rng = TensorRng::seed_from(seed);
        let mut net = Network::new("ckpt");
        net.push(Layer::Linear(Linear::new("fc1", 4, 6, &mut rng)));
        net.push(Layer::Relu(Relu::new()));
        net.push(Layer::Linear(Linear::new("fc2", 6, 2, &mut rng)));
        net
    }

    #[test]
    fn round_trip_restores_exact_behaviour() {
        let mut a = mlp(1);
        let blob = save_params(&mut a);
        let mut b = mlp(2); // different init, same structure
        let mut rng = TensorRng::seed_from(9);
        let x = rng.gaussian([3, 4], 0.0, 1.0);
        let ya = a.forward(&x, Phase::Eval).unwrap();
        let yb_before = b.forward(&x, Phase::Eval).unwrap();
        assert_ne!(ya.as_slice(), yb_before.as_slice());
        load_params(&mut b, &blob).unwrap();
        let yb = b.forward(&x, Phase::Eval).unwrap();
        assert_eq!(ya.as_slice(), yb.as_slice());
    }

    #[test]
    fn rejects_structural_mismatch() {
        let mut a = mlp(1);
        let blob = save_params(&mut a);
        let mut rng = TensorRng::seed_from(0);
        let mut different = Network::new("other");
        different.push(Layer::Linear(Linear::new("fc", 4, 6, &mut rng)));
        assert!(matches!(load_params(&mut different, &blob), Err(NnError::BadConfig(_))));
        let mut wrong_shape = Network::new("other2");
        wrong_shape.push(Layer::Linear(Linear::new("fc1", 4, 7, &mut rng)));
        wrong_shape.push(Layer::Linear(Linear::new("fc2", 7, 2, &mut rng)));
        assert!(load_params(&mut wrong_shape, &blob).is_err());
    }

    #[test]
    fn rejects_malformed_blobs() {
        let mut a = mlp(1);
        let mut blob = save_params(&mut a);
        assert!(load_params(&mut mlp(1), &blob[..6]).is_err());
        blob[0] = b'Z';
        assert!(load_params(&mut mlp(1), &blob).is_err());
        let mut blob = save_params(&mut a);
        blob[4] = 42; // version
        assert!(load_params(&mut mlp(1), &blob).is_err());
        assert!(load_params(&mut mlp(1), &[]).is_err());
    }

    #[test]
    fn failed_load_leaves_network_untouched() {
        let mut a = mlp(1);
        let before = a.snapshot_params();
        let blob = save_params(&mut mlp(3));
        // Corrupt the tail so shape validation passes but data is short.
        let truncated = &blob[..blob.len() - 10];
        assert!(load_params(&mut a, truncated).is_err());
        let after = a.snapshot_params();
        for (x, y) in before.iter().zip(&after) {
            assert_eq!(x.as_slice(), y.as_slice());
        }
    }
}
