//! Loss functions: softmax cross-entropy and the paper's student–teacher
//! distillation loss (Section 4.2, Equations 1–2).

use mfdfp_tensor::{log_softmax, softmax, softmax_with_temperature, Tensor};

use crate::error::{NnError, Result};

/// Softmax cross-entropy against hard integer labels.
///
/// Returns `(mean_loss, grad_logits)` where the gradient is
/// `(P − Y)/batch`, ready to feed into [`crate::Network::backward`].
///
/// # Errors
///
/// Returns [`NnError::BatchMismatch`] or [`NnError::BadLabel`] on
/// inconsistent inputs.
///
/// # Examples
///
/// ```
/// use mfdfp_nn::softmax_cross_entropy;
/// use mfdfp_tensor::{Shape, Tensor};
///
/// let logits = Tensor::from_vec(vec![5.0, -5.0], Shape::d2(1, 2))?;
/// let (loss, _grad) = softmax_cross_entropy(&logits, &[0])?;
/// assert!(loss < 0.01); // confidently correct
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn softmax_cross_entropy(logits: &Tensor, labels: &[usize]) -> Result<(f32, Tensor)> {
    let (n, k) = check_batch(logits, labels)?;
    let lp = log_softmax(logits)?;
    let p = softmax(logits)?;
    let mut loss = 0.0f32;
    let mut grad = p;
    {
        let gd = grad.as_mut_slice();
        let lpd = lp.as_slice();
        for (r, &label) in labels.iter().enumerate() {
            loss -= lpd[r * k + label];
            gd[r * k + label] -= 1.0;
        }
        for g in gd.iter_mut() {
            *g /= n as f32;
        }
    }
    Ok((loss / n as f32, grad))
}

/// How the distillation gradient is computed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DistillMode {
    /// Exact gradient of Equation 1:
    /// `(P_S − Y)/n + (β/τ)·(P_S^τ − P_T^τ)/n`.
    #[default]
    Exact,
    /// The paper's high-temperature approximation (Equation 2):
    /// `(P_S − Y)/n + β/(N·τ²)·(z_S − z_T)/n` with zero-meaned logits.
    PaperApprox,
}

/// Hyper-parameters of the student–teacher loss
/// `L = H(Y, P_S) + β · H(P_T, P_S)` (Equation 1).
///
/// The paper's ImageNet experiment uses `τ = 20`, `β = 0.2`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistillConfig {
    /// Softmax temperature τ applied to both student and teacher logits.
    pub temperature: f32,
    /// Weight β of the teacher-imitation term.
    pub beta: f32,
    /// Gradient computation mode.
    pub mode: DistillMode,
}

impl DistillConfig {
    /// The paper's setting: τ = 20, β = 0.2, exact gradients.
    pub fn paper() -> Self {
        DistillConfig { temperature: 20.0, beta: 0.2, mode: DistillMode::Exact }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadConfig`] for non-positive temperature or
    /// negative beta.
    pub fn validate(&self) -> Result<()> {
        if self.temperature <= 0.0 || self.temperature.is_nan() {
            return Err(NnError::BadConfig(format!(
                "distillation temperature must be positive, got {}",
                self.temperature
            )));
        }
        if self.beta < 0.0 {
            return Err(NnError::BadConfig(format!(
                "beta must be non-negative, got {}",
                self.beta
            )));
        }
        Ok(())
    }
}

impl Default for DistillConfig {
    fn default() -> Self {
        DistillConfig::paper()
    }
}

/// Student–teacher distillation loss (Equation 1) and its gradient.
///
/// `student_logits` (`z_S`) and `teacher_logits` (`z_T`) must have the same
/// `n×k` shape; `labels` are the hard ground-truth classes. Returns
/// `(mean_loss, grad_student_logits)`.
///
/// With [`DistillMode::PaperApprox`] the soft term's gradient uses the
/// paper's Equation 2 linearisation (valid for `τ ≫ z`), after zero-meaning
/// both logit vectors per row as the derivation assumes.
///
/// # Errors
///
/// Returns [`NnError`] variants for shape/label/config inconsistencies.
pub fn distillation_loss(
    student_logits: &Tensor,
    teacher_logits: &Tensor,
    labels: &[usize],
    cfg: &DistillConfig,
) -> Result<(f32, Tensor)> {
    cfg.validate()?;
    let (n, k) = check_batch(student_logits, labels)?;
    if teacher_logits.shape() != student_logits.shape() {
        return Err(NnError::Tensor(mfdfp_tensor::TensorError::ShapeMismatch {
            left: student_logits.shape().clone(),
            right: teacher_logits.shape().clone(),
            op: "distillation_loss",
        }));
    }
    // Hard-label term.
    let (hard_loss, mut grad) = softmax_cross_entropy(student_logits, labels)?;

    // Soft term H(P_T, P_S) at temperature τ.
    let tau = cfg.temperature;
    let ps = softmax_with_temperature(student_logits, tau)?;
    let pt = softmax_with_temperature(teacher_logits, tau)?;
    let mut soft_loss = 0.0f32;
    {
        let psd = ps.as_slice();
        let ptd = pt.as_slice();
        for i in 0..n * k {
            // H(P_T, P_S) = −Σ P_T log P_S
            soft_loss -= ptd[i] * psd[i].max(1e-30).ln();
        }
    }
    soft_loss /= n as f32;

    match cfg.mode {
        DistillMode::Exact => {
            // ∂/∂z_S [H(P_T, P_S^τ)] = (P_S^τ − P_T^τ)/τ
            let gd = grad.as_mut_slice();
            let psd = ps.as_slice();
            let ptd = pt.as_slice();
            let scale = cfg.beta / (tau * n as f32);
            for i in 0..n * k {
                gd[i] += scale * (psd[i] - ptd[i]);
            }
        }
        DistillMode::PaperApprox => {
            // Equation 2: β/(N·τ²) · (z_S,i − z_T,i) with zero-meaned logits.
            let zs = student_logits.as_slice();
            let zt = teacher_logits.as_slice();
            let gd = grad.as_mut_slice();
            let scale = cfg.beta / (k as f32 * tau * tau * n as f32);
            for r in 0..n {
                let ms: f32 = zs[r * k..(r + 1) * k].iter().sum::<f32>() / k as f32;
                let mt: f32 = zt[r * k..(r + 1) * k].iter().sum::<f32>() / k as f32;
                for c in 0..k {
                    gd[r * k + c] += scale * ((zs[r * k + c] - ms) - (zt[r * k + c] - mt));
                }
            }
        }
    }
    Ok((hard_loss + cfg.beta * soft_loss, grad))
}

fn check_batch(logits: &Tensor, labels: &[usize]) -> Result<(usize, usize)> {
    if logits.shape().rank() != 2 {
        return Err(NnError::BadConfig(format!("logits must be rank-2, got {}", logits.shape())));
    }
    let (n, k) = (logits.shape().dim(0), logits.shape().dim(1));
    if labels.len() != n {
        return Err(NnError::BatchMismatch { inputs: n, labels: labels.len() });
    }
    for &l in labels {
        if l >= k {
            return Err(NnError::BadLabel { label: l, classes: k });
        }
    }
    Ok((n, k))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfdfp_tensor::Shape;

    fn logits(vals: &[f32], n: usize, k: usize) -> Tensor {
        Tensor::from_vec(vals.to_vec(), Shape::d2(n, k)).unwrap()
    }

    #[test]
    fn ce_uniform_logits_give_log_k() {
        let z = logits(&[0.0; 4], 1, 4);
        let (loss, _) = softmax_cross_entropy(&z, &[2]).unwrap();
        assert!((loss - (4.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn ce_gradient_is_p_minus_y_over_n() {
        let z = logits(&[0.0, 0.0], 1, 2);
        let (_, g) = softmax_cross_entropy(&z, &[0]).unwrap();
        assert!((g.as_slice()[0] - (0.5 - 1.0)).abs() < 1e-6);
        assert!((g.as_slice()[1] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn ce_gradient_matches_finite_difference() {
        let base = [0.3f32, -0.7, 1.2, 0.1, 0.9, -0.2];
        let labels = [2usize, 0];
        let z = logits(&base, 2, 3);
        let (_, g) = softmax_cross_entropy(&z, &labels).unwrap();
        let eps = 1e-3;
        for i in 0..6 {
            let mut plus = base;
            plus[i] += eps;
            let mut minus = base;
            minus[i] -= eps;
            let (lp, _) = softmax_cross_entropy(&logits(&plus, 2, 3), &labels).unwrap();
            let (lm, _) = softmax_cross_entropy(&logits(&minus, 2, 3), &labels).unwrap();
            let numeric = (lp - lm) / (2.0 * eps);
            assert!((numeric - g.as_slice()[i]).abs() < 1e-3, "i={i}");
        }
    }

    #[test]
    fn ce_validates_inputs() {
        let z = logits(&[0.0; 4], 2, 2);
        assert!(matches!(softmax_cross_entropy(&z, &[0]), Err(NnError::BatchMismatch { .. })));
        assert!(matches!(
            softmax_cross_entropy(&z, &[0, 5]),
            Err(NnError::BadLabel { label: 5, classes: 2 })
        ));
    }

    #[test]
    fn distill_reduces_to_ce_when_beta_zero() {
        let zs = logits(&[0.4, -0.4, 0.1, 0.2], 2, 2);
        let zt = logits(&[1.0, -1.0, 0.3, -0.3], 2, 2);
        let cfg = DistillConfig { temperature: 20.0, beta: 0.0, mode: DistillMode::Exact };
        let (l1, g1) = distillation_loss(&zs, &zt, &[0, 1], &cfg).unwrap();
        let (l2, g2) = softmax_cross_entropy(&zs, &[0, 1]).unwrap();
        assert!((l1 - l2).abs() < 1e-6);
        assert_eq!(g1.as_slice(), g2.as_slice());
    }

    #[test]
    fn distill_exact_gradient_matches_finite_difference() {
        let base = [0.3f32, -0.7, 1.2, 0.1, 0.9, -0.2];
        let teacher = [0.5f32, -0.5, 0.8, -0.1, 0.4, 0.0];
        let labels = [2usize, 0];
        let cfg = DistillConfig { temperature: 3.0, beta: 0.7, mode: DistillMode::Exact };
        let zt = logits(&teacher, 2, 3);
        let (_, g) = distillation_loss(&logits(&base, 2, 3), &zt, &labels, &cfg).unwrap();
        let eps = 1e-3;
        for i in 0..6 {
            let mut plus = base;
            plus[i] += eps;
            let mut minus = base;
            minus[i] -= eps;
            let (lp, _) = distillation_loss(&logits(&plus, 2, 3), &zt, &labels, &cfg).unwrap();
            let (lm, _) = distillation_loss(&logits(&minus, 2, 3), &zt, &labels, &cfg).unwrap();
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - g.as_slice()[i]).abs() < 2e-3,
                "i={i} numeric={numeric} analytic={}",
                g.as_slice()[i]
            );
        }
    }

    #[test]
    fn paper_approximation_tracks_exact_at_high_temperature() {
        // Equation 2 is derived for τ ≫ |z|; verify the two gradients agree
        // to first order there.
        let zs = logits(&[0.3, -0.3, 0.05, -0.05], 2, 2);
        let zt = logits(&[0.2, -0.2, -0.1, 0.1], 2, 2);
        let labels = [0usize, 1];
        let exact = DistillConfig { temperature: 50.0, beta: 1.0, mode: DistillMode::Exact };
        let approx = DistillConfig { temperature: 50.0, beta: 1.0, mode: DistillMode::PaperApprox };
        let (_, ge) = distillation_loss(&zs, &zt, &labels, &exact).unwrap();
        let (_, ga) = distillation_loss(&zs, &zt, &labels, &approx).unwrap();
        for (a, b) in ge.as_slice().iter().zip(ga.as_slice()) {
            assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
    }

    #[test]
    fn distill_pulls_student_toward_teacher() {
        // With pure soft loss, the gradient should push z_S toward z_T.
        let zs = logits(&[1.0, -1.0], 1, 2);
        let zt = logits(&[-1.0, 1.0], 1, 2);
        let cfg = DistillConfig { temperature: 2.0, beta: 1.0, mode: DistillMode::Exact };
        let (_, g) = distillation_loss(&zs, &zt, &[0], &cfg).unwrap();
        // Soft component wants z_S[0] down... but hard label wants it up;
        // isolate by comparing to beta=0 gradient.
        let cfg0 = DistillConfig { beta: 0.0, ..cfg };
        let (_, g0) = distillation_loss(&zs, &zt, &[0], &cfg0).unwrap();
        let soft0 = g.as_slice()[0] - g0.as_slice()[0];
        let soft1 = g.as_slice()[1] - g0.as_slice()[1];
        assert!(soft0 > 0.0, "teacher prefers class 1, so z_S[0] must shrink");
        assert!(soft1 < 0.0, "z_S[1] must grow toward the teacher");
    }

    #[test]
    fn config_validation() {
        assert!(DistillConfig::paper().validate().is_ok());
        assert!(DistillConfig { temperature: 0.0, ..DistillConfig::paper() }.validate().is_err());
        assert!(DistillConfig { beta: -0.1, ..DistillConfig::paper() }.validate().is_err());
    }

    #[test]
    fn distill_rejects_mismatched_teacher() {
        let zs = logits(&[0.0; 4], 2, 2);
        let zt = logits(&[0.0; 6], 2, 3);
        let cfg = DistillConfig::paper();
        assert!(distillation_loss(&zs, &zt, &[0, 1], &cfg).is_err());
    }
}
