//! Parameter-free layers: ReLU, flatten and dropout.

use mfdfp_tensor::{Shape, Tensor, TensorRng};

use crate::error::Result;
use crate::layer::Phase;

/// Rectified linear unit, `y = max(0, x)`.
#[derive(Debug, Clone, Default)]
pub struct Relu {
    mask: Option<Vec<bool>>,
}

impl Relu {
    /// Creates a ReLU layer.
    pub fn new() -> Self {
        Relu { mask: None }
    }

    /// Forward pass; caches the activation mask when training.
    pub fn forward(&mut self, x: &Tensor, phase: Phase) -> Result<Tensor> {
        if phase == Phase::Train {
            self.mask = Some(x.as_slice().iter().map(|&v| v > 0.0).collect());
        }
        Ok(x.map(|v| v.max(0.0)))
    }

    /// Backward pass: zeroes gradient where the input was non-positive.
    ///
    /// # Panics
    ///
    /// Panics if called without a preceding training-phase forward pass.
    pub fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let mask = self.mask.as_ref().expect("relu backward without cached forward mask");
        debug_assert_eq!(mask.len(), grad_out.len());
        let data =
            grad_out.as_slice().iter().zip(mask).map(|(&g, &m)| if m { g } else { 0.0 }).collect();
        Ok(Tensor::from_vec(data, grad_out.shape().clone())?)
    }
}

/// Flattens `N×…` inputs to `N×features`, remembering the original shape
/// for the backward pass.
#[derive(Debug, Clone, Default)]
pub struct Flatten {
    cached_shape: Option<Shape>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Flatten { cached_shape: None }
    }

    /// Forward pass: reshape to `N×(rest)`.
    pub fn forward(&mut self, x: &Tensor, phase: Phase) -> Result<Tensor> {
        let n = x.shape().dim(0);
        let per = x.len() / n.max(1);
        if phase == Phase::Train {
            self.cached_shape = Some(x.shape().clone());
        }
        Ok(x.reshape([n, per])?)
    }

    /// Backward pass: restore the cached input shape.
    ///
    /// # Panics
    ///
    /// Panics if called without a preceding training-phase forward pass.
    pub fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let shape =
            self.cached_shape.as_ref().expect("flatten backward without cached forward shape");
        Ok(grad_out.reshape(shape.clone())?)
    }
}

/// Quantizes activations onto a fixed-point grid in the forward pass and
/// passes gradients straight through in the backward pass (the
/// straight-through estimator), zeroing them where the activation
/// saturated.
///
/// This is how the Phase-1/2 *working network* rounds "the intermediate
/// signals to 8-bit dynamic fixed-point": `mfdfp-core` inserts one
/// `FakeQuant` per layer boundary with `step`/`min`/`max` derived from the
/// calibrated [`DfpFormat`](../../mfdfp_dfp/struct.DfpFormat.html) of that
/// boundary. Keeping the layer in plain `f32` terms leaves `mfdfp-nn`
/// independent of the fixed-point crate.
#[derive(Debug, Clone)]
pub struct FakeQuant {
    step: f32,
    min: f32,
    max: f32,
    mask: Option<Vec<bool>>,
}

impl FakeQuant {
    /// Creates a fake-quantization layer with grid `step` and saturation
    /// bounds `[min, max]`.
    ///
    /// # Panics
    ///
    /// Panics unless `step > 0` and `min < max`.
    pub fn new(step: f32, min: f32, max: f32) -> Self {
        assert!(step > 0.0, "quantization step must be positive");
        assert!(min < max, "quantization range must be non-empty");
        FakeQuant { step, min, max, mask: None }
    }

    /// The grid step (one LSB).
    pub fn step(&self) -> f32 {
        self.step
    }

    /// The saturation bounds.
    pub fn range(&self) -> (f32, f32) {
        (self.min, self.max)
    }

    fn quantize_value(&self, x: f32) -> f32 {
        let scaled = x / self.step;
        let rounded = if scaled >= 0.0 { (scaled + 0.5).floor() } else { (scaled - 0.5).ceil() };
        (rounded * self.step).clamp(self.min, self.max)
    }

    /// Forward pass: snap to grid and saturate. Caches the in-range mask
    /// when training.
    pub fn forward(&mut self, x: &Tensor, phase: Phase) -> Result<Tensor> {
        if phase == Phase::Train {
            self.mask =
                Some(x.as_slice().iter().map(|&v| v >= self.min && v <= self.max).collect());
        }
        Ok(x.map(|v| self.quantize_value(v)))
    }

    /// Backward pass: straight-through inside the representable range,
    /// zero where the forward pass saturated.
    ///
    /// # Panics
    ///
    /// Panics if called without a preceding training-phase forward pass.
    pub fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let mask = self.mask.as_ref().expect("fake-quant backward without cached forward mask");
        let data =
            grad_out.as_slice().iter().zip(mask).map(|(&g, &m)| if m { g } else { 0.0 }).collect();
        Ok(Tensor::from_vec(data, grad_out.shape().clone())?)
    }
}

/// Inverted dropout: at train time each activation is zeroed with
/// probability `p` and survivors are scaled by `1/(1−p)`, so evaluation
/// needs no rescaling (AlexNet uses `p = 0.5` on its first two FC layers).
#[derive(Debug, Clone)]
pub struct Dropout {
    p: f32,
    rng: TensorRng,
    mask: Option<Vec<f32>>,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `p` and its own
    /// deterministic RNG stream.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p < 1`.
    pub fn new(p: f32, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&p), "dropout probability must be in [0, 1)");
        Dropout { p, rng: TensorRng::seed_from(seed), mask: None }
    }

    /// Drop probability.
    pub fn probability(&self) -> f32 {
        self.p
    }

    /// Forward pass; identity at eval time.
    pub fn forward(&mut self, x: &Tensor, phase: Phase) -> Result<Tensor> {
        if phase == Phase::Eval || self.p == 0.0 {
            self.mask = None;
            return Ok(x.clone());
        }
        let keep = 1.0 - self.p;
        let scale = 1.0 / keep;
        let mask: Vec<f32> =
            (0..x.len()).map(|_| if self.rng.coin(keep) { scale } else { 0.0 }).collect();
        let data = x.as_slice().iter().zip(&mask).map(|(&v, &m)| v * m).collect();
        let out = Tensor::from_vec(data, x.shape().clone())?;
        self.mask = Some(mask);
        Ok(out)
    }

    /// Backward pass: applies the same mask to the gradient.
    ///
    /// # Panics
    ///
    /// Panics if called without a preceding training-phase forward pass.
    pub fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let mask = self.mask.as_ref().expect("dropout backward without cached forward mask");
        let data = grad_out.as_slice().iter().zip(mask).map(|(&g, &m)| g * m).collect();
        Ok(Tensor::from_vec(data, grad_out.shape().clone())?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negatives() {
        let mut r = Relu::new();
        let x = Tensor::from_slice(&[-1.0, 0.0, 2.0]);
        let y = r.forward(&x, Phase::Eval).unwrap();
        assert_eq!(y.as_slice(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn relu_backward_masks_gradient() {
        let mut r = Relu::new();
        let x = Tensor::from_slice(&[-1.0, 0.5, 0.0]);
        r.forward(&x, Phase::Train).unwrap();
        let g = r.backward(&Tensor::from_slice(&[1.0, 1.0, 1.0])).unwrap();
        assert_eq!(g.as_slice(), &[0.0, 1.0, 0.0]);
    }

    #[test]
    fn flatten_round_trip() {
        let mut f = Flatten::new();
        let x = Tensor::zeros([2, 3, 4, 4]);
        let y = f.forward(&x, Phase::Train).unwrap();
        assert_eq!(y.shape().dims(), &[2, 48]);
        let g = f.backward(&y).unwrap();
        assert_eq!(g.shape().dims(), &[2, 3, 4, 4]);
    }

    #[test]
    fn dropout_eval_is_identity() {
        let mut d = Dropout::new(0.5, 42);
        let x = Tensor::from_slice(&[1.0, 2.0, 3.0]);
        let y = d.forward(&x, Phase::Eval).unwrap();
        assert_eq!(y.as_slice(), x.as_slice());
    }

    #[test]
    fn dropout_train_preserves_expectation() {
        let mut d = Dropout::new(0.5, 42);
        let x = Tensor::ones([10_000]);
        let y = d.forward(&x, Phase::Train).unwrap();
        // Inverted dropout: E[y] == x.
        assert!((y.mean() - 1.0).abs() < 0.05, "mean {}", y.mean());
        // Survivors are scaled by 2.
        assert!(y.as_slice().iter().all(|&v| v == 0.0 || v == 2.0));
    }

    #[test]
    fn dropout_backward_uses_same_mask() {
        let mut d = Dropout::new(0.5, 7);
        let x = Tensor::ones([100]);
        let y = d.forward(&x, Phase::Train).unwrap();
        let g = d.backward(&Tensor::ones([100])).unwrap();
        assert_eq!(y.as_slice(), g.as_slice());
    }

    #[test]
    fn dropout_zero_probability_is_identity_in_train() {
        let mut d = Dropout::new(0.0, 7);
        let x = Tensor::from_slice(&[1.0, -2.0]);
        let y = d.forward(&x, Phase::Train).unwrap();
        assert_eq!(y.as_slice(), x.as_slice());
    }

    #[test]
    #[should_panic(expected = "dropout probability")]
    fn dropout_rejects_p_one() {
        let _ = Dropout::new(1.0, 1);
    }
}

#[cfg(test)]
mod fake_quant_tests {
    use super::*;

    #[test]
    fn snaps_to_grid_round_half_away() {
        let mut fq = FakeQuant::new(0.25, -2.0, 2.0);
        let x = Tensor::from_slice(&[0.3, 0.125, -0.125, 1.99, 5.0, -5.0]);
        let y = fq.forward(&x, Phase::Eval).unwrap();
        assert_eq!(y.as_slice(), &[0.25, 0.25, -0.25, 2.0, 2.0, -2.0]);
    }

    #[test]
    fn ste_passes_gradient_in_range_only() {
        let mut fq = FakeQuant::new(0.25, -1.0, 1.0);
        let x = Tensor::from_slice(&[0.5, 3.0, -3.0]);
        fq.forward(&x, Phase::Train).unwrap();
        let g = fq.backward(&Tensor::from_slice(&[1.0, 1.0, 1.0])).unwrap();
        assert_eq!(g.as_slice(), &[1.0, 0.0, 0.0]);
    }

    #[test]
    fn quantized_values_are_idempotent() {
        let mut fq = FakeQuant::new(0.125, -4.0, 4.0);
        let x = Tensor::from_slice(&[0.377, -1.22, 3.999]);
        let once = fq.forward(&x, Phase::Eval).unwrap();
        let twice = fq.forward(&once, Phase::Eval).unwrap();
        assert_eq!(once.as_slice(), twice.as_slice());
    }

    #[test]
    #[should_panic(expected = "step must be positive")]
    fn rejects_zero_step() {
        let _ = FakeQuant::new(0.0, -1.0, 1.0);
    }
}

/// Hyperbolic tangent activation (the paper's Section 2 lists `tanh` among
/// the non-linearity options; the benchmark networks use ReLU).
#[derive(Debug, Clone, Default)]
pub struct Tanh {
    cached_output: Option<Tensor>,
}

impl Tanh {
    /// Creates a tanh layer.
    pub fn new() -> Self {
        Tanh { cached_output: None }
    }

    /// Forward pass; caches the output when training (the derivative is
    /// `1 − y²`).
    pub fn forward(&mut self, x: &Tensor, phase: Phase) -> Result<Tensor> {
        let y = x.map(f32::tanh);
        if phase == Phase::Train {
            self.cached_output = Some(y.clone());
        }
        Ok(y)
    }

    /// Backward pass: `g · (1 − y²)`.
    ///
    /// # Panics
    ///
    /// Panics if called without a preceding training-phase forward pass.
    pub fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let y = self.cached_output.as_ref().expect("tanh backward without cached forward output");
        Ok(grad_out.zip_map(y, |g, y| g * (1.0 - y * y))?)
    }
}

/// Logistic sigmoid activation, `y = 1/(1+e^{−x})`.
#[derive(Debug, Clone, Default)]
pub struct Sigmoid {
    cached_output: Option<Tensor>,
}

impl Sigmoid {
    /// Creates a sigmoid layer.
    pub fn new() -> Self {
        Sigmoid { cached_output: None }
    }

    /// Forward pass; caches the output when training (the derivative is
    /// `y(1 − y)`).
    pub fn forward(&mut self, x: &Tensor, phase: Phase) -> Result<Tensor> {
        let y = x.map(|v| 1.0 / (1.0 + (-v).exp()));
        if phase == Phase::Train {
            self.cached_output = Some(y.clone());
        }
        Ok(y)
    }

    /// Backward pass: `g · y · (1 − y)`.
    ///
    /// # Panics
    ///
    /// Panics if called without a preceding training-phase forward pass.
    pub fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let y =
            self.cached_output.as_ref().expect("sigmoid backward without cached forward output");
        Ok(grad_out.zip_map(y, |g, y| g * y * (1.0 - y))?)
    }
}

#[cfg(test)]
mod smooth_activation_tests {
    use super::*;

    #[test]
    fn tanh_matches_std() {
        let mut t = Tanh::new();
        let x = Tensor::from_slice(&[-2.0, 0.0, 0.5]);
        let y = t.forward(&x, Phase::Eval).unwrap();
        for (a, b) in y.as_slice().iter().zip(x.as_slice()) {
            assert!((a - b.tanh()).abs() < 1e-7);
        }
    }

    #[test]
    fn tanh_gradient_matches_finite_difference() {
        let mut t = Tanh::new();
        let x = Tensor::from_slice(&[-1.2, 0.0, 0.7, 2.5]);
        t.forward(&x, Phase::Train).unwrap();
        let g = t.backward(&Tensor::ones([4])).unwrap();
        let eps = 1e-3;
        for i in 0..4 {
            let numeric =
                ((x.as_slice()[i] + eps).tanh() - (x.as_slice()[i] - eps).tanh()) / (2.0 * eps);
            assert!((numeric - g.as_slice()[i]).abs() < 1e-4, "i={i}");
        }
    }

    #[test]
    fn sigmoid_range_and_midpoint() {
        let mut s = Sigmoid::new();
        let x = Tensor::from_slice(&[-10.0, 0.0, 10.0]);
        let y = s.forward(&x, Phase::Eval).unwrap();
        assert!(y.as_slice()[0] < 0.001);
        assert!((y.as_slice()[1] - 0.5).abs() < 1e-6);
        assert!(y.as_slice()[2] > 0.999);
    }

    #[test]
    fn sigmoid_gradient_matches_finite_difference() {
        let mut s = Sigmoid::new();
        let x = Tensor::from_slice(&[-0.8, 0.3, 1.9]);
        s.forward(&x, Phase::Train).unwrap();
        let g = s.backward(&Tensor::ones([3])).unwrap();
        let sig = |v: f32| 1.0 / (1.0 + (-v).exp());
        let eps = 1e-3;
        for i in 0..3 {
            let numeric = (sig(x.as_slice()[i] + eps) - sig(x.as_slice()[i] - eps)) / (2.0 * eps);
            assert!((numeric - g.as_slice()[i]).abs() < 1e-4, "i={i}");
        }
    }
}
