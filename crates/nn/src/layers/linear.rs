//! Trainable fully-connected (inner-product) layer.

use mfdfp_tensor::{gemm, Shape, Tensor, TensorRng, Transpose};

use crate::error::{NnError, Result};
use crate::layer::Phase;

/// A fully-connected layer `y = W x + b`.
///
/// Weights are stored `out×in`; inputs of any rank are flattened per-sample
/// to `in` features, so a `Linear` can directly follow a convolution stack
/// without an explicit flatten (though the model zoo inserts one for
/// clarity).
#[derive(Debug, Clone)]
pub struct Linear {
    name: String,
    in_features: usize,
    out_features: usize,
    weights: Tensor,
    bias: Tensor,
    grad_w: Tensor,
    grad_b: Tensor,
    cached_input: Option<Tensor>,
}

impl Linear {
    /// Creates a fully-connected layer with Xavier-initialised weights.
    pub fn new(
        name: impl Into<String>,
        in_features: usize,
        out_features: usize,
        rng: &mut TensorRng,
    ) -> Self {
        let weights = rng.xavier([out_features, in_features], in_features, out_features);
        Linear {
            name: name.into(),
            in_features,
            out_features,
            bias: Tensor::zeros([out_features]),
            grad_w: Tensor::zeros([out_features, in_features]),
            grad_b: Tensor::zeros([out_features]),
            weights,
            cached_input: None,
        }
    }

    /// The layer's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// Immutable weight access (`out×in`).
    pub fn weights(&self) -> &Tensor {
        &self.weights
    }

    /// Mutable weight access (the quantizer swaps weights here).
    pub fn weights_mut(&mut self) -> &mut Tensor {
        &mut self.weights
    }

    /// Immutable bias access.
    pub fn bias(&self) -> &Tensor {
        &self.bias
    }

    /// Mutable bias access.
    pub fn bias_mut(&mut self) -> &mut Tensor {
        &mut self.bias
    }

    /// Number of trainable parameters.
    pub fn param_count(&self) -> usize {
        self.weights.len() + self.bias.len()
    }

    fn flatten_batch(&self, x: &Tensor) -> Result<Tensor> {
        let n = x.shape().dim(0);
        let per = x.len() / n.max(1);
        if per != self.in_features {
            return Err(NnError::BadConfig(format!(
                "linear layer {} expects {} features, input {} provides {per}",
                self.name,
                self.in_features,
                x.shape()
            )));
        }
        Ok(x.reshape([n, self.in_features])?)
    }

    /// Forward pass `Y = X Wᵀ + b`; caches the (flattened) input when
    /// training.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadConfig`] if the per-sample feature count does
    /// not match `in_features`.
    pub fn forward(&mut self, x: &Tensor, phase: Phase) -> Result<Tensor> {
        let x2 = self.flatten_batch(x)?;
        let mut y = gemm(&x2, Transpose::No, &self.weights, Transpose::Yes)?;
        let n = y.shape().dim(0);
        {
            let yd = y.as_mut_slice();
            let bd = self.bias.as_slice();
            for r in 0..n {
                for (o, &b) in
                    yd[r * self.out_features..(r + 1) * self.out_features].iter_mut().zip(bd)
                {
                    *o += b;
                }
            }
        }
        if phase == Phase::Train {
            self.cached_input = Some(x2);
        }
        Ok(y)
    }

    /// Backward pass: accumulates gradients, returns input gradient with
    /// the flattened `N×in` shape.
    ///
    /// # Panics
    ///
    /// Panics if called without a preceding training-phase forward pass.
    pub fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let x = self.cached_input.as_ref().expect("linear backward without cached forward input");
        let n = grad_out.shape().dim(0);
        let go = grad_out.reshape([n, self.out_features])?;
        // dW = dYᵀ × X  (out×in)
        let dw = gemm(&go, Transpose::Yes, x, Transpose::No)?;
        self.grad_w.axpy(1.0, &dw)?;
        // db = column sums of dY
        {
            let gb = self.grad_b.as_mut_slice();
            let god = go.as_slice();
            for r in 0..n {
                for (b, &g) in
                    gb.iter_mut().zip(&god[r * self.out_features..(r + 1) * self.out_features])
                {
                    *b += g;
                }
            }
        }
        // dX = dY × W  (n×in)
        let gx = gemm(&go, Transpose::No, &self.weights, Transpose::No)?;
        Ok(gx)
    }

    /// Visits `(value, grad)` parameter pairs: weights first, then bias.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
        f(&mut self.weights, &mut self.grad_w);
        f(&mut self.bias, &mut self.grad_b);
    }

    /// Zeroes accumulated gradients.
    pub fn zero_grads(&mut self) {
        self.grad_w.zero();
        self.grad_b.zero();
    }

    /// Expected output shape for a batch of `n`.
    pub fn output_shape(&self, n: usize) -> Shape {
        Shape::d2(n, self.out_features)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_known_values() {
        let mut rng = TensorRng::seed_from(1);
        let mut l = Linear::new("fc", 2, 2, &mut rng);
        *l.weights_mut() = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], Shape::d2(2, 2)).unwrap();
        *l.bias_mut() = Tensor::from_slice(&[0.5, -0.5]);
        let x = Tensor::from_vec(vec![1.0, 1.0], Shape::d2(1, 2)).unwrap();
        let y = l.forward(&x, Phase::Eval).unwrap();
        assert_eq!(y.as_slice(), &[3.5, 6.5]); // [1+2+0.5, 3+4-0.5]
    }

    #[test]
    fn accepts_4d_input_by_flattening() {
        let mut rng = TensorRng::seed_from(1);
        let mut l = Linear::new("fc", 12, 4, &mut rng);
        let x = Tensor::zeros([2, 3, 2, 2]);
        let y = l.forward(&x, Phase::Eval).unwrap();
        assert_eq!(y.shape().dims(), &[2, 4]);
    }

    #[test]
    fn rejects_wrong_feature_count() {
        let mut rng = TensorRng::seed_from(1);
        let mut l = Linear::new("fc", 10, 4, &mut rng);
        let x = Tensor::zeros([2, 3]);
        assert!(matches!(l.forward(&x, Phase::Eval), Err(NnError::BadConfig(_))));
    }

    #[test]
    fn gradients_match_finite_difference() {
        let mut rng = TensorRng::seed_from(5);
        let mut l = Linear::new("fc", 3, 2, &mut rng);
        let x = rng.gaussian([4, 3], 0.0, 1.0);
        let y = l.forward(&x, Phase::Train).unwrap();
        let go = Tensor::ones(y.shape().clone());
        let gx = l.backward(&go).unwrap();

        let eps = 1e-2;
        // Weight gradient check.
        for idx in [0usize, 3, 5] {
            let orig = l.weights.as_slice()[idx];
            l.weights.as_mut_slice()[idx] = orig + eps;
            let up = l.forward(&x, Phase::Eval).unwrap().sum();
            l.weights.as_mut_slice()[idx] = orig - eps;
            let down = l.forward(&x, Phase::Eval).unwrap().sum();
            l.weights.as_mut_slice()[idx] = orig;
            let numeric = (up - down) / (2.0 * eps);
            assert!((numeric - l.grad_w.as_slice()[idx]).abs() < 1e-2);
        }
        // Input gradient: dsum/dx = column sums of W.
        for j in 0..3 {
            let expect: f32 = (0..2).map(|i| l.weights.at(&[i, j])).sum();
            for r in 0..4 {
                assert!((gx.at(&[r, j]) - expect).abs() < 1e-5);
            }
        }
        // Bias gradient of a sum-loss is the batch size.
        for &g in l.grad_b.as_slice() {
            assert!((g - 4.0).abs() < 1e-5);
        }
    }

    #[test]
    fn param_count() {
        let mut rng = TensorRng::seed_from(1);
        let l = Linear::new("fc", 64, 10, &mut rng);
        assert_eq!(l.param_count(), 64 * 10 + 10);
    }
}
