//! Concrete layer implementations.

mod activation;
mod conv;
mod linear;
mod lrn;
mod pool;

pub use activation::{Dropout, FakeQuant, Flatten, Relu, Sigmoid, Tanh};
pub use conv::Conv2d;
pub use linear::Linear;
pub use lrn::Lrn;
pub use pool::Pool;
