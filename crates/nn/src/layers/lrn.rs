//! Local response normalization (across channels).
//!
//! AlexNet's original recipe includes LRN; the paper *removes* those layers
//! ("we remove all local response normalization layers since they are not
//! amenable to our multiplier-free hardware implementation"). The layer is
//! implemented here so the ablation bench can quantify exactly what that
//! removal costs in the float baseline.

use mfdfp_tensor::Tensor;

use crate::error::{NnError, Result};
use crate::layer::Phase;

/// Across-channel local response normalization:
/// `y_i = x_i · (k + (α/n) Σ_{j∈window(i)} x_j²)^(−β)`.
#[derive(Debug, Clone)]
pub struct Lrn {
    size: usize,
    alpha: f32,
    beta: f32,
    k: f32,
    cached: Option<LrnCache>,
}

#[derive(Debug, Clone)]
struct LrnCache {
    input: Tensor,
    denom: Tensor,
}

impl Lrn {
    /// Creates an LRN layer with window `size` (channels), scale `alpha`,
    /// exponent `beta` and bias `k` (AlexNet: 5, 1e-4, 0.75, 1.0).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadConfig`] for a zero window or non-positive `k`.
    pub fn new(size: usize, alpha: f32, beta: f32, k: f32) -> Result<Self> {
        if size == 0 {
            return Err(NnError::BadConfig("LRN window must be positive".into()));
        }
        if k <= 0.0 {
            return Err(NnError::BadConfig("LRN bias k must be positive".into()));
        }
        Ok(Lrn { size, alpha, beta, k, cached: None })
    }

    /// AlexNet's LRN hyper-parameters.
    pub fn alexnet() -> Self {
        Lrn::new(5, 1e-4, 0.75, 1.0).expect("constants are valid")
    }

    /// Window size in channels.
    pub fn size(&self) -> usize {
        self.size
    }

    fn denominators(&self, x: &Tensor) -> Tensor {
        let (n, c, h, w) = x.shape().as_nchw();
        let half = self.size / 2;
        let xd = x.as_slice();
        let mut denom = Tensor::zeros(x.shape().clone());
        let dd = denom.as_mut_slice();
        let plane = h * w;
        for s in 0..n {
            for ci in 0..c {
                let lo = ci.saturating_sub(half);
                let hi = (ci + half).min(c - 1);
                for p in 0..plane {
                    let mut acc = 0.0f32;
                    for cj in lo..=hi {
                        let v = xd[(s * c + cj) * plane + p];
                        acc += v * v;
                    }
                    dd[(s * c + ci) * plane + p] = self.k + self.alpha / self.size as f32 * acc;
                }
            }
        }
        denom
    }

    /// Forward pass; caches input and denominators when training.
    ///
    /// # Errors
    ///
    /// Returns a shape error if `x` is not rank-4 NCHW.
    pub fn forward(&mut self, x: &Tensor, phase: Phase) -> Result<Tensor> {
        if x.shape().rank() != 4 {
            return Err(NnError::BadConfig(format!("LRN expects NCHW input, got {}", x.shape())));
        }
        let denom = self.denominators(x);
        let y = x.zip_map(&denom, |xi, d| xi * d.powf(-self.beta))?;
        if phase == Phase::Train {
            self.cached = Some(LrnCache { input: x.clone(), denom });
        }
        Ok(y)
    }

    /// Backward pass using the cached denominators.
    ///
    /// For `y_i = x_i d_i^{−β}` with `d_i = k + (α/n)Σ x_j²`:
    /// `∂L/∂x_m = g_m d_m^{−β} − (2αβ/n) x_m Σ_{i∋m} g_i x_i d_i^{−β−1}`.
    ///
    /// # Panics
    ///
    /// Panics if called without a preceding training-phase forward pass.
    pub fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let cache = self.cached.as_ref().expect("LRN backward without cached forward state");
        let x = &cache.input;
        let denom = &cache.denom;
        let (n, c, h, w) = x.shape().as_nchw();
        let half = self.size / 2;
        let plane = h * w;
        let xd = x.as_slice();
        let dd = denom.as_slice();
        let gd = grad_out.as_slice();
        // t_i = g_i · x_i · d_i^{−β−1}, precomputed per element.
        let t: Vec<f32> =
            (0..x.len()).map(|i| gd[i] * xd[i] * dd[i].powf(-self.beta - 1.0)).collect();
        let mut gx = Tensor::zeros(x.shape().clone());
        let gxd = gx.as_mut_slice();
        let scale = 2.0 * self.alpha * self.beta / self.size as f32;
        for s in 0..n {
            for cm in 0..c {
                // i ∋ m ⇔ |i − m| ≤ half
                let lo = cm.saturating_sub(half);
                let hi = (cm + half).min(c - 1);
                for p in 0..plane {
                    let m_off = (s * c + cm) * plane + p;
                    let mut cross = 0.0f32;
                    for ci in lo..=hi {
                        cross += t[(s * c + ci) * plane + p];
                    }
                    gxd[m_off] = gd[m_off] * dd[m_off].powf(-self.beta) - scale * xd[m_off] * cross;
                }
            }
        }
        Ok(gx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(Lrn::new(0, 1e-4, 0.75, 1.0).is_err());
        assert!(Lrn::new(5, 1e-4, 0.75, 0.0).is_err());
        assert!(Lrn::new(5, 1e-4, 0.75, 1.0).is_ok());
    }

    #[test]
    fn identity_when_alpha_zero() {
        let mut lrn = Lrn::new(3, 0.0, 0.75, 1.0).unwrap();
        let x = Tensor::from_fn([1, 4, 2, 2], |i| i as f32 * 0.1);
        let y = lrn.forward(&x, Phase::Eval).unwrap();
        for (a, b) in y.as_slice().iter().zip(x.as_slice()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn normalizes_large_activations_downward() {
        let mut lrn = Lrn::alexnet();
        let x = Tensor::full([1, 5, 1, 1], 10.0);
        let y = lrn.forward(&x, Phase::Eval).unwrap();
        for &v in y.as_slice() {
            assert!(v < 10.0);
            assert!(v > 9.0); // alpha is tiny
        }
    }

    #[test]
    fn window_is_local_in_channels() {
        // Only the centre channel is hot; far channels keep denom == k.
        let mut lrn = Lrn::new(3, 1.0, 1.0, 1.0).unwrap();
        let mut x = Tensor::zeros([1, 7, 1, 1]);
        x.as_mut_slice()[3] = 3.0;
        x.as_mut_slice()[0] = 1.0;
        x.as_mut_slice()[6] = 1.0;
        let y = lrn.forward(&x, Phase::Eval).unwrap();
        // Channel 0 is out of channel-3's window: d = 1 + (1/3)(1²) = 4/3.
        assert!((y.as_slice()[0] - 1.0 / (4.0 / 3.0)).abs() < 1e-5);
        // Channel 3: d = 1 + (1/3)(9) = 4 → y = 3/4 … wait uses window {2,3,4} = 9 → d = 1+3 = 4.
        assert!((y.as_slice()[3] - 3.0 / 4.0).abs() < 1e-5);
    }

    #[test]
    fn backward_matches_finite_difference() {
        let mut lrn = Lrn::new(3, 0.5, 0.75, 2.0).unwrap();
        let mut x = Tensor::from_fn([1, 4, 2, 2], |i| ((i as f32) * 0.37).sin());
        let y = lrn.forward(&x, Phase::Train).unwrap();
        let gx = lrn.backward(&Tensor::ones(y.shape().clone())).unwrap();
        let eps = 1e-3;
        for idx in 0..x.len() {
            let orig = x.as_slice()[idx];
            x.as_mut_slice()[idx] = orig + eps;
            let up = lrn.forward(&x, Phase::Eval).unwrap().sum();
            x.as_mut_slice()[idx] = orig - eps;
            let down = lrn.forward(&x, Phase::Eval).unwrap().sum();
            x.as_mut_slice()[idx] = orig;
            let numeric = (up - down) / (2.0 * eps);
            assert!(
                (numeric - gx.as_slice()[idx]).abs() < 1e-2,
                "idx {idx}: numeric {numeric} vs analytic {}",
                gx.as_slice()[idx]
            );
        }
    }

    #[test]
    fn rejects_non_nchw() {
        let mut lrn = Lrn::alexnet();
        assert!(lrn.forward(&Tensor::zeros([4, 4]), Phase::Eval).is_err());
    }
}
