//! Pooling layers wrapping the tensor-crate kernels.

use mfdfp_tensor::{pool_backward, pool_forward, PoolGeometry, PoolKind, Tensor};

use crate::error::Result;
use crate::layer::Phase;

/// A max- or average-pooling layer.
///
/// Caffe's cifar10-quick uses MAX for pool1 and AVE for pool2/pool3;
/// AlexNet uses MAX throughout — both flavours appear in the model zoo.
#[derive(Debug, Clone)]
pub struct Pool {
    name: String,
    kind: PoolKind,
    geom: PoolGeometry,
    cached_argmax: Option<Vec<usize>>,
}

impl Pool {
    /// Creates a pooling layer.
    pub fn new(name: impl Into<String>, kind: PoolKind, geom: PoolGeometry) -> Self {
        Pool { name: name.into(), kind, geom, cached_argmax: None }
    }

    /// The layer's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The pooling flavour.
    pub fn kind(&self) -> PoolKind {
        self.kind
    }

    /// The pooling geometry.
    pub fn geometry(&self) -> &PoolGeometry {
        &self.geom
    }

    /// Forward pass; caches argmax indices when training.
    pub fn forward(&mut self, x: &Tensor, phase: Phase) -> Result<Tensor> {
        let (y, argmax) = pool_forward(x, self.kind, &self.geom)?;
        if phase == Phase::Train {
            self.cached_argmax = Some(argmax);
        }
        Ok(y)
    }

    /// Backward pass.
    ///
    /// # Panics
    ///
    /// Panics for max pooling if called without a preceding training-phase
    /// forward pass.
    pub fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let argmax: &[usize] = match self.kind {
            PoolKind::Max => self
                .cached_argmax
                .as_deref()
                .expect("max-pool backward without cached forward argmax"),
            PoolKind::Avg => &[],
        };
        Ok(pool_backward(grad_out, self.kind, argmax, &self.geom)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfdfp_tensor::Shape;

    #[test]
    fn forward_backward_shapes() {
        let geom = PoolGeometry::new(2, 8, 8, 2, 2).unwrap();
        let mut p = Pool::new("pool", PoolKind::Max, geom);
        let x = Tensor::from_fn([3, 2, 8, 8], |i| i as f32 * 0.01);
        let y = p.forward(&x, Phase::Train).unwrap();
        assert_eq!(y.shape(), &Shape::nchw(3, 2, 4, 4));
        let g = p.backward(&Tensor::ones(y.shape().clone())).unwrap();
        assert_eq!(g.shape(), x.shape());
        // Max-pool gradient is a permutation matrix row: total preserved.
        assert_eq!(g.sum(), y.len() as f32);
    }

    #[test]
    fn avg_needs_no_cache() {
        let geom = PoolGeometry::new(1, 4, 4, 2, 2).unwrap();
        let mut p = Pool::new("pool", PoolKind::Avg, geom);
        let x = Tensor::ones([1, 1, 4, 4]);
        let _ = p.forward(&x, Phase::Eval).unwrap();
        // Backward after eval-mode forward is fine for avg.
        let g = p.backward(&Tensor::ones([1, 1, 2, 2])).unwrap();
        assert_eq!(g.sum(), 4.0);
    }
}
