//! Trainable 2-D convolution layer.

use mfdfp_tensor::{conv2d_backward, conv2d_forward, ConvGeometry, Tensor, TensorRng};

use crate::error::Result;
use crate::layer::Phase;

/// A 2-D convolution with bias, trained by backprop.
///
/// Weights are stored `OutC×InC×k×k`, bias `OutC`. The layer caches its
/// input during the forward pass; [`Conv2d::backward`] consumes the cache
/// and **accumulates** parameter gradients (callers zero them between
/// steps via the network).
#[derive(Debug, Clone)]
pub struct Conv2d {
    name: String,
    geom: ConvGeometry,
    weights: Tensor,
    bias: Tensor,
    grad_w: Tensor,
    grad_b: Tensor,
    cached_input: Option<Tensor>,
}

impl Conv2d {
    /// Creates a convolution with He-initialised weights and zero bias.
    pub fn new(name: impl Into<String>, geom: ConvGeometry, rng: &mut TensorRng) -> Self {
        let fan_in = geom.col_height();
        let weights = rng.he(geom.weight_dims().to_vec(), fan_in);
        Conv2d {
            name: name.into(),
            geom,
            bias: Tensor::zeros([geom.out_c]),
            grad_w: Tensor::zeros(weights.shape().clone()),
            grad_b: Tensor::zeros([geom.out_c]),
            weights,
            cached_input: None,
        }
    }

    /// The layer's name (used in reports and radix-point tables).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The convolution geometry.
    pub fn geometry(&self) -> &ConvGeometry {
        &self.geom
    }

    /// Immutable weight access (`OutC×InC×k×k`).
    pub fn weights(&self) -> &Tensor {
        &self.weights
    }

    /// Mutable weight access (the quantizer swaps weights here).
    pub fn weights_mut(&mut self) -> &mut Tensor {
        &mut self.weights
    }

    /// Immutable bias access.
    pub fn bias(&self) -> &Tensor {
        &self.bias
    }

    /// Mutable bias access.
    pub fn bias_mut(&mut self) -> &mut Tensor {
        &mut self.bias
    }

    /// Number of trainable parameters.
    pub fn param_count(&self) -> usize {
        self.weights.len() + self.bias.len()
    }

    /// Forward pass; caches the input when training.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the convolution kernel.
    pub fn forward(&mut self, x: &Tensor, phase: Phase) -> Result<Tensor> {
        let y = conv2d_forward(x, &self.weights, &self.bias, &self.geom)?;
        if phase == Phase::Train {
            self.cached_input = Some(x.clone());
        }
        Ok(y)
    }

    /// Backward pass: accumulates weight/bias gradients, returns the input
    /// gradient.
    ///
    /// # Panics
    ///
    /// Panics if called without a preceding training-phase forward pass.
    pub fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let x = self.cached_input.as_ref().expect("conv backward without cached forward input");
        let (gx, gw, gb) = conv2d_backward(x, &self.weights, grad_out, &self.geom)?;
        self.grad_w.axpy(1.0, &gw)?;
        self.grad_b.axpy(1.0, &gb)?;
        Ok(gx)
    }

    /// Visits `(value, grad)` parameter pairs: weights first, then bias.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
        f(&mut self.weights, &mut self.grad_w);
        f(&mut self.bias, &mut self.grad_b);
    }

    /// Zeroes accumulated gradients.
    pub fn zero_grads(&mut self) {
        self.grad_w.zero();
        self.grad_b.zero();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfdfp_tensor::Shape;

    fn small() -> (Conv2d, Tensor) {
        let mut rng = TensorRng::seed_from(3);
        let geom = ConvGeometry::new(2, 5, 5, 3, 3, 1, 1).unwrap();
        let layer = Conv2d::new("conv", geom, &mut rng);
        let x = rng.gaussian([2, 2, 5, 5], 0.0, 1.0);
        (layer, x)
    }

    #[test]
    fn forward_shape() {
        let (mut layer, x) = small();
        let y = layer.forward(&x, Phase::Eval).unwrap();
        assert_eq!(y.shape(), &Shape::nchw(2, 3, 5, 5));
    }

    #[test]
    fn eval_does_not_cache() {
        let (mut layer, x) = small();
        layer.forward(&x, Phase::Eval).unwrap();
        assert!(layer.cached_input.is_none());
        layer.forward(&x, Phase::Train).unwrap();
        assert!(layer.cached_input.is_some());
    }

    #[test]
    fn gradients_accumulate_until_zeroed() {
        let (mut layer, x) = small();
        let y = layer.forward(&x, Phase::Train).unwrap();
        let go = Tensor::ones(y.shape().clone());
        layer.backward(&go).unwrap();
        let g1 = layer.grad_w.clone();
        layer.forward(&x, Phase::Train).unwrap();
        layer.backward(&go).unwrap();
        // Second backward doubles the accumulated gradient.
        for (a, b) in layer.grad_w.as_slice().iter().zip(g1.as_slice()) {
            assert!((a - 2.0 * b).abs() < 1e-4);
        }
        layer.zero_grads();
        assert_eq!(layer.grad_w.sum(), 0.0);
    }

    #[test]
    fn param_count() {
        let (layer, _) = small();
        assert_eq!(layer.param_count(), 3 * 2 * 3 * 3 + 3);
    }

    #[test]
    fn visit_params_order_is_weights_then_bias() {
        let (mut layer, _) = small();
        let mut sizes = Vec::new();
        layer.visit_params(&mut |v, _| sizes.push(v.len()));
        assert_eq!(sizes, vec![54, 3]);
    }
}
