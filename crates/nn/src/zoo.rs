//! Model zoo: the paper's two benchmark topologies plus scaled-down
//! trainable variants for CPU-budget experiments.
//!
//! * [`cifar10_quick`] — the Caffe "CIFAR-10 quick" network the paper uses
//!   for its CIFAR-10 benchmark (the paper's reference \[2\], Krizhevsky).
//! * [`alexnet`] — AlexNet (reference \[20\]) with LRN layers removed, as the
//!   paper does ("we remove all local response normalization layers").
//!   Convolutions are ungrouped (single-GPU formulation), which slightly
//!   increases the parameter count over the grouped Caffe model; DESIGN.md
//!   documents the substitution.
//! * [`quick_custom`] / [`alexnet_like_small`] — reduced-width variants
//!   with the same layer *pattern*, used where full-scale CPU training
//!   would be infeasible (accuracy curves, tests).

use mfdfp_tensor::{ConvGeometry, PoolGeometry, PoolKind, TensorRng};

use crate::error::Result;
use crate::layer::Layer;
use crate::layers::{Conv2d, Dropout, Flatten, Linear, Lrn, Pool, Relu};
use crate::net::Network;

/// Builds the Caffe "CIFAR-10 quick" topology for 3×32×32 inputs:
///
/// `conv(5×5,32,p2) → maxpool(3,s2) → relu → conv(5×5,32,p2) → relu →
/// avgpool(3,s2) → conv(5×5,64,p2) → relu → avgpool(3,s2) → fc(64) →
/// fc(classes)`.
///
/// # Errors
///
/// Propagates geometry validation errors (none for the standard sizes).
pub fn cifar10_quick(classes: usize, rng: &mut TensorRng) -> Result<Network> {
    let mut net = Network::new("cifar10-quick");
    net.push(Layer::Conv(Conv2d::new("conv1", ConvGeometry::new(3, 32, 32, 32, 5, 1, 2)?, rng)));
    net.push(Layer::Pool(Pool::new("pool1", PoolKind::Max, PoolGeometry::new(32, 32, 32, 3, 2)?)));
    net.push(Layer::Relu(Relu::new()));
    net.push(Layer::Conv(Conv2d::new("conv2", ConvGeometry::new(32, 16, 16, 32, 5, 1, 2)?, rng)));
    net.push(Layer::Relu(Relu::new()));
    net.push(Layer::Pool(Pool::new("pool2", PoolKind::Avg, PoolGeometry::new(32, 16, 16, 3, 2)?)));
    net.push(Layer::Conv(Conv2d::new("conv3", ConvGeometry::new(32, 8, 8, 64, 5, 1, 2)?, rng)));
    net.push(Layer::Relu(Relu::new()));
    net.push(Layer::Pool(Pool::new("pool3", PoolKind::Avg, PoolGeometry::new(64, 8, 8, 3, 2)?)));
    net.push(Layer::Flatten(Flatten::new()));
    net.push(Layer::Linear(Linear::new("ip1", 64 * 4 * 4, 64, rng)));
    net.push(Layer::Linear(Linear::new("ip2", 64, classes, rng)));
    Ok(net)
}

/// Builds the Caffe "CIFAR-10 full" topology for 3×32×32 inputs — the
/// CIFAR-10 benchmark network of the paper (its Table 3 memory footprint,
/// 0.3417 MiB = 89,578 parameters × 4 B, identifies this network):
///
/// `conv(5×5,32,p2) → maxpool(3,s2) → relu → conv(5×5,32,p2) → relu →
/// avgpool(3,s2) → conv(5×5,64,p2) → relu → avgpool(3,s2) →
/// fc(classes)`.
///
/// The difference from [`cifar10_quick`]: a single inner-product layer
/// straight to the classes, no 64-unit hidden FC.
///
/// # Errors
///
/// Propagates geometry validation errors (none for the standard sizes).
pub fn cifar10_full(classes: usize, rng: &mut TensorRng) -> Result<Network> {
    let mut net = Network::new("cifar10-full");
    net.push(Layer::Conv(Conv2d::new("conv1", ConvGeometry::new(3, 32, 32, 32, 5, 1, 2)?, rng)));
    net.push(Layer::Pool(Pool::new("pool1", PoolKind::Max, PoolGeometry::new(32, 32, 32, 3, 2)?)));
    net.push(Layer::Relu(Relu::new()));
    net.push(Layer::Conv(Conv2d::new("conv2", ConvGeometry::new(32, 16, 16, 32, 5, 1, 2)?, rng)));
    net.push(Layer::Relu(Relu::new()));
    net.push(Layer::Pool(Pool::new("pool2", PoolKind::Avg, PoolGeometry::new(32, 16, 16, 3, 2)?)));
    net.push(Layer::Conv(Conv2d::new("conv3", ConvGeometry::new(32, 8, 8, 64, 5, 1, 2)?, rng)));
    net.push(Layer::Relu(Relu::new()));
    net.push(Layer::Pool(Pool::new("pool3", PoolKind::Avg, PoolGeometry::new(64, 8, 8, 3, 2)?)));
    net.push(Layer::Flatten(Flatten::new()));
    net.push(Layer::Linear(Linear::new("ip1", 64 * 4 * 4, classes, rng)));
    Ok(net)
}

/// Builds a width/size-parametrised variant of the quick topology for
/// `in_c×in_hw×in_hw` inputs (`in_hw` divisible by 4): three 5×5 conv
/// stages with channel widths `widths`, then a hidden FC of `fc` units.
///
/// `quick_custom(3, 32, [32, 32, 64], 64, 10, rng)` reproduces
/// [`cifar10_quick`] exactly.
///
/// # Errors
///
/// Propagates geometry validation errors for inconsistent sizes.
pub fn quick_custom(
    in_c: usize,
    in_hw: usize,
    widths: [usize; 3],
    fc: usize,
    classes: usize,
    rng: &mut TensorRng,
) -> Result<Network> {
    let mut net = Network::new(format!("quick-{in_hw}px"));
    let [c1, c2, c3] = widths;
    let s1 = in_hw; // conv1 output (pad 2 keeps size)
    let p1 = s1 / 2; // after pool (3, s2, ceil)
    let p2 = p1 / 2;
    let p3 = p2 / 2;
    net.push(Layer::Conv(Conv2d::new("conv1", ConvGeometry::new(in_c, s1, s1, c1, 5, 1, 2)?, rng)));
    net.push(Layer::Pool(Pool::new("pool1", PoolKind::Max, PoolGeometry::new(c1, s1, s1, 3, 2)?)));
    net.push(Layer::Relu(Relu::new()));
    net.push(Layer::Conv(Conv2d::new("conv2", ConvGeometry::new(c1, p1, p1, c2, 5, 1, 2)?, rng)));
    net.push(Layer::Relu(Relu::new()));
    net.push(Layer::Pool(Pool::new("pool2", PoolKind::Avg, PoolGeometry::new(c2, p1, p1, 3, 2)?)));
    net.push(Layer::Conv(Conv2d::new("conv3", ConvGeometry::new(c2, p2, p2, c3, 5, 1, 2)?, rng)));
    net.push(Layer::Relu(Relu::new()));
    net.push(Layer::Pool(Pool::new("pool3", PoolKind::Avg, PoolGeometry::new(c3, p2, p2, 3, 2)?)));
    net.push(Layer::Flatten(Flatten::new()));
    net.push(Layer::Linear(Linear::new("ip1", c3 * p3 * p3, fc, rng)));
    net.push(Layer::Linear(Linear::new("ip2", fc, classes, rng)));
    Ok(net)
}

/// Builds AlexNet for 3×227×227 inputs (ungrouped convolutions, LRN
/// removed per the paper; pass `with_lrn = true` to restore the original
/// LRN layers for the ablation study).
///
/// # Errors
///
/// Propagates geometry validation errors (none for the standard sizes).
pub fn alexnet(classes: usize, with_lrn: bool, rng: &mut TensorRng) -> Result<Network> {
    let mut net = Network::new(if with_lrn { "alexnet-lrn" } else { "alexnet" });
    net.push(Layer::Conv(Conv2d::new("conv1", ConvGeometry::new(3, 227, 227, 96, 11, 4, 0)?, rng)));
    net.push(Layer::Relu(Relu::new()));
    if with_lrn {
        net.push(Layer::Lrn(Lrn::alexnet()));
    }
    net.push(Layer::Pool(Pool::new("pool1", PoolKind::Max, PoolGeometry::new(96, 55, 55, 3, 2)?)));
    net.push(Layer::Conv(Conv2d::new("conv2", ConvGeometry::new(96, 27, 27, 256, 5, 1, 2)?, rng)));
    net.push(Layer::Relu(Relu::new()));
    if with_lrn {
        net.push(Layer::Lrn(Lrn::alexnet()));
    }
    net.push(Layer::Pool(Pool::new("pool2", PoolKind::Max, PoolGeometry::new(256, 27, 27, 3, 2)?)));
    net.push(Layer::Conv(Conv2d::new("conv3", ConvGeometry::new(256, 13, 13, 384, 3, 1, 1)?, rng)));
    net.push(Layer::Relu(Relu::new()));
    net.push(Layer::Conv(Conv2d::new("conv4", ConvGeometry::new(384, 13, 13, 384, 3, 1, 1)?, rng)));
    net.push(Layer::Relu(Relu::new()));
    net.push(Layer::Conv(Conv2d::new("conv5", ConvGeometry::new(384, 13, 13, 256, 3, 1, 1)?, rng)));
    net.push(Layer::Relu(Relu::new()));
    net.push(Layer::Pool(Pool::new("pool5", PoolKind::Max, PoolGeometry::new(256, 13, 13, 3, 2)?)));
    net.push(Layer::Flatten(Flatten::new()));
    net.push(Layer::Linear(Linear::new("fc6", 256 * 6 * 6, 4096, rng)));
    net.push(Layer::Relu(Relu::new()));
    net.push(Layer::Dropout(Dropout::new(0.5, 0xA1EC)));
    net.push(Layer::Linear(Linear::new("fc7", 4096, 4096, rng)));
    net.push(Layer::Relu(Relu::new()));
    net.push(Layer::Dropout(Dropout::new(0.5, 0xA1ED)));
    net.push(Layer::Linear(Linear::new("fc8", 4096, classes, rng)));
    Ok(net)
}

/// Builds the original *grouped* AlexNet (Caffe `bvlc_alexnet`): conv2,
/// conv4 and conv5 split into two channel groups, as on the original
/// dual-GPU training setup. 60,965,224 parameters at 1000 classes.
///
/// The paper's Table 3 memory figure (237.95 MiB) corresponds to the
/// *ungrouped* formulation ([`alexnet`]); this variant exists to quantify
/// the difference and to exercise grouped convolutions end-to-end.
///
/// # Errors
///
/// Propagates geometry validation errors (none for the standard sizes).
pub fn alexnet_grouped(classes: usize, rng: &mut TensorRng) -> Result<Network> {
    let mut net = Network::new("alexnet-grouped");
    net.push(Layer::Conv(Conv2d::new("conv1", ConvGeometry::new(3, 227, 227, 96, 11, 4, 0)?, rng)));
    net.push(Layer::Relu(Relu::new()));
    net.push(Layer::Pool(Pool::new("pool1", PoolKind::Max, PoolGeometry::new(96, 55, 55, 3, 2)?)));
    net.push(Layer::Conv(Conv2d::new(
        "conv2",
        ConvGeometry::new(96, 27, 27, 256, 5, 1, 2)?.with_groups(2)?,
        rng,
    )));
    net.push(Layer::Relu(Relu::new()));
    net.push(Layer::Pool(Pool::new("pool2", PoolKind::Max, PoolGeometry::new(256, 27, 27, 3, 2)?)));
    net.push(Layer::Conv(Conv2d::new("conv3", ConvGeometry::new(256, 13, 13, 384, 3, 1, 1)?, rng)));
    net.push(Layer::Relu(Relu::new()));
    net.push(Layer::Conv(Conv2d::new(
        "conv4",
        ConvGeometry::new(384, 13, 13, 384, 3, 1, 1)?.with_groups(2)?,
        rng,
    )));
    net.push(Layer::Relu(Relu::new()));
    net.push(Layer::Conv(Conv2d::new(
        "conv5",
        ConvGeometry::new(384, 13, 13, 256, 3, 1, 1)?.with_groups(2)?,
        rng,
    )));
    net.push(Layer::Relu(Relu::new()));
    net.push(Layer::Pool(Pool::new("pool5", PoolKind::Max, PoolGeometry::new(256, 13, 13, 3, 2)?)));
    net.push(Layer::Flatten(Flatten::new()));
    net.push(Layer::Linear(Linear::new("fc6", 256 * 6 * 6, 4096, rng)));
    net.push(Layer::Relu(Relu::new()));
    net.push(Layer::Dropout(Dropout::new(0.5, 0xA1EE)));
    net.push(Layer::Linear(Linear::new("fc7", 4096, 4096, rng)));
    net.push(Layer::Relu(Relu::new()));
    net.push(Layer::Dropout(Dropout::new(0.5, 0xA1EF)));
    net.push(Layer::Linear(Linear::new("fc8", 4096, classes, rng)));
    Ok(net)
}

/// Builds a reduced AlexNet-pattern network for 3×32×32 inputs (conv →
/// pool pyramid with dropout-regularised FC head) used for the ImageNet
/// accuracy experiments at CPU scale.
///
/// # Errors
///
/// Propagates geometry validation errors (none for the standard sizes).
pub fn alexnet_like_small(classes: usize, rng: &mut TensorRng) -> Result<Network> {
    let mut net = Network::new("alexnet-small");
    net.push(Layer::Conv(Conv2d::new("conv1", ConvGeometry::new(3, 32, 32, 24, 5, 2, 2)?, rng)));
    net.push(Layer::Relu(Relu::new()));
    net.push(Layer::Pool(Pool::new("pool1", PoolKind::Max, PoolGeometry::new(24, 16, 16, 3, 2)?)));
    net.push(Layer::Conv(Conv2d::new("conv2", ConvGeometry::new(24, 8, 8, 48, 3, 1, 1)?, rng)));
    net.push(Layer::Relu(Relu::new()));
    net.push(Layer::Pool(Pool::new("pool2", PoolKind::Max, PoolGeometry::new(48, 8, 8, 3, 2)?)));
    net.push(Layer::Conv(Conv2d::new("conv3", ConvGeometry::new(48, 4, 4, 64, 3, 1, 1)?, rng)));
    net.push(Layer::Relu(Relu::new()));
    net.push(Layer::Flatten(Flatten::new()));
    net.push(Layer::Linear(Linear::new("fc6", 64 * 4 * 4, 128, rng)));
    net.push(Layer::Relu(Relu::new()));
    net.push(Layer::Dropout(Dropout::new(0.25, 0x5EED)));
    net.push(Layer::Linear(Linear::new("fc7", 128, classes, rng)));
    Ok(net)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Phase;
    use mfdfp_tensor::Tensor;

    #[test]
    fn cifar10_quick_shapes_and_params() {
        let mut rng = TensorRng::seed_from(0);
        let mut net = cifar10_quick(10, &mut rng).unwrap();
        // Parameter count: conv1 2432 + conv2 25632 + conv3 51264 +
        // ip1 65600 + ip2 650 = 145,578 (the float model of Table 3).
        assert_eq!(net.param_count(), 145_578);
        let x = Tensor::zeros([1, 3, 32, 32]);
        let y = net.forward(&x, Phase::Eval).unwrap();
        assert_eq!(y.shape().dims(), &[1, 10]);
    }

    #[test]
    fn cifar10_full_matches_paper_table3_param_count() {
        let mut rng = TensorRng::seed_from(0);
        let net = cifar10_full(10, &mut rng).unwrap();
        // 89,578 params × 4 B = 0.3417 MiB — the paper's Table 3 float row.
        assert_eq!(net.param_count(), 89_578);
        let mib = net.param_count() as f64 * 4.0 / (1024.0 * 1024.0);
        assert!((mib - 0.3417).abs() < 0.0005, "{mib} MiB");
    }

    #[test]
    fn quick_custom_reproduces_cifar10_quick() {
        let mut rng = TensorRng::seed_from(0);
        let reference = cifar10_quick(10, &mut rng).unwrap();
        let mut rng = TensorRng::seed_from(0);
        let custom = quick_custom(3, 32, [32, 32, 64], 64, 10, &mut rng).unwrap();
        assert_eq!(reference.param_count(), custom.param_count());
        assert_eq!(reference.len(), custom.len());
    }

    #[test]
    fn quick_custom_small_forward() {
        let mut rng = TensorRng::seed_from(0);
        let mut net = quick_custom(3, 16, [8, 8, 16], 32, 10, &mut rng).unwrap();
        let x = Tensor::zeros([2, 3, 16, 16]);
        let y = net.forward(&x, Phase::Eval).unwrap();
        assert_eq!(y.shape().dims(), &[2, 10]);
    }

    #[test]
    fn alexnet_param_count_is_full_scale() {
        let mut rng = TensorRng::seed_from(0);
        let net = alexnet(1000, false, &mut rng).unwrap();
        // Ungrouped AlexNet: 62,378,344 parameters.
        assert_eq!(net.param_count(), 62_378_344);
        // 18 MACs-bearing + activation layers; no LRN present.
        assert!(net.layers().iter().all(|l| !matches!(l, Layer::Lrn(_))));
    }

    #[test]
    fn alexnet_grouped_matches_caffe_param_count() {
        let mut rng = TensorRng::seed_from(0);
        let net = alexnet_grouped(1000, &mut rng).unwrap();
        // Caffe bvlc_alexnet: 60,965,224 parameters.
        assert_eq!(net.param_count(), 60_965_224);
    }

    #[test]
    fn alexnet_grouped_forward_shape() {
        let mut rng = TensorRng::seed_from(0);
        let mut net = alexnet_grouped(10, &mut rng).unwrap();
        let x = Tensor::zeros([1, 3, 227, 227]);
        let y = net.forward(&x, Phase::Eval).unwrap();
        assert_eq!(y.shape().dims(), &[1, 10]);
    }

    #[test]
    fn alexnet_with_lrn_has_lrn_layers() {
        let mut rng = TensorRng::seed_from(0);
        let net = alexnet(10, true, &mut rng).unwrap();
        let lrn_count = net.layers().iter().filter(|l| matches!(l, Layer::Lrn(_))).count();
        assert_eq!(lrn_count, 2);
    }

    #[test]
    fn alexnet_small_forward() {
        let mut rng = TensorRng::seed_from(0);
        let mut net = alexnet_like_small(16, &mut rng).unwrap();
        let x = Tensor::zeros([2, 3, 32, 32]);
        let y = net.forward(&x, Phase::Train).unwrap();
        assert_eq!(y.shape().dims(), &[2, 16]);
    }
}
