//! Error type for the network framework.

use std::error::Error;
use std::fmt;

use mfdfp_tensor::TensorError;

/// Errors from network construction, training and inference.
#[derive(Debug, Clone, PartialEq)]
pub enum NnError {
    /// An underlying tensor operation failed (usually a shape mismatch).
    Tensor(TensorError),
    /// A layer or network was configured inconsistently.
    BadConfig(String),
    /// Label index out of range for the classifier width.
    BadLabel {
        /// The offending label.
        label: usize,
        /// Number of classes the network produces.
        classes: usize,
    },
    /// Batch size of inputs and labels disagree.
    BatchMismatch {
        /// Input batch size.
        inputs: usize,
        /// Label count.
        labels: usize,
    },
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::Tensor(e) => write!(f, "tensor error: {e}"),
            NnError::BadConfig(msg) => write!(f, "invalid configuration: {msg}"),
            NnError::BadLabel { label, classes } => {
                write!(f, "label {label} out of range for {classes} classes")
            }
            NnError::BatchMismatch { inputs, labels } => {
                write!(f, "batch size mismatch: {inputs} inputs vs {labels} labels")
            }
        }
    }
}

impl Error for NnError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            NnError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for NnError {
    fn from(e: TensorError) -> Self {
        NnError::Tensor(e)
    }
}

/// Convenience alias for network results.
pub type Result<T> = std::result::Result<T, NnError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_sources() {
        let e = NnError::from(TensorError::AxisOutOfRange { axis: 1, rank: 1 });
        assert!(e.to_string().contains("tensor error"));
        assert!(Error::source(&e).is_some());
        assert!(NnError::BadLabel { label: 12, classes: 10 }.to_string().contains("12"));
        assert!(Error::source(&NnError::BadConfig("x".into())).is_none());
    }
}
