//! Property-based tests of the training framework: loss-gradient laws and
//! network invariants that hold for arbitrary (finite) inputs.

use mfdfp_nn::layers::{Linear, Relu};
use mfdfp_nn::{
    distillation_loss, softmax_cross_entropy, zoo, DistillConfig, DistillMode, Layer, Network,
    Phase,
};
use mfdfp_tensor::{Shape, Tensor, TensorRng};
use proptest::prelude::*;

fn logits_strategy(n: usize, k: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-4.0f32..4.0, n * k)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Cross-entropy is non-negative and the gradient sums to zero per row
    /// (softmax gradient lives on the simplex tangent space).
    #[test]
    fn ce_gradient_rows_sum_to_zero(z in logits_strategy(3, 5), labels in proptest::collection::vec(0usize..5, 3)) {
        let t = Tensor::from_vec(z, Shape::d2(3, 5)).unwrap();
        let (loss, grad) = softmax_cross_entropy(&t, &labels).unwrap();
        prop_assert!(loss >= 0.0);
        for r in 0..3 {
            let s: f32 = grad.as_slice()[r * 5..(r + 1) * 5].iter().sum();
            prop_assert!(s.abs() < 1e-5, "row {r} grad sum {s}");
        }
    }

    /// The loss is minimised (→ 0) by pushing the true logit up: loss at
    /// boosted true logit ≤ original loss.
    #[test]
    fn ce_decreases_when_true_logit_grows(z in logits_strategy(1, 4), label in 0usize..4) {
        let t = Tensor::from_vec(z.clone(), Shape::d2(1, 4)).unwrap();
        let (l0, _) = softmax_cross_entropy(&t, &[label]).unwrap();
        let mut boosted = z;
        boosted[label] += 2.0;
        let tb = Tensor::from_vec(boosted, Shape::d2(1, 4)).unwrap();
        let (l1, _) = softmax_cross_entropy(&tb, &[label]).unwrap();
        prop_assert!(l1 <= l0 + 1e-6);
    }

    /// Distillation loss reduces to plain CE at β = 0 for any temperature.
    #[test]
    fn distill_beta_zero_is_ce(
        zs in logits_strategy(2, 3),
        zt in logits_strategy(2, 3),
        tau in 0.5f32..30.0,
    ) {
        let s = Tensor::from_vec(zs, Shape::d2(2, 3)).unwrap();
        let t = Tensor::from_vec(zt, Shape::d2(2, 3)).unwrap();
        let cfg = DistillConfig { temperature: tau, beta: 0.0, mode: DistillMode::Exact };
        let (l1, g1) = distillation_loss(&s, &t, &[0, 2], &cfg).unwrap();
        let (l2, g2) = softmax_cross_entropy(&s, &[0, 2]).unwrap();
        prop_assert!((l1 - l2).abs() < 1e-6);
        prop_assert_eq!(g1.as_slice(), g2.as_slice());
    }

    /// The soft term vanishes when student and teacher agree: the
    /// distillation gradient equals the CE gradient.
    #[test]
    fn distill_gradient_vanishes_on_agreement(z in logits_strategy(2, 3), beta in 0.0f32..2.0) {
        let s = Tensor::from_vec(z.clone(), Shape::d2(2, 3)).unwrap();
        let t = Tensor::from_vec(z, Shape::d2(2, 3)).unwrap();
        let cfg = DistillConfig { temperature: 4.0, beta, mode: DistillMode::Exact };
        let (_, g) = distillation_loss(&s, &t, &[1, 0], &cfg).unwrap();
        let (_, gce) = softmax_cross_entropy(&s, &[1, 0]).unwrap();
        for (a, b) in g.as_slice().iter().zip(gce.as_slice()) {
            prop_assert!((a - b).abs() < 1e-6);
        }
    }

    /// Forward passes are deterministic in eval mode: two runs agree.
    #[test]
    fn eval_forward_is_deterministic(seed in 0u64..500, x in logits_strategy(2, 8)) {
        let mut rng = TensorRng::seed_from(seed);
        let mut net = Network::new("det");
        net.push(Layer::Linear(Linear::new("fc1", 8, 6, &mut rng)));
        net.push(Layer::Relu(Relu::new()));
        net.push(Layer::Linear(Linear::new("fc2", 6, 3, &mut rng)));
        let t = Tensor::from_vec(x, Shape::d2(2, 8)).unwrap();
        let y1 = net.forward(&t, Phase::Eval).unwrap();
        let y2 = net.forward(&t, Phase::Eval).unwrap();
        prop_assert_eq!(y1.as_slice(), y2.as_slice());
    }

    /// Parameter snapshot/restore round-trips through arbitrary scaling.
    #[test]
    fn snapshot_restore_round_trip(seed in 0u64..500, scale in -3.0f32..3.0) {
        let mut rng = TensorRng::seed_from(seed);
        let mut net = Network::new("snap");
        net.push(Layer::Linear(Linear::new("fc", 4, 4, &mut rng)));
        let snap = net.snapshot_params();
        net.visit_params(&mut |v, _| v.scale(scale));
        net.restore_params(&snap);
        let back = net.snapshot_params();
        for (a, b) in snap.iter().zip(&back) {
            prop_assert_eq!(a.as_slice(), b.as_slice());
        }
    }

    /// ReLU networks are positively homogeneous in their final linear
    /// layer: scaling its weights and bias scales the logits.
    #[test]
    fn final_layer_scaling_scales_logits(seed in 0u64..200, alpha in 0.1f32..3.0) {
        let mut rng = TensorRng::seed_from(seed);
        let mut net = Network::new("homog");
        net.push(Layer::Linear(Linear::new("fc1", 5, 7, &mut rng)));
        net.push(Layer::Relu(Relu::new()));
        net.push(Layer::Linear(Linear::new("fc2", 7, 3, &mut rng)));
        let x = rng.gaussian([2, 5], 0.0, 1.0);
        let y1 = net.forward(&x, Phase::Eval).unwrap();
        // Scale only the last layer's parameters.
        let n_layers = net.len();
        if let Layer::Linear(l) = &mut net.layers_mut()[n_layers - 1] {
            l.weights_mut().scale(alpha);
            l.bias_mut().scale(alpha);
        }
        let y2 = net.forward(&x, Phase::Eval).unwrap();
        for (a, b) in y1.as_slice().iter().zip(y2.as_slice()) {
            prop_assert!((a * alpha - b).abs() < 1e-3 * (1.0 + a.abs() * alpha.abs()));
        }
    }
}

/// Gradient check of a full small network against finite differences —
/// deterministic (not proptest) because it is expensive.
#[test]
fn full_network_gradient_check() {
    let mut rng = TensorRng::seed_from(11);
    let mut net = zoo::quick_custom(1, 16, [2, 2, 2], 8, 3, &mut rng).unwrap();
    let x = rng.gaussian([2, 1, 16, 16], 0.0, 1.0);
    let labels = vec![0usize, 2];

    let logits = net.forward(&x, Phase::Train).unwrap();
    let (_, grad) = softmax_cross_entropy(&logits, &labels).unwrap();
    net.backward(&grad).unwrap();

    // Collect analytic gradients.
    let mut analytic = Vec::new();
    net.visit_params(&mut |_, g| analytic.push(g.clone()));

    // Check a scattering of coordinates per parameter tensor.
    let eps = 1e-2;
    let mut pi = 0usize;
    let mut max_rel = 0.0f32;
    let n_params = analytic.len();
    for (p, analytic_p) in analytic.iter().enumerate() {
        let len = analytic_p.len();
        for idx in [0, len / 3, len - 1] {
            // Perturb coordinate (p, idx).
            let mut j = 0usize;
            net.visit_params(&mut |v, _| {
                if j == p {
                    v.as_mut_slice()[idx] += eps;
                }
                j += 1;
            });
            let lp = loss_of(&mut net, &x, &labels);
            let mut j = 0usize;
            net.visit_params(&mut |v, _| {
                if j == p {
                    v.as_mut_slice()[idx] -= 2.0 * eps;
                }
                j += 1;
            });
            let lm = loss_of(&mut net, &x, &labels);
            let mut j = 0usize;
            net.visit_params(&mut |v, _| {
                if j == p {
                    v.as_mut_slice()[idx] += eps;
                }
                j += 1;
            });
            let numeric = (lp - lm) / (2.0 * eps);
            let a = analytic_p.as_slice()[idx];
            let rel = (numeric - a).abs() / (1.0 + numeric.abs().max(a.abs()));
            max_rel = max_rel.max(rel);
            assert!(rel < 0.05, "param {p} idx {idx}: numeric {numeric} vs analytic {a}");
        }
        pi += 1;
    }
    assert_eq!(pi, n_params);
    assert!(max_rel < 0.05, "worst relative gradient error {max_rel}");
}

fn loss_of(net: &mut Network, x: &Tensor, labels: &[usize]) -> f32 {
    let logits = net.forward(x, Phase::Eval).unwrap();
    softmax_cross_entropy(&logits, labels).unwrap().0
}
