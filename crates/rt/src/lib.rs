//! # mfdfp-rt — persistent work-sharing thread-pool runtime
//!
//! The shift-only kernels in this workspace make individual products so
//! cheap that *thread lifetime* becomes the dominant scheduling cost:
//! spawning and joining OS threads per GEMM call costs tens of
//! microseconds, which small products cannot repay, and a serving
//! runtime dispatching hundreds of batches per second pays it over and
//! over. This crate replaces per-call `std::thread::scope` fan-out with
//! one **lazy, process-wide pool** of long-lived workers
//! ([`global`], sized by `MFDFP_THREADS` or the detected core count)
//! plus a scoped fork-join API ([`ThreadPool::scope`]) that:
//!
//! * lets tasks borrow from the caller's stack (like
//!   `std::thread::scope` — the scope does not return until every
//!   spawned task has finished, even when a task panics);
//! * propagates task panics to the scope owner (first panic wins,
//!   mirroring the join-side behaviour of scoped threads);
//! * never deadlocks on nesting: any thread waiting for a scope *helps*
//!   execute queued tasks, so a pool task may itself open a scope
//!   (the serving runtime's batch forwards do exactly that);
//! * is deterministic-friendly: the pool only decides **which thread**
//!   runs a task, never how work is partitioned — callers fix chunk
//!   boundaries themselves, so bit-identical results are a property of
//!   their kernels, exactly as with per-call spawning.
//!
//! Tasks go through a shared injector queue (one mutex-guarded deque —
//! the hot paths enqueue at most a handful of row-chunk tasks per
//! dispatch, so a work-stealing deque per worker would buy nothing at
//! this granularity) and workers park on a condvar when idle.
//! [`PoolStats`] exposes the observability counters the serving runtime
//! surfaces: tasks run, steals (tasks executed by a thread other than
//! their submitter) and idle parks.
//!
//! # Examples
//!
//! Fork-join over borrowed stack data:
//!
//! ```
//! let pool = mfdfp_rt::ThreadPool::with_threads(4);
//! let mut halves = [0u64; 2];
//! let (lo, hi) = halves.split_at_mut(1);
//! pool.scope(|s| {
//!     s.spawn(|| lo[0] = (1..=50).sum());
//!     s.spawn(|| hi[0] = (51..=100).sum());
//! });
//! assert_eq!(halves[0] + halves[1], 5050);
//! ```
//!
//! The process-wide pool the tensor/serving hot paths share:
//!
//! ```
//! let pool = mfdfp_rt::global();
//! assert!(pool.threads() >= 1);
//! let stats = mfdfp_rt::global_stats();
//! assert!(stats.threads >= 1); // engaged by the call above
//! ```

#![deny(missing_docs)]

use std::any::Any;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::{self, ThreadId};

/// A point-in-time view of the pool's counters (monotonic since pool
/// creation; cheap enough for the serving hot path to snapshot on
/// every metrics read, and ordered so `steals <= tasks_run` holds in
/// every snapshot).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Parallel width of the pool: dedicated workers plus the
    /// scope-owning caller. [`global_stats`] reports `0` here when the
    /// global pool has never been engaged.
    pub threads: usize,
    /// Tasks claimed and run (by workers or by helping waiters).
    /// Counted when execution *starts*, so a snapshot taken mid-task
    /// includes that task; every counted task finishes before its
    /// scope returns.
    pub tasks_run: u64,
    /// Tasks executed by a thread other than the one that spawned them
    /// (a scope owner running its own task inline is not a steal).
    pub steals: u64,
    /// Times a worker found the queue empty and parked on the condvar.
    pub idle_parks: u64,
}

/// A task after lifetime erasure (see the safety argument in
/// [`Scope::spawn`]).
type Job = Box<dyn FnOnce() + Send + 'static>;

struct QueuedJob {
    job: Job,
    submitter: ThreadId,
}

/// Queue state under the mutex: pending jobs + the shutdown latch.
struct QueueState {
    jobs: VecDeque<QueuedJob>,
    shutdown: bool,
}

struct Shared {
    queue: Mutex<QueueState>,
    /// Workers park here when the queue is empty.
    work_cv: Condvar,
    threads: usize,
    tasks_run: AtomicU64,
    steals: AtomicU64,
    idle_parks: AtomicU64,
}

impl Shared {
    fn push(&self, job: QueuedJob) {
        let mut q = self.queue.lock().expect("rt queue poisoned");
        q.jobs.push_back(job);
        drop(q);
        self.work_cv.notify_one();
    }

    fn try_pop(&self) -> Option<QueuedJob> {
        self.queue.lock().expect("rt queue poisoned").jobs.pop_front()
    }

    /// Executes one claimed job, attributing the run/steal counters.
    /// Panics cannot escape: every queued job wraps its payload in
    /// `catch_unwind` at spawn time (see [`Scope::spawn`]).
    ///
    /// Counter protocol: `tasks_run` is bumped before `steals`, both
    /// `SeqCst`, and [`ThreadPool::stats`] reads them in the opposite
    /// order — so a concurrent snapshot can never observe
    /// `steals > tasks_run` (the invariant the serving dashboard and
    /// the tests lean on).
    fn run_job(&self, queued: QueuedJob) {
        self.tasks_run.fetch_add(1, Ordering::SeqCst);
        if thread::current().id() != queued.submitter {
            self.steals.fetch_add(1, Ordering::SeqCst);
        }
        (queued.job)();
    }
}

/// Long-lived worker: pop → run, park when empty, exit on shutdown.
fn worker_loop(shared: &Shared) {
    loop {
        let queued = {
            let mut q = shared.queue.lock().expect("rt queue poisoned");
            loop {
                if let Some(job) = q.jobs.pop_front() {
                    break Some(job);
                }
                if q.shutdown {
                    break None;
                }
                shared.idle_parks.fetch_add(1, Ordering::Relaxed);
                q = shared.work_cv.wait(q).expect("rt queue poisoned");
            }
        };
        match queued {
            Some(job) => shared.run_job(job),
            None => return,
        }
    }
}

/// Per-scope completion state: outstanding task count, the first panic
/// payload, and the condvar the owner sleeps on once the queue is dry.
struct ScopeState {
    pending: AtomicUsize,
    panic: Mutex<Option<Box<dyn Any + Send + 'static>>>,
    done_lock: Mutex<()>,
    done_cv: Condvar,
}

impl ScopeState {
    fn new() -> Self {
        ScopeState {
            pending: AtomicUsize::new(0),
            panic: Mutex::new(None),
            done_lock: Mutex::new(()),
            done_cv: Condvar::new(),
        }
    }
}

/// A fork-join scope handed to the closure of [`ThreadPool::scope`].
///
/// Spawned tasks may borrow anything that outlives the scope (the
/// `'scope` lifetime); the scope call does not return until every task
/// has finished. The marker makes `'scope` invariant, which is what
/// keeps those borrows sound.
pub struct Scope<'scope> {
    shared: &'scope Shared,
    state: Arc<ScopeState>,
    _marker: PhantomData<&'scope mut &'scope ()>,
}

impl<'scope> Scope<'scope> {
    /// Submits `task` to the pool. It may run on any worker, or on the
    /// scope owner while it waits; it has started — or will start —
    /// before [`ThreadPool::scope`] returns, and will have **finished**
    /// before it returns.
    ///
    /// A panicking task does not abort the others; the payload is
    /// re-raised on the scope owner after all tasks complete (first
    /// panic wins).
    pub fn spawn<F>(&self, task: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        self.state.pending.fetch_add(1, Ordering::SeqCst);
        let state = Arc::clone(&self.state);
        let wrapped: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            if let Err(payload) = catch_unwind(AssertUnwindSafe(task)) {
                let mut slot = state.panic.lock().unwrap_or_else(|e| e.into_inner());
                slot.get_or_insert(payload);
                drop(slot);
            }
            if state.pending.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last task out: take the lock so the notify cannot race
                // between the owner's pending check and its wait.
                drop(state.done_lock.lock().expect("rt scope lock poisoned"));
                state.done_cv.notify_all();
            }
        });
        // SAFETY: the job is erased to 'static so 'static worker threads
        // can hold it, but it only borrows data outliving 'scope, and
        // `ThreadPool::scope` does not return (not even by unwinding)
        // until `pending` reaches zero — i.e. until this closure has run
        // to completion. The borrowed data therefore strictly outlives
        // every use. This is the same argument `std::thread::scope` and
        // rayon's scope rest on.
        let job: Job = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Box<dyn FnOnce() + Send>>(
                wrapped,
            )
        };
        self.shared.push(QueuedJob { job, submitter: thread::current().id() });
    }
}

/// A persistent pool of worker threads with a scoped fork-join API.
///
/// The pool spawns `threads - 1` workers: the thread calling
/// [`scope`](ThreadPool::scope) is the remaining lane (it helps execute
/// tasks while waiting), so a width-1 pool runs everything inline with
/// no worker threads at all. Most code should use the process-wide
/// [`global`] pool instead of constructing its own.
///
/// Dropping a pool shuts it down: workers drain the queue latch and
/// exit, and the drop joins them. (The [`global`] pool lives for the
/// process and is never dropped.)
pub struct ThreadPool {
    shared: Arc<Shared>,
    workers: Vec<thread::JoinHandle<()>>,
}

impl ThreadPool {
    /// Creates a pool of parallel width `threads` (clamped to ≥ 1),
    /// spawning `threads - 1` dedicated workers.
    pub fn with_threads(threads: usize) -> ThreadPool {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            queue: Mutex::new(QueueState { jobs: VecDeque::new(), shutdown: false }),
            work_cv: Condvar::new(),
            threads,
            tasks_run: AtomicU64::new(0),
            steals: AtomicU64::new(0),
            idle_parks: AtomicU64::new(0),
        });
        let workers = (1..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("mfdfp-rt-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("failed to spawn pool worker")
            })
            .collect();
        ThreadPool { shared, workers }
    }

    /// The pool's parallel width: dedicated workers plus the caller.
    pub fn threads(&self) -> usize {
        self.shared.threads
    }

    /// Snapshot of the pool's counters. Mutually consistent in the one
    /// direction that matters: `steals` is read *before* `tasks_run`
    /// (and writers bump them in the opposite order, all `SeqCst` — see
    /// `Shared::run_job`), so a snapshot taken during a burst of steals
    /// still satisfies `steals <= tasks_run`.
    pub fn stats(&self) -> PoolStats {
        let steals = self.shared.steals.load(Ordering::SeqCst);
        let tasks_run = self.shared.tasks_run.load(Ordering::SeqCst);
        PoolStats {
            threads: self.shared.threads,
            tasks_run,
            steals,
            idle_parks: self.shared.idle_parks.load(Ordering::Relaxed),
        }
    }

    /// Runs `f` with a [`Scope`] whose spawned tasks may borrow from the
    /// caller's stack. Returns only after every spawned task finished;
    /// the calling thread helps execute queued tasks while it waits, so
    /// nested scopes (a pool task opening its own scope) cannot
    /// deadlock. If `f` or any task panicked, the panic resumes on the
    /// caller **after** all tasks completed — the same contract as
    /// `std::thread::scope`, minus the per-call spawn/join cost.
    ///
    /// # Examples
    ///
    /// ```
    /// let pool = mfdfp_rt::ThreadPool::with_threads(2);
    /// let mut out = vec![0usize; 8];
    /// pool.scope(|s| {
    ///     for (i, chunk) in out.chunks_mut(4).enumerate() {
    ///         s.spawn(move || chunk.iter_mut().for_each(|v| *v = i));
    ///     }
    /// });
    /// assert_eq!(out, [0, 0, 0, 0, 1, 1, 1, 1]);
    /// ```
    pub fn scope<'scope, F, R>(&'scope self, f: F) -> R
    where
        F: FnOnce(&Scope<'scope>) -> R,
    {
        let scope = Scope {
            shared: &self.shared,
            state: Arc::new(ScopeState::new()),
            _marker: PhantomData,
        };
        let result = catch_unwind(AssertUnwindSafe(|| f(&scope)));
        // Tasks borrow the caller's frame: they must all complete before
        // this function returns, even if `f` itself panicked.
        self.wait_scope(&scope.state);
        match result {
            Err(payload) => resume_unwind(payload),
            Ok(value) => {
                let panicked = scope.state.panic.lock().unwrap_or_else(|e| e.into_inner()).take();
                match panicked {
                    Some(payload) => resume_unwind(payload),
                    None => value,
                }
            }
        }
    }

    /// Help-first wait: run queued tasks (of any scope — that is what
    /// makes nesting deadlock-free) until this scope's count drains,
    /// then park on the scope condvar. No task of *this* scope can be
    /// enqueued after `f` returns (spawning needs the `&Scope`), so the
    /// count only falls here.
    fn wait_scope(&self, state: &ScopeState) {
        while state.pending.load(Ordering::SeqCst) != 0 {
            if let Some(job) = self.shared.try_pop() {
                self.shared.run_job(job);
                continue;
            }
            let guard = state.done_lock.lock().expect("rt scope lock poisoned");
            if state.pending.load(Ordering::SeqCst) == 0 {
                break;
            }
            // Completing tasks signal done_cv under done_lock, so this
            // wait cannot miss the final decrement observed above.
            drop(state.done_cv.wait(guard).expect("rt scope lock poisoned"));
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shared.queue.lock().expect("rt queue poisoned").shutdown = true;
        self.shared.work_cv.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Parallel width the global pool is created with: `MFDFP_THREADS` if
/// set and parseable (clamped to ≥ 1), else the detected core count.
/// Read once at first [`global`] use — changing the variable afterwards
/// has no effect, which is what makes the pool's width a stable fact a
/// server can report.
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("MFDFP_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            return n.max(1);
        }
    }
    thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();

/// The lazy process-wide pool every hot path shares (GEMM row chunks,
/// batched quantized forwards, serving batch dispatch). Created on
/// first use with [`default_threads`] width; lives for the process.
pub fn global() -> &'static ThreadPool {
    GLOBAL.get_or_init(|| ThreadPool::with_threads(default_threads()))
}

/// Counters of the [`global`] pool **without instantiating it**: all
/// zeros (including `threads: 0`) when no hot path has engaged the pool
/// yet. This is what the serving metrics snapshot reads, so a metrics
/// poll never spawns worker threads as a side effect.
pub fn global_stats() -> PoolStats {
    GLOBAL.get().map_or_else(PoolStats::default, ThreadPool::stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn runs_every_task_exactly_once() {
        let pool = ThreadPool::with_threads(4);
        let counter = AtomicUsize::new(0);
        pool.scope(|s| {
            for _ in 0..64 {
                s.spawn(|| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 64);
    }

    #[test]
    fn tasks_borrow_disjoint_chunks() {
        let pool = ThreadPool::with_threads(3);
        let mut out = vec![0usize; 100];
        pool.scope(|s| {
            for (i, chunk) in out.chunks_mut(7).enumerate() {
                s.spawn(move || chunk.iter_mut().for_each(|v| *v = i));
            }
        });
        for (j, &v) in out.iter().enumerate() {
            assert_eq!(v, j / 7, "element {j}");
        }
    }

    #[test]
    fn width_one_pool_runs_inline_without_workers() {
        let pool = ThreadPool::with_threads(1);
        assert_eq!(pool.threads(), 1);
        let main_id = thread::current().id();
        let mut ran_on = None;
        pool.scope(|s| s.spawn(|| ran_on = Some(thread::current().id())));
        assert_eq!(ran_on, Some(main_id));
        let stats = pool.stats();
        assert_eq!((stats.tasks_run, stats.steals), (1, 0));
    }

    #[test]
    fn nested_scopes_do_not_deadlock() {
        // Each outer task opens its own scope on the same pool — the
        // pattern batched serving dispatch produces.
        let pool = ThreadPool::with_threads(2);
        let counter = AtomicUsize::new(0);
        pool.scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    pool.scope(|inner| {
                        for _ in 0..4 {
                            inner.spawn(|| {
                                counter.fetch_add(1, Ordering::SeqCst);
                            });
                        }
                    });
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 16);
    }

    #[test]
    fn task_panic_propagates_after_all_tasks_finish() {
        let pool = ThreadPool::with_threads(2);
        let finished = Arc::new(AtomicUsize::new(0));
        let fin = Arc::clone(&finished);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                s.spawn(|| panic!("task boom"));
                for _ in 0..8 {
                    let fin = Arc::clone(&fin);
                    s.spawn(move || {
                        fin.fetch_add(1, Ordering::SeqCst);
                    });
                }
            });
        }));
        assert!(result.is_err(), "scope must re-raise the task panic");
        assert_eq!(finished.load(Ordering::SeqCst), 8, "siblings must still run");
        // The pool survives a panicked scope.
        let counter = AtomicUsize::new(0);
        pool.scope(|s| {
            s.spawn(|| {
                counter.fetch_add(1, Ordering::SeqCst);
            })
        });
        assert_eq!(counter.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn closure_panic_still_waits_for_tasks() {
        let pool = ThreadPool::with_threads(2);
        let finished = Arc::new(AtomicUsize::new(0));
        let fin = Arc::clone(&finished);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                for _ in 0..4 {
                    let fin = Arc::clone(&fin);
                    s.spawn(move || {
                        fin.fetch_add(1, Ordering::SeqCst);
                    });
                }
                panic!("owner boom");
            });
        }));
        assert!(result.is_err());
        assert_eq!(finished.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn scope_returns_closure_value() {
        let pool = ThreadPool::with_threads(2);
        let x = pool.scope(|s| {
            s.spawn(|| {});
            41 + 1
        });
        assert_eq!(x, 42);
    }

    #[test]
    fn stats_are_monotonic_and_attributed() {
        let pool = ThreadPool::with_threads(4);
        let before = pool.stats();
        assert_eq!(before.threads, 4);
        pool.scope(|s| {
            for _ in 0..32 {
                s.spawn(|| std::hint::black_box(()));
            }
        });
        let after = pool.stats();
        assert_eq!(after.tasks_run, before.tasks_run + 32);
        assert!(after.steals <= after.tasks_run);
    }

    #[test]
    fn global_stats_never_instantiates() {
        // Can't assert the global is untouched here (other tests in the
        // process may engage it), but the call must be side-effect free:
        // two reads in a row agree on width.
        let a = global_stats();
        let b = global_stats();
        assert_eq!(a.threads, b.threads);
    }

    #[test]
    fn default_threads_positive() {
        assert!(default_threads() >= 1);
    }
}
