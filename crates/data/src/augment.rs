//! Training-time augmentation: padded random crop and horizontal flip —
//! the standard CIFAR-10 recipe of the paper's era.

use rand::distributions::{Distribution, Uniform};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use mfdfp_tensor::{Shape, Tensor};

/// Augmentation configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AugmentConfig {
    /// Zero-padding added on every border before cropping back to the
    /// original size at a random offset (0 disables cropping).
    pub pad: usize,
    /// Whether to mirror images horizontally with probability ½.
    pub flip: bool,
}

impl AugmentConfig {
    /// The classic CIFAR recipe: pad-4 random crop + horizontal flip.
    pub fn cifar() -> Self {
        AugmentConfig { pad: 4, flip: true }
    }

    /// No augmentation.
    pub fn none() -> Self {
        AugmentConfig { pad: 0, flip: false }
    }
}

/// A seeded augmentation pipeline.
#[derive(Debug)]
pub struct Augmenter {
    cfg: AugmentConfig,
    rng: StdRng,
}

impl Augmenter {
    /// Creates a pipeline with its own deterministic RNG stream.
    pub fn new(cfg: AugmentConfig, seed: u64) -> Self {
        Augmenter { cfg, rng: StdRng::seed_from_u64(seed) }
    }

    /// Augments one `C×H×W` image.
    ///
    /// # Panics
    ///
    /// Panics if the input is not rank-3.
    pub fn apply(&mut self, img: &Tensor) -> Tensor {
        assert_eq!(img.shape().rank(), 3, "expected C×H×W image");
        let mut out = img.clone();
        if self.cfg.pad > 0 {
            let off = Uniform::new_inclusive(0, 2 * self.cfg.pad);
            let dy = off.sample(&mut self.rng) as isize - self.cfg.pad as isize;
            let dx = off.sample(&mut self.rng) as isize - self.cfg.pad as isize;
            out = shift_with_zero_fill(&out, dy, dx);
        }
        if self.cfg.flip && Uniform::new(0u8, 2).sample(&mut self.rng) == 1 {
            out = hflip(&out);
        }
        out
    }

    /// Augments a whole `N×C×H×W` batch in place sample-by-sample.
    ///
    /// # Panics
    ///
    /// Panics if the input is not rank-4.
    pub fn apply_batch(&mut self, batch: &Tensor) -> Tensor {
        assert_eq!(batch.shape().rank(), 4, "expected N×C×H×W batch");
        let mut out = batch.clone();
        let n = batch.shape().dim(0);
        for s in 0..n {
            let img = batch.index_axis0(s);
            out.set_axis0(s, &self.apply(&img));
        }
        out
    }
}

/// Translates an image by `(dy, dx)`, filling vacated pixels with zero —
/// equivalent to the classic pad-then-crop augmentation.
pub fn shift_with_zero_fill(img: &Tensor, dy: isize, dx: isize) -> Tensor {
    let dims = img.shape().dims().to_vec();
    let (c, h, w) = (dims[0], dims[1], dims[2]);
    let src = img.as_slice();
    let mut data = vec![0.0f32; src.len()];
    for ch in 0..c {
        for y in 0..h {
            let sy = y as isize + dy;
            if sy < 0 || sy >= h as isize {
                continue;
            }
            for x in 0..w {
                let sx = x as isize + dx;
                if sx < 0 || sx >= w as isize {
                    continue;
                }
                data[(ch * h + y) * w + x] = src[(ch * h + sy as usize) * w + sx as usize];
            }
        }
    }
    Tensor::from_vec(data, Shape::new(dims)).expect("same length")
}

/// Mirrors an image horizontally.
pub fn hflip(img: &Tensor) -> Tensor {
    let dims = img.shape().dims().to_vec();
    let (c, h, w) = (dims[0], dims[1], dims[2]);
    let src = img.as_slice();
    let mut data = vec![0.0f32; src.len()];
    for ch in 0..c {
        for y in 0..h {
            for x in 0..w {
                data[(ch * h + y) * w + x] = src[(ch * h + y) * w + (w - 1 - x)];
            }
        }
    }
    Tensor::from_vec(data, Shape::new(dims)).expect("same length")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn img() -> Tensor {
        Tensor::from_vec((0..16).map(|v| v as f32).collect(), Shape::new(vec![1, 4, 4])).unwrap()
    }

    #[test]
    fn hflip_reverses_rows() {
        let f = hflip(&img());
        assert_eq!(&f.as_slice()[0..4], &[3.0, 2.0, 1.0, 0.0]);
        // Involution.
        assert_eq!(hflip(&f).as_slice(), img().as_slice());
    }

    #[test]
    fn zero_shift_is_identity() {
        assert_eq!(shift_with_zero_fill(&img(), 0, 0).as_slice(), img().as_slice());
    }

    #[test]
    fn shift_moves_and_zero_fills() {
        let s = shift_with_zero_fill(&img(), 1, 0);
        // Row 0 of output = row 1 of input; last row zero-filled.
        assert_eq!(&s.as_slice()[0..4], &[4.0, 5.0, 6.0, 7.0]);
        assert_eq!(&s.as_slice()[12..16], &[0.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn augmenter_is_deterministic_per_seed() {
        let mut a = Augmenter::new(AugmentConfig::cifar(), 9);
        let mut b = Augmenter::new(AugmentConfig::cifar(), 9);
        for _ in 0..5 {
            assert_eq!(a.apply(&img()).as_slice(), b.apply(&img()).as_slice());
        }
    }

    #[test]
    fn none_config_is_identity() {
        let mut a = Augmenter::new(AugmentConfig::none(), 1);
        assert_eq!(a.apply(&img()).as_slice(), img().as_slice());
    }

    #[test]
    fn batch_augmentation_processes_each_sample() {
        let mut batch = Tensor::zeros([2, 1, 4, 4]);
        batch.set_axis0(0, &img());
        batch.set_axis0(1, &img());
        let mut a = Augmenter::new(AugmentConfig { pad: 1, flip: true }, 3);
        let out = a.apply_batch(&batch);
        assert_eq!(out.shape().dims(), &[2, 1, 4, 4]);
    }
}
