//! Deterministic synthetic image classification datasets.
//!
//! Real CIFAR-10 / ImageNet files are unavailable offline, so the
//! workspace substitutes seeded, class-conditional generators (see
//! DESIGN.md §3). Each class owns a smooth random template built from a
//! few 2-D sinusoids; a sample is its class template under a random
//! spatial shift, contrast/brightness jitter and additive Gaussian noise.
//! The task is convolution-friendly (translation structure), non-trivial
//! (jitter + noise + shift), and its difficulty is one knob
//! ([`SynthSpec::noise`]).

use rand::distributions::{Distribution, Uniform};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use mfdfp_tensor::{Shape, Tensor};

/// Specification of a synthetic dataset.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SynthSpec {
    /// Number of classes.
    pub classes: usize,
    /// Image channels.
    pub channels: usize,
    /// Image height = width.
    pub size: usize,
    /// Samples per class.
    pub per_class: usize,
    /// Additive Gaussian noise σ relative to unit template amplitude
    /// (0.3–0.8 spans easy → hard).
    pub noise: f32,
    /// Maximum spatial shift (pixels) applied to the template.
    pub max_shift: usize,
    /// Master seed; the same spec always generates the same dataset.
    pub seed: u64,
}

impl SynthSpec {
    /// The CIFAR-10 stand-in: 10 classes of 3×32×32 images.
    pub fn cifar(per_class: usize, seed: u64) -> Self {
        SynthSpec { classes: 10, channels: 3, size: 32, per_class, noise: 0.55, max_shift: 2, seed }
    }

    /// The ImageNet stand-in: more classes (so top-5 is meaningful),
    /// 3×32×32 images, harder noise.
    pub fn imagenet(per_class: usize, seed: u64) -> Self {
        SynthSpec { classes: 20, channels: 3, size: 32, per_class, noise: 0.75, max_shift: 3, seed }
    }

    /// Total number of samples.
    pub fn len(&self) -> usize {
        self.classes * self.per_class
    }

    /// Whether the spec describes an empty dataset.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One class's generative template: a sum of random 2-D sinusoids.
#[derive(Debug, Clone)]
struct ClassTemplate {
    /// Per-component parameters: (amplitude, wx, wy, phase, channel_phase).
    waves: Vec<(f32, f32, f32, f32, f32)>,
}

impl ClassTemplate {
    fn sample_value(&self, ch: usize, y: f32, x: f32) -> f32 {
        self.waves
            .iter()
            .map(|&(a, wx, wy, phase, chp)| (wx * x + wy * y + phase + ch as f32 * chp).sin() * a)
            .sum()
    }
}

/// A fully materialised synthetic dataset.
///
/// # Examples
///
/// ```
/// use mfdfp_data::{SynthSpec, SyntheticDataset};
///
/// let spec = SynthSpec { classes: 3, channels: 1, size: 8, per_class: 4,
///                        noise: 0.3, max_shift: 1, seed: 9 };
/// let ds = SyntheticDataset::generate(&spec);
/// assert_eq!(ds.len(), 12);
/// let (img, label) = ds.sample(0);
/// assert_eq!(img.shape().dims(), &[1, 8, 8]);
/// assert!(label < 3);
/// ```
#[derive(Debug, Clone)]
pub struct SyntheticDataset {
    spec: SynthSpec,
    images: Vec<Tensor>,
    labels: Vec<usize>,
}

impl SyntheticDataset {
    /// Generates the dataset described by `spec` (deterministic in the
    /// seed).
    pub fn generate(spec: &SynthSpec) -> Self {
        let mut rng = StdRng::seed_from_u64(spec.seed);
        let templates: Vec<ClassTemplate> =
            (0..spec.classes).map(|_| Self::random_template(&mut rng)).collect();

        let uni = Uniform::new(0.0f32, 1.0);
        let mut images = Vec::with_capacity(spec.len());
        let mut labels = Vec::with_capacity(spec.len());
        for (class, template) in templates.iter().enumerate() {
            for _ in 0..spec.per_class {
                let img = Self::render(spec, template, &mut rng, uni);
                images.push(img);
                labels.push(class);
            }
        }
        SyntheticDataset { spec: *spec, images, labels }
    }

    fn random_template(rng: &mut StdRng) -> ClassTemplate {
        let amp = Uniform::new(0.4f32, 1.0);
        let freq = Uniform::new(0.15f32, 0.9);
        let phase = Uniform::new(0.0f32, std::f32::consts::TAU);
        let sign = Uniform::new(0usize, 2);
        let waves = (0..4)
            .map(|_| {
                let sx = if sign.sample(rng) == 0 { -1.0 } else { 1.0 };
                let sy = if sign.sample(rng) == 0 { -1.0 } else { 1.0 };
                (
                    amp.sample(rng),
                    sx * freq.sample(rng),
                    sy * freq.sample(rng),
                    phase.sample(rng),
                    phase.sample(rng),
                )
            })
            .collect();
        ClassTemplate { waves }
    }

    fn render(
        spec: &SynthSpec,
        template: &ClassTemplate,
        rng: &mut StdRng,
        uni: Uniform<f32>,
    ) -> Tensor {
        let s = spec.size;
        let shift = Uniform::new_inclusive(-(spec.max_shift as i32), spec.max_shift as i32);
        let (dy, dx) = (shift.sample(rng) as f32, shift.sample(rng) as f32);
        let contrast = 0.7 + 0.6 * uni.sample(rng);
        let brightness = 0.3 * (uni.sample(rng) - 0.5);
        let mut data = Vec::with_capacity(spec.channels * s * s);
        for ch in 0..spec.channels {
            for y in 0..s {
                for x in 0..s {
                    let v = template.sample_value(ch, y as f32 + dy, x as f32 + dx);
                    // Box–Muller noise sample.
                    let u1 = uni.sample(rng).max(f32::EPSILON);
                    let u2 = uni.sample(rng);
                    let noise = (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos();
                    data.push(contrast * v + brightness + spec.noise * noise);
                }
            }
        }
        Tensor::from_vec(data, Shape::new(vec![spec.channels, s, s]))
            .expect("length matches by construction")
    }

    /// Assembles a dataset from pre-built images and labels (used by the
    /// train/test splitter and the augmentation pipeline).
    ///
    /// # Panics
    ///
    /// Panics if `images` and `labels` lengths differ.
    pub fn from_parts(spec: SynthSpec, images: Vec<Tensor>, labels: Vec<usize>) -> Self {
        assert_eq!(images.len(), labels.len(), "images/labels length mismatch");
        SyntheticDataset { spec, images, labels }
    }

    /// The generating specification.
    pub fn spec(&self) -> &SynthSpec {
        &self.spec
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.images.len()
    }

    /// Whether the dataset holds no samples.
    pub fn is_empty(&self) -> bool {
        self.images.is_empty()
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.spec.classes
    }

    /// The `i`-th sample (image, label).
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn sample(&self, i: usize) -> (&Tensor, usize) {
        (&self.images[i], self.labels[i])
    }

    /// All labels in sample order.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Stacks samples `indices` into a batch tensor `N×C×H×W` plus labels.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn gather(&self, indices: &[usize]) -> (Tensor, Vec<usize>) {
        let s = self.spec.size;
        let mut batch = Tensor::zeros([indices.len(), self.spec.channels, s, s]);
        let mut labels = Vec::with_capacity(indices.len());
        for (row, &i) in indices.iter().enumerate() {
            batch.set_axis0(row, &self.images[i]);
            labels.push(self.labels[i]);
        }
        (batch, labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> SynthSpec {
        SynthSpec {
            classes: 3,
            channels: 2,
            size: 8,
            per_class: 5,
            noise: 0.2,
            max_shift: 1,
            seed: 1,
        }
    }

    #[test]
    fn deterministic_generation() {
        let a = SyntheticDataset::generate(&tiny_spec());
        let b = SyntheticDataset::generate(&tiny_spec());
        assert_eq!(a.len(), b.len());
        for i in 0..a.len() {
            assert_eq!(a.sample(i).0.as_slice(), b.sample(i).0.as_slice());
            assert_eq!(a.sample(i).1, b.sample(i).1);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = SyntheticDataset::generate(&tiny_spec());
        let spec2 = SynthSpec { seed: 2, ..tiny_spec() };
        let b = SyntheticDataset::generate(&spec2);
        assert_ne!(a.sample(0).0.as_slice(), b.sample(0).0.as_slice());
    }

    #[test]
    fn labels_are_balanced() {
        let ds = SyntheticDataset::generate(&tiny_spec());
        for c in 0..3 {
            assert_eq!(ds.labels().iter().filter(|&&l| l == c).count(), 5);
        }
    }

    #[test]
    fn classes_are_statistically_separable() {
        // Same-class images should correlate more than cross-class images.
        let spec = SynthSpec { per_class: 10, noise: 0.1, ..tiny_spec() };
        let ds = SyntheticDataset::generate(&spec);
        let corr = |a: &Tensor, b: &Tensor| {
            let d = a.dot(b).unwrap();
            d / (a.norm_sq().sqrt() * b.norm_sq().sqrt())
        };
        // Compare class 0's first two samples vs class 0 sample and class 1.
        let same = corr(ds.sample(0).0, ds.sample(1).0);
        let cross = corr(ds.sample(0).0, ds.sample(10).0);
        assert!(same > cross, "same-class correlation {same} should exceed cross-class {cross}");
    }

    #[test]
    fn gather_stacks_batches() {
        let ds = SyntheticDataset::generate(&tiny_spec());
        let (batch, labels) = ds.gather(&[0, 5, 10]);
        assert_eq!(batch.shape().dims(), &[3, 2, 8, 8]);
        assert_eq!(labels, vec![0, 1, 2]);
        assert_eq!(batch.index_axis0(1).as_slice(), ds.sample(5).0.as_slice());
    }

    #[test]
    fn presets_have_expected_shape() {
        let c = SynthSpec::cifar(5, 0);
        assert_eq!((c.classes, c.channels, c.size), (10, 3, 32));
        let i = SynthSpec::imagenet(5, 0);
        assert!(i.classes > 10, "top-5 must be meaningful");
    }
}
