//! Batching, shuffling and train/test splitting.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use mfdfp_tensor::Tensor;

use crate::synthetic::SyntheticDataset;

/// A deterministic batcher over a [`SyntheticDataset`].
///
/// Produces `(inputs, labels)` batches; when a shuffle seed is set, the
/// sample order is re-permuted identically for identical seeds.
///
/// # Examples
///
/// ```
/// use mfdfp_data::{Batcher, SynthSpec, SyntheticDataset};
///
/// let ds = SyntheticDataset::generate(&SynthSpec::cifar(4, 7));
/// let batches: Vec<_> = Batcher::new(&ds, 16).shuffled(1).collect();
/// assert_eq!(batches.len(), 3); // 40 samples, batch 16 → 16+16+8
/// assert_eq!(batches[2].1.len(), 8);
/// ```
#[derive(Debug)]
pub struct Batcher<'a> {
    dataset: &'a SyntheticDataset,
    batch_size: usize,
    order: Vec<usize>,
}

impl<'a> Batcher<'a> {
    /// Creates a batcher with sequential sample order.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size` is zero.
    pub fn new(dataset: &'a SyntheticDataset, batch_size: usize) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        Batcher { dataset, batch_size, order: (0..dataset.len()).collect() }
    }

    /// Returns an iterator over batches in the current order.
    pub fn iter(&self) -> BatchIter<'_> {
        BatchIter { dataset: self.dataset, order: &self.order, batch_size: self.batch_size, pos: 0 }
    }

    /// Reshuffles with `seed` and returns an owning iterator over batches.
    pub fn shuffled(mut self, seed: u64) -> IntoBatchIter<'a> {
        let mut rng = StdRng::seed_from_u64(seed);
        self.order.shuffle(&mut rng);
        IntoBatchIter { batcher: self, pos: 0 }
    }

    /// Number of batches per epoch.
    pub fn num_batches(&self) -> usize {
        self.dataset.len().div_ceil(self.batch_size)
    }
}

/// Borrowing batch iterator (see [`Batcher::iter`]).
#[derive(Debug)]
pub struct BatchIter<'a> {
    dataset: &'a SyntheticDataset,
    order: &'a [usize],
    batch_size: usize,
    pos: usize,
}

impl Iterator for BatchIter<'_> {
    type Item = (Tensor, Vec<usize>);

    fn next(&mut self) -> Option<Self::Item> {
        if self.pos >= self.order.len() {
            return None;
        }
        let end = (self.pos + self.batch_size).min(self.order.len());
        let batch = self.dataset.gather(&self.order[self.pos..end]);
        self.pos = end;
        Some(batch)
    }
}

/// Owning batch iterator (see [`Batcher::shuffled`]).
#[derive(Debug)]
pub struct IntoBatchIter<'a> {
    batcher: Batcher<'a>,
    pos: usize,
}

impl Iterator for IntoBatchIter<'_> {
    type Item = (Tensor, Vec<usize>);

    fn next(&mut self) -> Option<Self::Item> {
        if self.pos >= self.batcher.order.len() {
            return None;
        }
        let end = (self.pos + self.batcher.batch_size).min(self.batcher.order.len());
        let batch = self.batcher.dataset.gather(&self.batcher.order[self.pos..end]);
        self.pos = end;
        Some(batch)
    }
}

/// A train/test pair generated from one specification with disjoint seeds.
#[derive(Debug, Clone)]
pub struct Split {
    /// Training partition.
    pub train: SyntheticDataset,
    /// Held-out test partition (same classes, fresh noise/jitter draws).
    pub test: SyntheticDataset,
}

impl Split {
    /// Generates a train/test split. Both partitions share class
    /// *templates* — they are the same underlying classification problem —
    /// but draw independent samples.
    ///
    /// The trick: template construction consumes the RNG stream first, so
    /// generating with the same `spec.seed` but different `per_class`
    /// yields the same classes. Test uses a derived seed for its sample
    /// draws by re-generating at `train_per_class + test_per_class` and
    /// slicing would be wasteful; instead both partitions regenerate with
    /// the same seed and the test partition skips the train draws.
    pub fn generate(spec: &crate::synthetic::SynthSpec, test_per_class: usize) -> Split {
        // Generate one dataset containing train+test samples per class,
        // then split by index — guaranteeing identical templates and
        // disjoint samples.
        let mut joint_spec = *spec;
        joint_spec.per_class = spec.per_class + test_per_class;
        let joint = SyntheticDataset::generate(&joint_spec);

        let mut train_idx = Vec::new();
        let mut test_idx = Vec::new();
        for c in 0..spec.classes {
            let base = c * joint_spec.per_class;
            train_idx.extend(base..base + spec.per_class);
            test_idx.extend(base + spec.per_class..base + joint_spec.per_class);
        }
        Split {
            train: subset(&joint, spec, &train_idx),
            test: subset_test(&joint, spec, test_per_class, &test_idx),
        }
    }
}

fn subset(
    joint: &SyntheticDataset,
    spec: &crate::synthetic::SynthSpec,
    indices: &[usize],
) -> SyntheticDataset {
    SyntheticDataset::from_parts(
        *spec,
        indices.iter().map(|&i| joint.sample(i).0.clone()).collect(),
        indices.iter().map(|&i| joint.sample(i).1).collect(),
    )
}

fn subset_test(
    joint: &SyntheticDataset,
    spec: &crate::synthetic::SynthSpec,
    test_per_class: usize,
    indices: &[usize],
) -> SyntheticDataset {
    let mut test_spec = *spec;
    test_spec.per_class = test_per_class;
    SyntheticDataset::from_parts(
        test_spec,
        indices.iter().map(|&i| joint.sample(i).0.clone()).collect(),
        indices.iter().map(|&i| joint.sample(i).1).collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::SynthSpec;

    fn spec() -> SynthSpec {
        SynthSpec {
            classes: 4,
            channels: 1,
            size: 6,
            per_class: 8,
            noise: 0.2,
            max_shift: 1,
            seed: 3,
        }
    }

    #[test]
    fn sequential_batches_cover_dataset_once() {
        let ds = SyntheticDataset::generate(&spec());
        let batcher = Batcher::new(&ds, 10);
        assert_eq!(batcher.num_batches(), 4); // 32 samples
        let mut seen = 0;
        for (x, labels) in batcher.iter() {
            assert_eq!(x.shape().dim(0), labels.len());
            seen += labels.len();
        }
        assert_eq!(seen, 32);
    }

    #[test]
    fn shuffle_is_deterministic_and_a_permutation() {
        let ds = SyntheticDataset::generate(&spec());
        let l1: Vec<usize> = Batcher::new(&ds, 7).shuffled(5).flat_map(|(_, l)| l).collect();
        let l2: Vec<usize> = Batcher::new(&ds, 7).shuffled(5).flat_map(|(_, l)| l).collect();
        assert_eq!(l1, l2);
        let l3: Vec<usize> = Batcher::new(&ds, 7).shuffled(6).flat_map(|(_, l)| l).collect();
        assert_ne!(l1, l3);
        // Label multiset preserved.
        let mut sorted = l1.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, ds.labels().to_vec().tap_sorted());
    }

    trait TapSorted {
        fn tap_sorted(self) -> Self;
    }
    impl TapSorted for Vec<usize> {
        fn tap_sorted(mut self) -> Self {
            self.sort_unstable();
            self
        }
    }

    #[test]
    #[should_panic(expected = "batch size")]
    fn zero_batch_size_panics() {
        let ds = SyntheticDataset::generate(&spec());
        let _ = Batcher::new(&ds, 0);
    }

    #[test]
    fn split_shares_templates_but_not_samples() {
        let split = Split::generate(&spec(), 4);
        assert_eq!(split.train.len(), 32);
        assert_eq!(split.test.len(), 16);
        // Disjoint: no train image equals any test image.
        for i in 0..split.train.len() {
            for j in 0..split.test.len() {
                assert_ne!(split.train.sample(i).0.as_slice(), split.test.sample(j).0.as_slice());
            }
        }
        // Balanced test labels.
        for c in 0..4 {
            assert_eq!(split.test.labels().iter().filter(|&&l| l == c).count(), 4);
        }
    }
}
