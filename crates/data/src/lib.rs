//! # mfdfp-data — deterministic synthetic stand-ins for CIFAR-10 / ImageNet
//!
//! The paper evaluates on CIFAR-10 and ImageNet 2012. Neither is available
//! in this offline environment, so this crate provides seeded synthetic
//! class-conditional image generators with the same tensor shapes and a
//! tunable difficulty knob (DESIGN.md §3 documents the substitution and why
//! it preserves the paper's *relative* claims).
//!
//! * [`SyntheticDataset`] / [`SynthSpec`] — class templates of random 2-D
//!   sinusoids + shift/contrast jitter + Gaussian noise.
//! * [`Split`] — train/test partitions sharing class templates.
//! * [`Batcher`] — deterministic shuffling batch iterator.
//! * [`Augmenter`] — pad-crop + horizontal-flip training augmentation.
//!
//! # Examples
//!
//! ```
//! use mfdfp_data::{Batcher, Split, SynthSpec};
//!
//! let split = Split::generate(&SynthSpec::cifar(8, 42), 4);
//! assert_eq!(split.train.len(), 80);
//! assert_eq!(split.test.len(), 40);
//! let n: usize = Batcher::new(&split.train, 32).iter().map(|(_, l)| l.len()).sum();
//! assert_eq!(n, 80);
//! ```

#![deny(missing_docs)]

mod augment;
mod loader;
mod synthetic;

pub use augment::{hflip, shift_with_zero_fill, AugmentConfig, Augmenter};
pub use loader::{BatchIter, Batcher, IntoBatchIter, Split};
pub use synthetic::{SynthSpec, SyntheticDataset};
