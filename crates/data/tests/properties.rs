//! Property-based tests of the synthetic data substrate.

use mfdfp_data::{hflip, shift_with_zero_fill, Batcher, Split, SynthSpec, SyntheticDataset};
use mfdfp_tensor::{Shape, Tensor};
use proptest::prelude::*;

fn spec_strategy() -> impl Strategy<Value = SynthSpec> {
    (2usize..6, 1usize..4, 2usize..5, 0.0f32..1.0, 0u64..1000).prop_map(
        |(classes, channels, per_class, noise, seed)| SynthSpec {
            classes,
            channels,
            size: 8,
            per_class,
            noise,
            max_shift: 1,
            seed,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Generation is deterministic and balanced for any spec.
    #[test]
    fn generation_deterministic_and_balanced(spec in spec_strategy()) {
        let a = SyntheticDataset::generate(&spec);
        let b = SyntheticDataset::generate(&spec);
        prop_assert_eq!(a.len(), spec.len());
        for c in 0..spec.classes {
            prop_assert_eq!(a.labels().iter().filter(|&&l| l == c).count(), spec.per_class);
        }
        for i in 0..a.len() {
            prop_assert_eq!(a.sample(i).0.as_slice(), b.sample(i).0.as_slice());
        }
    }

    /// Every batcher pass covers every sample exactly once, shuffled or
    /// not, for any batch size.
    #[test]
    fn batcher_is_exact_cover(spec in spec_strategy(), batch in 1usize..20, shuffle_seed in 0u64..100) {
        let ds = SyntheticDataset::generate(&spec);
        let sequential: usize = Batcher::new(&ds, batch).iter().map(|(_, l)| l.len()).sum();
        prop_assert_eq!(sequential, ds.len());
        let shuffled: Vec<usize> =
            Batcher::new(&ds, batch).shuffled(shuffle_seed).flat_map(|(_, l)| l).collect();
        let mut sorted = shuffled.clone();
        sorted.sort_unstable();
        let mut reference: Vec<usize> = ds.labels().to_vec();
        reference.sort_unstable();
        prop_assert_eq!(sorted, reference);
    }

    /// Splits are disjoint and share the class structure for any spec.
    #[test]
    fn split_partitions_are_disjoint(spec in spec_strategy(), test_per_class in 1usize..4) {
        let split = Split::generate(&spec, test_per_class);
        prop_assert_eq!(split.train.len(), spec.len());
        prop_assert_eq!(split.test.len(), spec.classes * test_per_class);
        // Spot-check disjointness on the first samples of each class.
        for c in 0..spec.classes {
            let tr = split.train.sample(c * spec.per_class).0;
            let te = split.test.sample(c * test_per_class).0;
            prop_assert_ne!(tr.as_slice(), te.as_slice());
        }
    }

    /// hflip is an involution on arbitrary images.
    #[test]
    fn hflip_involution(vals in proptest::collection::vec(-2.0f32..2.0, 2 * 4 * 6)) {
        let img = Tensor::from_vec(vals.clone(), Shape::new(vec![2, 4, 6])).unwrap();
        let back = hflip(&hflip(&img));
        prop_assert_eq!(back.as_slice(), &vals[..]);
    }

    /// Shifting by (dy,dx) then (−dy,−dx) restores interior pixels.
    #[test]
    fn shift_inverse_on_interior(
        vals in proptest::collection::vec(-2.0f32..2.0, 6 * 6),
        dy in -2isize..=2,
        dx in -2isize..=2,
    ) {
        let img = Tensor::from_vec(vals, Shape::new(vec![1, 6, 6])).unwrap();
        let round = shift_with_zero_fill(&shift_with_zero_fill(&img, dy, dx), -dy, -dx);
        // Interior pixels (far enough from every edge) must survive.
        for y in 2..4 {
            for x in 2..4 {
                prop_assert_eq!(round.at(&[0, y, x]), img.at(&[0, y, x]));
            }
        }
    }

    /// Noise monotonicity: higher noise raises the average distance
    /// between same-class samples.
    #[test]
    fn noise_increases_intra_class_spread(seed in 0u64..200) {
        let quiet = SynthSpec { classes: 2, channels: 1, size: 8, per_class: 6, noise: 0.05, max_shift: 0, seed };
        let loud = SynthSpec { noise: 1.0, ..quiet };
        let spread = |spec: &SynthSpec| {
            let ds = SyntheticDataset::generate(spec);
            let mut acc = 0.0f32;
            let mut n = 0;
            for i in 0..6 {
                for j in (i + 1)..6 {
                    let d = ds.sample(i).0.zip_map(ds.sample(j).0, |a, b| (a - b) * (a - b)).unwrap();
                    acc += d.sum();
                    n += 1;
                }
            }
            acc / n as f32
        };
        prop_assert!(spread(&loud) > spread(&quiet));
    }
}
