//! Allocation-regression tests for the zero-allocation inference
//! contract: a **warmed** workspace pass over the packed quantized
//! datapath must perform *zero* heap allocations — the software
//! equivalent of the paper's fixed-buffer Figure 2(a) pipeline, and the
//! property that keeps steady-state serving traffic off the allocator.
//!
//! Mechanism: this test binary installs a counting [`GlobalAlloc`] that
//! increments a **per-thread** counter on every `alloc`/`realloc`/
//! `alloc_zeroed`. Per-thread counting makes the assertions immune to
//! libtest harness threads allocating concurrently; it also measures
//! exactly the right thing, because the zero-allocation contract is a
//! per-thread property (each worker owns its workspace).
//!
//! Scope of the contract, as documented in ARCHITECTURE.md:
//!
//! * the single-image forward (`forward_codes_with`) and the serial
//!   batched-logits entry (`logits_batch_into`) are strictly
//!   allocation-free once warm — asserted here at zero;
//! * the serving dispatch *compute* (batch staging + inference, what
//!   `dispatch_group` runs between popping a batch and materialising
//!   responses) is allocation-free once warm — asserted here at zero;
//! * response materialisation (the per-ticket logits `Tensor`, channel
//!   send) and engaging the thread pool (O(threads) task boxes per
//!   dispatch) allocate by design: those buffers leave the worker or
//!   coordinate other threads. They are excluded by construction below
//!   (single-image batches never engage the pool, and the models sit
//!   under the parallel kernel's work threshold), so the assertions hold
//!   under both feature sets — CI runs this file with and without
//!   `--features parallel`.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::hint::black_box;

use mfdfp_core::{calibrate, QuantizedNet};
use mfdfp_nn::zoo;
use mfdfp_serve::ServedModel;
use mfdfp_tensor::{qgemm_into_i8, Tensor, TensorRng};

thread_local! {
    static THREAD_ALLOCS: Cell<u64> = const { Cell::new(0) };
    static THREAD_BYTES: Cell<u64> = const { Cell::new(0) };
}

/// Counts this thread's allocator hits (and bytes requested), then
/// delegates to [`System`]. `try_with` keeps the allocator safe during
/// TLS teardown.
struct CountingAllocator;

fn count(bytes: usize) {
    let _ = THREAD_ALLOCS.try_with(|c| c.set(c.get() + 1));
    let _ = THREAD_BYTES.try_with(|c| c.set(c.get() + bytes as u64));
}

// SAFETY: pure pass-through to `System`; the TLS bump performs no
// allocation itself (`Cell<u64>` is const-initialised, no destructor).
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count(layout.size());
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count(new_size);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        count(layout.size());
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

/// Allocator hits on the *current thread* while `f` runs.
fn allocations<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = THREAD_ALLOCS.with(Cell::get);
    let result = f();
    let after = THREAD_ALLOCS.with(Cell::get);
    (after - before, result)
}

/// Allocator hits *and bytes requested* on the current thread while `f`
/// runs.
fn allocation_bytes<R>(f: impl FnOnce() -> R) -> (u64, u64, R) {
    let before = THREAD_ALLOCS.with(Cell::get);
    let before_bytes = THREAD_BYTES.with(Cell::get);
    let result = f();
    let after = THREAD_ALLOCS.with(Cell::get);
    let after_bytes = THREAD_BYTES.with(Cell::get);
    (after - before, after_bytes - before_bytes, result)
}

/// A small calibrated conv net (3×16×16 → 10 classes). Every layer sits
/// below the parallel kernel's MIN_MACS threshold, so the forward stays
/// on the calling thread under both feature sets — which is exactly the
/// regime the strict zero-allocation contract covers.
fn quantized_net(seed: u64) -> (QuantizedNet, Tensor) {
    let mut rng = TensorRng::seed_from(seed);
    let mut net = zoo::quick_custom(3, 16, [4, 4, 8], 16, 10, &mut rng).unwrap();
    let batch = rng.gaussian([2, 3, 16, 16], 0.0, 0.7);
    let plan = calibrate(&mut net, &[(batch.clone(), vec![0, 1])], 8).unwrap();
    (QuantizedNet::from_network(&net, &plan).unwrap(), batch)
}

/// A wider calibrated net whose packed payload (tens of KiB) dwarfs the
/// per-layer struct overhead — the regime where byte-counting cleanly
/// separates a zero-copy deserialiser from a copying one.
fn wide_quantized_net(seed: u64) -> QuantizedNet {
    let mut rng = TensorRng::seed_from(seed);
    let mut net = zoo::quick_custom(3, 16, [16, 16, 32], 64, 10, &mut rng).unwrap();
    let batch = rng.gaussian([2, 3, 16, 16], 0.0, 0.7);
    let plan = calibrate(&mut net, &[(batch, vec![0, 1])], 8).unwrap();
    QuantizedNet::from_network(&net, &plan).unwrap()
}

/// Packed weight + bias bytes a copying deserialiser would have to clone.
fn payload_bytes(net: &QuantizedNet) -> u64 {
    net.layers()
        .iter()
        .map(|l| match l {
            mfdfp_core::QLayer::Conv(c) => (c.weights.as_bytes().len() + 8 * c.bias.len()) as u64,
            mfdfp_core::QLayer::Linear(l) => (l.weights.as_bytes().len() + 8 * l.bias.len()) as u64,
            _ => 0,
        })
        .sum()
}

#[test]
fn warm_qgemm_i8_kernel_is_allocation_free() {
    let mut rng = TensorRng::seed_from(7);
    let raw = rng.gaussian([32 * 32], 0.0, 0.3);
    let w = mfdfp_dfp::PackedPow2Matrix::from_f32(32, 32, raw.as_slice()).unwrap();
    let xt: Vec<i8> = (0..32 * 32).map(|i| (i % 251) as i8).collect();
    let bias = vec![0i64; 32];
    let mut out = vec![0i8; 32 * 32];
    // Warm-up: grows the thread's accumulator-lane scratch.
    qgemm_into_i8(&w, 0, 32, &xt, 32, &bias, 13, 4, &mut out).unwrap();
    let (allocs, ()) = allocations(|| {
        for _ in 0..10 {
            qgemm_into_i8(
                black_box(&w),
                0,
                32,
                black_box(&xt),
                32,
                &bias,
                13,
                4,
                black_box(&mut out),
            )
            .unwrap();
        }
    });
    assert_eq!(allocs, 0, "warmed qgemm_into_i8 must not touch the heap");
}

#[test]
fn warm_forward_codes_with_is_allocation_free() {
    let (qnet, batch) = quantized_net(21);
    let img = batch.index_axis0(0);
    let mut ws = qnet.plan().workspace();
    // One warm-up pass grows the per-thread accumulator lanes (the one
    // buffer a per-model plan cannot pre-size: it belongs to the thread,
    // not the model).
    qnet.forward_codes_with(&img, &mut ws).unwrap();
    let (allocs, ()) = allocations(|| {
        for _ in 0..10 {
            let codes = qnet.forward_codes_with(black_box(&img), &mut ws).unwrap();
            black_box(codes);
        }
    });
    assert_eq!(allocs, 0, "warmed forward_codes_with must not touch the heap");
}

#[test]
fn warm_logits_batch_into_is_allocation_free() {
    let (qnet, batch) = quantized_net(22);
    let img = batch.index_axis0(0);
    let mut ws = qnet.plan().workspace();
    let mut out = vec![0.0f32; qnet.classes()];
    qnet.logits_batch_into(img.as_slice(), 1, &mut ws, &mut out).unwrap();
    let (allocs, ()) = allocations(|| {
        for _ in 0..10 {
            qnet.logits_batch_into(black_box(img.as_slice()), 1, &mut ws, &mut out).unwrap();
        }
    });
    assert_eq!(allocs, 0, "warmed logits_batch_into must not touch the heap");
    black_box(&out);
}

/// A deliberately narrow calibrated conv net (1×16×16 → 4 classes)
/// whose **fused** forward stays under the parallel kernel's MIN_MACS
/// threshold even at batch 8 (conv1 is 2 rows · 25 syn · 256 px =
/// 12 800 MACs/image, 8 × 12 800 = 102 400 < 2¹⁷ — `quantized_net`'s
/// 75-synapse conv1 is 76 800 MACs/image and would cross it at batch
/// 2 and engage the pool). That keeps the whole batched forward on the
/// calling thread under both feature sets, which is the regime the
/// strict zero-allocation assertions cover.
fn small_quantized_net(seed: u64) -> QuantizedNet {
    let mut rng = TensorRng::seed_from(seed);
    let mut net = zoo::quick_custom(1, 16, [2, 2, 4], 8, 4, &mut rng).unwrap();
    let batch = rng.gaussian([2, 1, 16, 16], 0.0, 0.7);
    let plan = calibrate(&mut net, &[(batch, vec![0, 1])], 8).unwrap();
    QuantizedNet::from_network(&net, &plan).unwrap()
}

#[test]
fn warm_fused_batch_forward_is_allocation_free() {
    // The batch-fused contract: one im2col + one qgemm per layer per
    // *batch*, with every staging buffer drawn from a batch-sized plan —
    // zero heap traffic once warm.
    let qnet = small_quantized_net(26);
    let mut rng = TensorRng::seed_from(26);
    let batch = rng.gaussian([4, 1, 16, 16], 0.0, 0.7);
    let mut ws = qnet.plan_for_batch(4).workspace();
    let mut out = vec![0.0f32; 4 * qnet.classes()];
    qnet.logits_batch_into(batch.as_slice(), 4, &mut ws, &mut out).unwrap();
    let (allocs, ()) = allocations(|| {
        for _ in 0..10 {
            qnet.logits_batch_into(black_box(batch.as_slice()), 4, &mut ws, &mut out).unwrap();
        }
    });
    assert_eq!(allocs, 0, "warmed batch-fused logits_batch_into must not touch the heap");
    black_box(&out);
}

#[test]
fn batched_plan_serves_smaller_batches_without_reallocating() {
    // A workspace sized by `plan_for_batch(8)` — what a serving worker
    // builds for its coalescing limit — must absorb every batch size
    // 1..=8 with zero heap traffic once the thread lanes are warm.
    // (On models big enough to cross MIN_MACS, a parallel build's fused
    // dispatch engages the pool instead, whose per-dispatch task boxes
    // allocate by design — the documented exception; this net stays
    // serial in both feature sets so the strict assertion applies.)
    let qnet = small_quantized_net(27);
    let per_image = 16 * 16; // one channel
    let mut rng = TensorRng::seed_from(27);
    let big = rng.gaussian([8, 1, 16, 16], 0.0, 0.7);
    let plan = qnet.plan_for_batch(8);
    let mut ws = plan.workspace();
    let mut out = vec![0.0f32; 8 * qnet.classes()];
    // Warm-up at the largest batch grows the thread's accumulator
    // lanes; the plan covers everything else up front.
    qnet.logits_batch_into(big.as_slice(), 8, &mut ws, &mut out).unwrap();
    for b in 1..=8usize {
        let (allocs, ()) = allocations(|| {
            qnet.logits_batch_into(
                black_box(&big.as_slice()[..b * per_image]),
                b,
                &mut ws,
                &mut out[..b * qnet.classes()],
            )
            .unwrap();
        });
        assert_eq!(allocs, 0, "batch {b} reallocated under a max_batch=8 plan");
    }
    assert!(ws.is_warm_for(&plan), "smaller batches must leave the workspace warm");
    black_box(&out);
}

#[test]
fn warm_serve_dispatch_compute_is_allocation_free() {
    // The steady-state work a serving worker performs per request, with
    // response materialisation excluded: stage the admitted image into
    // the batch buffer, run the batched inference through the model the
    // worker resolved at admission, read the logits row. This mirrors
    // `dispatch_group`'s compute (same entry point, same buffers) on a
    // warmed worker.
    let (qnet, batch) = quantized_net(23);
    let model: ServedModel = qnet.into();
    let img = batch.index_axis0(1);
    let classes = model.classes();
    // The worker's persistent scratch, as in serve's `WorkerScratch`:
    // batch staging + logits block + an owned inference workspace.
    let mut ws = model.plan().workspace();
    let mut data: Vec<f32> = Vec::with_capacity(img.len());
    let mut logits = vec![0.0f32; classes];
    // Warm-up request.
    data.extend_from_slice(img.as_slice());
    model.logits_batch_into(&data, 1, &mut ws, &mut logits, model.members()).unwrap();
    let (allocs, ()) = allocations(|| {
        for _ in 0..10 {
            data.clear();
            data.extend_from_slice(black_box(img.as_slice()));
            model.logits_batch_into(&data, 1, &mut ws, &mut logits, model.members()).unwrap();
            black_box(&logits);
        }
    });
    assert_eq!(allocs, 0, "a warmed serve request's compute must not touch the heap");
}

#[test]
fn from_image_is_zero_copy_and_o_layers() {
    // The v2 flat-image contract: `QuantizedNet::from_image` borrows
    // every weight and bias payload from the image buffer, so building a
    // servable network costs O(layers) *small* allocations — layer
    // structs, the name, the adder tree — and crucially cannot allocate
    // anywhere near the payload size (which a copying deserialiser, like
    // the v1 `from_bytes`, must).
    let wide = wide_quantized_net(25);
    let image = std::sync::Arc::new(mfdfp_core::to_image(&wide));
    let payload = payload_bytes(&wide);
    let n_layers = wide.layers().len() as u64;

    let (allocs, bytes, _served_wide) = allocation_bytes(|| {
        let view = mfdfp_core::ImageView::open(std::sync::Arc::clone(&image)).unwrap();
        mfdfp_core::QuantizedNet::from_image(&view).unwrap()
    });
    assert!(
        allocs <= 6 * n_layers + 16,
        "from_image must be O(layers) small allocations ({n_layers} layers), saw {allocs}"
    );
    assert!(
        bytes < payload / 2,
        "from_image allocated {bytes} bytes against {payload} payload bytes — \
         weights or biases are being copied"
    );

    // …and an image-backed network honours the same warmed
    // zero-allocation forward contract as the owned one (asserted on the
    // small net, which stays under the parallel kernel's threshold).
    let (qnet, batch) = quantized_net(25);
    let view =
        mfdfp_core::ImageView::open(std::sync::Arc::new(mfdfp_core::to_image(&qnet))).unwrap();
    let served = mfdfp_core::QuantizedNet::from_image(&view).unwrap();
    let img = batch.index_axis0(0);
    let mut ws = served.plan().workspace();
    served.forward_codes_with(&img, &mut ws).unwrap();
    let (allocs, ()) = allocations(|| {
        for _ in 0..10 {
            let codes = served.forward_codes_with(black_box(&img), &mut ws).unwrap();
            black_box(codes);
        }
    });
    assert_eq!(allocs, 0, "warmed forward over an image-backed net must not touch the heap");
}

#[test]
fn load_zoo_does_not_copy_payloads() {
    // Registry-level variant of the zero-copy proof: mapping a 3-model
    // zoo allocates far less than the summed payloads it serves.
    let nets: Vec<QuantizedNet> = (0..3).map(|i| wide_quantized_net(30 + i)).collect();
    let mut builder = mfdfp_core::ZooBuilder::new();
    for (i, net) in nets.iter().enumerate() {
        builder.push(&format!("m{i}"), net);
    }
    let image = std::sync::Arc::new(builder.finish());
    let payload: u64 = nets.iter().map(payload_bytes).sum();

    let registry = mfdfp_serve::ModelRegistry::new();
    let (_, bytes, names) = allocation_bytes(|| registry.load_zoo(image).unwrap());
    assert_eq!(names.len(), 3);
    assert!(
        bytes < payload / 2,
        "load_zoo allocated {bytes} bytes against {payload} payload bytes — \
         models are being copied out of the zoo image"
    );
}

/// The flight recorder's hot-path contract: once a thread's ring is
/// registered (the one-time warm-up allocation), recording spans and op
/// counts is strictly allocation-free — so leaving `obs` compiled into a
/// production serve build cannot perturb the zero-allocation inference
/// contract it observes.
#[cfg(feature = "obs")]
#[test]
fn warm_spans_and_counters_allocate_nothing() {
    // Warm-up: the first event on a thread registers its ring.
    drop(mfdfp_obs::span!("alloc.warmup", 1));
    let (allocs, ()) = allocations(|| {
        for i in 0..256u64 {
            let _span = mfdfp_obs::span!("alloc.probe", i);
            mfdfp_obs::ops::record_shift_macs(1024);
            mfdfp_obs::ops::record_im2col_bytes(64);
            let t = mfdfp_obs::now_ns();
            mfdfp_obs::record_complete("alloc.manual", i, t, t + 1);
        }
    });
    assert_eq!(allocs, 0, "warm span/counter recording must not touch the heap");
}

#[test]
fn planned_workspace_first_pass_allocates_only_thread_lanes() {
    // The plan() claim: with a pre-sized workspace, the only first-pass
    // allocations left are the thread-resident accumulator lanes (and
    // they are not per-model state). A generous bound keeps this robust
    // while still catching any per-layer allocation creeping back in:
    // the seed net runs 3 convs + 2 linears + pools, so a regression to
    // per-call buffers would cost dozens of allocations.
    let (qnet, batch) = quantized_net(24);
    let img = batch.index_axis0(0);
    let mut ws = qnet.plan().workspace();
    let (allocs, _) =
        allocations(|| qnet.forward_codes_with(&img, &mut ws).map(<[i8]>::to_vec).unwrap());
    assert!(
        allocs <= 6,
        "planned first pass should allocate at most the thread lanes + result vec, saw {allocs}"
    );
}
