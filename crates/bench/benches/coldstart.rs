//! Cold-start latency: model bytes on disk → first logit served. This is
//! the metric the v2 flat image exists for — a fleet worker mapping a
//! model (or a whole zoo) should pay validation + O(layers) bookkeeping,
//! not a payload decode.
//!
//! Two deserialisation paths over the same networks:
//!
//! * `v1_stream` — the PR-2 streaming format: unpack every nibble,
//!   re-pack into owned matrices, copy every bias;
//! * `v2_image` — `ImageView::open` + `QuantizedNet::from_image`:
//!   validate, then borrow payloads zero-copy from the aligned buffer.
//!
//! Plus `zoo_to_first_logit` over 1/3/8-model zoo images through
//! `ModelRegistry::load_zoo`, the serving cold-start end to end.
//!
//! Results are recorded in `BENCH_coldstart.json`; regenerate with
//! `CRITERION_SHIM_OUT=path cargo bench -p mfdfp-bench --bench coldstart
//! [--features parallel]`.

use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use mfdfp_core::{calibrate, from_bytes, to_bytes, to_image, ImageView, QuantizedNet, ZooBuilder};
use mfdfp_dfp::AlignedBytes;
use mfdfp_nn::zoo;
use mfdfp_serve::ModelRegistry;
use mfdfp_tensor::{Tensor, TensorRng};

/// A deployment-shaped quantized net (3×16×16 input, 10 classes).
fn qnet(seed: u64) -> QuantizedNet {
    let mut rng = TensorRng::seed_from(seed);
    let mut net = zoo::quick_custom(3, 16, [8, 8, 16], 32, 10, &mut rng).expect("topology");
    let batch = rng.gaussian([4, 3, 16, 16], 0.0, 0.6);
    let plan = calibrate(&mut net, &[(batch, vec![0usize; 4])], 8).expect("calibration");
    QuantizedNet::from_network(&net, &plan).expect("quantize")
}

fn test_image() -> Tensor {
    TensorRng::seed_from(99).gaussian([3, 16, 16], 0.0, 0.6)
}

/// Bytes → first logit for one model, both formats.
fn bench_model_coldstart(c: &mut Criterion) {
    let net = qnet(11);
    let v1 = to_bytes(&net);
    let v2 = Arc::new(to_image(&net));
    let img = test_image();

    let mut group = c.benchmark_group("model_to_first_logit");
    group.throughput(Throughput::Bytes(v1.len() as u64));
    group.bench_function("v1_stream", |b| {
        b.iter(|| {
            let net = from_bytes(black_box(&v1)).expect("v1 decode");
            black_box(net.logits(&img).expect("logits"))
        })
    });
    group.throughput(Throughput::Bytes(v2.len() as u64));
    group.bench_function("v2_image", |b| {
        b.iter(|| {
            let view = ImageView::open(Arc::clone(black_box(&v2))).expect("open");
            let net = QuantizedNet::from_image(&view).expect("from_image");
            black_box(net.logits(&img).expect("logits"))
        })
    });
    // Deserialise only (no forward): the pure open cost.
    group.bench_function("v1_stream_open_only", |b| {
        b.iter(|| black_box(from_bytes(black_box(&v1)).expect("v1 decode")))
    });
    group.bench_function("v2_image_open_only", |b| {
        b.iter(|| {
            let view = ImageView::open(Arc::clone(black_box(&v2))).expect("open");
            black_box(QuantizedNet::from_image(&view).expect("from_image"))
        })
    });
    group.finish();
}

/// Zoo image → registry → first logit from the last model, per zoo size.
fn bench_zoo_coldstart(c: &mut Criterion) {
    let img = TensorRng::seed_from(99).gaussian([1, 3, 16, 16], 0.0, 0.6);
    let mut group = c.benchmark_group("zoo_to_first_logit");
    for n_models in [1usize, 3, 8] {
        let mut builder = ZooBuilder::new();
        for i in 0..n_models {
            builder.push(&format!("m{i}"), &qnet(50 + i as u64));
        }
        let bytes: AlignedBytes = builder.finish();
        let zoo = Arc::new(bytes);
        group.throughput(Throughput::Bytes(zoo.len() as u64));
        group.bench_function(&format!("models_{n_models}"), |b| {
            b.iter(|| {
                let registry = ModelRegistry::new();
                let names = registry.load_zoo(Arc::clone(black_box(&zoo))).expect("load_zoo");
                let model = registry.get(names.last().expect("non-empty")).expect("get");
                let logits = model.logits_batch(&img).expect("logits");
                black_box(logits)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_model_coldstart, bench_zoo_coldstart);
criterion_main!(benches);
