//! Dispatch-cost microbenchmarks for the persistent `mfdfp-rt` pool —
//! the numbers that justify the PR-4 runtime: a pool dispatch (an
//! enqueue and a wake) versus the per-call `std::thread::scope`
//! spawn/join it replaced, and the small-matrix GEMM sizes the lowered
//! `MIN_MACS` threshold newly lets fan out.
//!
//! On the 1-CPU CI container the pool runs at width 1 (fan-out
//! disabled, dispatchers fall back to serial kernels), so `scope_noop`
//! there measures pure scope bookkeeping and the GEMM rows measure the
//! serial kernels; on multi-core hosts `scope_noop` vs
//! `thread_scope_noop` is the spawn-free dispatch claim, directly.
//!
//! Results are recorded in `BENCH_gemm.json` runs; regenerate with
//! `CRITERION_SHIM_OUT=path cargo bench -p mfdfp-bench --bench
//! pool_dispatch [--features parallel]`.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use mfdfp_tensor::{gemm, Tensor, Transpose};

/// Fan out `width` trivial tasks on the persistent pool, once.
fn bench_pool_scope(c: &mut Criterion) {
    let pool = mfdfp_rt::global();
    let width = pool.threads();
    let mut group = c.benchmark_group("pool_dispatch");
    group.bench_function("scope_noop", |b| {
        b.iter(|| {
            pool.scope(|s| {
                for _ in 0..width {
                    s.spawn(|| {
                        black_box(());
                    });
                }
            });
        });
    });
    // The spawn/join alternative this runtime retired, at equal fan-out.
    group.bench_function("thread_scope_noop", |b| {
        b.iter(|| {
            std::thread::scope(|s| {
                for _ in 0..width {
                    s.spawn(|| {
                        black_box(());
                    });
                }
            });
        });
    });
    group.finish();
}

/// Small square GEMMs around the lowered dispatch threshold
/// (`MIN_MACS = 1 << 17` = 131 k MACs): 64³ (262 k) and 96³ (885 k)
/// newly qualify for fan-out on multi-core hosts (both sat below the
/// old `1 << 20` bound), while 128³ (2 M) qualified under both — the
/// continuity anchor against the PR-1/PR-3 trajectory.
fn bench_small_gemm(c: &mut Criterion) {
    for n in [64usize, 96, 128] {
        let a = Tensor::from_fn(vec![n, n], |i| ((i * 31 % 101) as f32 - 50.0) / 25.0);
        let b = Tensor::from_fn(vec![n, n], |i| ((i * 17 % 97) as f32 - 48.0) / 24.0);
        let mut group = c.benchmark_group(&format!("gemm_{n}"));
        group.throughput(Throughput::Elements((n * n * n) as u64));
        group.bench_function("dispatch", |bch| {
            bch.iter(|| {
                let c = gemm(black_box(&a), Transpose::No, black_box(&b), Transpose::No).unwrap();
                black_box(c);
            });
        });
        group.finish();
    }
}

criterion_group!(benches, bench_pool_scope, bench_small_gemm);
criterion_main!(benches);
