//! Convolution throughput: float im2col+GEMM forward vs the bit-accurate
//! integer shift datapath on the same geometry.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mfdfp_accel::ShiftConv;
use mfdfp_dfp::{AdderTree, Pow2Weight};
use mfdfp_tensor::{conv2d_forward, ConvGeometry, Tensor, TensorRng};

fn bench(c: &mut Criterion) {
    // A mid-size layer: 16×16×16 input, 16 kernels of 5×5.
    let g = ConvGeometry::new(16, 16, 16, 16, 5, 1, 2).expect("geometry");
    let mut rng = TensorRng::seed_from(3);
    let x = rng.gaussian([1, g.in_c, g.in_h, g.in_w], 0.0, 0.5);
    let w = rng.he([g.out_c, g.in_c, g.kernel, g.kernel], g.col_height());
    let bias = Tensor::zeros([g.out_c]);

    let mut group = c.benchmark_group("conv_forward");

    group.bench_function("float_im2col_gemm", |b| {
        b.iter(|| black_box(conv2d_forward(black_box(&x), &w, &bias, &g).expect("conv")))
    });

    let shift = ShiftConv {
        geom: g,
        weights: w.as_slice().iter().map(|&v| Pow2Weight::from_f32(v)).collect(),
        bias: vec![0; g.out_c],
        in_frac: 7,
        out_frac: 5,
    };
    let codes: Vec<i8> = x
        .index_axis0(0)
        .as_slice()
        .iter()
        .map(|&v| (v * 128.0).clamp(-128.0, 127.0) as i8)
        .collect();
    let tree = AdderTree::new(16).expect("tree");
    group.bench_function("integer_shift_datapath", |b| {
        b.iter(|| black_box(shift.run(black_box(&codes), &tree).expect("shift conv")))
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
