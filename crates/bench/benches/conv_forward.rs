//! Convolution throughput: float im2col+GEMM forward vs the bit-accurate
//! integer shift datapath on the same geometry, plus serial-vs-parallel
//! comparisons for the GEMM and batched-conv hot paths (build with
//! `--features parallel` to exercise the threaded kernels).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use mfdfp_accel::ShiftConv;
use mfdfp_dfp::PackedPow2Matrix;
use mfdfp_tensor::{
    conv2d_forward, conv2d_forward_serial, gemm, gemm_serial, ConvGeometry, Tensor, TensorRng,
    Transpose,
};

/// The acceptance case for the parallel path: a 256×256×256 product.
fn bench_gemm_256(c: &mut Criterion) {
    let n = 256;
    let mut rng = TensorRng::seed_from(7);
    let a = rng.uniform([n, n], -1.0, 1.0);
    let b = rng.uniform([n, n], -1.0, 1.0);

    let mut group = c.benchmark_group("gemm_256");
    group.throughput(Throughput::Elements((n * n * n) as u64));

    group.bench_function("serial", |bch| {
        bch.iter(|| {
            black_box(gemm_serial(black_box(&a), Transpose::No, &b, Transpose::No).expect("gemm"))
        })
    });

    // With `--features parallel` this dispatches to the row-parallel
    // kernel; without it, it is the serial kernel again (baseline parity).
    group.bench_function("dispatch", |bch| {
        bch.iter(|| black_box(gemm(black_box(&a), Transpose::No, &b, Transpose::No).expect("gemm")))
    });

    #[cfg(feature = "parallel")]
    group.bench_function("parallel", |bch| {
        bch.iter(|| {
            black_box(
                mfdfp_tensor::gemm_parallel(black_box(&a), Transpose::No, &b, Transpose::No)
                    .expect("gemm"),
            )
        })
    });

    group.finish();
}

/// Batched conv forward: the batch-parallel path vs the serial loop.
fn bench_conv_batch(c: &mut Criterion) {
    let g = ConvGeometry::new(8, 16, 16, 16, 3, 1, 1).expect("geometry");
    let batch = 16;
    let mut rng = TensorRng::seed_from(11);
    let x = rng.gaussian([batch, g.in_c, g.in_h, g.in_w], 0.0, 0.5);
    let w = rng.he([g.out_c, g.in_c, g.kernel, g.kernel], g.col_height());
    let bias = Tensor::zeros([g.out_c]);

    let mut group = c.benchmark_group("conv_forward_batch16");
    group.throughput(Throughput::Elements((batch * g.macs()) as u64));

    group.bench_function("serial", |b| {
        b.iter(|| black_box(conv2d_forward_serial(black_box(&x), &w, &bias, &g).expect("conv")))
    });

    group.bench_function("dispatch", |b| {
        b.iter(|| black_box(conv2d_forward(black_box(&x), &w, &bias, &g).expect("conv")))
    });

    #[cfg(feature = "parallel")]
    group.bench_function("parallel", |b| {
        b.iter(|| {
            black_box(
                mfdfp_tensor::conv2d_forward_parallel(black_box(&x), &w, &bias, &g).expect("conv"),
            )
        })
    });

    group.finish();
}

fn bench(c: &mut Criterion) {
    // A mid-size layer: 16×16×16 input, 16 kernels of 5×5.
    let g = ConvGeometry::new(16, 16, 16, 16, 5, 1, 2).expect("geometry");
    let mut rng = TensorRng::seed_from(3);
    let x = rng.gaussian([1, g.in_c, g.in_h, g.in_w], 0.0, 0.5);
    let w = rng.he([g.out_c, g.in_c, g.kernel, g.kernel], g.col_height());
    let bias = Tensor::zeros([g.out_c]);

    let mut group = c.benchmark_group("conv_forward");

    group.bench_function("float_im2col_gemm", |b| {
        b.iter(|| black_box(conv2d_forward(black_box(&x), &w, &bias, &g).expect("conv")))
    });

    let shift = ShiftConv {
        geom: g,
        weights: PackedPow2Matrix::from_f32(g.out_c, g.col_height(), w.as_slice())
            .expect("packed weights"),
        bias: vec![0; g.out_c].into(),
        in_frac: 7,
        out_frac: 5,
    };
    let codes: Vec<i8> = x
        .index_axis0(0)
        .as_slice()
        .iter()
        .map(|&v| (v * 128.0).clamp(-128.0, 127.0) as i8)
        .collect();
    // Since PR 3 this measures the packed shift-only qgemm path; the
    // decode-based datapath baseline lives in benches/qgemm.rs.
    group.bench_function("integer_shift_datapath", |b| {
        b.iter(|| black_box(shift.run(black_box(&codes)).expect("shift conv")))
    });

    group.finish();
}

criterion_group!(benches, bench, bench_gemm_256, bench_conv_batch);
criterion_main!(benches);
