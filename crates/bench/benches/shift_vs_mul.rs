//! The claim behind the hardware: multiplication by a power-of-two weight
//! is a shift. Software analogue: integer shift-MAC vs f32 multiply-MAC
//! throughput on the same operand streams.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use mfdfp_dfp::Pow2Weight;
use mfdfp_tensor::{Tensor, TensorRng};

const N: usize = 1 << 14;

fn operands() -> (Vec<f32>, Vec<f32>, Vec<i32>, Vec<Pow2Weight>) {
    let mut rng = TensorRng::seed_from(42);
    let xs_f: Vec<f32> = rng.uniform([N], -1.0, 1.0).into_vec();
    let ws_f: Vec<f32> = rng.uniform([N], -1.0, 1.0).into_vec();
    let xs_i: Vec<i32> = xs_f.iter().map(|&x| (x * 127.0) as i32).collect();
    let ws_q: Vec<Pow2Weight> = ws_f.iter().map(|&w| Pow2Weight::from_f32(w)).collect();
    (xs_f, ws_f, xs_i, ws_q)
}

fn bench(c: &mut Criterion) {
    let (xs_f, ws_f, xs_i, ws_q) = operands();
    let mut group = c.benchmark_group("mac_lane");
    group.throughput(Throughput::Elements(N as u64));

    group.bench_function("f32_multiply_accumulate", |b| {
        b.iter(|| {
            let mut acc = 0.0f32;
            for (x, w) in xs_f.iter().zip(&ws_f) {
                acc += x * w;
            }
            black_box(acc)
        })
    });

    group.bench_function("pow2_shift_accumulate", |b| {
        b.iter(|| {
            let mut acc = 0i64;
            for (x, w) in xs_i.iter().zip(&ws_q) {
                acc += w.mul_shift(*x) as i64;
            }
            black_box(acc)
        })
    });

    group.bench_function("pow2_quantize_weights", |b| {
        b.iter(|| {
            let q: Vec<Pow2Weight> =
                ws_f.iter().map(|&w| Pow2Weight::from_f32(black_box(w))).collect();
            black_box(q)
        })
    });

    // The same MAC stream expressed as a 1×N·N×1 GEMM through the tensor
    // kernel entry point (the path the network forward pass actually takes).
    let row = Tensor::from_vec(xs_f.clone(), mfdfp_tensor::Shape::d2(1, N)).expect("row");
    let col = Tensor::from_vec(ws_f.clone(), mfdfp_tensor::Shape::d2(N, 1)).expect("col");
    group.bench_function("f32_gemm_kernel_mac", |b| {
        b.iter(|| {
            black_box(
                mfdfp_tensor::gemm(
                    black_box(&row),
                    mfdfp_tensor::Transpose::No,
                    &col,
                    mfdfp_tensor::Transpose::No,
                )
                .expect("gemm"),
            )
        })
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
