//! The paper's signature operation, three ways: the packed shift-only
//! `qgemm` kernel (PR 3 hot path) against the decode-based alternatives it
//! replaced — per-element `mul_shift` over pre-decoded `Pow2Weight`s (the
//! PR-1-era storage) and unpack-then-multiply (what a packed store would
//! cost without a packed kernel). Plus the end-to-end effect on a whole
//! quantized network forward pass.
//!
//! Results are recorded in `BENCH_qgemm.json`; regenerate with
//! `CRITERION_SHIM_OUT=path cargo bench -p mfdfp-bench --bench qgemm
//! [--features parallel]`.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use mfdfp_core::{calibrate, QuantizedNet};
use mfdfp_dfp::{realign, saturate, PackedPow2Matrix, Pow2Weight};
use mfdfp_nn::zoo;
use mfdfp_tensor::{qgemm, qgemm_into_i8, TensorRng};

fn xorshift(seed: u64) -> impl FnMut() -> u64 {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    }
}

/// The decode-path inner loop: per-element `mul_shift` on materialised
/// `Pow2Weight`s, i64 accumulate, route — the generic-shape arithmetic the
/// packed kernel specialises away. Takes activations in its own preferred
/// layout (`ncols × k`: each output's receptive field contiguous, exactly
/// how the old per-output gather presented them).
fn decode_gemm(
    ws: &[Pow2Weight],
    k: usize,
    x_cols: &[i32],
    ncols: usize,
    bias: &[i64],
    acc_frac: i32,
    out_frac: i32,
) -> Vec<i8> {
    let rows = ws.len() / k;
    let mut out = Vec::with_capacity(rows * ncols);
    for r in 0..rows {
        let wrow = &ws[r * k..(r + 1) * k];
        for j in 0..ncols {
            let xcol = &x_cols[j * k..(j + 1) * k];
            let mut acc = bias[r];
            for (w, &x) in wrow.iter().zip(xcol) {
                acc += w.mul_shift(x) as i64;
            }
            out.push(saturate(realign(acc, acc_frac, out_frac), 8) as i8);
        }
    }
    out
}

/// 256×256 weights × 256 activation columns — the same 256³ MAC volume as
/// the float `gemm_256` acceptance case.
fn bench_qgemm_256(c: &mut Criterion) {
    let n = 256usize;
    let mut next = xorshift(42);
    let codes: Vec<Pow2Weight> =
        (0..n * n).map(|_| Pow2Weight::decode4((next() % 16) as u8).unwrap()).collect();
    let w = PackedPow2Matrix::from_weights(n, n, &codes).expect("packed weights");
    // The packed kernel streams the im2col layout (k × ncols); the decode
    // loop gets the same values transposed (ncols × k), its own best case.
    let xt: Vec<i32> = (0..n * n).map(|_| (next() % 256) as u8 as i8 as i32).collect();
    let mut x_cols = vec![0i32; n * n];
    for c in 0..n {
        for j in 0..n {
            x_cols[j * n + c] = xt[c * n + j];
        }
    }
    let bias = vec![0i64; n];
    let (acc_frac, out_frac) = (7 + 7, 4);

    let mut group = c.benchmark_group("qgemm_256");
    group.throughput(Throughput::Elements((n * n * n) as u64));

    // The PR-3 hot path: nibbles in, codes out, no decode anywhere
    // (i32-staged activations, per-call 9-bit operand audit).
    group.bench_function("packed_shift_only", |b| {
        b.iter(|| {
            black_box(qgemm(black_box(&w), &xt, n, &bias, acc_frac, out_frac).expect("qgemm"))
        })
    });

    // The PR-5 hot path: the same product streamed from `i8` activation
    // codes — a quarter of the im2col traffic, no audit scan (structural
    // 9-bit bound), output into a warm caller buffer, accumulator lanes
    // in thread scratch. Zero allocations inside the timed body.
    let xt8: Vec<i8> = xt.iter().map(|&x| x as i8).collect();
    let mut out8 = vec![0i8; n * n];
    group.bench_function("packed_shift_only_i8_warm", |b| {
        b.iter(|| {
            qgemm_into_i8(
                black_box(&w),
                0,
                n,
                black_box(&xt8),
                n,
                &bias,
                acc_frac,
                out_frac,
                &mut out8,
            )
            .expect("qgemm_i8");
            black_box(&mut out8);
        })
    });

    // PR-1-era storage: weights already decoded (4× the memory traffic),
    // generic per-element mul_shift loop.
    let predecoded = w.to_weights();
    group.bench_function("predecoded_mul_shift", |b| {
        b.iter(|| {
            black_box(decode_gemm(black_box(&predecoded), n, &x_cols, n, &bias, acc_frac, out_frac))
        })
    });

    // Packed storage without a packed kernel: pay the nibble unpack on
    // every call, then the same generic loop — the decode-overhead
    // microbench the packed kernel must beat.
    group.bench_function("unpack_then_mul_shift", |b| {
        b.iter(|| {
            let ws = black_box(&w).to_weights();
            black_box(decode_gemm(&ws, n, &x_cols, n, &bias, acc_frac, out_frac))
        })
    });

    group.finish();
}

/// Whole-network effect: integer forward pass of the quantized net on the
/// packed path vs the decode-based adder-tree reference datapath.
fn bench_qnet_forward(c: &mut Criterion) {
    let mut rng = TensorRng::seed_from(12);
    let mut net = zoo::quick_custom(3, 16, [8, 8, 16], 32, 10, &mut rng).expect("topology");
    let batch = rng.gaussian([4, 3, 16, 16], 0.0, 0.6);
    let calib = vec![(batch.clone(), vec![0usize; 4])];
    let plan = calibrate(&mut net, &calib, 8).expect("calibration");
    let qnet = QuantizedNet::from_network(&net, &plan).expect("quantize");
    let img = batch.index_axis0(0);

    let mut group = c.benchmark_group("qnet_forward");
    group.bench_function("packed_shift_only", |b| {
        b.iter(|| black_box(qnet.forward_codes(black_box(&img)).expect("forward")))
    });
    // The PR-5 steady-state serving path: a planned workspace reused
    // across calls — zero heap allocations per forward once warm.
    let mut ws = qnet.plan().workspace();
    qnet.forward_codes_with(&img, &mut ws).expect("warm-up");
    group.bench_function("packed_warm_workspace", |b| {
        b.iter(|| {
            let codes = qnet.forward_codes_with(black_box(&img), &mut ws).expect("forward");
            black_box(codes.len())
        })
    });
    group.bench_function("decode_adder_tree_reference", |b| {
        b.iter(|| black_box(qnet.forward_codes_reference(black_box(&img)).expect("forward")))
    });
    group.finish();
}

/// PR-8 serving regime: the batch-fused forward (one im2col + one qgemm
/// per layer per *batch*, element-interleaved columns) against the
/// retained per-image oracle loop over the same warm workspace, at the
/// batch sizes the serving batcher actually forms. Both sides produce
/// bit-identical logits; the delta is pure scheduling.
fn bench_batched_forward(c: &mut Criterion) {
    let mut rng = TensorRng::seed_from(13);
    let mut net = zoo::quick_custom(3, 16, [8, 8, 16], 32, 10, &mut rng).expect("topology");
    let calib = rng.gaussian([4, 3, 16, 16], 0.0, 0.6);
    let plan = calibrate(&mut net, &[(calib, vec![0usize; 4])], 8).expect("calibration");
    let qnet = QuantizedNet::from_network(&net, &plan).expect("quantize");
    let data = rng.gaussian([8, 3, 16, 16], 0.0, 0.6);
    let per_image = 3 * 16 * 16;

    let mut group = c.benchmark_group("qnet_forward_batched");
    for &bsz in &[1usize, 4, 8] {
        let slice = &data.as_slice()[..bsz * per_image];
        let mut ws = qnet.plan_for_batch(bsz).workspace();
        let mut out = vec![0.0f32; bsz * qnet.classes()];
        group.throughput(Throughput::Elements(bsz as u64));
        qnet.logits_batch_into(slice, bsz, &mut ws, &mut out).expect("warm-up");
        group.bench_function(&format!("fused_b{bsz}"), |b| {
            b.iter(|| {
                qnet.logits_batch_into(black_box(slice), bsz, &mut ws, &mut out).expect("fused");
                black_box(&mut out);
            })
        });
        qnet.logits_batch_per_image_into(slice, bsz, &mut ws, &mut out).expect("warm-up");
        group.bench_function(&format!("per_image_b{bsz}"), |b| {
            b.iter(|| {
                qnet.logits_batch_per_image_into(black_box(slice), bsz, &mut ws, &mut out)
                    .expect("per-image");
                black_box(&mut out);
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_qgemm_256, bench_qnet_forward, bench_batched_forward);
criterion_main!(benches);
