//! End-to-end inference: float network forward vs integer-only quantized
//! forward (the deployed MF-DFP artifact) on the same inputs.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mfdfp_core::{calibrate, QuantizedNet};
use mfdfp_nn::{zoo, Phase};
use mfdfp_tensor::TensorRng;

fn bench(c: &mut Criterion) {
    let mut rng = TensorRng::seed_from(12);
    let mut net = zoo::quick_custom(3, 16, [8, 8, 16], 32, 10, &mut rng).expect("topology");
    let batch = rng.gaussian([4, 3, 16, 16], 0.0, 0.6);
    let calib = vec![(batch.clone(), vec![0usize; 4])];
    let plan = calibrate(&mut net, &calib, 8).expect("calibration");
    let qnet = QuantizedNet::from_network(&net, &plan).expect("quantize");

    c.bench_function("float_forward_batch4", |b| {
        b.iter(|| black_box(net.forward(black_box(&batch), Phase::Eval).expect("forward")))
    });
    c.bench_function("quantized_integer_forward_batch4", |b| {
        b.iter(|| black_box(qnet.logits_batch(black_box(&batch)).expect("forward")))
    });
    let img = batch.index_axis0(0);
    c.bench_function("quantized_single_image_codes", |b| {
        b.iter(|| black_box(qnet.forward_codes(black_box(&img)).expect("forward")))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
