//! Quantization-path throughput: activation codes, weight codecs, range
//! calibration.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use mfdfp_dfp::{pack_nibbles, quantize_weights, DfpFormat, RangeStats};
use mfdfp_tensor::TensorRng;

const N: usize = 1 << 14;

fn bench(c: &mut Criterion) {
    let mut rng = TensorRng::seed_from(7);
    let values: Vec<f32> = rng.gaussian([N], 0.0, 0.5).into_vec();
    let fmt = DfpFormat::q8(5);

    let mut group = c.benchmark_group("quantize");
    group.throughput(Throughput::Elements(N as u64));

    group.bench_function("dfp_quantize_slice", |b| {
        b.iter(|| black_box(fmt.quantize_slice(black_box(&values))))
    });

    let codes = fmt.quantize_slice(&values);
    group.bench_function("dfp_dequantize_slice", |b| {
        b.iter(|| black_box(fmt.dequantize_slice(black_box(&codes))))
    });

    group.bench_function("pow2_quantize_and_pack", |b| {
        b.iter(|| {
            let q = quantize_weights(black_box(&values));
            black_box(pack_nibbles(&q))
        })
    });

    group.bench_function("range_stats_observe", |b| {
        b.iter(|| {
            let mut stats = RangeStats::new();
            stats.observe_slice(black_box(&values));
            black_box(stats.choose_format(8))
        })
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
