//! Timing ablations of the numeric machinery itself: what the fake-quant
//! layers cost during training, what the adder-tree audits cost during
//! simulation, and how parameter syncing scales.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mfdfp_core::{build_working_net, calibrate, sync_quantized_params};
use mfdfp_dfp::AdderTree;
use mfdfp_nn::{zoo, Phase};
use mfdfp_tensor::TensorRng;

fn bench(c: &mut Criterion) {
    let mut rng = TensorRng::seed_from(5);
    let mut net = zoo::quick_custom(3, 16, [8, 8, 16], 32, 10, &mut rng).expect("topology");
    let batch = rng.gaussian([4, 3, 16, 16], 0.0, 0.6);
    let calib = vec![(batch.clone(), vec![0usize; 4])];
    let plan = calibrate(&mut net, &calib, 8).expect("calibration");
    let mut working = build_working_net(&net, &plan);
    sync_quantized_params(&net, &mut working, &plan);

    c.bench_function("forward_float_master", |b| {
        b.iter(|| black_box(net.forward(black_box(&batch), Phase::Eval).expect("fw")))
    });
    c.bench_function("forward_fake_quant_working", |b| {
        b.iter(|| black_box(working.forward(black_box(&batch), Phase::Eval).expect("fw")))
    });
    c.bench_function("sync_quantized_params", |b| {
        b.iter(|| {
            sync_quantized_params(black_box(&net), &mut working, &plan);
            black_box(&working);
        })
    });

    let tree = AdderTree::new(16).expect("tree");
    let products: Vec<i32> = (0..16).map(|i| i * 991 - 8000).collect();
    c.bench_function("adder_tree_audited_sum16", |b| {
        b.iter(|| black_box(tree.sum(black_box(&products)).expect("sum")))
    });
    c.bench_function("plain_sum16", |b| {
        b.iter(|| black_box(black_box(&products).iter().map(|&p| p as i64).sum::<i64>()))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
