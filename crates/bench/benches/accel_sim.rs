//! Accelerator-model throughput: cycle scheduling and design composition
//! for the paper's exact topologies.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mfdfp_accel::{
    design_metrics, schedule_network, AcceleratorConfig, ComponentLibrary, DmaModel,
};
use mfdfp_nn::zoo;
use mfdfp_tensor::TensorRng;

fn bench(c: &mut Criterion) {
    let mut rng = TensorRng::seed_from(0);
    let cifar = zoo::cifar10_full(10, &mut rng).expect("topology");
    let alexnet = zoo::alexnet(1000, false, &mut rng).expect("topology");
    let lib = ComponentLibrary::calibrated_65nm();
    let cfg = AcceleratorConfig::paper_mf_dfp();

    c.bench_function("schedule_cifar10_full", |b| {
        b.iter(|| black_box(schedule_network(black_box(&cifar), &cfg, DmaModel::Overlapped)))
    });
    c.bench_function("schedule_alexnet", |b| {
        b.iter(|| black_box(schedule_network(black_box(&alexnet), &cfg, DmaModel::Overlapped)))
    });
    c.bench_function("compose_design_metrics", |b| {
        b.iter(|| black_box(design_metrics(black_box(&cfg), &lib)))
    });
    let limited = DmaModel::Limited { bytes_per_cycle: 32.0 };
    c.bench_function("schedule_alexnet_limited_dma", |b| {
        b.iter(|| black_box(schedule_network(black_box(&alexnet), &cfg, limited)))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
