//! # mfdfp-bench — experiment harnesses for every table and figure
//!
//! Shared helpers for the binaries that regenerate the paper's evaluation:
//!
//! | Binary    | Paper artifact | Command |
//! |-----------|----------------|---------|
//! | `table1`  | Table 1 (area/power) | `cargo run -p mfdfp-bench --bin table1 --release` |
//! | `fig3`    | Figure 3 (fine-tuning curves) | `cargo run -p mfdfp-bench --bin fig3 --release` |
//! | `table2`  | Table 2 (accuracy/time/energy) | `cargo run -p mfdfp-bench --bin table2 --release` |
//! | `table3`  | Table 3 (parameter memory) | `cargo run -p mfdfp-bench --bin table3 --release` |
//! | `ablations` | design-choice studies (DESIGN.md §7) | `cargo run -p mfdfp-bench --bin ablations --release` |
//!
//! Criterion micro-benchmarks live in `benches/`.

#![deny(missing_docs)]

use mfdfp_data::{Batcher, Split, SyntheticDataset};
use mfdfp_nn::{evaluate, train_epoch, Network, Sgd, SgdConfig};

/// Trains a float network on a dataset split — the "input: a fully trained
/// floating-point network" precondition of Algorithm 1.
///
/// Deterministic in `seed`. Returns the trained network.
///
/// # Panics
///
/// Panics on internal configuration errors (fixed hyper-parameters are
/// valid by construction).
pub fn pretrain_float(
    mut net: Network,
    split: &Split,
    epochs: usize,
    learning_rate: f32,
    batch: usize,
    seed: u64,
) -> Network {
    let cfg = SgdConfig { learning_rate, momentum: 0.9, weight_decay: 1e-4 };
    let mut sgd = Sgd::new(cfg).expect("valid SGD configuration");
    for epoch in 0..epochs {
        let batches: Vec<_> =
            Batcher::new(&split.train, batch).shuffled(seed ^ epoch as u64).collect();
        train_epoch(&mut net, &mut sgd, batches).expect("training step");
    }
    net
}

/// Trains a float network to (near) convergence: plateau-decayed SGD, up
/// to `max_epochs`, stopping when the paper's learning-rate protocol
/// finishes. This is the "fully trained floating-point network" the paper
/// feeds into Algorithm 1 — without it, fine-tuning conflates quantization
/// recovery with ordinary training progress and the Figure 3 shape is
/// meaningless.
///
/// # Panics
///
/// Panics on internal configuration errors.
pub fn pretrain_float_converged(
    mut net: Network,
    split: &Split,
    max_epochs: usize,
    learning_rate: f32,
    batch: usize,
    seed: u64,
) -> Network {
    let initial = net.snapshot_params();
    let mut lr0 = learning_rate;
    for attempt in 0..3u64 {
        let cfg = SgdConfig { learning_rate: lr0, momentum: 0.9, weight_decay: 1e-4 };
        let mut sgd = Sgd::new(cfg).expect("valid SGD configuration");
        let mut schedule =
            mfdfp_nn::PlateauSchedule::new(lr0, 0.1, 3, lr0 * 1e-3).expect("valid schedule");
        // Early epochs are noisy; let the schedule observe only after
        // warmup so an unlucky start cannot freeze the learning rate.
        let warmup = 5usize.min(max_epochs / 2);
        let mut snapshot = net.snapshot_params();
        let mut last_acc = 0.0f32;
        for epoch in 0..max_epochs {
            let shuffle = seed ^ (attempt << 32) ^ epoch as u64;
            let batches: Vec<_> = Batcher::new(&split.train, batch).shuffled(shuffle).collect();
            let stats = train_epoch(&mut net, &mut sgd, batches).expect("training step");
            if !stats.mean_loss.is_finite() || stats.mean_loss > 50.0 {
                // Diverged mid-run: the parameters are garbage (possibly
                // NaN). Roll back to the last good epoch, halve the rate.
                net.restore_params(&snapshot);
                let halved = sgd.learning_rate() * 0.5;
                sgd = Sgd::new(SgdConfig { learning_rate: halved, ..cfg })
                    .expect("valid SGD configuration");
                continue;
            }
            snapshot = net.snapshot_params();
            last_acc = stats.accuracy;
            if epoch >= warmup {
                let lr = schedule.observe(stats.mean_loss);
                sgd.set_learning_rate(lr);
                if schedule.finished() {
                    break;
                }
            }
        }
        // A run that cannot fit its own training set is an optimisation
        // failure, not a converged network: restart from the original
        // init at half the rate (at most twice).
        if last_acc >= 0.6 || attempt == 2 {
            break;
        }
        net.restore_params(&initial);
        lr0 *= 0.5;
    }
    net
}

/// Top-1 / top-k accuracy of a float network on a dataset.
///
/// # Panics
///
/// Panics on forward-pass errors (shapes are consistent by construction).
pub fn float_accuracy(
    net: &mut Network,
    data: &SyntheticDataset,
    batch: usize,
    k: usize,
) -> (f32, f32) {
    let batches: Vec<_> = Batcher::new(data, batch).iter().collect();
    let acc = evaluate(net, batches, k).expect("evaluation");
    (acc.top1(), acc.topk())
}

/// Prints a horizontal rule sized to `width`.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

/// Formats a percentage with two decimals.
pub fn pct(x: f64) -> String {
    format!("{x:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfdfp_data::SynthSpec;
    use mfdfp_nn::zoo;
    use mfdfp_tensor::TensorRng;

    #[test]
    fn pretrain_improves_over_init() {
        let spec = SynthSpec {
            classes: 4,
            channels: 2,
            size: 16,
            per_class: 16,
            noise: 0.3,
            max_shift: 1,
            seed: 11,
        };
        let split = Split::generate(&spec, 8);
        let mut rng = TensorRng::seed_from(2);
        let net = zoo::quick_custom(2, 16, [4, 4, 4], 8, 4, &mut rng).unwrap();
        let mut untrained = net.clone();
        let (before, _) = float_accuracy(&mut untrained, &split.test, 16, 1);
        let mut trained = pretrain_float(net, &split, 6, 0.02, 16, 3);
        let (after, _) = float_accuracy(&mut trained, &split.test, 16, 1);
        assert!(after > before.max(0.3), "training did not help: {before} → {after}");
    }

    #[test]
    fn helpers_format() {
        assert_eq!(pct(89.812), "89.81");
    }
}
