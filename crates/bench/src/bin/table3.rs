//! Regenerates **Table 3** of the paper: parameter-memory requirements of
//! floating-point versus MF-DFP networks for both benchmarks.
//!
//! ```text
//! cargo run -p mfdfp-bench --bin table3 --release
//! ```
//!
//! Uses the paper's exact topologies: Caffe cifar10-full (89,578 params)
//! and ungrouped AlexNet (62,378,344 params). Float parameters take 32
//! bits; deployed MF-DFP weights take 4 bits (sign + 3-bit exponent) and
//! biases 8 bits.

use mfdfp_core::memory_report;
use mfdfp_nn::zoo;
use mfdfp_tensor::TensorRng;

fn main() {
    let mut rng = TensorRng::seed_from(0);
    let cifar = zoo::cifar10_full(10, &mut rng).expect("valid topology");
    let alexnet = zoo::alexnet(1000, false, &mut rng).expect("valid topology");

    let rc = memory_report(&cifar);
    let ra = memory_report(&alexnet);

    println!("Table 3: Memory requirements, floating-point vs MF-DFP parameters\n");
    println!("{:<22} {:>16} {:>16}", "Precision", "CIFAR-10 (MB)", "ImageNet (MB)");
    mfdfp_bench::rule(58);
    println!("{:<22} {:>16.4} {:>16.2}", "Floating-Point", rc.fp32_mib(), ra.fp32_mib());
    println!("{:<22} {:>16.4} {:>16.2}", "MF-DFP", rc.mfdfp_mib(), ra.mfdfp_mib());
    println!("{:<22} {:>16.4} {:>16.2}", "Ensemble MF-DFP", rc.ensemble_mib(2), ra.ensemble_mib(2));

    println!("\nPaper reference (Table 3):");
    println!("  Floating-Point            0.3417           237.95");
    println!("  MF-DFP                    0.0428            29.75");
    println!("  Ensemble MF-DFP           0.0855            59.50");

    println!(
        "\nNetworks: cifar10-full ({} params), ungrouped AlexNet ({} params).",
        rc.params(),
        ra.params()
    );
    println!(
        "Compression: {:.2}x (CIFAR-10), {:.2}x (ImageNet) — the paper's \"8x less memory\".",
        rc.compression(),
        ra.compression()
    );

    // The identification check: only the ungrouped AlexNet reproduces the
    // paper's 237.95 MB; the grouped Caffe release would give ~232.6 MB.
    let grouped = zoo::alexnet_grouped(1000, &mut rng).expect("valid topology");
    let rg = memory_report(&grouped);
    println!(
        "\nFor comparison, grouped Caffe AlexNet ({} params): {:.2} MB float, {:.2} MB MF-DFP",
        rg.params(),
        rg.fp32_mib(),
        rg.mfdfp_mib()
    );
}
