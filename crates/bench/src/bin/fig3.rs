//! Regenerates **Figure 3** of the paper: top-1 validation error over
//! fine-tuning epochs for (a) the quantized network trained with data
//! labels only (Phase 1 throughout) and (b) Phase 1 followed by
//! student–teacher Phase 2, against the floating-point reference line.
//!
//! ```text
//! cargo run -p mfdfp-bench --bin fig3 --release
//! ```
//!
//! Output is a CSV series (epoch, labels-only error, student-teacher
//! error, float error) plus an ASCII sketch. The expected shape: both
//! curves fall toward the float line; the student-teacher curve dips
//! below the labels-only curve after the phase switch.

use mfdfp_bench::{float_accuracy, pretrain_float_converged};
use mfdfp_core::{run_pipeline, PhaseTag, PipelineConfig};
use mfdfp_data::{Split, SynthSpec};
use mfdfp_nn::zoo;
use mfdfp_tensor::TensorRng;

fn main() {
    // The paper plots ImageNet; we use its synthetic stand-in with the
    // reduced AlexNet-pattern network (DESIGN.md §3). The stand-in is made
    // deliberately hard (high noise, large shifts) so the float network
    // converges to a non-trivial error and quantization recovery is
    // visible, as in the paper's plot.
    let mut spec = SynthSpec::imagenet(30, 23);
    spec.noise = 1.1;
    spec.max_shift = 4;
    let split = Split::generate(&spec, 10);
    let mut rng = TensorRng::seed_from(6);
    let float_net = zoo::alexnet_like_small(20, &mut rng).expect("topology");
    // Train the float reference to convergence first (Algorithm 1's input
    // is "a fully trained floating-point network").
    let mut float_net = pretrain_float_converged(float_net, &split, 30, 0.02, 32, 61);
    let (float_top1, _) = float_accuracy(&mut float_net, &split.test, 32, 5);
    let float_err = 1.0 - float_top1;

    let total_epochs = 10usize;

    // Series A: data labels only (Phase 1 for the whole budget).
    let cfg_labels = PipelineConfig {
        phase1_epochs: 2 * total_epochs,
        phase2_epochs: 0,
        learning_rate: 2e-3,
        batch_size: 32,
        eval_k: 5,
        ..PipelineConfig::paper_defaults()
    };
    let labels_only = run_pipeline(float_net.clone(), &split.train, &split.test, &cfg_labels)
        .expect("labels-only run");

    // Series B: Phase 1, switching to student-teacher at the first
    // learning-rate decay (the paper's "near convergence but not the
    // global optimal point").
    let cfg_st = PipelineConfig {
        phase1_epochs: total_epochs,
        phase2_epochs: total_epochs + 4,
        learning_rate: 2e-3,
        temperature: 20.0,
        beta: 0.2,
        batch_size: 32,
        eval_k: 5,
        ..PipelineConfig::paper_defaults()
    };
    let student_teacher =
        run_pipeline(float_net, &split.train, &split.test, &cfg_st).expect("student-teacher run");

    println!("Figure 3: validation top-1 error vs fine-tuning epoch");
    println!("(synthetic ImageNet stand-in; float reference err = {float_err:.4})\n");
    println!("epoch,labels_only_error,student_teacher_error,float_error,st_phase");
    let n = labels_only.history.len().max(student_teacher.history.len());
    for e in 0..n {
        let a = labels_only.history.get(e).map(|p| p.test_error);
        let b = student_teacher.history.get(e);
        println!(
            "{},{},{},{:.4},{}",
            e,
            a.map_or(String::new(), |v| format!("{v:.4}")),
            b.map_or(String::new(), |p| format!("{:.4}", p.test_error)),
            float_err,
            b.map_or(String::new(), |p| match p.phase {
                PhaseTag::Phase1 => "1".to_string(),
                PhaseTag::Phase2 => "2".to_string(),
            })
        );
    }

    // ASCII sketch of the two curves.
    println!("\nSketch (each column = one epoch; lower is better):");
    let max_err = labels_only
        .history
        .iter()
        .chain(&student_teacher.history)
        .map(|p| p.test_error)
        .fold(float_err, f32::max);
    let min_err = labels_only
        .history
        .iter()
        .chain(&student_teacher.history)
        .map(|p| p.test_error)
        .fold(float_err, f32::min);
    let span = (max_err - min_err).max(1e-6);
    let rows = 12usize;
    for r in 0..=rows {
        let level = max_err - span * r as f32 / rows as f32;
        let mut line = String::new();
        for e in 0..n {
            let a = labels_only.history.get(e).map(|p| p.test_error);
            let b = student_teacher.history.get(e).map(|p| p.test_error);
            let near =
                |v: Option<f32>| v.is_some_and(|v| (v - level).abs() <= span / (2.0 * rows as f32));
            line.push(match (near(a), near(b)) {
                (true, true) => '*',
                (true, false) => 'L',
                (false, true) => 'S',
                _ => {
                    if (float_err - level).abs() <= span / (2.0 * rows as f32) {
                        '-'
                    } else {
                        ' '
                    }
                }
            });
        }
        println!("{level:>7.3} |{line}");
    }
    println!("         L = labels only, S = student-teacher, - = float reference");

    let last_a = labels_only.history.last().map_or(f32::NAN, |p| p.test_error);
    let last_b = student_teacher.history.last().map_or(f32::NAN, |p| p.test_error);
    println!("\nFinal errors: labels-only {last_a:.4}, student-teacher {last_b:.4}, float {float_err:.4}");
    let switch = student_teacher.history.iter().position(|p| p.phase == PhaseTag::Phase2);
    if let Some(s) = switch {
        println!("Phase 2 began at epoch {s} (first plateau decay).");
    }
}
