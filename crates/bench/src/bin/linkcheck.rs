//! Intra-repo markdown link checker.
//!
//! Walks every `*.md` file under the current directory (skipping
//! `target/` and `.git/`), extracts inline markdown link targets
//! (`[text](target)`, including images), and verifies that every
//! *relative* target resolves to an existing file or directory.
//! External URLs (`http://`, `https://`, `mailto:`) and pure in-page
//! anchors (`#…`) are skipped; a `path#fragment` target is checked for
//! the path part only.
//!
//! Exit status is non-zero if any link is broken, so CI can gate on it:
//!
//! ```text
//! cargo run -p mfdfp-bench --bin linkcheck --release
//! ```

use std::path::{Path, PathBuf};

/// A broken link: file, 1-based line, raw target.
#[derive(Debug, PartialEq, Eq)]
struct Broken {
    file: PathBuf,
    line: usize,
    target: String,
}

/// Collects every `*.md` under `root`, skipping VCS and build output.
fn markdown_files(root: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(root) else { return };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name != "target" && name != ".git" {
                markdown_files(&path, out);
            }
        } else if name.ends_with(".md") {
            out.push(path);
        }
    }
}

/// Extracts the targets of inline links `](target)` from one line.
/// Markdown permits an optional quoted title (`](a.md "title")`); the
/// target is the part before the first whitespace.
fn link_targets(line: &str) -> Vec<String> {
    let mut targets = Vec::new();
    let bytes = line.as_bytes();
    let mut i = 0;
    while i + 1 < bytes.len() {
        if bytes[i] == b']' && bytes[i + 1] == b'(' {
            let start = i + 2;
            if let Some(rel_end) = line[start..].find(')') {
                let raw = &line[start..start + rel_end];
                let target = raw.split_whitespace().next().unwrap_or("");
                if !target.is_empty() {
                    targets.push(target.to_string());
                }
                i = start + rel_end;
            }
        }
        i += 1;
    }
    targets
}

/// Whether a target is in scope for filesystem checking.
fn is_relative_file_target(target: &str) -> bool {
    !(target.starts_with("http://")
        || target.starts_with("https://")
        || target.starts_with("mailto:")
        || target.starts_with('#'))
}

/// Checks every relative link of one markdown file against the
/// filesystem; appends failures to `broken`.
fn check_file(path: &Path, broken: &mut Vec<Broken>) {
    let Ok(text) = std::fs::read_to_string(path) else { return };
    let dir = path.parent().unwrap_or(Path::new("."));
    let mut in_code_fence = false;
    for (idx, line) in text.lines().enumerate() {
        if line.trim_start().starts_with("```") {
            in_code_fence = !in_code_fence;
            continue;
        }
        if in_code_fence {
            continue;
        }
        for target in link_targets(line) {
            if !is_relative_file_target(&target) {
                continue;
            }
            let file_part = target.split('#').next().unwrap_or("");
            if file_part.is_empty() {
                continue;
            }
            if !dir.join(file_part).exists() {
                broken.push(Broken {
                    file: path.to_path_buf(),
                    line: idx + 1,
                    target: target.clone(),
                });
            }
        }
    }
}

fn main() {
    let mut files = Vec::new();
    markdown_files(Path::new("."), &mut files);
    files.sort();
    let mut broken = Vec::new();
    for file in &files {
        check_file(file, &mut broken);
    }
    println!("linkcheck: {} markdown files scanned", files.len());
    if broken.is_empty() {
        println!("linkcheck: all intra-repo links resolve");
        return;
    }
    for b in &broken {
        eprintln!("BROKEN {}:{} -> {}", b.file.display(), b.line, b.target);
    }
    eprintln!("linkcheck: {} broken link(s)", broken.len());
    std::process::exit(1);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extracts_inline_and_image_targets() {
        let line = "see [a](x.md) and ![img](pic.png \"title\") plus [b](http://x)";
        assert_eq!(link_targets(line), vec!["x.md", "pic.png", "http://x"]);
    }

    #[test]
    fn skips_externals_and_anchors() {
        assert!(!is_relative_file_target("https://example.com"));
        assert!(!is_relative_file_target("#section"));
        assert!(!is_relative_file_target("mailto:a@b.c"));
        assert!(is_relative_file_target("ARCHITECTURE.md"));
        assert!(is_relative_file_target("crates/rt/src/lib.rs"));
    }

    #[test]
    fn empty_line_has_no_targets() {
        assert!(link_targets("plain text, no links").is_empty());
    }
}
