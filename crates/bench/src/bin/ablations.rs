//! Ablation studies for the design choices the paper calls out
//! (DESIGN.md §7):
//!
//! 1. deterministic vs stochastic weight quantization (paper §4.1 chose
//!    deterministic);
//! 2. dynamic per-layer radix points vs a single uniform format (the
//!    paper's motivation for *dynamic* fixed point);
//! 3. the exponent clamp `e ≥ −7` that enables the 4-bit weight encoding;
//! 4. shadow weights vs naive direct training of quantized weights
//!    (Courbariaux mechanism, paper §4.1);
//! 5. ensemble size M (the paper deploys M = 2).
//!
//! ```text
//! cargo run -p mfdfp-bench --bin ablations --release
//! ```

use mfdfp_bench::{float_accuracy, pretrain_float_converged};
use mfdfp_core::{
    build_working_net, calibrate, run_pipeline, sync_quantized_params, Ensemble, PipelineConfig,
    QuantizationPlan, QuantizedNet, ShadowTrainer,
};
use mfdfp_data::{Batcher, Split, SynthSpec};
use mfdfp_dfp::{DfpFormat, Pow2Weight, RangeStats};
use mfdfp_nn::{zoo, Network, Phase, Sgd, SgdConfig};
use mfdfp_tensor::{Tensor, TensorRng};

fn problem() -> (Network, Split) {
    let spec = SynthSpec {
        classes: 6,
        channels: 3,
        size: 16,
        per_class: 30,
        noise: 0.95,
        max_shift: 3,
        seed: 17,
    };
    let split = Split::generate(&spec, 15);
    let mut rng = TensorRng::seed_from(4);
    let net = zoo::quick_custom(3, 16, [8, 8, 16], 32, 6, &mut rng).expect("topology");
    let net = pretrain_float_converged(net, &split, 16, 0.02, 32, 40);
    (net, split)
}

fn eval_float_like(net: &mut Network, split: &Split) -> f32 {
    float_accuracy(net, &split.test, 32, 1).0
}

fn eval_qnet(q: &QuantizedNet, split: &Split) -> f32 {
    let e = Ensemble::new(vec![q.clone()]).expect("singleton ensemble");
    let batches: Vec<_> = Batcher::new(&split.test, 32).iter().collect();
    e.evaluate(batches, 1).expect("eval").top1()
}

/// 1. Deterministic vs stochastic power-of-two rounding (no fine-tuning).
fn ablation_rounding(float_net: &Network, plan: &QuantizationPlan, split: &Split) {
    println!("\n[1] weight rounding mode (no fine-tuning)");
    let det = QuantizedNet::from_network(float_net, plan).expect("quantize");
    println!("    deterministic (paper): top-1 {:.2}%", eval_qnet(&det, split) * 100.0);
    for seed in [1u64, 2, 3] {
        let mut rng = TensorRng::seed_from(seed);
        let mut stochastic = float_net.clone();
        stochastic.visit_params(&mut |v, _| {
            // Biases are handled by the plan; only weight tensors have >1 axis.
            if v.shape().rank() > 1 {
                let us = rng.uniform([v.len()], 0.0, 1.0);
                for (w, &u) in v.as_mut_slice().iter_mut().zip(us.as_slice()) {
                    *w = Pow2Weight::from_f32_stochastic(*w, u).to_f32();
                }
            }
        });
        let q = QuantizedNet::from_network(&stochastic, plan).expect("quantize");
        println!("    stochastic (seed {seed}):   top-1 {:.2}%", eval_qnet(&q, split) * 100.0);
    }
}

/// 2. Dynamic per-layer formats vs one uniform format.
fn ablation_uniform_format(float_net: &Network, plan: &QuantizationPlan, split: &Split) {
    println!("\n[2] dynamic vs uniform fixed point (no fine-tuning)");
    let dynamic = QuantizedNet::from_network(float_net, plan).expect("quantize");
    println!(
        "    dynamic per-layer <8,f_l> (paper): top-1 {:.2}%",
        eval_qnet(&dynamic, split) * 100.0
    );
    // Uniform: every boundary forced to the single format that covers the
    // worst-case range anywhere in the network.
    let worst = plan
        .boundary_formats
        .iter()
        .chain(std::iter::once(&plan.input_format))
        .map(|f| f.frac())
        .min()
        .expect("non-empty");
    let uniform_fmt = DfpFormat::q8(worst);
    let mut uniform = plan.clone();
    uniform.input_format = uniform_fmt;
    for f in &mut uniform.boundary_formats {
        *f = uniform_fmt;
    }
    for b in uniform.bias_formats.iter_mut().flatten() {
        let capped = (b.frac() as i32).min(worst as i32 + 7) as i8;
        *b = DfpFormat::q8(capped);
    }
    let q = QuantizedNet::from_network(float_net, &uniform).expect("quantize");
    println!(
        "    uniform <8,{worst}> everywhere:       top-1 {:.2}%",
        eval_qnet(&q, split) * 100.0
    );
}

/// 3. Exponent clamp sweep (float-domain emulation; `e ≥ −7` is the 4-bit
///    paper encoding, wider clamps would need 5 bits).
fn ablation_exponent_clamp(float_net: &Network, plan: &QuantizationPlan, split: &Split) {
    println!("\n[3] weight exponent clamp e >= e_min (fake-quant domain)");
    for (e_min, bits) in [(-3i32, 3), (-5, 4), (-7, 4), (-9, 5), (-15, 5)] {
        let mut net = float_net.clone();
        let mut working = build_working_net(&net, plan);
        sync_quantized_params(&net, &mut working, plan);
        // Re-round weights with the custom clamp (overrides the −7 sync).
        let mut src = 0usize;
        let masters: Vec<Tensor> = {
            let mut v = Vec::new();
            net.visit_params(&mut |p, _| v.push(p.clone()));
            v
        };
        working.visit_params(&mut |p, _| {
            if p.shape().rank() > 1 {
                let m = &masters[src];
                let quant: Vec<f32> = m
                    .as_slice()
                    .iter()
                    .map(|&w| {
                        if w == 0.0 {
                            return 0.0;
                        }
                        let e = w.abs().log2().round().clamp(e_min as f32, 0.0);
                        w.signum() * e.exp2()
                    })
                    .collect();
                p.as_mut_slice().copy_from_slice(&quant);
            }
            src += 1;
        });
        let acc = eval_float_like(&mut working, split);
        println!("    e >= {e_min:>3} ({bits}-bit code): top-1 {:.2}%", acc * 100.0);
    }
}

/// 4. Shadow weights vs naive direct quantized training.
fn ablation_shadow_weights(float_net: &Network, plan: &QuantizationPlan, split: &Split) {
    println!("\n[4] shadow weights vs naive quantized-weight training (3 epochs)");
    let sgd = SgdConfig { learning_rate: 5e-3, momentum: 0.9, weight_decay: 1e-4 };

    // Paper mechanism: gradients accumulate in the float master.
    let mut shadow = ShadowTrainer::new(float_net.clone(), plan.clone(), sgd).expect("trainer");
    for epoch in 0..3 {
        let batches: Vec<_> = Batcher::new(&split.train, 32).shuffled(epoch).collect();
        shadow.train_epoch(batches).expect("epoch");
    }
    let acc_shadow = {
        let batches: Vec<_> = Batcher::new(&split.test, 32).iter().collect();
        shadow.evaluate_quantized(batches, 1).expect("eval").top1()
    };

    // Strawman: re-quantize the *trained* weights themselves every step —
    // small updates are erased by the pow2 rounding.
    let mut working = build_working_net(float_net, plan);
    sync_quantized_params(float_net, &mut working, plan);
    let requantize = |net: &mut Network| {
        net.visit_params(&mut |v, _| {
            if v.shape().rank() > 1 {
                v.map_in_place(|w| Pow2Weight::from_f32(w).to_f32());
            }
        });
    };
    let mut sgd_naive = Sgd::new(sgd).expect("sgd");
    for epoch in 0..3 {
        for (x, labels) in Batcher::new(&split.train, 32).shuffled(epoch) {
            // Quantize the working net's own weights in place (no master):
            // sub-LSB updates are erased every step.
            requantize(&mut working);
            let logits = working.forward(&x, Phase::Train).expect("forward");
            let (_, grad) = mfdfp_nn::softmax_cross_entropy(&logits, &labels).expect("loss");
            working.backward(&grad).expect("backward");
            sgd_naive.step(&mut working);
        }
    }
    requantize(&mut working);
    let acc_naive = eval_float_like(&mut working, split);

    println!("    shadow weights (paper): top-1 {:.2}%", acc_shadow * 100.0);
    println!("    naive direct training:  top-1 {:.2}%", acc_naive * 100.0);
}

/// 5. Ensemble size sweep.
fn ablation_ensemble_size(split: &Split) {
    println!("\n[5] ensemble size M (paper deploys M = 2)");
    let cfg = PipelineConfig {
        phase1_epochs: 4,
        phase2_epochs: 2,
        learning_rate: 4e-3,
        batch_size: 32,
        eval_k: 1,
        ..PipelineConfig::paper_defaults()
    };
    let mut members = Vec::new();
    for seed in 0..3u64 {
        let mut rng = TensorRng::seed_from(100 + seed);
        let net = zoo::quick_custom(3, 16, [8, 8, 16], 32, 6, &mut rng).expect("topology");
        let net = pretrain_float_converged(net, split, 12, 0.02, 32, 300 + seed);
        let mut c = cfg;
        c.seed ^= seed.wrapping_mul(0x9E37_79B9);
        let out = run_pipeline(net, &split.train, &split.test, &c).expect("pipeline");
        members.push(out.qnet);
    }
    for m in 1..=members.len() {
        let e = Ensemble::new(members[..m].to_vec()).expect("ensemble");
        let batches: Vec<_> = Batcher::new(&split.test, 32).iter().collect();
        let acc = e.evaluate(batches, 1).expect("eval").top1();
        println!("    M = {m}: top-1 {:.2}%   (energy scales ~{m}x single MF-DFP)", acc * 100.0);
    }
}

/// 6. Activation bit-width sweep (fake-quant domain): the paper picks 8
///    bits; fewer breaks, more buys little.
fn ablation_bit_width(float_net: &Network, split: &Split) {
    println!("\n[6] activation bit-width sweep (dynamic per-layer formats)");
    for bits in [4u8, 6, 8, 12, 16] {
        let mut net = float_net.clone();
        let calib: Vec<_> = Batcher::new(&split.train, 32).iter().take(4).collect();
        let plan = match calibrate(&mut net, &calib, bits) {
            Ok(p) => p,
            Err(e) => {
                println!("    {bits:>2}-bit: calibration failed: {e}");
                continue;
            }
        };
        let mut working = build_working_net(&net, &plan);
        sync_quantized_params(&net, &mut working, &plan);
        let acc = eval_float_like(&mut working, split);
        println!("    {bits:>2}-bit activations: top-1 {:.2}%", acc * 100.0);
    }
}

fn main() {
    println!("MF-DFP ablation studies (synthetic CIFAR-like stand-in, 16 px)");
    let (mut float_net, split) = problem();
    let float_acc = eval_float_like(&mut float_net, &split);
    println!("float reference: top-1 {:.2}%", float_acc * 100.0);

    let calib: Vec<_> = Batcher::new(&split.train, 32).iter().take(4).collect();
    let plan = calibrate(&mut float_net, &calib, 8).expect("calibration");
    // Summarize the dynamic formats the calibrator chose.
    print!("calibrated fractional lengths: input f={}", plan.input_format.frac());
    for (i, layer) in float_net.layers().iter().enumerate() {
        if layer.is_weighted() {
            print!(
                ", {} f={}",
                layer.describe().split(':').next().unwrap_or("?"),
                plan.boundary_formats[i].frac()
            );
        }
    }
    println!();

    ablation_rounding(&float_net, &plan, &split);
    ablation_uniform_format(&float_net, &plan, &split);
    ablation_exponent_clamp(&float_net, &plan, &split);
    ablation_shadow_weights(&float_net, &plan, &split);
    ablation_ensemble_size(&split);
    ablation_bit_width(&float_net, &split);

    // Range statistics sanity: report observed weight exponent histogram.
    println!("\n[7] weight exponent histogram (motivates the 4-bit encoding)");
    let mut hist = [0usize; 9];
    let mut stats = RangeStats::new();
    float_net.clone().visit_params(&mut |v, _| {
        if v.shape().rank() > 1 {
            stats.observe_slice(v.as_slice());
            for &w in v.as_slice() {
                let q = Pow2Weight::from_f32(w);
                hist[(-q.exp()) as usize] += 1;
            }
        }
    });
    for (i, count) in hist.iter().enumerate() {
        println!("    e = -{i}: {count}");
    }
    println!("    max |w| observed: {:.4} (< 1, as the paper assumes)", stats.max_abs());
}
