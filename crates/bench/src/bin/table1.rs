//! Regenerates **Table 1** of the paper: design area and power of the
//! proposed MF-DFP accelerator against the floating-point baseline.
//!
//! ```text
//! cargo run -p mfdfp-bench --bin table1 --release
//! ```
//!
//! The FP32 row calibrates the 65 nm component library; the MF-DFP and
//! ensemble rows are *predicted* by composing the same components — the
//! savings columns are outputs of the model.

use mfdfp_accel::{design_metrics, AcceleratorConfig, ComponentLibrary};

fn main() {
    let lib = ComponentLibrary::calibrated_65nm();
    let fp_cfg = AcceleratorConfig::paper_fp32();
    let mf_cfg = AcceleratorConfig::paper_mf_dfp();
    let ens_cfg = AcceleratorConfig::paper_ensemble();

    let fp = design_metrics(&fp_cfg, &lib).expect("valid config");
    let mf = design_metrics(&mf_cfg, &lib).expect("valid config");
    let ens = design_metrics(&ens_cfg, &lib).expect("valid config");

    println!("Table 1: Design metrics of the proposed MF-DFP accelerator");
    println!("         against the floating-point baseline (65 nm, 250 MHz)\n");
    println!(
        "{:<28} {:>12} {:>12} {:>12} {:>12}",
        "Precision (in,w)", "Area (mm2)", "Power (mW)", "AreaSav(%)", "PowerSav(%)"
    );
    mfdfp_bench::rule(80);
    let rows =
        [("Floating-point(32,32)", &fp), ("Proposed MF-DFP(8,4)", &mf), ("Ens. MF-DFP(8,4)", &ens)];
    for (name, m) in rows {
        println!(
            "{:<28} {:>12.2} {:>12.2} {:>12.2} {:>12.2}",
            name,
            m.area_mm2,
            m.power_mw,
            m.area_saving_vs(&fp),
            m.power_saving_vs(&fp)
        );
    }

    println!("\nPaper reference (Table 1):");
    println!("  Floating-point(32,32)   16.52 mm2   1361.61 mW     0.00%      0.00%");
    println!("  Proposed MF-DFP(8,4)     1.99 mm2    138.96 mW    87.97%     89.79%");
    println!("  Ens. MF-DFP(8,4)         3.96 mm2    270.27 mW    76.00%     80.15%");

    println!("\nComponent breakdown, MF-DFP(8,4):");
    for line in &mf.breakdown {
        println!(
            "  {:<36} ×{:<8} {:>10.4} mm2 {:>10.2} mW",
            line.component,
            line.count,
            line.cost.area_mm2(),
            line.cost.power_mw
        );
    }
    println!("\nComponent breakdown, Floating-point(32,32):");
    for line in &fp.breakdown {
        println!(
            "  {:<36} ×{:<8} {:>10.4} mm2 {:>10.2} mW",
            line.component,
            line.count,
            line.cost.area_mm2(),
            line.cost.power_mw
        );
    }
}
