//! Closed-loop load generator for the `mfdfp-serve` runtime.
//!
//! Spawns `MFDFP_SERVE_PRODUCERS` closed-loop clients (submit → wait →
//! submit …) against a dynamic-batching [`Server`] holding one small
//! MF-DFP network, then reports throughput, *exact* per-request latency
//! percentiles (the server's own histogram is bucketed; here every
//! latency is recorded individually) and the dispatched batch-size
//! histogram. With more than one producer the micro-batcher coalesces
//! requests, which is the effect this harness exists to measure.
//!
//! ```text
//! cargo run -p mfdfp-bench --bin serve_load --release [--features "parallel obs"] \
//!     [-- --trace trace.json]
//! ```
//!
//! With `--trace <path>` (and the `obs` feature), the flight recorder's
//! rings are drained after the run into a Chrome trace-event file —
//! load it at <https://ui.perfetto.dev> to see every pipeline stage and
//! kernel dispatch on a timeline. Without `obs` the file is written but
//! contains no events.
//!
//! Environment knobs:
//!
//! | Variable | Default | Meaning |
//! |----------|---------|---------|
//! | `MFDFP_SERVE_PRODUCERS` | 4 | concurrent closed-loop clients |
//! | `MFDFP_SERVE_REQUESTS` | 64 | requests per client |
//! | `MFDFP_SERVE_WORKERS` | 1 | server worker threads |
//! | `MFDFP_SERVE_MAX_BATCH` | 8 | batcher size bound |
//! | `MFDFP_SERVE_MAX_WAIT_US` | 2000 | batcher linger bound (µs) |
//! | `SERVE_BENCH_OUT` | unset | write a JSON report to this path |

use std::sync::Arc;
use std::time::{Duration, Instant};

use mfdfp_core::{calibrate, QuantizedNet};
use mfdfp_nn::zoo;
use mfdfp_serve::{ModelRegistry, ServeConfig, ServeError, Server};
use mfdfp_tensor::TensorRng;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key).ok().and_then(|v| v.parse().ok()).filter(|&n| n > 0).unwrap_or(default)
}

fn exact_percentile(sorted_us: &[u64], q: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted_us.len() as f64).ceil() as usize).clamp(1, sorted_us.len());
    sorted_us[rank - 1] as f64
}

/// Parses `--trace <path>` from the command line (the only flag).
fn trace_path() -> Option<String> {
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--trace" {
            return Some(args.next().expect("--trace requires a path"));
        }
    }
    None
}

fn main() {
    let trace = trace_path();
    let producers = env_usize("MFDFP_SERVE_PRODUCERS", 4);
    let requests = env_usize("MFDFP_SERVE_REQUESTS", 64);
    let config = ServeConfig {
        workers: env_usize("MFDFP_SERVE_WORKERS", 1),
        queue_capacity: (producers * 4).max(64),
        max_batch: env_usize("MFDFP_SERVE_MAX_BATCH", 8),
        max_wait: Duration::from_micros(env_usize("MFDFP_SERVE_MAX_WAIT_US", 2000) as u64),
    };

    // The served model: the same small calibrated network the qnet tests
    // use (3×16×16 input, 10 classes) — big enough that inference costs
    // milliseconds on the integer datapath, so batching effects are real.
    let mut rng = TensorRng::seed_from(21);
    let mut float_net = zoo::quick_custom(3, 16, [4, 4, 8], 16, 10, &mut rng).expect("zoo net");
    let calib = rng.gaussian([4, 3, 16, 16], 0.0, 0.7);
    let plan = calibrate(&mut float_net, &[(calib, vec![0, 1, 2, 3])], 8).expect("calibration");
    let qnet = QuantizedNet::from_network(&float_net, &plan).expect("quantization");

    let registry = Arc::new(ModelRegistry::new());
    registry.register("loadgen", qnet.clone());
    let server =
        Arc::new(Server::start(Arc::clone(&registry), config.clone()).expect("server start"));

    println!(
        "serve_load: {} producers × {} requests, workers={}, max_batch={}, max_wait={:?}",
        producers, requests, config.workers, config.max_batch, config.max_wait
    );

    let wall_start = Instant::now();
    let handles: Vec<_> = (0..producers)
        .map(|p| {
            let server = Arc::clone(&server);
            let qnet = qnet.clone();
            std::thread::spawn(move || {
                let mut rng = TensorRng::seed_from(1000 + p as u64);
                let mut latencies_us = Vec::with_capacity(requests);
                let mut verified = false;
                for i in 0..requests {
                    let img = rng.gaussian([3, 16, 16], 0.0, 0.7);
                    let start = Instant::now();
                    let ticket = loop {
                        match server.submit("loadgen", img.clone()) {
                            Ok(t) => break t,
                            Err(ServeError::QueueFull { .. }) => {
                                std::thread::sleep(Duration::from_micros(200));
                            }
                            Err(e) => panic!("submit failed: {e}"),
                        }
                    };
                    let response = ticket.wait().expect("response");
                    latencies_us.push(start.elapsed().as_micros() as u64);
                    // Spot-check correctness once per producer: the served
                    // logits must be byte-identical to a direct call.
                    if i == 0 {
                        let direct = qnet.logits(&img).expect("direct logits");
                        assert_eq!(
                            response.logits.as_slice().iter().map(|v| v.to_bits()).sum::<u32>(),
                            direct.as_slice().iter().map(|v| v.to_bits()).sum::<u32>(),
                            "served response diverged from direct inference"
                        );
                        verified = true;
                    }
                }
                assert!(verified);
                latencies_us
            })
        })
        .collect();

    let mut latencies_us: Vec<u64> = Vec::with_capacity(producers * requests);
    for h in handles {
        latencies_us.extend(h.join().expect("producer thread"));
    }
    let wall = wall_start.elapsed();
    let snap = server.metrics();

    latencies_us.sort_unstable();
    let total = latencies_us.len() as f64;
    let throughput = total / wall.as_secs_f64();
    let mean_us = latencies_us.iter().sum::<u64>() as f64 / total.max(1.0);
    let (p50, p95, p99) = (
        exact_percentile(&latencies_us, 0.50),
        exact_percentile(&latencies_us, 0.95),
        exact_percentile(&latencies_us, 0.99),
    );

    println!("wall time          {:>10.3} s", wall.as_secs_f64());
    println!("throughput         {throughput:>10.1} req/s");
    println!("latency mean       {mean_us:>10.1} µs");
    println!("latency p50        {p50:>10.1} µs");
    println!("latency p95        {p95:>10.1} µs");
    println!("latency p99        {p99:>10.1} µs");
    println!("batch histogram    {:?} (size 1..)", snap.batch_histogram);
    println!("largest batch      {:>10}", snap.max_batch_observed());
    println!("rejected (retried) {:>10}", snap.rejected);
    // Where the latency went: admission→dispatch wait vs compute vs
    // response delivery (server-side stage histograms, bucketed means).
    println!(
        "stage queue_wait   {:>10.1} µs mean ({} samples)",
        snap.stages.queue_wait.mean_us, snap.stages.queue_wait.count
    );
    println!(
        "stage infer        {:>10.1} µs mean ({} batches)",
        snap.stages.infer.mean_us, snap.stages.infer.count
    );
    println!(
        "stage respond      {:>10.1} µs mean ({} batches)",
        snap.stages.respond.mean_us, snap.stages.respond.count
    );
    println!(
        "ops                {} shift-MACs, {} im2col bytes",
        snap.ops.shift_macs, snap.ops.im2col_bytes
    );
    println!(
        "energy estimate    {:>10.1} µJ ({:.1}% saved vs fp32 MACs)",
        snap.energy.total_uj, snap.energy.saving_pct
    );

    if producers > 1 && snap.max_batch_observed() < 2 {
        eprintln!("warning: no batch >1 formed under concurrent producers");
    }

    if let Ok(path) = std::env::var("SERVE_BENCH_OUT") {
        let hist: Vec<String> = snap.batch_histogram.iter().map(u64::to_string).collect();
        let features: &str = match (cfg!(feature = "parallel"), cfg!(feature = "obs")) {
            (true, true) => "[\"parallel\",\"obs\"]",
            (true, false) => "[\"parallel\"]",
            (false, true) => "[\"obs\"]",
            (false, false) => "[]",
        };
        let json = format!(
            concat!(
                "{{\"bench\":\"serve_load\",\"features\":{},",
                "\"producers\":{},\"requests_per_producer\":{},",
                "\"workers\":{},\"max_batch\":{},\"max_wait_us\":{},",
                "\"wall_s\":{:.3},\"throughput_rps\":{:.1},",
                "\"latency_us\":{{\"mean\":{:.1},\"p50\":{:.1},\"p95\":{:.1},\"p99\":{:.1}}},",
                "\"batch_histogram\":[{}],\"largest_batch\":{},\"rejected\":{},",
                "\"stage_mean_us\":{{\"queue_wait\":{:.1},\"infer\":{:.1},\"respond\":{:.1}}},",
                "\"shift_macs\":{},\"energy_total_uj\":{:.3}}}\n"
            ),
            features,
            producers,
            requests,
            config.workers,
            config.max_batch,
            config.max_wait.as_micros(),
            wall.as_secs_f64(),
            throughput,
            mean_us,
            p50,
            p95,
            p99,
            hist.join(","),
            snap.max_batch_observed(),
            snap.rejected,
            snap.stages.queue_wait.mean_us,
            snap.stages.infer.mean_us,
            snap.stages.respond.mean_us,
            snap.ops.shift_macs,
            snap.energy.total_uj,
        );
        std::fs::write(&path, json).expect("write SERVE_BENCH_OUT");
        println!("wrote {path}");
    }

    // Shut down before draining the flight recorder so the workers' final
    // spans are published before the dump.
    Arc::try_unwrap(server).ok().expect("all producers joined").shutdown();

    if let Some(path) = trace {
        let events = mfdfp_obs::dump();
        std::fs::write(&path, mfdfp_obs::chrome_trace_json(&events)).expect("write trace");
        println!("wrote {path} ({} events; load at https://ui.perfetto.dev)", events.len());
    }
}
