//! Load generator for the `mfdfp-serve` runtime — in-process or over
//! the HTTP/1.1 front-end.
//!
//! Spawns `MFDFP_SERVE_PRODUCERS` clients against a sharded
//! dynamic-batching [`Server`] holding one or more small MF-DFP
//! networks, then reports throughput, *exact* per-request latency
//! percentiles (the server's own histogram is bucketed; here every
//! latency is recorded individually), the dispatched batch-size
//! histogram and the admission-control counters (rejected / shed /
//! quota). With more than one producer the micro-batcher coalesces
//! requests, which is the effect this harness exists to measure.
//!
//! ```text
//! cargo run -p mfdfp-bench --bin serve_load --release [--features "parallel obs"] \
//!     [-- --http] [-- --open-loop <rps>] [-- --trace trace.json]
//! ```
//!
//! Modes:
//!
//! * default — closed-loop in-process clients (submit → wait → submit);
//! * `--http` — clients are real TCP keep-alive connections speaking
//!   HTTP/1.1 to an [`HttpServer`] bound on a loopback ephemeral port:
//!   the full network tier (accept → parse → route → infer → respond)
//!   is on the measured path, and the first response per producer is
//!   checked **bit-exact** against direct integer inference;
//! * `--open-loop <rps>` — arrivals are paced at a fixed aggregate rate
//!   (optionally in bursts of `MFDFP_SERVE_BURST`) independent of
//!   completions, the arrival pattern under which load shedding and
//!   backpressure actually matter; rejected arrivals are counted and
//!   dropped, not retried.
//!
//! With `--trace <path>` (and the `obs` feature), the flight recorder's
//! rings are drained after the run into a Chrome trace-event file —
//! load it at <https://ui.perfetto.dev> to see every pipeline stage and
//! kernel dispatch on a timeline. Without `obs` the file is written but
//! contains no events.
//!
//! Environment knobs:
//!
//! | Variable | Default | Meaning |
//! |----------|---------|---------|
//! | `MFDFP_SERVE_PRODUCERS` | 4 | concurrent clients |
//! | `MFDFP_SERVE_REQUESTS` | 64 | requests per client |
//! | `MFDFP_SERVE_SHARDS` | 1 | server worker shards |
//! | `MFDFP_SERVE_WORKERS` | 1 | worker threads per shard |
//! | `MFDFP_SERVE_MAX_BATCH` | 8 | batcher size bound |
//! | `MFDFP_SERVE_MAX_WAIT_US` | 2000 | batcher linger bound (µs) |
//! | `MFDFP_SERVE_MODELS` | 1 | registered models, round-robined |
//! | `MFDFP_SERVE_DEADLINE_US` | unset | per-request shed deadline (µs) |
//! | `MFDFP_SERVE_POISON_PCT` | 0 | % of requests sent malformed |
//! | `MFDFP_SERVE_BURST` | 1 | open-loop arrivals per tick |
//! | `SERVE_BENCH_OUT` | unset | write a JSON report to this path |
//!
//! A poison request is a deliberately invalid submission (wrong-size
//! image in-process; a non-numeric JSON body over HTTP). The harness
//! asserts every one is rejected with a *typed* error (never a panic,
//! never a served response) and that poison traffic does not corrupt
//! the well-formed requests batched around it.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use mfdfp_core::{calibrate, QuantizedNet};
use mfdfp_nn::zoo;
use mfdfp_serve::http::{encode_request, format_f32_array, parse_f32_array};
use mfdfp_serve::{
    HttpConfig, HttpServer, ModelRegistry, ServeConfig, ServeError, Server, SubmitOptions,
};
use mfdfp_tensor::TensorRng;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key).ok().and_then(|v| v.parse().ok()).filter(|&n| n > 0).unwrap_or(default)
}

fn env_u64_opt(key: &str) -> Option<u64> {
    std::env::var(key).ok().and_then(|v| v.parse().ok())
}

fn exact_percentile(sorted_us: &[u64], q: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted_us.len() as f64).ceil() as usize).clamp(1, sorted_us.len());
    sorted_us[rank - 1] as f64
}

/// Command-line flags.
struct Cli {
    trace: Option<String>,
    http: bool,
    open_loop_rps: Option<u64>,
    scenario: Option<String>,
}

fn parse_cli() -> Cli {
    let mut cli = Cli { trace: None, http: false, open_loop_rps: None, scenario: None };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--trace" => cli.trace = Some(args.next().expect("--trace requires a path")),
            "--http" => cli.http = true,
            "--open-loop" => {
                cli.open_loop_rps = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .expect("--open-loop requires a rate (req/s)"),
                );
            }
            "--scenario" => {
                cli.scenario = Some(args.next().expect("--scenario requires a name"));
            }
            other => panic!("unknown flag {other:?}"),
        }
    }
    cli
}

/// What one producer observed.
#[derive(Default)]
struct ProducerStats {
    latencies_us: Vec<u64>,
    shed: u64,
    dropped: u64,
    poison_rejected: u64,
}

/// The shared request plan every producer follows.
#[derive(Clone, Copy)]
struct Plan {
    requests: usize,
    models: usize,
    deadline: Option<Duration>,
    poison_pct: usize,
    /// Open-loop pacing: `None` is closed-loop; `Some((interval, burst))`
    /// fires `burst` arrivals every `interval` without waiting for
    /// completions first.
    pacing: Option<(Duration, usize)>,
}

impl Plan {
    fn model_name(&self, producer: usize, i: usize) -> String {
        format!("loadgen{}", (producer + i) % self.models)
    }

    fn is_poison(&self, i: usize) -> bool {
        self.poison_pct > 0 && i % 100 < self.poison_pct
    }
}

/// In-process producer: submits directly through [`Server::submit_with`].
/// Closed-loop retries on backpressure; open-loop drops and counts.
fn run_inproc_producer(
    server: &Server,
    qnet: &QuantizedNet,
    plan: &Plan,
    producer: usize,
) -> ProducerStats {
    let mut rng = TensorRng::seed_from(1000 + producer as u64);
    let mut stats = ProducerStats::default();
    let opts = SubmitOptions { deadline: plan.deadline, ..Default::default() };
    let mut pending: Vec<(Instant, mfdfp_serve::Ticket)> = Vec::new();
    let open_started = Instant::now();
    let mut verified = false;
    for i in 0..plan.requests {
        let model = plan.model_name(producer, i);
        if plan.is_poison(i) {
            // Wrong-size image: must be a typed BadInput, never served.
            let poison = rng.gaussian([7], 0.0, 1.0);
            match server.submit_with(&model, poison, opts) {
                Err(ServeError::BadInput { .. }) => stats.poison_rejected += 1,
                other => panic!("poison submission must be BadInput, got {other:?}"),
            }
            continue;
        }
        let img = rng.gaussian([3, 16, 16], 0.0, 0.7);
        let start = Instant::now();
        match plan.pacing {
            None => {
                // Closed loop: block on this request before the next.
                let ticket = loop {
                    match server.submit_with(&model, img.clone(), opts) {
                        Ok(t) => break t,
                        Err(ServeError::QueueFull { .. } | ServeError::QuotaExceeded { .. }) => {
                            std::thread::sleep(Duration::from_micros(200));
                        }
                        Err(e) => panic!("submit failed: {e}"),
                    }
                };
                match ticket.wait() {
                    Ok(response) => {
                        stats.latencies_us.push(start.elapsed().as_micros() as u64);
                        if !verified {
                            let direct = qnet.logits(&img).expect("direct logits");
                            assert_eq!(
                                response.logits.as_slice(),
                                direct.as_slice(),
                                "served response diverged from direct inference"
                            );
                            verified = true;
                        }
                    }
                    Err(ServeError::DeadlineExceeded { .. }) => stats.shed += 1,
                    Err(e) => panic!("response failed: {e}"),
                }
            }
            Some((interval, burst)) => {
                // Open loop: pace arrivals off the wall clock, collect
                // tickets, settle after the loop.
                let tick = i / burst;
                let due = open_started + interval * tick as u32;
                let now = Instant::now();
                if due > now {
                    std::thread::sleep(due - now);
                }
                match server.submit_with(&model, img, opts) {
                    Ok(t) => pending.push((Instant::now(), t)),
                    Err(ServeError::QueueFull { .. } | ServeError::QuotaExceeded { .. }) => {
                        stats.dropped += 1;
                    }
                    Err(e) => panic!("submit failed: {e}"),
                }
            }
        }
    }
    for (start, ticket) in pending {
        match ticket.wait() {
            Ok(_) => stats.latencies_us.push(start.elapsed().as_micros() as u64),
            Err(ServeError::DeadlineExceeded { .. }) => stats.shed += 1,
            Err(e) => panic!("response failed: {e}"),
        }
    }
    stats
}

/// Reads one HTTP response off `stream`; returns `(status, body)`.
fn read_http_response(stream: &mut TcpStream, buf: &mut Vec<u8>) -> (u16, String) {
    let mut chunk = [0u8; 4096];
    loop {
        if let Some(head_end) = buf.windows(4).position(|w| w == b"\r\n\r\n").map(|p| p + 4) {
            let head = String::from_utf8_lossy(&buf[..head_end]).into_owned();
            let status: u16 = head
                .split(' ')
                .nth(1)
                .and_then(|s| s.parse().ok())
                .unwrap_or_else(|| panic!("bad status line in {head:?}"));
            let length: usize = head
                .lines()
                .find_map(|l| {
                    l.to_ascii_lowercase()
                        .strip_prefix("content-length:")
                        .map(str::trim)
                        .map(String::from)
                })
                .and_then(|v| v.parse().ok())
                .expect("response must carry content-length");
            while buf.len() < head_end + length {
                let n = stream.read(&mut chunk).expect("read body");
                assert!(n > 0, "server closed mid-body");
                buf.extend_from_slice(&chunk[..n]);
            }
            let body = String::from_utf8_lossy(&buf[head_end..head_end + length]).into_owned();
            buf.drain(..head_end + length);
            return (status, body);
        }
        let n = stream.read(&mut chunk).expect("read head");
        assert!(n > 0, "server closed mid-head");
        buf.extend_from_slice(&chunk[..n]);
    }
}

/// Pulls the logits array out of an infer response body.
fn extract_logits(body: &str) -> Vec<f32> {
    let start = body.find("\"logits\":").expect("logits field") + "\"logits\":".len();
    let end = body[start..].find(']').expect("logits terminator") + start + 1;
    parse_f32_array(&body.as_bytes()[start..end]).expect("logits parse")
}

/// HTTP producer: one keep-alive connection, real request bytes on the
/// wire, first well-formed response verified bit-exact against direct
/// inference.
fn run_http_producer(
    addr: std::net::SocketAddr,
    qnet: &QuantizedNet,
    plan: &Plan,
    producer: usize,
) -> ProducerStats {
    let mut rng = TensorRng::seed_from(1000 + producer as u64);
    let mut stats = ProducerStats::default();
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let mut buf = Vec::new();
    let deadline_value = plan.deadline.map(|d| d.as_micros().to_string());
    let mut verified = false;
    let open_started = Instant::now();
    for i in 0..plan.requests {
        let path = format!("/v1/infer/{}", plan.model_name(producer, i));
        if plan.is_poison(i) {
            let bytes = encode_request("POST", &path, &[], b"[1.0,poison]");
            stream.write_all(&bytes).expect("write poison");
            let (status, _) = read_http_response(&mut stream, &mut buf);
            assert_eq!(status, 400, "poison body must be a typed 400");
            stats.poison_rejected += 1;
            continue;
        }
        if let Some((interval, burst)) = plan.pacing {
            let due = open_started + interval * (i / burst) as u32;
            let now = Instant::now();
            if due > now {
                std::thread::sleep(due - now);
            }
        }
        let img = rng.gaussian([3, 16, 16], 0.0, 0.7);
        let body = format_f32_array(img.as_slice());
        let mut headers: Vec<(&str, &str)> = Vec::new();
        if let Some(v) = deadline_value.as_deref() {
            headers.push(("x-mfdfp-deadline-us", v));
        }
        let bytes = encode_request("POST", &path, &headers, body.as_bytes());
        let start = Instant::now();
        loop {
            stream.write_all(&bytes).expect("write request");
            let (status, response_body) = read_http_response(&mut stream, &mut buf);
            match status {
                200 => {
                    stats.latencies_us.push(start.elapsed().as_micros() as u64);
                    if !verified {
                        let direct = qnet.logits(&img).expect("direct logits");
                        let served = extract_logits(&response_body);
                        assert_eq!(direct.as_slice().len(), served.len());
                        for (a, b) in direct.as_slice().iter().zip(&served) {
                            assert_eq!(
                                a.to_bits(),
                                b.to_bits(),
                                "http logits diverged from direct inference"
                            );
                        }
                        verified = true;
                    }
                    break;
                }
                429 if plan.pacing.is_none() => {
                    std::thread::sleep(Duration::from_micros(200));
                }
                429 => {
                    stats.dropped += 1;
                    break;
                }
                504 => {
                    stats.shed += 1;
                    break;
                }
                other => panic!("unexpected status {other}: {response_body}"),
            }
        }
    }
    stats
}

/// `--scenario recovery`: a scripted self-healing exercise (needs the
/// `fault` feature for the injection hooks). One worker serves a warm
/// baseline, then a panic storm trips the per-model circuit breaker; the
/// harness measures time-to-open, the fast-fail latency while open, the
/// time from disarm to the half-open probe closing the circuit, and —
/// after an injected worker death — the watchdog's respawn latency. The
/// numbers land in `SERVE_BENCH_OUT` next to the throughput runs.
#[cfg(feature = "fault")]
#[allow(clippy::too_many_lines)] // one linear scripted scenario, clearer unsplit
fn run_recovery_scenario() {
    use mfdfp_serve::{fault, BreakerConfig};

    let config = ServeConfig {
        workers: 1,
        breaker: Some(BreakerConfig {
            threshold: 3,
            backoff: Duration::from_millis(250),
            backoff_max: Duration::from_secs(2),
            probes: 1,
        }),
        ..ServeConfig::default()
    };
    let mut rng = TensorRng::seed_from(21);
    let mut float_net = zoo::quick_custom(3, 16, [4, 4, 8], 16, 10, &mut rng).expect("zoo net");
    let calib = rng.gaussian([4, 3, 16, 16], 0.0, 0.7);
    let plan_q = calibrate(&mut float_net, &[(calib, vec![0, 1, 2, 3])], 8).expect("calibration");
    let qnet = QuantizedNet::from_network(&float_net, &plan_q).expect("quantization");
    let registry = Arc::new(ModelRegistry::new());
    registry.register("recovery", qnet.clone());
    let server = Server::start(Arc::clone(&registry), config).expect("server start");
    fault::reset();

    let img = rng.gaussian([3, 16, 16], 0.0, 0.7);
    let direct = qnet.logits(&img).expect("direct logits");
    let expect_exact = |r: &mfdfp_serve::Response| {
        assert_eq!(r.logits.as_slice(), direct.as_slice(), "served logits diverged");
    };

    // Warm baseline: the tier serves bit-exactly before any injection.
    for _ in 0..8 {
        expect_exact(&server.submit("recovery", img.clone()).unwrap().wait().unwrap());
    }

    // Panic storm: every dispatch panics until the breaker opens.
    fault::arm_worker_panic(1_000);
    let storm_start = Instant::now();
    let mut storm_panics = 0u64;
    let time_to_open = loop {
        match server.submit("recovery", img.clone()) {
            Ok(ticket) => match ticket.wait() {
                Err(ServeError::WorkerPanic) => storm_panics += 1,
                other => panic!("storm dispatch must panic, got {other:?}"),
            },
            Err(ServeError::CircuitOpen { .. }) => break storm_start.elapsed(),
            Err(e) => panic!("storm submit: {e}"),
        }
        assert!(storm_panics < 100, "circuit never opened under a panic storm");
    };

    // While open, admissions fast-fail without touching queue or worker.
    let mut fast_fail_ns = 0u128;
    const FAST_FAILS: u32 = 200;
    for _ in 0..FAST_FAILS {
        let t0 = Instant::now();
        match server.submit("recovery", img.clone()) {
            Err(ServeError::CircuitOpen { .. }) => fast_fail_ns += t0.elapsed().as_nanos(),
            other => panic!("open circuit must fast-fail, got {other:?}"),
        }
    }
    let fast_fail_mean_us = fast_fail_ns as f64 / f64::from(FAST_FAILS) / 1000.0;

    // Disarm and heal: wait out the backoff, the half-open probe
    // succeeds and closes the circuit.
    fault::reset();
    let heal_start = Instant::now();
    let recover = loop {
        match server.submit("recovery", img.clone()) {
            Ok(ticket) => {
                expect_exact(&ticket.wait().expect("probe must serve"));
                break heal_start.elapsed();
            }
            Err(ServeError::CircuitOpen { retry_after, .. }) => {
                std::thread::sleep(
                    retry_after.clamp(Duration::from_millis(1), Duration::from_millis(50)),
                );
            }
            Err(e) => panic!("heal submit: {e}"),
        }
        assert!(heal_start.elapsed() < Duration::from_secs(10), "circuit never closed");
    };

    // Worker death: the watchdog must respawn crash-only.
    fault::arm_worker_die(1);
    let die_start = Instant::now();
    while server.metrics().respawns == 0 {
        assert!(die_start.elapsed() < Duration::from_secs(10), "watchdog never respawned");
        std::thread::sleep(Duration::from_millis(2));
    }
    let respawn = die_start.elapsed();
    expect_exact(&server.submit("recovery", img.clone()).unwrap().wait().unwrap());

    let health = server.health();
    assert!(health.ready, "tier must be ready after healing: {}", health.to_json());
    let snap = server.metrics();
    assert_eq!(
        snap.submitted,
        snap.completed + snap.failed + snap.shed + snap.shutdown_rejected,
        "accounting must balance exactly through storm and respawn"
    );

    println!("serve_load[recovery]: scripted self-healing scenario (1 worker, threshold 3)");
    println!("storm panics       {storm_panics:>10} before the circuit opened");
    println!("time to open       {:>10.1} ms", time_to_open.as_secs_f64() * 1e3);
    println!("fast-fail mean     {fast_fail_mean_us:>10.2} µs over {FAST_FAILS} open admissions");
    println!(
        "time to close      {:>10.1} ms (disarm → probe success)",
        recover.as_secs_f64() * 1e3
    );
    println!(
        "respawn latency    {:>10.1} ms (death → replacement live)",
        respawn.as_secs_f64() * 1e3
    );
    println!("breaker opens      {:>10}", snap.breaker_opens);
    println!("breaker rejected   {:>10}", snap.breaker_rejected);
    println!("respawns           {:>10}", snap.respawns);
    println!("health             {}", health.to_json());

    if let Ok(path) = std::env::var("SERVE_BENCH_OUT") {
        let json = format!(
            concat!(
                "{{\"bench\":\"serve_load\",\"scenario\":\"recovery\",",
                "\"storm_panics\":{},\"time_to_open_ms\":{:.1},",
                "\"fast_fail_mean_us\":{:.2},\"time_to_close_ms\":{:.1},",
                "\"respawn_ms\":{:.1},\"breaker_opens\":{},\"breaker_rejected\":{},",
                "\"respawns\":{}}}\n"
            ),
            storm_panics,
            time_to_open.as_secs_f64() * 1e3,
            fast_fail_mean_us,
            recover.as_secs_f64() * 1e3,
            respawn.as_secs_f64() * 1e3,
            snap.breaker_opens,
            snap.breaker_rejected,
            snap.respawns,
        );
        std::fs::write(&path, json).expect("write SERVE_BENCH_OUT");
        println!("wrote {path}");
    }
    server.shutdown();
}

#[allow(clippy::too_many_lines)] // one linear report, clearer unsplit
fn main() {
    let cli = parse_cli();
    if let Some(scenario) = cli.scenario.as_deref() {
        match scenario {
            "recovery" => {
                #[cfg(feature = "fault")]
                {
                    run_recovery_scenario();
                    return;
                }
                #[cfg(not(feature = "fault"))]
                {
                    eprintln!("--scenario recovery needs the injection hooks: rebuild with --features fault");
                    std::process::exit(2);
                }
            }
            other => panic!("unknown scenario {other:?} (known: recovery)"),
        }
    }
    let producers = env_usize("MFDFP_SERVE_PRODUCERS", 4);
    let config = ServeConfig {
        shards: env_usize("MFDFP_SERVE_SHARDS", 1),
        workers: env_usize("MFDFP_SERVE_WORKERS", 1),
        queue_capacity: (producers * 4).max(64),
        max_batch: env_usize("MFDFP_SERVE_MAX_BATCH", 8),
        max_wait: Duration::from_micros(env_usize("MFDFP_SERVE_MAX_WAIT_US", 2000) as u64),
        model_quota: None,
        ..ServeConfig::default()
    };
    let plan = Plan {
        requests: env_usize("MFDFP_SERVE_REQUESTS", 64),
        models: env_usize("MFDFP_SERVE_MODELS", 1),
        deadline: env_u64_opt("MFDFP_SERVE_DEADLINE_US").map(Duration::from_micros),
        poison_pct: std::env::var("MFDFP_SERVE_POISON_PCT")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0),
        pacing: cli.open_loop_rps.map(|rps| {
            let burst = env_usize("MFDFP_SERVE_BURST", 1);
            // Each producer carries rps/producers; a tick fires `burst`.
            let tick_ns = 1_000_000_000u64 * burst as u64 * producers as u64 / rps.max(1);
            (Duration::from_nanos(tick_ns), burst)
        }),
    };

    // The served model: the same small calibrated network the qnet tests
    // use (3×16×16 input, 10 classes) — big enough that inference costs
    // real time on the integer datapath, so batching effects are real.
    let mut rng = TensorRng::seed_from(21);
    let mut float_net = zoo::quick_custom(3, 16, [4, 4, 8], 16, 10, &mut rng).expect("zoo net");
    let calib = rng.gaussian([4, 3, 16, 16], 0.0, 0.7);
    let plan_q = calibrate(&mut float_net, &[(calib, vec![0, 1, 2, 3])], 8).expect("calibration");
    let qnet = QuantizedNet::from_network(&float_net, &plan_q).expect("quantization");

    let registry = Arc::new(ModelRegistry::new());
    for m in 0..plan.models {
        registry.register(&format!("loadgen{m}"), qnet.clone());
    }
    let server =
        Arc::new(Server::start(Arc::clone(&registry), config.clone()).expect("server start"));
    let http = if cli.http {
        Some(
            HttpServer::bind(
                Arc::clone(&server),
                "127.0.0.1:0",
                HttpConfig { max_connections: producers + 8, ..Default::default() },
            )
            .expect("http bind"),
        )
    } else {
        None
    };

    let mode = if cli.http { "http" } else { "inproc" };
    let loop_kind = if plan.pacing.is_some() { "open" } else { "closed" };
    println!(
        "serve_load[{mode}/{loop_kind}-loop]: {} producers × {} requests, shards={}, \
         workers={}, max_batch={}, max_wait={:?}, models={}, deadline={:?}, poison={}%",
        producers,
        plan.requests,
        config.shards,
        config.workers,
        config.max_batch,
        config.max_wait,
        plan.models,
        plan.deadline,
        plan.poison_pct,
    );

    let wall_start = Instant::now();
    let handles: Vec<_> = (0..producers)
        .map(|p| {
            let server = Arc::clone(&server);
            let qnet = qnet.clone();
            let addr = http.as_ref().map(HttpServer::local_addr);
            std::thread::spawn(move || match addr {
                Some(addr) => run_http_producer(addr, &qnet, &plan, p),
                None => run_inproc_producer(&server, &qnet, &plan, p),
            })
        })
        .collect();

    let mut latencies_us: Vec<u64> = Vec::new();
    let (mut shed_seen, mut dropped, mut poison_rejected) = (0u64, 0u64, 0u64);
    for h in handles {
        let stats = h.join().expect("producer thread");
        latencies_us.extend(stats.latencies_us);
        shed_seen += stats.shed;
        dropped += stats.dropped;
        poison_rejected += stats.poison_rejected;
    }
    let wall = wall_start.elapsed();
    let snap = server.metrics();

    latencies_us.sort_unstable();
    let total = latencies_us.len() as f64;
    let throughput = total / wall.as_secs_f64();
    let mean_us = latencies_us.iter().sum::<u64>() as f64 / total.max(1.0);
    let (p50, p95, p99) = (
        exact_percentile(&latencies_us, 0.50),
        exact_percentile(&latencies_us, 0.95),
        exact_percentile(&latencies_us, 0.99),
    );

    println!("wall time          {:>10.3} s", wall.as_secs_f64());
    println!("served             {:>10} responses", latencies_us.len());
    println!("throughput         {throughput:>10.1} req/s");
    println!("latency mean       {mean_us:>10.1} µs");
    println!("latency p50        {p50:>10.1} µs");
    println!("latency p95        {p95:>10.1} µs");
    println!("latency p99        {p99:>10.1} µs");
    println!("batch histogram    {:?} (size 1..)", snap.batch_histogram);
    println!("largest batch      {:>10}", snap.max_batch_observed());
    println!("rejected           {:>10} ({dropped} dropped open-loop)", snap.rejected);
    println!("shed (deadline)    {:>10} (clients saw {shed_seen})", snap.shed);
    println!("quota rejected     {:>10}", snap.quota_rejected);
    println!("poison rejected    {:>10} (all typed errors)", poison_rejected);
    // Where the latency went: admission→dispatch wait vs compute vs
    // response delivery (server-side stage histograms, bucketed means).
    println!(
        "stage queue_wait   {:>10.1} µs mean ({} samples)",
        snap.stages.queue_wait.mean_us, snap.stages.queue_wait.count
    );
    println!(
        "stage infer        {:>10.1} µs mean ({} batches)",
        snap.stages.infer.mean_us, snap.stages.infer.count
    );
    println!(
        "stage respond      {:>10.1} µs mean ({} batches)",
        snap.stages.respond.mean_us, snap.stages.respond.count
    );
    println!(
        "ops                {} shift-MACs, {} im2col bytes",
        snap.ops.shift_macs, snap.ops.im2col_bytes
    );
    println!(
        "energy estimate    {:>10.1} µJ ({:.1}% saved vs fp32 MACs)",
        snap.energy.total_uj, snap.energy.saving_pct
    );

    // Sanity: the server's own accounting must balance — everything
    // admitted was answered (served, failed) or shed, and nothing
    // vanished. `completed` counts server-side answers, including ones
    // whose client had already stopped listening.
    assert_eq!(
        snap.submitted,
        snap.completed + snap.failed + snap.shed,
        "accounting must balance exactly"
    );
    assert_eq!(snap.shed, shed_seen, "every shed must reach a client as a typed 504/error");

    if producers > 1 && plan.pacing.is_none() && snap.max_batch_observed() < 2 {
        eprintln!("warning: no batch >1 formed under concurrent producers");
    }

    if let Ok(path) = std::env::var("SERVE_BENCH_OUT") {
        let hist: Vec<String> = snap.batch_histogram.iter().map(u64::to_string).collect();
        let features: &str = match (cfg!(feature = "parallel"), cfg!(feature = "obs")) {
            (true, true) => "[\"parallel\",\"obs\"]",
            (true, false) => "[\"parallel\"]",
            (false, true) => "[\"obs\"]",
            (false, false) => "[]",
        };
        let json = format!(
            concat!(
                "{{\"bench\":\"serve_load\",\"mode\":\"{}\",\"loop\":\"{}\",\"features\":{},",
                "\"producers\":{},\"requests_per_producer\":{},",
                "\"shards\":{},\"workers\":{},\"max_batch\":{},\"max_wait_us\":{},",
                "\"models\":{},\"wall_s\":{:.3},\"throughput_rps\":{:.1},",
                "\"latency_us\":{{\"mean\":{:.1},\"p50\":{:.1},\"p95\":{:.1},\"p99\":{:.1}}},",
                "\"batch_histogram\":[{}],\"largest_batch\":{},\"rejected\":{},",
                "\"shed\":{},\"quota_rejected\":{},\"poison_rejected\":{},",
                "\"stage_mean_us\":{{\"queue_wait\":{:.1},\"infer\":{:.1},\"respond\":{:.1}}},",
                "\"shift_macs\":{},\"energy_total_uj\":{:.3}}}\n"
            ),
            mode,
            loop_kind,
            features,
            producers,
            plan.requests,
            config.shards,
            config.workers,
            config.max_batch,
            config.max_wait.as_micros(),
            plan.models,
            wall.as_secs_f64(),
            throughput,
            mean_us,
            p50,
            p95,
            p99,
            hist.join(","),
            snap.max_batch_observed(),
            snap.rejected,
            snap.shed,
            snap.quota_rejected,
            poison_rejected,
            snap.stages.queue_wait.mean_us,
            snap.stages.infer.mean_us,
            snap.stages.respond.mean_us,
            snap.ops.shift_macs,
            snap.energy.total_uj,
        );
        std::fs::write(&path, json).expect("write SERVE_BENCH_OUT");
        println!("wrote {path}");
    }

    // Shut down before draining the flight recorder so the workers' final
    // spans are published before the dump.
    drop(http);
    Arc::try_unwrap(server).ok().expect("all producers joined").shutdown();

    if let Some(path) = cli.trace {
        let events = mfdfp_obs::dump();
        std::fs::write(&path, mfdfp_obs::chrome_trace_json(&events)).expect("write trace");
        println!("wrote {path} ({} events; load at https://ui.perfetto.dev)", events.len());
    }
}
