//! Regenerates **Table 2** of the paper: classification accuracy,
//! inference time, energy and energy saving for CIFAR-10 and ImageNet on
//! the FP32 baseline, the single MF-DFP network, and the two-network
//! ensemble.
//!
//! ```text
//! cargo run -p mfdfp-bench --bin table2 --release
//! ```
//!
//! Methodology (DESIGN.md §3, §5):
//! * **Time and energy** come from the exact paper topologies
//!   (cifar10-full, ungrouped AlexNet) on the cycle scheduler and the
//!   calibrated power model — no training involved.
//! * **Accuracy** comes from CPU-scale stand-ins: reduced-width networks
//!   of the same layer pattern trained on the synthetic datasets, pushed
//!   through the full Algorithm 1 pipeline (Phases 1–3). Absolute values
//!   differ from the paper (different data); the *orderings* — MF-DFP
//!   within ~1% of float, ensemble above float — are the reproduction
//!   target.

use mfdfp_accel::{
    design_metrics, schedule_network, AcceleratorConfig, ComponentLibrary, DmaModel, RunReport,
};
use mfdfp_bench::{float_accuracy, pretrain_float_converged};
use mfdfp_core::{run_pipeline, Ensemble, PipelineConfig};
use mfdfp_data::{Batcher, Split, SynthSpec};
use mfdfp_nn::{zoo, Accuracy, Network};
use mfdfp_tensor::TensorRng;

struct HwNumbers {
    fp: RunReport,
    mf: RunReport,
    ens: RunReport,
}

fn hardware_numbers(exact_net: &Network) -> HwNumbers {
    let lib = ComponentLibrary::calibrated_65nm();
    let fp_cfg = AcceleratorConfig::paper_fp32();
    let mf_cfg = AcceleratorConfig::paper_mf_dfp();
    let ens_cfg = AcceleratorConfig::paper_ensemble();
    let fp = RunReport::from_schedule(
        &schedule_network(exact_net, &fp_cfg, DmaModel::Overlapped).expect("schedule"),
        &design_metrics(&fp_cfg, &lib).expect("design"),
    );
    let mf = RunReport::from_schedule(
        &schedule_network(exact_net, &mf_cfg, DmaModel::Overlapped).expect("schedule"),
        &design_metrics(&mf_cfg, &lib).expect("design"),
    );
    // Ensemble: both members run in parallel on their own PUs — latency of
    // one member, power of the two-PU design.
    let ens = RunReport::from_schedule(
        &schedule_network(exact_net, &mf_cfg, DmaModel::Overlapped).expect("schedule"),
        &design_metrics(&ens_cfg, &lib).expect("design"),
    );
    HwNumbers { fp, mf, ens }
}

struct AccNumbers {
    fp: (f32, f32),
    mf: (f32, f32),
    ens: (f32, f32),
}

/// Trains two float networks from different seeds, runs Algorithm 1 on
/// each, and evaluates single-network and ensemble accuracy with the
/// integer inference engine.
fn accuracy_numbers(
    mut make_net: impl FnMut(u64) -> Network,
    split: &Split,
    k: usize,
    pipeline: &PipelineConfig,
) -> AccNumbers {
    // Member 1 is also the float reference, trained to convergence.
    let mut float1 = pretrain_float_converged(make_net(1), split, 30, 0.015, 32, 101);
    let fp = float_accuracy(&mut float1, &split.test, 32, k);

    let float2 = pretrain_float_converged(make_net(2), split, 30, 0.015, 32, 202);

    let out1 = run_pipeline(float1, &split.train, &split.test, pipeline).expect("pipeline 1");
    let mut cfg2 = *pipeline;
    cfg2.seed ^= 0xFFFF;
    let out2 = run_pipeline(float2, &split.train, &split.test, &cfg2).expect("pipeline 2");

    // Deployed (integer-engine) accuracies.
    let mf = qnet_accuracy(&Ensemble::new(vec![out1.qnet.clone()]).expect("one member"), split, k);
    let ens =
        qnet_accuracy(&Ensemble::new(vec![out1.qnet, out2.qnet]).expect("two members"), split, k);
    AccNumbers { fp, mf, ens }
}

fn qnet_accuracy(ens: &Ensemble, split: &Split, k: usize) -> (f32, f32) {
    let batches: Vec<_> = Batcher::new(&split.test, 32).iter().collect();
    let acc: Accuracy = ens.evaluate(batches, k).expect("quantized evaluation");
    (acc.top1(), acc.topk())
}

#[allow(clippy::too_many_arguments)]
fn print_block(title: &str, hw: &HwNumbers, acc: &AccNumbers, k: usize, paper_rows: [&str; 3]) {
    println!("\n=== {title} ===");
    println!(
        "{:<26} {:>18} {:>12} {:>12} {:>12}",
        "Precision", "Accuracy (%)", "Time (us)", "Energy (uJ)", "EnSav (%)"
    );
    mfdfp_bench::rule(86);
    let fmt_acc = |(t1, tk): (f32, f32)| {
        if k > 1 {
            format!("{:.2} ({:.2})", t1 * 100.0, tk * 100.0)
        } else {
            format!("{:.2}", t1 * 100.0)
        }
    };
    println!(
        "{:<26} {:>18} {:>12.2} {:>12.2} {:>12.2}",
        "Floating-Point (32,32)",
        fmt_acc(acc.fp),
        hw.fp.time_us,
        hw.fp.energy_uj,
        0.0
    );
    println!(
        "{:<26} {:>18} {:>12.2} {:>12.2} {:>12.2}",
        "MF-DFP (8,4)",
        fmt_acc(acc.mf),
        hw.mf.time_us,
        hw.mf.energy_uj,
        hw.mf.energy_saving_vs(&hw.fp)
    );
    println!(
        "{:<26} {:>18} {:>12.2} {:>12.2} {:>12.2}",
        "Ensemble MF-DFP",
        fmt_acc(acc.ens),
        hw.ens.time_us,
        hw.ens.energy_uj,
        hw.ens.energy_saving_vs(&hw.fp)
    );
    println!("\nPaper reference:");
    for row in paper_rows {
        println!("  {row}");
    }
}

fn main() {
    println!("Table 2: time, energy and accuracy for CIFAR-10 and ImageNet");
    println!("(accuracy columns: synthetic stand-in datasets + reduced-width");
    println!(" trainable variants; time/energy columns: exact paper topologies)");

    // ---------------- CIFAR-10 ----------------
    let mut rng = TensorRng::seed_from(0);
    let cifar_exact = zoo::cifar10_full(10, &mut rng).expect("topology");
    let cifar_hw = hardware_numbers(&cifar_exact);

    // Harden the stand-in so accuracies land mid-range (not saturated):
    // the paper's CIFAR-10 numbers sit near 81%.
    let mut cifar_spec = SynthSpec::cifar(40, 7);
    cifar_spec.noise = 0.8;
    cifar_spec.max_shift = 3;
    let cifar_split = Split::generate(&cifar_spec, 20);
    let pipeline = PipelineConfig {
        phase1_epochs: 6,
        phase2_epochs: 3,
        learning_rate: 4e-3,
        batch_size: 32,
        eval_k: 1,
        ..PipelineConfig::paper_defaults()
    };
    let cifar_acc = accuracy_numbers(
        |seed| {
            let mut rng = TensorRng::seed_from(seed);
            zoo::quick_custom(3, 32, [8, 8, 16], 32, 10, &mut rng).expect("topology")
        },
        &cifar_split,
        1,
        &pipeline,
    );
    print_block(
        "CIFAR-10",
        &cifar_hw,
        &cifar_acc,
        1,
        [
            "Floating-Point  81.53   246.52 us   335.68 uJ    0.00%",
            "MF-DFP          80.77   246.27 us    34.22 uJ   89.81%",
            "Ensemble        82.61   246.27 us    66.56 uJ   80.17%",
        ],
    );

    // ---------------- ImageNet ----------------
    let alexnet_exact = zoo::alexnet(1000, false, &mut rng).expect("topology");
    let imagenet_hw = hardware_numbers(&alexnet_exact);

    let mut imagenet_spec = SynthSpec::imagenet(30, 13);
    imagenet_spec.noise = 1.0;
    imagenet_spec.max_shift = 4;
    let imagenet_split = Split::generate(&imagenet_spec, 10);
    let pipeline = PipelineConfig {
        phase1_epochs: 5,
        phase2_epochs: 3,
        learning_rate: 4e-3,
        batch_size: 32,
        eval_k: 5,
        ..PipelineConfig::paper_defaults()
    };
    let imagenet_acc = accuracy_numbers(
        |seed| {
            let mut rng = TensorRng::seed_from(seed);
            zoo::alexnet_like_small(20, &mut rng).expect("topology")
        },
        &imagenet_split,
        5,
        &pipeline,
    );
    print_block(
        "ImageNet (top-1 (top-5))",
        &imagenet_hw,
        &imagenet_acc,
        5,
        [
            "Floating-Point  56.95 (79.88)   15666.45 us   21332.38 uJ    0.00%",
            "MF-DFP          56.16 (79.13)   15666.06 us    2176.96 uJ   89.80%",
            "Ensemble        57.57 (80.29)   15666.06 us    4234.07 uJ   80.15%",
        ],
    );
}
