//! Property-based tests of the v2 flat deployment image: the borrowed
//! (zero-copy) construction path must be observationally identical to the
//! owned path, v1 streams must migrate losslessly, and arbitrary
//! corruption, truncation or misalignment must come back as typed
//! [`CoreError::BadImage`] errors — never a panic, never undefined reads.

use std::sync::Arc;

use mfdfp_core::{
    calibrate, from_bytes, to_bytes, to_image, CoreError, ImageView, QLayer, QuantizedNet,
    ZooBuilder,
};
use mfdfp_dfp::AlignedBytes;
use mfdfp_nn::zoo;
use mfdfp_tensor::{Tensor, TensorRng};
use proptest::prelude::*;

/// A small calibrated MF-DFP network (3×16×16 input, 10 classes) whose
/// weights derive from `seed`.
fn tiny_qnet(seed: u64) -> QuantizedNet {
    let mut rng = TensorRng::seed_from(seed);
    let mut net = zoo::quick_custom(3, 16, [4, 4, 8], 16, 10, &mut rng).unwrap();
    let x = rng.gaussian([4, 3, 16, 16], 0.0, 0.7);
    let plan = calibrate(&mut net, &[(x, vec![0, 1, 2, 3])], 8).unwrap();
    QuantizedNet::from_network(&net, &plan).unwrap()
}

fn logit_bits(net: &QuantizedNet, img: &Tensor) -> Vec<u32> {
    net.logits(img).unwrap().as_slice().iter().map(|v| v.to_bits()).collect()
}

/// Decoded weight codes and bias values of every weighted layer — the
/// ground truth both construction paths must agree on exactly.
fn layer_payloads(net: &QuantizedNet) -> Vec<(Vec<mfdfp_dfp::Pow2Weight>, Vec<i64>)> {
    net.layers()
        .iter()
        .filter_map(|l| match l {
            QLayer::Conv(c) => Some((c.weights.to_weights(), c.bias.to_vec())),
            QLayer::Linear(l) => Some((l.weights.to_weights(), l.bias.to_vec())),
            _ => None,
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Owned and image-borrowed networks hold identical weight codes and
    /// biases, and produce bit-identical logits.
    #[test]
    fn image_round_trip_is_bit_identical(seed in 0u64..1000) {
        let owned = tiny_qnet(seed);
        let view = ImageView::open(Arc::new(to_image(&owned))).unwrap();
        let borrowed = QuantizedNet::from_image(&view).unwrap();

        prop_assert_eq!(borrowed.name(), owned.name());
        prop_assert_eq!(borrowed.classes(), owned.classes());
        prop_assert_eq!(layer_payloads(&borrowed), layer_payloads(&owned));

        let mut rng = TensorRng::seed_from(seed ^ 0xD15EA5E);
        let img = rng.gaussian([3, 16, 16], 0.0, 0.7);
        prop_assert_eq!(logit_bits(&borrowed, &img), logit_bits(&owned, &img));
    }

    /// A v1 byte stream migrated through `from_bytes` → `to_image` →
    /// `from_image` is equivalent to the original network.
    #[test]
    fn v1_stream_migrates_losslessly(seed in 0u64..1000) {
        let owned = tiny_qnet(seed);
        let v1 = from_bytes(&to_bytes(&owned)).unwrap();
        let view = ImageView::open(Arc::new(to_image(&v1))).unwrap();
        let migrated = QuantizedNet::from_image(&view).unwrap();

        prop_assert_eq!(layer_payloads(&migrated), layer_payloads(&owned));
        let mut rng = TensorRng::seed_from(seed.wrapping_mul(31));
        let img = rng.gaussian([3, 16, 16], 0.0, 0.7);
        prop_assert_eq!(logit_bits(&migrated, &img), logit_bits(&owned, &img));
    }

    /// Truncating an image anywhere is always detected as a typed error.
    #[test]
    fn truncation_is_always_detected(cut in 0usize..4096) {
        let image = to_image(&tiny_qnet(42));
        let cut = cut.min(image.len().saturating_sub(1));
        let truncated = AlignedBytes::from_slice(&image.as_slice()[..cut]);
        match ImageView::open(Arc::new(truncated)) {
            Err(CoreError::BadImage(_)) => {}
            Err(e) => prop_assert!(false, "wrong error kind: {e}"),
            Ok(_) => prop_assert!(false, "truncated image at {cut} bytes was accepted"),
        }
    }

    /// Flipping any single byte never panics: the reader either rejects
    /// the image with a typed error or — when the flip lands in payload
    /// or padding — still builds a servable network whose forward pass
    /// completes without faulting.
    #[test]
    fn corruption_never_panics(pos in 0usize..16384, flip in 1u8..=255) {
        let image = to_image(&tiny_qnet(7));
        let pos = pos % image.len();
        let mut bytes = image.as_slice().to_vec();
        bytes[pos] ^= flip;
        match ImageView::open(Arc::new(AlignedBytes::from_slice(&bytes))) {
            Err(CoreError::BadImage(_)) | Err(CoreError::Dfp(_)) | Err(CoreError::Tensor(_)) => {}
            Err(e) => prop_assert!(false, "wrong error kind: {e}"),
            Ok(view) => {
                // Structurally valid ⇒ must serve without panicking.
                if let Ok(net) = QuantizedNet::from_image(&view) {
                    let mut rng = TensorRng::seed_from(9);
                    let img = rng.gaussian([3, 16, 16], 0.0, 0.7);
                    let _ = net.logits(&img);
                }
            }
        }
    }
}

#[test]
fn misaligned_zoo_section_is_rejected() {
    // Hand-build a zoo whose directory points a model at an unaligned
    // offset: the reader must refuse rather than hand out unaligned views.
    let image = to_image(&tiny_qnet(3));
    let mut builder = ZooBuilder::new();
    builder.push_image("m", image);
    let zoo = builder.finish();
    let mut bytes = zoo.as_slice().to_vec();
    // Directory entry 0 starts at offset 64; model_off lives at +8.
    let model_off = u64::from_le_bytes(bytes[72..80].try_into().unwrap());
    bytes[72..80].copy_from_slice(&(model_off + 1).to_le_bytes());
    let opened = mfdfp_core::ZooView::open(Arc::new(AlignedBytes::from_slice(&bytes)));
    assert!(matches!(opened, Err(CoreError::BadImage(_))));
}

#[test]
fn open_at_rejects_unaligned_base() {
    let image = to_image(&tiny_qnet(3));
    let buf = Arc::new(AlignedBytes::from_slice(image.as_slice()));
    let len = buf.len();
    assert!(matches!(ImageView::open_at(buf, 32, len - 32), Err(CoreError::BadImage(_))));
}

#[test]
fn wrong_magic_and_version_are_rejected() {
    let image = to_image(&tiny_qnet(3));
    let mut bytes = image.as_slice().to_vec();
    bytes[0] ^= 0xFF;
    assert!(matches!(
        ImageView::open(Arc::new(AlignedBytes::from_slice(&bytes))),
        Err(CoreError::BadImage(_))
    ));
    let mut bytes = image.as_slice().to_vec();
    bytes[8] = 9; // version
    assert!(matches!(
        ImageView::open(Arc::new(AlignedBytes::from_slice(&bytes))),
        Err(CoreError::BadImage(_))
    ));
}
