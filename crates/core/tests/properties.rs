//! Property-based tests of the quantization pipeline: invariants that must
//! hold for arbitrary network weights and calibration data.

use mfdfp_core::{
    build_working_net, calibrate, from_bytes, sync_quantized_params, to_bytes, QuantizedNet,
};
use mfdfp_dfp::Pow2Weight;
use mfdfp_nn::layers::{Linear, Relu};
use mfdfp_nn::{Layer, Network, Phase};
use mfdfp_tensor::{Shape, Tensor, TensorRng};
use proptest::prelude::*;

/// A tiny MLP whose weights come from the proptest strategy.
fn mlp_with_weights(w1: &[f32], w2: &[f32]) -> Network {
    let mut rng = TensorRng::seed_from(0);
    let mut net = Network::new("prop");
    let mut l1 = Linear::new("fc1", 4, 8, &mut rng);
    *l1.weights_mut() = Tensor::from_vec(w1.to_vec(), Shape::d2(8, 4)).unwrap();
    let mut l2 = Linear::new("fc2", 8, 3, &mut rng);
    *l2.weights_mut() = Tensor::from_vec(w2.to_vec(), Shape::d2(3, 8)).unwrap();
    net.push(Layer::Linear(l1));
    net.push(Layer::Relu(Relu::new()));
    net.push(Layer::Linear(l2));
    net
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Calibrated formats always cover the activations they were
    /// calibrated on, whatever the weights.
    #[test]
    fn calibration_covers_its_own_data(
        w1 in proptest::collection::vec(-0.9f32..0.9, 32),
        w2 in proptest::collection::vec(-0.9f32..0.9, 24),
        xs in proptest::collection::vec(-1.0f32..1.0, 8),
    ) {
        let mut net = mlp_with_weights(&w1, &w2);
        let x = Tensor::from_vec(xs, Shape::d2(2, 4)).unwrap();
        let plan = calibrate(&mut net, &[(x.clone(), vec![0, 1])], 8).unwrap();
        let trace = net.forward_trace(&x, Phase::Eval).unwrap();
        prop_assert!(plan.input_format.max_value() >= trace[0].abs_max() * 0.999);
        for (i, t) in trace.iter().skip(1).enumerate() {
            if net.layers()[i].is_weighted() {
                prop_assert!(
                    plan.boundary_formats[i].max_value() >= t.abs_max() * 0.999,
                    "layer {i}"
                );
            }
        }
    }

    /// After sync, every working-net weight is an exact power of two (or
    /// the quantization of the master weight).
    #[test]
    fn sync_produces_exact_powers_of_two(
        w1 in proptest::collection::vec(-0.9f32..0.9, 32),
        w2 in proptest::collection::vec(-0.9f32..0.9, 24),
    ) {
        let mut net = mlp_with_weights(&w1, &w2);
        let x = Tensor::from_vec(vec![0.5; 8], Shape::d2(2, 4)).unwrap();
        let plan = calibrate(&mut net, &[(x, vec![0, 1])], 8).unwrap();
        let mut working = build_working_net(&net, &plan);
        sync_quantized_params(&net, &mut working, &plan);
        let masters: Vec<f32> = {
            let mut v = Vec::new();
            net.visit_params(&mut |p, _| {
                if p.shape().rank() > 1 {
                    v.extend_from_slice(p.as_slice());
                }
            });
            v
        };
        let mut quants = Vec::new();
        working.visit_params(&mut |p, _| {
            if p.shape().rank() > 1 {
                quants.extend_from_slice(p.as_slice());
            }
        });
        prop_assert_eq!(masters.len(), quants.len());
        for (m, q) in masters.iter().zip(&quants) {
            prop_assert_eq!(*q, Pow2Weight::from_f32(*m).to_f32());
        }
    }

    /// Integer inference saturates instead of wrapping: all output codes
    /// are valid i8 (trivially true by type) and the dequantized logits
    /// are within the output format's range.
    #[test]
    fn integer_logits_within_format_range(
        w1 in proptest::collection::vec(-0.9f32..0.9, 32),
        w2 in proptest::collection::vec(-0.9f32..0.9, 24),
        xs in proptest::collection::vec(-1.0f32..1.0, 4),
    ) {
        let mut net = mlp_with_weights(&w1, &w2);
        let calib = Tensor::from_vec(vec![0.5; 8], Shape::d2(2, 4)).unwrap();
        let plan = calibrate(&mut net, &[(calib, vec![0, 1])], 8).unwrap();
        let q = QuantizedNet::from_network(&net, &plan).unwrap();
        let img = Tensor::from_slice(&xs);
        let logits = q.logits(&img).unwrap();
        let fmt = q.output_format();
        for &v in logits.as_slice() {
            prop_assert!(v >= fmt.min_value() - 1e-6 && v <= fmt.max_value() + 1e-6);
        }
    }

    /// Deployment images round-trip bit-exactly for arbitrary weights.
    #[test]
    fn deployment_round_trip(
        w1 in proptest::collection::vec(-0.9f32..0.9, 32),
        w2 in proptest::collection::vec(-0.9f32..0.9, 24),
        xs in proptest::collection::vec(-1.0f32..1.0, 4),
    ) {
        let mut net = mlp_with_weights(&w1, &w2);
        let calib = Tensor::from_vec(vec![0.5; 8], Shape::d2(2, 4)).unwrap();
        let plan = calibrate(&mut net, &[(calib, vec![0, 1])], 8).unwrap();
        let q = QuantizedNet::from_network(&net, &plan).unwrap();
        let img = Tensor::from_slice(&xs);
        let bytes = to_bytes(&q);
        let back = from_bytes(&bytes).unwrap();
        prop_assert_eq!(q.forward_codes(&img).unwrap(), back.forward_codes(&img).unwrap());
    }

    /// The batched quantized forward is bit-equivalent to the per-image
    /// path, for arbitrary weights, inputs and batch sizes — the invariant
    /// the serving runtime's micro-batcher relies on to return responses
    /// byte-identical to unbatched `logits` calls.
    #[test]
    fn batched_forward_matches_per_image(
        w1 in proptest::collection::vec(-0.9f32..0.9, 32),
        w2 in proptest::collection::vec(-0.9f32..0.9, 24),
        xs in proptest::collection::vec(-1.0f32..1.0, 4..=28),
    ) {
        let mut net = mlp_with_weights(&w1, &w2);
        let calib = Tensor::from_vec(vec![0.5; 8], Shape::d2(2, 4)).unwrap();
        let plan = calibrate(&mut net, &[(calib, vec![0, 1])], 8).unwrap();
        let q = QuantizedNet::from_network(&net, &plan).unwrap();
        let n = xs.len() / 4;
        let batch = Tensor::from_vec(xs[..n * 4].to_vec(), Shape::d2(n, 4)).unwrap();
        let batched = q.forward_codes_batch(&batch).unwrap();
        prop_assert_eq!(batched.len(), n);
        let batched_logits = q.logits_batch(&batch).unwrap();
        for (s, batched_codes) in batched.iter().enumerate() {
            let img = batch.index_axis0(s);
            let single = q.forward_codes(&img).unwrap();
            prop_assert_eq!(batched_codes, &single, "codes diverge at image {}", s);
            // Dequantized logits must match bit-for-bit as well.
            let row = batched_logits.index_axis0(s);
            let direct = q.logits(&img).unwrap();
            prop_assert_eq!(row.as_slice(), direct.as_slice());
        }
    }

    /// A single workspace reused across arbitrary images gives exactly
    /// the per-call-allocation results, and its grow-only buffers never
    /// corrupt a later (smaller or larger) pass — the tentpole's
    /// workspace-reuse contract, including agreement with the
    /// decode-based reference datapath.
    #[test]
    fn reused_workspace_forward_matches_fresh_and_reference(
        w1 in proptest::collection::vec(-0.9f32..0.9, 32),
        w2 in proptest::collection::vec(-0.9f32..0.9, 24),
        xs in proptest::collection::vec(-1.0f32..1.0, 12),
    ) {
        let mut net = mlp_with_weights(&w1, &w2);
        let calib = Tensor::from_vec(vec![0.5; 8], Shape::d2(2, 4)).unwrap();
        let plan = calibrate(&mut net, &[(calib, vec![0, 1])], 8).unwrap();
        let q = QuantizedNet::from_network(&net, &plan).unwrap();
        let mut ws = q.plan().workspace();
        for s in 0..3 {
            let img = Tensor::from_vec(xs[s * 4..(s + 1) * 4].to_vec(), Shape::d1(4)).unwrap();
            let fresh = q.forward_codes(&img).unwrap();
            let reference = q.forward_codes_reference(&img).unwrap();
            let via_ws = q.forward_codes_with(&img, &mut ws).unwrap();
            prop_assert_eq!(via_ws, &fresh[..], "workspace pass diverged at image {}", s);
            prop_assert_eq!(fresh, reference, "packed vs reference diverged at image {}", s);
        }
    }

    /// Ragged-batch coverage for the batch-fused forward on the MLP:
    /// every batch size 1..=9 must match the retained per-image oracle
    /// loop code-for-code (the serving batcher produces exactly these
    /// ragged tails when traffic ebbs).
    #[test]
    fn fused_mlp_batch_matches_per_image_oracle(
        w1 in proptest::collection::vec(-0.9f32..0.9, 32),
        w2 in proptest::collection::vec(-0.9f32..0.9, 24),
        n in 1usize..10,
        seed in 0u64..1000,
    ) {
        let mut net = mlp_with_weights(&w1, &w2);
        let calib = Tensor::from_vec(vec![0.5; 8], Shape::d2(2, 4)).unwrap();
        let plan = calibrate(&mut net, &[(calib, vec![0, 1])], 8).unwrap();
        let q = QuantizedNet::from_network(&net, &plan).unwrap();
        let mut rng = TensorRng::seed_from(seed + 1);
        let batch = rng.gaussian([n, 4], 0.0, 0.5);
        prop_assert_eq!(
            q.forward_codes_batch(&batch).unwrap(),
            q.forward_codes_batch_per_image(&batch).unwrap()
        );
        // The flat logits entries agree bit-for-bit too, and a plan
        // sized for max_batch 9 serves every smaller batch warm.
        let wplan = q.plan_for_batch(9);
        let mut ws = wplan.workspace();
        let mut fused = vec![0.0f32; n * q.classes()];
        let mut oracle = vec![0.0f32; n * q.classes()];
        q.logits_batch_into(batch.as_slice(), n, &mut ws, &mut fused).unwrap();
        q.logits_batch_per_image_into(batch.as_slice(), n, &mut ws, &mut oracle).unwrap();
        for (a, b) in fused.iter().zip(&oracle) {
            prop_assert!(a.to_bits() == b.to_bits());
        }
        prop_assert!(ws.is_warm_for(&wplan));
    }

    /// Quantization never introduces NaN/∞ into the working network.
    #[test]
    fn quantization_keeps_values_finite(
        w1 in proptest::collection::vec(-10.0f32..10.0, 32),
        w2 in proptest::collection::vec(-10.0f32..10.0, 24),
    ) {
        let mut net = mlp_with_weights(&w1, &w2);
        let x = Tensor::from_vec(vec![0.25; 8], Shape::d2(2, 4)).unwrap();
        let plan = calibrate(&mut net, &[(x.clone(), vec![0, 1])], 8).unwrap();
        let mut working = build_working_net(&net, &plan);
        sync_quantized_params(&net, &mut working, &plan);
        let y = working.forward(&x, Phase::Eval).unwrap();
        prop_assert!(y.as_slice().iter().all(|v| v.is_finite()));
    }
}
