//! Quantization analysis: weight-exponent histograms and per-layer
//! quantization error reports.
//!
//! The paper's 4-bit encoding rests on an empirical observation — "the
//! magnitudes of the weights is less than 1, so our rounding leads to 8
//! possible exponents" — and its accuracy claims rest on the quantization
//! error being small relative to activations. This module measures both
//! for any network, so the claims can be checked rather than assumed.

use serde::{Deserialize, Serialize};

use mfdfp_dfp::{Pow2Weight, EXP_MAX, EXP_MIN};
use mfdfp_nn::{Layer, Network};

/// Histogram of quantized weight exponents across a network.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExponentHistogram {
    /// `counts[i]` = number of weights with exponent `−i` (0 ⇒ e = 0, …,
    /// 7 ⇒ e = −7).
    pub counts: Vec<u64>,
    /// Weights whose float magnitude exceeded 1 (clamped to `e = 0`).
    pub clamped_high: u64,
    /// Weights whose float magnitude fell below `2^(−7.5)` (clamped to
    /// `e = −7`, including exact zeros).
    pub clamped_low: u64,
}

impl ExponentHistogram {
    /// Total weights counted.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Fraction of weights whose exponent was *not* clamped — the paper's
    /// "magnitudes below 1" observation quantified.
    pub fn in_range_fraction(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 1.0;
        }
        1.0 - (self.clamped_high + self.clamped_low) as f64 / total as f64
    }
}

/// Computes the exponent histogram of every conv/FC weight in `net`.
pub fn exponent_histogram(net: &Network) -> ExponentHistogram {
    let span = (EXP_MAX - EXP_MIN) as usize + 1;
    let mut hist = ExponentHistogram { counts: vec![0; span], clamped_high: 0, clamped_low: 0 };
    for layer in net.layers() {
        let weights = match layer {
            Layer::Conv(c) => c.weights(),
            Layer::Linear(l) => l.weights(),
            _ => continue,
        };
        for &w in weights.as_slice() {
            let q = Pow2Weight::from_f32(w);
            hist.counts[(-q.exp()) as usize] += 1;
            let mag = w.abs();
            if mag > 1.0 + 1e-9 {
                hist.clamped_high += 1;
            } else if mag < 2.0f32.powf(EXP_MIN as f32 - 0.5) {
                hist.clamped_low += 1;
            }
        }
    }
    hist
}

/// Per-layer weight quantization error statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerQuantError {
    /// Layer description.
    pub layer: String,
    /// Number of weights.
    pub weights: usize,
    /// Root-mean-square absolute quantization error.
    pub rms_error: f64,
    /// Mean relative (log-domain-bounded) error `|w − ŵ| / max(|w|, ε)`.
    pub mean_rel_error: f64,
    /// Largest absolute error.
    pub max_abs_error: f64,
}

/// Measures power-of-two quantization error per weighted layer.
pub fn quantization_errors(net: &Network) -> Vec<LayerQuantError> {
    let mut out = Vec::new();
    for layer in net.layers() {
        let weights = match layer {
            Layer::Conv(c) => c.weights(),
            Layer::Linear(l) => l.weights(),
            _ => continue,
        };
        let mut sq = 0.0f64;
        let mut rel = 0.0f64;
        let mut max_abs = 0.0f64;
        for &w in weights.as_slice() {
            let q = Pow2Weight::from_f32(w).to_f32();
            let err = (w - q).abs() as f64;
            sq += err * err;
            rel += err / (w.abs() as f64).max(1e-12);
            max_abs = max_abs.max(err);
        }
        let n = weights.len();
        out.push(LayerQuantError {
            layer: layer.describe(),
            weights: n,
            rms_error: (sq / n.max(1) as f64).sqrt(),
            mean_rel_error: rel / n.max(1) as f64,
            max_abs_error: max_abs,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfdfp_nn::layers::Linear;
    use mfdfp_tensor::{Shape, Tensor, TensorRng};

    fn net_with_weights(ws: &[f32]) -> Network {
        let mut rng = TensorRng::seed_from(0);
        let mut l = Linear::new("fc", ws.len(), 1, &mut rng);
        *l.weights_mut() = Tensor::from_vec(ws.to_vec(), Shape::d2(1, ws.len())).unwrap();
        let mut net = Network::new("probe");
        net.push(Layer::Linear(l));
        net
    }

    #[test]
    fn histogram_buckets_exponents() {
        let net = net_with_weights(&[1.0, 0.5, 0.5, 0.25, -0.25, 1.0 / 128.0]);
        let h = exponent_histogram(&net);
        assert_eq!(h.counts[0], 1); // e = 0
        assert_eq!(h.counts[1], 2); // e = −1
        assert_eq!(h.counts[2], 2); // e = −2
        assert_eq!(h.counts[7], 1); // e = −7
        assert_eq!(h.total(), 6);
        assert_eq!(h.clamped_high, 0);
        assert_eq!(h.clamped_low, 0);
        assert_eq!(h.in_range_fraction(), 1.0);
    }

    #[test]
    fn clamps_are_counted() {
        let net = net_with_weights(&[2.0, 0.0, 1e-9, 0.5]);
        let h = exponent_histogram(&net);
        assert_eq!(h.clamped_high, 1);
        assert_eq!(h.clamped_low, 2);
        assert!((h.in_range_fraction() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn trained_like_weights_are_mostly_in_range() {
        let mut rng = TensorRng::seed_from(9);
        let mut net = Network::new("g");
        let mut l = Linear::new("fc", 64, 64, &mut rng);
        *l.weights_mut() = rng.gaussian([64, 64], 0.0, 0.1);
        net.push(Layer::Linear(l));
        let h = exponent_histogram(&net);
        assert!(h.in_range_fraction() > 0.8, "{}", h.in_range_fraction());
    }

    #[test]
    fn quantization_error_zero_for_exact_powers() {
        let net = net_with_weights(&[0.5, -0.25, 1.0, 0.0078125]);
        let errs = quantization_errors(&net);
        assert_eq!(errs.len(), 1);
        assert_eq!(errs[0].rms_error, 0.0);
        assert_eq!(errs[0].max_abs_error, 0.0);
    }

    #[test]
    fn quantization_error_bounded_by_half_octave() {
        let ws: Vec<f32> = (1..100).map(|i| i as f32 / 100.0).collect();
        let net = net_with_weights(&ws);
        let errs = quantization_errors(&net);
        // Log-domain rounding keeps relative error below 2^0.5 − 1 ≈ 0.414.
        assert!(errs[0].mean_rel_error < 0.42, "{}", errs[0].mean_rel_error);
        assert!(errs[0].rms_error > 0.0);
    }
}
