//! Deployment image serialization: the byte format a host would DMA into
//! the accelerator's weight buffer.
//!
//! A [`QuantizedNet`] serialises to a compact, self-describing binary
//! image: a magic/version header, the per-layer topology, 4-bit
//! nibble-packed power-of-two weight codes, and accumulator-format biases.
//! Round-tripping is exact — the deserialised network produces identical
//! activation codes — which is the property the deployment flow needs.
//!
//! This is the **v1** stream format, kept for migration: reading decodes
//! into owned buffers. The **v2** flat format in [`crate::image`] is the
//! zero-copy successor (aligned sections, `QuantizedNet::from_image`
//! borrows weights and biases straight out of the buffer).

use mfdfp_accel::qlayers::{ShiftConv, ShiftLinear};
use mfdfp_dfp::{pack_nibbles, unpack_nibbles, DfpFormat, PackedPow2Matrix};
use mfdfp_tensor::{ConvGeometry, PoolKind};

use crate::error::{CoreError, Result};
use crate::qnet::{QLayer, QuantizedNet};

/// Magic bytes identifying a deployment image ("MFDF").
pub const MAGIC: [u8; 4] = *b"MFDF";
/// Current image format version.
pub const VERSION: u8 = 1;

/// Serialises a quantized network to its deployment image.
pub fn to_bytes(net: &QuantizedNet) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    write_str(&mut out, net.name());
    write_format(&mut out, net.input_format());
    write_format(&mut out, net.output_format());
    write_u32(&mut out, net.classes() as u32);
    write_u32(&mut out, net.layers().len() as u32);
    for layer in net.layers() {
        match layer {
            QLayer::Conv(c) => {
                out.push(0);
                write_conv_geometry(&mut out, &c.geom);
                out.push(c.in_frac as u8);
                out.push(c.out_frac as u8);
                write_packed_weights(&mut out, &c.weights);
                write_u32(&mut out, c.bias.len() as u32);
                for &b in c.bias.iter() {
                    out.extend_from_slice(&b.to_le_bytes());
                }
            }
            QLayer::Linear(l) => {
                out.push(1);
                write_u32(&mut out, l.in_features as u32);
                write_u32(&mut out, l.out_features as u32);
                out.push(l.in_frac as u8);
                out.push(l.out_frac as u8);
                write_packed_weights(&mut out, &l.weights);
                write_u32(&mut out, l.bias.len() as u32);
                for &b in l.bias.iter() {
                    out.extend_from_slice(&b.to_le_bytes());
                }
            }
            QLayer::Pool { kind, channels, in_h, in_w, window, stride } => {
                out.push(2);
                out.push(match kind {
                    PoolKind::Max => 0,
                    PoolKind::Avg => 1,
                });
                for v in [*channels, *in_h, *in_w, *window, *stride] {
                    write_u32(&mut out, v as u32);
                }
            }
            QLayer::Relu => out.push(3),
        }
    }
    out
}

/// Deserialises a deployment image.
///
/// # Errors
///
/// Returns [`CoreError::BadConfig`] for malformed images (bad magic,
/// truncation, unknown layer tags, invalid weight codes).
pub fn from_bytes(bytes: &[u8]) -> Result<QuantizedNet> {
    let mut r = Reader { bytes, pos: 0 };
    let magic = r.take(4)?;
    if magic != MAGIC {
        return Err(CoreError::BadConfig("bad magic; not an MF-DFP deployment image".into()));
    }
    let version = r.u8()?;
    if version != VERSION {
        return Err(CoreError::BadConfig(format!("unsupported image version {version}")));
    }
    let name = r.string()?;
    let input_format = r.format()?;
    let output_format = r.format()?;
    let classes = r.u32()? as usize;
    let n_layers = r.u32()? as usize;
    let mut layers = Vec::with_capacity(n_layers);
    for _ in 0..n_layers {
        let tag = r.u8()?;
        let layer = match tag {
            0 => {
                let geom = r.conv_geometry()?;
                let in_frac = r.u8()? as i8;
                let out_frac = r.u8()? as i8;
                let wcount = r.u32()? as usize;
                let packed = r.take(wcount.div_ceil(2))?.to_vec();
                let flat = unpack_nibbles(&packed, wcount).map_err(CoreError::Dfp)?;
                let weights = PackedPow2Matrix::from_weights(geom.out_c, geom.col_height(), &flat)
                    .map_err(CoreError::Dfp)?;
                let bcount = r.u32()? as usize;
                let mut bias = Vec::with_capacity(bcount);
                for _ in 0..bcount {
                    bias.push(r.i64()?);
                }
                QLayer::Conv(ShiftConv { geom, weights, bias: bias.into(), in_frac, out_frac })
            }
            1 => {
                let in_features = r.u32()? as usize;
                let out_features = r.u32()? as usize;
                let in_frac = r.u8()? as i8;
                let out_frac = r.u8()? as i8;
                let wcount = r.u32()? as usize;
                let packed = r.take(wcount.div_ceil(2))?.to_vec();
                let flat = unpack_nibbles(&packed, wcount).map_err(CoreError::Dfp)?;
                let weights = PackedPow2Matrix::from_weights(out_features, in_features, &flat)
                    .map_err(CoreError::Dfp)?;
                let bcount = r.u32()? as usize;
                let mut bias = Vec::with_capacity(bcount);
                for _ in 0..bcount {
                    bias.push(r.i64()?);
                }
                QLayer::Linear(ShiftLinear {
                    in_features,
                    out_features,
                    weights,
                    bias: bias.into(),
                    in_frac,
                    out_frac,
                })
            }
            2 => {
                let kind = match r.u8()? {
                    0 => PoolKind::Max,
                    1 => PoolKind::Avg,
                    k => return Err(CoreError::BadConfig(format!("unknown pool kind {k}"))),
                };
                let channels = r.u32()? as usize;
                let in_h = r.u32()? as usize;
                let in_w = r.u32()? as usize;
                let window = r.u32()? as usize;
                let stride = r.u32()? as usize;
                QLayer::Pool { kind, channels, in_h, in_w, window, stride }
            }
            3 => QLayer::Relu,
            t => return Err(CoreError::BadConfig(format!("unknown layer tag {t}"))),
        };
        layers.push(layer);
    }
    QuantizedNet::from_parts(name, input_format, output_format, classes, layers)
}

/// Writes a matrix as `count` followed by the v1 flat nibble stream (no
/// per-row padding).
///
/// Fast path: with an even column count (or at most one row) the matrix's
/// own row-aligned buffer *is* the flat stream, so the packed rows are
/// copied straight from [`PackedPow2Matrix::as_bytes`] /
/// [`PackedPow2Matrix::row_bytes`] — no `to_weights()` decode, no
/// `pack_nibbles()` re-encode. Only a multi-row matrix with odd columns
/// (whose pad nibbles v1 cannot represent) takes the decode path.
fn write_packed_weights(out: &mut Vec<u8>, m: &PackedPow2Matrix) {
    write_u32(out, m.count() as u32);
    if m.cols().is_multiple_of(2) || m.rows() <= 1 {
        if m.row_stride() == m.row_payload_bytes() {
            out.extend_from_slice(m.as_bytes());
        } else {
            // Aligned (padded) stride: concatenate the row payloads.
            for r in 0..m.rows() {
                out.extend_from_slice(m.row_bytes(r));
            }
        }
        return;
    }
    out.extend_from_slice(&pack_nibbles(&m.to_weights()));
}

fn write_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn write_str(out: &mut Vec<u8>, s: &str) {
    write_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn write_format(out: &mut Vec<u8>, f: DfpFormat) {
    out.push(f.bits());
    out.push(f.frac() as u8);
}

fn write_conv_geometry(out: &mut Vec<u8>, g: &ConvGeometry) {
    for v in [g.in_c, g.in_h, g.in_w, g.out_c, g.kernel, g.stride, g.pad, g.groups] {
        write_u32(out, v as u32);
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.pos + n > self.bytes.len() {
            return Err(CoreError::BadConfig("truncated deployment image".into()));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn i64(&mut self) -> Result<i64> {
        let b = self.take(8)?;
        Ok(i64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    fn string(&mut self) -> Result<String> {
        let len = self.u32()? as usize;
        let b = self.take(len)?;
        String::from_utf8(b.to_vec())
            .map_err(|_| CoreError::BadConfig("invalid UTF-8 in image".into()))
    }

    fn format(&mut self) -> Result<DfpFormat> {
        let bits = self.u8()?;
        let frac = self.u8()? as i8;
        DfpFormat::new(bits, frac).map_err(CoreError::Dfp)
    }

    fn conv_geometry(&mut self) -> Result<ConvGeometry> {
        let vals: Vec<usize> =
            (0..8).map(|_| self.u32().map(|v| v as usize)).collect::<Result<_>>()?;
        let g = ConvGeometry::new(vals[0], vals[1], vals[2], vals[3], vals[4], vals[5], vals[6])
            .map_err(CoreError::Tensor)?;
        g.with_groups(vals[7]).map_err(CoreError::Tensor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quantize::calibrate;
    use mfdfp_nn::zoo;
    use mfdfp_tensor::TensorRng;

    fn qnet() -> (QuantizedNet, mfdfp_tensor::Tensor) {
        let mut rng = TensorRng::seed_from(8);
        let mut net = zoo::quick_custom(3, 16, [4, 4, 8], 16, 10, &mut rng).unwrap();
        let x = rng.gaussian([4, 3, 16, 16], 0.0, 0.7);
        let plan = calibrate(&mut net, &[(x.clone(), vec![0, 1, 2, 3])], 8).unwrap();
        (QuantizedNet::from_network(&net, &plan).unwrap(), x)
    }

    #[test]
    fn round_trip_is_bit_exact() {
        let (net, x) = qnet();
        let bytes = to_bytes(&net);
        let back = from_bytes(&bytes).unwrap();
        assert_eq!(back.name(), net.name());
        assert_eq!(back.classes(), net.classes());
        assert_eq!(back.input_format(), net.input_format());
        for s in 0..x.shape().dim(0) {
            let img = x.index_axis0(s);
            assert_eq!(
                net.forward_codes(&img).unwrap(),
                back.forward_codes(&img).unwrap(),
                "deserialised network diverged on sample {s}"
            );
        }
    }

    #[test]
    fn image_is_compact() {
        let (net, _) = qnet();
        let bytes = to_bytes(&net);
        // Weights dominate and are nibble-packed: the image must be well
        // under the float parameter size.
        let float_bytes = net
            .layers()
            .iter()
            .map(|l| match l {
                QLayer::Conv(c) => c.weights.count() * 4,
                QLayer::Linear(l) => l.weights.count() * 4,
                _ => 0,
            })
            .sum::<usize>();
        assert!(bytes.len() < float_bytes / 2, "{} vs {float_bytes}", bytes.len());
    }

    #[test]
    fn rejects_malformed_images() {
        let (net, _) = qnet();
        let mut bytes = to_bytes(&net);
        assert!(from_bytes(&bytes[..10]).is_err(), "truncation must fail");
        bytes[0] = b'X';
        assert!(from_bytes(&bytes).is_err(), "bad magic must fail");
        let mut bytes = to_bytes(&net);
        bytes[4] = 99;
        assert!(from_bytes(&bytes).is_err(), "bad version must fail");
        assert!(from_bytes(&[]).is_err());
    }
}
