//! Parameter-memory accounting (Table 3).
//!
//! Float models store every parameter in 32 bits. MF-DFP models store
//! weights in 4 bits (sign + 3-bit exponent) and biases in 8 bits (one
//! dynamic fixed-point code) — which reproduces the paper's numbers
//! exactly: cifar10-full 0.3417 → 0.0428 MiB, AlexNet 237.95 → 29.75 MiB.

use serde::{Deserialize, Serialize};

use mfdfp_nn::{Layer, Network};

/// Bytes in one MiB (the paper's "MB" column is mebibytes).
pub const MIB: f64 = 1024.0 * 1024.0;

/// Parameter-memory report for one network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryReport {
    /// Weight parameters (conv kernels + FC matrices).
    pub weights: u64,
    /// Bias parameters.
    pub biases: u64,
    /// Bytes at 32-bit floating point.
    pub fp32_bytes: u64,
    /// Bytes as deployed MF-DFP (4-bit packed weights + 8-bit biases).
    pub mfdfp_bytes: u64,
}

impl MemoryReport {
    /// Total parameter count.
    pub fn params(&self) -> u64 {
        self.weights + self.biases
    }

    /// Float size in MiB (Table 3, "Floating-Point" row).
    pub fn fp32_mib(&self) -> f64 {
        self.fp32_bytes as f64 / MIB
    }

    /// MF-DFP size in MiB (Table 3, "MF-DFP" row).
    pub fn mfdfp_mib(&self) -> f64 {
        self.mfdfp_bytes as f64 / MIB
    }

    /// Ensemble-of-`m` MF-DFP size in MiB (Table 3, "Ensemble" row).
    pub fn ensemble_mib(&self, m: usize) -> f64 {
        self.mfdfp_mib() * m as f64
    }

    /// Compression ratio float → MF-DFP (the paper's "8× less memory").
    pub fn compression(&self) -> f64 {
        self.fp32_bytes as f64 / self.mfdfp_bytes as f64
    }
}

/// Computes the memory report of a float network's parameters.
pub fn memory_report(net: &Network) -> MemoryReport {
    let mut weights = 0u64;
    let mut biases = 0u64;
    for layer in net.layers() {
        match layer {
            Layer::Conv(c) => {
                weights += c.weights().len() as u64;
                biases += c.bias().len() as u64;
            }
            Layer::Linear(l) => {
                weights += l.weights().len() as u64;
                biases += l.bias().len() as u64;
            }
            _ => {}
        }
    }
    MemoryReport {
        weights,
        biases,
        fp32_bytes: (weights + biases) * 4,
        mfdfp_bytes: weights.div_ceil(2) + biases,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfdfp_nn::zoo;
    use mfdfp_tensor::TensorRng;

    #[test]
    fn cifar10_full_matches_paper_table3() {
        let mut rng = TensorRng::seed_from(0);
        let net = zoo::cifar10_full(10, &mut rng).unwrap();
        let r = memory_report(&net);
        assert_eq!(r.params(), 89_578);
        assert!((r.fp32_mib() - 0.3417).abs() < 0.0005, "fp32 {}", r.fp32_mib());
        assert!((r.mfdfp_mib() - 0.0428).abs() < 0.0005, "mfdfp {}", r.mfdfp_mib());
        assert!((r.ensemble_mib(2) - 0.0855).abs() < 0.001, "ens {}", r.ensemble_mib(2));
    }

    #[test]
    fn alexnet_matches_paper_table3() {
        let mut rng = TensorRng::seed_from(0);
        let net = zoo::alexnet(1000, false, &mut rng).unwrap();
        let r = memory_report(&net);
        assert!((r.fp32_mib() - 237.95).abs() < 0.1, "fp32 {}", r.fp32_mib());
        assert!((r.mfdfp_mib() - 29.75).abs() < 0.05, "mfdfp {}", r.mfdfp_mib());
        assert!((r.ensemble_mib(2) - 59.50).abs() < 0.1, "ens {}", r.ensemble_mib(2));
    }

    #[test]
    fn compression_is_roughly_eightfold() {
        let mut rng = TensorRng::seed_from(0);
        let net = zoo::cifar10_full(10, &mut rng).unwrap();
        let r = memory_report(&net);
        assert!((7.9..=8.0).contains(&r.compression()), "compression {}", r.compression());
    }
}
