//! Algorithm 1 end-to-end: float network → calibrate → Phase-1 hard-label
//! fine-tuning → Phase-2 student–teacher fine-tuning → deployed
//! [`QuantizedNet`].

use serde::{Deserialize, Serialize};

use mfdfp_data::{Batcher, SyntheticDataset};
use mfdfp_nn::{DistillConfig, Network, PlateauSchedule, SgdConfig};

use crate::error::{CoreError, Result};
use crate::qnet::QuantizedNet;
use crate::quantize::calibrate;
use crate::shadow::ShadowTrainer;

/// Which phase an epoch belongs to (Figure 3's x-axis annotation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PhaseTag {
    /// Hard-label fine-tuning.
    Phase1,
    /// Student–teacher fine-tuning.
    Phase2,
}

/// One point of the fine-tuning trajectory.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpochPoint {
    /// Phase of this epoch.
    pub phase: PhaseTag,
    /// Epoch index (global, continuing across the phase switch).
    pub epoch: usize,
    /// Mean training loss of the epoch.
    pub train_loss: f32,
    /// Quantized top-1 error on the held-out set (Figure 3's y-axis).
    pub test_error: f32,
    /// Learning rate in force during the epoch.
    pub learning_rate: f32,
}

/// Pipeline configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// Activation bit-width (the paper: 8).
    pub activation_bits: u8,
    /// Maximum Phase-1 epochs (plateau schedule may stop earlier).
    pub phase1_epochs: usize,
    /// Maximum Phase-2 epochs (0 disables Phase 2).
    pub phase2_epochs: usize,
    /// Initial learning rate (the paper: 1e-3).
    pub learning_rate: f32,
    /// SGD momentum.
    pub momentum: f32,
    /// L2 weight decay.
    pub weight_decay: f32,
    /// Distillation temperature τ (the paper: 20).
    pub temperature: f32,
    /// Distillation weight β (the paper: 0.2).
    pub beta: f32,
    /// Batch size.
    pub batch_size: usize,
    /// Top-k tracked in evaluations (5 for ImageNet-style runs).
    pub eval_k: usize,
    /// Seed for epoch shuffles.
    pub seed: u64,
}

impl PipelineConfig {
    /// The paper's hyper-parameters, scaled to small-epoch CPU budgets.
    pub fn paper_defaults() -> Self {
        PipelineConfig {
            activation_bits: 8,
            phase1_epochs: 10,
            phase2_epochs: 6,
            learning_rate: 1e-3,
            momentum: 0.9,
            weight_decay: 1e-4,
            temperature: 20.0,
            beta: 0.2,
            batch_size: 32,
            eval_k: 5,
            seed: 0x1DAC,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BadConfig`] on inconsistent values.
    pub fn validate(&self) -> Result<()> {
        if self.batch_size == 0 {
            return Err(CoreError::BadConfig("batch size must be positive".into()));
        }
        if self.phase1_epochs == 0 {
            return Err(CoreError::BadConfig("phase 1 needs at least one epoch".into()));
        }
        if self.learning_rate <= 0.0 || self.learning_rate.is_nan() {
            return Err(CoreError::BadConfig("learning rate must be positive".into()));
        }
        Ok(())
    }
}

/// The result of running Algorithm 1.
#[derive(Debug)]
pub struct PipelineOutcome {
    /// The deployed quantized network (integer engine).
    pub qnet: QuantizedNet,
    /// The fine-tuned float master (shadow weights) that produced it.
    pub master: Network,
    /// Per-epoch trajectory (regenerates Figure 3).
    pub history: Vec<EpochPoint>,
    /// Final quantized top-1 accuracy on the held-out set.
    pub final_top1: f32,
    /// Final quantized top-k accuracy on the held-out set.
    pub final_topk: f32,
}

/// Runs Algorithm 1 on a trained float network.
///
/// * Calibrates per-layer dynamic fixed-point formats on the first
///   training batches.
/// * **Phase 1** — shadow-weight fine-tuning with hard labels, learning
///   rate ÷10 on plateau.
/// * **Phase 2** — switches to the student–teacher loss *at the first
///   plateau decay* (the paper: "the value of i … should be close to
///   convergence but not the global optimal point"), with the original
///   float network as the frozen teacher.
/// * Emits the deployed [`QuantizedNet`] built from the fine-tuned master.
///
/// # Errors
///
/// Propagates configuration, calibration and training errors.
///
/// # Examples
///
/// End to end on a tiny synthetic problem: the paper's hyper-parameters
/// ([`PipelineConfig::paper_defaults`]) with the epoch budget cut down to
/// doc-test scale. The outcome carries the deployed integer network, the
/// fine-tuned float master and the Figure-3-style per-epoch trajectory.
///
/// ```
/// use mfdfp_core::{run_pipeline, PhaseTag, PipelineConfig};
/// use mfdfp_data::{Split, SynthSpec};
/// use mfdfp_tensor::TensorRng;
///
/// // 2-class, 1×16×16 synthetic data and a matching tiny topology.
/// let spec = SynthSpec {
///     classes: 2, channels: 1, size: 16, per_class: 6,
///     noise: 0.2, max_shift: 1, seed: 7,
/// };
/// let split = Split::generate(&spec, 4);
/// let mut rng = TensorRng::seed_from(3);
/// let float_net = mfdfp_nn::zoo::quick_custom(1, 16, [2, 2, 2], 4, 2, &mut rng)?;
///
/// let cfg = PipelineConfig {
///     phase1_epochs: 2,   // paper defaults, doc-test epoch budget
///     phase2_epochs: 1,
///     batch_size: 4,
///     eval_k: 1,
///     ..PipelineConfig::paper_defaults()
/// };
/// let outcome = run_pipeline(float_net, &split.train, &split.test, &cfg)?;
///
/// // Phase 1 ran; the trajectory records loss/error/learning-rate.
/// assert!(outcome.history.iter().any(|p| p.phase == PhaseTag::Phase1));
/// // The deployed artifact answers integer-only inference end to end.
/// let (image, _label) = split.test.sample(0);
/// let logits = outcome.qnet.logits(image)?;
/// assert_eq!(logits.len(), 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn run_pipeline(
    float_net: Network,
    train: &SyntheticDataset,
    test: &SyntheticDataset,
    cfg: &PipelineConfig,
) -> Result<PipelineOutcome> {
    cfg.validate()?;
    let teacher = float_net.clone();
    let mut master = float_net;

    let calib: Vec<_> = Batcher::new(train, cfg.batch_size).iter().take(4).collect();
    let plan = calibrate(&mut master, &calib, cfg.activation_bits)?;

    let sgd = SgdConfig {
        learning_rate: cfg.learning_rate,
        momentum: cfg.momentum,
        weight_decay: cfg.weight_decay,
    };
    let mut trainer = ShadowTrainer::new(master, plan.clone(), sgd)?;
    let mut schedule = PlateauSchedule::paper(cfg.learning_rate);
    let mut history = Vec::new();
    let mut epoch = 0usize;

    // Phase 1: hard labels until the schedule first decays (near-converged,
    // non-optimal switch point) or the epoch budget runs out.
    for _ in 0..cfg.phase1_epochs {
        let batches: Vec<_> =
            Batcher::new(train, cfg.batch_size).shuffled(cfg.seed ^ epoch as u64).collect();
        let stats = trainer.train_epoch(batches)?;
        let eval: Vec<_> = Batcher::new(test, cfg.batch_size).iter().collect();
        let acc = trainer.evaluate_quantized(eval, cfg.eval_k)?;
        history.push(EpochPoint {
            phase: PhaseTag::Phase1,
            epoch,
            train_loss: stats.mean_loss,
            test_error: acc.top1_error(),
            learning_rate: trainer.learning_rate(),
        });
        epoch += 1;
        let before = schedule.learning_rate();
        let lr = schedule.observe(stats.mean_loss);
        trainer.set_learning_rate(lr);
        if cfg.phase2_epochs > 0 && lr < before {
            break; // first decay ⇒ switch to Phase 2
        }
        if schedule.finished() {
            break;
        }
    }

    // Phase 2: student–teacher fine-tuning from the Phase-1 checkpoint.
    if cfg.phase2_epochs > 0 {
        let distill = DistillConfig {
            temperature: cfg.temperature,
            beta: cfg.beta,
            mode: mfdfp_nn::DistillMode::Exact,
        };
        trainer.enable_distillation(teacher, distill)?;
        for _ in 0..cfg.phase2_epochs {
            let batches: Vec<_> =
                Batcher::new(train, cfg.batch_size).shuffled(cfg.seed ^ epoch as u64).collect();
            let stats = trainer.train_epoch(batches)?;
            let eval: Vec<_> = Batcher::new(test, cfg.batch_size).iter().collect();
            let acc = trainer.evaluate_quantized(eval, cfg.eval_k)?;
            history.push(EpochPoint {
                phase: PhaseTag::Phase2,
                epoch,
                train_loss: stats.mean_loss,
                test_error: acc.top1_error(),
                learning_rate: trainer.learning_rate(),
            });
            epoch += 1;
            let lr = schedule.observe(stats.mean_loss);
            trainer.set_learning_rate(lr);
            if schedule.finished() {
                break;
            }
        }
    }

    // Final evaluation and deployment artifact.
    let eval: Vec<_> = Batcher::new(test, cfg.batch_size).iter().collect();
    let acc = trainer.evaluate_quantized(eval, cfg.eval_k)?;
    let master = trainer.into_master();
    let qnet = QuantizedNet::from_network(&master, &plan)?;
    Ok(PipelineOutcome { qnet, master, history, final_top1: acc.top1(), final_topk: acc.topk() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfdfp_data::{Split, SynthSpec};
    use mfdfp_nn::{evaluate, zoo, Sgd};
    use mfdfp_tensor::TensorRng;

    fn pretrained_float(split: &Split) -> Network {
        let mut rng = TensorRng::seed_from(31);
        let mut net = zoo::quick_custom(2, 16, [4, 4, 8], 16, 4, &mut rng).unwrap();
        let sgd_cfg = SgdConfig { learning_rate: 0.02, momentum: 0.9, weight_decay: 1e-4 };
        let mut sgd = Sgd::new(sgd_cfg).unwrap();
        for epoch in 0..6 {
            let batches: Vec<_> = Batcher::new(&split.train, 16).shuffled(epoch).collect();
            mfdfp_nn::train_epoch(&mut net, &mut sgd, batches).unwrap();
        }
        net
    }

    #[test]
    fn full_pipeline_runs_and_stays_close_to_float() {
        let spec = SynthSpec {
            classes: 4,
            channels: 2,
            size: 16,
            per_class: 24,
            noise: 0.3,
            max_shift: 1,
            seed: 9,
        };
        let split = Split::generate(&spec, 10);
        let mut float_net = pretrained_float(&split);
        let float_acc = {
            let batches: Vec<_> = Batcher::new(&split.test, 16).iter().collect();
            evaluate(&mut float_net, batches, 1).unwrap().top1()
        };
        let cfg = PipelineConfig {
            phase1_epochs: 4,
            phase2_epochs: 2,
            learning_rate: 5e-3,
            batch_size: 16,
            eval_k: 2,
            ..PipelineConfig::paper_defaults()
        };
        let outcome = run_pipeline(float_net, &split.train, &split.test, &cfg).unwrap();
        assert!(!outcome.history.is_empty());
        // Both phases appear.
        assert!(outcome.history.iter().any(|p| p.phase == PhaseTag::Phase1));
        assert!(outcome.history.iter().any(|p| p.phase == PhaseTag::Phase2));
        // The deployed quantized net evaluates end-to-end.
        let (x, labels) = Batcher::new(&split.test, 16).iter().next().unwrap();
        let logits = outcome.qnet.logits_batch(&x).unwrap();
        assert_eq!(logits.shape().dims(), &[16, 4]);
        let _ = labels;
        // Accuracy within a sane band of float (paper: within ~1%; the
        // tiny CPU budget here warrants a looser envelope).
        assert!(
            outcome.final_top1 >= float_acc - 0.25,
            "quantized {} vs float {float_acc}",
            outcome.final_top1
        );
    }

    #[test]
    fn config_validation() {
        let mut cfg = PipelineConfig::paper_defaults();
        cfg.batch_size = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = PipelineConfig::paper_defaults();
        cfg.phase1_epochs = 0;
        assert!(cfg.validate().is_err());
        assert!(PipelineConfig::paper_defaults().validate().is_ok());
    }
}
