//! Deployment image **v2**: a flat, versioned, alignment-guaranteed model
//! format that is read without unpacking — the software rendition of the
//! paper's Figure 2 deployment story, where a host DMAs a packed weight
//! image into the accelerator's buffer and the datapath consumes it *in
//! place*.
//!
//! # Layout
//!
//! All integers are little-endian; every section offset is a multiple of
//! 64 bytes, measured from the start of the model image. Because images
//! live in (or are copied once into) a 64-byte-[`AlignedBytes`] buffer,
//! an aligned offset is genuinely aligned in memory, so the reader can
//! hand out `&[u8]` weight rows and `&[i64]` bias slices with **zero
//! copies and zero decoding**.
//!
//! ```text
//! model image                          zoo image
//! ┌──────────────────────┐ 0          ┌──────────────────────┐ 0
//! │ header (64 B)        │            │ zoo header (64 B)    │
//! │  magic "MFDFPIMG"    │            │  magic "MFDFPZOO"    │
//! │  version=2, n_layers │            │  version=2, n_models │
//! │  classes, formats    │            │  crc32 + "CRC1"      │
//! │  name_off/len        │            ├──────────────────────┤ 64
//! │  ltab_off, image_len │            │ directory            │
//! │  crc32 + "CRC1"      │            │  n × 32 B entries    │
//! ├──────────────────────┤            │  name_off/len        │
//! │ model name (UTF-8)   │            │  model_off/len       │
//! ├──────────────────────┤ ltab_off   ├──────────────────────┤
//! │ layer table          │            │ name blob (UTF-8)    │
//! │  n × 96 B entries    │            ├──────────────────────┤ 64-aligned
//! │  kind, fracs, geom   │            │ model image 0        │
//! │  rows/cols/stride    │            ├──────────────────────┤ 64-aligned
//! │  w_off/len b_off/cnt │            │ model image 1        │
//! ├──────────────────────┤ 64-aligned │          …           │
//! │ layer 0 weights      │            └──────────────────────┘
//! │  rows × stride bytes │
//! │  (verbatim nibbles)  │
//! ├──────────────────────┤ 64-aligned
//! │ layer 0 bias (i64[]) │
//! │          …           │
//! └──────────────────────┘
//! ```
//!
//! Weight payloads are stored **verbatim** in the row-aligned kernel
//! layout of [`PackedPow2Matrix`] — `rows × row_stride` bytes with the
//! stride recorded in the layer entry — so serialisation is a `memcpy`
//! and deserialisation is a bounds check. No nibble is unpacked or
//! re-packed on either side (the v1 stream format behind [`crate::from_bytes`]
//! is kept for migration).
//!
//! # Integrity
//!
//! Every model and zoo header carries a whole-section CRC-32
//! ([`mfdfp_dfp::crc32`]) plus the marker `"CRC1"`, verified by
//! [`ImageView::open`] / [`ZooView::open`] before any byte is trusted:
//! a torn write or a single flipped bit anywhere yields a typed
//! [`CoreError::BadImage`]. Images written before checksums existed
//! (both fields zero) are still accepted; any other marker value is
//! itself corruption. [`write_image_atomic`] completes the story on
//! disk: tmp file + fsync + atomic rename, so readers only ever observe
//! a complete image.
//!
//! # Ownership
//!
//! [`ImageView::open`] validates the whole image once and
//! [`QuantizedNet::from_image`] then builds a network whose weight
//! matrices and bias sections are `Arc`-shared windows into the buffer:
//! O(layers) small allocations, zero weight/bias byte copies (the
//! alloc-counter regression test pins this down). [`ZooBuilder`] /
//! [`ZooView`] extend the same scheme to a multi-model image for fleet
//! serving (`ModelRegistry::load_zoo` in `mfdfp-serve`).

use std::sync::Arc;

use mfdfp_accel::qlayers::{ShiftConv, ShiftLinear};
use mfdfp_dfp::{AlignedBytes, Crc32, DfpFormat, I64Section, PackedPow2Matrix};
use mfdfp_tensor::{AlignedArena, ConvGeometry, PoolKind};

use crate::error::{CoreError, Result};
use crate::qnet::{QLayer, QuantizedNet};

/// Magic bytes opening a v2 model image.
pub const IMAGE_MAGIC: [u8; 8] = *b"MFDFPIMG";
/// Magic bytes opening a v2 zoo image.
pub const ZOO_MAGIC: [u8; 8] = *b"MFDFPZOO";
/// Version of the flat image format.
pub const IMAGE_VERSION: u32 = 2;

/// Section alignment (bytes): every interior offset is a multiple of this.
pub const SECTION_ALIGN: usize = 64;

const HEADER_LEN: usize = 64;
const LAYER_ENTRY_LEN: usize = 96;
const ZOO_DIR_ENTRY_LEN: usize = 32;

/// Marker bytes declaring that the header carries a CRC-32. A v2 image
/// written before checksums leaves this field (and the CRC word) zero
/// and is still accepted; any *other* value is corruption — so flipping
/// a bit of the marker itself cannot silently disable the check.
const CRC_MARKER: [u8; 4] = *b"CRC1";
/// Model header: CRC-32 word at 44..48, [`CRC_MARKER`] at 48..52.
const IMAGE_CRC_OFF: usize = 44;
/// Zoo header: CRC-32 word at 32..36, [`CRC_MARKER`] at 36..40.
const ZOO_CRC_OFF: usize = 32;

/// Layer kind tags in the layer table.
const KIND_CONV: u32 = 0;
const KIND_LINEAR: u32 = 1;
const KIND_POOL: u32 = 2;
const KIND_RELU: u32 = 3;

fn bad(msg: impl Into<String>) -> CoreError {
    CoreError::BadImage(msg.into())
}

/// CRC-32 of `img` with the 4-byte checksum word at `crc_off` treated as
/// zero — the form both the writer (which hashes before stamping) and
/// the verifier (which hashes around the stamped word) agree on.
fn section_crc(img: &[u8], crc_off: usize) -> u32 {
    let mut h = Crc32::new();
    h.update(&img[..crc_off]);
    h.update_zeros(4);
    h.update(&img[crc_off + 4..]);
    h.finish()
}

/// Verifies the whole-section CRC of an image or zoo whose checksum word
/// sits at `crc_off` (marker directly after it). Three-way rule:
/// marker == `CRC1` → verify; marker and word both zero → legacy
/// checksum-absent v2, accepted; anything else → corruption.
fn verify_crc(img: &[u8], crc_off: usize, what: &str) -> Result<()> {
    let marker = &img[crc_off + 4..crc_off + 8];
    if marker == CRC_MARKER {
        let stored = u32_at(img, crc_off);
        let actual = section_crc(img, crc_off);
        if stored != actual {
            return Err(bad(format!(
                "{what} checksum mismatch: header says {stored:#010x}, bytes hash to {actual:#010x}"
            )));
        }
        Ok(())
    } else if marker == [0u8; 4] && u32_at(img, crc_off) == 0 {
        // A v2 image written before checksums existed: both fields zero.
        Ok(())
    } else {
        Err(bad(format!("{what} checksum marker is corrupt")))
    }
}

/// Stamps marker + CRC into a finished section (word at `crc_off` must
/// still be zero, as the writers leave it).
fn stamp_crc(bytes: &mut [u8], crc_off: usize) {
    bytes[crc_off + 4..crc_off + 8].copy_from_slice(&CRC_MARKER);
    let crc = section_crc(bytes, crc_off);
    bytes[crc_off..crc_off + 4].copy_from_slice(&crc.to_le_bytes());
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// Serialises a network to its flat v2 image.
///
/// Weight payloads are copied verbatim from each matrix's packed backing
/// bytes ([`PackedPow2Matrix::as_bytes`]) with the row stride recorded —
/// no decode, no re-pack. The result is 64-byte aligned and ready for
/// [`ImageView::open`] (or to be written to disk and mapped back).
pub fn to_image(net: &QuantizedNet) -> AlignedBytes {
    let mut a = AlignedArena::new();
    a.push_bytes(&[0u8; HEADER_LEN]);
    let name_off = a.push_bytes(net.name().as_bytes());
    let name_len = net.name().len();
    let ltab_off = a.align_to(SECTION_ALIGN);
    let n_layers = net.layers().len();
    for _ in 0..n_layers {
        a.push_bytes(&[0u8; LAYER_ENTRY_LEN]);
    }
    // Payload sections, each 64-aligned; record (w_off, w_len, b_off,
    // b_count) per weighted layer.
    let mut sections: Vec<[u64; 4]> = Vec::with_capacity(n_layers);
    for layer in net.layers() {
        let (weights, bias): (Option<&PackedPow2Matrix>, Option<&I64Section>) = match layer {
            QLayer::Conv(c) => (Some(&c.weights), Some(&c.bias)),
            QLayer::Linear(l) => (Some(&l.weights), Some(&l.bias)),
            _ => (None, None),
        };
        let mut sec = [0u64; 4];
        if let (Some(w), Some(b)) = (weights, bias) {
            a.align_to(SECTION_ALIGN);
            sec[0] = a.push_bytes(w.as_bytes()) as u64;
            sec[1] = w.as_bytes().len() as u64;
            a.align_to(SECTION_ALIGN);
            sec[2] = a.push_i64_le(b) as u64;
            sec[3] = b.len() as u64;
        }
        sections.push(sec);
    }
    let image_len = a.align_to(SECTION_ALIGN);

    // Header back-patch.
    let mut h = [0u8; HEADER_LEN];
    h[0..8].copy_from_slice(&IMAGE_MAGIC);
    h[8..12].copy_from_slice(&IMAGE_VERSION.to_le_bytes());
    h[12..16].copy_from_slice(&(n_layers as u32).to_le_bytes());
    h[16..20].copy_from_slice(&(net.classes() as u32).to_le_bytes());
    h[20] = net.input_format().bits();
    h[21] = net.input_format().frac() as u8;
    h[22] = net.output_format().bits();
    h[23] = net.output_format().frac() as u8;
    h[24..28].copy_from_slice(&(name_off as u32).to_le_bytes());
    h[28..32].copy_from_slice(&(name_len as u32).to_le_bytes());
    h[32..36].copy_from_slice(&(ltab_off as u32).to_le_bytes());
    h[36..44].copy_from_slice(&(image_len as u64).to_le_bytes());
    a.patch(0, &h);

    // Layer-table back-patch.
    for (i, (layer, sec)) in net.layers().iter().zip(&sections).enumerate() {
        let mut e = [0u8; LAYER_ENTRY_LEN];
        let (kind, in_frac, out_frac, geom, rcs): (u32, i8, i8, [u32; 8], [u32; 3]) = match layer {
            QLayer::Conv(c) => {
                let g = &c.geom;
                (
                    KIND_CONV,
                    c.in_frac,
                    c.out_frac,
                    [
                        g.in_c as u32,
                        g.in_h as u32,
                        g.in_w as u32,
                        g.out_c as u32,
                        g.kernel as u32,
                        g.stride as u32,
                        g.pad as u32,
                        g.groups as u32,
                    ],
                    [
                        c.weights.rows() as u32,
                        c.weights.cols() as u32,
                        c.weights.row_stride() as u32,
                    ],
                )
            }
            QLayer::Linear(l) => (
                KIND_LINEAR,
                l.in_frac,
                l.out_frac,
                [l.in_features as u32, l.out_features as u32, 0, 0, 0, 0, 0, 0],
                [l.weights.rows() as u32, l.weights.cols() as u32, l.weights.row_stride() as u32],
            ),
            QLayer::Pool { kind, channels, in_h, in_w, window, stride } => (
                KIND_POOL,
                0,
                0,
                [
                    match kind {
                        PoolKind::Max => 0,
                        PoolKind::Avg => 1,
                    },
                    *channels as u32,
                    *in_h as u32,
                    *in_w as u32,
                    *window as u32,
                    *stride as u32,
                    0,
                    0,
                ],
                [0, 0, 0],
            ),
            QLayer::Relu => (KIND_RELU, 0, 0, [0; 8], [0, 0, 0]),
        };
        e[0..4].copy_from_slice(&kind.to_le_bytes());
        e[4] = in_frac as u8;
        e[5] = out_frac as u8;
        for (j, g) in geom.iter().enumerate() {
            e[8 + 4 * j..12 + 4 * j].copy_from_slice(&g.to_le_bytes());
        }
        e[40..44].copy_from_slice(&rcs[0].to_le_bytes());
        e[44..48].copy_from_slice(&rcs[1].to_le_bytes());
        e[48..52].copy_from_slice(&rcs[2].to_le_bytes());
        e[56..64].copy_from_slice(&sec[0].to_le_bytes());
        e[64..72].copy_from_slice(&sec[1].to_le_bytes());
        e[72..80].copy_from_slice(&sec[2].to_le_bytes());
        e[80..88].copy_from_slice(&sec[3].to_le_bytes());
        a.patch(ltab_off + i * LAYER_ENTRY_LEN, &e);
    }
    let mut image = a.finish();
    stamp_crc(image.as_mut_slice(), IMAGE_CRC_OFF);
    image
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

fn u32_at(img: &[u8], off: usize) -> u32 {
    u32::from_le_bytes(img[off..off + 4].try_into().expect("4 bytes"))
}

fn u64_at(img: &[u8], off: usize) -> u64 {
    u64::from_le_bytes(img[off..off + 8].try_into().expect("8 bytes"))
}

/// Checks that `off..off + len` lies inside an image of `total` bytes,
/// with overflow-safe arithmetic.
fn check_range(total: usize, off: u64, len: u64, what: &str) -> Result<(usize, usize)> {
    let end = off.checked_add(len).ok_or_else(|| bad(format!("{what} range overflows")))?;
    if end > total as u64 {
        return Err(bad(format!("{what} runs past the image ({end} > {total})")));
    }
    Ok((off as usize, len as usize))
}

fn check_aligned(off: u64, what: &str) -> Result<()> {
    if !off.is_multiple_of(SECTION_ALIGN as u64) {
        return Err(bad(format!("{what} offset {off} is not {SECTION_ALIGN}-byte aligned")));
    }
    Ok(())
}

/// Geometry and section info of one validated layer entry.
struct LayerEntry {
    kind: u32,
    in_frac: i8,
    out_frac: i8,
    geom: [u32; 8],
    rows: usize,
    cols: usize,
    row_stride: usize,
    w_off: usize,
    w_len: usize,
    b_off: usize,
    b_count: usize,
}

/// A validated, zero-copy view of one v2 model image inside a shared
/// 64-byte-aligned buffer.
///
/// [`ImageView::open`] performs the *entire* structural validation —
/// magic, version, bounds, alignment, geometry — returning typed
/// [`CoreError::BadImage`] errors on any corruption, truncation or
/// misalignment, never panicking. After `open` succeeds,
/// [`QuantizedNet::from_image`] is pure offset arithmetic.
///
/// # Examples
///
/// ```no_run
/// use std::sync::Arc;
/// use mfdfp_core::{to_image, ImageView, QuantizedNet};
/// # fn get_net() -> QuantizedNet { unimplemented!() }
/// let net = get_net();
/// let image = Arc::new(to_image(&net));
/// let view = ImageView::open(image)?;
/// let served = QuantizedNet::from_image(&view)?; // zero weight copies
/// # Ok::<(), mfdfp_core::CoreError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ImageView {
    buf: Arc<AlignedBytes>,
    /// Offset of the model image inside `buf`; multiple of 64.
    base: usize,
    /// Image length in bytes.
    len: usize,
    name: String,
    classes: usize,
    input_format: DfpFormat,
    output_format: DfpFormat,
    ltab_off: usize,
    n_layers: usize,
}

impl ImageView {
    /// Opens and fully validates a model image occupying `buf` from its
    /// first byte.
    ///
    /// # Errors
    ///
    /// [`CoreError::BadImage`] on any structural defect: wrong magic or
    /// version, truncation, out-of-bounds or misaligned section offsets,
    /// impossible layer geometry.
    pub fn open(buf: Arc<AlignedBytes>) -> Result<ImageView> {
        let len = buf.len();
        Self::open_at(buf, 0, len)
    }

    /// Opens a model image at `base..base + len` inside a larger buffer
    /// (a zoo section). `base` must be 64-byte aligned.
    ///
    /// # Errors
    ///
    /// As [`ImageView::open`].
    pub fn open_at(buf: Arc<AlignedBytes>, base: usize, len: usize) -> Result<ImageView> {
        check_aligned(base as u64, "model image")?;
        let end = base.checked_add(len).ok_or_else(|| bad("image range overflows"))?;
        if end > buf.len() {
            return Err(bad(format!("image {base}..{end} runs past the buffer ({})", buf.len())));
        }
        if len < HEADER_LEN {
            return Err(bad(format!("image of {len} bytes is smaller than the header")));
        }
        let img = &buf.as_slice()[base..base + len];
        if img[0..8] != IMAGE_MAGIC {
            return Err(bad("bad magic; not an MF-DFP v2 model image"));
        }
        let version = u32_at(img, 8);
        if version != IMAGE_VERSION {
            return Err(bad(format!("unsupported image version {version}")));
        }
        // End-to-end integrity first: any single flipped bit anywhere in
        // the section — header, name, layer table, weight nibble, bias —
        // is rejected here, before a single weight byte is trusted.
        verify_crc(img, IMAGE_CRC_OFF, "model image")?;
        let n_layers = u32_at(img, 12) as usize;
        let classes = u32_at(img, 16) as usize;
        if n_layers == 0 || classes == 0 {
            return Err(bad("image declares no layers or no classes"));
        }
        let input_format = DfpFormat::new(img[20], img[21] as i8)
            .map_err(|e| bad(format!("input format: {e}")))?;
        let output_format = DfpFormat::new(img[22], img[23] as i8)
            .map_err(|e| bad(format!("output format: {e}")))?;
        let (name_off, name_len) =
            check_range(len, u32_at(img, 24) as u64, u32_at(img, 28) as u64, "name")?;
        let name = std::str::from_utf8(&img[name_off..name_off + name_len])
            .map_err(|_| bad("model name is not UTF-8"))?
            .to_string();
        let declared = u64_at(img, 36);
        if declared != len as u64 {
            return Err(bad(format!("header declares {declared} bytes, view holds {len}")));
        }
        let ltab_off64 = u32_at(img, 32) as u64;
        check_aligned(ltab_off64, "layer table")?;
        let (ltab_off, _) =
            check_range(len, ltab_off64, (n_layers * LAYER_ENTRY_LEN) as u64, "layer table")?;
        let view = ImageView {
            buf,
            base,
            len,
            name,
            classes,
            input_format,
            output_format,
            ltab_off,
            n_layers,
        };
        // Validate every layer entry up front so `from_image` cannot fail
        // structurally (it still re-checks windows when carving slices).
        for i in 0..n_layers {
            view.layer_entry(i)?;
        }
        Ok(view)
    }

    /// The model's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Image length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the image is empty (never true for a validated view).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The image bytes (e.g. to write to disk).
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf.as_slice()[self.base..self.base + self.len]
    }

    fn img(&self) -> &[u8] {
        self.as_bytes()
    }

    fn layer_entry(&self, i: usize) -> Result<LayerEntry> {
        let img = self.img();
        let e =
            &img[self.ltab_off + i * LAYER_ENTRY_LEN..self.ltab_off + (i + 1) * LAYER_ENTRY_LEN];
        let kind = u32_at(e, 0);
        if kind > KIND_RELU {
            return Err(bad(format!("layer {i}: unknown kind {kind}")));
        }
        let in_frac = e[4] as i8;
        let out_frac = e[5] as i8;
        if !(-32..=32).contains(&in_frac) || !(-32..=32).contains(&out_frac) {
            return Err(bad(format!("layer {i}: fractional length out of range")));
        }
        let mut geom = [0u32; 8];
        for (j, g) in geom.iter_mut().enumerate() {
            *g = u32_at(e, 8 + 4 * j);
        }
        let rows = u32_at(e, 40) as usize;
        let cols = u32_at(e, 44) as usize;
        let row_stride = u32_at(e, 48) as usize;
        let (w_off, w_len, b_off, b_count);
        if kind == KIND_CONV || kind == KIND_LINEAR {
            if row_stride < cols.div_ceil(2) {
                return Err(bad(format!(
                    "layer {i}: row stride {row_stride} below payload {}",
                    cols.div_ceil(2)
                )));
            }
            let expect_w = (rows as u64) * (row_stride as u64);
            if u64_at(e, 64) != expect_w {
                return Err(bad(format!(
                    "layer {i}: weight section is {} bytes, geometry needs {expect_w}",
                    u64_at(e, 64)
                )));
            }
            check_aligned(u64_at(e, 56), "weight section")?;
            (w_off, w_len) = check_range(self.len, u64_at(e, 56), expect_w, "weight section")?;
            check_aligned(u64_at(e, 72), "bias section")?;
            let bc = u64_at(e, 80);
            if bc != rows as u64 {
                return Err(bad(format!("layer {i}: {bc} biases for {rows} output rows")));
            }
            (b_off, b_count) = {
                let (off, bytes) = check_range(self.len, u64_at(e, 72), bc * 8, "bias section")?;
                (off, bytes / 8)
            };
        } else {
            (w_off, w_len, b_off, b_count) = (0, 0, 0, 0);
        }
        // Kind-specific geometry sanity (full semantic checks happen when
        // the layer is constructed).
        match kind {
            KIND_CONV => {
                let g = conv_geometry(&geom).map_err(|e| bad(format!("layer {i}: {e}")))?;
                if rows != g.out_c || cols != g.col_height() {
                    return Err(bad(format!(
                        "layer {i}: weight matrix {rows}×{cols} does not match geometry {}×{}",
                        g.out_c,
                        g.col_height()
                    )));
                }
            }
            KIND_LINEAR if rows != geom[1] as usize || cols != geom[0] as usize => {
                return Err(bad(format!(
                    "layer {i}: weight matrix {rows}×{cols} does not match features {}×{}",
                    geom[1], geom[0]
                )));
            }
            KIND_POOL if geom[0] > 1 => {
                return Err(bad(format!("layer {i}: unknown pool kind {}", geom[0])));
            }
            _ => {}
        }
        Ok(LayerEntry {
            kind,
            in_frac,
            out_frac,
            geom,
            rows,
            cols,
            row_stride,
            w_off,
            w_len,
            b_off,
            b_count,
        })
    }
}

fn conv_geometry(geom: &[u32; 8]) -> Result<ConvGeometry> {
    let g = ConvGeometry::new(
        geom[0] as usize,
        geom[1] as usize,
        geom[2] as usize,
        geom[3] as usize,
        geom[4] as usize,
        geom[5] as usize,
        geom[6] as usize,
    )
    .map_err(CoreError::Tensor)?;
    g.with_groups(geom[7] as usize).map_err(CoreError::Tensor)
}

impl QuantizedNet {
    /// Builds a servable network **borrowing** its weights and biases
    /// zero-copy from a validated image view: every weight matrix is a
    /// [`PackedPow2Matrix::from_shared`] window and every bias an
    /// [`I64Section::from_shared`] window into the image's buffer, shared
    /// by `Arc`. O(layers) small allocations, no payload byte copied —
    /// and the served activations are bit-identical to the owned
    /// construction path (property-tested).
    ///
    /// # Errors
    ///
    /// [`CoreError::BadImage`] on structural defects (already excluded by
    /// [`ImageView::open`]) and [`CoreError::BadConfig`] for an empty
    /// layer stack.
    pub fn from_image(view: &ImageView) -> Result<QuantizedNet> {
        let mut layers = Vec::with_capacity(view.n_layers);
        for i in 0..view.n_layers {
            let e = view.layer_entry(i)?;
            let layer = match e.kind {
                KIND_CONV | KIND_LINEAR => {
                    let weights = PackedPow2Matrix::from_shared(
                        e.rows,
                        e.cols,
                        e.row_stride,
                        Arc::clone(&view.buf),
                        view.base + e.w_off,
                    )
                    .map_err(CoreError::Dfp)?;
                    debug_assert_eq!(weights.as_bytes().len(), e.w_len);
                    let bias = I64Section::from_shared(
                        Arc::clone(&view.buf),
                        view.base + e.b_off,
                        e.b_count,
                    )
                    .map_err(CoreError::Dfp)?;
                    if e.kind == KIND_CONV {
                        QLayer::Conv(ShiftConv {
                            geom: conv_geometry(&e.geom)?,
                            weights,
                            bias,
                            in_frac: e.in_frac,
                            out_frac: e.out_frac,
                        })
                    } else {
                        QLayer::Linear(ShiftLinear {
                            in_features: e.cols,
                            out_features: e.rows,
                            weights,
                            bias,
                            in_frac: e.in_frac,
                            out_frac: e.out_frac,
                        })
                    }
                }
                KIND_POOL => QLayer::Pool {
                    kind: if e.geom[0] == 0 { PoolKind::Max } else { PoolKind::Avg },
                    channels: e.geom[1] as usize,
                    in_h: e.geom[2] as usize,
                    in_w: e.geom[3] as usize,
                    window: e.geom[4] as usize,
                    stride: e.geom[5] as usize,
                },
                _ => QLayer::Relu,
            };
            layers.push(layer);
        }
        QuantizedNet::from_parts(
            view.name.clone(),
            view.input_format,
            view.output_format,
            view.classes,
            layers,
        )
    }
}

// ---------------------------------------------------------------------------
// Zoo
// ---------------------------------------------------------------------------

/// Builds a multi-model zoo image: a directory of named model sections,
/// each a complete v2 model image at a 64-byte-aligned offset.
///
/// # Examples
///
/// ```no_run
/// use mfdfp_core::{QuantizedNet, ZooBuilder};
/// # fn nets() -> Vec<(String, QuantizedNet)> { unimplemented!() }
/// let mut zoo = ZooBuilder::new();
/// for (name, net) in nets() {
///     zoo.push(&name, &net);
/// }
/// let image = zoo.finish(); // one aligned buffer, N models
/// ```
#[derive(Debug, Default)]
pub struct ZooBuilder {
    entries: Vec<(String, AlignedBytes)>,
}

impl ZooBuilder {
    /// An empty zoo.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a model under `name` (serialised via [`to_image`]).
    pub fn push(&mut self, name: &str, net: &QuantizedNet) -> &mut Self {
        self.entries.push((name.to_string(), to_image(net)));
        self
    }

    /// Adds an already-serialised model image under `name`.
    pub fn push_image(&mut self, name: &str, image: AlignedBytes) -> &mut Self {
        self.entries.push((name.to_string(), image));
        self
    }

    /// Number of models added so far.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no models were added.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Serialises the zoo into one aligned buffer.
    pub fn finish(self) -> AlignedBytes {
        let mut a = AlignedArena::new();
        a.push_bytes(&[0u8; HEADER_LEN]);
        let dir_off = a.align_to(SECTION_ALIGN);
        for _ in &self.entries {
            a.push_bytes(&[0u8; ZOO_DIR_ENTRY_LEN]);
        }
        let mut dir: Vec<[u64; 4]> = Vec::with_capacity(self.entries.len());
        for (name, _) in &self.entries {
            let off = a.push_bytes(name.as_bytes());
            dir.push([off as u64, name.len() as u64, 0, 0]);
        }
        for ((_, image), d) in self.entries.iter().zip(dir.iter_mut()) {
            a.align_to(SECTION_ALIGN);
            d[2] = a.push_bytes(image.as_slice()) as u64;
            d[3] = image.len() as u64;
        }
        let image_len = a.align_to(SECTION_ALIGN);

        let mut h = [0u8; HEADER_LEN];
        h[0..8].copy_from_slice(&ZOO_MAGIC);
        h[8..12].copy_from_slice(&IMAGE_VERSION.to_le_bytes());
        h[12..16].copy_from_slice(&(self.entries.len() as u32).to_le_bytes());
        h[16..20].copy_from_slice(&(dir_off as u32).to_le_bytes());
        h[24..32].copy_from_slice(&(image_len as u64).to_le_bytes());
        a.patch(0, &h);
        for (i, d) in dir.iter().enumerate() {
            let mut e = [0u8; ZOO_DIR_ENTRY_LEN];
            e[0..4].copy_from_slice(&(d[0] as u32).to_le_bytes());
            e[4..8].copy_from_slice(&(d[1] as u32).to_le_bytes());
            e[8..16].copy_from_slice(&d[2].to_le_bytes());
            e[16..24].copy_from_slice(&d[3].to_le_bytes());
            a.patch(dir_off + i * ZOO_DIR_ENTRY_LEN, &e);
        }
        // Zoo-level CRC covers every byte — directory, names and the
        // embedded model images (each already carrying its own CRC) — so
        // one flipped bit anywhere is caught before any model is opened.
        let mut image = a.finish();
        stamp_crc(image.as_mut_slice(), ZOO_CRC_OFF);
        image
    }
}

/// A validated view of a multi-model zoo image.
///
/// Opening validates the zoo directory; each model section is then fully
/// validated by [`ZooView::model`] (which returns an [`ImageView`]
/// sharing the same buffer).
#[derive(Debug, Clone)]
pub struct ZooView {
    buf: Arc<AlignedBytes>,
    /// Per model: (name, section offset, section length).
    entries: Vec<(String, usize, usize)>,
}

impl ZooView {
    /// Opens and validates a zoo image held in `buf`.
    ///
    /// # Errors
    ///
    /// [`CoreError::BadImage`] on wrong magic/version, truncation, or a
    /// directory entry that is out of bounds, misaligned or not UTF-8.
    pub fn open(buf: Arc<AlignedBytes>) -> Result<ZooView> {
        let len = buf.len();
        if len < HEADER_LEN {
            return Err(bad(format!("zoo of {len} bytes is smaller than the header")));
        }
        let img = buf.as_slice();
        if img[0..8] != ZOO_MAGIC {
            return Err(bad("bad magic; not an MF-DFP v2 zoo image"));
        }
        let version = u32_at(img, 8);
        if version != IMAGE_VERSION {
            return Err(bad(format!("unsupported zoo version {version}")));
        }
        // Whole-zoo integrity before the directory is trusted: a torn
        // write or flipped bit in any byte of any section fails here.
        verify_crc(img, ZOO_CRC_OFF, "zoo image")?;
        let n_models = u32_at(img, 12) as usize;
        let declared = u64_at(img, 24);
        if declared != len as u64 {
            return Err(bad(format!("header declares {declared} bytes, buffer holds {len}")));
        }
        let dir_off64 = u32_at(img, 16) as u64;
        check_aligned(dir_off64, "zoo directory")?;
        let (dir_off, _) =
            check_range(len, dir_off64, (n_models * ZOO_DIR_ENTRY_LEN) as u64, "zoo directory")?;
        let mut entries = Vec::with_capacity(n_models);
        for i in 0..n_models {
            let e = &img[dir_off + i * ZOO_DIR_ENTRY_LEN..dir_off + (i + 1) * ZOO_DIR_ENTRY_LEN];
            let (name_off, name_len) =
                check_range(len, u32_at(e, 0) as u64, u32_at(e, 4) as u64, "model name")?;
            let name = std::str::from_utf8(&img[name_off..name_off + name_len])
                .map_err(|_| bad(format!("model {i}: name is not UTF-8")))?
                .to_string();
            check_aligned(u64_at(e, 8), "model section")?;
            let (off, mlen) = check_range(len, u64_at(e, 8), u64_at(e, 16), "model section")?;
            entries.push((name, off, mlen));
        }
        Ok(ZooView { buf, entries })
    }

    /// Number of models in the zoo.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the zoo holds no models.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The registered name of model `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range (use [`ZooView::len`]).
    pub fn name(&self, i: usize) -> &str {
        &self.entries[i].0
    }

    /// All model names, in directory order.
    pub fn names(&self) -> Vec<&str> {
        self.entries.iter().map(|(n, _, _)| n.as_str()).collect()
    }

    /// Opens (and fully validates) model `i`'s image section, sharing
    /// this zoo's buffer.
    ///
    /// # Errors
    ///
    /// [`CoreError::BadImage`] if `i` is out of range or the section is
    /// structurally invalid.
    pub fn model(&self, i: usize) -> Result<ImageView> {
        let (_, off, len) =
            self.entries.get(i).ok_or_else(|| bad(format!("no model {i} in zoo")))?;
        ImageView::open_at(Arc::clone(&self.buf), *off, *len)
    }

    /// Opens the model registered under `name`.
    ///
    /// # Errors
    ///
    /// [`CoreError::BadImage`] if no model has that name or its section
    /// is invalid.
    pub fn find(&self, name: &str) -> Result<ImageView> {
        let i = self
            .entries
            .iter()
            .position(|(n, _, _)| n == name)
            .ok_or_else(|| bad(format!("no model named {name:?} in zoo")))?;
        self.model(i)
    }
}

// ---------------------------------------------------------------------------
// Crash-safe persistence
// ---------------------------------------------------------------------------

/// Writes an image (model or zoo) to `path` crash-safely: the bytes go
/// to a same-directory temporary file, are fsynced, and only then
/// atomically renamed over `path` (followed by a best-effort directory
/// fsync). A crash or power cut at any point leaves either the old file
/// or the new one — never a torn mix — so a reader can only ever observe
/// a complete image, whose header CRC then vouches for every byte.
///
/// # Errors
///
/// Any I/O error from creating, writing, syncing or renaming the
/// temporary file; on error the temporary file is removed (best effort)
/// and `path` is untouched.
pub fn write_image_atomic(path: impl AsRef<std::path::Path>, bytes: &[u8]) -> std::io::Result<()> {
    use std::io::Write;

    let path = path.as_ref();
    let mut tmp = path.as_os_str().to_os_string();
    tmp.push(format!(".tmp.{}", std::process::id()));
    let tmp = std::path::PathBuf::from(tmp);

    let result = (|| {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(bytes)?;
        // Data must be durable *before* the rename publishes the name;
        // otherwise a crash could expose a named-but-empty file.
        file.sync_all()?;
        drop(file);
        std::fs::rename(&tmp, path)
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
        return result;
    }
    // Make the rename itself durable. Failing to sync the directory
    // weakens durability, not atomicity, so this is best-effort.
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        if let Ok(d) = std::fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}
