//! Error type for the MF-DFP pipeline.

use std::error::Error;
use std::fmt;

use mfdfp_accel::AccelError;
use mfdfp_dfp::DfpError;
use mfdfp_nn::NnError;
use mfdfp_tensor::TensorError;

/// Errors from quantization, fine-tuning and quantized inference.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// Underlying network framework error.
    Nn(NnError),
    /// Underlying tensor error.
    Tensor(TensorError),
    /// Underlying fixed-point error.
    Dfp(DfpError),
    /// Underlying accelerator-model error.
    Accel(AccelError),
    /// The network contains a layer the MF-DFP pipeline cannot quantize.
    Unquantizable(String),
    /// Pipeline configuration inconsistency.
    BadConfig(String),
    /// A malformed, truncated or misaligned deployment image (v2 flat
    /// format; see `mfdfp_core::image`).
    BadImage(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Nn(e) => write!(f, "network error: {e}"),
            CoreError::Tensor(e) => write!(f, "tensor error: {e}"),
            CoreError::Dfp(e) => write!(f, "fixed-point error: {e}"),
            CoreError::Accel(e) => write!(f, "accelerator error: {e}"),
            CoreError::Unquantizable(msg) => write!(f, "cannot quantize: {msg}"),
            CoreError::BadConfig(msg) => write!(f, "invalid pipeline configuration: {msg}"),
            CoreError::BadImage(msg) => write!(f, "invalid deployment image: {msg}"),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Nn(e) => Some(e),
            CoreError::Tensor(e) => Some(e),
            CoreError::Dfp(e) => Some(e),
            CoreError::Accel(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NnError> for CoreError {
    fn from(e: NnError) -> Self {
        CoreError::Nn(e)
    }
}

impl From<TensorError> for CoreError {
    fn from(e: TensorError) -> Self {
        CoreError::Tensor(e)
    }
}

impl From<DfpError> for CoreError {
    fn from(e: DfpError) -> Self {
        CoreError::Dfp(e)
    }
}

impl From<AccelError> for CoreError {
    fn from(e: AccelError) -> Self {
        CoreError::Accel(e)
    }
}

/// Convenience alias for pipeline results.
pub type Result<T> = std::result::Result<T, CoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_sources() {
        let e = CoreError::from(DfpError::BadFanIn(5));
        assert!(e.to_string().contains("fixed-point"));
        assert!(Error::source(&e).is_some());
        assert!(Error::source(&CoreError::BadConfig("x".into())).is_none());
    }
}
