//! Phase 3: ensembles of MF-DFP networks.
//!
//! "Suppose the ensemble consists of M networks producing output logit
//! vectors z_i … the output class can simply be the maximum element in
//! (1/M)·Σ z_i." Each member runs on its own processing unit in parallel,
//! so ensemble latency equals single-network latency while energy scales
//! with the member count — the trade the paper's Table 2 ensemble rows
//! quantify.

use mfdfp_nn::Accuracy;
use mfdfp_tensor::{with_thread_workspace, Shape, Tensor, Workspace, WorkspacePlan};

use crate::error::{CoreError, Result};
use crate::qnet::QuantizedNet;

/// An ensemble of independently fine-tuned quantized networks.
#[derive(Debug, Clone)]
pub struct Ensemble {
    members: Vec<QuantizedNet>,
}

impl Ensemble {
    /// Builds an ensemble from its members.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BadConfig`] if the ensemble is empty or the
    /// members disagree on class count.
    pub fn new(members: Vec<QuantizedNet>) -> Result<Self> {
        let Some(first) = members.first() else {
            return Err(CoreError::BadConfig("ensemble needs at least one member".into()));
        };
        let classes = first.classes();
        if members.iter().any(|m| m.classes() != classes) {
            return Err(CoreError::BadConfig("ensemble members disagree on class count".into()));
        }
        Ok(Ensemble { members })
    }

    /// Number of member networks (the paper deploys M = 2).
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the ensemble has no members (never true post-construction).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The member networks.
    pub fn members(&self) -> &[QuantizedNet] {
        &self.members
    }

    /// Number of output classes.
    pub fn classes(&self) -> usize {
        self.members[0].classes()
    }

    /// Peak workspace sizes across every member (element-wise max), plus
    /// an `f32` lane for single-image member-logit staging — grow-only
    /// buffers absorb larger batches on first use. One workspace sized
    /// from this plan serves any member and the averaging loop.
    pub fn plan(&self) -> WorkspacePlan {
        let merged = self
            .members
            .iter()
            .map(QuantizedNet::plan)
            .fold(WorkspacePlan::default(), |a, b| a.merge(b));
        merged.merge(WorkspacePlan { f32_len: self.classes(), ..Default::default() })
    }

    /// [`Ensemble::plan`] extended with the fused-batch dimension: member
    /// plans take their batched shape ([`QuantizedNet::plan_for_batch`])
    /// and the `f32` member-logit staging lane is sized for
    /// `max_batch × classes` up front, so a workspace built from this
    /// plan runs batched ensemble inference allocation-free for any batch
    /// up to `max_batch`.
    pub fn plan_for_batch(&self, max_batch: usize) -> WorkspacePlan {
        let merged = self
            .members
            .iter()
            .map(|m| m.plan_for_batch(max_batch))
            .fold(WorkspacePlan::default(), |a, b| a.merge(b));
        merged.merge(WorkspacePlan {
            f32_len: self.classes() * max_batch.max(1),
            ..Default::default()
        })
    }

    /// Averaged dequantized logits for a `N×C×H×W` batch.
    ///
    /// # Errors
    ///
    /// Propagates member inference errors.
    pub fn logits_batch(&self, batch: &Tensor) -> Result<Tensor> {
        let n = batch.shape().dim(0);
        let mut out = Tensor::zeros(Shape::d2(n, self.classes()));
        with_thread_workspace(|ws| {
            self.logits_batch_into(batch.as_slice(), n, ws, out.as_mut_slice(), self.len())
        })?;
        Ok(out)
    }

    /// The allocation-free averaged-logits entry (the ensemble
    /// counterpart of [`QuantizedNet::logits_batch_into`]): `data` is `n`
    /// images flat, `out` receives the `n × classes` averaged logits of
    /// the first `members` member networks. Member logits stage in the
    /// workspace's `f32` lane; the averaging accumulates member-by-member
    /// in the same order as [`Ensemble::logits_batch`] — which is
    /// implemented on top of this with `members == len()` — so the two
    /// agree bit-for-bit.
    ///
    /// `members` is the serve tier's accuracy-for-cost dial (the paper's
    /// Table 3 trade made adaptive): it is clamped to `1..=len()`, the
    /// member *prefix* runs in declaration order, and the sum is scaled
    /// by `1/members` — exactly the arithmetic a standalone
    /// `members`-sized ensemble performs, so a truncated answer is
    /// bit-identical to that smaller ensemble's.
    ///
    /// # Errors
    ///
    /// Propagates member inference errors and the shape checks of
    /// [`QuantizedNet::logits_batch_into`].
    pub fn logits_batch_into(
        &self,
        data: &[f32],
        n: usize,
        ws: &mut Workspace,
        out: &mut [f32],
        members: usize,
    ) -> Result<()> {
        let k = members.clamp(1, self.members.len());
        let mut tmp = ws.take_f32();
        let result = (|| {
            tmp.resize(out.len(), 0.0);
            out.fill(0.0);
            for member in &self.members[..k] {
                member.logits_batch_into(data, n, ws, &mut tmp)?;
                for (o, &t) in out.iter_mut().zip(tmp.iter()) {
                    *o += t;
                }
            }
            let inv = 1.0 / k as f32;
            for o in out.iter_mut() {
                *o *= inv;
            }
            Ok(())
        })();
        ws.restore_f32(tmp);
        result
    }

    /// Evaluates the ensemble over batches, tracking top-1/top-`k`.
    ///
    /// # Errors
    ///
    /// Propagates member inference errors.
    pub fn evaluate<I>(&self, batches: I, k: usize) -> Result<Accuracy>
    where
        I: IntoIterator<Item = (Tensor, Vec<usize>)>,
    {
        let mut acc = Accuracy::new(k);
        for (x, labels) in batches {
            let logits = self.logits_batch(&x)?;
            acc.update(&logits, &labels).map_err(CoreError::Nn)?;
        }
        Ok(acc)
    }

    /// Total parameter memory of the ensemble in bytes (Table 3's
    /// "Ensemble MF-DFP" rows: essentially `M ×` a single member).
    pub fn memory_bytes(&self) -> u64 {
        self.members.iter().map(QuantizedNet::memory_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qnet::QuantizedNet;
    use crate::quantize::calibrate;
    use mfdfp_nn::zoo;
    use mfdfp_tensor::TensorRng;

    fn member(seed: u64) -> QuantizedNet {
        let mut rng = TensorRng::seed_from(seed);
        let mut net = zoo::quick_custom(2, 16, [4, 4, 4], 8, 4, &mut rng).unwrap();
        let x = rng.gaussian([4, 2, 16, 16], 0.0, 0.7);
        let plan = calibrate(&mut net, &[(x, vec![0, 1, 2, 3])], 8).unwrap();
        QuantizedNet::from_network(&net, &plan).unwrap()
    }

    #[test]
    fn rejects_empty_and_mismatched() {
        assert!(Ensemble::new(vec![]).is_err());
        let mut rng = TensorRng::seed_from(1);
        let mut other = zoo::quick_custom(2, 16, [4, 4, 4], 8, 6, &mut rng).unwrap();
        let x = rng.gaussian([2, 2, 16, 16], 0.0, 0.7);
        let plan = calibrate(&mut other, &[(x, vec![0, 1])], 8).unwrap();
        let other_q = QuantizedNet::from_network(&other, &plan).unwrap();
        assert!(Ensemble::new(vec![member(1), other_q]).is_err());
    }

    #[test]
    fn averaged_logits_are_member_mean() {
        let e = Ensemble::new(vec![member(1), member(2)]).unwrap();
        let mut rng = TensorRng::seed_from(9);
        let x = rng.gaussian([3, 2, 16, 16], 0.0, 0.7);
        let avg = e.logits_batch(&x).unwrap();
        let l1 = e.members()[0].logits_batch(&x).unwrap();
        let l2 = e.members()[1].logits_batch(&x).unwrap();
        for i in 0..avg.len() {
            let expect = (l1.as_slice()[i] + l2.as_slice()[i]) / 2.0;
            assert!((avg.as_slice()[i] - expect).abs() < 1e-6);
        }
    }

    #[test]
    fn logits_batch_into_matches_logits_batch() {
        let e = Ensemble::new(vec![member(1), member(2)]).unwrap();
        let mut rng = TensorRng::seed_from(11);
        let x = rng.gaussian([3, 2, 16, 16], 0.0, 0.7);
        let expect = e.logits_batch(&x).unwrap();
        let plan = e.plan();
        assert!(plan.f32_len >= e.classes());
        let mut ws = plan.workspace();
        let mut out = vec![0.0f32; 3 * e.classes()];
        e.logits_batch_into(x.as_slice(), 3, &mut ws, &mut out, e.len()).unwrap();
        assert_eq!(out, expect.as_slice());
    }

    #[test]
    fn truncated_prefix_is_bit_identical_to_smaller_ensemble() {
        let nets = vec![member(1), member(2), member(3)];
        let full = Ensemble::new(nets.clone()).unwrap();
        let mut rng = TensorRng::seed_from(13);
        let x = rng.gaussian([2, 2, 16, 16], 0.0, 0.7);
        let mut ws = full.plan_for_batch(2).workspace();
        for k in 1..=nets.len() {
            let oracle = Ensemble::new(nets[..k].to_vec()).unwrap().logits_batch(&x).unwrap();
            let mut out = vec![0.0f32; 2 * full.classes()];
            full.logits_batch_into(x.as_slice(), 2, &mut ws, &mut out, k).unwrap();
            let got: Vec<u32> = out.iter().map(|v| v.to_bits()).collect();
            let want: Vec<u32> = oracle.as_slice().iter().map(|v| v.to_bits()).collect();
            assert_eq!(got, want, "k={k}: truncated prefix must match the k-member ensemble");
        }
        // Out-of-range member counts clamp rather than panic or error.
        let mut out = vec![0.0f32; 2 * full.classes()];
        full.logits_batch_into(x.as_slice(), 2, &mut ws, &mut out, 0).unwrap();
        full.logits_batch_into(x.as_slice(), 2, &mut ws, &mut out, 99).unwrap();
        let all = full.logits_batch(&x).unwrap();
        assert_eq!(out, all.as_slice(), "members > len must clamp to the full ensemble");
    }

    #[test]
    fn memory_scales_with_members() {
        let single = member(1).memory_bytes();
        let e = Ensemble::new(vec![member(1), member(2)]).unwrap();
        assert_eq!(e.memory_bytes(), 2 * single);
        assert_eq!(e.len(), 2);
        assert_eq!(e.classes(), 4);
    }

    #[test]
    fn evaluate_runs() {
        let e = Ensemble::new(vec![member(1), member(2)]).unwrap();
        let mut rng = TensorRng::seed_from(9);
        let x = rng.gaussian([4, 2, 16, 16], 0.0, 0.7);
        let acc = e.evaluate(vec![(x, vec![0, 1, 2, 3])], 2).unwrap();
        assert_eq!(acc.total(), 4);
    }
}
