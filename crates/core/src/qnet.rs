//! The deployed MF-DFP network: integer-only inference through the
//! accelerator's functional datapath.
//!
//! A [`QuantizedNet`] is the artifact Algorithm 1 produces — 4-bit
//! power-of-two weights, 8-bit dynamic fixed-point activations with
//! per-layer radix points, biases aligned into the accumulator. Its
//! forward pass uses **only** integer shift/add operations (via
//! `mfdfp_accel::qlayers`), so evaluating it *is* simulating the
//! accelerator bit-for-bit.
//!
//! Weights stay in their packed 4-bit nibble form from construction to
//! inference: [`QuantizedNet::forward_codes`] dispatches the shift-only
//! packed `qgemm` kernel, while [`QuantizedNet::forward_codes_reference`]
//! keeps the original decode-based adder-tree datapath as the
//! bit-exactness oracle (the two are property-tested identical).
//!
//! Like the hardware it models, the packed forward path has **no dynamic
//! memory**: activations ping-pong between two pre-sized buffers of a
//! [`Workspace`] and the im2col staging is drawn from the same arena.
//! [`QuantizedNet::plan`] derives every peak buffer size from the layer
//! geometry, so a workspace is sized once per model and
//! [`QuantizedNet::forward_codes_with`] then runs arbitrarily many
//! inferences with zero heap allocations. The allocating entries remain
//! as thin wrappers over the calling thread's persistent workspace.

use mfdfp_accel::qlayers::{
    avg_pool_codes, avg_pool_codes_batch_into, avg_pool_codes_into, max_pool_codes,
    max_pool_codes_batch_into, max_pool_codes_into, pool_out_dims, relu_codes, ShiftConv,
    ShiftLinear, PRODUCT_FRAC_SHIFT,
};
use mfdfp_dfp::{realign, AdderTree, DfpFormat, PackedPow2Matrix};
use mfdfp_nn::{Layer, Network};
use mfdfp_tensor::{
    with_thread_workspace, AlignedVec, PoolKind, Shape, Tensor, Workspace, WorkspacePlan,
};

use crate::error::{CoreError, Result};
use crate::quantize::QuantizationPlan;

/// One layer of the deployed network.
#[derive(Debug, Clone)]
pub enum QLayer {
    /// Shift-based convolution (runs on the accelerator datapath).
    Conv(ShiftConv),
    /// Shift-based fully-connected layer.
    Linear(ShiftLinear),
    /// Pooling on activation codes.
    Pool {
        /// Max or average.
        kind: PoolKind,
        /// Channels.
        channels: usize,
        /// Input height.
        in_h: usize,
        /// Input width.
        in_w: usize,
        /// Window side.
        window: usize,
        /// Stride.
        stride: usize,
    },
    /// ReLU on activation codes (the NL unit).
    Relu,
}

/// A quantized multiplier-free dynamic fixed-point network.
#[derive(Debug, Clone)]
pub struct QuantizedNet {
    name: String,
    input_format: DfpFormat,
    output_format: DfpFormat,
    layers: Vec<QLayer>,
    classes: usize,
    tree: AdderTree,
}

impl QuantizedNet {
    /// Builds the deployed network from a float master and its calibrated
    /// plan (Algorithm 1 line 2 — typically called on the *fine-tuned*
    /// master at the end of Phases 1/2).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Unquantizable`] for layers with no hardware
    /// mapping (LRN) and [`CoreError::BadConfig`] for non-8-bit plans.
    pub fn from_network(master: &Network, plan: &QuantizationPlan) -> Result<Self> {
        if plan.activation_bits != 8 {
            return Err(CoreError::BadConfig(format!(
                "the integer engine is 8-bit; plan has {} bits",
                plan.activation_bits
            )));
        }
        if plan.boundary_formats.len() != master.len() {
            return Err(CoreError::BadConfig(
                "quantization plan does not match network layer count".into(),
            ));
        }
        let mut layers = Vec::new();
        let mut classes = 0usize;
        let mut current = plan.input_format;
        let mut output_format = plan.input_format;
        for (i, layer) in master.layers().iter().enumerate() {
            match layer {
                Layer::Conv(c) => {
                    let out_fmt = plan.boundary_formats[i];
                    let bias_fmt = plan.bias_formats[i].expect("weighted layer has bias format");
                    let g = *c.geometry();
                    layers.push(QLayer::Conv(ShiftConv {
                        geom: g,
                        weights: PackedPow2Matrix::from_f32(
                            g.out_c,
                            g.col_height(),
                            c.weights().as_slice(),
                        )
                        .map_err(CoreError::Dfp)?,
                        bias: align_biases(c.bias().as_slice(), bias_fmt, current).into(),
                        in_frac: current.frac(),
                        out_frac: out_fmt.frac(),
                    }));
                    classes = c.geometry().out_c;
                    current = out_fmt;
                    output_format = out_fmt;
                }
                Layer::Linear(l) => {
                    let out_fmt = plan.boundary_formats[i];
                    let bias_fmt = plan.bias_formats[i].expect("weighted layer has bias format");
                    layers.push(QLayer::Linear(ShiftLinear {
                        in_features: l.in_features(),
                        out_features: l.out_features(),
                        weights: PackedPow2Matrix::from_f32(
                            l.out_features(),
                            l.in_features(),
                            l.weights().as_slice(),
                        )
                        .map_err(CoreError::Dfp)?,
                        bias: align_biases(l.bias().as_slice(), bias_fmt, current).into(),
                        in_frac: current.frac(),
                        out_frac: out_fmt.frac(),
                    }));
                    classes = l.out_features();
                    current = out_fmt;
                    output_format = out_fmt;
                }
                Layer::Pool(p) => {
                    let g = p.geometry();
                    layers.push(QLayer::Pool {
                        kind: p.kind(),
                        channels: g.channels,
                        in_h: g.in_h,
                        in_w: g.in_w,
                        window: g.window,
                        stride: g.stride,
                    });
                }
                Layer::Relu(_) => layers.push(QLayer::Relu),
                // Identity at inference: flatten only reshapes, dropout is
                // disabled, fake-quant is already realised by the integer
                // representation itself.
                Layer::Flatten(_) | Layer::Dropout(_) | Layer::FakeQuant(_) => {}
                Layer::Lrn(_) => {
                    return Err(CoreError::Unquantizable(
                        "LRN has no multiplier-free mapping".into(),
                    ))
                }
                Layer::Tanh(_) | Layer::Sigmoid(_) => {
                    return Err(CoreError::Unquantizable(
                        "smooth non-linearities have no multiplier-free mapping; use ReLU".into(),
                    ))
                }
            }
        }
        if classes == 0 {
            return Err(CoreError::Unquantizable("network has no weighted layers".into()));
        }
        Ok(QuantizedNet {
            name: format!("{}-mfdfp", master.name()),
            input_format: plan.input_format,
            output_format,
            layers,
            classes,
            tree: AdderTree::new(16).expect("16 is a power of two"),
        })
    }

    /// Reassembles a network from its parts (the deployment-image
    /// deserialiser).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BadConfig`] for an empty layer stack.
    pub(crate) fn from_parts(
        name: String,
        input_format: DfpFormat,
        output_format: DfpFormat,
        classes: usize,
        layers: Vec<QLayer>,
    ) -> Result<Self> {
        if layers.is_empty() || classes == 0 {
            return Err(CoreError::BadConfig("deployment image has no layers".into()));
        }
        Ok(QuantizedNet {
            name,
            input_format,
            output_format,
            layers,
            classes,
            tree: AdderTree::new(16).expect("16 is a power of two"),
        })
    }

    /// The network's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of output classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// The input activation format.
    pub fn input_format(&self) -> DfpFormat {
        self.input_format
    }

    /// The logits' activation format.
    pub fn output_format(&self) -> DfpFormat {
        self.output_format
    }

    /// The layer stack.
    pub fn layers(&self) -> &[QLayer] {
        &self.layers
    }

    /// Number of activation codes one input image must supply, derived
    /// from the first compute layer's geometry. Shapeless layers (ReLU)
    /// are skipped; `None` only for a stack with no Conv/Linear/Pool
    /// layer at all, which [`QuantizedNet::from_network`] never produces.
    ///
    /// Serving-side admission control uses this to reject malformed
    /// requests *before* they occupy queue capacity.
    pub fn input_len(&self) -> Option<usize> {
        self.layers.iter().find_map(|layer| match layer {
            QLayer::Conv(c) => Some(c.geom.in_c * c.geom.in_h * c.geom.in_w),
            QLayer::Linear(l) => Some(l.in_features),
            QLayer::Pool { channels, in_h, in_w, .. } => Some(channels * in_h * in_w),
            QLayer::Relu => None,
        })
    }

    /// Peak scratch sizes of the packed forward path, derived from the
    /// layer geometry — the software analogue of sizing the hardware's
    /// activation buffers at synthesis time. Feed the plan to
    /// [`Workspace::with_plan`] (or call
    /// [`WorkspacePlan::workspace`]) and even the *first*
    /// [`QuantizedNet::forward_codes_with`] pass allocates nothing.
    pub fn plan(&self) -> WorkspacePlan {
        let mut cur = self.input_len().unwrap_or(0);
        let mut act_len = cur;
        let mut im2col_len = 0usize;
        for layer in &self.layers {
            if let QLayer::Conv(c) = layer {
                im2col_len = im2col_len.max(c.im2col_len());
            }
            cur = layer_out_len(layer, cur);
            act_len = act_len.max(cur);
        }
        WorkspacePlan { act_len, im2col_len, ..WorkspacePlan::default() }
    }

    /// [`QuantizedNet::plan`] extended with the fused-batch dimension:
    /// a workspace built from this plan runs the batch-fused forward
    /// ([`QuantizedNet::logits_batch_into`]) allocation-free for any
    /// batch up to `max_batch` — the activation ping-pong pair and the
    /// im2col staging each scale by the batch, the `f32` staging does
    /// not. This is what the serving worker sizes its per-thread scratch
    /// with (`max_batch` = the batcher's coalescing limit).
    pub fn plan_for_batch(&self, max_batch: usize) -> WorkspacePlan {
        self.plan().for_batch(max_batch)
    }

    /// Runs integer-only inference on one `C×H×W` float image: quantizes
    /// the input to codes, then shifts/adds all the way to logit codes.
    ///
    /// Thin wrapper over [`QuantizedNet::forward_codes_with`] drawing
    /// scratch from the calling thread's persistent workspace: on a
    /// long-lived thread, only the returned `Vec` allocates once the
    /// thread is warm.
    ///
    /// # Errors
    ///
    /// Propagates datapath faults (overflow audits, geometry mismatches).
    pub fn forward_codes(&self, image: &Tensor) -> Result<Vec<i8>> {
        self.forward_codes_from(image.as_slice())
    }

    /// The allocation-free forward: runs the packed shift-only datapath
    /// entirely inside `ws`, returning a view of the logit codes (valid
    /// until the workspace's next use). With a workspace warmed for this
    /// network — one prior call, or [`QuantizedNet::plan`] up front —
    /// this performs **zero heap allocations**, matching the fixed-buffer
    /// Figure 2(a) datapath buffer-for-buffer.
    ///
    /// # Errors
    ///
    /// Propagates datapath faults (overflow audits, geometry mismatches).
    pub fn forward_codes_with<'w>(
        &self,
        image: &Tensor,
        ws: &'w mut Workspace,
    ) -> Result<&'w [i8]> {
        let len = self.forward_packed(image.as_slice(), ws)?;
        Ok(ws.codes(len))
    }

    /// Runs the same inference through the **decode-based** Figure 2(a)
    /// datapath — per-element `Pow2Weight` decode and `mul_shift`, the
    /// widening adder tree with per-level overflow audits, the 32-bit
    /// accumulator — instead of the packed shift-only `qgemm` kernel that
    /// [`QuantizedNet::forward_codes`] dispatches.
    ///
    /// Slower by design. Kept as the bit-exactness oracle the packed hot
    /// path is property-tested against (`crates/core/tests/properties.rs`,
    /// `crates/accel/tests/qgemm_equivalence.rs`) and as the
    /// decode-overhead baseline recorded in `BENCH_qgemm.json`.
    ///
    /// # Errors
    ///
    /// Propagates datapath faults (overflow audits, geometry mismatches).
    pub fn forward_codes_reference(&self, image: &Tensor) -> Result<Vec<i8>> {
        let mut codes: Vec<i8> =
            image.as_slice().iter().map(|&x| self.input_format.quantize(x) as i8).collect();
        for layer in &self.layers {
            codes = match layer {
                QLayer::Conv(c) => c.run_reference(&codes, &self.tree).map_err(CoreError::Accel)?,
                QLayer::Linear(l) => {
                    l.run_reference(&codes, &self.tree).map_err(CoreError::Accel)?
                }
                QLayer::Pool { kind, channels, in_h, in_w, window, stride } => match kind {
                    PoolKind::Max => {
                        max_pool_codes(&codes, *channels, *in_h, *in_w, *window, *stride)
                            .map_err(CoreError::Accel)?
                    }
                    PoolKind::Avg => {
                        avg_pool_codes(&codes, *channels, *in_h, *in_w, *window, *stride)
                            .map_err(CoreError::Accel)?
                    }
                },
                QLayer::Relu => {
                    let mut c = codes;
                    relu_codes(&mut c);
                    c
                }
            };
        }
        Ok(codes)
    }

    fn forward_codes_from(&self, image: &[f32]) -> Result<Vec<i8>> {
        with_thread_workspace(|ws| {
            let len = self.forward_packed(image, ws)?;
            Ok(ws.codes(len).to_vec())
        })
    }

    /// The packed-path layer loop: activations ping-pong between the
    /// workspace's two pre-sized buffers, convolutions stage their `i8`
    /// im2col columns in the same arena, and every layer writes through
    /// its `*_into` entry — no allocation anywhere once the workspace is
    /// warm. Returns the final code count; the codes sit in the
    /// workspace's front activation buffer ([`Workspace::codes`]).
    fn forward_packed(&self, image: &[f32], ws: &mut Workspace) -> Result<usize> {
        let (mut cur, mut nxt) = ws.take_act();
        let result = self.forward_packed_layers(image, ws, &mut cur, &mut nxt);
        ws.restore_act(cur, nxt);
        result
    }

    fn forward_packed_layers(
        &self,
        image: &[f32],
        ws: &mut Workspace,
        cur: &mut AlignedVec<i8>,
        nxt: &mut AlignedVec<i8>,
    ) -> Result<usize> {
        cur.resize(image.len(), 0);
        for (c, &x) in cur.iter_mut().zip(image) {
            *c = self.input_format.quantize(x) as i8;
        }
        for (idx, layer) in self.layers.iter().enumerate() {
            // Flight-recorder: one span per layer, label = layer kind,
            // arg = layer index (a no-op without the `obs` feature).
            match layer {
                QLayer::Conv(c) => {
                    let _span = mfdfp_obs::span!("qnet.conv", idx as u64);
                    nxt.resize(c.out_len(), 0);
                    c.run_into(cur, ws, nxt).map_err(CoreError::Accel)?;
                    std::mem::swap(cur, nxt);
                }
                QLayer::Linear(l) => {
                    let _span = mfdfp_obs::span!("qnet.linear", idx as u64);
                    nxt.resize(l.out_features, 0);
                    l.run_into(cur, nxt).map_err(CoreError::Accel)?;
                    std::mem::swap(cur, nxt);
                }
                QLayer::Pool { kind, channels, in_h, in_w, window, stride } => {
                    let _span = mfdfp_obs::span!("qnet.pool", idx as u64);
                    let (oh, ow) =
                        pool_out_dims(*in_h, *in_w, *window, *stride).map_err(CoreError::Accel)?;
                    nxt.resize(channels * oh * ow, 0);
                    match kind {
                        PoolKind::Max => {
                            max_pool_codes_into(cur, *channels, *in_h, *in_w, *window, *stride, nxt)
                        }
                        PoolKind::Avg => {
                            avg_pool_codes_into(cur, *channels, *in_h, *in_w, *window, *stride, nxt)
                        }
                    }
                    .map_err(CoreError::Accel)?;
                    std::mem::swap(cur, nxt);
                }
                QLayer::Relu => {
                    let _span = mfdfp_obs::span!("qnet.relu", idx as u64);
                    relu_codes(cur);
                }
            }
        }
        Ok(cur.len())
    }

    /// Integer-only inference over an `N×C×H×W` batch: one `Vec` of logit
    /// codes per image, bit-identical to calling
    /// [`QuantizedNet::forward_codes`] image by image.
    ///
    /// Since the batch-fused path landed this runs the whole batch as
    /// **one** im2col gather and **one** packed shift-MAC pass per layer
    /// (per group) — see [`QuantizedNet::logits_batch_into`] for the
    /// fusion contract. The per-image loop survives as
    /// [`QuantizedNet::forward_codes_batch_per_image`], the equivalence
    /// oracle the fused path is property-tested against.
    ///
    /// # Errors
    ///
    /// Propagates datapath faults.
    pub fn forward_codes_batch(&self, batch: &Tensor) -> Result<Vec<Vec<i8>>> {
        let n = batch.shape().dim(0);
        if n == 0 {
            return Ok(Vec::new());
        }
        with_thread_workspace(|ws| {
            let len = self.forward_packed_batch(batch.as_slice(), n, ws)?;
            let codes = ws.codes(len * n);
            Ok((0..n).map(|b| (0..len).map(|e| codes[e * n + b]).collect()).collect())
        })
    }

    /// The per-image batch loop the fused path replaced, kept alive as
    /// the equivalence oracle: identical to calling
    /// [`QuantizedNet::forward_codes`] image by image (with the
    /// `parallel` feature, images fan out across OS threads — each
    /// image's datapath is untouched, so results stay bit-identical to
    /// the serial loop, and — by the fusion contract — to
    /// [`QuantizedNet::forward_codes_batch`]).
    ///
    /// # Errors
    ///
    /// Propagates datapath faults from any image (the first, in batch
    /// order, wins).
    pub fn forward_codes_batch_per_image(&self, batch: &Tensor) -> Result<Vec<Vec<i8>>> {
        let n = batch.shape().dim(0);
        let per_image: usize = batch.shape().dims()[1..].iter().product();
        let data = batch.as_slice();
        let images: Vec<&[f32]> =
            (0..n).map(|s| &data[s * per_image..(s + 1) * per_image]).collect();
        self.run_images(&images)
    }

    /// The batch-fused packed forward: quantizes all `n` images into one
    /// element-interleaved activation buffer (element `e` of image `b` at
    /// `e·n + b`), then runs the layer loop **once**, each conv/linear
    /// layer fusing the whole batch into a single column matrix and a
    /// single shift-MAC kernel call per group
    /// (`ShiftConv::run_batch_into` / `ShiftLinear::run_batch_into`).
    /// Returns the per-image logit-code count; the `len·n` interleaved
    /// codes sit in the workspace's front buffer ([`Workspace::codes`]).
    ///
    /// Row-banded parallelism now sees the whole layer-batch product, so
    /// under the `parallel` feature the pool splits per-layer work — the
    /// old per-image fan-out lives on only in the `*_per_image` oracle
    /// entries.
    fn forward_packed_batch(&self, data: &[f32], n: usize, ws: &mut Workspace) -> Result<usize> {
        let (mut cur, mut nxt) = ws.take_act();
        let result = self.forward_packed_batch_layers(data, n, ws, &mut cur, &mut nxt);
        ws.restore_act(cur, nxt);
        result
    }

    fn forward_packed_batch_layers(
        &self,
        data: &[f32],
        n: usize,
        ws: &mut Workspace,
        cur: &mut AlignedVec<i8>,
        nxt: &mut AlignedVec<i8>,
    ) -> Result<usize> {
        let per_image = data.len() / n;
        cur.resize(per_image * n, 0);
        for (b, image) in data.chunks_exact(per_image).enumerate() {
            for (e, &x) in image.iter().enumerate() {
                cur[e * n + b] = self.input_format.quantize(x) as i8;
            }
        }
        for (idx, layer) in self.layers.iter().enumerate() {
            // Same flight-recorder layer spans as the per-image loop —
            // one span now covers the whole batch's layer.
            match layer {
                QLayer::Conv(c) => {
                    let _span = mfdfp_obs::span!("qnet.conv", idx as u64);
                    nxt.resize(c.out_len() * n, 0);
                    c.run_batch_into(cur, n, ws, nxt).map_err(CoreError::Accel)?;
                    std::mem::swap(cur, nxt);
                }
                QLayer::Linear(l) => {
                    let _span = mfdfp_obs::span!("qnet.linear", idx as u64);
                    nxt.resize(l.out_features * n, 0);
                    l.run_batch_into(cur, n, nxt).map_err(CoreError::Accel)?;
                    std::mem::swap(cur, nxt);
                }
                QLayer::Pool { kind, channels, in_h, in_w, window, stride } => {
                    let _span = mfdfp_obs::span!("qnet.pool", idx as u64);
                    let (oh, ow) =
                        pool_out_dims(*in_h, *in_w, *window, *stride).map_err(CoreError::Accel)?;
                    nxt.resize(channels * oh * ow * n, 0);
                    match kind {
                        PoolKind::Max => max_pool_codes_batch_into(
                            cur, *channels, *in_h, *in_w, *window, *stride, n, nxt,
                        ),
                        PoolKind::Avg => avg_pool_codes_batch_into(
                            cur, *channels, *in_h, *in_w, *window, *stride, n, nxt,
                        ),
                    }
                    .map_err(CoreError::Accel)?;
                    std::mem::swap(cur, nxt);
                }
                QLayer::Relu => {
                    let _span = mfdfp_obs::span!("qnet.relu", idx as u64);
                    relu_codes(cur);
                }
            }
        }
        Ok(cur.len() / n)
    }

    #[cfg(not(feature = "parallel"))]
    fn run_images(&self, images: &[&[f32]]) -> Result<Vec<Vec<i8>>> {
        images.iter().map(|img| self.forward_codes_from(img)).collect()
    }

    /// Batch-parallel dispatch on the persistent `mfdfp-rt` pool:
    /// contiguous chunks of images per task, results stitched back in
    /// batch order (chunk boundaries depend only on the pool width, so
    /// the output is a pure function of `MFDFP_THREADS`). Falls back to
    /// the serial loop when only one thread is available or the batch is
    /// a single image. Task panics propagate through the pool scope,
    /// matching the scoped-thread behaviour this replaced.
    #[cfg(feature = "parallel")]
    fn run_images(&self, images: &[&[f32]]) -> Result<Vec<Vec<i8>>> {
        // Single-image batches never dispatch — bail before touching the
        // global pool so a process doing only one-at-a-time inference
        // never spawns workers (the pool stays truly lazy).
        if images.len() < 2 {
            return images.iter().map(|img| self.forward_codes_from(img)).collect();
        }
        let pool = mfdfp_rt::global();
        let workers = pool.threads().min(images.len());
        if workers < 2 {
            return images.iter().map(|img| self.forward_codes_from(img)).collect();
        }
        let chunk = images.len().div_ceil(workers);
        let mut chunk_results: Vec<Option<Result<Vec<Vec<i8>>>>> =
            images.chunks(chunk).map(|_| None).collect();
        pool.scope(|scope| {
            for (slot, imgs) in chunk_results.iter_mut().zip(images.chunks(chunk)) {
                scope.spawn(move || {
                    *slot = Some(imgs.iter().map(|img| self.forward_codes_from(img)).collect());
                });
            }
        });
        let mut out = Vec::with_capacity(images.len());
        for r in chunk_results {
            out.extend(r.expect("pool scope completed every chunk")?);
        }
        Ok(out)
    }

    /// Dequantized logits for one image.
    ///
    /// # Errors
    ///
    /// Propagates datapath faults.
    pub fn logits(&self, image: &Tensor) -> Result<Tensor> {
        let codes = self.forward_codes(image)?;
        let vals: Vec<f32> =
            codes.iter().map(|&c| self.output_format.dequantize(c as i32)).collect();
        Ok(Tensor::from_slice(&vals))
    }

    /// Dequantized logits for a `N×C×H×W` batch (`N×classes`).
    ///
    /// # Errors
    ///
    /// Propagates datapath faults.
    pub fn logits_batch(&self, batch: &Tensor) -> Result<Tensor> {
        let n = batch.shape().dim(0);
        let mut out = Tensor::zeros(Shape::d2(n, self.classes));
        with_thread_workspace(|ws| {
            self.logits_batch_into(batch.as_slice(), n, ws, out.as_mut_slice())
        })?;
        Ok(out)
    }

    /// The allocation-free batched-logits entry the serving runtime
    /// dispatches: `data` is `n` images flat (`n × per_image` elements),
    /// `out` receives the `n × classes` dequantized logits row-major.
    /// Identical values to [`QuantizedNet::logits_batch`] — this *is* its
    /// implementation — but every scratch byte comes from a workspace, so
    /// a warmed call performs zero heap allocations (size the workspace
    /// with [`QuantizedNet::plan_for_batch`]).
    ///
    /// This is the **batch-fused** path: the whole batch runs as one
    /// interleaved layer loop — one im2col gather and one packed
    /// shift-MAC pass per layer per group — bit-identical to the
    /// per-image loop ([`QuantizedNet::logits_batch_per_image_into`], the
    /// retained oracle) because the kernel's per-output accumulation
    /// order does not depend on the column count
    /// ([`mfdfp_tensor::qgemm_fused_into_i8`]). Under the `parallel`
    /// feature, row-banded parallelism splits each layer's fused product
    /// across the pool when the whole batch's MACs cross the dispatch
    /// threshold; the pool dispatch costs O(threads) small allocations —
    /// the documented exception to the zero-allocation steady state.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BadConfig`] if `data` does not split into `n`
    /// equal images or `out` is not `n × classes`; propagates datapath
    /// faults.
    pub fn logits_batch_into(
        &self,
        data: &[f32],
        n: usize,
        ws: &mut Workspace,
        out: &mut [f32],
    ) -> Result<()> {
        self.check_batch_buffers(data, n, out.len())?;
        if n == 0 {
            return Ok(());
        }
        let len = self.forward_packed_batch(data, n, ws)?;
        assert_eq!(len, self.classes, "logit count mismatch");
        let codes = ws.codes(len * n);
        for (b, row) in out.chunks_exact_mut(self.classes).enumerate() {
            for (c, o) in row.iter_mut().enumerate() {
                *o = self.output_format.dequantize(codes[c * n + b] as i32);
            }
        }
        Ok(())
    }

    /// Shared shape validation of the flat batched-logits entries.
    fn check_batch_buffers(&self, data: &[f32], n: usize, out_len: usize) -> Result<()> {
        if n == 0 {
            if data.is_empty() && out_len == 0 {
                return Ok(());
            }
            return Err(CoreError::BadConfig("empty batch with non-empty buffers".into()));
        }
        if !data.len().is_multiple_of(n) {
            return Err(CoreError::BadConfig(format!(
                "batch of {} elements does not split into {n} images",
                data.len()
            )));
        }
        if out_len != n * self.classes {
            return Err(CoreError::BadConfig(format!(
                "logit buffer holds {out_len} values, batch needs {}",
                n * self.classes
            )));
        }
        Ok(())
    }

    /// The per-image batched-logits loop the fused path replaced, kept
    /// alive as the equivalence oracle (bit-identical to
    /// [`QuantizedNet::logits_batch_into`] by the fusion contract).
    ///
    /// With the `parallel` feature and `n ≥ 2`, image chunks fan out
    /// across the persistent pool: the first chunk runs inline on the
    /// caller with the passed (warmed) `ws`, the rest on pool workers in
    /// their own thread-resident workspaces (bit-identical: chunk
    /// boundaries depend only on the pool width, each image's datapath is
    /// untouched). The pool dispatch itself costs O(threads) small
    /// allocations.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BadConfig`] if `data` does not split into `n`
    /// equal images or `out` is not `n × classes`; propagates datapath
    /// faults from any image (first in chunk-claim order wins).
    pub fn logits_batch_per_image_into(
        &self,
        data: &[f32],
        n: usize,
        ws: &mut Workspace,
        out: &mut [f32],
    ) -> Result<()> {
        self.check_batch_buffers(data, n, out.len())?;
        if n == 0 {
            return Ok(());
        }
        let per_image = data.len() / n;
        #[cfg(feature = "parallel")]
        {
            let pool = mfdfp_rt::global();
            let workers = pool.threads().min(n);
            if n >= 2 && workers >= 2 {
                // Chunk boundaries are a pure function of the pool width,
                // exactly as in the all-spawned schedule — only *where*
                // each chunk runs changes, never what it computes.
                let chunk = n.div_ceil(workers);
                let error = std::sync::OnceLock::new();
                let (first, rest) = out.split_at_mut(chunk * self.classes);
                pool.scope(|scope| {
                    for (ci, out_chunk) in rest.chunks_mut(chunk * self.classes).enumerate() {
                        let error = &error;
                        scope.spawn(move || {
                            let i0 = (ci + 1) * chunk;
                            let result = with_thread_workspace(|tws| {
                                self.logits_rows_into(data, i0, per_image, tws, out_chunk)
                            });
                            if let Err(e) = result {
                                let _ = error.set(e);
                            }
                        });
                    }
                    // The caller's chunk runs inline on the caller's
                    // (already warmed) workspace while the pool works the
                    // rest; spawned chunks use their worker's persistent
                    // thread workspace.
                    if let Err(e) = self.logits_rows_into(data, 0, per_image, ws, first) {
                        let _ = error.set(e);
                    }
                });
                return match error.into_inner() {
                    Some(e) => Err(e),
                    None => Ok(()),
                };
            }
        }
        self.logits_rows_into(data, 0, per_image, ws, out)
    }

    /// Serial inner loop shared by the serial path and each parallel
    /// chunk: forwards images `i0..` into consecutive `classes`-wide rows
    /// of `out` (whose length fixes how many images the chunk covers).
    fn logits_rows_into(
        &self,
        data: &[f32],
        i0: usize,
        per_image: usize,
        ws: &mut Workspace,
        out: &mut [f32],
    ) -> Result<()> {
        for (j, row) in out.chunks_mut(self.classes).enumerate() {
            let img = &data[(i0 + j) * per_image..(i0 + j + 1) * per_image];
            let len = self.forward_packed(img, ws)?;
            assert_eq!(len, self.classes, "logit count mismatch");
            for (o, &c) in row.iter_mut().zip(ws.codes(len)) {
                *o = self.output_format.dequantize(c as i32);
            }
        }
        Ok(())
    }

    /// Parameter memory of the deployed network in bytes: 4-bit packed
    /// weights + 8-bit biases (Table 3's MF-DFP rows).
    pub fn memory_bytes(&self) -> u64 {
        let mut weights = 0u64;
        let mut biases = 0u64;
        for layer in &self.layers {
            match layer {
                QLayer::Conv(c) => {
                    weights += c.weights.count() as u64;
                    biases += c.bias.len() as u64;
                }
                QLayer::Linear(l) => {
                    weights += l.weights.count() as u64;
                    biases += l.bias.len() as u64;
                }
                _ => {}
            }
        }
        weights.div_ceil(2) + biases
    }
}

/// Output element count of one layer given its input length — the
/// workspace-planning walk ([`QuantizedNet::plan`]) and the forward loop
/// agree on these sizes by construction. A degenerate pool (zero
/// window/stride, rejected at run time) passes its input through so
/// planning never fails.
fn layer_out_len(layer: &QLayer, input_len: usize) -> usize {
    match layer {
        QLayer::Conv(c) => c.out_len(),
        QLayer::Linear(l) => l.out_features,
        QLayer::Pool { channels, in_h, in_w, window, stride, .. } => {
            match pool_out_dims(*in_h, *in_w, *window, *stride) {
                Ok((oh, ow)) => channels * oh * ow,
                Err(_) => input_len,
            }
        }
        QLayer::Relu => input_len,
    }
}

/// Converts float biases into accumulator-format integers: quantize to the
/// 8-bit bias format, then (exactly) left-shift to fractional length
/// `m + 7`.
fn align_biases(bias: &[f32], bias_fmt: DfpFormat, in_fmt: DfpFormat) -> Vec<i64> {
    let acc_frac = in_fmt.frac() as i32 + PRODUCT_FRAC_SHIFT;
    bias.iter()
        .map(|&b| realign(bias_fmt.quantize(b) as i64, bias_fmt.frac() as i32, acc_frac))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quantize::{build_working_net, calibrate, sync_quantized_params};
    use mfdfp_nn::zoo;
    use mfdfp_tensor::TensorRng;

    fn setup() -> (Network, QuantizationPlan, Vec<(Tensor, Vec<usize>)>) {
        let mut rng = TensorRng::seed_from(21);
        let mut net = zoo::quick_custom(3, 16, [4, 4, 8], 16, 10, &mut rng).unwrap();
        let x = rng.gaussian([4, 3, 16, 16], 0.0, 0.7);
        let calib = vec![(x, vec![0usize, 1, 2, 3])];
        let plan = calibrate(&mut net, &calib, 8).unwrap();
        (net, plan, calib)
    }

    #[test]
    fn builds_and_runs_end_to_end() {
        let (net, plan, calib) = setup();
        let q = QuantizedNet::from_network(&net, &plan).unwrap();
        assert_eq!(q.classes(), 10);
        let img = calib[0].0.index_axis0(0);
        let codes = q.forward_codes(&img).unwrap();
        assert_eq!(codes.len(), 10);
        let logits = q.logits_batch(&calib[0].0).unwrap();
        assert_eq!(logits.shape().dims(), &[4, 10]);
    }

    #[test]
    fn integer_engine_matches_fake_quant_network() {
        // The central bit-exactness claim: the fake-quantized float
        // network (training view) and the integer engine (hardware view)
        // compute the same activations, up to one LSB of float-summation
        // slack.
        let (net, plan, calib) = setup();
        let mut working = build_working_net(&net, &plan);
        sync_quantized_params(&net, &mut working, &plan);
        let q = QuantizedNet::from_network(&net, &plan).unwrap();
        let batch = &calib[0].0;
        let fq_logits = working.forward(batch, mfdfp_nn::Phase::Eval).unwrap();
        let hw_logits = q.logits_batch(batch).unwrap();
        let step = q.output_format().step();
        let mut exact = 0usize;
        for (a, b) in fq_logits.as_slice().iter().zip(hw_logits.as_slice()) {
            let lsb = ((a - b) / step).abs();
            assert!(lsb <= 1.0 + 1e-3, "fake-quant {a} vs hardware {b} ({lsb} LSB)");
            if lsb < 1e-3 {
                exact += 1;
            }
        }
        let frac = exact as f64 / fq_logits.len() as f64;
        assert!(frac >= 0.9, "only {frac:.2} of logits bit-exact");
    }

    #[test]
    fn packed_forward_matches_decode_reference() {
        // The tentpole contract at network scope: the packed shift-only
        // forward and the decode-based datapath agree code-for-code.
        let (net, plan, calib) = setup();
        let q = QuantizedNet::from_network(&net, &plan).unwrap();
        for s in 0..calib[0].0.shape().dim(0) {
            let img = calib[0].0.index_axis0(s);
            assert_eq!(
                q.forward_codes(&img).unwrap(),
                q.forward_codes_reference(&img).unwrap(),
                "sample {s} diverged between packed and decode paths"
            );
        }
    }

    #[test]
    fn planned_workspace_forward_matches_allocating_forward() {
        let (net, plan, calib) = setup();
        let q = QuantizedNet::from_network(&net, &plan).unwrap();
        let wplan = q.plan();
        assert_eq!(wplan.act_len, q.input_len().unwrap().max(wplan.act_len));
        assert!(wplan.im2col_len > 0, "conv layers must demand im2col staging");
        let mut ws = wplan.workspace();
        for s in 0..calib[0].0.shape().dim(0) {
            let img = calib[0].0.index_axis0(s);
            let direct = q.forward_codes(&img).unwrap();
            let via_ws = q.forward_codes_with(&img, &mut ws).unwrap();
            assert_eq!(via_ws, &direct[..], "sample {s}");
        }
        // A planned workspace is warm before the first pass.
        assert!(ws.is_warm_for(&wplan));
    }

    #[test]
    fn logits_batch_into_matches_logits_batch() {
        let (net, plan, calib) = setup();
        let q = QuantizedNet::from_network(&net, &plan).unwrap();
        let batch = &calib[0].0;
        let n = batch.shape().dim(0);
        let expect = q.logits_batch(batch).unwrap();
        let mut ws = q.plan().workspace();
        let mut out = vec![0.0f32; n * q.classes()];
        q.logits_batch_into(batch.as_slice(), n, &mut ws, &mut out).unwrap();
        assert_eq!(out, expect.as_slice());
        // Shape checks.
        assert!(q.logits_batch_into(batch.as_slice(), 3, &mut ws, &mut out).is_err());
        assert!(q.logits_batch_into(batch.as_slice(), n, &mut ws, &mut out[..1]).is_err());
        assert!(q.logits_batch_into(&[], 0, &mut ws, &mut []).is_ok());
        assert!(q.logits_batch_into(batch.as_slice(), 0, &mut ws, &mut out).is_err());
    }

    #[test]
    fn memory_is_one_eighth_of_float() {
        let (net, plan, _) = setup();
        let q = QuantizedNet::from_network(&net, &plan).unwrap();
        let float_bytes = net.param_count() as u64 * 4;
        let ratio = float_bytes as f64 / q.memory_bytes() as f64;
        // Weights dominate; biases (8-bit) nudge it slightly below 8×.
        assert!((7.0..=8.0).contains(&ratio), "compression ratio {ratio}");
    }

    #[test]
    fn rejects_lrn_and_wrong_plans() {
        let mut rng = TensorRng::seed_from(1);
        let lrn_net = zoo::alexnet(10, true, &mut rng).unwrap();
        let (net, plan, _) = setup();
        assert!(QuantizedNet::from_network(&lrn_net, &plan).is_err());
        let mut bad_plan = plan.clone();
        bad_plan.activation_bits = 16;
        assert!(matches!(
            QuantizedNet::from_network(&net, &bad_plan),
            Err(CoreError::BadConfig(_))
        ));
    }

    #[test]
    fn quantized_accuracy_tracks_float_on_easy_data() {
        // On well-separated data a freshly quantized net should agree with
        // the float net on most predictions even before fine-tuning.
        let (mut net, plan, _) = setup();
        let mut rng = TensorRng::seed_from(3);
        let x = rng.gaussian([16, 3, 16, 16], 0.0, 0.7);
        let q = QuantizedNet::from_network(&net, &plan).unwrap();
        let fl = net.forward(&x, mfdfp_nn::Phase::Eval).unwrap();
        let hw = q.logits_batch(&x).unwrap();
        let fl_pred = mfdfp_tensor::argmax_rows(&fl).unwrap();
        let hw_pred = mfdfp_tensor::argmax_rows(&hw).unwrap();
        let agree = fl_pred.iter().zip(&hw_pred).filter(|(a, b)| a == b).count();
        assert!(agree >= 10, "only {agree}/16 predictions agree after quantization");
    }
}
