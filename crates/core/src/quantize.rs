//! Network quantization (Algorithm 1, line 2): calibrate per-layer
//! dynamic fixed-point formats, round weights to powers of two, and build
//! the two quantized renditions of a float network — the *working network*
//! (fake-quantized float, for fine-tuning) and the *hardware network*
//! (integer codes, for deployment and the accelerator functional model).

use serde::{Deserialize, Serialize};

use mfdfp_dfp::{DfpFormat, Pow2Weight, RangeStats};
use mfdfp_nn::layers::FakeQuant;
use mfdfp_nn::{Layer, Network, Phase};
use mfdfp_tensor::Tensor;

use crate::error::{CoreError, Result};

/// The calibrated quantization plan of one network: which dynamic
/// fixed-point format each activation boundary uses.
///
/// Formats change only at *weighted-layer outputs* (the hardware's
/// Accumulator & Routing stage is the only place a radix shift exists —
/// ReLU, pooling and flatten inherit their input format), which keeps the
/// fake-quantized working network and the integer engine bit-aligned.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizationPlan {
    /// Activation bit-width (the paper: 8).
    pub activation_bits: u8,
    /// Format of the network input.
    pub input_format: DfpFormat,
    /// One entry per master-network layer: the format of that layer's
    /// output boundary. Non-weighted layers inherit their input's format.
    pub boundary_formats: Vec<DfpFormat>,
    /// One entry per master-network layer: `Some(format)` for weighted
    /// layers' biases (8-bit dynamic fixed point, fractional length capped
    /// at `m + 7` so bias alignment into the accumulator is exact).
    pub bias_formats: Vec<Option<DfpFormat>>,
}

impl QuantizationPlan {
    /// The format feeding layer `i` (input format for `i == 0`).
    pub fn format_before(&self, i: usize) -> DfpFormat {
        if i == 0 {
            self.input_format
        } else {
            self.boundary_formats[i - 1]
        }
    }
}

/// Calibrates a quantization plan by tracing the float network over
/// calibration batches and applying Ristretto-style range analysis
/// (choose the fractional length that just covers the observed maxima).
///
/// # Errors
///
/// Returns [`CoreError::Unquantizable`] if the network contains LRN or
/// pre-existing fake-quant layers, and propagates forward-pass errors.
///
/// # Examples
///
/// Calibrating a tiny float network on two batches of synthetic images
/// yields one boundary format per layer — weighted layers pick a fresh
/// format from the observed ranges (and a bias format), everything else
/// inherits its input's format:
///
/// ```
/// use mfdfp_core::calibrate;
/// use mfdfp_data::{Batcher, Split, SynthSpec};
/// use mfdfp_tensor::TensorRng;
///
/// let spec = SynthSpec {
///     classes: 2, channels: 1, size: 16, per_class: 4,
///     noise: 0.2, max_shift: 1, seed: 11,
/// };
/// let split = Split::generate(&spec, 2);
/// let mut rng = TensorRng::seed_from(1);
/// let mut net = mfdfp_nn::zoo::quick_custom(1, 16, [2, 2, 2], 4, 2, &mut rng)?;
///
/// let batches: Vec<_> = Batcher::new(&split.train, 4).iter().take(2).collect();
/// let plan = calibrate(&mut net, &batches, 8)?;
///
/// assert_eq!(plan.activation_bits, 8);
/// assert_eq!(plan.boundary_formats.len(), net.len());
/// // Exactly the weighted layers carry a bias format.
/// let weighted = net.layers().iter().filter(|l| l.is_weighted()).count();
/// assert_eq!(plan.bias_formats.iter().flatten().count(), weighted);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn calibrate(
    net: &mut Network,
    calibration: &[(Tensor, Vec<usize>)],
    activation_bits: u8,
) -> Result<QuantizationPlan> {
    if calibration.is_empty() {
        return Err(CoreError::BadConfig("calibration set must be non-empty".into()));
    }
    for layer in net.layers() {
        match layer {
            Layer::Lrn(_) => {
                return Err(CoreError::Unquantizable(
                    "LRN is not multiplier-free; remove it first (the paper does)".into(),
                ))
            }
            Layer::FakeQuant(_) => {
                return Err(CoreError::Unquantizable(
                    "network already contains fake-quant layers".into(),
                ))
            }
            Layer::Tanh(_) | Layer::Sigmoid(_) => {
                return Err(CoreError::Unquantizable(
                    "smooth non-linearities have no multiplier-free mapping; use ReLU".into(),
                ))
            }
            _ => {}
        }
    }
    let n_layers = net.len();
    let mut stats = vec![RangeStats::new(); n_layers + 1];
    for (x, _) in calibration {
        let trace = net.forward_trace(x, Phase::Eval)?;
        for (s, t) in stats.iter_mut().zip(&trace) {
            s.observe_slice(t.as_slice());
        }
    }
    let input_format = stats[0].choose_format(activation_bits);

    // Walk layers: weighted layers get fresh output formats; everything
    // else inherits.
    let mut boundary_formats = Vec::with_capacity(n_layers);
    let mut bias_formats = Vec::with_capacity(n_layers);
    let mut current = input_format;
    for (i, layer) in net.layers().iter().enumerate() {
        if layer.is_weighted() {
            let fresh = stats[i + 1].choose_format(activation_bits);
            // Bias format: 8-bit DFP covering the bias range, fractional
            // length capped at m+7 so accumulator alignment is a pure
            // (exact) left shift.
            let m = current.frac() as i32;
            let bias = bias_range(layer);
            let natural = RangeStats::frac_for_max_abs(bias, activation_bits) as i32;
            let frac = natural.min(m + 7).clamp(i8::MIN as i32, i8::MAX as i32) as i8;
            bias_formats.push(Some(DfpFormat::new(activation_bits, frac)?));
            current = fresh;
        } else {
            bias_formats.push(None);
        }
        boundary_formats.push(current);
    }
    Ok(QuantizationPlan { activation_bits, input_format, boundary_formats, bias_formats })
}

fn bias_range(layer: &Layer) -> f32 {
    match layer {
        Layer::Conv(c) => c.bias().abs_max(),
        Layer::Linear(l) => l.bias().abs_max(),
        _ => 0.0,
    }
}

/// Builds the Phase-1/2 *working network*: a clone of the master with
/// fake-quantization inserted at the input, after every weighted layer,
/// and after every average-pooling layer (whose divisions leave the grid).
///
/// Forwarding through this network computes exactly what the hardware
/// computes (up to float-summation rounding inside a layer), while its
/// backward pass delivers straight-through gradients for the shadow
/// weights.
pub fn build_working_net(master: &Network, plan: &QuantizationPlan) -> Network {
    let mut net = Network::new(format!("{}-quantized", master.name()));
    net.push(Layer::FakeQuant(fq(plan.input_format)));
    for (i, layer) in master.layers().iter().enumerate() {
        net.push(layer.clone());
        let needs_fq = match layer {
            Layer::Conv(_) | Layer::Linear(_) => true,
            Layer::Pool(p) => matches!(p.kind(), mfdfp_tensor::PoolKind::Avg),
            _ => false,
        };
        if needs_fq {
            net.push(Layer::FakeQuant(fq(plan.boundary_formats[i])));
        }
    }
    net
}

fn fq(format: DfpFormat) -> FakeQuant {
    FakeQuant::new(format.step(), format.min_value(), format.max_value())
}

/// Copies the master's float parameters into the working network in
/// quantized form: weights rounded to the nearest power of two
/// (deterministic, the paper's choice), biases rounded to their 8-bit
/// dynamic fixed-point format.
///
/// This is Algorithm 1 lines 2/7/17 — rerun after every optimizer step on
/// the master.
///
/// # Panics
///
/// Panics if the two networks' weighted layers do not correspond
/// one-to-one (they always do when `working` came from
/// [`build_working_net`] on this master).
pub fn sync_quantized_params(master: &Network, working: &mut Network, plan: &QuantizationPlan) {
    let mut sources: Vec<(&Tensor, &Tensor, DfpFormat)> = Vec::new();
    for (i, layer) in master.layers().iter().enumerate() {
        match layer {
            Layer::Conv(c) => {
                sources.push((c.weights(), c.bias(), plan.bias_formats[i].expect("weighted")))
            }
            Layer::Linear(l) => {
                sources.push((l.weights(), l.bias(), plan.bias_formats[i].expect("weighted")))
            }
            _ => {}
        }
    }
    let mut si = 0usize;
    for layer in working.layers_mut() {
        if !layer.is_weighted() {
            continue;
        }
        assert!(si < sources.len(), "working network has more weighted layers than master");
        let (src_w, src_b, bias_fmt) = &sources[si];
        let mut w = (*src_w).clone();
        w.map_in_place(|v| Pow2Weight::from_f32(v).to_f32());
        let mut b = (*src_b).clone();
        b.map_in_place(|v| bias_fmt.round_trip(v));
        match layer {
            Layer::Conv(c) => {
                *c.weights_mut() = w;
                *c.bias_mut() = b;
            }
            Layer::Linear(l) => {
                *l.weights_mut() = w;
                *l.bias_mut() = b;
            }
            _ => unreachable!("is_weighted covers conv and linear only"),
        }
        si += 1;
    }
    assert_eq!(si, sources.len(), "weighted layer mismatch between master and working nets");
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfdfp_nn::zoo;
    use mfdfp_tensor::TensorRng;

    fn small_net_and_batch() -> (Network, Vec<(Tensor, Vec<usize>)>) {
        let mut rng = TensorRng::seed_from(5);
        let net = zoo::quick_custom(3, 16, [4, 4, 8], 16, 10, &mut rng).unwrap();
        let x = rng.gaussian([4, 3, 16, 16], 0.0, 1.0);
        (net, vec![(x, vec![0, 1, 2, 3])])
    }

    #[test]
    fn calibrate_produces_one_format_per_boundary() {
        let (mut net, calib) = small_net_and_batch();
        let plan = calibrate(&mut net, &calib, 8).unwrap();
        assert_eq!(plan.boundary_formats.len(), net.len());
        assert_eq!(plan.bias_formats.len(), net.len());
        assert_eq!(plan.activation_bits, 8);
        // Non-weighted layers inherit the previous boundary's format.
        for (i, layer) in net.layers().iter().enumerate() {
            if !layer.is_weighted() {
                assert_eq!(plan.boundary_formats[i], plan.format_before(i), "layer {i}");
                assert!(plan.bias_formats[i].is_none());
            } else {
                assert!(plan.bias_formats[i].is_some());
            }
        }
    }

    #[test]
    fn calibrated_formats_cover_observed_ranges() {
        let (mut net, calib) = small_net_and_batch();
        let plan = calibrate(&mut net, &calib, 8).unwrap();
        let trace = net.forward_trace(&calib[0].0, Phase::Eval).unwrap();
        assert!(plan.input_format.max_value() >= trace[0].abs_max() * 0.99);
        for (i, layer) in net.layers().iter().enumerate() {
            if layer.is_weighted() {
                assert!(
                    plan.boundary_formats[i].max_value() >= trace[i + 1].abs_max() * 0.99,
                    "layer {i}: fmt {} vs max {}",
                    plan.boundary_formats[i],
                    trace[i + 1].abs_max()
                );
            }
        }
    }

    #[test]
    fn formats_are_dynamic_across_layers() {
        // The whole point of *dynamic* fixed point: at least two distinct
        // fractional lengths should appear in a real network.
        let (mut net, calib) = small_net_and_batch();
        let plan = calibrate(&mut net, &calib, 8).unwrap();
        let mut fracs: Vec<i8> = plan.boundary_formats.iter().map(|f| f.frac()).collect();
        fracs.push(plan.input_format.frac());
        fracs.sort_unstable();
        fracs.dedup();
        assert!(fracs.len() >= 2, "expected dynamic formats, got {fracs:?}");
    }

    #[test]
    fn calibrate_rejects_lrn_and_empty_calibration() {
        let mut rng = TensorRng::seed_from(5);
        let mut net = zoo::alexnet(10, true, &mut rng).unwrap();
        let x = Tensor::zeros([1, 3, 227, 227]);
        let err = calibrate(&mut net, &[(x, vec![0])], 8).unwrap_err();
        assert!(matches!(err, CoreError::Unquantizable(_)));
        let (mut small, _) = small_net_and_batch();
        assert!(matches!(calibrate(&mut small, &[], 8), Err(CoreError::BadConfig(_))));
    }

    #[test]
    fn working_net_structure() {
        let (mut net, calib) = small_net_and_batch();
        let plan = calibrate(&mut net, &calib, 8).unwrap();
        let working = build_working_net(&net, &plan);
        // Input FQ + per-weighted FQ (5 weighted) + per-avg-pool FQ (2).
        let fq_count = working.layers().iter().filter(|l| matches!(l, Layer::FakeQuant(_))).count();
        assert_eq!(fq_count, 1 + 5 + 2);
        assert_eq!(working.param_count(), net.param_count());
    }

    #[test]
    fn sync_rounds_weights_to_powers_of_two() {
        let (mut net, calib) = small_net_and_batch();
        let plan = calibrate(&mut net, &calib, 8).unwrap();
        let mut working = build_working_net(&net, &plan);
        sync_quantized_params(&net, &mut working, &plan);
        let mut checked = 0;
        for layer in working.layers() {
            let w = match layer {
                Layer::Conv(c) => c.weights(),
                Layer::Linear(l) => l.weights(),
                _ => continue,
            };
            for &v in w.as_slice() {
                let q = Pow2Weight::from_f32(v).to_f32();
                assert_eq!(v, q, "weight {v} is not an exact power of two");
                checked += 1;
            }
        }
        assert!(checked > 100);
    }

    #[test]
    fn working_net_forward_differs_but_correlates_with_master() {
        let (mut net, calib) = small_net_and_batch();
        let plan = calibrate(&mut net, &calib, 8).unwrap();
        let mut working = build_working_net(&net, &plan);
        sync_quantized_params(&net, &mut working, &plan);
        let x = &calib[0].0;
        let fl = net.forward(x, Phase::Eval).unwrap();
        let qn = working.forward(x, Phase::Eval).unwrap();
        assert_eq!(fl.shape(), qn.shape());
        // Quantization perturbs but does not destroy the logits.
        assert_ne!(fl.as_slice(), qn.as_slice());
        let corr = fl.dot(&qn).unwrap() / (fl.norm_sq().sqrt() * qn.norm_sq().sqrt());
        assert!(corr > 0.5, "correlation {corr} too low — quantization broke the net");
    }
}
