//! Shadow-weight fine-tuning (Algorithm 1, Phases 1 and 2).
//!
//! The trainer keeps **two** parameter sets, following Courbariaux et al.:
//! a full-precision *master* (updated by SGD) and a quantized *working*
//! network (used for every forward/backward pass). Before each batch the
//! master's weights are deterministically quantized into the working net;
//! gradients computed through the quantized forward pass (with
//! straight-through fake-quant activations) are applied to the master.
//! Small gradients therefore accumulate in the master until they flip a
//! weight to the next power of two — the mechanism that makes
//! integer-power-of-two training converge.

use mfdfp_nn::{
    distillation_loss, softmax_cross_entropy, Accuracy, DistillConfig, EpochStats, Network, Phase,
    Sgd, SgdConfig,
};
use mfdfp_tensor::Tensor;

use crate::error::Result;
use crate::quantize::{build_working_net, sync_quantized_params, QuantizationPlan};

/// The loss driving fine-tuning.
#[derive(Debug)]
enum LossKind {
    /// Phase 1: hard data labels only.
    HardLabels,
    /// Phase 2: hard labels + student–teacher term against a frozen
    /// float teacher.
    Distill { teacher: Network, cfg: DistillConfig },
}

/// Fine-tunes a float network under MF-DFP quantization.
///
/// # Examples
///
/// ```no_run
/// use mfdfp_core::{calibrate, ShadowTrainer};
/// use mfdfp_nn::{zoo, SgdConfig};
/// use mfdfp_tensor::{Tensor, TensorRng};
///
/// let mut rng = TensorRng::seed_from(0);
/// let mut net = zoo::quick_custom(3, 16, [8, 8, 16], 32, 10, &mut rng)?;
/// let calib = vec![(rng.gaussian([8, 3, 16, 16], 0.0, 1.0), vec![0; 8])];
/// let plan = calibrate(&mut net, &calib, 8)?;
/// let mut trainer = ShadowTrainer::new(net, plan, SgdConfig::default())?;
/// let stats = trainer.train_epoch(calib)?;
/// println!("loss {}", stats.mean_loss);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct ShadowTrainer {
    master: Network,
    working: Network,
    plan: QuantizationPlan,
    sgd: Sgd,
    loss: LossKind,
}

impl ShadowTrainer {
    /// Creates a Phase-1 trainer (hard labels) from a float master and its
    /// calibrated plan.
    ///
    /// # Errors
    ///
    /// Returns a config error for an invalid SGD configuration.
    pub fn new(master: Network, plan: QuantizationPlan, sgd: SgdConfig) -> Result<Self> {
        let working = build_working_net(&master, &plan);
        Ok(ShadowTrainer { master, working, plan, sgd: Sgd::new(sgd)?, loss: LossKind::HardLabels })
    }

    /// Switches to Phase-2 student–teacher training: subsequent epochs use
    /// `L = H(Y, P_S) + β·H(P_T, P_S)` against the frozen `teacher`.
    ///
    /// # Errors
    ///
    /// Returns a config error for an invalid distillation configuration.
    pub fn enable_distillation(&mut self, teacher: Network, cfg: DistillConfig) -> Result<()> {
        cfg.validate().map_err(crate::error::CoreError::Nn)?;
        self.loss = LossKind::Distill { teacher, cfg };
        Ok(())
    }

    /// Whether Phase-2 distillation is active.
    pub fn distilling(&self) -> bool {
        matches!(self.loss, LossKind::Distill { .. })
    }

    /// Current learning rate.
    pub fn learning_rate(&self) -> f32 {
        self.sgd.learning_rate()
    }

    /// Overrides the learning rate (driven by the plateau schedule).
    pub fn set_learning_rate(&mut self, lr: f32) {
        self.sgd.set_learning_rate(lr);
    }

    /// The float master network (the shadow weights).
    pub fn master(&self) -> &Network {
        &self.master
    }

    /// The quantization plan in force.
    pub fn plan(&self) -> &QuantizationPlan {
        &self.plan
    }

    /// Consumes the trainer, returning the fine-tuned float master.
    pub fn into_master(self) -> Network {
        self.master
    }

    /// Runs one fine-tuning epoch over `batches` (Algorithm 1 lines 3–8 /
    /// 11–18).
    ///
    /// # Errors
    ///
    /// Propagates forward/backward/loss errors.
    pub fn train_epoch<I>(&mut self, batches: I) -> Result<EpochStats>
    where
        I: IntoIterator<Item = (Tensor, Vec<usize>)>,
    {
        let mut loss_sum = 0.0f64;
        let mut nbatches = 0usize;
        let mut acc = Accuracy::new(1);
        for (x, labels) in batches {
            // Quantize the shadow weights into the working net.
            sync_quantized_params(&self.master, &mut self.working, &self.plan);
            // Forward through the quantized network.
            let logits = self.working.forward(&x, Phase::Train)?;
            acc.update(&logits, &labels)?;
            let (loss, grad) = match &mut self.loss {
                LossKind::HardLabels => softmax_cross_entropy(&logits, &labels)?,
                LossKind::Distill { teacher, cfg } => {
                    let t_logits = teacher.forward(&x, Phase::Eval)?;
                    distillation_loss(&logits, &t_logits, &labels, cfg)?
                }
            };
            // Backward through the quantized network (straight-through
            // estimators at the fake-quant boundaries)…
            self.working.backward(&grad)?;
            // …but apply the gradients to the full-precision master.
            self.copy_grads_to_master();
            self.sgd.step(&mut self.master);
            self.working.zero_grads();
            loss_sum += loss as f64;
            nbatches += 1;
        }
        Ok(EpochStats {
            mean_loss: if nbatches == 0 { 0.0 } else { (loss_sum / nbatches as f64) as f32 },
            accuracy: acc.top1(),
            samples: acc.total(),
        })
    }

    /// Evaluates the *quantized* network (working net, eval mode) over
    /// `batches`, tracking top-1/top-`k` accuracy. Syncs weights first, so
    /// this always reflects the current master.
    ///
    /// # Errors
    ///
    /// Propagates forward-pass errors.
    pub fn evaluate_quantized<I>(&mut self, batches: I, k: usize) -> Result<Accuracy>
    where
        I: IntoIterator<Item = (Tensor, Vec<usize>)>,
    {
        sync_quantized_params(&self.master, &mut self.working, &self.plan);
        let mut acc = Accuracy::new(k);
        for (x, labels) in batches {
            let logits = self.working.forward(&x, Phase::Eval)?;
            acc.update(&logits, &labels)?;
        }
        Ok(acc)
    }

    fn copy_grads_to_master(&mut self) {
        let mut grads: Vec<Tensor> = Vec::new();
        self.working.visit_params(&mut |_, g| grads.push(g.clone()));
        let mut i = 0usize;
        self.master.visit_params(&mut |_, g| {
            assert!(i < grads.len(), "gradient structure mismatch");
            *g = grads[i].clone();
            i += 1;
        });
        assert_eq!(i, grads.len(), "gradient structure mismatch");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quantize::calibrate;
    use mfdfp_data::{Batcher, Split, SynthSpec};
    use mfdfp_nn::{zoo, DistillMode};
    use mfdfp_tensor::TensorRng;

    fn tiny_problem() -> (Network, Split) {
        let mut rng = TensorRng::seed_from(77);
        let net = zoo::quick_custom(2, 16, [4, 4, 4], 16, 4, &mut rng).unwrap();
        let spec = SynthSpec {
            classes: 4,
            channels: 2,
            size: 16,
            per_class: 20,
            noise: 0.3,
            max_shift: 1,
            seed: 5,
        };
        (net, Split::generate(&spec, 8))
    }

    #[test]
    fn shadow_training_reduces_quantized_loss() {
        let (mut net, split) = tiny_problem();
        let calib: Vec<_> = Batcher::new(&split.train, 16).iter().take(2).collect();
        let plan = calibrate(&mut net, &calib, 8).unwrap();
        let sgd = SgdConfig { learning_rate: 0.02, momentum: 0.9, weight_decay: 1e-4 };
        let mut trainer = ShadowTrainer::new(net, plan, sgd).unwrap();
        let mut first = f32::NAN;
        let mut last = f32::NAN;
        for epoch in 0..8 {
            let batches: Vec<_> = Batcher::new(&split.train, 16).shuffled(epoch as u64).collect();
            let stats = trainer.train_epoch(batches).unwrap();
            if epoch == 0 {
                first = stats.mean_loss;
            }
            last = stats.mean_loss;
        }
        assert!(last < first, "quantized training loss did not fall: {first} → {last}");
        // Evaluation runs the quantized net.
        let test: Vec<_> = Batcher::new(&split.test, 16).iter().collect();
        let acc = trainer.evaluate_quantized(test, 1).unwrap();
        assert!(acc.top1() > 0.3, "accuracy {} barely above chance", acc.top1());
    }

    #[test]
    fn master_weights_stay_full_precision() {
        let (mut net, split) = tiny_problem();
        let calib: Vec<_> = Batcher::new(&split.train, 16).iter().take(1).collect();
        let plan = calibrate(&mut net, &calib, 8).unwrap();
        let sgd = SgdConfig { learning_rate: 0.05, momentum: 0.9, weight_decay: 0.0 };
        let mut trainer = ShadowTrainer::new(net, plan, sgd).unwrap();
        let batches: Vec<_> = Batcher::new(&split.train, 16).iter().collect();
        trainer.train_epoch(batches).unwrap();
        // After training, master weights must NOT all be powers of two —
        // they are the accumulating shadow copy.
        let mut non_pow2 = 0usize;
        let mut master = trainer.into_master();
        master.visit_params(&mut |v, _| {
            for &w in v.as_slice() {
                let q = mfdfp_dfp::Pow2Weight::from_f32(w).to_f32();
                if w != q && w != 0.0 {
                    non_pow2 += 1;
                }
            }
        });
        assert!(non_pow2 > 100, "master collapsed onto the quantized grid");
    }

    #[test]
    fn gradient_accumulation_flips_quantized_weights_eventually() {
        // The Courbariaux mechanism: repeated small gradients must
        // eventually change the quantized forward weights.
        let (mut net, split) = tiny_problem();
        let calib: Vec<_> = Batcher::new(&split.train, 16).iter().take(1).collect();
        let plan = calibrate(&mut net, &calib, 8).unwrap();
        let sgd = SgdConfig { learning_rate: 0.05, momentum: 0.9, weight_decay: 0.0 };
        let mut trainer = ShadowTrainer::new(net, plan.clone(), sgd).unwrap();
        let before = trainer.master().clone();
        let mut q_before = build_working_net(&before, &plan);
        sync_quantized_params(&before, &mut q_before, &plan);
        let snap_before = q_before.snapshot_params();
        for epoch in 0..5 {
            let batches: Vec<_> = Batcher::new(&split.train, 16).shuffled(epoch as u64).collect();
            trainer.train_epoch(batches).unwrap();
        }
        let after = trainer.into_master();
        let mut q_after = build_working_net(&after, &plan);
        sync_quantized_params(&after, &mut q_after, &plan);
        let snap_after = q_after.snapshot_params();
        let mut flips = 0usize;
        for (a, b) in snap_before.iter().zip(&snap_after) {
            for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
                if x != y {
                    flips += 1;
                }
            }
        }
        assert!(flips > 10, "no quantized weights flipped after 5 epochs");
        // Silence unused-mut style warnings on helper networks.
        let _ = (before.param_count(), after.param_count());
    }

    #[test]
    fn distillation_mode_trains() {
        let (mut net, split) = tiny_problem();
        let calib: Vec<_> = Batcher::new(&split.train, 16).iter().take(1).collect();
        let plan = calibrate(&mut net, &calib, 8).unwrap();
        let teacher = net.clone();
        let sgd = SgdConfig { learning_rate: 0.02, momentum: 0.9, weight_decay: 0.0 };
        let mut trainer = ShadowTrainer::new(net, plan, sgd).unwrap();
        let cfg = DistillConfig { temperature: 5.0, beta: 0.5, mode: DistillMode::Exact };
        trainer.enable_distillation(teacher, cfg).unwrap();
        assert!(trainer.distilling());
        let batches: Vec<_> = Batcher::new(&split.train, 16).iter().collect();
        let stats = trainer.train_epoch(batches).unwrap();
        assert!(stats.mean_loss.is_finite());
        assert!(stats.samples > 0);
    }
}
