//! # mfdfp-core — the MF-DFP pipeline (the paper's contribution)
//!
//! Rust implementation of Algorithm 1 of *"Hardware-Software Codesign of
//! Accurate, Multiplier-free Deep Neural Networks"* (Tann, Hashemi, Bahar,
//! Reda — DAC 2017): mapping trained floating-point DNNs to 8-bit dynamic
//! fixed-point networks with integer power-of-two weights, **without
//! changing the architecture**.
//!
//! * [`calibrate`] / [`QuantizationPlan`] — Ristretto-style range analysis
//!   picking each layer's fractional length (line 2 of Algorithm 1).
//! * [`ShadowTrainer`] — Phase 1/2 fine-tuning with shadow weights
//!   (quantized forward, full-precision update) and optional
//!   student–teacher distillation.
//! * [`run_pipeline`] — the full Algorithm 1 with the paper's phase-switch
//!   heuristic (enter Phase 2 from a near-converged, non-optimal
//!   checkpoint) and plateau learning-rate protocol.
//! * [`QuantizedNet`] — the deployed artifact: 4-bit power-of-two weights,
//!   8-bit activations, integer-only inference through the accelerator's
//!   functional datapath (`mfdfp-accel`), bit-for-bit.
//! * [`Ensemble`] — Phase 3: logit-averaged ensembles of MF-DFP networks.
//! * [`memory_report`] — Table 3 parameter-memory accounting.
//!
//! # Examples
//!
//! ```no_run
//! use mfdfp_core::{run_pipeline, PipelineConfig};
//! use mfdfp_data::{Split, SynthSpec};
//! use mfdfp_nn::zoo;
//! use mfdfp_tensor::TensorRng;
//!
//! let split = Split::generate(&SynthSpec::cifar(100, 42), 20);
//! let mut rng = TensorRng::seed_from(0);
//! let float_net = zoo::cifar10_full(10, &mut rng)?;
//! // (train the float net first — see the examples/ directory)
//! let outcome = run_pipeline(float_net, &split.train, &split.test,
//!                            &PipelineConfig::paper_defaults())?;
//! println!("quantized top-1: {:.2}%", outcome.final_top1 * 100.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![deny(missing_docs)]

mod analysis;
mod deploy;
mod ensemble;
mod error;
pub mod image;
mod memory;
mod pipeline;
mod qnet;
mod quantize;
mod shadow;

pub use analysis::{exponent_histogram, quantization_errors, ExponentHistogram, LayerQuantError};
pub use deploy::{from_bytes, to_bytes, MAGIC, VERSION};
pub use ensemble::Ensemble;
pub use error::{CoreError, Result};
pub use image::{
    to_image, write_image_atomic, ImageView, ZooBuilder, ZooView, IMAGE_MAGIC, IMAGE_VERSION,
    ZOO_MAGIC,
};
pub use memory::{memory_report, MemoryReport, MIB};
pub use mfdfp_dfp::AlignedBytes;
pub use mfdfp_tensor::{Workspace, WorkspacePlan};
pub use pipeline::{run_pipeline, EpochPoint, PhaseTag, PipelineConfig, PipelineOutcome};
pub use qnet::{QLayer, QuantizedNet};
pub use quantize::{build_working_net, calibrate, sync_quantized_params, QuantizationPlan};
pub use shadow::ShadowTrainer;
