//! Property tests of the packed shift-only GEMM: agreement with the
//! decode-based `mul_shift` oracle for arbitrary shapes (including the
//! odd-column pad nibble at every row boundary), and scheduling
//! determinism (serial ≡ parallel, band ≡ full product).

use mfdfp_dfp::{realign, saturate, PackedPow2Matrix, Pow2Weight};
use mfdfp_tensor::{qgemm, qgemm_i8, qgemm_into, qgemm_into_i8, qgemm_serial};
use proptest::prelude::*;

/// Decode-based oracle: per-element `Pow2Weight::mul_shift`, exact i64
/// accumulation, bias, then the routing realign + saturate.
fn decode_oracle(
    w: &PackedPow2Matrix,
    xt: &[i32],
    ncols: usize,
    bias: &[i64],
    acc_frac: i32,
    out_frac: i32,
) -> Vec<i8> {
    let k = w.cols();
    let mut out = Vec::with_capacity(w.rows() * ncols);
    for (r, &b) in bias.iter().enumerate() {
        for j in 0..ncols {
            let mut acc = b;
            for c in 0..k {
                acc += w.get(r, c).mul_shift(xt[c * ncols + j]) as i64;
            }
            out.push(saturate(realign(acc, acc_frac, out_frac), 8) as i8);
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// qgemm == decode oracle for random shapes, codes and inputs.
    /// `cols` spans odd and even values so the row-boundary pad nibble is
    /// exercised constantly; `acc_frac`/`out_frac` spans down- and
    /// up-routing (the latter saturates frequently).
    #[test]
    fn qgemm_matches_decode_oracle(
        rows in 1usize..7,
        cols in 1usize..34,
        ncols in 1usize..6,
        seed in 0u64..100_000,
        acc_frac in 7i32..15,
        out_frac in 0i32..8,
    ) {
        let mut state = seed.wrapping_mul(0xD1B54A32D192ED03) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let codes: Vec<Pow2Weight> = (0..rows * cols)
            .map(|_| Pow2Weight::decode4((next() % 16) as u8).unwrap())
            .collect();
        let w = PackedPow2Matrix::from_weights(rows, cols, &codes).unwrap();
        let xt: Vec<i32> = (0..ncols * cols).map(|_| (next() % 256) as u8 as i8 as i32).collect();
        let bias: Vec<i64> = (0..rows).map(|_| (next() % 8192) as i64 - 4096).collect();
        let got = qgemm(&w, &xt, ncols, &bias, acc_frac, out_frac).unwrap();
        prop_assert_eq!(got, decode_oracle(&w, &xt, ncols, &bias, acc_frac, out_frac));
    }

    /// Any row band of the product equals the corresponding slice of the
    /// full product — the invariant grouped convolutions rely on.
    #[test]
    fn row_bands_compose_to_full_product(
        rows in 2usize..8,
        cols in 1usize..20,
        ncols in 1usize..5,
        seed in 0u64..100_000,
        split in 1usize..7,
    ) {
        let split = split.min(rows - 1);
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let codes: Vec<Pow2Weight> = (0..rows * cols)
            .map(|_| Pow2Weight::decode4((next() % 16) as u8).unwrap())
            .collect();
        let w = PackedPow2Matrix::from_weights(rows, cols, &codes).unwrap();
        let xt: Vec<i32> = (0..ncols * cols).map(|_| (next() % 200) as i32 - 100).collect();
        let bias: Vec<i64> = (0..rows).map(|r| r as i64 * 17 - 40).collect();
        let full = qgemm(&w, &xt, ncols, &bias, 12, 4).unwrap();
        let mut pieced = vec![0i8; rows * ncols];
        let (lo, hi) = pieced.split_at_mut(split * ncols);
        qgemm_into(&w, 0, split, &xt, ncols, &bias[..split], 12, 4, lo).unwrap();
        qgemm_into(&w, split, rows - split, &xt, ncols, &bias[split..], 12, 4, hi).unwrap();
        prop_assert_eq!(pieced, full);
    }

    /// Scheduling determinism: the dispatching entry point, the serial
    /// kernel and (with the feature) the forced-parallel kernel all emit
    /// identical bytes.
    #[test]
    fn qgemm_schedules_are_bit_identical(
        rows in 1usize..20,
        cols in 1usize..16,
        ncols in 1usize..6,
        seed in 0u64..100_000,
    ) {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let codes: Vec<Pow2Weight> = (0..rows * cols)
            .map(|_| Pow2Weight::decode4((next() % 16) as u8).unwrap())
            .collect();
        let w = PackedPow2Matrix::from_weights(rows, cols, &codes).unwrap();
        let xt: Vec<i32> = (0..ncols * cols).map(|_| (next() % 256) as u8 as i8 as i32).collect();
        let bias: Vec<i64> = (0..rows).map(|_| (next() % 1024) as i64 - 512).collect();
        let dispatch = qgemm(&w, &xt, ncols, &bias, 13, 5).unwrap();
        let serial = qgemm_serial(&w, &xt, ncols, &bias, 13, 5).unwrap();
        prop_assert_eq!(&dispatch, &serial);
        #[cfg(feature = "parallel")]
        {
            let parallel =
                mfdfp_tensor::qgemm_parallel(&w, &xt, ncols, &bias, 13, 5).unwrap();
            prop_assert_eq!(&serial, &parallel);
        }
    }

    /// The `i8` streaming entry (no operand audit, in-register widening)
    /// equals both the `i32` entry on the widened copy of the same codes
    /// and the decode oracle — the structural-audit claim: every `i8`
    /// bit pattern is a legal operand.
    #[test]
    fn i8_entry_matches_i32_entry_and_oracle(
        rows in 1usize..8,
        cols in 1usize..34,
        ncols in 1usize..6,
        seed in 0u64..100_000,
        acc_frac in 7i32..15,
        out_frac in 0i32..8,
    ) {
        let mut state = seed.wrapping_mul(0xA24BAED4963EE407) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let codes: Vec<Pow2Weight> = (0..rows * cols)
            .map(|_| Pow2Weight::decode4((next() % 16) as u8).unwrap())
            .collect();
        let w = PackedPow2Matrix::from_weights(rows, cols, &codes).unwrap();
        let xt8: Vec<i8> = (0..ncols * cols).map(|_| (next() % 256) as u8 as i8).collect();
        let xt32: Vec<i32> = xt8.iter().map(|&x| x as i32).collect();
        let bias: Vec<i64> = (0..rows).map(|_| (next() % 8192) as i64 - 4096).collect();
        let got8 = qgemm_i8(&w, &xt8, ncols, &bias, acc_frac, out_frac).unwrap();
        let got32 = qgemm(&w, &xt32, ncols, &bias, acc_frac, out_frac).unwrap();
        prop_assert_eq!(&got8, &got32);
        prop_assert_eq!(got8, decode_oracle(&w, &xt32, ncols, &bias, acc_frac, out_frac));
    }

    /// `i8` row bands compose like the `i32` ones — the invariant the
    /// grouped-convolution hot path relies on after the streaming switch.
    #[test]
    fn i8_row_bands_compose_to_full_product(
        rows in 2usize..8,
        cols in 1usize..20,
        ncols in 1usize..5,
        seed in 0u64..100_000,
        split in 1usize..7,
    ) {
        let split = split.min(rows - 1);
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let codes: Vec<Pow2Weight> = (0..rows * cols)
            .map(|_| Pow2Weight::decode4((next() % 16) as u8).unwrap())
            .collect();
        let w = PackedPow2Matrix::from_weights(rows, cols, &codes).unwrap();
        let xt: Vec<i8> = (0..ncols * cols).map(|_| ((next() % 200) as i32 - 100) as i8).collect();
        let bias: Vec<i64> = (0..rows).map(|r| r as i64 * 17 - 40).collect();
        let full = qgemm_i8(&w, &xt, ncols, &bias, 12, 4).unwrap();
        let mut pieced = vec![0i8; rows * ncols];
        let (lo, hi) = pieced.split_at_mut(split * ncols);
        qgemm_into_i8(&w, 0, split, &xt, ncols, &bias[..split], 12, 4, lo).unwrap();
        qgemm_into_i8(&w, split, rows - split, &xt, ncols, &bias[split..], 12, 4, hi).unwrap();
        prop_assert_eq!(pieced, full);
    }
}
