//! Property-based tests of the tensor algebra: the linear-operator laws
//! backprop silently assumes.

use mfdfp_tensor::{
    col2im, conv2d_backward, conv2d_forward, gemm, im2col, pool_backward, pool_forward, softmax,
    ConvGeometry, PoolGeometry, PoolKind, Shape, Tensor, Transpose,
};
use proptest::prelude::*;

fn tensor_strategy(len: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-2.0f32..2.0, len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// GEMM is linear in its left operand: (A + B)C = AC + BC.
    #[test]
    fn gemm_left_linearity(
        a in tensor_strategy(6),
        b in tensor_strategy(6),
        c in tensor_strategy(8),
    ) {
        let ta = Tensor::from_vec(a, Shape::d2(3, 2)).unwrap();
        let tb = Tensor::from_vec(b, Shape::d2(3, 2)).unwrap();
        let tc = Tensor::from_vec(c, Shape::d2(2, 4)).unwrap();
        let lhs = gemm(&(&ta + &tb), Transpose::No, &tc, Transpose::No).unwrap();
        let rhs = &gemm(&ta, Transpose::No, &tc, Transpose::No).unwrap()
            + &gemm(&tb, Transpose::No, &tc, Transpose::No).unwrap();
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    /// (AB)ᵀ = BᵀAᵀ, expressed through the transpose flags.
    #[test]
    fn gemm_transpose_identity(a in tensor_strategy(6), b in tensor_strategy(12)) {
        let ta = Tensor::from_vec(a, Shape::d2(2, 3)).unwrap();
        let tb = Tensor::from_vec(b, Shape::d2(3, 4)).unwrap();
        let ab = gemm(&ta, Transpose::No, &tb, Transpose::No).unwrap(); // 2×4
        // Bᵀ Aᵀ computed as gemm(b, T, a, T) = 4×2.
        let btat = gemm(&tb, Transpose::Yes, &ta, Transpose::Yes).unwrap();
        for i in 0..2 {
            for j in 0..4 {
                prop_assert!((ab.at(&[i, j]) - btat.at(&[j, i])).abs() < 1e-4);
            }
        }
    }

    /// im2col/col2im are adjoint: ⟨im2col(x), y⟩ = ⟨x, col2im(y)⟩.
    #[test]
    fn conv_operators_are_adjoint(
        x in tensor_strategy(2 * 6 * 6),
        seed in 0u64..1000,
    ) {
        let g = ConvGeometry::new(2, 6, 6, 3, 3, 1, 1).unwrap();
        let tx = Tensor::from_vec(x, Shape::new(vec![2, 6, 6])).unwrap();
        let ylen = g.col_height() * g.col_width();
        let y: Vec<f32> = (0..ylen).map(|i| (((i as u64 + seed) * 2654435761) % 997) as f32 / 499.0 - 1.0).collect();
        let ty = Tensor::from_vec(y, Shape::d2(g.col_height(), g.col_width())).unwrap();
        let lhs = im2col(&tx, &g).unwrap().dot(&ty).unwrap();
        let rhs = tx.dot(&col2im(&ty, &g).unwrap()).unwrap();
        prop_assert!((lhs - rhs).abs() < 1e-2, "{lhs} vs {rhs}");
    }

    /// Convolution is linear in the input:
    /// conv(x1 + x2) = conv(x1) + conv(x2) − bias (bias counted once).
    #[test]
    fn conv_input_linearity(
        x1 in tensor_strategy(2 * 5 * 5),
        x2 in tensor_strategy(2 * 5 * 5),
        w in tensor_strategy(3 * 2 * 9),
    ) {
        let g = ConvGeometry::new(2, 5, 5, 3, 3, 1, 1).unwrap();
        let tw = Tensor::from_vec(w, Shape::nchw(3, 2, 3, 3)).unwrap();
        let b = Tensor::zeros([3]);
        let t1 = Tensor::from_vec(x1, Shape::nchw(1, 2, 5, 5)).unwrap();
        let t2 = Tensor::from_vec(x2, Shape::nchw(1, 2, 5, 5)).unwrap();
        let lhs = conv2d_forward(&(&t1 + &t2), &tw, &b, &g).unwrap();
        let rhs = &conv2d_forward(&t1, &tw, &b, &g).unwrap()
            + &conv2d_forward(&t2, &tw, &b, &g).unwrap();
        for (a, c) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((a - c).abs() < 1e-3);
        }
    }

    /// The conv backward operator is the adjoint of forward:
    /// ⟨conv(x), g⟩ = ⟨x, backward_input(g)⟩ for zero bias.
    #[test]
    fn conv_backward_is_adjoint(
        x in tensor_strategy(2 * 5 * 5),
        w in tensor_strategy(2 * 2 * 9),
        go in tensor_strategy(2 * 5 * 5),
    ) {
        let g = ConvGeometry::new(2, 5, 5, 2, 3, 1, 1).unwrap();
        let tx = Tensor::from_vec(x, Shape::nchw(1, 2, 5, 5)).unwrap();
        let tw = Tensor::from_vec(w, Shape::nchw(2, 2, 3, 3)).unwrap();
        let b = Tensor::zeros([2]);
        let tgo = Tensor::from_vec(go, Shape::nchw(1, 2, 5, 5)).unwrap();
        let y = conv2d_forward(&tx, &tw, &b, &g).unwrap();
        let (gx, _, _) = conv2d_backward(&tx, &tw, &tgo, &g).unwrap();
        let lhs = y.dot(&tgo).unwrap();
        let rhs = tx.dot(&gx).unwrap();
        prop_assert!((lhs - rhs).abs() < 1e-2 * (1.0 + lhs.abs()), "{lhs} vs {rhs}");
    }

    /// Max pooling is monotone: pointwise larger inputs give pointwise
    /// larger outputs.
    #[test]
    fn max_pool_monotone(x in tensor_strategy(6 * 6), bump in 0.0f32..1.0) {
        let g = PoolGeometry::new(1, 6, 6, 2, 2).unwrap();
        let tx = Tensor::from_vec(x.clone(), Shape::nchw(1, 1, 6, 6)).unwrap();
        let bigger = tx.map(|v| v + bump);
        let (y1, _) = pool_forward(&tx, PoolKind::Max, &g).unwrap();
        let (y2, _) = pool_forward(&bigger, PoolKind::Max, &g).unwrap();
        for (a, b) in y1.as_slice().iter().zip(y2.as_slice()) {
            prop_assert!(b >= a);
        }
    }

    /// Average pooling preserves the mean exactly when windows tile the
    /// input perfectly.
    #[test]
    fn avg_pool_preserves_mean(x in tensor_strategy(2 * 4 * 4)) {
        let g = PoolGeometry::new(2, 4, 4, 2, 2).unwrap();
        let tx = Tensor::from_vec(x, Shape::nchw(1, 2, 4, 4)).unwrap();
        let (y, _) = pool_forward(&tx, PoolKind::Avg, &g).unwrap();
        prop_assert!((y.mean() - tx.mean()).abs() < 1e-5);
    }

    /// Pool backward conserves gradient mass for avg pooling.
    #[test]
    fn avg_pool_backward_conserves_mass(go in tensor_strategy(2 * 2)) {
        let g = PoolGeometry::new(1, 4, 4, 2, 2).unwrap();
        let tgo = Tensor::from_vec(go, Shape::nchw(1, 1, 2, 2)).unwrap();
        let gi = pool_backward(&tgo, PoolKind::Avg, &[], &g).unwrap();
        prop_assert!((gi.sum() - tgo.sum()).abs() < 1e-5);
    }

    /// Softmax outputs a probability distribution for any finite logits.
    #[test]
    fn softmax_is_distribution(z in tensor_strategy(12)) {
        let tz = Tensor::from_vec(z, Shape::d2(3, 4)).unwrap();
        let p = softmax(&tz).unwrap();
        for r in 0..3 {
            let row = &p.as_slice()[r * 4..(r + 1) * 4];
            let sum: f32 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-5);
            prop_assert!(row.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    /// Reshape round-trips and never changes the flat data.
    #[test]
    fn reshape_preserves_flat_data(x in tensor_strategy(24)) {
        let t = Tensor::from_vec(x.clone(), Shape::new(vec![2, 3, 4])).unwrap();
        let r = t.reshape([4, 6]).unwrap().reshape([24]).unwrap();
        prop_assert_eq!(r.as_slice(), &x[..]);
    }

    /// axpy(α, x) then axpy(−α, x) is the identity (up to float error).
    #[test]
    fn axpy_inverse(x in tensor_strategy(16), y in tensor_strategy(16), alpha in -4.0f32..4.0) {
        let tx = Tensor::from_slice(&x);
        let mut ty = Tensor::from_slice(&y);
        ty.axpy(alpha, &tx).unwrap();
        ty.axpy(-alpha, &tx).unwrap();
        for (a, b) in ty.as_slice().iter().zip(&y) {
            prop_assert!((a - b).abs() < 1e-3);
        }
    }
}

/// The batch-fused conv path must never change a single output bit: the
/// fused column matrix is a pure re-layout (batch interleaved innermost)
/// and the kernel's per-output accumulation order does not depend on the
/// column count. These run in both feature sets — under `parallel` the
/// fused product frequently crosses the row-band dispatch threshold, so
/// the same cases also pin serial == parallel on the fused path.
mod fused_batch_equivalence {
    use mfdfp_dfp::{PackedPow2Matrix, Pow2Weight};
    use mfdfp_tensor::{im2col_batched_i8, qgemm_fused_into_i8, qgemm_into_i8, ConvGeometry};
    use proptest::prelude::*;

    fn codes_matrix(rows: usize, cols: usize, seed: u64) -> PackedPow2Matrix {
        let mut state = seed | 1;
        let ws: Vec<Pow2Weight> = (0..rows * cols)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                Pow2Weight::decode4((state % 16) as u8).unwrap()
            })
            .collect();
        PackedPow2Matrix::from_weights(rows, cols, &ws).unwrap()
    }

    fn codes(n: usize, seed: u64) -> Vec<i8> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state % 256) as u8 as i8
            })
            .collect()
    }

    /// Element-interleaves per-image buffers into the fused layout
    /// (`fused[e·B + b] = images[b][e]`).
    fn interleave(images: &[Vec<i8>]) -> Vec<i8> {
        let batch = images.len();
        let per = images[0].len();
        let mut fused = vec![0i8; per * batch];
        for (b, img) in images.iter().enumerate() {
            for (e, &v) in img.iter().enumerate() {
                fused[e * batch + b] = v;
            }
        }
        fused
    }

    /// Independent per-image im2col oracle: the plain quadruple loop with
    /// explicit padding checks, sharing no code with the batched gather.
    fn gather_reference(input: &[i8], g: &ConvGeometry, grp: usize) -> Vec<i8> {
        let (oh, ow) = (g.out_h(), g.out_w());
        let group_in = g.in_c / g.groups;
        let c_lo = grp * group_in;
        let mut out = Vec::new();
        for c in c_lo..c_lo + group_in {
            for ky in 0..g.kernel {
                for kx in 0..g.kernel {
                    for oy in 0..oh {
                        for ox in 0..ow {
                            let iy = (oy * g.stride + ky) as isize - g.pad as isize;
                            let ix = (ox * g.stride + kx) as isize - g.pad as isize;
                            let oob =
                                iy < 0 || ix < 0 || iy >= g.in_h as isize || ix >= g.in_w as isize;
                            out.push(if oob {
                                0
                            } else {
                                input[(c * g.in_h + iy as usize) * g.in_w + ix as usize]
                            });
                        }
                    }
                }
            }
        }
        out
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// The batched gather is exactly the per-image gathers,
        /// interleaved: `xt[e·B + b]` equals image `b`'s column element
        /// `e`, across random geometries (incl. grouped convs, padding,
        /// strides) and batch sizes 1..=9.
        #[test]
        fn batched_im2col_interleaves_per_image_gathers(
            in_c in 1usize..4,
            hw in 3usize..9,
            kernel in 1usize..4,
            stride in 1usize..3,
            pad in 0usize..3,
            grouped in proptest::bool::ANY,
            batch in 1usize..10,
            seed in 0u64..1_000_000,
        ) {
            let (in_c, groups) = if grouped { (in_c * 2, 2) } else { (in_c, 1) };
            let g = ConvGeometry::new(in_c, hw, hw, groups, kernel, stride, pad)
                .unwrap()
                .with_groups(groups)
                .unwrap();
            let per = in_c * hw * hw;
            let images: Vec<Vec<i8>> =
                (0..batch).map(|b| codes(per, seed ^ (b as u64 * 0x9E37 + 1))).collect();
            let fused_in = interleave(&images);
            let npix = g.out_h() * g.out_w();
            let syn = (in_c / groups) * g.kernel * g.kernel;
            for grp in 0..groups {
                let mut xt = vec![0i8; syn * npix * batch];
                im2col_batched_i8(&fused_in, &g, grp, batch, &mut xt).unwrap();
                for (b, img) in images.iter().enumerate() {
                    let want = gather_reference(img, &g, grp);
                    for (e, &w) in want.iter().enumerate() {
                        prop_assert_eq!(
                            xt[e * batch + b], w,
                            "grp={} b={} e={}", grp, b, e
                        );
                    }
                }
            }
        }

        /// One fused kernel call over `B` interleaved column matrices is
        /// bit-identical to `B` per-image calls, across random weight
        /// shapes, radix positions, and batch sizes 1..=9. Under the
        /// `parallel` feature larger cases cross the row-band dispatch
        /// threshold, covering the fused-parallel schedule too.
        #[test]
        fn fused_qgemm_bit_identical_to_per_image(
            rows in 1usize..9,
            cols in 1usize..25,
            ncols_pi in 1usize..6,
            batch in 1usize..10,
            in_frac in 0i32..8,
            out_frac in 0i32..8,
            seed in 0u64..1_000_000,
        ) {
            let w = codes_matrix(rows, cols, seed | 1);
            let acc_frac = in_frac + 7;
            let bias: Vec<i64> = (0..rows).map(|r| (r as i64 - 3) * 37).collect();
            let images: Vec<Vec<i8>> = (0..batch)
                .map(|b| codes(cols * ncols_pi, seed ^ ((b as u64 + 1) * 0x5bd1_e995)))
                .collect();
            let fused_xt = interleave(&images);
            let mut fused_out = vec![0i8; rows * ncols_pi * batch];
            qgemm_fused_into_i8(
                &w, 0, rows, &fused_xt, ncols_pi, batch, &bias, acc_frac, out_frac,
                &mut fused_out,
            )
            .unwrap();
            for (b, img) in images.iter().enumerate() {
                let mut per = vec![0i8; rows * ncols_pi];
                qgemm_into_i8(&w, 0, rows, img, ncols_pi, &bias, acc_frac, out_frac, &mut per)
                    .unwrap();
                for (e, &want) in per.iter().enumerate() {
                    prop_assert_eq!(
                        fused_out[e * batch + b], want,
                        "b={} e={} rows={} cols={} ncols_pi={}", b, e, rows, cols, ncols_pi
                    );
                }
            }
        }
    }
}

/// The `parallel` feature must never change a single output bit: threads
/// only reschedule work, the kernels fix the accumulation order.
#[cfg(feature = "parallel")]
mod parallel_equivalence {
    use mfdfp_tensor::{
        conv2d_forward, conv2d_forward_parallel, conv2d_forward_serial, gemm, gemm_parallel,
        gemm_serial, ConvGeometry, Tensor, Transpose,
    };
    use proptest::prelude::*;

    /// Deterministic pseudo-random tensor from a seed (keeps the strategy
    /// space to shapes; values derive from the seed).
    fn seeded(dims: Vec<usize>, seed: u64) -> Tensor {
        Tensor::from_fn(dims, move |i| {
            let h = (i as u64 + 1)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(seed.wrapping_mul(0x2545_F491_4F6C_DD1D));
            ((h >> 40) as f32 / (1u64 << 24) as f32) * 4.0 - 2.0
        })
    }

    fn assert_bits_equal(a: &Tensor, b: &Tensor, what: &str) {
        assert_eq!(a.shape(), b.shape(), "{what}: shapes diverged");
        for (i, (x, y)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
            assert!(
                x.to_bits() == y.to_bits(),
                "{what}: bit divergence at flat index {i}: {x} vs {y}"
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// gemm_parallel == gemm_serial, bit for bit, on random shapes and
        /// every transpose combination (shapes straddle the dispatcher's
        /// work threshold from below).
        #[test]
        fn gemm_parallel_bit_identical(
            m in 1usize..48,
            k in 1usize..48,
            n in 1usize..48,
            seed in 0u64..1_000_000,
            ta in proptest::bool::ANY,
            tb in proptest::bool::ANY,
        ) {
            let (ta, tb) = (
                if ta { Transpose::Yes } else { Transpose::No },
                if tb { Transpose::Yes } else { Transpose::No },
            );
            let a_dims = if ta == Transpose::Yes { vec![k, m] } else { vec![m, k] };
            let b_dims = if tb == Transpose::Yes { vec![n, k] } else { vec![k, n] };
            let a = seeded(a_dims, seed);
            let b = seeded(b_dims, seed ^ 0xABCD);
            let serial = gemm_serial(&a, ta, &b, tb).unwrap();
            let parallel = gemm_parallel(&a, ta, &b, tb).unwrap();
            let dispatched = gemm(&a, ta, &b, tb).unwrap();
            assert_bits_equal(&serial, &parallel, "gemm_parallel");
            assert_bits_equal(&serial, &dispatched, "gemm dispatch");
        }

        /// conv2d_forward_parallel == conv2d_forward_serial, bit for bit,
        /// on random geometries (including grouped convolutions).
        #[test]
        fn conv_forward_parallel_bit_identical(
            batch in 1usize..6,
            in_c in 1usize..5,
            hw in 4usize..11,
            out_c in 1usize..7,
            kernel in 1usize..4,
            stride in 1usize..3,
            pad in 0usize..3,
            grouped in proptest::bool::ANY,
            seed in 0u64..1_000_000,
        ) {
            // Double the channel counts when testing groups so 2 divides both.
            let (in_c, out_c, groups) =
                if grouped { (in_c * 2, out_c * 2, 2) } else { (in_c, out_c, 1) };
            let g = ConvGeometry::new(in_c, hw, hw, out_c, kernel, stride, pad)
                .unwrap()
                .with_groups(groups)
                .unwrap();
            let x = seeded(vec![batch, in_c, hw, hw], seed);
            let wd = g.weight_dims();
            let w = seeded(wd.to_vec(), seed ^ 0x1234);
            let b = seeded(vec![out_c], seed ^ 0x5678);
            let serial = conv2d_forward_serial(&x, &w, &b, &g).unwrap();
            let parallel = conv2d_forward_parallel(&x, &w, &b, &g).unwrap();
            let dispatched = conv2d_forward(&x, &w, &b, &g).unwrap();
            assert_bits_equal(&serial, &parallel, "conv2d_forward_parallel");
            assert_bits_equal(&serial, &dispatched, "conv2d_forward dispatch");
        }
    }
}
