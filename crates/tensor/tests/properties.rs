//! Property-based tests of the tensor algebra: the linear-operator laws
//! backprop silently assumes.

use mfdfp_tensor::{
    col2im, conv2d_backward, conv2d_forward, gemm, im2col, pool_backward, pool_forward, softmax,
    ConvGeometry, PoolGeometry, PoolKind, Shape, Tensor, Transpose,
};
use proptest::prelude::*;

fn tensor_strategy(len: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-2.0f32..2.0, len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// GEMM is linear in its left operand: (A + B)C = AC + BC.
    #[test]
    fn gemm_left_linearity(
        a in tensor_strategy(6),
        b in tensor_strategy(6),
        c in tensor_strategy(8),
    ) {
        let ta = Tensor::from_vec(a, Shape::d2(3, 2)).unwrap();
        let tb = Tensor::from_vec(b, Shape::d2(3, 2)).unwrap();
        let tc = Tensor::from_vec(c, Shape::d2(2, 4)).unwrap();
        let lhs = gemm(&(&ta + &tb), Transpose::No, &tc, Transpose::No).unwrap();
        let rhs = &gemm(&ta, Transpose::No, &tc, Transpose::No).unwrap()
            + &gemm(&tb, Transpose::No, &tc, Transpose::No).unwrap();
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    /// (AB)ᵀ = BᵀAᵀ, expressed through the transpose flags.
    #[test]
    fn gemm_transpose_identity(a in tensor_strategy(6), b in tensor_strategy(12)) {
        let ta = Tensor::from_vec(a, Shape::d2(2, 3)).unwrap();
        let tb = Tensor::from_vec(b, Shape::d2(3, 4)).unwrap();
        let ab = gemm(&ta, Transpose::No, &tb, Transpose::No).unwrap(); // 2×4
        // Bᵀ Aᵀ computed as gemm(b, T, a, T) = 4×2.
        let btat = gemm(&tb, Transpose::Yes, &ta, Transpose::Yes).unwrap();
        for i in 0..2 {
            for j in 0..4 {
                prop_assert!((ab.at(&[i, j]) - btat.at(&[j, i])).abs() < 1e-4);
            }
        }
    }

    /// im2col/col2im are adjoint: ⟨im2col(x), y⟩ = ⟨x, col2im(y)⟩.
    #[test]
    fn conv_operators_are_adjoint(
        x in tensor_strategy(2 * 6 * 6),
        seed in 0u64..1000,
    ) {
        let g = ConvGeometry::new(2, 6, 6, 3, 3, 1, 1).unwrap();
        let tx = Tensor::from_vec(x, Shape::new(vec![2, 6, 6])).unwrap();
        let ylen = g.col_height() * g.col_width();
        let y: Vec<f32> = (0..ylen).map(|i| (((i as u64 + seed) * 2654435761) % 997) as f32 / 499.0 - 1.0).collect();
        let ty = Tensor::from_vec(y, Shape::d2(g.col_height(), g.col_width())).unwrap();
        let lhs = im2col(&tx, &g).unwrap().dot(&ty).unwrap();
        let rhs = tx.dot(&col2im(&ty, &g).unwrap()).unwrap();
        prop_assert!((lhs - rhs).abs() < 1e-2, "{lhs} vs {rhs}");
    }

    /// Convolution is linear in the input:
    /// conv(x1 + x2) = conv(x1) + conv(x2) − bias (bias counted once).
    #[test]
    fn conv_input_linearity(
        x1 in tensor_strategy(2 * 5 * 5),
        x2 in tensor_strategy(2 * 5 * 5),
        w in tensor_strategy(3 * 2 * 9),
    ) {
        let g = ConvGeometry::new(2, 5, 5, 3, 3, 1, 1).unwrap();
        let tw = Tensor::from_vec(w, Shape::nchw(3, 2, 3, 3)).unwrap();
        let b = Tensor::zeros([3]);
        let t1 = Tensor::from_vec(x1, Shape::nchw(1, 2, 5, 5)).unwrap();
        let t2 = Tensor::from_vec(x2, Shape::nchw(1, 2, 5, 5)).unwrap();
        let lhs = conv2d_forward(&(&t1 + &t2), &tw, &b, &g).unwrap();
        let rhs = &conv2d_forward(&t1, &tw, &b, &g).unwrap()
            + &conv2d_forward(&t2, &tw, &b, &g).unwrap();
        for (a, c) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((a - c).abs() < 1e-3);
        }
    }

    /// The conv backward operator is the adjoint of forward:
    /// ⟨conv(x), g⟩ = ⟨x, backward_input(g)⟩ for zero bias.
    #[test]
    fn conv_backward_is_adjoint(
        x in tensor_strategy(2 * 5 * 5),
        w in tensor_strategy(2 * 2 * 9),
        go in tensor_strategy(2 * 5 * 5),
    ) {
        let g = ConvGeometry::new(2, 5, 5, 2, 3, 1, 1).unwrap();
        let tx = Tensor::from_vec(x, Shape::nchw(1, 2, 5, 5)).unwrap();
        let tw = Tensor::from_vec(w, Shape::nchw(2, 2, 3, 3)).unwrap();
        let b = Tensor::zeros([2]);
        let tgo = Tensor::from_vec(go, Shape::nchw(1, 2, 5, 5)).unwrap();
        let y = conv2d_forward(&tx, &tw, &b, &g).unwrap();
        let (gx, _, _) = conv2d_backward(&tx, &tw, &tgo, &g).unwrap();
        let lhs = y.dot(&tgo).unwrap();
        let rhs = tx.dot(&gx).unwrap();
        prop_assert!((lhs - rhs).abs() < 1e-2 * (1.0 + lhs.abs()), "{lhs} vs {rhs}");
    }

    /// Max pooling is monotone: pointwise larger inputs give pointwise
    /// larger outputs.
    #[test]
    fn max_pool_monotone(x in tensor_strategy(6 * 6), bump in 0.0f32..1.0) {
        let g = PoolGeometry::new(1, 6, 6, 2, 2).unwrap();
        let tx = Tensor::from_vec(x.clone(), Shape::nchw(1, 1, 6, 6)).unwrap();
        let bigger = tx.map(|v| v + bump);
        let (y1, _) = pool_forward(&tx, PoolKind::Max, &g).unwrap();
        let (y2, _) = pool_forward(&bigger, PoolKind::Max, &g).unwrap();
        for (a, b) in y1.as_slice().iter().zip(y2.as_slice()) {
            prop_assert!(b >= a);
        }
    }

    /// Average pooling preserves the mean exactly when windows tile the
    /// input perfectly.
    #[test]
    fn avg_pool_preserves_mean(x in tensor_strategy(2 * 4 * 4)) {
        let g = PoolGeometry::new(2, 4, 4, 2, 2).unwrap();
        let tx = Tensor::from_vec(x, Shape::nchw(1, 2, 4, 4)).unwrap();
        let (y, _) = pool_forward(&tx, PoolKind::Avg, &g).unwrap();
        prop_assert!((y.mean() - tx.mean()).abs() < 1e-5);
    }

    /// Pool backward conserves gradient mass for avg pooling.
    #[test]
    fn avg_pool_backward_conserves_mass(go in tensor_strategy(2 * 2)) {
        let g = PoolGeometry::new(1, 4, 4, 2, 2).unwrap();
        let tgo = Tensor::from_vec(go, Shape::nchw(1, 1, 2, 2)).unwrap();
        let gi = pool_backward(&tgo, PoolKind::Avg, &[], &g).unwrap();
        prop_assert!((gi.sum() - tgo.sum()).abs() < 1e-5);
    }

    /// Softmax outputs a probability distribution for any finite logits.
    #[test]
    fn softmax_is_distribution(z in tensor_strategy(12)) {
        let tz = Tensor::from_vec(z, Shape::d2(3, 4)).unwrap();
        let p = softmax(&tz).unwrap();
        for r in 0..3 {
            let row = &p.as_slice()[r * 4..(r + 1) * 4];
            let sum: f32 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-5);
            prop_assert!(row.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    /// Reshape round-trips and never changes the flat data.
    #[test]
    fn reshape_preserves_flat_data(x in tensor_strategy(24)) {
        let t = Tensor::from_vec(x.clone(), Shape::new(vec![2, 3, 4])).unwrap();
        let r = t.reshape([4, 6]).unwrap().reshape([24]).unwrap();
        prop_assert_eq!(r.as_slice(), &x[..]);
    }

    /// axpy(α, x) then axpy(−α, x) is the identity (up to float error).
    #[test]
    fn axpy_inverse(x in tensor_strategy(16), y in tensor_strategy(16), alpha in -4.0f32..4.0) {
        let tx = Tensor::from_slice(&x);
        let mut ty = Tensor::from_slice(&y);
        ty.axpy(alpha, &tx).unwrap();
        ty.axpy(-alpha, &tx).unwrap();
        for (a, b) in ty.as_slice().iter().zip(&y) {
            prop_assert!((a - b).abs() < 1e-3);
        }
    }
}

/// The `parallel` feature must never change a single output bit: threads
/// only reschedule work, the kernels fix the accumulation order.
#[cfg(feature = "parallel")]
mod parallel_equivalence {
    use mfdfp_tensor::{
        conv2d_forward, conv2d_forward_parallel, conv2d_forward_serial, gemm, gemm_parallel,
        gemm_serial, ConvGeometry, Tensor, Transpose,
    };
    use proptest::prelude::*;

    /// Deterministic pseudo-random tensor from a seed (keeps the strategy
    /// space to shapes; values derive from the seed).
    fn seeded(dims: Vec<usize>, seed: u64) -> Tensor {
        Tensor::from_fn(dims, move |i| {
            let h = (i as u64 + 1)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(seed.wrapping_mul(0x2545_F491_4F6C_DD1D));
            ((h >> 40) as f32 / (1u64 << 24) as f32) * 4.0 - 2.0
        })
    }

    fn assert_bits_equal(a: &Tensor, b: &Tensor, what: &str) {
        assert_eq!(a.shape(), b.shape(), "{what}: shapes diverged");
        for (i, (x, y)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
            assert!(
                x.to_bits() == y.to_bits(),
                "{what}: bit divergence at flat index {i}: {x} vs {y}"
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// gemm_parallel == gemm_serial, bit for bit, on random shapes and
        /// every transpose combination (shapes straddle the dispatcher's
        /// work threshold from below).
        #[test]
        fn gemm_parallel_bit_identical(
            m in 1usize..48,
            k in 1usize..48,
            n in 1usize..48,
            seed in 0u64..1_000_000,
            ta in proptest::bool::ANY,
            tb in proptest::bool::ANY,
        ) {
            let (ta, tb) = (
                if ta { Transpose::Yes } else { Transpose::No },
                if tb { Transpose::Yes } else { Transpose::No },
            );
            let a_dims = if ta == Transpose::Yes { vec![k, m] } else { vec![m, k] };
            let b_dims = if tb == Transpose::Yes { vec![n, k] } else { vec![k, n] };
            let a = seeded(a_dims, seed);
            let b = seeded(b_dims, seed ^ 0xABCD);
            let serial = gemm_serial(&a, ta, &b, tb).unwrap();
            let parallel = gemm_parallel(&a, ta, &b, tb).unwrap();
            let dispatched = gemm(&a, ta, &b, tb).unwrap();
            assert_bits_equal(&serial, &parallel, "gemm_parallel");
            assert_bits_equal(&serial, &dispatched, "gemm dispatch");
        }

        /// conv2d_forward_parallel == conv2d_forward_serial, bit for bit,
        /// on random geometries (including grouped convolutions).
        #[test]
        fn conv_forward_parallel_bit_identical(
            batch in 1usize..6,
            in_c in 1usize..5,
            hw in 4usize..11,
            out_c in 1usize..7,
            kernel in 1usize..4,
            stride in 1usize..3,
            pad in 0usize..3,
            grouped in proptest::bool::ANY,
            seed in 0u64..1_000_000,
        ) {
            // Double the channel counts when testing groups so 2 divides both.
            let (in_c, out_c, groups) =
                if grouped { (in_c * 2, out_c * 2, 2) } else { (in_c, out_c, 1) };
            let g = ConvGeometry::new(in_c, hw, hw, out_c, kernel, stride, pad)
                .unwrap()
                .with_groups(groups)
                .unwrap();
            let x = seeded(vec![batch, in_c, hw, hw], seed);
            let wd = g.weight_dims();
            let w = seeded(wd.to_vec(), seed ^ 0x1234);
            let b = seeded(vec![out_c], seed ^ 0x5678);
            let serial = conv2d_forward_serial(&x, &w, &b, &g).unwrap();
            let parallel = conv2d_forward_parallel(&x, &w, &b, &g).unwrap();
            let dispatched = conv2d_forward(&x, &w, &b, &g).unwrap();
            assert_bits_equal(&serial, &parallel, "conv2d_forward_parallel");
            assert_bits_equal(&serial, &dispatched, "conv2d_forward dispatch");
        }
    }
}
