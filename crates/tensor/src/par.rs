//! Scoped-thread fan-out helpers behind the `parallel` cargo feature.
//!
//! The build environment has no crates.io access, so instead of `rayon`
//! this module provides the two primitives the hot path needs — an OS
//! thread count and a disjoint row-chunk fan-out over `std::thread::scope`.
//! Work is partitioned into *contiguous row ranges*; the kernels invoked on
//! each range fix the per-element accumulation order, so results are
//! bit-identical to a single-threaded run no matter how many workers the
//! machine offers.
//!
//! Threads are spawned per call. That costs tens of microseconds, which is
//! why callers gate the parallel path behind a work threshold instead of
//! parallelising every tiny product.

use std::sync::OnceLock;

/// Work threshold (in multiply-accumulates) below which the parallel
/// dispatchers fall back to the serial kernels: thread spawn-up costs tens
/// of microseconds, which smaller products cannot repay. Shared by the
/// GEMM and convolution dispatch so the two hot paths stay consistent.
pub(crate) const MIN_MACS: usize = 1 << 20;

/// Number of worker threads to fan out to (`MFDFP_THREADS` overrides the
/// detected core count; values of 0 or 1 disable fan-out).
pub fn threads() -> usize {
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(|| {
        if let Ok(v) = std::env::var("MFDFP_THREADS") {
            if let Ok(n) = v.parse::<usize>() {
                return n.max(1);
            }
        }
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    })
}

/// Splits `out` (an `m × n` row-major buffer) into contiguous row chunks
/// and runs `kernel(row0, rows, chunk)` on each chunk from its own scoped
/// thread. Runs inline when a single chunk covers the whole buffer.
///
/// Generic over the element type so the same fan-out drives the `f32`
/// GEMM/conv kernels and the `i8` activation-code buffers of the packed
/// quantized kernel ([`crate::ops::qgemm`]).
pub fn for_each_row_chunk<T, F>(out: &mut [T], m: usize, n: usize, kernel: F)
where
    T: Send,
    F: Fn(usize, usize, &mut [T]) + Sync,
{
    debug_assert_eq!(out.len(), m * n);
    // Degenerate extents (m == 0 or n == 0): nothing to fan out, and
    // `chunks_mut(0)` would panic.
    let rows_per_chunk = m.div_ceil(threads().max(1)).max(1);
    if rows_per_chunk >= m || n == 0 {
        kernel(0, m, out);
        return;
    }
    let kernel = &kernel;
    std::thread::scope(|scope| {
        for (idx, chunk) in out.chunks_mut(rows_per_chunk * n).enumerate() {
            scope.spawn(move || {
                let row0 = idx * rows_per_chunk;
                kernel(row0, chunk.len() / n, chunk);
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_cover_every_row_exactly_once() {
        let (m, n) = (23, 5);
        let mut out = vec![0.0f32; m * n];
        for_each_row_chunk(&mut out, m, n, |row0, rows, chunk| {
            for r in 0..rows {
                for c in 0..n {
                    chunk[r * n + c] += (row0 + r) as f32;
                }
            }
        });
        for i in 0..m {
            for j in 0..n {
                assert_eq!(out[i * n + j], i as f32, "row {i} col {j}");
            }
        }
    }

    #[test]
    fn single_row_runs_inline() {
        let mut out = vec![0.0f32; 4];
        for_each_row_chunk(&mut out, 1, 4, |row0, rows, chunk| {
            assert_eq!((row0, rows, chunk.len()), (0, 1, 4));
            chunk.fill(1.0);
        });
        assert_eq!(out, [1.0; 4]);
    }

    #[test]
    fn thread_count_is_positive() {
        assert!(threads() >= 1);
    }
}
