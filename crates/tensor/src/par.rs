//! Pool-backed fan-out helpers behind the `parallel` cargo feature.
//!
//! The build environment has no crates.io access, so instead of `rayon`
//! this module provides the two primitives the hot path needs — a worker
//! count and a disjoint row-chunk fan-out. Work is partitioned into
//! *contiguous row ranges*; the kernels invoked on each range fix the
//! per-element accumulation order, so results are bit-identical to a
//! single-threaded run no matter how many workers the machine offers.
//!
//! Chunks run on the persistent process-wide [`mfdfp_rt`] pool: threads
//! are spawned **once** (lazily, at first dispatch) and parked between
//! calls, so a dispatch costs a queue push and a wake-up — single-digit
//! microseconds — instead of the tens of microseconds per-call
//! `std::thread::scope` spawning used to cost. That is why the dispatch
//! threshold below sits ~8× lower than it did in the spawn-per-call era.
//!
//! Chunk boundaries depend only on `threads()` and the matrix extents —
//! never on which pool thread runs which chunk — so the partition (and
//! therefore the result bytes) is a pure function of `MFDFP_THREADS`.

/// Work threshold (in multiply-accumulates) below which the parallel
/// dispatchers fall back to the serial kernels. With per-call thread
/// spawning this had to be `1 << 20`; on the persistent pool a dispatch
/// only pays an enqueue + wake (~1–2 µs), so products down to ~128 k
/// MACs can repay fan-out. Shared by the GEMM, packed-qGEMM and
/// convolution dispatch so the hot paths stay consistent.
pub(crate) const MIN_MACS: usize = 1 << 17;

/// Number of worker lanes to fan out to: the width of the shared
/// [`mfdfp_rt`] pool (`MFDFP_THREADS` overrides the detected core
/// count; values of 0 or 1 disable fan-out).
///
/// First use instantiates the process-wide pool.
pub fn threads() -> usize {
    mfdfp_rt::global().threads()
}

/// Splits `out` (an `m × n` row-major buffer) into contiguous row chunks
/// and runs `kernel(row0, rows, chunk)` on each chunk as a task on the
/// shared persistent pool. Runs inline when a single chunk covers the
/// whole buffer.
///
/// Generic over the element type so the same fan-out drives the `f32`
/// GEMM/conv kernels and the `i8` activation-code buffers of the packed
/// quantized kernel ([`crate::ops::qgemm`]).
///
/// # Panics
///
/// Re-raises the first panic of any chunk kernel after all chunks
/// completed (the pool scope's contract, matching `std::thread::scope`).
pub fn for_each_row_chunk<T, F>(out: &mut [T], m: usize, n: usize, kernel: F)
where
    T: Send,
    F: Fn(usize, usize, &mut [T]) + Sync,
{
    debug_assert_eq!(out.len(), m * n);
    let pool = mfdfp_rt::global();
    // Degenerate extents (m == 0 or n == 0): nothing to fan out, and
    // `chunks_mut(0)` would panic.
    let rows_per_chunk = m.div_ceil(pool.threads().max(1)).max(1);
    if rows_per_chunk >= m || n == 0 {
        kernel(0, m, out);
        return;
    }
    let kernel = &kernel;
    pool.scope(|scope| {
        for (idx, chunk) in out.chunks_mut(rows_per_chunk * n).enumerate() {
            scope.spawn(move || {
                let row0 = idx * rows_per_chunk;
                kernel(row0, chunk.len() / n, chunk);
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_cover_every_row_exactly_once() {
        let (m, n) = (23, 5);
        let mut out = vec![0.0f32; m * n];
        for_each_row_chunk(&mut out, m, n, |row0, rows, chunk| {
            for r in 0..rows {
                for c in 0..n {
                    chunk[r * n + c] += (row0 + r) as f32;
                }
            }
        });
        for i in 0..m {
            for j in 0..n {
                assert_eq!(out[i * n + j], i as f32, "row {i} col {j}");
            }
        }
    }

    #[test]
    fn single_row_runs_inline() {
        let mut out = vec![0.0f32; 4];
        for_each_row_chunk(&mut out, 1, 4, |row0, rows, chunk| {
            assert_eq!((row0, rows, chunk.len()), (0, 1, 4));
            chunk.fill(1.0);
        });
        assert_eq!(out, [1.0; 4]);
    }

    #[test]
    fn thread_count_is_positive() {
        assert!(threads() >= 1);
    }

    #[test]
    fn repeated_dispatch_reuses_the_pool() {
        // The whole point of the runtime: a second dispatch must not
        // re-spawn workers. Observable via the global pool counters —
        // tasks accumulate, width stays fixed.
        let before = mfdfp_rt::global_stats();
        for round in 0..3 {
            let (m, n) = (16, 8);
            let mut out = vec![0u32; m * n];
            for_each_row_chunk(&mut out, m, n, |row0, rows, chunk| {
                for r in 0..rows {
                    for c in 0..n {
                        chunk[r * n + c] = (round + row0 + r) as u32;
                    }
                }
            });
        }
        let after = mfdfp_rt::global_stats();
        assert_eq!(after.threads, mfdfp_rt::global().threads());
        assert!(after.tasks_run >= before.tasks_run);
    }
}
