//! # mfdfp-tensor — dense `f32` tensor substrate
//!
//! The numeric foundation of the MF-DFP reproduction (Tann et al.,
//! DAC 2017): a small, dependency-light, row-major tensor library with
//! exactly the operations a convolutional network needs — GEMM,
//! im2col-based convolution, pooling, softmax-family reductions and seeded
//! random initialisation.
//!
//! Design choices:
//!
//! * **Contiguous storage only.** No views or broadcasting rules to reason
//!   about; operations copy. The networks in this workspace are small enough
//!   that clarity wins over zero-copy cleverness.
//! * **`f32` kernels plus one integer exception.** Quantized *types* live
//!   in `mfdfp-dfp`; this crate is the float world Algorithm 1 quantizes
//!   *from* — except [`ops::qgemm`], the packed shift-only integer GEMM
//!   that serves as the deployed hot path (it reuses the same row-parallel
//!   scheduling machinery as the float GEMM, which is why it lives here).
//! * **Explicit seeds everywhere** ([`TensorRng`]), so every experiment is
//!   reproducible.
//!
//! # Examples
//!
//! ```
//! use mfdfp_tensor::{conv2d_forward, ConvGeometry, Tensor, TensorRng};
//!
//! let g = ConvGeometry::new(3, 8, 8, 4, 3, 1, 1)?;
//! let mut rng = TensorRng::seed_from(1);
//! let x = rng.gaussian([2, 3, 8, 8], 0.0, 1.0);
//! let w = rng.he([4, 3, 3, 3], g.col_height());
//! let b = Tensor::zeros([4]);
//! let y = conv2d_forward(&x, &w, &b, &g)?;
//! assert_eq!(y.shape().dims(), &[2, 4, 8, 8]);
//! # Ok::<(), mfdfp_tensor::TensorError>(())
//! ```

#![deny(missing_docs)]

pub mod arena;
mod error;
mod init;
pub mod ops;
#[cfg(feature = "parallel")]
pub mod par;
mod shape;
mod tensor;
pub mod workspace;

pub use arena::{AlignedArena, AlignedBytes, AlignedVec};
pub use error::{Result, TensorError};
pub use init::TensorRng;
#[cfg(feature = "parallel")]
pub use ops::conv::conv2d_forward_parallel;
pub use ops::conv::{
    col2im, conv2d_backward, conv2d_forward, conv2d_forward_serial, im2col, im2col_batched_i8,
    ConvGeometry,
};
#[cfg(feature = "parallel")]
pub use ops::matmul::gemm_parallel;
pub use ops::matmul::{gemm, gemm_serial, matvec, Transpose};
pub use ops::pool::{pool_backward, pool_forward, PoolGeometry, PoolKind};
#[cfg(feature = "parallel")]
pub use ops::qgemm::qgemm_parallel;
pub use ops::qgemm::{
    qgemm, qgemm_fused_into_i8, qgemm_i8, qgemm_into, qgemm_into_i8, qgemm_serial,
};
pub use ops::reduce::{
    argmax_rows, log_softmax, softmax, softmax_with_temperature, sum_axis0, topk_rows,
};
pub use shape::Shape;
pub use tensor::Tensor;
pub use workspace::{with_thread_workspace, Workspace, WorkspacePlan};
