//! Tensor operations: GEMM, convolution, pooling, reductions.

pub mod conv;
pub mod matmul;
pub mod pool;
pub mod qgemm;
pub mod reduce;
