//! Max and average pooling with exact backward passes.

use serde::{Deserialize, Serialize};

use crate::error::{Result, TensorError};
use crate::{Shape, Tensor};

/// Pooling flavour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PoolKind {
    /// Maximum over the window; backward routes gradient to the argmax.
    Max,
    /// Mean over the window; backward spreads gradient uniformly.
    Avg,
}

/// Static geometry of a 2-D pooling operation.
///
/// Pooling uses *ceiling* output sizing (Caffe convention), so windows may
/// overhang the input's bottom/right edge; overhanging taps are skipped for
/// `Max` and excluded from the divisor for `Avg`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PoolGeometry {
    /// Channels (pooling is per-channel).
    pub channels: usize,
    /// Input height.
    pub in_h: usize,
    /// Input width.
    pub in_w: usize,
    /// Square window side.
    pub window: usize,
    /// Stride in both dimensions.
    pub stride: usize,
}

impl PoolGeometry {
    /// Creates and validates a pooling geometry.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::BadGeometry`] on zero extents or a window
    /// larger than the input.
    pub fn new(
        channels: usize,
        in_h: usize,
        in_w: usize,
        window: usize,
        stride: usize,
    ) -> Result<Self> {
        if channels == 0 || in_h == 0 || in_w == 0 || window == 0 {
            return Err(TensorError::BadGeometry("zero-sized pooling extent".into()));
        }
        if stride == 0 {
            return Err(TensorError::BadGeometry("stride must be positive".into()));
        }
        if window > in_h || window > in_w {
            return Err(TensorError::BadGeometry(format!(
                "pool window {window} larger than input {in_h}x{in_w}"
            )));
        }
        Ok(PoolGeometry { channels, in_h, in_w, window, stride })
    }

    /// Output height (ceil mode).
    pub fn out_h(&self) -> usize {
        (self.in_h - self.window).div_ceil(self.stride) + 1
    }

    /// Output width (ceil mode).
    pub fn out_w(&self) -> usize {
        (self.in_w - self.window).div_ceil(self.stride) + 1
    }

    /// Comparison/add operations for one image (hardware cost model input).
    pub fn ops(&self) -> usize {
        self.channels * self.out_h() * self.out_w() * self.window * self.window
    }
}

/// Forward pooling over a batched `N×C×H×W` tensor.
///
/// Returns `(output, argmax)`; `argmax` stores, for every output element,
/// the flat input offset that produced it (meaningful for `Max` only, empty
/// for `Avg`) and is consumed by [`pool_backward`].
///
/// # Errors
///
/// Returns a shape error if `input` disagrees with the geometry.
pub fn pool_forward(
    input: &Tensor,
    kind: PoolKind,
    g: &PoolGeometry,
) -> Result<(Tensor, Vec<usize>)> {
    let n = input.shape().dim(0);
    let expect = Shape::nchw(n, g.channels, g.in_h, g.in_w);
    if input.shape() != &expect {
        return Err(TensorError::ShapeMismatch {
            left: input.shape().clone(),
            right: expect,
            op: "pool_forward",
        });
    }
    let (oh, ow) = (g.out_h(), g.out_w());
    let mut out = Tensor::zeros([n, g.channels, oh, ow]);
    let mut argmax = match kind {
        PoolKind::Max => vec![0usize; n * g.channels * oh * ow],
        PoolKind::Avg => Vec::new(),
    };
    let x = input.as_slice();
    let od = out.as_mut_slice();
    for s in 0..n {
        for c in 0..g.channels {
            let in_base = (s * g.channels + c) * g.in_h * g.in_w;
            let out_base = (s * g.channels + c) * oh * ow;
            for oy in 0..oh {
                for ox in 0..ow {
                    let y0 = oy * g.stride;
                    let x0 = ox * g.stride;
                    let y1 = (y0 + g.window).min(g.in_h);
                    let x1 = (x0 + g.window).min(g.in_w);
                    match kind {
                        PoolKind::Max => {
                            let mut best = f32::NEG_INFINITY;
                            let mut best_off = in_base + y0 * g.in_w + x0;
                            for iy in y0..y1 {
                                for ix in x0..x1 {
                                    let off = in_base + iy * g.in_w + ix;
                                    if x[off] > best {
                                        best = x[off];
                                        best_off = off;
                                    }
                                }
                            }
                            od[out_base + oy * ow + ox] = best;
                            argmax[out_base + oy * ow + ox] = best_off;
                        }
                        PoolKind::Avg => {
                            let mut acc = 0.0f32;
                            let count = ((y1 - y0) * (x1 - x0)) as f32;
                            for iy in y0..y1 {
                                for ix in x0..x1 {
                                    acc += x[in_base + iy * g.in_w + ix];
                                }
                            }
                            od[out_base + oy * ow + ox] = acc / count;
                        }
                    }
                }
            }
        }
    }
    Ok((out, argmax))
}

/// Backward pooling: scatters `grad_out` back onto the input.
///
/// `argmax` must be the vector returned by the matching [`pool_forward`]
/// call for `Max` pooling (it is ignored for `Avg`).
///
/// # Errors
///
/// Returns a shape error if `grad_out` disagrees with the geometry.
pub fn pool_backward(
    grad_out: &Tensor,
    kind: PoolKind,
    argmax: &[usize],
    g: &PoolGeometry,
) -> Result<Tensor> {
    let n = grad_out.shape().dim(0);
    let (oh, ow) = (g.out_h(), g.out_w());
    let expect = Shape::nchw(n, g.channels, oh, ow);
    if grad_out.shape() != &expect {
        return Err(TensorError::ShapeMismatch {
            left: grad_out.shape().clone(),
            right: expect,
            op: "pool_backward",
        });
    }
    let mut grad_in = Tensor::zeros([n, g.channels, g.in_h, g.in_w]);
    let gi = grad_in.as_mut_slice();
    let go = grad_out.as_slice();
    match kind {
        PoolKind::Max => {
            debug_assert_eq!(argmax.len(), go.len(), "argmax length mismatch");
            for (i, &src) in argmax.iter().enumerate() {
                gi[src] += go[i];
            }
        }
        PoolKind::Avg => {
            for s in 0..n {
                for c in 0..g.channels {
                    let in_base = (s * g.channels + c) * g.in_h * g.in_w;
                    let out_base = (s * g.channels + c) * oh * ow;
                    for oy in 0..oh {
                        for ox in 0..ow {
                            let y0 = oy * g.stride;
                            let x0 = ox * g.stride;
                            let y1 = (y0 + g.window).min(g.in_h);
                            let x1 = (x0 + g.window).min(g.in_w);
                            let share =
                                go[out_base + oy * ow + ox] / ((y1 - y0) * (x1 - x0)) as f32;
                            for iy in y0..y1 {
                                for ix in x0..x1 {
                                    gi[in_base + iy * g.in_w + ix] += share;
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    Ok(grad_in)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_ceil_mode() {
        // Caffe cifar10-quick pool1: 32×32, window 3, stride 2 → 16×16.
        let g = PoolGeometry::new(32, 32, 32, 3, 2).unwrap();
        assert_eq!((g.out_h(), g.out_w()), (16, 16));
        // Even split: 4→2 with window 2 stride 2.
        let g = PoolGeometry::new(1, 4, 4, 2, 2).unwrap();
        assert_eq!((g.out_h(), g.out_w()), (2, 2));
        // AlexNet pool1: 55×55 window 3 stride 2 → 27×27.
        let g = PoolGeometry::new(96, 55, 55, 3, 2).unwrap();
        assert_eq!((g.out_h(), g.out_w()), (27, 27));
    }

    #[test]
    fn geometry_validation() {
        assert!(PoolGeometry::new(0, 4, 4, 2, 2).is_err());
        assert!(PoolGeometry::new(1, 4, 4, 0, 2).is_err());
        assert!(PoolGeometry::new(1, 4, 4, 2, 0).is_err());
        assert!(PoolGeometry::new(1, 2, 2, 3, 1).is_err());
    }

    #[test]
    fn max_pool_known_values() {
        let x = Tensor::from_vec(
            vec![
                1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0, 11.0, 12.0, 13.0, 14.0, 15.0,
                16.0,
            ],
            Shape::nchw(1, 1, 4, 4),
        )
        .unwrap();
        let g = PoolGeometry::new(1, 4, 4, 2, 2).unwrap();
        let (y, arg) = pool_forward(&x, PoolKind::Max, &g).unwrap();
        assert_eq!(y.as_slice(), &[6.0, 8.0, 14.0, 16.0]);
        assert_eq!(arg, vec![5, 7, 13, 15]);
    }

    #[test]
    fn avg_pool_known_values() {
        let x = Tensor::from_vec((1..=16).map(|v| v as f32).collect(), Shape::nchw(1, 1, 4, 4))
            .unwrap();
        let g = PoolGeometry::new(1, 4, 4, 2, 2).unwrap();
        let (y, _) = pool_forward(&x, PoolKind::Avg, &g).unwrap();
        assert_eq!(y.as_slice(), &[3.5, 5.5, 11.5, 13.5]);
    }

    #[test]
    fn overhanging_window_avg_uses_true_count() {
        // 3×3 input, window 2 stride 2 → ceil gives 2×2 output; the corner
        // window covers a single element.
        let x =
            Tensor::from_vec((1..=9).map(|v| v as f32).collect(), Shape::nchw(1, 1, 3, 3)).unwrap();
        let g = PoolGeometry::new(1, 3, 3, 2, 2).unwrap();
        let (y, _) = pool_forward(&x, PoolKind::Avg, &g).unwrap();
        // Windows: {1,2,4,5}, {3,6}, {7,8}, {9}
        assert_eq!(y.as_slice(), &[3.0, 4.5, 7.5, 9.0]);
    }

    #[test]
    fn max_backward_routes_to_argmax_only() {
        let x = Tensor::from_vec(
            vec![1.0, 9.0, 2.0, 3.0, 4.0, 5.0, 8.0, 6.0, 7.0],
            Shape::nchw(1, 1, 3, 3),
        )
        .unwrap();
        let g = PoolGeometry::new(1, 3, 3, 3, 3).unwrap();
        let (y, arg) = pool_forward(&x, PoolKind::Max, &g).unwrap();
        assert_eq!(y.as_slice(), &[9.0]);
        let go = Tensor::from_vec(vec![2.5], Shape::nchw(1, 1, 1, 1)).unwrap();
        let gi = pool_backward(&go, PoolKind::Max, &arg, &g).unwrap();
        let mut expect = [0.0f32; 9];
        expect[1] = 2.5;
        assert_eq!(gi.as_slice(), &expect[..]);
    }

    #[test]
    fn avg_backward_spreads_uniformly() {
        let g = PoolGeometry::new(1, 2, 2, 2, 2).unwrap();
        let go = Tensor::from_vec(vec![4.0], Shape::nchw(1, 1, 1, 1)).unwrap();
        let gi = pool_backward(&go, PoolKind::Avg, &[], &g).unwrap();
        assert_eq!(gi.as_slice(), &[1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn pool_gradient_is_adjoint() {
        // ⟨pool(x), y⟩ sensitivity check via finite differences for both kinds.
        let g = PoolGeometry::new(2, 5, 5, 3, 2).unwrap();
        // Strictly distinct values (no ties), so the max-pool gradient is
        // well-defined at every point and finite differences are valid.
        let mut x = Tensor::from_fn([1, 2, 5, 5], |i| i as f32 * 0.137 + (i * i) as f32 * 0.011);
        for kind in [PoolKind::Max, PoolKind::Avg] {
            let (y, arg) = pool_forward(&x, kind, &g).unwrap();
            let ones = Tensor::ones(y.shape().clone());
            let gi = pool_backward(&ones, kind, &arg, &g).unwrap();
            let eps = 1e-3;
            for idx in [0usize, 12, 24, 37, 49] {
                let orig = x.as_slice()[idx];
                x.as_mut_slice()[idx] = orig + eps;
                let up = pool_forward(&x, kind, &g).unwrap().0.sum();
                x.as_mut_slice()[idx] = orig - eps;
                let down = pool_forward(&x, kind, &g).unwrap().0.sum();
                x.as_mut_slice()[idx] = orig;
                let numeric = (up - down) / (2.0 * eps);
                let analytic = gi.as_slice()[idx];
                assert!(
                    (numeric - analytic).abs() < 1e-2,
                    "{kind:?} idx {idx}: numeric {numeric} vs analytic {analytic}"
                );
            }
        }
    }

    #[test]
    fn batch_and_channel_independence() {
        // Pooling one 2-image batch equals pooling each image alone.
        let g = PoolGeometry::new(3, 4, 4, 2, 2).unwrap();
        let x = Tensor::from_fn([2, 3, 4, 4], |i| (i as f32).sin());
        let (full, _) = pool_forward(&x, PoolKind::Max, &g).unwrap();
        for s in 0..2 {
            let img = x.index_axis0(s).reshape([1, 3, 4, 4]).unwrap();
            let (one, _) = pool_forward(&img, PoolKind::Max, &g).unwrap();
            assert_eq!(full.index_axis0(s).as_slice(), one.index_axis0(0).as_slice());
        }
    }
}
