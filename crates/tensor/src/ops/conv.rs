//! 2-D convolution via im2col/col2im plus the GEMM kernel.

use serde::{Deserialize, Serialize};

use crate::error::{Result, TensorError};
use crate::ops::matmul::{gemm, gemm_serial, Transpose};
use crate::{Shape, Tensor};

/// Static geometry of a 2-D convolution: input extents, kernel, stride, pad.
///
/// The same geometry type drives the float framework (`mfdfp-nn`), the
/// integer inference engine (`mfdfp-core`) and the accelerator scheduler
/// (`mfdfp-accel`), so all three agree on output sizes and operation counts.
///
/// # Examples
///
/// ```
/// use mfdfp_tensor::ConvGeometry;
///
/// // CIFAR-10 "quick" conv1: 3×32×32 input, 32 kernels of 5×5, pad 2.
/// let g = ConvGeometry::new(3, 32, 32, 32, 5, 1, 2)?;
/// assert_eq!((g.out_h(), g.out_w()), (32, 32));
/// assert_eq!(g.macs(), 32 * 32 * 32 * 5 * 5 * 3);
/// # Ok::<(), mfdfp_tensor::TensorError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ConvGeometry {
    /// Input channels.
    pub in_c: usize,
    /// Input height.
    pub in_h: usize,
    /// Input width.
    pub in_w: usize,
    /// Output channels (number of kernels).
    pub out_c: usize,
    /// Square kernel side length.
    pub kernel: usize,
    /// Stride in both spatial dimensions.
    pub stride: usize,
    /// Zero padding on every border.
    pub pad: usize,
    /// Channel groups (AlexNet's dual-GPU convolutions use 2; 1 is an
    /// ordinary dense convolution). Group `g` connects input channels
    /// `[g·in_c/G, (g+1)·in_c/G)` to output channels
    /// `[g·out_c/G, (g+1)·out_c/G)`.
    pub groups: usize,
}

impl ConvGeometry {
    /// Creates and validates a convolution geometry.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::BadGeometry`] if any extent is zero, the
    /// stride is zero, or the padded input is smaller than the kernel.
    pub fn new(
        in_c: usize,
        in_h: usize,
        in_w: usize,
        out_c: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
    ) -> Result<Self> {
        if in_c == 0 || in_h == 0 || in_w == 0 || out_c == 0 || kernel == 0 {
            return Err(TensorError::BadGeometry("zero-sized convolution extent".into()));
        }
        if stride == 0 {
            return Err(TensorError::BadGeometry("stride must be positive".into()));
        }
        if in_h + 2 * pad < kernel || in_w + 2 * pad < kernel {
            return Err(TensorError::BadGeometry(format!(
                "kernel {kernel} larger than padded input {}x{}",
                in_h + 2 * pad,
                in_w + 2 * pad
            )));
        }
        Ok(ConvGeometry { in_c, in_h, in_w, out_c, kernel, stride, pad, groups: 1 })
    }

    /// Returns this geometry with `groups` channel groups.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::BadGeometry`] if `groups` is zero or does
    /// not divide both `in_c` and `out_c`.
    pub fn with_groups(mut self, groups: usize) -> Result<Self> {
        if groups == 0 {
            return Err(TensorError::BadGeometry("groups must be positive".into()));
        }
        if !self.in_c.is_multiple_of(groups) || !self.out_c.is_multiple_of(groups) {
            return Err(TensorError::BadGeometry(format!(
                "groups {groups} must divide in_c {} and out_c {}",
                self.in_c, self.out_c
            )));
        }
        self.groups = groups;
        Ok(self)
    }

    /// The geometry of one channel group (a dense convolution over
    /// `in_c/G` input and `out_c/G` output channels).
    pub fn group_geometry(&self) -> ConvGeometry {
        ConvGeometry {
            in_c: self.in_c / self.groups,
            out_c: self.out_c / self.groups,
            groups: 1,
            ..*self
        }
    }

    /// The stored weight tensor shape: `OutC × (InC/G) × k × k`.
    pub fn weight_dims(&self) -> [usize; 4] {
        [self.out_c, self.in_c / self.groups, self.kernel, self.kernel]
    }

    /// Output height.
    pub fn out_h(&self) -> usize {
        (self.in_h + 2 * self.pad - self.kernel) / self.stride + 1
    }

    /// Output width.
    pub fn out_w(&self) -> usize {
        (self.in_w + 2 * self.pad - self.kernel) / self.stride + 1
    }

    /// Number of weight parameters (excluding bias).
    pub fn weight_count(&self) -> usize {
        self.out_c * (self.in_c / self.groups) * self.kernel * self.kernel
    }

    /// Multiply-accumulate operations for one input image.
    pub fn macs(&self) -> usize {
        self.out_h() * self.out_w() * self.out_c * self.col_height()
    }

    /// Length of one im2col column (= synapses per output neuron).
    pub fn col_height(&self) -> usize {
        (self.in_c / self.groups) * self.kernel * self.kernel
    }

    /// Number of im2col columns (= output spatial positions).
    pub fn col_width(&self) -> usize {
        self.out_h() * self.out_w()
    }
}

/// Unrolls one `C×H×W` image into a `(C·k·k) × (OH·OW)` patch matrix.
///
/// Out-of-bounds (padding) positions contribute zeros.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `input` does not match the
/// geometry's `C×H×W` extents.
pub fn im2col(input: &Tensor, g: &ConvGeometry) -> Result<Tensor> {
    let expect = Shape::new(vec![g.in_c, g.in_h, g.in_w]);
    if input.shape() != &expect {
        return Err(TensorError::ShapeMismatch {
            left: input.shape().clone(),
            right: expect,
            op: "im2col",
        });
    }
    let (oh, ow) = (g.out_h(), g.out_w());
    let k = g.kernel;
    let mut cols = vec![0.0f32; g.col_height() * g.col_width()];
    let x = input.as_slice();
    let col_w = oh * ow;
    for c in 0..g.in_c {
        for ky in 0..k {
            for kx in 0..k {
                let row = (c * k + ky) * k + kx;
                let base = row * col_w;
                for oy in 0..oh {
                    let iy = (oy * g.stride + ky) as isize - g.pad as isize;
                    if iy < 0 || iy >= g.in_h as isize {
                        continue;
                    }
                    let iy = iy as usize;
                    for ox in 0..ow {
                        let ix = (ox * g.stride + kx) as isize - g.pad as isize;
                        if ix < 0 || ix >= g.in_w as isize {
                            continue;
                        }
                        cols[base + oy * ow + ox] = x[(c * g.in_h + iy) * g.in_w + ix as usize];
                    }
                }
            }
        }
    }
    Tensor::from_vec(cols, Shape::d2(g.col_height(), g.col_width()))
}

/// Batched `i8` im2col for the fused quantized conv path: gathers the
/// receptive fields of **all `batch` images at once** into one
/// `col_height × (OH·OW·batch)` column matrix, so a whole batch becomes a
/// single packed-GEMM call per layer (per group) instead of `batch` of
/// them.
///
/// Layout contract (the *element-interleaved* fused layout): activations
/// arrive with the batch innermost — element `e` of image `b` at
/// `input[e · batch + b]`, `e` in the usual `C×H×W` order — and the
/// column matrix is written the same way: synapse `s` of output pixel `p`
/// for image `b` lands at `xt[(s · npix + p) · batch + b]`. Because the
/// GEMM output `out_c × (npix · batch)` then has column index
/// `p · batch + b`, it **is** the next layer's element-interleaved input:
/// no transpose or re-staging anywhere between layers, and a linear
/// layer's interleaved activation buffer is directly its `k × batch`
/// column matrix. With `batch = 1` this degenerates to the per-image
/// im2col layout exactly.
///
/// The interleave also pays in the gather itself: each (synapse, pixel)
/// source decides the padding test **once** and then moves `batch`
/// contiguous bytes, so bounds logic is amortized across the batch.
///
/// `grp` selects one channel group of a grouped convolution (`0` for the
/// dense case); `xt` must hold exactly one group's column matrix.
///
/// # Errors
///
/// Returns [`TensorError::BadGeometry`] for a zero batch or an
/// out-of-range group, [`TensorError::DataLength`] if `input` is not
/// `batch` interleaved images or `xt` is not the group's
/// `col_height × npix × batch` column buffer.
pub fn im2col_batched_i8(
    input: &[i8],
    g: &ConvGeometry,
    grp: usize,
    batch: usize,
    xt: &mut [i8],
) -> Result<()> {
    if batch == 0 {
        return Err(TensorError::BadGeometry("batched im2col needs a positive batch".into()));
    }
    if grp >= g.groups {
        return Err(TensorError::BadGeometry(format!(
            "im2col group {grp} out of {} groups",
            g.groups
        )));
    }
    let expect_in = g.in_c * g.in_h * g.in_w * batch;
    if input.len() != expect_in {
        return Err(TensorError::DataLength { expected: expect_in, actual: input.len() });
    }
    let (oh, ow) = (g.out_h(), g.out_w());
    let npix = oh * ow;
    let group_in = g.in_c / g.groups;
    let syn = group_in * g.kernel * g.kernel;
    let expect_out = syn * npix * batch;
    if xt.len() != expect_out {
        return Err(TensorError::DataLength { expected: expect_out, actual: xt.len() });
    }
    let c_lo = grp * group_in;
    let k = g.kernel;
    let mut si = 0usize;
    for c in c_lo..c_lo + group_in {
        for ky in 0..k {
            for kx in 0..k {
                let row = &mut xt[si * npix * batch..(si + 1) * npix * batch];
                let mut pix = 0usize;
                for oy in 0..oh {
                    let iy = (oy * g.stride + ky) as isize - g.pad as isize;
                    if iy < 0 || iy >= g.in_h as isize {
                        // A padded source row zeroes `ow` whole pixel
                        // groups in one pass.
                        row[pix * batch..(pix + ow) * batch].fill(0);
                        pix += ow;
                        continue;
                    }
                    let iy = iy as usize;
                    if batch == 1 {
                        // Degenerate per-image layout: direct element
                        // stores — a variable-length 1-byte memcpy per
                        // pixel costs more than the move itself.
                        for ox in 0..ow {
                            let ix = (ox * g.stride + kx) as isize - g.pad as isize;
                            row[pix] = if ix < 0 || ix >= g.in_w as isize {
                                0
                            } else {
                                input[(c * g.in_h + iy) * g.in_w + ix as usize]
                            };
                            pix += 1;
                        }
                        continue;
                    }
                    for ox in 0..ow {
                        let ix = (ox * g.stride + kx) as isize - g.pad as isize;
                        let dst = &mut row[pix * batch..(pix + 1) * batch];
                        if ix < 0 || ix >= g.in_w as isize {
                            dst.fill(0);
                        } else {
                            let src = ((c * g.in_h + iy) * g.in_w + ix as usize) * batch;
                            dst.copy_from_slice(&input[src..src + batch]);
                        }
                        pix += 1;
                    }
                }
                si += 1;
            }
        }
    }
    Ok(())
}

/// Folds a patch matrix back into a `C×H×W` image, accumulating overlaps.
///
/// This is the adjoint of [`im2col`] and is used for the gradient with
/// respect to the convolution input.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `cols` does not have shape
/// `(C·k·k) × (OH·OW)`.
pub fn col2im(cols: &Tensor, g: &ConvGeometry) -> Result<Tensor> {
    let expect = Shape::d2(g.col_height(), g.col_width());
    if cols.shape() != &expect {
        return Err(TensorError::ShapeMismatch {
            left: cols.shape().clone(),
            right: expect,
            op: "col2im",
        });
    }
    let (oh, ow) = (g.out_h(), g.out_w());
    let k = g.kernel;
    let mut img = vec![0.0f32; g.in_c * g.in_h * g.in_w];
    let cd = cols.as_slice();
    let col_w = oh * ow;
    for c in 0..g.in_c {
        for ky in 0..k {
            for kx in 0..k {
                let row = (c * k + ky) * k + kx;
                let base = row * col_w;
                for oy in 0..oh {
                    let iy = (oy * g.stride + ky) as isize - g.pad as isize;
                    if iy < 0 || iy >= g.in_h as isize {
                        continue;
                    }
                    let iy = iy as usize;
                    for ox in 0..ow {
                        let ix = (ox * g.stride + kx) as isize - g.pad as isize;
                        if ix < 0 || ix >= g.in_w as isize {
                            continue;
                        }
                        img[(c * g.in_h + iy) * g.in_w + ix as usize] += cd[base + oy * ow + ox];
                    }
                }
            }
        }
    }
    Tensor::from_vec(img, Shape::new(vec![g.in_c, g.in_h, g.in_w]))
}

/// Computes one sample's output (`OutC×OH×OW`, flattened) into `out_sample`.
///
/// `gemm_fn` selects the GEMM kernel so the batch-parallel path can use the
/// serial kernel per worker (avoiding nested fan-out) while the serial path
/// lets the row-parallel GEMM accelerate single large images. Every kernel
/// choice accumulates in the same order, so the output bits never depend on
/// the schedule.
fn conv2d_forward_sample<G>(
    img: &Tensor,
    wmat: &Tensor,
    bias: &Tensor,
    g: &ConvGeometry,
    gg: &ConvGeometry,
    gemm_fn: &G,
    out_sample: &mut [f32],
) -> Result<()>
where
    G: Fn(&Tensor, Transpose, &Tensor, Transpose) -> Result<Tensor>,
{
    let spatial = g.out_h() * g.out_w();
    for grp in 0..g.groups {
        let gi = slice_channels(img, grp * gg.in_c, (grp + 1) * gg.in_c)?;
        let cols = im2col(&gi, gg)?;
        let wrows = slice_rows(wmat, grp * gg.out_c, (grp + 1) * gg.out_c)?;
        let gy = gemm_fn(&wrows, Transpose::No, &cols, Transpose::No)?;
        out_sample[grp * gg.out_c * spatial..(grp + 1) * gg.out_c * spatial]
            .copy_from_slice(gy.as_slice());
    }
    let bd = bias.as_slice();
    for oc in 0..g.out_c {
        let b = bd[oc];
        for v in &mut out_sample[oc * spatial..(oc + 1) * spatial] {
            *v += b;
        }
    }
    Ok(())
}

/// Batched convolution forward pass.
///
/// * `input` — `N×C×H×W`
/// * `weights` — `OutC×C×k×k`
/// * `bias` — `OutC`
///
/// Returns `N×OutC×OH×OW`.
///
/// With the `parallel` cargo feature enabled, large batches are split
/// across OS threads (one contiguous sample range per worker) and large
/// single images fall through to the row-parallel [`gemm`]; either way the
/// output is bit-identical to [`conv2d_forward_serial`].
///
/// # Errors
///
/// Returns a shape error if any operand disagrees with the geometry.
pub fn conv2d_forward(
    input: &Tensor,
    weights: &Tensor,
    bias: &Tensor,
    g: &ConvGeometry,
) -> Result<Tensor> {
    #[cfg(feature = "parallel")]
    {
        let n = input.shape().dim(0);
        if n >= 2 && n * g.macs() >= crate::par::MIN_MACS && crate::par::threads() >= 2 {
            return conv2d_forward_parallel(input, weights, bias, g);
        }
    }
    // Small batch: serial sample loop, but let the (possibly row-parallel)
    // dispatching `gemm` accelerate large single images.
    conv2d_forward_with(input, weights, bias, g, &gemm)
}

/// Shared serial batch loop; `gemm_fn` picks the GEMM kernel.
fn conv2d_forward_with<G>(
    input: &Tensor,
    weights: &Tensor,
    bias: &Tensor,
    g: &ConvGeometry,
    gemm_fn: &G,
) -> Result<Tensor>
where
    G: Fn(&Tensor, Transpose, &Tensor, Transpose) -> Result<Tensor>,
{
    let n = input.shape().dim(0);
    check_conv_operands(input, weights, bias, g)?;
    let gg = g.group_geometry();
    let wmat = weights.reshape([g.out_c, g.col_height()])?;
    let mut out = Tensor::zeros([n, g.out_c, g.out_h(), g.out_w()]);
    let sample_stride = g.out_c * g.out_h() * g.out_w();
    for (s, out_sample) in out.as_mut_slice().chunks_mut(sample_stride).enumerate() {
        let img = input.index_axis0(s);
        conv2d_forward_sample(&img, &wmat, bias, g, &gg, gemm_fn, out_sample)?;
    }
    Ok(out)
}

/// Single-threaded convolution forward — the deterministic reference path
/// (serial batch loop over the serial GEMM kernel).
///
/// # Errors
///
/// Returns a shape error if any operand disagrees with the geometry.
pub fn conv2d_forward_serial(
    input: &Tensor,
    weights: &Tensor,
    bias: &Tensor,
    g: &ConvGeometry,
) -> Result<Tensor> {
    conv2d_forward_with(input, weights, bias, g, &gemm_serial)
}

/// Batch-parallel convolution forward: samples are split across the
/// persistent `mfdfp-rt` pool, each task running the serial GEMM kernel on
/// its own disjoint output range. Bit-identical to [`conv2d_forward_serial`].
///
/// Prefer [`conv2d_forward`], which picks this path only when the batch is
/// large enough to repay the pool dispatch.
///
/// # Errors
///
/// Returns a shape error if any operand disagrees with the geometry.
#[cfg(feature = "parallel")]
pub fn conv2d_forward_parallel(
    input: &Tensor,
    weights: &Tensor,
    bias: &Tensor,
    g: &ConvGeometry,
) -> Result<Tensor> {
    let n = input.shape().dim(0);
    check_conv_operands(input, weights, bias, g)?;
    let gg = g.group_geometry();
    let wmat = weights.reshape([g.out_c, g.col_height()])?;
    let mut out = Tensor::zeros([n, g.out_c, g.out_h(), g.out_w()]);
    let sample_stride = g.out_c * g.out_h() * g.out_w();
    // Treat samples as "rows" of width `sample_stride`; operands were
    // validated above, so per-sample errors are unreachable.
    crate::par::for_each_row_chunk(out.as_mut_slice(), n, sample_stride, |s0, count, chunk| {
        for (off, out_sample) in chunk.chunks_mut(sample_stride).enumerate() {
            debug_assert!(off < count);
            let img = input.index_axis0(s0 + off);
            conv2d_forward_sample(&img, &wmat, bias, g, &gg, &gemm_serial, out_sample)
                .expect("conv operands validated before fan-out");
        }
    });
    Ok(out)
}

/// Extracts channels `[c0, c1)` from a `C×H×W` image.
fn slice_channels(img: &Tensor, c0: usize, c1: usize) -> Result<Tensor> {
    let dims = img.shape().dims();
    let (h, w) = (dims[1], dims[2]);
    let plane = h * w;
    let data = img.as_slice()[c0 * plane..c1 * plane].to_vec();
    Tensor::from_vec(data, Shape::new(vec![c1 - c0, h, w]))
}

/// Extracts rows `[r0, r1)` of a rank-2 tensor.
fn slice_rows(m: &Tensor, r0: usize, r1: usize) -> Result<Tensor> {
    let cols = m.shape().dim(1);
    let data = m.as_slice()[r0 * cols..r1 * cols].to_vec();
    Tensor::from_vec(data, Shape::d2(r1 - r0, cols))
}

/// Gradients of a batched convolution.
///
/// Given upstream gradient `grad_out` (`N×OutC×OH×OW`), returns
/// `(grad_input, grad_weights, grad_bias)` with the shapes of the
/// corresponding forward operands. Weight and bias gradients are summed over
/// the batch.
///
/// # Errors
///
/// Returns a shape error if any operand disagrees with the geometry.
pub fn conv2d_backward(
    input: &Tensor,
    weights: &Tensor,
    grad_out: &Tensor,
    g: &ConvGeometry,
) -> Result<(Tensor, Tensor, Tensor)> {
    let n = input.shape().dim(0);
    let (oh, ow) = (g.out_h(), g.out_w());
    let expect_go = Shape::nchw(n, g.out_c, oh, ow);
    if grad_out.shape() != &expect_go {
        return Err(TensorError::ShapeMismatch {
            left: grad_out.shape().clone(),
            right: expect_go,
            op: "conv2d_backward (grad_out)",
        });
    }
    let gg = g.group_geometry();
    let wmat = weights.reshape([g.out_c, g.col_height()])?;
    let mut grad_input = Tensor::zeros(input.shape().clone());
    let mut grad_w = Tensor::zeros([g.out_c, g.col_height()]);
    let mut grad_b = Tensor::zeros([g.out_c]);
    let spatial = oh * ow;
    for s in 0..n {
        let img = input.index_axis0(s);
        let go = grad_out.index_axis0(s).reshape([g.out_c, spatial])?;
        let mut dimg = Tensor::zeros([g.in_c, g.in_h, g.in_w]);
        for grp in 0..g.groups {
            let gi = slice_channels(&img, grp * gg.in_c, (grp + 1) * gg.in_c)?;
            let cols = im2col(&gi, &gg)?;
            let ggo = slice_rows(&go, grp * gg.out_c, (grp + 1) * gg.out_c)?;
            // dW += dOut × colsᵀ (this group's rows)
            let dw = gemm(&ggo, Transpose::No, &cols, Transpose::Yes)?;
            let row_len = g.col_height();
            for (r, dst) in (grp * gg.out_c..(grp + 1) * gg.out_c).enumerate() {
                for c in 0..row_len {
                    grad_w.as_mut_slice()[dst * row_len + c] += dw.as_slice()[r * row_len + c];
                }
            }
            // dX = col2im(Wᵀ × dOut) (this group's channels)
            let wrows = slice_rows(&wmat, grp * gg.out_c, (grp + 1) * gg.out_c)?;
            let dcols = gemm(&wrows, Transpose::Yes, &ggo, Transpose::No)?;
            let gdimg = col2im(&dcols, &gg)?;
            let plane = g.in_h * g.in_w;
            dimg.as_mut_slice()[grp * gg.in_c * plane..(grp + 1) * gg.in_c * plane]
                .copy_from_slice(gdimg.as_slice());
        }
        // dBias += row sums of dOut
        {
            let gb = grad_b.as_mut_slice();
            let god = go.as_slice();
            for oc in 0..g.out_c {
                gb[oc] += god[oc * spatial..(oc + 1) * spatial].iter().sum::<f32>();
            }
        }
        grad_input.set_axis0(s, &dimg);
    }
    let grad_w = grad_w.reshape(g.weight_dims().to_vec())?;
    Ok((grad_input, grad_w, grad_b))
}

fn check_conv_operands(
    input: &Tensor,
    weights: &Tensor,
    bias: &Tensor,
    g: &ConvGeometry,
) -> Result<()> {
    let n = input.shape().dim(0);
    let expect_in = Shape::nchw(n, g.in_c, g.in_h, g.in_w);
    if input.shape() != &expect_in {
        return Err(TensorError::ShapeMismatch {
            left: input.shape().clone(),
            right: expect_in,
            op: "conv2d (input)",
        });
    }
    let wd = g.weight_dims();
    let expect_w = Shape::nchw(wd[0], wd[1], wd[2], wd[3]);
    if weights.shape() != &expect_w {
        return Err(TensorError::ShapeMismatch {
            left: weights.shape().clone(),
            right: expect_w,
            op: "conv2d (weights)",
        });
    }
    let expect_b = Shape::d1(g.out_c);
    if bias.shape() != &expect_b {
        return Err(TensorError::ShapeMismatch {
            left: bias.shape().clone(),
            right: expect_b,
            op: "conv2d (bias)",
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_conv(input: &Tensor, weights: &Tensor, bias: &Tensor, g: &ConvGeometry) -> Tensor {
        let n = input.shape().dim(0);
        let (oh, ow) = (g.out_h(), g.out_w());
        let mut out = Tensor::zeros([n, g.out_c, oh, ow]);
        for s in 0..n {
            for oc in 0..g.out_c {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = bias.as_slice()[oc];
                        for c in 0..g.in_c {
                            for ky in 0..g.kernel {
                                for kx in 0..g.kernel {
                                    let iy = (oy * g.stride + ky) as isize - g.pad as isize;
                                    let ix = (ox * g.stride + kx) as isize - g.pad as isize;
                                    if iy < 0
                                        || ix < 0
                                        || iy >= g.in_h as isize
                                        || ix >= g.in_w as isize
                                    {
                                        continue;
                                    }
                                    acc += input.at(&[s, c, iy as usize, ix as usize])
                                        * weights.at(&[oc, c, ky, kx]);
                                }
                            }
                        }
                        *out.at_mut(&[s, oc, oy, ox]) = acc;
                    }
                }
            }
        }
        out
    }

    fn det_tensor(shape: &[usize], scale: f32) -> Tensor {
        // Deterministic pseudo-random-ish values without an RNG dependency.
        Tensor::from_fn(shape.to_vec(), |i| {
            let v = ((i * 2654435761) % 1000) as f32 / 1000.0 - 0.5;
            v * scale
        })
    }

    #[test]
    fn geometry_output_sizes() {
        let g = ConvGeometry::new(3, 32, 32, 32, 5, 1, 2).unwrap();
        assert_eq!((g.out_h(), g.out_w()), (32, 32));
        let g = ConvGeometry::new(3, 227, 227, 96, 11, 4, 0).unwrap();
        assert_eq!((g.out_h(), g.out_w()), (55, 55)); // AlexNet conv1
        let g = ConvGeometry::new(1, 4, 4, 1, 3, 1, 0).unwrap();
        assert_eq!((g.out_h(), g.out_w()), (2, 2));
    }

    #[test]
    fn geometry_validation() {
        assert!(ConvGeometry::new(0, 8, 8, 4, 3, 1, 0).is_err());
        assert!(ConvGeometry::new(3, 8, 8, 4, 3, 0, 0).is_err());
        assert!(ConvGeometry::new(3, 2, 2, 4, 5, 1, 0).is_err());
        assert!(ConvGeometry::new(3, 2, 2, 4, 5, 1, 2).is_ok()); // pad rescues it
    }

    #[test]
    fn geometry_macs_and_params() {
        let g = ConvGeometry::new(3, 32, 32, 32, 5, 1, 2).unwrap();
        assert_eq!(g.weight_count(), 32 * 3 * 25);
        assert_eq!(g.macs(), 32 * 32 * 32 * 75);
    }

    #[test]
    fn im2col_identity_kernel() {
        // 1×1 kernel, no pad: im2col is just a reshape.
        let g = ConvGeometry::new(2, 3, 3, 1, 1, 1, 0).unwrap();
        let img = det_tensor(&[2, 3, 3], 1.0);
        let cols = im2col(&img, &g).unwrap();
        assert_eq!(cols.shape().dims(), &[2, 9]);
        assert_eq!(cols.as_slice(), img.as_slice());
    }

    #[test]
    fn im2col_known_values() {
        // 1 channel 3×3 image, 2×2 kernel, stride 1, no pad.
        let img = Tensor::from_vec((1..=9).map(|v| v as f32).collect(), Shape::new(vec![1, 3, 3]))
            .unwrap();
        let g = ConvGeometry::new(1, 3, 3, 1, 2, 1, 0).unwrap();
        let cols = im2col(&img, &g).unwrap();
        // Columns are output positions (4), rows kernel taps (4).
        assert_eq!(cols.shape().dims(), &[4, 4]);
        // First row: top-left tap over the 4 windows.
        assert_eq!(&cols.as_slice()[0..4], &[1.0, 2.0, 4.0, 5.0]);
        // Last row: bottom-right tap.
        assert_eq!(&cols.as_slice()[12..16], &[5.0, 6.0, 8.0, 9.0]);
    }

    #[test]
    fn forward_matches_naive_padded_strided() {
        for (stride, pad) in [(1, 0), (1, 2), (2, 1), (2, 2)] {
            let g = ConvGeometry::new(3, 8, 8, 4, 3, stride, pad).unwrap();
            let x = det_tensor(&[2, 3, 8, 8], 1.0);
            let w = det_tensor(&[4, 3, 3, 3], 0.5);
            let b = det_tensor(&[4], 0.1);
            let fast = conv2d_forward(&x, &w, &b, &g).unwrap();
            let slow = naive_conv(&x, &w, &b, &g);
            assert_eq!(fast.shape(), slow.shape());
            for (a, c) in fast.as_slice().iter().zip(slow.as_slice()) {
                assert!((a - c).abs() < 1e-4, "stride={stride} pad={pad}: {a} vs {c}");
            }
        }
    }

    #[test]
    fn forward_rejects_bad_shapes() {
        let g = ConvGeometry::new(3, 8, 8, 4, 3, 1, 0).unwrap();
        let x = Tensor::zeros([2, 3, 8, 8]);
        let w = Tensor::zeros([4, 3, 3, 3]);
        let b = Tensor::zeros([4]);
        assert!(conv2d_forward(&x, &w, &b, &g).is_ok());
        let bad_w = Tensor::zeros([4, 3, 5, 5]);
        assert!(conv2d_forward(&x, &bad_w, &b, &g).is_err());
        let bad_b = Tensor::zeros([5]);
        assert!(conv2d_forward(&x, &w, &bad_b, &g).is_err());
        let bad_x = Tensor::zeros([2, 1, 8, 8]);
        assert!(conv2d_forward(&bad_x, &w, &b, &g).is_err());
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // ⟨im2col(x), y⟩ == ⟨x, col2im(y)⟩ — the defining adjoint property,
        // which is exactly what backprop relies on.
        let g = ConvGeometry::new(2, 6, 6, 3, 3, 2, 1).unwrap();
        let x = det_tensor(&[2, 6, 6], 1.0);
        let y = det_tensor(&[g.col_height(), g.col_width()], 1.0);
        let lhs = im2col(&x, &g).unwrap().dot(&y).unwrap();
        let rhs = x.dot(&col2im(&y, &g).unwrap()).unwrap();
        assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs}");
    }

    #[test]
    fn backward_weight_grad_matches_finite_difference() {
        let g = ConvGeometry::new(2, 5, 5, 3, 3, 1, 1).unwrap();
        let x = det_tensor(&[1, 2, 5, 5], 1.0);
        let mut w = det_tensor(&[3, 2, 3, 3], 0.5);
        let b = det_tensor(&[3], 0.1);

        // Loss = sum(conv(x)) ⇒ upstream gradient of ones.
        let out_shape = [1, 3, g.out_h(), g.out_w()];
        let ones = Tensor::ones(out_shape.to_vec());
        let (_, gw, gb) = conv2d_backward(&x, &w, &ones, &g).unwrap();

        let eps = 1e-2;
        for idx in [0usize, 7, 23, 53] {
            let orig = w.as_slice()[idx];
            w.as_mut_slice()[idx] = orig + eps;
            let up = conv2d_forward(&x, &w, &b, &g).unwrap().sum();
            w.as_mut_slice()[idx] = orig - eps;
            let down = conv2d_forward(&x, &w, &b, &g).unwrap().sum();
            w.as_mut_slice()[idx] = orig;
            let numeric = (up - down) / (2.0 * eps);
            let analytic = gw.as_slice()[idx];
            assert!(
                (numeric - analytic).abs() < 1e-2,
                "weight {idx}: numeric {numeric} vs analytic {analytic}"
            );
        }
        // Bias gradient of a sum-loss is the number of output positions.
        let spatial = (g.out_h() * g.out_w()) as f32;
        for &gbv in gb.as_slice() {
            assert!((gbv - spatial).abs() < 1e-3);
        }
    }

    #[test]
    fn backward_input_grad_matches_finite_difference() {
        let g = ConvGeometry::new(1, 4, 4, 2, 3, 1, 0).unwrap();
        let mut x = det_tensor(&[1, 1, 4, 4], 1.0);
        let w = det_tensor(&[2, 1, 3, 3], 0.5);
        let b = Tensor::zeros([2]);
        let ones = Tensor::ones(vec![1, 2, g.out_h(), g.out_w()]);
        let (gx, _, _) = conv2d_backward(&x, &w, &ones, &g).unwrap();
        let eps = 1e-2;
        for idx in [0usize, 5, 10, 15] {
            let orig = x.as_slice()[idx];
            x.as_mut_slice()[idx] = orig + eps;
            let up = conv2d_forward(&x, &w, &b, &g).unwrap().sum();
            x.as_mut_slice()[idx] = orig - eps;
            let down = conv2d_forward(&x, &w, &b, &g).unwrap().sum();
            x.as_mut_slice()[idx] = orig;
            let numeric = (up - down) / (2.0 * eps);
            let analytic = gx.as_slice()[idx];
            assert!(
                (numeric - analytic).abs() < 1e-2,
                "input {idx}: numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn grouped_geometry_validation() {
        let g = ConvGeometry::new(4, 8, 8, 6, 3, 1, 1).unwrap();
        assert!(g.with_groups(0).is_err());
        assert!(g.with_groups(3).is_err()); // 4 % 3 != 0
        let g2 = g.with_groups(2).unwrap();
        assert_eq!(g2.groups, 2);
        assert_eq!(g2.weight_dims(), [6, 2, 3, 3]);
        assert_eq!(g2.weight_count(), 6 * 2 * 9);
        assert_eq!(g2.col_height(), 2 * 9);
        // Grouping halves the MACs.
        assert_eq!(g2.macs() * 2, g.macs());
    }

    #[test]
    fn grouped_forward_matches_two_independent_convs() {
        // A 2-group conv must equal two dense convs over the channel halves.
        let g = ConvGeometry::new(4, 6, 6, 4, 3, 1, 1).unwrap().with_groups(2).unwrap();
        let half = g.group_geometry();
        let x = det_tensor(&[1, 4, 6, 6], 1.0);
        let w = det_tensor(&[4, 2, 3, 3], 0.5);
        let b = det_tensor(&[4], 0.1);
        let full = conv2d_forward(&x, &w, &b, &g).unwrap();

        // Manual per-group computation.
        for grp in 0..2 {
            let xi = Tensor::from_vec(
                x.as_slice()[grp * 2 * 36..(grp + 1) * 2 * 36].to_vec(),
                Shape::nchw(1, 2, 6, 6),
            )
            .unwrap();
            let wi = Tensor::from_vec(
                w.as_slice()[grp * 2 * 18..(grp + 1) * 2 * 18].to_vec(),
                Shape::nchw(2, 2, 3, 3),
            )
            .unwrap();
            let bi = Tensor::from_slice(&b.as_slice()[grp * 2..(grp + 1) * 2]);
            let yi = conv2d_forward(&xi, &wi, &bi, &half).unwrap();
            let plane = 36;
            for oc in 0..2 {
                for p in 0..plane {
                    let full_v = full.as_slice()[(grp * 2 + oc) * plane + p];
                    let part_v = yi.as_slice()[oc * plane + p];
                    assert!((full_v - part_v).abs() < 1e-5, "group {grp} oc {oc} p {p}");
                }
            }
        }
    }

    #[test]
    fn grouped_backward_matches_finite_difference() {
        let g = ConvGeometry::new(4, 5, 5, 4, 3, 1, 1).unwrap().with_groups(2).unwrap();
        let x = det_tensor(&[1, 4, 5, 5], 1.0);
        let mut w = det_tensor(&[4, 2, 3, 3], 0.5);
        let b = det_tensor(&[4], 0.1);
        let ones = Tensor::ones(vec![1, 4, g.out_h(), g.out_w()]);
        let (gx, gw, _) = conv2d_backward(&x, &w, &ones, &g).unwrap();
        assert_eq!(gx.shape(), x.shape());
        assert_eq!(gw.shape().dims(), &[4, 2, 3, 3]);
        let eps = 1e-2;
        for idx in [0usize, 17, 40, 71] {
            let orig = w.as_slice()[idx];
            w.as_mut_slice()[idx] = orig + eps;
            let up = conv2d_forward(&x, &w, &b, &g).unwrap().sum();
            w.as_mut_slice()[idx] = orig - eps;
            let down = conv2d_forward(&x, &w, &b, &g).unwrap().sum();
            w.as_mut_slice()[idx] = orig;
            let numeric = (up - down) / (2.0 * eps);
            assert!(
                (numeric - gw.as_slice()[idx]).abs() < 1e-2,
                "weight {idx}: numeric {numeric} vs analytic {}",
                gw.as_slice()[idx]
            );
        }
    }

    #[test]
    fn grouped_blocks_cross_group_gradient_flow() {
        // Input channels of group 0 must get zero gradient from output
        // channels of group 1.
        let g = ConvGeometry::new(2, 4, 4, 2, 3, 1, 1).unwrap().with_groups(2).unwrap();
        let x = det_tensor(&[1, 2, 4, 4], 1.0);
        let w = det_tensor(&[2, 1, 3, 3], 0.5);
        // Upstream gradient only on output channel 1 (group 1).
        let mut go = Tensor::zeros([1, 2, 4, 4]);
        for p in 0..16 {
            go.as_mut_slice()[16 + p] = 1.0;
        }
        let (gx, _, _) = conv2d_backward(&x, &w, &go, &g).unwrap();
        // Gradient w.r.t. input channel 0 (group 0) must be all zero.
        assert!(gx.as_slice()[..16].iter().all(|&v| v == 0.0));
        assert!(gx.as_slice()[16..].iter().any(|&v| v != 0.0));
    }
}
