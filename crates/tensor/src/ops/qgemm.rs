//! Shift-only GEMM over packed 4-bit power-of-two weight codes — the
//! paper's signature operation, specialised for its encoding.
//!
//! The decode-based datapath model (`mac_reduce` in `mfdfp-accel`) unpacks
//! every nibble to a `Pow2Weight` and dispatches a per-element
//! [`mul_shift`](mfdfp_dfp::Pow2Weight::mul_shift); correct, but the
//! hottest loop in the system pays decode and branch cost on every
//! synapse. This kernel instead streams the packed bytes of a
//! [`PackedPow2Matrix`] and resolves each nibble code `c` through two
//! 16-entry tables — **no branch and no multiply anywhere in the loop**:
//!
//! * `SHIFT[c]` — the left-shift amount `e + 7 ∈ [0, 7]` (bits 2..0 of
//!   the code store `−e`),
//! * `SIGN_MASK[c]` — an all-ones/all-zero mask (bit 3 of the code stores
//!   the sign); the product is `((x << SHIFT[c]) ^ m) − m`, the classic
//!   branch-free negate-by-mask, splitting each contribution onto the
//!   positive or negative side of the accumulation.
//!
//! The loop nest is arranged so the table lookups happen **once per
//! weight nibble, not once per MAC**: activations arrive in the standard
//! im2col layout (`k × ncols`, one synapse's values across all output
//! columns contiguous), the nibble's shift amount and sign mask hoist out
//! of the column loop, and what remains per MAC is `shift, xor, sub, add`
//! with a loop-invariant shift count — a shape LLVM auto-vectorizes.
//! Partial sums accumulate in 32-bit lanes (products fit 16 bits, so
//! 2^14-synapse chunks cannot overflow) and flush to the 64-bit
//! accumulator per chunk; the row result plus bias is routed to the 8-bit
//! output exactly like the hardware's "Accumulator & Routing" block.
//! Because the products are the same integers the decode path computes
//! and integer addition is associative, the result is **bit-identical**
//! to the decode-based reference for every input (property-tested in
//! `crates/accel/tests/qgemm_equivalence.rs`).
//!
//! Two activation widths enter the same kernel: the historical `i32`
//! staging entries ([`qgemm_into`]/[`qgemm`]) and the `i8` streaming
//! entries ([`qgemm_into_i8`]/[`qgemm_i8`]) that take raw activation
//! codes — a quarter of the im2col bandwidth, widened in register, with
//! the operand audit made *structural* (an 8-bit code cannot exceed the
//! 9-bit bound, so the per-call scan disappears). The kernel's
//! accumulator lanes live in per-thread scratch (`with_acc_lanes` in the
//! [`crate::workspace`] module), so a warmed thread — e.g. a persistent
//! `mfdfp-rt` pool worker — runs the kernel with zero heap allocations.
//!
//! Audits: `i32` operands are checked against the 9-bit bound that keeps
//! every shifted product inside the 16-bit product register, and each
//! routed accumulator is checked against the 32-bit accumulator register —
//! [`TensorError::QuantizedOverflow`] mirrors the decode path's
//! per-level overflow audits at kernel granularity. The bit-identical
//! contract is over **successful** results: the decode path audits the
//! 32-bit accumulator after every 16-product chunk, this kernel audits
//! the final per-output sum, so a layer whose same-sign partials
//! transiently exceed 2^31 before cancelling back (needs > 2^16 synapses
//! of worst-case magnitude — far beyond any layer here, whose bound the
//! `Accumulator` docs derive as ≤ 2^26) can error on one path and route
//! on the other.

use mfdfp_dfp::{fits_in_bits, realign, saturate, PackedPow2Matrix, ACCUMULATOR_BITS};

use crate::error::{Result, TensorError};
use crate::workspace::with_acc_lanes;

/// Activation element the band kernel streams: widened to `i32` in
/// register, one load per MAC. Sealed — the two implementations are the
/// kernel's two entry widths.
///
/// * `i32` — the historical im2col staging type; operands must pass the
///   9-bit audit before entering the kernel.
/// * `i8` — raw activation codes. Every `i8` is structurally inside the
///   9-bit operand bound, so this path has **no audit scan at all** and
///   moves a quarter of the bytes.
pub trait QgemmAct: Copy + Send + Sync + sealed::Sealed {
    /// One synapse's contribution across a whole activation row:
    /// `acc[j] += ((x[j] << sh) ^ m) − m` — the negate-by-mask MAC body,
    /// staged at whatever intermediate width suits the element type.
    fn accumulate_row(acc: &mut [i32], xrow: &[Self], sh: u32, m: i32);
}

mod sealed {
    /// Seals [`super::QgemmAct`] to the two kernel widths.
    pub trait Sealed {}
    impl Sealed for i32 {}
    impl Sealed for i8 {}
}

/// Row width below which the multiversioned SIMD body is not worth its
/// call overhead: narrow rows — above all `ncols = 1`, every
/// `ShiftLinear` — take the always-inlined scalar body instead, so the
/// feature check and the non-inlinable `#[target_feature]` call are
/// hoisted out of the per-synapse path exactly where they cannot pay.
const SIMD_MIN_ROW: usize = 16;

impl QgemmAct for i32 {
    #[inline]
    fn accumulate_row(acc: &mut [i32], xrow: &[Self], sh: u32, m: i32) {
        #[cfg(target_arch = "x86_64")]
        if xrow.len() >= SIMD_MIN_ROW && std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: the AVX2 requirement is runtime-checked just above
            // (the detection result is cached by std, so this is a load
            // and branch, not a CPUID, on the hot path).
            unsafe { accumulate_row_i32_avx2(acc, xrow, sh, m) };
            return;
        }
        for (a, &x) in acc.iter_mut().zip(xrow) {
            *a += ((x << sh) ^ m) - m;
        }
    }
}

impl QgemmAct for i8 {
    /// The shifted product of an 8-bit code fits 16 bits (`|x| ≤ 128`,
    /// `sh ≤ 7` ⇒ `|x << sh| ≤ 2^14` — the same bound the 9-bit operand
    /// audit enforces on the `i32` path), so the shift and the
    /// negate-by-mask run at `i16` width and only the final accumulate
    /// widens to 32 bits. Exact at every step, hence bit-identical to
    /// the `i32` body — and twice the SIMD lanes for the hot ops.
    #[inline]
    fn accumulate_row(acc: &mut [i32], xrow: &[Self], sh: u32, m: i32) {
        #[cfg(target_arch = "x86_64")]
        if xrow.len() >= SIMD_MIN_ROW && std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: the AVX2 requirement is runtime-checked just above.
            unsafe { accumulate_row_i8_avx2(acc, xrow, sh, m) };
            return;
        }
        let m16 = m as i16;
        for (a, &x) in acc.iter_mut().zip(xrow) {
            let p = (((x as i16) << sh) ^ m16) - m16;
            *a += p as i32;
        }
    }
}

/// The `i32` MAC body compiled with AVX2 codegen: identical Rust to the
/// portable body in [`QgemmAct::accumulate_row`], so results are
/// bit-identical — integer shift/xor/sub/add do not change meaning with
/// vector width; only the throughput does (~2× on the 256-column
/// microbenchmark versus baseline SSE2 codegen).
///
/// # Safety
///
/// Callers must have verified AVX2 support at runtime
/// (`is_x86_feature_detected!("avx2")`).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn accumulate_row_i32_avx2(acc: &mut [i32], xrow: &[i32], sh: u32, m: i32) {
    for (a, &x) in acc.iter_mut().zip(xrow) {
        *a += ((x << sh) ^ m) - m;
    }
}

/// The `i8` MAC body compiled with AVX2 codegen (see
/// [`accumulate_row_i32_avx2`] for the multiversioning contract): the
/// `i16`-staged shift/negate runs 16 lanes per instruction, which is
/// what lets the byte-streamed entry match the `i32` entry's in-cache
/// throughput while moving a quarter of the bytes.
///
/// # Safety
///
/// Callers must have verified AVX2 support at runtime.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn accumulate_row_i8_avx2(acc: &mut [i32], xrow: &[i8], sh: u32, m: i32) {
    let m16 = m as i16;
    for (a, &x) in acc.iter_mut().zip(xrow) {
        let p = (((x as i16) << sh) ^ m16) - m16;
        *a += p as i32;
    }
}

/// Left-shift amount per 4-bit code: `e + 7` where `e = −(code & 7)`.
const SHIFT: [u32; 16] = build_shift_table();
/// Negate-by-mask operand per 4-bit code: `-1` (all ones) for
/// negative-sign codes (bit 3 set), `0` otherwise; the signed product is
/// `(shifted ^ mask) − mask`.
const SIGN_MASK: [i32; 16] = build_sign_table();

/// Largest activation magnitude whose worst-case product (`x << 7`) still
/// fits the 16-bit product register: `x ∈ [−256, 255]`. 8-bit activation
/// codes are comfortably inside.
const X_BITS: u8 = 9;

/// Synapse-chunk length for the 32-bit partial accumulators: products fit
/// 16 bits, so `2^14` of them can reach at most `2^30` in magnitude —
/// safely inside `i32` — before flushing to the 64-bit accumulator.
const ACC32_CHUNK: usize = 1 << 14;

const fn build_shift_table() -> [u32; 16] {
    let mut t = [0u32; 16];
    let mut c = 0;
    while c < 16 {
        t[c] = 7 - (c as u32 & 7);
        c += 1;
    }
    t
}

const fn build_sign_table() -> [i32; 16] {
    let mut t = [0i32; 16];
    let mut c = 0;
    while c < 16 {
        t[c] = if c & 8 != 0 { -1 } else { 0 };
        c += 1;
    }
    t
}

/// Audits `i32` operands against the 9-bit bound that keeps every shifted
/// product inside the 16-bit product register. The `i8` entry never calls
/// this: an 8-bit code is structurally inside the bound, which is what
/// lets that path delete the O(k·ncols) scan entirely.
fn audit_operands(xt: &[i32]) -> Result<()> {
    for &x in xt {
        if !fits_in_bits(x as i64, X_BITS) {
            mfdfp_obs::ops::record_overflow_audit();
            return Err(TensorError::QuantizedOverflow { value: x as i64, bits: X_BITS });
        }
    }
    Ok(())
}

/// Shape validation shared by every entry point; returns the inner
/// dimension `k`. Operand auditing is separate ([`audit_operands`]) —
/// only the `i32` entries need it.
fn qgemm_check<T: QgemmAct>(
    w: &PackedPow2Matrix,
    row0: usize,
    rows: usize,
    xt: &[T],
    ncols: usize,
    bias: &[i64],
    out_len: usize,
) -> Result<usize> {
    let k = w.cols();
    if row0 + rows > w.rows() {
        return Err(TensorError::BadGeometry(format!(
            "qgemm row band {row0}..{} exceeds {} weight rows",
            row0 + rows,
            w.rows()
        )));
    }
    if xt.len() != ncols * k {
        return Err(TensorError::DataLength { expected: ncols * k, actual: xt.len() });
    }
    if bias.len() != rows {
        return Err(TensorError::DataLength { expected: rows, actual: bias.len() });
    }
    if out_len != rows * ncols {
        return Err(TensorError::DataLength { expected: rows * ncols, actual: out_len });
    }
    Ok(k)
}

/// The serial band kernel: computes output rows `[band0, band0 + rows)` of
/// the packed product into `out` (`rows × ncols`, row-major activation
/// codes). `bias` is indexed relative to the band. Generic over the
/// activation element ([`QgemmAct`]): `i8` codes are widened in register,
/// one sign-extending load per MAC, so the kernel streams a quarter of
/// the im2col bytes the `i32` entry moves.
///
/// Loop nest: per weight nibble, the shift amount and sign mask are
/// resolved **once** and applied across the whole activation row (the
/// im2col layout makes that row contiguous); the per-MAC body is
/// `widen, shift, xor, sub, add` with a loop-invariant shift count —
/// branch-free, multiplier-free, and auto-vectorizable. Each synapse
/// contributes on its sign's side of the accumulation via negate-by-mask;
/// the pad nibble of an odd-length row is never read because `c` stops at
/// `cols`.
///
/// The accumulator lanes come from the calling thread's persistent
/// scratch ([`with_acc_lanes`]) — the parallel dispatcher runs one band
/// per pool thread, so after each thread's first call the kernel
/// allocates nothing.
#[allow(clippy::too_many_arguments)] // private kernel: slices + full index frame
fn qgemm_band<T: QgemmAct>(
    w: &PackedPow2Matrix,
    band0: usize,
    rows: usize,
    xt: &[T],
    ncols: usize,
    bias: &[i64],
    acc_frac: i32,
    out_frac: i32,
    out: &mut [i8],
) -> Result<()> {
    let k = w.cols();
    // Op-count telemetry, amortized: one fetch_add per band call (the
    // parallel dispatcher calls once per row chunk), never per MAC.
    mfdfp_obs::ops::record_shift_macs((rows * k * ncols) as u64);
    with_acc_lanes(ncols, |acc64, acc32| {
        for r in 0..rows {
            let wrow = w.row_bytes(band0 + r);
            acc64.fill(bias[r]);
            for c0 in (0..k).step_by(ACC32_CHUNK) {
                let c1 = (c0 + ACC32_CHUNK).min(k);
                acc32.fill(0);
                for c in c0..c1 {
                    let code = ((wrow[c >> 1] >> ((c & 1) * 4)) & 0xF) as usize;
                    let sh = SHIFT[code];
                    let m = SIGN_MASK[code];
                    let xrow = &xt[c * ncols..(c + 1) * ncols];
                    T::accumulate_row(acc32, xrow, sh, m);
                }
                for (a64, &a32) in acc64.iter_mut().zip(acc32.iter()) {
                    *a64 += a32 as i64;
                }
            }
            let orow = &mut out[r * ncols..(r + 1) * ncols];
            for (o, &acc) in orow.iter_mut().zip(acc64.iter()) {
                if !fits_in_bits(acc, ACCUMULATOR_BITS) {
                    mfdfp_obs::ops::record_overflow_audit();
                    return Err(TensorError::QuantizedOverflow {
                        value: acc,
                        bits: ACCUMULATOR_BITS,
                    });
                }
                *o = saturate(realign(acc, acc_frac, out_frac), 8) as i8;
            }
        }
        Ok(())
    })
}

/// Computes output rows `[row0, row0 + rows)` of the packed shift-only
/// product `out = route(W · Xᵀ + bias)` into a caller-provided buffer.
///
/// * `w` — packed `R × k` power-of-two weight matrix; the band selects
///   rows `row0..row0 + rows` (e.g. one group of a grouped convolution).
/// * `xt` — the activation matrix in the standard im2col layout:
///   `k × ncols` row-major, so one synapse's activations across all
///   `ncols` output columns are contiguous (`xt[c * ncols + j]`) and the
///   per-nibble tables hoist out of the column loop.
/// * `bias` — `rows` accumulator-format biases (fractional length
///   `acc_frac`), relative to the band.
/// * `acc_frac`/`out_frac` — the radix control signals `m + 7` and `n` of
///   the routing stage; `out` receives saturated 8-bit activation codes.
///
/// With the `parallel` cargo feature, bands whose work crosses the shared
/// `par` module threshold are split by output row across OS threads —
/// bit-identical to the serial kernel (integer accumulation is
/// order-independent and the kernel fixes per-element order anyway).
///
/// # Errors
///
/// [`TensorError::BadGeometry`]/[`TensorError::DataLength`] on shape
/// mismatches, [`TensorError::QuantizedOverflow`] if an operand exceeds 9
/// bits or an accumulator leaves its 32-bit register.
#[allow(clippy::too_many_arguments)] // kernel entry: slices + full index frame
pub fn qgemm_into(
    w: &PackedPow2Matrix,
    row0: usize,
    rows: usize,
    xt: &[i32],
    ncols: usize,
    bias: &[i64],
    acc_frac: i32,
    out_frac: i32,
    out: &mut [i8],
) -> Result<()> {
    qgemm_check(w, row0, rows, xt, ncols, bias, out.len())?;
    audit_operands(xt)?;
    dispatch_band(w, row0, rows, xt, ncols, bias, acc_frac, out_frac, out)
}

/// The `i8` streaming entry: identical product to [`qgemm_into`], but the
/// im2col activations arrive as raw 8-bit codes and are widened in
/// register — a quarter of the staging traffic, and **no operand audit
/// scan**: every `i8` is structurally inside the 9-bit bound, so the
/// audit is a property of the type, not a per-call O(k·ncols) pass.
///
/// This is the deployed hot path's entry (`ShiftConv::run_with` /
/// `ShiftLinear::run_with` in `mfdfp-accel` stream it directly over their
/// activation-code buffers).
///
/// # Errors
///
/// [`TensorError::BadGeometry`]/[`TensorError::DataLength`] on shape
/// mismatches, [`TensorError::QuantizedOverflow`] if an accumulator
/// leaves its 32-bit register (operands cannot overflow by construction).
#[allow(clippy::too_many_arguments)] // kernel entry: slices + full index frame
pub fn qgemm_into_i8(
    w: &PackedPow2Matrix,
    row0: usize,
    rows: usize,
    xt: &[i8],
    ncols: usize,
    bias: &[i64],
    acc_frac: i32,
    out_frac: i32,
    out: &mut [i8],
) -> Result<()> {
    qgemm_check(w, row0, rows, xt, ncols, bias, out.len())?;
    dispatch_band(w, row0, rows, xt, ncols, bias, acc_frac, out_frac, out)
}

/// The batch-fused `i8` entry: one packed shift-MAC pass over the
/// **fused** column matrix of a whole batch. `xt` is the batched im2col
/// layout produced by
/// [`im2col_batched_i8`](crate::ops::conv::im2col_batched_i8) —
/// `k × (ncols_per_image · batch)` with the batch interleaved innermost
/// (column `j = p · batch + b` is output pixel `p` of image `b`) — and
/// `out` receives the band's `rows × (ncols_per_image · batch)` codes in
/// the same interleaved order, ready to be the next layer's input.
///
/// **Bit-identity contract.** The band kernel computes every output
/// element by walking synapses `c = 0..k` in a fixed order that chunks
/// over `k` only — the column count never changes the per-element
/// accumulation order. Widening `ncols` from `ncols_per_image` to
/// `ncols_per_image · batch` therefore yields, column for column, exactly
/// the integers the per-image calls produce: the fused path is
/// bit-identical to `batch` separate [`qgemm_into_i8`] calls by
/// construction (and property-tested in
/// `crates/tensor/tests/properties.rs`). The shift-MAC telemetry is
/// likewise exact automatically: `rows · k · (ncols_per_image · batch)`
/// equals the sum of the per-image counts.
///
/// What fusion buys is dispatch shape, not arithmetic: the MAC rows are
/// `batch`× longer (deeper SIMD per nibble decode) and the row-banded
/// parallel threshold sees the whole layer-batch product at once, so the
/// pool splits per-layer work instead of per-image work.
///
/// # Errors
///
/// [`TensorError::BadGeometry`] for a zero batch and the shape/overflow
/// errors of [`qgemm_into_i8`].
#[allow(clippy::too_many_arguments)] // kernel entry: slices + full index frame
pub fn qgemm_fused_into_i8(
    w: &PackedPow2Matrix,
    row0: usize,
    rows: usize,
    xt: &[i8],
    ncols_per_image: usize,
    batch: usize,
    bias: &[i64],
    acc_frac: i32,
    out_frac: i32,
    out: &mut [i8],
) -> Result<()> {
    if batch == 0 {
        return Err(TensorError::BadGeometry("fused qgemm needs a positive batch".into()));
    }
    let ncols = ncols_per_image * batch;
    qgemm_check(w, row0, rows, xt, ncols, bias, out.len())?;
    let _span = mfdfp_obs::span!("qgemm.fused", (rows * w.cols() * ncols) as u64);
    dispatch_band(w, row0, rows, xt, ncols, bias, acc_frac, out_frac, out)
}

/// Shared serial/parallel dispatch: bands whose work crosses the `par`
/// module threshold fan output rows across the persistent pool; audits
/// and shape checks have already run.
///
/// The dispatch decision is traced (`obs` feature): one span per call,
/// labelled `qgemm.parallel` or `qgemm.serial` by the path chosen, with
/// the band's MAC count as the argument — the flight-recorder view of
/// *which* kernel variant served each layer.
#[allow(clippy::too_many_arguments)] // private kernel: slices + full index frame
fn dispatch_band<T: QgemmAct>(
    w: &PackedPow2Matrix,
    row0: usize,
    rows: usize,
    xt: &[T],
    ncols: usize,
    bias: &[i64],
    acc_frac: i32,
    out_frac: i32,
    out: &mut [i8],
) -> Result<()> {
    let macs = rows * w.cols() * ncols;
    #[cfg(feature = "parallel")]
    if rows >= 2
        && rows * w.cols().max(1) * ncols.max(1) >= crate::par::MIN_MACS
        && crate::par::threads() >= 2
    {
        let _span = mfdfp_obs::span!("qgemm.parallel", macs as u64);
        return qgemm_band_parallel(w, row0, rows, xt, ncols, bias, acc_frac, out_frac, out);
    }
    let _span = mfdfp_obs::span!("qgemm.serial", macs as u64);
    qgemm_band(w, row0, rows, xt, ncols, bias, acc_frac, out_frac, out)
}

/// Row-parallel band execution over `par::for_each_row_chunk`. The first
/// audit failure (in chunk-claim order) wins via a write-once slot —
/// `OnceLock::set` cannot poison, so a panicking sibling chunk unwinds
/// through the scope without turning the audit error into a second panic.
/// Chunks are disjoint, so no further synchronisation is needed.
#[cfg(feature = "parallel")]
#[allow(clippy::too_many_arguments)] // private kernel: slices + full index frame
fn qgemm_band_parallel<T: QgemmAct>(
    w: &PackedPow2Matrix,
    row0: usize,
    rows: usize,
    xt: &[T],
    ncols: usize,
    bias: &[i64],
    acc_frac: i32,
    out_frac: i32,
    out: &mut [i8],
) -> Result<()> {
    let error = std::sync::OnceLock::new();
    crate::par::for_each_row_chunk(out, rows, ncols, |r0, nrows, chunk| {
        if let Err(e) = qgemm_band(
            w,
            row0 + r0,
            nrows,
            xt,
            ncols,
            &bias[r0..r0 + nrows],
            acc_frac,
            out_frac,
            chunk,
        ) {
            let _ = error.set(e);
        }
    });
    match error.into_inner() {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

/// Packed shift-only GEMM over the whole weight matrix:
/// `out[r, j] = route(Σ_c w[r, c] · xt[c, j] + bias[r])`, returned as a
/// `rows × ncols` row-major vector of 8-bit activation codes (`xt` is the
/// `k × ncols` im2col activation matrix — see [`qgemm_into`]).
///
/// This is the dispatching entry point: with the `parallel` feature,
/// products above the shared `par` module work threshold fan output
/// rows across OS threads; smaller products (and the default build) run
/// [`qgemm_serial`]'s kernel. Results are bit-identical either way.
///
/// # Errors
///
/// See [`qgemm_into`].
///
/// # Examples
///
/// ```
/// use mfdfp_dfp::{PackedPow2Matrix, Pow2Weight};
/// use mfdfp_tensor::ops::qgemm::qgemm;
///
/// // 1×2 weight row [0.5, −1] against one activation column [64, 10].
/// let w = PackedPow2Matrix::from_f32(1, 2, &[0.5, -1.0])?;
/// let x = [64i32, 10];
/// // Products carry 7 extra fractional bits (mul_shift semantics):
/// let acc: i64 = Pow2Weight::from_f32(0.5).mul_shift(x[0]) as i64
///     + Pow2Weight::from_f32(-1.0).mul_shift(x[1]) as i64;
/// // Route from fractional length 7+7 back to 7: divide by 2^7.
/// let out = qgemm(&w, &x, 1, &[0], 7 + 7, 7)?;
/// assert_eq!(out, vec![(acc >> 7) as i8]); // (64·0.5 − 10) = 22
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn qgemm(
    w: &PackedPow2Matrix,
    xt: &[i32],
    ncols: usize,
    bias: &[i64],
    acc_frac: i32,
    out_frac: i32,
) -> Result<Vec<i8>> {
    let mut out = vec![0i8; w.rows() * ncols];
    qgemm_into(w, 0, w.rows(), xt, ncols, bias, acc_frac, out_frac, &mut out)?;
    Ok(out)
}

/// Whole-matrix convenience over the `i8` streaming entry
/// ([`qgemm_into_i8`]): activations arrive as raw 8-bit codes, no audit
/// scan, a quarter of the staging traffic. Bit-identical to [`qgemm`] on
/// the widened copy of the same codes.
///
/// # Errors
///
/// See [`qgemm_into_i8`].
///
/// # Examples
///
/// ```
/// use mfdfp_dfp::PackedPow2Matrix;
/// use mfdfp_tensor::ops::qgemm::{qgemm, qgemm_i8};
///
/// let w = PackedPow2Matrix::from_f32(2, 3, &[0.5, -1.0, 0.25, 1.0, 0.125, -0.5])?;
/// let codes = [64i8, 10, -32];
/// let widened: Vec<i32> = codes.iter().map(|&c| c as i32).collect();
/// assert_eq!(
///     qgemm_i8(&w, &codes, 1, &[0, 0], 7 + 7, 7)?,
///     qgemm(&w, &widened, 1, &[0, 0], 7 + 7, 7)?,
/// );
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn qgemm_i8(
    w: &PackedPow2Matrix,
    xt: &[i8],
    ncols: usize,
    bias: &[i64],
    acc_frac: i32,
    out_frac: i32,
) -> Result<Vec<i8>> {
    let mut out = vec![0i8; w.rows() * ncols];
    qgemm_into_i8(w, 0, w.rows(), xt, ncols, bias, acc_frac, out_frac, &mut out)?;
    Ok(out)
}

/// Single-threaded packed GEMM — the deterministic reference schedule
/// (the kernel itself is shared with the parallel path).
///
/// # Errors
///
/// See [`qgemm_into`].
pub fn qgemm_serial(
    w: &PackedPow2Matrix,
    xt: &[i32],
    ncols: usize,
    bias: &[i64],
    acc_frac: i32,
    out_frac: i32,
) -> Result<Vec<i8>> {
    let rows = w.rows();
    let mut out = vec![0i8; rows * ncols];
    qgemm_check(w, 0, rows, xt, ncols, bias, out.len())?;
    audit_operands(xt)?;
    qgemm_band(w, 0, rows, xt, ncols, bias, acc_frac, out_frac, &mut out)?;
    Ok(out)
}

/// Forced row-parallel packed GEMM, regardless of the work threshold.
/// Bit-identical to [`qgemm_serial`] for every input; prefer [`qgemm`],
/// which only pays the pool dispatch when the product can repay it.
///
/// # Errors
///
/// See [`qgemm_into`].
#[cfg(feature = "parallel")]
pub fn qgemm_parallel(
    w: &PackedPow2Matrix,
    xt: &[i32],
    ncols: usize,
    bias: &[i64],
    acc_frac: i32,
    out_frac: i32,
) -> Result<Vec<i8>> {
    let rows = w.rows();
    let mut out = vec![0i8; rows * ncols];
    qgemm_check(w, 0, rows, xt, ncols, bias, out.len())?;
    audit_operands(xt)?;
    qgemm_band_parallel(w, 0, rows, xt, ncols, bias, acc_frac, out_frac, &mut out)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfdfp_dfp::Pow2Weight;

    /// Decode-based oracle mirroring `mac_reduce`: per-element
    /// `mul_shift`, i64 accumulate, bias, realign + saturate.
    fn reference(
        w: &PackedPow2Matrix,
        xt: &[i32],
        ncols: usize,
        bias: &[i64],
        acc_frac: i32,
        out_frac: i32,
    ) -> Vec<i8> {
        let k = w.cols();
        let mut out = Vec::with_capacity(w.rows() * ncols);
        for (r, &b) in bias.iter().enumerate() {
            for j in 0..ncols {
                let mut acc = b;
                for c in 0..k {
                    acc += w.get(r, c).mul_shift(xt[c * ncols + j]) as i64;
                }
                out.push(saturate(realign(acc, acc_frac, out_frac), 8) as i8);
            }
        }
        out
    }

    fn codes_matrix(rows: usize, cols: usize, seed: u64) -> PackedPow2Matrix {
        let mut state = seed | 1;
        let ws: Vec<Pow2Weight> = (0..rows * cols)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                Pow2Weight::decode4((state % 16) as u8).unwrap()
            })
            .collect();
        PackedPow2Matrix::from_weights(rows, cols, &ws).unwrap()
    }

    fn inputs(n: usize, seed: u64) -> Vec<i32> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state % 256) as u8 as i8 as i32
            })
            .collect()
    }

    #[test]
    fn matches_decode_reference_across_geometries() {
        for (rows, cols, ncols) in
            [(1, 1, 1), (3, 7, 5), (4, 16, 2), (5, 9, 9), (2, 33, 3), (8, 8, 1)]
        {
            let w = codes_matrix(rows, cols, (rows * 31 + cols * 7 + ncols) as u64);
            let xt = inputs(ncols * cols, 99);
            let bias: Vec<i64> = (0..rows).map(|r| (r as i64 - 2) * 100).collect();
            let got = qgemm(&w, &xt, ncols, &bias, 13, 4).unwrap();
            let want = reference(&w, &xt, ncols, &bias, 13, 4);
            assert_eq!(got, want, "rows={rows} cols={cols} ncols={ncols}");
        }
    }

    #[test]
    fn zero_row_and_zero_col_matrices() {
        let w = codes_matrix(0, 5, 3);
        assert_eq!(qgemm(&w, &inputs(10, 1), 2, &[], 10, 3).unwrap(), vec![]);
        let w = codes_matrix(4, 0, 3);
        // k = 0: every output is just its routed bias (frac 14 → frac 7).
        let out = qgemm(&w, &[], 3, &[0, 1 << 7, -(1 << 7), 1 << 20], 14, 7).unwrap();
        assert_eq!(out.len(), 12);
        assert_eq!(&out[..3], &[0, 0, 0]);
        assert_eq!(&out[3..6], &[1, 1, 1]);
        assert_eq!(&out[6..9], &[-1, -1, -1]);
        assert_eq!(&out[9..], &[127, 127, 127], "oversized bias must saturate");
        // ncols = 0 is also legal and produces an empty output.
        let w = codes_matrix(2, 3, 5);
        assert_eq!(qgemm(&w, &[], 0, &[0, 0], 10, 3).unwrap(), vec![]);
    }

    #[test]
    fn single_element_matrix() {
        for code in 0..16u8 {
            let wgt = Pow2Weight::decode4(code).unwrap();
            let w = PackedPow2Matrix::from_weights(1, 1, &[wgt]).unwrap();
            for x in [-128i32, -1, 0, 1, 127] {
                let out = qgemm(&w, &[x], 1, &[0], 7, 7).unwrap();
                let want = saturate(realign(wgt.mul_shift(x) as i64, 7, 7), 8) as i8;
                assert_eq!(out, vec![want], "code={code} x={x}");
            }
        }
    }

    #[test]
    fn odd_column_pad_nibble_is_inert() {
        // cols = 3: the pad nibble decodes to +1, the worst possible
        // contamination if it ever entered the sum.
        let w = codes_matrix(4, 3, 17);
        let xt = inputs(3 * 6, 23);
        let bias = vec![0i64; 4];
        let got = qgemm(&w, &xt, 6, &bias, 10, 3).unwrap();
        assert_eq!(got, reference(&w, &xt, 6, &bias, 10, 3));
    }

    #[test]
    fn all_minimum_exponent_weights() {
        // exp = −7 ⇒ shift amount 0: products equal ±x exactly.
        let ws: Vec<Pow2Weight> = (0..8)
            .map(|i| {
                let code = if i % 2 == 0 { 7u8 } else { 0x8 | 7 }; // ±2^−7
                Pow2Weight::decode4(code).unwrap()
            })
            .collect();
        let w = PackedPow2Matrix::from_weights(2, 4, &ws).unwrap();
        let xt = inputs(4, 7);
        let got = qgemm(&w, &xt, 1, &[0, 0], 7, 7).unwrap();
        assert_eq!(got, reference(&w, &xt, 1, &[0, 0], 7, 7));
    }

    #[test]
    fn saturating_accumulator_routes_to_rails() {
        // All +1 weights on all-max inputs with a large upscale: the
        // routed value flies past the 8-bit rails on both sides.
        let w = PackedPow2Matrix::from_f32(2, 16, &[1.0; 32]).unwrap();
        let hi = vec![127i32; 16];
        let lo = vec![-128i32; 16];
        assert_eq!(qgemm(&w, &hi, 1, &[0, 0], 7, 7).unwrap(), vec![127, 127]);
        assert_eq!(qgemm(&w, &lo, 1, &[0, 0], 7, 7).unwrap(), vec![-128, -128]);
    }

    #[test]
    fn audits_operand_width_and_shapes() {
        let w = codes_matrix(2, 4, 9);
        let bias = vec![0i64; 2];
        // 9-bit operand bound: 255 passes, 256 is rejected.
        let mut xt = inputs(4, 5);
        xt[1] = 255;
        assert!(qgemm(&w, &xt, 1, &bias, 10, 3).is_ok());
        xt[1] = 256;
        assert!(matches!(
            qgemm(&w, &xt, 1, &bias, 10, 3),
            Err(TensorError::QuantizedOverflow { value: 256, bits: 9 })
        ));
        // Shape mismatches.
        assert!(qgemm(&w, &inputs(3, 5), 1, &bias, 10, 3).is_err());
        assert!(qgemm(&w, &inputs(4, 5), 1, &[0], 10, 3).is_err());
        let mut out = vec![0i8; 5];
        assert!(qgemm_into(&w, 0, 2, &inputs(4, 5), 1, &bias, 10, 3, &mut out).is_err());
        assert!(qgemm_into(&w, 1, 2, &inputs(4, 5), 1, &bias, 10, 3, &mut out[..2]).is_err());
    }

    #[test]
    fn row_band_matches_full_product() {
        let w = codes_matrix(6, 10, 41);
        let xt = inputs(10 * 4, 3);
        let bias: Vec<i64> = (0..6).map(|r| r as i64 * 64).collect();
        let full = qgemm(&w, &xt, 4, &bias, 12, 5).unwrap();
        for (row0, rows) in [(0usize, 2usize), (2, 3), (5, 1), (0, 6)] {
            let mut band = vec![0i8; rows * 4];
            qgemm_into(&w, row0, rows, &xt, 4, &bias[row0..row0 + rows], 12, 5, &mut band).unwrap();
            assert_eq!(band, full[row0 * 4..(row0 + rows) * 4], "band {row0}+{rows}");
        }
    }

    #[test]
    fn i8_entry_matches_widened_i32_entry() {
        for (rows, cols, ncols) in [(1, 1, 1), (3, 7, 5), (4, 16, 2), (5, 9, 9), (2, 33, 3)] {
            let w = codes_matrix(rows, cols, (rows * 13 + cols * 5 + ncols) as u64);
            let xt32 = inputs(ncols * cols, 55);
            let xt8: Vec<i8> = xt32.iter().map(|&x| x as i8).collect();
            let bias: Vec<i64> = (0..rows).map(|r| (r as i64 - 1) * 50).collect();
            assert_eq!(
                qgemm_i8(&w, &xt8, ncols, &bias, 12, 5).unwrap(),
                qgemm(&w, &xt32, ncols, &bias, 12, 5).unwrap(),
                "rows={rows} cols={cols} ncols={ncols}"
            );
        }
    }

    #[test]
    fn i8_band_matches_full_product() {
        let w = codes_matrix(6, 10, 43);
        let xt: Vec<i8> = inputs(10 * 4, 8).iter().map(|&x| x as i8).collect();
        let bias: Vec<i64> = (0..6).map(|r| r as i64 * 32).collect();
        let full = qgemm_i8(&w, &xt, 4, &bias, 12, 5).unwrap();
        for (row0, rows) in [(0usize, 3usize), (3, 3), (4, 2)] {
            let mut band = vec![0i8; rows * 4];
            qgemm_into_i8(&w, row0, rows, &xt, 4, &bias[row0..row0 + rows], 12, 5, &mut band)
                .unwrap();
            assert_eq!(band, full[row0 * 4..(row0 + rows) * 4], "band {row0}+{rows}");
        }
    }

    #[test]
    fn i8_entry_validates_shapes() {
        let w = codes_matrix(2, 4, 9);
        let bias = vec![0i64; 2];
        let xt: Vec<i8> = inputs(4, 5).iter().map(|&x| x as i8).collect();
        assert!(qgemm_i8(&w, &xt, 1, &bias, 10, 3).is_ok());
        assert!(qgemm_i8(&w, &xt[..3], 1, &bias, 10, 3).is_err());
        assert!(qgemm_i8(&w, &xt, 1, &[0], 10, 3).is_err());
        let mut out = vec![0i8; 1];
        assert!(qgemm_into_i8(&w, 0, 2, &xt, 1, &bias, 10, 3, &mut out).is_err());
        assert!(qgemm_into_i8(&w, 1, 2, &xt, 1, &bias, 10, 3, &mut out).is_err());
    }

    #[test]
    fn i8_extremes_are_structurally_in_bounds() {
        // -128 and 127 are the rails of the code space; both must route
        // without any operand audit (there is none on this path).
        let w = codes_matrix(3, 8, 5);
        let xt = [-128i8, 127, -128, 127, -128, 127, -128, 127];
        let bias = vec![0i64; 3];
        let widened: Vec<i32> = xt.iter().map(|&x| x as i32).collect();
        assert_eq!(
            qgemm_i8(&w, &xt, 1, &bias, 10, 3).unwrap(),
            qgemm(&w, &widened, 1, &bias, 10, 3).unwrap()
        );
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn i8_parallel_dispatch_bit_identical() {
        // Large enough to cross MIN_MACS under MFDFP_THREADS >= 2.
        let (rows, cols, ncols) = (64, 64, 64);
        let w = codes_matrix(rows, cols, 3);
        let xt: Vec<i8> = inputs(cols * ncols, 4).iter().map(|&x| x as i8).collect();
        let bias: Vec<i64> = (0..rows).map(|r| r as i64).collect();
        let mut via_dispatch = vec![0i8; rows * ncols];
        qgemm_into_i8(&w, 0, rows, &xt, ncols, &bias, 13, 4, &mut via_dispatch).unwrap();
        let mut serial = vec![0i8; rows * ncols];
        qgemm_band(&w, 0, rows, &xt, ncols, &bias, 13, 4, &mut serial).unwrap();
        assert_eq!(via_dispatch, serial);
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn parallel_bit_identical_to_serial() {
        let w = codes_matrix(23, 17, 77);
        let xt = inputs(17 * 9, 13);
        let bias: Vec<i64> = (0..23).map(|r| (r as i64 - 11) * 32).collect();
        let s = qgemm_serial(&w, &xt, 9, &bias, 13, 4).unwrap();
        let p = qgemm_parallel(&w, &xt, 9, &bias, 13, 4).unwrap();
        assert_eq!(s, p);
    }
}
