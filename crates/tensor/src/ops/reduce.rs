//! Row-wise reductions and the softmax family used by classifier heads.

use crate::error::{Result, TensorError};
use crate::{Shape, Tensor};

/// Numerically-stable softmax along the last axis of a rank-2 tensor.
///
/// Each row is shifted by its maximum before exponentiation, so arbitrarily
/// large logits do not overflow.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `logits` is not rank-2.
///
/// # Examples
///
/// ```
/// use mfdfp_tensor::{softmax, Shape, Tensor};
///
/// let z = Tensor::from_vec(vec![0.0, 0.0], Shape::d2(1, 2))?;
/// let p = softmax(&z)?;
/// assert!((p.as_slice()[0] - 0.5).abs() < 1e-6);
/// # Ok::<(), mfdfp_tensor::TensorError>(())
/// ```
pub fn softmax(logits: &Tensor) -> Result<Tensor> {
    softmax_with_temperature(logits, 1.0)
}

/// Softmax with a distillation temperature `tau`: `softmax(z / tau)`.
///
/// Temperatures above 1 soften the distribution — the mechanism behind
/// student–teacher training (Hinton et al.; used by the paper with τ = 20).
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `logits` is not rank-2, or
/// [`TensorError::BadGeometry`] if `tau` is not strictly positive.
pub fn softmax_with_temperature(logits: &Tensor, tau: f32) -> Result<Tensor> {
    if logits.shape().rank() != 2 {
        return Err(TensorError::ShapeMismatch {
            left: logits.shape().clone(),
            right: Shape::d2(0, 0),
            op: "softmax (rank-2 required)",
        });
    }
    if tau <= 0.0 || tau.is_nan() {
        return Err(TensorError::BadGeometry(format!(
            "softmax temperature must be > 0, got {tau}"
        )));
    }
    let (n, k) = (logits.shape().dim(0), logits.shape().dim(1));
    let z = logits.as_slice();
    let mut out = vec![0.0f32; n * k];
    for r in 0..n {
        let row = &z[r * k..(r + 1) * k];
        let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut denom = 0.0f32;
        for (o, &v) in out[r * k..(r + 1) * k].iter_mut().zip(row) {
            let e = ((v - m) / tau).exp();
            *o = e;
            denom += e;
        }
        for o in &mut out[r * k..(r + 1) * k] {
            *o /= denom;
        }
    }
    Tensor::from_vec(out, Shape::d2(n, k))
}

/// Log-softmax along the last axis of a rank-2 tensor.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `logits` is not rank-2.
pub fn log_softmax(logits: &Tensor) -> Result<Tensor> {
    if logits.shape().rank() != 2 {
        return Err(TensorError::ShapeMismatch {
            left: logits.shape().clone(),
            right: Shape::d2(0, 0),
            op: "log_softmax (rank-2 required)",
        });
    }
    let (n, k) = (logits.shape().dim(0), logits.shape().dim(1));
    let z = logits.as_slice();
    let mut out = vec![0.0f32; n * k];
    for r in 0..n {
        let row = &z[r * k..(r + 1) * k];
        let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let lse = row.iter().map(|&v| (v - m).exp()).sum::<f32>().ln() + m;
        for (o, &v) in out[r * k..(r + 1) * k].iter_mut().zip(row) {
            *o = v - lse;
        }
    }
    Tensor::from_vec(out, Shape::d2(n, k))
}

/// Per-row argmax of a rank-2 tensor: the predicted class per sample.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `t` is not rank-2.
pub fn argmax_rows(t: &Tensor) -> Result<Vec<usize>> {
    if t.shape().rank() != 2 {
        return Err(TensorError::ShapeMismatch {
            left: t.shape().clone(),
            right: Shape::d2(0, 0),
            op: "argmax_rows (rank-2 required)",
        });
    }
    let (n, k) = (t.shape().dim(0), t.shape().dim(1));
    let d = t.as_slice();
    let mut out = Vec::with_capacity(n);
    for r in 0..n {
        let row = &d[r * k..(r + 1) * k];
        let mut best = 0usize;
        for (i, &v) in row.iter().enumerate() {
            if v > row[best] {
                best = i;
            }
        }
        out.push(best);
    }
    Ok(out)
}

/// Indices of the `k` largest entries per row, descending.
///
/// Used for ImageNet-style top-5 accuracy. `k` is clamped to the row width.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `t` is not rank-2.
pub fn topk_rows(t: &Tensor, k: usize) -> Result<Vec<Vec<usize>>> {
    if t.shape().rank() != 2 {
        return Err(TensorError::ShapeMismatch {
            left: t.shape().clone(),
            right: Shape::d2(0, 0),
            op: "topk_rows (rank-2 required)",
        });
    }
    let (n, width) = (t.shape().dim(0), t.shape().dim(1));
    let k = k.min(width);
    let d = t.as_slice();
    let mut out = Vec::with_capacity(n);
    for r in 0..n {
        let row = &d[r * width..(r + 1) * width];
        let mut idx: Vec<usize> = (0..width).collect();
        idx.sort_by(|&a, &b| row[b].partial_cmp(&row[a]).unwrap_or(std::cmp::Ordering::Equal));
        idx.truncate(k);
        out.push(idx);
    }
    Ok(out)
}

/// Sums a rank-2 tensor along axis 0, producing a row vector.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `t` is not rank-2.
pub fn sum_axis0(t: &Tensor) -> Result<Tensor> {
    if t.shape().rank() != 2 {
        return Err(TensorError::ShapeMismatch {
            left: t.shape().clone(),
            right: Shape::d2(0, 0),
            op: "sum_axis0 (rank-2 required)",
        });
    }
    let (n, k) = (t.shape().dim(0), t.shape().dim(1));
    let d = t.as_slice();
    let mut out = vec![0.0f32; k];
    for r in 0..n {
        for (o, &v) in out.iter_mut().zip(&d[r * k..(r + 1) * k]) {
            *o += v;
        }
    }
    Ok(Tensor::from_slice(&out))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_rows_sum_to_one() {
        let z = Tensor::from_vec(vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0], Shape::d2(2, 3)).unwrap();
        let p = softmax(&z).unwrap();
        for r in 0..2 {
            let s: f32 = p.as_slice()[r * 3..(r + 1) * 3].iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_is_shift_invariant_and_stable() {
        let z1 = Tensor::from_vec(vec![1.0, 2.0], Shape::d2(1, 2)).unwrap();
        let z2 = Tensor::from_vec(vec![1001.0, 1002.0], Shape::d2(1, 2)).unwrap();
        let p1 = softmax(&z1).unwrap();
        let p2 = softmax(&z2).unwrap();
        for (a, b) in p1.as_slice().iter().zip(p2.as_slice()) {
            assert!((a - b).abs() < 1e-6);
            assert!(a.is_finite());
        }
    }

    #[test]
    fn temperature_softens_distribution() {
        let z = Tensor::from_vec(vec![0.0, 4.0], Shape::d2(1, 2)).unwrap();
        let sharp = softmax_with_temperature(&z, 1.0).unwrap();
        let soft = softmax_with_temperature(&z, 20.0).unwrap();
        // High temperature pushes probabilities toward uniform.
        assert!(soft.as_slice()[0] > sharp.as_slice()[0]);
        assert!((soft.as_slice()[0] - 0.5).abs() < 0.1);
    }

    #[test]
    fn temperature_must_be_positive() {
        let z = Tensor::from_vec(vec![0.0, 1.0], Shape::d2(1, 2)).unwrap();
        assert!(softmax_with_temperature(&z, 0.0).is_err());
        assert!(softmax_with_temperature(&z, -1.0).is_err());
        assert!(softmax_with_temperature(&z, f32::NAN).is_err());
    }

    #[test]
    fn log_softmax_matches_log_of_softmax() {
        let z = Tensor::from_vec(vec![0.3, -1.2, 2.0, 0.0], Shape::d2(2, 2)).unwrap();
        let ls = log_softmax(&z).unwrap();
        let p = softmax(&z).unwrap();
        for (a, b) in ls.as_slice().iter().zip(p.as_slice()) {
            assert!((a - b.ln()).abs() < 1e-5);
        }
    }

    #[test]
    fn argmax_rows_basic() {
        let t = Tensor::from_vec(vec![0.1, 0.9, 0.5, 0.2, 0.3, 0.1], Shape::d2(2, 3)).unwrap();
        assert_eq!(argmax_rows(&t).unwrap(), vec![1, 1]);
    }

    #[test]
    fn topk_returns_descending_indices() {
        let t = Tensor::from_vec(vec![0.1, 0.9, 0.5, 0.7], Shape::d2(1, 4)).unwrap();
        let tk = topk_rows(&t, 3).unwrap();
        assert_eq!(tk[0], vec![1, 3, 2]);
        // k clamps to width
        let tk = topk_rows(&t, 10).unwrap();
        assert_eq!(tk[0].len(), 4);
    }

    #[test]
    fn sum_axis0_accumulates_rows() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], Shape::d2(2, 2)).unwrap();
        let s = sum_axis0(&t).unwrap();
        assert_eq!(s.as_slice(), &[4.0, 6.0]);
    }

    #[test]
    fn rank_checks() {
        let t = Tensor::from_slice(&[1.0, 2.0]);
        assert!(softmax(&t).is_err());
        assert!(log_softmax(&t).is_err());
        assert!(argmax_rows(&t).is_err());
        assert!(topk_rows(&t, 1).is_err());
        assert!(sum_axis0(&t).is_err());
    }
}
