//! Dense matrix multiplication (GEMM) with optional operand transposes.

use crate::error::{Result, TensorError};
use crate::{Shape, Tensor};

/// Whether a GEMM operand should be read transposed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Transpose {
    /// Read the operand as stored.
    #[default]
    No,
    /// Read the operand transposed.
    Yes,
}

impl Transpose {
    fn apply(self, rows: usize, cols: usize) -> (usize, usize) {
        match self {
            Transpose::No => (rows, cols),
            Transpose::Yes => (cols, rows),
        }
    }
}

/// General matrix multiply: `C = A(op) × B(op)`.
///
/// `a` must be rank-2 of logical shape `m×k` after applying `ta`, and `b`
/// rank-2 of logical shape `k×n` after applying `tb`. The result is `m×n`.
///
/// The kernel is a cache-friendly ikj loop (row-major accumulation); no
/// blocking is needed at the sizes used in this workspace.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if either operand is not rank-2 or
/// the inner dimensions disagree.
///
/// # Examples
///
/// ```
/// use mfdfp_tensor::{gemm, Shape, Tensor, Transpose};
///
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], Shape::d2(2, 2))?;
/// let i = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], Shape::d2(2, 2))?;
/// let c = gemm(&a, Transpose::No, &i, Transpose::No)?;
/// assert_eq!(c.as_slice(), a.as_slice());
/// # Ok::<(), mfdfp_tensor::TensorError>(())
/// ```
pub fn gemm(a: &Tensor, ta: Transpose, b: &Tensor, tb: Transpose) -> Result<Tensor> {
    if a.shape().rank() != 2 || b.shape().rank() != 2 {
        return Err(TensorError::ShapeMismatch {
            left: a.shape().clone(),
            right: b.shape().clone(),
            op: "gemm (rank-2 required)",
        });
    }
    let (m, ka) = ta.apply(a.shape().dim(0), a.shape().dim(1));
    let (kb, n) = tb.apply(b.shape().dim(0), b.shape().dim(1));
    if ka != kb {
        return Err(TensorError::ShapeMismatch {
            left: a.shape().clone(),
            right: b.shape().clone(),
            op: "gemm (inner dimension)",
        });
    }
    let k = ka;
    let mut out = vec![0.0f32; m * n];
    let ad = a.as_slice();
    let bd = b.as_slice();

    match (ta, tb) {
        (Transpose::No, Transpose::No) => {
            // C[i,j] += A[i,p] * B[p,j] — ikj order streams B rows.
            for i in 0..m {
                let arow = &ad[i * k..(i + 1) * k];
                let crow = &mut out[i * n..(i + 1) * n];
                for (p, &av) in arow.iter().enumerate() {
                    if av == 0.0 {
                        continue;
                    }
                    let brow = &bd[p * n..(p + 1) * n];
                    for (c, &bv) in crow.iter_mut().zip(brow) {
                        *c += av * bv;
                    }
                }
            }
        }
        (Transpose::No, Transpose::Yes) => {
            // B stored n×k; C[i,j] = dot(Arow_i, Brow_j): both contiguous.
            for i in 0..m {
                let arow = &ad[i * k..(i + 1) * k];
                for j in 0..n {
                    let brow = &bd[j * k..(j + 1) * k];
                    let mut acc = 0.0f32;
                    for (&x, &y) in arow.iter().zip(brow) {
                        acc += x * y;
                    }
                    out[i * n + j] = acc;
                }
            }
        }
        (Transpose::Yes, Transpose::No) => {
            // A stored k×m; C[i,j] += A[p,i] * B[p,j].
            for p in 0..k {
                let arow = &ad[p * m..(p + 1) * m];
                let brow = &bd[p * n..(p + 1) * n];
                for (i, &av) in arow.iter().enumerate() {
                    if av == 0.0 {
                        continue;
                    }
                    let crow = &mut out[i * n..(i + 1) * n];
                    for (c, &bv) in crow.iter_mut().zip(brow) {
                        *c += av * bv;
                    }
                }
            }
        }
        (Transpose::Yes, Transpose::Yes) => {
            // A stored k×m, B stored n×k.
            for i in 0..m {
                for j in 0..n {
                    let mut acc = 0.0f32;
                    for p in 0..k {
                        acc += ad[p * m + i] * bd[j * k + p];
                    }
                    out[i * n + j] = acc;
                }
            }
        }
    }
    Tensor::from_vec(out, Shape::d2(m, n))
}

/// Matrix–vector product `y = A x` for a rank-2 `a` and rank-1 `x`.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `a` is not rank-2, `x` not
/// rank-1, or the dimensions disagree.
pub fn matvec(a: &Tensor, x: &Tensor) -> Result<Tensor> {
    if a.shape().rank() != 2 || x.shape().rank() != 1 {
        return Err(TensorError::ShapeMismatch {
            left: a.shape().clone(),
            right: x.shape().clone(),
            op: "matvec (rank)",
        });
    }
    let (m, k) = (a.shape().dim(0), a.shape().dim(1));
    if k != x.len() {
        return Err(TensorError::ShapeMismatch {
            left: a.shape().clone(),
            right: x.shape().clone(),
            op: "matvec (inner dimension)",
        });
    }
    let ad = a.as_slice();
    let xd = x.as_slice();
    let mut out = vec![0.0f32; m];
    for i in 0..m {
        let row = &ad[i * k..(i + 1) * k];
        out[i] = row.iter().zip(xd).map(|(&a, &b)| a * b).sum();
    }
    Ok(Tensor::from_slice(&out))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t2(rows: usize, cols: usize, vals: &[f32]) -> Tensor {
        Tensor::from_vec(vals.to_vec(), Shape::d2(rows, cols)).unwrap()
    }

    #[test]
    fn gemm_identity() {
        let a = t2(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let i = t2(2, 2, &[1.0, 0.0, 0.0, 1.0]);
        let c = gemm(&a, Transpose::No, &i, Transpose::No).unwrap();
        assert_eq!(c.as_slice(), a.as_slice());
    }

    #[test]
    fn gemm_known_product() {
        // [1 2; 3 4] × [5 6; 7 8] = [19 22; 43 50]
        let a = t2(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let b = t2(2, 2, &[5.0, 6.0, 7.0, 8.0]);
        let c = gemm(&a, Transpose::No, &b, Transpose::No).unwrap();
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn gemm_rectangular() {
        let a = t2(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = t2(3, 1, &[1.0, 1.0, 1.0]);
        let c = gemm(&a, Transpose::No, &b, Transpose::No).unwrap();
        assert_eq!(c.shape().dims(), &[2, 1]);
        assert_eq!(c.as_slice(), &[6.0, 15.0]);
    }

    #[test]
    fn all_transpose_combinations_agree() {
        let a = t2(2, 3, &[1.0, -2.0, 3.0, 0.5, 4.0, -1.0]);
        let b = t2(3, 4, &[2.0, 0.0, 1.0, -1.0, 3.0, 5.0, -2.0, 0.5, 1.0, 1.0, 1.0, 1.0]);
        let reference = gemm(&a, Transpose::No, &b, Transpose::No).unwrap();

        // Transpose the stored layouts manually and ask gemm to undo it.
        let at = transpose(&a);
        let bt = transpose(&b);
        let c1 = gemm(&at, Transpose::Yes, &b, Transpose::No).unwrap();
        let c2 = gemm(&a, Transpose::No, &bt, Transpose::Yes).unwrap();
        let c3 = gemm(&at, Transpose::Yes, &bt, Transpose::Yes).unwrap();
        for c in [c1, c2, c3] {
            for (x, y) in c.as_slice().iter().zip(reference.as_slice()) {
                assert!((x - y).abs() < 1e-5, "{x} vs {y}");
            }
        }
    }

    fn transpose(t: &Tensor) -> Tensor {
        let (r, c) = (t.shape().dim(0), t.shape().dim(1));
        let mut out = Tensor::zeros([c, r]);
        for i in 0..r {
            for j in 0..c {
                *out.at_mut(&[j, i]) = t.at(&[i, j]);
            }
        }
        out
    }

    #[test]
    fn gemm_shape_errors() {
        let a = t2(2, 3, &[0.0; 6]);
        let b = t2(2, 3, &[0.0; 6]);
        assert!(gemm(&a, Transpose::No, &b, Transpose::No).is_err());
        assert!(gemm(&a, Transpose::No, &b, Transpose::Yes).is_ok());
        let v = Tensor::from_slice(&[1.0, 2.0]);
        assert!(gemm(&a, Transpose::No, &v, Transpose::No).is_err());
    }

    #[test]
    fn matvec_matches_gemm() {
        let a = t2(3, 2, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let x = Tensor::from_slice(&[1.0, -1.0]);
        let y = matvec(&a, &x).unwrap();
        assert_eq!(y.as_slice(), &[-1.0, -1.0, -1.0]);
        let xm = x.reshape([2, 1]).unwrap();
        let ym = gemm(&a, Transpose::No, &xm, Transpose::No).unwrap();
        assert_eq!(y.as_slice(), ym.as_slice());
    }

    #[test]
    fn matvec_shape_errors() {
        let a = t2(2, 2, &[0.0; 4]);
        let bad = Tensor::from_slice(&[1.0, 2.0, 3.0]);
        assert!(matvec(&a, &bad).is_err());
    }
}
