//! Dense matrix multiplication (GEMM) with optional operand transposes.
//!
//! All entry points funnel into one row-range kernel (`gemm_rows`): the
//! serial path runs it once over every row, the `parallel` feature splits
//! the output rows across the persistent `mfdfp-rt` pool. Because each output
//! element is accumulated in the same (ascending-`p`) order regardless of
//! how rows are partitioned, the parallel path is **bit-identical** to the
//! serial one — determinism is a property of the kernel, not the schedule.

use crate::error::{Result, TensorError};
use crate::{Shape, Tensor};

/// Whether a GEMM operand should be read transposed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Transpose {
    /// Read the operand as stored.
    #[default]
    No,
    /// Read the operand transposed.
    Yes,
}

impl Transpose {
    fn apply(self, rows: usize, cols: usize) -> (usize, usize) {
        match self {
            Transpose::No => (rows, cols),
            Transpose::Yes => (cols, rows),
        }
    }
}

/// Column-tile width: a 256-element C/B panel slice stays resident in L1
/// while a row of A streams past it.
const COL_TILE: usize = 256;

/// Computes output rows `[row0, row0 + rows)` of `C = A(op) × B(op)` into
/// `out` (a `rows × n` slice).
///
/// Per output element the reduction always runs over `p = 0..k` in
/// ascending order with the same zero-skip rule, so any row partition of
/// the output produces bit-identical `f32` results.
#[allow(clippy::too_many_arguments)] // private kernel: slices + full index frame
fn gemm_rows(
    ta: Transpose,
    tb: Transpose,
    ad: &[f32],
    bd: &[f32],
    out: &mut [f32],
    row0: usize,
    rows: usize,
    m: usize,
    n: usize,
    k: usize,
) {
    debug_assert_eq!(out.len(), rows * n);
    match (ta, tb) {
        (Transpose::No, Transpose::No) => {
            // C[i,j] += A[i,p] * B[p,j] — p-outer streams B rows; the column
            // tile keeps the C row chunk hot across the p loop.
            for j0 in (0..n).step_by(COL_TILE) {
                let j1 = (j0 + COL_TILE).min(n);
                for r in 0..rows {
                    let i = row0 + r;
                    let arow = &ad[i * k..(i + 1) * k];
                    let crow = &mut out[r * n + j0..r * n + j1];
                    for (p, &av) in arow.iter().enumerate() {
                        if av == 0.0 {
                            continue;
                        }
                        let brow = &bd[p * n + j0..p * n + j1];
                        for (c, &bv) in crow.iter_mut().zip(brow) {
                            *c += av * bv;
                        }
                    }
                }
            }
        }
        (Transpose::No, Transpose::Yes) => {
            // B stored n×k; C[i,j] = dot(Arow_i, Brow_j): both contiguous.
            for r in 0..rows {
                let i = row0 + r;
                let arow = &ad[i * k..(i + 1) * k];
                for j in 0..n {
                    let brow = &bd[j * k..(j + 1) * k];
                    let mut acc = 0.0f32;
                    for (&x, &y) in arow.iter().zip(brow) {
                        acc += x * y;
                    }
                    out[r * n + j] = acc;
                }
            }
        }
        (Transpose::Yes, Transpose::No) => {
            // A stored k×m; C[i,j] += A[p,i] * B[p,j], p ascending per row.
            for j0 in (0..n).step_by(COL_TILE) {
                let j1 = (j0 + COL_TILE).min(n);
                for r in 0..rows {
                    let i = row0 + r;
                    let crow = &mut out[r * n + j0..r * n + j1];
                    for p in 0..k {
                        let av = ad[p * m + i];
                        if av == 0.0 {
                            continue;
                        }
                        let brow = &bd[p * n + j0..p * n + j1];
                        for (c, &bv) in crow.iter_mut().zip(brow) {
                            *c += av * bv;
                        }
                    }
                }
            }
        }
        (Transpose::Yes, Transpose::Yes) => {
            // A stored k×m, B stored n×k.
            for r in 0..rows {
                let i = row0 + r;
                for j in 0..n {
                    let mut acc = 0.0f32;
                    for p in 0..k {
                        acc += ad[p * m + i] * bd[j * k + p];
                    }
                    out[r * n + j] = acc;
                }
            }
        }
    }
}

fn gemm_check(
    a: &Tensor,
    ta: Transpose,
    b: &Tensor,
    tb: Transpose,
) -> Result<(usize, usize, usize)> {
    if a.shape().rank() != 2 || b.shape().rank() != 2 {
        return Err(TensorError::ShapeMismatch {
            left: a.shape().clone(),
            right: b.shape().clone(),
            op: "gemm (rank-2 required)",
        });
    }
    let (m, ka) = ta.apply(a.shape().dim(0), a.shape().dim(1));
    let (kb, n) = tb.apply(b.shape().dim(0), b.shape().dim(1));
    if ka != kb {
        return Err(TensorError::ShapeMismatch {
            left: a.shape().clone(),
            right: b.shape().clone(),
            op: "gemm (inner dimension)",
        });
    }
    Ok((m, n, ka))
}

/// General matrix multiply: `C = A(op) × B(op)`.
///
/// `a` must be rank-2 of logical shape `m×k` after applying `ta`, and `b`
/// rank-2 of logical shape `k×n` after applying `tb`. The result is `m×n`.
///
/// With the `parallel` cargo feature enabled, large products are split by
/// output row across the persistent pool's threads; the result is bit-identical to
/// [`gemm_serial`] (see the module docs). Without the feature this *is*
/// the serial kernel.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if either operand is not rank-2 or
/// the inner dimensions disagree.
///
/// # Examples
///
/// ```
/// use mfdfp_tensor::{gemm, Shape, Tensor, Transpose};
///
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], Shape::d2(2, 2))?;
/// let i = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], Shape::d2(2, 2))?;
/// let c = gemm(&a, Transpose::No, &i, Transpose::No)?;
/// assert_eq!(c.as_slice(), a.as_slice());
/// # Ok::<(), mfdfp_tensor::TensorError>(())
/// ```
pub fn gemm(a: &Tensor, ta: Transpose, b: &Tensor, tb: Transpose) -> Result<Tensor> {
    #[cfg(feature = "parallel")]
    {
        let (m, n, k) = gemm_check(a, ta, b, tb)?;
        if m >= 2 && m * n * k >= crate::par::MIN_MACS && crate::par::threads() >= 2 {
            return gemm_parallel(a, ta, b, tb);
        }
    }
    gemm_serial(a, ta, b, tb)
}

/// Single-threaded GEMM — the deterministic reference kernel.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] under the same conditions as
/// [`gemm`].
pub fn gemm_serial(a: &Tensor, ta: Transpose, b: &Tensor, tb: Transpose) -> Result<Tensor> {
    let (m, n, k) = gemm_check(a, ta, b, tb)?;
    let mut out = vec![0.0f32; m * n];
    gemm_rows(ta, tb, a.as_slice(), b.as_slice(), &mut out, 0, m, m, n, k);
    Tensor::from_vec(out, Shape::d2(m, n))
}

/// Multi-threaded GEMM: output rows are split across the persistent
/// `mfdfp-rt` pool. Bit-identical to [`gemm_serial`] for every input (the
/// row kernel fixes the accumulation order; threads only change which core
/// computes which rows).
///
/// Prefer [`gemm`], which falls back to the serial kernel when the product
/// is too small to repay even the pool's (spawn-free) dispatch cost.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] under the same conditions as
/// [`gemm`].
#[cfg(feature = "parallel")]
pub fn gemm_parallel(a: &Tensor, ta: Transpose, b: &Tensor, tb: Transpose) -> Result<Tensor> {
    let (m, n, k) = gemm_check(a, ta, b, tb)?;
    let mut out = vec![0.0f32; m * n];
    let (ad, bd) = (a.as_slice(), b.as_slice());
    crate::par::for_each_row_chunk(&mut out, m, n, |row0, rows, chunk| {
        gemm_rows(ta, tb, ad, bd, chunk, row0, rows, m, n, k);
    });
    Tensor::from_vec(out, Shape::d2(m, n))
}

/// Matrix–vector product `y = A x` for a rank-2 `a` and rank-1 `x`.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `a` is not rank-2, `x` not
/// rank-1, or the dimensions disagree.
pub fn matvec(a: &Tensor, x: &Tensor) -> Result<Tensor> {
    if a.shape().rank() != 2 || x.shape().rank() != 1 {
        return Err(TensorError::ShapeMismatch {
            left: a.shape().clone(),
            right: x.shape().clone(),
            op: "matvec (rank)",
        });
    }
    let (m, k) = (a.shape().dim(0), a.shape().dim(1));
    if k != x.len() {
        return Err(TensorError::ShapeMismatch {
            left: a.shape().clone(),
            right: x.shape().clone(),
            op: "matvec (inner dimension)",
        });
    }
    let ad = a.as_slice();
    let xd = x.as_slice();
    let mut out = vec![0.0f32; m];
    for i in 0..m {
        let row = &ad[i * k..(i + 1) * k];
        out[i] = row.iter().zip(xd).map(|(&a, &b)| a * b).sum();
    }
    Ok(Tensor::from_slice(&out))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t2(rows: usize, cols: usize, vals: &[f32]) -> Tensor {
        Tensor::from_vec(vals.to_vec(), Shape::d2(rows, cols)).unwrap()
    }

    #[test]
    fn gemm_identity() {
        let a = t2(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let i = t2(2, 2, &[1.0, 0.0, 0.0, 1.0]);
        let c = gemm(&a, Transpose::No, &i, Transpose::No).unwrap();
        assert_eq!(c.as_slice(), a.as_slice());
    }

    #[test]
    fn gemm_known_product() {
        // [1 2; 3 4] × [5 6; 7 8] = [19 22; 43 50]
        let a = t2(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let b = t2(2, 2, &[5.0, 6.0, 7.0, 8.0]);
        let c = gemm(&a, Transpose::No, &b, Transpose::No).unwrap();
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn gemm_rectangular() {
        let a = t2(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = t2(3, 1, &[1.0, 1.0, 1.0]);
        let c = gemm(&a, Transpose::No, &b, Transpose::No).unwrap();
        assert_eq!(c.shape().dims(), &[2, 1]);
        assert_eq!(c.as_slice(), &[6.0, 15.0]);
    }

    #[test]
    fn gemm_wider_than_col_tile() {
        // Exercise the column-tiled path: n > COL_TILE.
        let n = COL_TILE + 17;
        let a = t2(2, 3, &[1.0, -2.0, 0.5, 0.0, 1.0, 2.0]);
        let b = Tensor::from_fn(vec![3, n], |i| (i % 7) as f32 - 3.0);
        let c = gemm(&a, Transpose::No, &b, Transpose::No).unwrap();
        // Check a handful of entries against the naive definition.
        for (i, j) in [(0, 0), (1, 5), (0, COL_TILE), (1, n - 1)] {
            let expect: f32 = (0..3).map(|p| a.at(&[i, p]) * b.at(&[p, j])).sum();
            assert!((c.at(&[i, j]) - expect).abs() < 1e-4);
        }
    }

    #[test]
    fn all_transpose_combinations_agree() {
        let a = t2(2, 3, &[1.0, -2.0, 3.0, 0.5, 4.0, -1.0]);
        let b = t2(3, 4, &[2.0, 0.0, 1.0, -1.0, 3.0, 5.0, -2.0, 0.5, 1.0, 1.0, 1.0, 1.0]);
        let reference = gemm(&a, Transpose::No, &b, Transpose::No).unwrap();

        // Transpose the stored layouts manually and ask gemm to undo it.
        let at = transpose(&a);
        let bt = transpose(&b);
        let c1 = gemm(&at, Transpose::Yes, &b, Transpose::No).unwrap();
        let c2 = gemm(&a, Transpose::No, &bt, Transpose::Yes).unwrap();
        let c3 = gemm(&at, Transpose::Yes, &bt, Transpose::Yes).unwrap();
        for c in [c1, c2, c3] {
            for (x, y) in c.as_slice().iter().zip(reference.as_slice()) {
                assert!((x - y).abs() < 1e-5, "{x} vs {y}");
            }
        }
    }

    fn transpose(t: &Tensor) -> Tensor {
        let (r, c) = (t.shape().dim(0), t.shape().dim(1));
        let mut out = Tensor::zeros([c, r]);
        for i in 0..r {
            for j in 0..c {
                *out.at_mut(&[j, i]) = t.at(&[i, j]);
            }
        }
        out
    }

    #[test]
    fn gemm_shape_errors() {
        let a = t2(2, 3, &[0.0; 6]);
        let b = t2(2, 3, &[0.0; 6]);
        assert!(gemm(&a, Transpose::No, &b, Transpose::No).is_err());
        assert!(gemm(&a, Transpose::No, &b, Transpose::Yes).is_ok());
        let v = Tensor::from_slice(&[1.0, 2.0]);
        assert!(gemm(&a, Transpose::No, &v, Transpose::No).is_err());
    }

    #[test]
    fn matvec_matches_gemm() {
        let a = t2(3, 2, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let x = Tensor::from_slice(&[1.0, -1.0]);
        let y = matvec(&a, &x).unwrap();
        assert_eq!(y.as_slice(), &[-1.0, -1.0, -1.0]);
        let xm = x.reshape([2, 1]).unwrap();
        let ym = gemm(&a, Transpose::No, &xm, Transpose::No).unwrap();
        assert_eq!(y.as_slice(), ym.as_slice());
    }

    #[test]
    fn matvec_shape_errors() {
        let a = t2(2, 2, &[0.0; 4]);
        let bad = Tensor::from_slice(&[1.0, 2.0, 3.0]);
        assert!(matvec(&a, &bad).is_err());
    }

    #[cfg(feature = "parallel")]
    mod parallel {
        use super::*;

        #[test]
        fn parallel_bit_identical_even_below_threshold() {
            // Force the parallel kernel on a product the dispatcher would
            // run serially.
            let a = Tensor::from_fn(vec![7, 13], |i| (i as f32).sin());
            let b = Tensor::from_fn(vec![13, 9], |i| (i as f32 * 0.37).cos());
            for ta in [Transpose::No, Transpose::Yes] {
                for tb in [Transpose::No, Transpose::Yes] {
                    let (a, b) = match (ta, tb) {
                        (Transpose::No, Transpose::No) => (a.clone(), b.clone()),
                        (Transpose::No, Transpose::Yes) => (a.clone(), transpose(&b)),
                        (Transpose::Yes, Transpose::No) => (transpose(&a), b.clone()),
                        (Transpose::Yes, Transpose::Yes) => (transpose(&a), transpose(&b)),
                    };
                    let s = gemm_serial(&a, ta, &b, tb).unwrap();
                    let p = gemm_parallel(&a, ta, &b, tb).unwrap();
                    let same = s
                        .as_slice()
                        .iter()
                        .zip(p.as_slice())
                        .all(|(x, y)| x.to_bits() == y.to_bits());
                    assert!(same, "parallel gemm diverged for ({ta:?}, {tb:?})");
                }
            }
        }

        #[test]
        fn parallel_handles_zero_width_output() {
            // Regression: chunks_mut(0) must not panic when n == 0.
            let a = Tensor::from_fn(vec![4, 3], |i| i as f32);
            let b = Tensor::from_vec(vec![], Shape::d2(3, 0)).unwrap();
            let p = gemm_parallel(&a, Transpose::No, &b, Transpose::No).unwrap();
            assert_eq!(p.shape().dims(), &[4, 0]);
            let s = gemm_serial(&a, Transpose::No, &b, Transpose::No).unwrap();
            assert_eq!(s.shape(), p.shape());
        }

        #[test]
        fn dispatcher_crosses_threshold_bit_identically() {
            // 128×128×128 > par::MIN_MACS ⇒ gemm() takes the threaded path.
            let a = Tensor::from_fn(vec![128, 128], |i| ((i * 31 % 101) as f32 - 50.0) / 25.0);
            let b = Tensor::from_fn(vec![128, 128], |i| ((i * 17 % 97) as f32 - 48.0) / 24.0);
            let s = gemm_serial(&a, Transpose::No, &b, Transpose::No).unwrap();
            let d = gemm(&a, Transpose::No, &b, Transpose::No).unwrap();
            assert!(s.as_slice().iter().zip(d.as_slice()).all(|(x, y)| x.to_bits() == y.to_bits()));
        }
    }
}
