//! Reusable scratch workspaces for the quantized inference hot path.
//!
//! The paper's Figure 2(a) datapath has **no dynamic memory**: activations
//! are 8-bit codes flowing through buffers whose sizes are fixed by the
//! layer geometry at synthesis time. This module is the software rendition
//! of that property. A [`Workspace`] owns every scratch buffer a quantized
//! forward pass needs — the `i8` im2col staging area, the inter-layer
//! activation ping-pong pair, and an `f32` lane for logit averaging — as
//! **grow-only** 64-byte-aligned [`AlignedVec`]
//! lanes: the first pass through a model grows each buffer
//! to its peak size (or [`WorkspacePlan`] pre-sizes them in one shot), and
//! every subsequent pass reuses the same capacity, so a warmed workspace
//! makes the whole forward path allocation-free at steady state.
//!
//! Two ownership patterns cover every call site:
//!
//! * **Caller-owned** — construct a [`Workspace`] (ideally from a model's
//!   plan) and thread it through the `*_with`/`*_into` entry points.
//! * **Per-thread** — [`with_thread_workspace`] hands out a workspace that
//!   lives as long as its OS thread. Because the `mfdfp-rt` pool workers
//!   and the serving workers are *persistent* threads, this gives each of
//!   them a private workspace that warms once and is never contended —
//!   the software analogue of each hardware processing unit owning its
//!   activation buffers.
//!
//! The 32/64-bit accumulator lanes of the packed GEMM kernel follow the
//! same per-thread pattern (the crate-private `with_acc_lanes`): the
//! parallel kernel runs one row band per pool thread, so per-thread lanes
//! are exactly one lane pair per concurrent band — persistent,
//! uncontended, and invisible to the caller.

use std::cell::RefCell;

use crate::arena::AlignedVec;

/// Peak scratch-buffer sizes for one model, as computed from its layer
/// geometry (e.g. by `QuantizedNet::plan()` in `mfdfp-core`). Feeding a
/// plan to [`Workspace::with_plan`] sizes every buffer once, so even the
/// first forward pass allocates nothing.
///
/// Plans combine with [`WorkspacePlan::merge`] (element-wise max), so one
/// workspace can be pre-sized for every model a worker may serve.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkspacePlan {
    /// Peak activation-buffer length (elements): the largest layer input
    /// or output anywhere in the stack. Both ping-pong buffers get this.
    pub act_len: usize,
    /// Peak im2col staging length (elements): the largest
    /// `col_height × out_pixels` product over the convolution layers.
    pub im2col_len: usize,
    /// Peak `f32` scratch length (elements): logit staging for ensemble
    /// averaging (`batch × classes`).
    pub f32_len: usize,
    /// Largest fused batch the workspace must hold: the batched conv path
    /// interleaves `B` images per activation element, so the activation
    /// ping-pong pair and the im2col staging area each scale by `B`.
    /// `0` and `1` both mean "single image" (so `Default` and older
    /// single-image plans keep their meaning); see
    /// [`WorkspacePlan::batch`].
    pub max_batch: usize,
}

impl WorkspacePlan {
    /// Element-wise maximum of two plans: a workspace sized for the merge
    /// fits either model without growing.
    #[must_use]
    pub fn merge(self, other: WorkspacePlan) -> WorkspacePlan {
        WorkspacePlan {
            act_len: self.act_len.max(other.act_len),
            im2col_len: self.im2col_len.max(other.im2col_len),
            f32_len: self.f32_len.max(other.f32_len),
            max_batch: self.max_batch.max(other.max_batch),
        }
    }

    /// Effective fused batch size: `max_batch`, with the `0` default
    /// normalized to `1` so un-batched plans are unchanged.
    #[must_use]
    pub fn batch(&self) -> usize {
        self.max_batch.max(1)
    }

    /// This plan resized for fused batches up to `max_batch` images —
    /// per-layer buffer peaks stay the same, capacity scales by the batch.
    #[must_use]
    pub fn for_batch(self, max_batch: usize) -> WorkspacePlan {
        WorkspacePlan { max_batch, ..self }
    }

    /// A workspace pre-sized to this plan — sugar for
    /// [`Workspace::with_plan`].
    #[must_use]
    pub fn workspace(&self) -> Workspace {
        Workspace::with_plan(self)
    }
}

/// A grow-only scratch arena for quantized inference.
///
/// All buffers start empty; entry points grow them on demand and never
/// shrink them, so capacity converges to the peak of whatever workload the
/// workspace serves and stays there. See the [module docs](self) for the
/// ownership patterns.
///
/// # Examples
///
/// ```
/// use mfdfp_tensor::{Workspace, WorkspacePlan};
///
/// let plan = WorkspacePlan { act_len: 1024, im2col_len: 4096, ..Default::default() };
/// let ws = plan.workspace();
/// assert!(ws.is_warm_for(&plan));
/// // The same geometry, fused over batches of up to 8 images.
/// assert!(plan.for_batch(8).workspace().is_warm_for(&plan.for_batch(8)));
/// // A default workspace grows lazily instead.
/// assert!(!Workspace::new().is_warm_for(&plan));
/// ```
#[derive(Debug, Default)]
pub struct Workspace {
    /// Inter-layer activation ping-pong pair (taken/restored around a
    /// forward pass so the layers can borrow the workspace meanwhile).
    act: [AlignedVec<i8>; 2],
    /// im2col column staging: 8-bit activation codes in the `k × ncols`
    /// layout the packed kernel streams.
    im2col: AlignedVec<i8>,
    /// `f32` staging (ensemble member logits).
    f32buf: AlignedVec<f32>,
}

impl Workspace {
    /// An empty workspace; every buffer grows on first use.
    #[must_use]
    pub fn new() -> Workspace {
        Workspace::default()
    }

    /// A workspace with every buffer pre-grown to `plan`'s peaks.
    #[must_use]
    pub fn with_plan(plan: &WorkspacePlan) -> Workspace {
        let mut ws = Workspace::default();
        ws.reserve(plan);
        ws
    }

    /// Grows any buffer still below `plan`'s peaks (never shrinks). The
    /// activation and im2col lanes scale by [`WorkspacePlan::batch`]: a
    /// plan with `max_batch = 8` warms the workspace for fused batches of
    /// up to eight images (and, a fortiori, for every smaller batch).
    pub fn reserve(&mut self, plan: &WorkspacePlan) {
        let b = plan.batch();
        for act in &mut self.act {
            act.reserve(plan.act_len * b);
        }
        self.im2col.reserve(plan.im2col_len * b);
        self.f32buf.reserve(plan.f32_len);
    }

    /// Whether every buffer already has at least `plan`'s capacity — i.e.
    /// a pass over a model with this plan will not allocate.
    #[must_use]
    pub fn is_warm_for(&self, plan: &WorkspacePlan) -> bool {
        let b = plan.batch();
        self.act.iter().all(|a| a.capacity() >= plan.act_len * b)
            && self.im2col.capacity() >= plan.im2col_len * b
            && self.f32buf.capacity() >= plan.f32_len
    }

    /// The im2col staging buffer, resized to exactly `len` elements
    /// (stale contents are overwritten by the gather, not cleared here;
    /// [`AlignedVec::resize`](crate::arena::AlignedVec::resize) never
    /// sheds capacity, so a warmed buffer just gets a length bump).
    pub fn im2col_i8(&mut self, len: usize) -> &mut [i8] {
        self.im2col.resize(len, 0);
        &mut self.im2col[..len]
    }

    /// Moves the activation ping-pong pair out of the workspace so a
    /// forward pass can write activations while the layers borrow the
    /// workspace for other scratch. Pair with [`Workspace::restore_act`].
    pub fn take_act(&mut self) -> (AlignedVec<i8>, AlignedVec<i8>) {
        let [a, b] = std::mem::take(&mut self.act);
        (a, b)
    }

    /// Returns the activation pair after a forward pass. `front` must be
    /// the buffer holding the final codes: [`Workspace::codes`] reads it.
    pub fn restore_act(&mut self, front: AlignedVec<i8>, back: AlignedVec<i8>) {
        self.act = [front, back];
    }

    /// The first `len` codes of the front activation buffer — the network
    /// output after a `forward_codes_with` pass.
    ///
    /// # Panics
    ///
    /// Panics if `len` exceeds the front buffer's length.
    #[must_use]
    pub fn codes(&self, len: usize) -> &[i8] {
        &self.act[0][..len]
    }

    /// Moves the `f32` scratch buffer out (see [`Workspace::take_act`]
    /// for the pattern). Pair with [`Workspace::restore_f32`].
    pub fn take_f32(&mut self) -> AlignedVec<f32> {
        std::mem::take(&mut self.f32buf)
    }

    /// Returns the `f32` scratch buffer.
    pub fn restore_f32(&mut self, buf: AlignedVec<f32>) {
        self.f32buf = buf;
    }
}

thread_local! {
    /// One workspace per OS thread (see [`with_thread_workspace`]).
    static THREAD_WS: RefCell<Workspace> = RefCell::new(Workspace::new());
    /// One accumulator lane pair per OS thread (see [`with_acc_lanes`]).
    static ACC_LANES: RefCell<(AlignedVec<i64>, AlignedVec<i32>)> =
        const { RefCell::new((AlignedVec::new(), AlignedVec::new())) };
}

/// Runs `f` with the calling thread's persistent [`Workspace`].
///
/// On a long-lived thread — an `mfdfp-rt` pool worker, a serving worker,
/// a caller's request loop — the workspace warms on first use and every
/// later call is allocation-free. The allocating convenience APIs
/// (`ShiftConv::run`, `QuantizedNet::forward_codes`, …) route through
/// this, so even they stop allocating scratch after their thread's first
/// call.
///
/// Re-entrancy: if the thread workspace is already borrowed higher up the
/// stack (possible when a pool thread *helps* execute a stolen task while
/// its own scope waits — see `mfdfp-rt`), `f` receives a fresh temporary
/// workspace instead. Correctness is unaffected; the rare helper task
/// pays its own scratch allocations.
pub fn with_thread_workspace<R>(f: impl FnOnce(&mut Workspace) -> R) -> R {
    THREAD_WS.with(|cell| match cell.try_borrow_mut() {
        Ok(mut ws) => f(&mut ws),
        Err(_) => f(&mut Workspace::new()),
    })
}

/// Runs `f` with the calling thread's persistent accumulator lanes, grown
/// to `ncols` 64-bit and `ncols` 32-bit slots.
///
/// This is the packed GEMM kernel's scratch: the parallel dispatcher runs
/// one row band per pool thread, so per-thread lanes give every
/// concurrent band private, persistent accumulators with no allocation
/// after each thread's first kernel call. Falls back to fresh lanes under
/// re-entrant borrowing, same as [`with_thread_workspace`] (the kernel
/// never re-enters itself, but a helping pool thread can).
pub(crate) fn with_acc_lanes<R>(ncols: usize, f: impl FnOnce(&mut [i64], &mut [i32]) -> R) -> R {
    ACC_LANES.with(|cell| match cell.try_borrow_mut() {
        Ok(mut lanes) => {
            let (acc64, acc32) = &mut *lanes;
            acc64.resize(ncols, 0);
            acc32.resize(ncols, 0);
            f(&mut acc64[..ncols], &mut acc32[..ncols])
        }
        Err(_) => f(&mut vec![0i64; ncols], &mut vec![0i32; ncols]),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_merge_takes_elementwise_max() {
        let a = WorkspacePlan { act_len: 10, im2col_len: 5, f32_len: 0, max_batch: 2 };
        let b = WorkspacePlan { act_len: 3, im2col_len: 9, f32_len: 4, max_batch: 0 };
        assert_eq!(
            a.merge(b),
            WorkspacePlan { act_len: 10, im2col_len: 9, f32_len: 4, max_batch: 2 }
        );
    }

    #[test]
    fn with_plan_pre_sizes_every_buffer() {
        let plan = WorkspacePlan { act_len: 64, im2col_len: 128, f32_len: 32, max_batch: 0 };
        let ws = plan.workspace();
        assert!(ws.is_warm_for(&plan));
        assert!(ws.is_warm_for(&WorkspacePlan { act_len: 1, im2col_len: 1, f32_len: 1, ..plan }));
        assert!(!ws.is_warm_for(&WorkspacePlan { act_len: 65, ..plan }));
    }

    #[test]
    fn batched_plan_scales_act_and_im2col_lanes() {
        let single = WorkspacePlan { act_len: 16, im2col_len: 40, f32_len: 4, max_batch: 0 };
        assert_eq!(single.batch(), 1, "max_batch 0 normalizes to a single image");
        let batched = single.for_batch(8);
        assert_eq!(batched.batch(), 8);
        let ws = batched.workspace();
        // Warm for the full batch and every smaller one, but a single-image
        // workspace is not warm for the batched plan.
        assert!(ws.is_warm_for(&batched));
        assert!(ws.is_warm_for(&single.for_batch(3)));
        assert!(ws.is_warm_for(&single));
        assert!(!single.workspace().is_warm_for(&batched));
        // f32 staging is not batch-scaled (callers size it explicitly in
        // their plans), so the batched plan asks for the same 4 slots.
        assert!(single.workspace().f32buf.capacity() >= 4);
    }

    #[test]
    fn buffers_grow_and_stay_grown() {
        let mut ws = Workspace::new();
        assert_eq!(ws.im2col_i8(100).len(), 100);
        let cap_after_big = {
            ws.im2col_i8(10);
            ws.im2col.capacity()
        };
        assert!(cap_after_big >= 100, "shrinking request must not shed capacity");
    }

    #[test]
    fn act_round_trip_preserves_codes() {
        let mut ws = Workspace::new();
        let (mut a, b) = ws.take_act();
        a.extend_from_slice(&[1, 2, 3]);
        ws.restore_act(a, b);
        assert_eq!(ws.codes(3), &[1, 2, 3]);
        assert_eq!(ws.codes(2), &[1, 2]);
    }

    #[test]
    fn f32_round_trip() {
        let mut ws = Workspace::with_plan(&WorkspacePlan { f32_len: 8, ..Default::default() });
        let mut buf = ws.take_f32();
        assert!(buf.capacity() >= 8);
        buf.push(1.5);
        ws.restore_f32(buf);
        let again = ws.take_f32();
        assert_eq!(&again[..], &[1.5]);
        ws.restore_f32(again);
    }

    #[test]
    fn thread_workspace_persists_capacity_across_calls() {
        let first_cap = with_thread_workspace(|ws| {
            ws.im2col_i8(256);
            ws.im2col.capacity()
        });
        let second_cap = with_thread_workspace(|ws| ws.im2col.capacity());
        assert!(second_cap >= first_cap.min(256));
    }

    #[test]
    fn acc_lanes_are_sized_and_reused() {
        with_acc_lanes(17, |a64, a32| {
            assert_eq!((a64.len(), a32.len()), (17, 17));
            a64.fill(7);
        });
        with_acc_lanes(5, |a64, a32| {
            assert_eq!((a64.len(), a32.len()), (5, 5));
        });
    }

    #[test]
    fn reentrant_thread_workspace_falls_back_to_fresh() {
        with_thread_workspace(|outer| {
            outer.im2col_i8(4).fill(9);
            // A nested borrow (the pool-helper scenario) must still work.
            with_thread_workspace(|inner| {
                assert_eq!(inner.im2col.len(), 0, "fallback workspace is fresh");
            });
            assert_eq!(outer.im2col_i8(4)[0], 9);
        });
    }
}
